GO ?= go

.PHONY: check build vet lint test race bench

# check is the CI entry point: everything must pass before merge.
check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's own static-analysis suite (cmd/mglint): determinism
# and concurrency invariants that go vet does not know about.
lint:
	$(GO) run ./cmd/mglint ./...

test:
	$(GO) test ./...

# race uses -short: the paper-scale grid sweeps (Fig. 11-13) already run in
# the plain `test` target and are impractically slow under the race detector.
race:
	$(GO) test -race -short ./...

# bench runs the buildgraph/buildsys micro-benchmarks (see BENCH_buildgraph.json).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 2s ./internal/buildgraph/ ./internal/buildsys/
