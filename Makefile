GO ?= go

.PHONY: check check-race build vet lint test race bench bench-smoke bench-serving

# check is the CI entry point: everything must pass before merge.
check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project's own static-analysis suite (cmd/mglint): determinism
# and concurrency invariants that go vet does not know about.
lint:
	$(GO) run ./cmd/mglint ./...

test:
	$(GO) test ./...

# race uses -short: the paper-scale grid sweeps (Fig. 11-13) already run in
# the plain `test` target and are impractically slow under the race detector.
race:
	$(GO) test -race -short ./...

# check-race is the full suite under the race detector — including the
# simulation-backed experiment tests the -short gate skips. Too slow for the
# inner `check` loop; CI runs it as its own job on every PR.
check-race:
	$(GO) test -race -timeout 60m ./...

# bench runs the subsystem micro-benchmarks (see the BENCH_*.json files).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 2s ./internal/buildgraph/ ./internal/buildsys/ ./internal/conflict/ ./internal/planner/ ./internal/sched/ ./internal/shard/ ./internal/arbiter/ ./internal/repo/ ./internal/store/ ./internal/api/

# bench-serving measures the production serving path (BENCH_serving.json):
# handler alloc counts, journal group-commit and replay, the layered-snapshot
# commit cost, then the full two-phase load test over localhost HTTP
# (sustained ≥20k submissions/min with P99 targets, plus overload shedding).
bench-serving:
	$(GO) test -run '^$$' -bench . -benchtime 2s -benchmem ./internal/api/ ./internal/store/ ./internal/repo/
	$(GO) run ./cmd/sqsim -exp loadtest -full -metrics

# bench-smoke compiles and runs every benchmark in the repo exactly once so
# benchmarks cannot bitrot; CI runs it on every push. The root-level paper
# figure benchmarks take ~8 min even at 1x, so the per-package timeout is
# raised above go test's 10m default for slow CI runners.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -timeout 30m ./...
