// Package mastergreen's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§8) — run:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigNN executes the corresponding experiment (quick scale;
// set MASTERGREEN_FULL=1 for paper-scale sweeps) and reports its headline
// numbers via b.ReportMetric, so the shapes can be compared against the
// paper directly from benchmark output. EXPERIMENTS.md records a full
// paper-vs-measured comparison.
package main

import (
	"os"
	"testing"

	"mastergreen/internal/experiments"
)

func benchOptions() experiments.Options {
	return experiments.Options{Seed: 1, Quick: os.Getenv("MASTERGREEN_FULL") == ""}
}

// reportAll surfaces selected metrics on the benchmark result.
func reportAll(b *testing.B, r *experiments.Report, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := r.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkFig1RealConflictProbability regenerates Fig. 1: probability of
// real conflicts vs number of concurrent, potentially conflicting changes.
func BenchmarkFig1RealConflictProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "iOS/p_real_conflict_n2", "iOS/p_real_conflict_n8")
		}
	}
}

// BenchmarkFig2BreakageVsStaleness regenerates Fig. 2: probability of a
// mainline breakage as change staleness increases.
func BenchmarkFig2BreakageVsStaleness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "p_breakage_1h", "p_breakage_10h", "p_breakage_100h")
		}
	}
}

// BenchmarkFig9BuildDurationCDF regenerates Fig. 9: the CDF of build
// durations for the iOS and Android monorepos.
func BenchmarkFig9BuildDurationCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "iOS/median_min", "iOS/p95_min")
		}
	}
}

// BenchmarkFig10OracleTurnaroundCDF regenerates Fig. 10: the CDF of Oracle
// turnaround time at 100–500 changes/hour with 2000 workers.
func BenchmarkFig10OracleTurnaroundCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "p50_rate100", "p50_rate500", "p95_rate500")
		}
	}
}

// BenchmarkFig11TurnaroundGrid regenerates Fig. 11 (a–i): P50/P95/P99
// turnaround normalized against Oracle for SubmitQueue, Speculate-all, and
// Optimistic across the changes/hour × workers grid.
func BenchmarkFig11TurnaroundGrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchOptions())
		if i == b.N-1 {
			reportAll(b, r,
				"SubmitQueue/P50/rate500/w500",
				"SubmitQueue/P95/rate500/w500",
				"Speculate-all/P95/rate500/w500",
				"Optimistic/P95/rate500/w500",
			)
		}
	}
}

// BenchmarkFig12Throughput regenerates Fig. 12 (a–c): average throughput
// normalized against Oracle at 300–500 changes/hour.
func BenchmarkFig12Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(benchOptions())
		if i == b.N-1 {
			reportAll(b, r,
				"SubmitQueue/rate500/w500",
				"Single-Queue/rate500/w500",
				"Optimistic/rate500/w500",
			)
		}
	}
}

// BenchmarkFig13ConflictAnalyzerBenefit regenerates Fig. 13 (a–c): the P95
// turnaround improvement from enabling the conflict analyzer.
func BenchmarkFig13ConflictAnalyzerBenefit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig13(benchOptions())
		if i == b.N-1 {
			reportAll(b, r,
				"Oracle/rate500/w500",
				"SubmitQueue/rate500/w500",
				"Optimistic/rate500/w500",
			)
		}
	}
}

// BenchmarkFig14TrunkBasedMainline regenerates Fig. 14: the mainline's
// per-hour green percentage under trunk-based development before
// SubmitQueue (paper: green only 52% of the week).
func BenchmarkFig14TrunkBasedMainline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "overall_green_pct")
		}
	}
}

// BenchmarkModelAccuracy regenerates the §7.2 result: ~97% validation
// accuracy for the logistic-regression success model.
func BenchmarkModelAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.ModelAccuracy(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "isolated_accuracy", "final_accuracy", "rfe8_accuracy")
		}
	}
}

// BenchmarkSingleQueueBacklog regenerates the §2.2 back-of-envelope: a
// single queue at 1000 changes/day with 30-minute builds exceeds 20 days of
// turnaround for the last enqueued change.
func BenchmarkSingleQueueBacklog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.SingleQueueBacklog(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "analytic_last_turnaround_days", "sim_last_turnaround_days")
		}
	}
}

// BenchmarkAblationSelection verifies the §7.1 greedy best-first selection
// matches exhaustive enumeration while doing bounded work.
func BenchmarkAblationSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationSelection(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "top_k_agreement")
		}
	}
}

// BenchmarkAblationConflictDetection compares name-intersection, union-graph
// and Equation 6 conflict detection on the Fig. 8 scenario.
func BenchmarkAblationConflictDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationConflictDetection(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "union-graph_correct", "name-intersection_correct")
		}
	}
}

// BenchmarkAblationIncremental measures the §6 minimal-build-steps and
// artifact-caching savings on speculative chains.
func BenchmarkAblationIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationIncremental(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "savings_fraction")
		}
	}
}

// BenchmarkAblationSpecDepth sweeps the speculation-depth cap.
func BenchmarkAblationSpecDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationSpecDepth(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "norm_p95_depth1", "norm_p95_depth16")
		}
	}
}

// BenchmarkAblationBatching evaluates the §10 batching extension.
func BenchmarkAblationBatching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationBatching(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "p95_batch1", "p95_batch8", "builds_batch1", "builds_batch8")
		}
	}
}

// BenchmarkAblationPreemptionGrace evaluates the §10 preemption-grace
// extension in the real-time planner.
func BenchmarkAblationPreemptionGrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationPreemptionGrace(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "aborted_without_grace", "aborted_with_grace")
		}
	}
}

// BenchmarkAblationReordering evaluates the §10 change-reordering extension.
func BenchmarkAblationReordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationReordering(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "p50_base", "p50_reorder", "green_violations")
		}
	}
}

// BenchmarkAblationBoosting compares logistic regression with gradient
// boosting (§10's suggested alternative) on both prediction tasks.
func BenchmarkAblationBoosting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationBoosting(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "success_lr_accuracy", "success_gb_accuracy", "conflict_gb_auc")
		}
	}
}

// BenchmarkAblationShards measures the §4h sharded multi-planner scale-out:
// commit throughput at 1/4/8/16 planner shards on a many-subtree workload,
// against the legacy single-planner engine (BENCH_shards.json records the
// full 512-change run).
func BenchmarkAblationShards(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationShards(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "committed_per_hour_1", "committed_per_hour_8",
				"speedup_8", "speedup_16", "green_violations")
		}
	}
}

// BenchmarkAblationSched measures the §4l scheduling subsystem: P0 hotfix
// turnaround under priority lanes vs the unprioritized planner, and the
// adaptive batcher's commits per worker-hour vs the fixed Batch-4 baseline
// (BENCH_sched.json records the full 512-change run).
func BenchmarkAblationSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.AblationSched(benchOptions())
		if i == b.N-1 {
			reportAll(b, r, "p0_p50_ratio", "p2_deadline_misses",
				"batch_throughput_ratio", "batch_evictions", "green_violations")
		}
	}
}
