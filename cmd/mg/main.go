// Command mg is the developer's window into a mastergreen monorepo: a small
// VCS + build-graph tool over the repo/buildgraph substrates (the part of
// the stack a developer at the paper's company would touch through git and
// Buck). It operates on a repository file saved with repo.Save.
//
//	mg init    -dir ./src -o repo.json           # import a directory tree
//	mg log     -repo repo.json                   # mainline history
//	mg show    -repo repo.json -seq 2            # one commit's files
//	mg cat     -repo repo.json -path lib/a.go    # file at HEAD (or -seq N)
//	mg commit  -repo repo.json -m msg -edit path=content [-edit ...]
//	mg revert  -repo repo.json -id <commit-id>
//	mg targets -repo repo.json                   # build targets at HEAD
//	mg deps    -repo repo.json -t //a:b          # transitive dependencies
//	mg rdeps   -repo repo.json -t //a:b          # transitive dependents
//	mg affected -repo repo.json -from 1 -to 2    # δ between commit points
//	mg dot     -repo repo.json                   # Graphviz of the target DAG
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mastergreen/internal/buildgraph"
	"mastergreen/internal/repo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mg: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "init":
		cmdInit(args)
	case "log":
		cmdLog(args)
	case "show":
		cmdShow(args)
	case "cat":
		cmdCat(args)
	case "commit":
		cmdCommit(args)
	case "revert":
		cmdRevert(args)
	case "targets":
		cmdTargets(args)
	case "deps":
		cmdDeps(args, false)
	case "rdeps":
		cmdDeps(args, true)
	case "affected":
		cmdAffected(args)
	case "dot":
		cmdDot(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mg init|log|show|cat|commit|revert|targets|deps|rdeps|affected|dot [flags]")
	os.Exit(2)
}

// loadRepo reads the repository file.
func loadRepo(path string) *repo.Repo {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("open repo: %v", err)
	}
	defer f.Close()
	r, err := repo.Load(f)
	if err != nil {
		log.Fatalf("load repo: %v", err)
	}
	return r
}

// saveRepo writes the repository file atomically.
func saveRepo(r *repo.Repo, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Fatalf("save repo: %v", err)
	}
	if err := r.Save(f); err != nil {
		_ = f.Close()
		log.Fatalf("save repo: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("save repo: close: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		log.Fatalf("save repo: %v", err)
	}
}

func cmdInit(args []string) {
	fs2 := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs2.String("dir", "", "directory tree to import as the root commit")
	out := fs2.String("o", "repo.json", "repository file to create")
	_ = fs2.Parse(args)
	files := map[string]string{}
	if *dir != "" {
		err := filepath.WalkDir(*dir, func(p string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(*dir, p)
			if err != nil {
				return err
			}
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			files[filepath.ToSlash(rel)] = string(data)
			return nil
		})
		if err != nil {
			log.Fatalf("walking %s: %v", *dir, err)
		}
	}
	r := repo.New(files)
	saveRepo(r, *out)
	fmt.Printf("initialized %s with %d files\n", *out, len(files))
}

func cmdLog(args []string) {
	fs2 := flag.NewFlagSet("log", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	_ = fs2.Parse(args)
	r := loadRepo(*repoPath)
	for i := r.Len() - 1; i >= 0; i-- {
		c, err := r.At(i)
		if err != nil {
			log.Fatal(err)
		}
		msg := c.Message
		if msg == "" {
			msg = "(root)"
		}
		fmt.Printf("%3d  %s  %-10s %s\n", c.Seq, c.ID, c.Author, msg)
	}
}

func cmdShow(args []string) {
	fs2 := flag.NewFlagSet("show", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	seq := fs2.Int("seq", -1, "mainline position (-1 = HEAD)")
	_ = fs2.Parse(args)
	r := loadRepo(*repoPath)
	c := headOrAt(r, *seq)
	fmt.Printf("commit %s (seq %d) by %s: %s\n", c.ID, c.Seq, c.Author, c.Message)
	for _, p := range c.Snapshot().Paths() {
		content, _ := c.Snapshot().Read(p)
		fmt.Printf("  %-30s %4d bytes\n", p, len(content))
	}
}

func headOrAt(r *repo.Repo, seq int) *repo.Commit {
	if seq < 0 {
		return r.Head()
	}
	c, err := r.At(seq)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func cmdCat(args []string) {
	fs2 := flag.NewFlagSet("cat", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	path := fs2.String("path", "", "file path")
	seq := fs2.Int("seq", -1, "mainline position (-1 = HEAD)")
	_ = fs2.Parse(args)
	if *path == "" {
		log.Fatal("cat: -path required")
	}
	r := loadRepo(*repoPath)
	c := headOrAt(r, *seq)
	content, ok := c.Snapshot().Read(*path)
	if !ok {
		log.Fatalf("cat: %s not found at seq %d", *path, c.Seq)
	}
	fmt.Print(content)
	if !strings.HasSuffix(content, "\n") {
		fmt.Println()
	}
}

// editFlags collects repeated -edit path=content pairs.
type editFlags []string

func (e *editFlags) String() string     { return strings.Join(*e, ",") }
func (e *editFlags) Set(v string) error { *e = append(*e, v); return nil }

func cmdCommit(args []string) {
	fs2 := flag.NewFlagSet("commit", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	msg := fs2.String("m", "", "commit message")
	author := fs2.String("author", "mg", "author")
	var edits editFlags
	fs2.Var(&edits, "edit", "path=content (repeatable); empty content deletes")
	_ = fs2.Parse(args)
	if len(edits) == 0 {
		log.Fatal("commit: at least one -edit required")
	}
	r := loadRepo(*repoPath)
	head := r.Head()
	var patch repo.Patch
	for _, e := range edits {
		eq := strings.IndexByte(e, '=')
		if eq < 0 {
			log.Fatalf("commit: bad -edit %q (want path=content)", e)
		}
		path, content := e[:eq], e[eq+1:]
		cur, exists := head.Snapshot().Read(path)
		switch {
		case content == "" && exists:
			patch.Changes = append(patch.Changes, repo.FileChange{
				Path: path, Op: repo.OpDelete, BaseHash: repo.HashContent(cur),
			})
		case exists:
			patch.Changes = append(patch.Changes, repo.FileChange{
				Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content,
			})
		default:
			patch.Changes = append(patch.Changes, repo.FileChange{
				Path: path, Op: repo.OpCreate, NewContent: content,
			})
		}
	}
	c, err := r.CommitPatch(head.ID, patch, *author, *msg, time.Now())
	if err != nil {
		log.Fatalf("commit: %v", err)
	}
	// Keep the build graph valid: a commit that breaks BUILD parsing is
	// rejected, mirroring SubmitQueue's compile gate.
	if _, err := buildgraph.Analyze(c.Snapshot()); err != nil {
		log.Fatalf("commit landed but the build graph is now invalid: %v\n(use mg revert %s)", err, c.ID)
	}
	saveRepo(r, *repoPath)
	fmt.Printf("committed %s (seq %d)\n", c.ID, c.Seq)
}

func cmdRevert(args []string) {
	fs2 := flag.NewFlagSet("revert", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	id := fs2.String("id", "", "commit id to revert")
	author := fs2.String("author", "mg", "author")
	_ = fs2.Parse(args)
	if *id == "" {
		log.Fatal("revert: -id required")
	}
	r := loadRepo(*repoPath)
	c, err := r.Revert(repo.CommitID(*id), *author, time.Now())
	if err != nil {
		log.Fatalf("revert: %v", err)
	}
	saveRepo(r, *repoPath)
	fmt.Printf("reverted as %s (seq %d)\n", c.ID, c.Seq)
}

func analyzeHead(repoPath string, seq int) *buildgraph.Graph {
	r := loadRepo(repoPath)
	c := headOrAt(r, seq)
	g, err := buildgraph.Analyze(c.Snapshot())
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	return g
}

func cmdTargets(args []string) {
	fs2 := flag.NewFlagSet("targets", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	seq := fs2.Int("seq", -1, "mainline position (-1 = HEAD)")
	_ = fs2.Parse(args)
	g := analyzeHead(*repoPath, *seq)
	for _, name := range g.Names() {
		h, _ := g.Hash(name)
		t, _ := g.Target(name)
		fmt.Printf("%-30s %s  srcs=%d deps=%d\n", name, h, len(t.Srcs), len(t.Deps))
	}
}

func cmdDeps(args []string, reverse bool) {
	name := "deps"
	if reverse {
		name = "rdeps"
	}
	fs2 := flag.NewFlagSet(name, flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	target := fs2.String("t", "", "target name (//dir:name)")
	seq := fs2.Int("seq", -1, "mainline position (-1 = HEAD)")
	_ = fs2.Parse(args)
	if *target == "" {
		log.Fatalf("%s: -t required", name)
	}
	g := analyzeHead(*repoPath, *seq)
	if _, ok := g.Target(*target); !ok {
		log.Fatalf("%s: unknown target %s", name, *target)
	}
	var set map[string]bool
	if reverse {
		set = g.Dependents(*target)
	} else {
		set = g.DependencyClosure(*target)
	}
	var names []string
	for n := range set {
		if n != *target {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
}

func cmdAffected(args []string) {
	fs2 := flag.NewFlagSet("affected", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	from := fs2.Int("from", 0, "base mainline position")
	to := fs2.Int("to", -1, "changed mainline position (-1 = HEAD)")
	_ = fs2.Parse(args)
	r := loadRepo(*repoPath)
	base := headOrAt(r, *from)
	changed := headOrAt(r, *to)
	gBase, err := buildgraph.Analyze(base.Snapshot())
	if err != nil {
		log.Fatalf("affected: base: %v", err)
	}
	gChanged, err := buildgraph.Analyze(changed.Snapshot())
	if err != nil {
		log.Fatalf("affected: changed: %v", err)
	}
	delta := buildgraph.Diff(gBase, gChanged)
	for _, n := range delta.Names() {
		fmt.Printf("%-30s %s\n", n, delta[n])
	}
	if len(delta) == 0 {
		fmt.Println("(no affected targets)")
	}
}

func cmdDot(args []string) {
	fs2 := flag.NewFlagSet("dot", flag.ExitOnError)
	repoPath := fs2.String("repo", "repo.json", "repository file")
	seq := fs2.Int("seq", -1, "mainline position (-1 = HEAD)")
	_ = fs2.Parse(args)
	fmt.Print(analyzeHead(*repoPath, *seq).Dot())
}
