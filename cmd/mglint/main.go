// Command mglint is the repo's green-keeping gate: it loads every package in
// the module, runs the determinism and concurrency analyzers in internal/lint
// under the policy table, and reports findings with file:line positions.
//
// Usage:
//
//	go run ./cmd/mglint ./...
//	go run ./cmd/mglint -json ./...          # machine-readable, for CI
//	go run ./cmd/mglint -annotations ./...   # GitHub Actions ::error lines
//	go run ./cmd/mglint -analyzers wallclock,maporder ./...
//
// Package patterns are accepted for command-line symmetry with go vet but the
// whole module is always loaded; the policy table in internal/lint/policy.go
// decides which analyzer applies where. Exit status: 0 clean, 1 findings,
// 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mastergreen/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON (one object with a findings array)")
	annotations := flag.Bool("annotations", false, "also emit GitHub Actions ::error workflow commands so findings annotate PR diffs")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*only, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "mglint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mglint:", err)
		os.Exit(2)
	}
	root, modpath, err := lint.FindModule(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mglint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.LoadModule(root, modpath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mglint:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, analyzers, lint.DefaultPolicy)
	for i := range findings {
		if rel, err := filepath.Rel(root, findings[i].File); err == nil {
			findings[i].File = filepath.ToSlash(rel)
		}
	}

	if *annotations {
		// Workflow commands are scanned per line from the job log, so they
		// compose with either output mode below.
		for _, f := range findings {
			fmt.Println(annotationLine(f))
		}
	}
	if *jsonOut {
		out := struct {
			Findings []lint.Finding `json:"findings"`
			Packages int            `json:"packages"`
		}{Findings: findings, Packages: len(pkgs)}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mglint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) == 0 {
			fmt.Printf("mglint: %d packages clean\n", len(pkgs))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// annotationLine renders one finding as a GitHub Actions error annotation:
// `::error file=...,line=...,col=...,title=...::message`. Property values and
// the message have distinct escaping rules per the workflow-command spec.
func annotationLine(f lint.Finding) string {
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=mglint %s::%s",
		escapeProperty(f.File), f.Line, f.Col, escapeProperty(f.Analyzer), escapeData(f.Message))
}

// escapeData escapes a workflow-command message.
func escapeData(s string) string {
	return strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(s)
}

// escapeProperty escapes a workflow-command property value, which must also
// hide the `,` and `:` delimiters.
func escapeProperty(s string) string {
	return strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C").Replace(s)
}
