package main

import (
	"testing"

	"mastergreen/internal/lint"
)

// TestAnnotationLine pins the GitHub Actions workflow-command format: the
// scanner splits properties on `,` and `:`, so those must be escaped in
// property values, while the message only escapes `%` and newlines.
func TestAnnotationLine(t *testing.T) {
	cases := []struct {
		name string
		f    lint.Finding
		want string
	}{
		{
			name: "plain",
			f: lint.Finding{
				Analyzer: "wallclock", File: "internal/sim/clock.go", Line: 12, Col: 7,
				Message: "direct time.Now call reads the wall clock",
			},
			want: "::error file=internal/sim/clock.go,line=12,col=7,title=mglint wallclock::direct time.Now call reads the wall clock",
		},
		{
			name: "message with colon and percent survives as data",
			f: lint.Finding{
				Analyzer: "locksend", File: "a.go", Line: 1, Col: 1,
				Message: "call may block: channel send at b.go:9, 100% of the time",
			},
			want: "::error file=a.go,line=1,col=1,title=mglint locksend::call may block: channel send at b.go:9, 100%25 of the time",
		},
		{
			name: "delimiters escaped in property values",
			f: lint.Finding{
				Analyzer: "errdrop", File: "weird,name:v2.go", Line: 3, Col: 2,
				Message: "multi\nline",
			},
			want: "::error file=weird%2Cname%3Av2.go,line=3,col=2,title=mglint errdrop::multi%0Aline",
		},
	}
	for _, c := range cases {
		if got := annotationLine(c.f); got != c.want {
			t.Errorf("%s:\n got %q\nwant %q", c.name, got, c.want)
		}
	}
}
