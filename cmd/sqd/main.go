// Command sqd runs SubmitQueue as an HTTP service over an in-memory
// monorepo, mirroring the paper's API + core service deployment (§7.1):
// stateless HTTP frontend, planner-driven core, a status dashboard at /, an
// event feed at /api/v1/events, and optional MySQL-style durability via an
// append-only journal plus repo snapshot.
//
// Usage:
//
//	sqd [-addr :8080] [-workers 8] [-epoch 250ms] [-data DIR]
//	    [-snapshot-interval 5m] [-admission-cap 1000] [-status-refresh 250ms]
//
// With -data, the service journals every submission and outcome to
// DIR/journal.jsonl and snapshots the repo to DIR/repo.json on shutdown;
// restarting with the same directory recovers pending changes.
// -snapshot-interval additionally folds the journal into a snapshot
// periodically so restart replay stays proportional to live state.
// -admission-cap turns on backpressure (429 + Retry-After once the pending
// queue fills, 503 dashboard sheds near capacity); -status-refresh serves
// dashboard reads from a background-rebuilt snapshot instead of rebuilding
// per request.
//
// Submit changes with:
//
//	curl -X POST localhost:8080/api/v1/changes -d '{
//	  "id": "c1", "author": "alice",
//	  "files": [{"path": "lib/lib.go", "op": "modify",
//	             "base_content": "lib v1", "content": "lib v2"}]}'
//	curl localhost:8080/api/v1/changes/c1
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mastergreen/internal/api"
	"mastergreen/internal/core"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
	"mastergreen/internal/sched"
	"mastergreen/internal/store"
)

func demoRepo() *repo.Repo {
	return repo.New(map[string]string{
		"app/BUILD":     "target app srcs=main.go deps=//lib:lib",
		"app/main.go":   "app v1",
		"lib/BUILD":     "target lib srcs=lib.go",
		"lib/lib.go":    "lib v1",
		"doc/BUILD":     "target doc srcs=readme.md",
		"doc/readme.md": "# demo monorepo",
	})
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 8, "concurrent builds")
	epoch := flag.Duration("epoch", 250*time.Millisecond, "planner epoch")
	dataDir := flag.String("data", "", "directory for durable state (empty = in-memory only)")
	shards := flag.Int("shards", 0, "planner shards (>= 1 enables the sharded scale-out; 0 = classic single planner)")
	snapshotEvery := flag.Duration("snapshot-interval", 0, "with -data: fold the journal into a snapshot this often (0 = only at shutdown)")
	admissionCap := flag.Int("admission-cap", 0, "bound the pending queue; excess submits get 429 + Retry-After (0 = unbounded)")
	statusRefresh := flag.Duration("status-refresh", 250*time.Millisecond, "background status snapshot rebuild interval (0 = rebuild per request)")
	schedOn := flag.Bool("sched", false, "enable priority-lane scheduling (P0 hotfix preemption, deadline aging, per-class gauges)")
	flag.Parse()

	bus := events.NewBus(1024)
	cfg := core.Config{Workers: *workers, Epoch: *epoch, Events: bus, Shards: *shards}
	if *schedOn {
		cfg.Sched = sched.Default()
	}

	var svc *core.Service
	var repoPath string
	r := demoRepo()
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("sqd: data dir: %v", err)
		}
		repoPath = filepath.Join(*dataDir, "repo.json")
		if f, err := os.Open(repoPath); err == nil {
			loaded, lerr := repo.Load(f)
			_ = f.Close()
			if lerr != nil {
				log.Fatalf("sqd: loading repo snapshot: %v", lerr)
			}
			r = loaded
			log.Printf("sqd: recovered repo with %d commits", r.Len())
		}
		journalPath := filepath.Join(*dataDir, "journal.jsonl")
		s, err := core.OpenRecovered(r, journalPath, cfg)
		if err != nil {
			log.Fatalf("sqd: recovering journal: %v", err)
		}
		svc = s
		log.Printf("sqd: journal %s (pending recovered: %d)", journalPath, svc.PendingCount())
	} else {
		svc = core.NewService(r, cfg)
	}

	svc.Start()
	srv := api.NewServer(svc)
	srv.SetEvents(bus)
	if *admissionCap > 0 {
		srv.EnableAdmission(*admissionCap)
	}
	if *statusRefresh > 0 {
		stop := srv.StartStatusRefresher(*statusRefresh)
		defer stop()
	}

	// Periodic journal snapshots keep restart replay proportional to live
	// state instead of total history (only meaningful with -data).
	snapDone := make(chan struct{})
	if *snapshotEvery > 0 && *dataDir != "" {
		go func() {
			t := time.NewTicker(*snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-snapDone:
					return
				case <-t.C:
					if err := svc.SnapshotJournal(1000); err != nil {
						log.Printf("sqd: journal snapshot: %v", err)
					}
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	go func() {
		log.Printf("sqd: SubmitQueue listening on %s (%d workers, %v epoch)", *addr, *workers, *epoch)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("sqd: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Println("sqd: shutting down")
	close(snapDone)
	_ = httpSrv.Close()
	svc.Stop()
	log.Printf("sqd: analyzer %s", svc.AnalyzerStats().Gauges())
	log.Printf("sqd: planner %s", svc.PlannerStats().Gauges())
	log.Printf("sqd: reliability %s", svc.ReliabilityStats().Gauges())
	if *schedOn {
		log.Printf("sqd: sched %s", svc.SchedStats().Gauges())
	}
	if svc.Sharded() {
		log.Printf("sqd: shards %s", svc.ShardStats().Gauges())
		log.Printf("sqd: arbiter %s", svc.ArbiterStats().Gauges())
	}
	if repoPath != "" {
		f, err := os.Create(repoPath)
		if err != nil {
			log.Fatalf("sqd: snapshotting repo: %v", err)
		}
		if err := svc.Repo().Save(f); err != nil {
			log.Fatalf("sqd: saving repo: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("sqd: saving repo: close: %v", err)
		}
		if err := svc.CloseJournal(); err != nil {
			log.Printf("sqd: closing journal: %v", err)
		}
		if err := store.Compact(filepath.Join(*dataDir, "journal.jsonl"), 1000); err != nil {
			log.Printf("sqd: journal compaction: %v", err)
		}
		log.Printf("sqd: state persisted to %s", *dataDir)
	}
}
