// Command sqload drives a running sqd instance with the open-loop load
// harness (internal/loadgen): submissions are paced at a fixed target rate
// regardless of server speed, mixed with state polls and status reads, and
// the run reports per-endpoint latency percentiles up to P99.9 plus the
// admission/backpressure counters — an end-to-end exercise of the whole
// serving stack (API → queue → analyzer → speculation → planner → build
// controller → monorepo).
//
// Usage (against a default sqd):
//
//	sqd &
//	sqload -url http://localhost:8080 -rate 50 -duration 10s -warmup 2s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mastergreen/internal/loadgen"
)

func main() {
	base := flag.String("url", "http://localhost:8080", "sqd base URL")
	rate := flag.Float64("rate", 20, "target submissions per second (open loop)")
	duration := flag.Duration("duration", 10*time.Second, "measured window")
	warmup := flag.Duration("warmup", time.Second, "warmup at -rate before measuring")
	pollRate := flag.Float64("poll-rate", 0, "state polls per second over accepted ids (0 = rate/2)")
	statusRate := flag.Float64("status-rate", 2, "status reads per second")
	inFlight := flag.Int("in-flight", 512, "max concurrent HTTP requests")
	drainTimeout := flag.Duration("drain", 30*time.Second, "after the run, wait up to this long for accepted changes to decide (0 = skip)")
	hotfixEvery := flag.Int("hotfix-every", 0, "every n-th submission uses the P0 hotfix lane (0 = none)")
	bulkEvery := flag.Int("bulk-every", 0, "every n-th submission uses the P2 bulk lane with a deadline (0 = none)")
	flag.Parse()

	if *pollRate == 0 {
		*pollRate = *rate / 2
	}
	// Salt ids with the start time so repeated runs against one long-lived
	// sqd never collide.
	prefix := fmt.Sprintf("load-%d", time.Now().UnixNano())
	client := loadgen.SharedClient(*inFlight)

	request := loadgen.DefaultRequest(prefix)
	if *hotfixEvery > 0 || *bulkEvery > 0 {
		request = loadgen.PriorityRequest(prefix, *hotfixEvery, *bulkEvery)
	}
	res, err := loadgen.Run(loadgen.Config{
		BaseURL:     *base,
		Rate:        *rate,
		Duration:    *duration,
		Warmup:      *warmup,
		MaxInFlight: *inFlight,
		Client:      client,
		Request:     request,
		PollRate:    *pollRate,
		StatusRate:  *statusRate,
	})
	if err != nil {
		log.Fatalf("sqload: %v", err)
	}

	fmt.Printf("sqload: offered %d (%.0f/s), accepted %d (%.0f/min sustained), throttled %d, errors %d\n",
		res.Offered, res.OfferedPerSec, res.Accepted, res.Sustained(), res.Throttled, res.Errors)
	if res.Throttled > 0 {
		fmt.Printf("backpressure: mean Retry-After %.1fs\n", res.RetryAfterMean)
	}
	fmt.Printf("submit  %s\n", res.Submit)
	if res.StatePoll.Count > 0 {
		fmt.Printf("state   %s\n", res.StatePoll)
	}
	if res.StatusRead.Count > 0 || res.StatusShed > 0 {
		fmt.Printf("status  %s  (shed %d)\n", res.StatusRead, res.StatusShed)
	}

	if *drainTimeout > 0 && len(res.AcceptedIDs) > 0 {
		deadline := time.Now().Add(*drainTimeout)
		d := loadgen.Classify(client, *base, res.AcceptedIDs, *inFlight)
		for d.Undecided > 0 && time.Now().Before(deadline) {
			time.Sleep(500 * time.Millisecond)
			d = loadgen.Classify(client, *base, res.AcceptedIDs, *inFlight)
		}
		fmt.Printf("decisions: %d committed, %d rejected, %d undecided, %d errors (of %d accepted)\n",
			d.Committed, d.Rejected, d.Undecided, d.Errors, len(res.AcceptedIDs))
		if *hotfixEvery > 0 || *bulkEvery > 0 {
			lanes := loadgen.SplitByLane(res.AcceptedIDs)
			for _, lane := range []string{"P0", "P1", "P2"} {
				ids := lanes[lane]
				if len(ids) == 0 {
					continue
				}
				ld := loadgen.Classify(client, *base, ids, *inFlight)
				fmt.Printf("decisions[%s]: %d committed, %d rejected, %d undecided, %d errors (of %d accepted)\n",
					lane, ld.Committed, ld.Rejected, ld.Undecided, ld.Errors, len(ids))
			}
		}
		if d.Undecided > 0 {
			fmt.Printf("sqload: %d accepted changes still undecided after %v\n", d.Undecided, *drainTimeout)
			os.Exit(1)
		}
	}
	if res.Accepted == 0 {
		fmt.Println("sqload: no submissions accepted")
		os.Exit(1)
	}
}
