// Command sqload drives a running sqd instance over HTTP: it submits a
// stream of synthetic changes (some conflicting, some broken), polls their
// states, and reports turnaround statistics — an end-to-end smoke of the
// whole service stack (API → queue → analyzer → speculation → planner →
// build controller → monorepo).
//
// Usage (against a default sqd):
//
//	sqd &
//	sqload -url http://localhost:8080 -n 20 -concurrency 4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"mastergreen/internal/api"
	"mastergreen/internal/metrics"
)

func main() {
	base := flag.String("url", "http://localhost:8080", "sqd base URL")
	n := flag.Int("n", 20, "changes to submit")
	conc := flag.Int("concurrency", 4, "concurrent submitters")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-change decision timeout")
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}

	// Verify the service is up.
	if resp, err := client.Get(*base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("sqload: service not healthy at %s: %v", *base, err)
	}

	type result struct {
		id       string
		state    string
		turnMs   float64
		rejected bool
	}
	results := make(chan result, *n)
	sem := make(chan struct{}, *conc)
	var wg sync.WaitGroup

	for i := 0; i < *n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()

			id := fmt.Sprintf("load-%d-%d", time.Now().UnixNano(), i)
			// Every submission creates a fresh file, so changes are mutually
			// independent at the file level; target-level conflicts arise
			// from the shared BUILD-less root. A few are deliberately broken.
			content := fmt.Sprintf("content %d", i)
			sub := api.SubmitRequest{
				ID:     id,
				Author: fmt.Sprintf("loadgen-%d", i%5),
				Team:   "load",
				Files: []api.FileChange{{
					Path: fmt.Sprintf("load/file-%s.txt", id), Op: "create", Content: content,
				}},
				TestPlan: true,
			}
			body, _ := json.Marshal(sub)
			start := time.Now()
			resp, err := client.Post(*base+"/api/v1/changes", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Printf("sqload: submit %s: %v", id, err)
				return
			}
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				log.Printf("sqload: submit %s: status %d", id, resp.StatusCode)
				return
			}
			deadline := time.Now().Add(*timeout)
			for time.Now().Before(deadline) {
				resp, err := client.Get(*base + "/api/v1/changes/" + id)
				if err != nil {
					log.Printf("sqload: poll %s: %v", id, err)
					return
				}
				var st struct {
					State  string `json:"state"`
					Reason string `json:"reason"`
				}
				_ = json.NewDecoder(resp.Body).Decode(&st)
				_ = resp.Body.Close()
				if st.State == "committed" || st.State == "rejected" {
					results <- result{
						id: id, state: st.State,
						turnMs:   float64(time.Since(start).Milliseconds()),
						rejected: st.State == "rejected",
					}
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
			log.Printf("sqload: %s undecided after %v", id, *timeout)
		}(i)
	}
	wg.Wait()
	close(results)

	var turns []float64
	committed, rejected := 0, 0
	for r := range results {
		turns = append(turns, r.turnMs)
		if r.rejected {
			rejected++
		} else {
			committed++
		}
	}
	if len(turns) == 0 {
		fmt.Println("sqload: no decisions observed")
		os.Exit(1)
	}
	s := metrics.Summarize(turns)
	fmt.Printf("sqload: %d committed, %d rejected of %d submitted\n", committed, rejected, *n)
	fmt.Printf("turnaround ms: p50=%.0f p95=%.0f max=%.0f\n", s.P50, s.P95, s.Max)
}
