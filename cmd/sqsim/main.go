// Command sqsim regenerates the paper's evaluation: every figure of §8 plus
// the design-choice ablations, rendered as terminal plots and tables.
//
// Usage:
//
//	sqsim                         # run everything in quick mode
//	sqsim -exp fig11              # one experiment
//	sqsim -full                   # paper-scale sweeps (slow)
//	sqsim -list                   # list experiment IDs
//	sqsim -seed 7 -metrics        # print raw metric values too
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mastergreen/internal/experiments"
)

// registry maps experiment IDs to generators, in presentation order.
var registry = []struct {
	id   string
	desc string
	run  func(experiments.Options) *experiments.Report
}{
	{"fig1", "P(real conflict) vs concurrency", experiments.Fig1},
	{"fig2", "P(breakage) vs staleness", experiments.Fig2},
	{"fig9", "build duration CDF", experiments.Fig9},
	{"fig10", "Oracle turnaround CDF", experiments.Fig10},
	{"fig11", "turnaround grid vs Oracle", experiments.Fig11},
	{"fig12", "throughput vs Oracle", experiments.Fig12},
	{"fig13", "conflict analyzer benefit", experiments.Fig13},
	{"fig14", "trunk-based mainline state", experiments.Fig14},
	{"model", "logistic model accuracy (§7.2)", experiments.ModelAccuracy},
	{"t2", "single-queue backlog (§2.2)", experiments.SingleQueueBacklog},
	{"ablation-selection", "greedy vs exhaustive selection", experiments.AblationSelection},
	{"ablation-conflict", "conflict detection methods", experiments.AblationConflictDetection},
	{"ablation-incremental", "minimal build steps savings", experiments.AblationIncremental},
	{"ablation-depth", "speculation depth sweep", experiments.AblationSpecDepth},
	{"ablation-batch", "batching extension", experiments.AblationBatching},
	{"ablation-grace", "preemption grace extension", experiments.AblationPreemptionGrace},
	{"ablation-reorder", "change reordering extension", experiments.AblationReordering},
	{"ablation-boost", "gradient boosting vs logistic regression", experiments.AblationBoosting},
	{"ablation-analyzer", "incremental conflict analyzer cache", experiments.AblationAnalyzerCache},
	{"ablation-shards", "sharded multi-planner scale-out", experiments.AblationShards},
	{"ablation-planner", "planner shared-prefix preparation & plan memo", experiments.AblationPlannerPrep},
	{"ablation-reliability", "retry/quarantine under injected flakiness", experiments.AblationReliability},
	{"ablation-leanci", "obsolete-build pruning + predictor-gated skipping", experiments.AblationLeanCI},
	{"ablation-sched", "priority lanes + adaptive batching", experiments.AblationSched},
	{"loadtest", "serving path: sustained throughput + overload degradation", experiments.Loadtest},
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	full := flag.Bool("full", false, "paper-scale sweeps (slow); default is quick mode")
	seed := flag.Int64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	showMetrics := flag.Bool("metrics", false, "print raw metric values")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-22s %s\n", e.id, e.desc)
		}
		return
	}

	o := experiments.Options{Seed: *seed, Quick: !*full}
	ran := 0
	for _, e := range registry {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		start := time.Now()
		r := e.run(o)
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s (%s)\n", r.Title, time.Since(start).Round(time.Millisecond))
		fmt.Printf("==================================================================\n")
		fmt.Println(r.Text)
		if *showMetrics {
			fmt.Println(r.MetricsBlock())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "sqsim: unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
}
