// Command sqtrace generates and replays workload traces, the file-based
// equivalent of the paper replaying recorded production changes (§8.1).
//
// Generate a trace:
//
//	sqtrace gen -n 1000 -rate 300 -seed 7 -platform ios -o trace.json
//
// Replay it through a scheduling strategy:
//
//	sqtrace run -i trace.json -strategy submitqueue -workers 200
//	sqtrace run -i trace.json -strategy oracle -workers 200
//
// Because the trace pins arrivals, durations, and ground truth, replays are
// bit-reproducible across machines and strategies are directly comparable.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mastergreen/internal/experiments"
	"mastergreen/internal/sim"
	"mastergreen/internal/strategies"
	"mastergreen/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "run":
		run(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sqtrace gen|run [flags]  (see -h of each)")
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 1000, "number of changes")
	rate := fs.Float64("rate", 300, "changes per hour")
	seed := fs.Int64("seed", 1, "workload seed")
	platform := fs.String("platform", "ios", "ios or android preset")
	out := fs.String("o", "trace.json", "output path")
	_ = fs.Parse(args)

	var cfg workload.Config
	switch *platform {
	case "ios":
		cfg = workload.IOSConfig(*seed, *n, *rate)
	case "android":
		cfg = workload.AndroidConfig(*seed, *n, *rate)
	default:
		log.Fatalf("sqtrace: unknown platform %q", *platform)
	}
	w := workload.Generate(cfg)
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("sqtrace: %v", err)
	}
	defer f.Close()
	if err := w.Export(f); err != nil {
		log.Fatalf("sqtrace: export: %v", err)
	}
	fmt.Printf("sqtrace: wrote %d changes to %s\n", len(w.Changes), *out)
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	in := fs.String("i", "trace.json", "trace path")
	stratName := fs.String("strategy", "submitqueue", "oracle|submitqueue|speculate-all|optimistic|single-queue|batch|reorder")
	workers := fs.Int("workers", 200, "concurrent builds")
	analyzer := fs.Bool("analyzer", true, "conflict analyzer enabled")
	trainN := fs.Int("train", 4000, "historical changes for the learned model (submitqueue/reorder)")
	seed := fs.Int64("seed", 1, "training seed")
	_ = fs.Parse(args)

	f, err := os.Open(*in)
	if err != nil {
		log.Fatalf("sqtrace: %v", err)
	}
	w, err := workload.Import(f)
	_ = f.Close()
	if err != nil {
		log.Fatalf("sqtrace: import: %v", err)
	}

	var strat sim.Strategy
	switch *stratName {
	case "oracle":
		strat = strategies.NewOracle(w)
	case "submitqueue", "reorder":
		trained, mt, err := experiments.TrainPredictor(*seed, *trainN)
		if err != nil {
			log.Fatalf("sqtrace: training: %v", err)
		}
		fmt.Printf("sqtrace: model accuracy %.3f\n", mt.Accuracy)
		sq := strategies.NewSubmitQueue(w, trained)
		if *stratName == "reorder" {
			sq.ReorderSmall = true
		}
		strat = sq
	case "speculate-all":
		strat = strategies.NewSpeculateAll(w)
	case "optimistic":
		strat = strategies.Optimistic{}
	case "single-queue":
		strat = strategies.SingleQueue{}
	case "batch":
		strat = &strategies.Batch{BatchSize: 4}
	default:
		log.Fatalf("sqtrace: unknown strategy %q", *stratName)
	}

	res := sim.Run(w, strat, sim.Config{Workers: *workers, UseAnalyzer: *analyzer})
	s := res.Summary()
	fmt.Printf("strategy=%s workers=%d analyzer=%v\n", res.Strategy, res.Workers, *analyzer)
	fmt.Printf("committed=%d rejected=%d undecided=%d greenViolations=%d\n",
		res.Committed, res.Rejected, res.Undecided, res.GreenViolations)
	fmt.Printf("turnaround min: p50=%.1f p95=%.1f p99=%.1f mean=%.1f\n", s.P50, s.P95, s.P99, s.Mean)
	fmt.Printf("throughput=%.1f commits/h, builds: %d started / %d finished / %d aborted\n",
		res.ThroughputPerHour, res.BuildsStarted, res.BuildsFinished, res.BuildsAborted)
}
