// Command sqtrain trains and evaluates SubmitQueue's logistic-regression
// models on a synthetic workload, reproducing the §7.2 methodology: 70/30
// train/validation split, accuracy report, top positive/negative features,
// and a recursive-feature-elimination pass.
//
// Usage:
//
//	sqtrain [-n 20000] [-seed 1] [-rfe 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"mastergreen/internal/predict"
	"mastergreen/internal/textplot"
	"mastergreen/internal/workload"
)

func main() {
	n := flag.Int("n", 20000, "historical changes to synthesize")
	seed := flag.Int64("seed", 1, "workload seed")
	rfeKeep := flag.Int("rfe", 8, "features to keep in the RFE pass (0 = skip)")
	boost := flag.Bool("boost", false, "also train gradient-boosted stumps (§10 extension)")
	savePath := flag.String("save", "", "write the trained success model (JSON) to this path")
	flag.Parse()

	w := workload.Generate(workload.Config{Seed: *seed, Count: *n, RatePerHour: 300})

	fmt.Println("=== Success model (predictSuccess) ===")
	X, y := w.TrainingData()
	trX, trY, vaX, vaY := predict.Split(X, y, 0.7, *seed)
	m, err := predict.Train(predict.SuccessFeatureNames, trX, trY, predict.TrainConfig{Epochs: 80})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	mt := predict.Evaluate(m, vaX, vaY)
	fmt.Printf("validation: accuracy=%.3f precision=%.3f recall=%.3f f1=%.3f (n=%d)\n",
		mt.Accuracy, mt.Precision, mt.Recall, mt.F1, mt.N)
	fmt.Println("(paper reports ~97% accuracy for the production model)")

	var rows [][]string
	for i, imp := range m.Importances() {
		if i >= 10 {
			break
		}
		rows = append(rows, []string{imp.Name, fmt.Sprintf("%+.3f", imp.Weight)})
	}
	fmt.Println(textplot.Table("top features by |standardized weight|",
		[]string{"feature", "weight"}, rows))

	if *rfeKeep > 0 {
		fmt.Printf("=== RFE down to %d features ===\n", *rfeKeep)
		rm, kept, err := predict.RFE(predict.SuccessFeatureNames, trX, trY,
			predict.TrainConfig{Epochs: 40}, *rfeKeep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfe:", err)
			os.Exit(1)
		}
		keptX := project(vaX, kept)
		rmt := predict.Evaluate(rm, keptX, vaY)
		fmt.Printf("kept %d features, validation accuracy=%.3f\n", len(kept), rmt.Accuracy)
		for _, k := range kept {
			fmt.Printf("  %s\n", predict.SuccessFeatureNames[k])
		}
	}

	if *boost {
		fmt.Println("\n=== Gradient boosting (§10 extension) ===")
		gb, err := predict.TrainBoost(predict.SuccessFeatureNames, trX, trY, predict.BoostConfig{Rounds: 120})
		if err != nil {
			fmt.Fprintln(os.Stderr, "boost:", err)
			os.Exit(1)
		}
		gmt := predict.EvaluateBoost(gb, vaX, vaY)
		fmt.Printf("validation: accuracy=%.3f (%d stumps) vs LR %.3f\n",
			gmt.Accuracy, len(gb.Stumps), mt.Accuracy)
	}

	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		if err := predict.SaveModel(f, m); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "save: close:", err)
			os.Exit(1)
		}
		fmt.Printf("\nsuccess model saved to %s\n", *savePath)
	}

	fmt.Println("\n=== Conflict model (predictConflict) ===")
	cX, cy := w.ConflictTrainingData(*seed)
	ctrX, ctrY, cvaX, cvaY := predict.Split(cX, cy, 0.7, *seed)
	cm, err := predict.Train(predict.ConflictFeatureNames, ctrX, ctrY, predict.TrainConfig{Epochs: 80})
	if err != nil {
		fmt.Fprintln(os.Stderr, "train conflict:", err)
		os.Exit(1)
	}
	cmt := predict.Evaluate(cm, cvaX, cvaY)
	fmt.Printf("validation: accuracy=%.3f precision=%.3f recall=%.3f (n=%d)\n",
		cmt.Accuracy, cmt.Precision, cmt.Recall, cmt.N)
	cProbs := cm.Predictions(cvaX)
	fmt.Printf("AUC=%.3f (ranking quality; the speculation engine consumes probabilities, not labels)\n",
		predict.AUC(cProbs, cvaY))
	fmt.Println(predict.CalibrationReport(predict.Calibration(cProbs, cvaY, 10)))

	fmt.Println("=== Success model calibration ===")
	sProbs := m.Predictions(vaX)
	fmt.Printf("AUC=%.3f\n", predict.AUC(sProbs, vaY))
	fmt.Println(predict.CalibrationReport(predict.Calibration(sProbs, vaY, 10)))
}

func project(X [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		pr := make([]float64, len(cols))
		for k, c := range cols {
			pr[k] = row[c]
		}
		out[i] = pr
	}
	return out
}
