// Comparison: replay the same synthetic change stream through every
// scheduling approach of §8 — Oracle, SubmitQueue (trained model),
// Speculate-all, Optimistic (Zuul), Single-Queue (Bors), and batched
// Chromium-CQ — and print turnaround/throughput side by side. All approaches
// commit exactly the same set of changes (serializability makes outcomes
// scheduling-independent); only speed differs.
//
//	go run ./examples/comparison [-n 400] [-rate 300] [-workers 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"mastergreen/internal/experiments"
	"mastergreen/internal/sim"
	"mastergreen/internal/strategies"
	"mastergreen/internal/textplot"
	"mastergreen/internal/workload"
)

func main() {
	n := flag.Int("n", 400, "number of changes")
	rate := flag.Float64("rate", 300, "changes per hour")
	workers := flag.Int("workers", 200, "concurrent builds")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	w := workload.Generate(workload.IOSConfig(*seed, *n, *rate))
	trained, modelMetrics, err := experiments.TrainPredictor(*seed, 4000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predictor trained on separate history: final-outcome accuracy %.3f\n\n", modelMetrics.Accuracy)

	strats := []sim.Strategy{
		strategies.NewOracle(w),
		strategies.NewSubmitQueue(w, trained),
		strategies.NewSpeculateAll(w),
		strategies.Optimistic{},
		strategies.SingleQueue{},
		&strategies.Batch{BatchSize: 4},
	}

	var rows [][]string
	var oracleP95 float64
	for _, s := range strats {
		res := sim.Run(w, s, sim.Config{Workers: *workers, UseAnalyzer: true})
		sum := res.Summary()
		if s.Name() == "Oracle" {
			oracleP95 = sum.P95
		}
		norm := "-"
		if oracleP95 > 0 {
			norm = fmt.Sprintf("%.2fx", sum.P95/oracleP95)
		}
		rows = append(rows, []string{
			s.Name(),
			fmt.Sprintf("%.0f", sum.P50),
			fmt.Sprintf("%.0f", sum.P95),
			norm,
			fmt.Sprintf("%.1f", res.ThroughputPerHour),
			fmt.Sprint(res.Committed),
			fmt.Sprint(res.Rejected),
			fmt.Sprint(res.BuildsStarted),
			fmt.Sprint(res.BuildsAborted),
		})
		if res.GreenViolations != 0 {
			log.Fatalf("%s broke the mainline %d times — impossible under these semantics",
				s.Name(), res.GreenViolations)
		}
	}
	fmt.Println(textplot.Table(
		fmt.Sprintf("%d changes @ %.0f/h, %d workers (turnaround in minutes)", *n, *rate, *workers),
		[]string{"strategy", "P50", "P95", "P95/Oracle", "commits/h", "committed", "rejected", "builds", "aborted"},
		rows))
	fmt.Println("every strategy kept the mainline green and landed the same change set;")
	fmt.Println("the paper's contribution is reaching near-Oracle turnaround while doing so.")
}
