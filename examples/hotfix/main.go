// Hotfix: the operational life of a green mainline — line-level patches that
// merge instead of conflicting, an emergency revert of a landed change
// (§1: "roll back to any previously committed change"), and a release cut
// from an arbitrary historical commit point.
//
//	go run ./examples/hotfix
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/repo"
)

const configV1 = `# service config
timeout_s = 30
retries = 3
theme = light
region = auto
`

func main() {
	r := repo.New(map[string]string{
		"svc/BUILD":      "target svc srcs=config.ini",
		"svc/config.ini": configV1,
	})
	svc := core.NewService(r, core.Config{Workers: 4})

	submit := func(id, desc string, fcs ...repo.FileChange) {
		c := &change.Change{
			ID:          change.ID(id),
			Author:      change.Developer{Name: "oncall", Team: "infra", Level: 5},
			Description: desc,
			Patch:       repo.Patch{Changes: fcs},
			BuildSteps:  change.DefaultBuildSteps(),
		}
		if err := svc.Submit(c); err != nil {
			log.Fatal(err)
		}
	}

	// Two developers edit DIFFERENT LINES of the same config concurrently.
	// With whole-file patches the second would be a merge conflict; line
	// patches locate their hunks by content and both land.
	submit("tune-timeout", "svc: drop timeout to 10s",
		repo.EditLines("svc/config.ini", 2, []string{"timeout_s = 30"}, []string{"timeout_s = 10"}))
	submit("dark-theme", "svc: dark theme default",
		repo.EditLines("svc/config.ini", 4, []string{"theme = light"}, []string{"theme = dark"}))

	if err := svc.ProcessAll(context.Background()); err != nil {
		log.Fatal(err)
	}
	for _, o := range svc.Outcomes() {
		fmt.Printf("%-14s %s\n", o.ID, o.State)
	}
	cfg, _ := r.Head().Snapshot().Read("svc/config.ini")
	fmt.Printf("\nmerged config:\n%s\n", indent(cfg))

	// The timeout change turns out to cause an incident: revert it. The
	// revert composes with the dark-theme change that landed after it.
	var timeoutCommit repo.CommitID
	for _, o := range svc.Outcomes() {
		if o.ID == "tune-timeout" {
			timeoutCommit = o.Commit
		}
	}
	rc, err := r.Revert(timeoutCommit, "oncall", r.Head().Time)
	if err != nil {
		log.Fatalf("revert: %v", err)
	}
	fmt.Printf("reverted %s as %s\n", timeoutCommit, rc.ID)
	cfg, _ = r.Head().Snapshot().Read("svc/config.ini")
	if !strings.Contains(cfg, "timeout_s = 30") || !strings.Contains(cfg, "theme = dark") {
		log.Fatalf("revert did not compose: %q", cfg)
	}
	fmt.Printf("\nconfig after revert (timeout restored, theme kept):\n%s\n", indent(cfg))

	// Release engineering can cut a build from ANY commit point — every one
	// is green by construction.
	for seq := 0; seq < r.Len(); seq++ {
		snap, err := r.RollbackState(seq)
		if err != nil {
			log.Fatal(err)
		}
		c, _ := snap.Read("svc/config.ini")
		fmt.Printf("release candidate @%d: %d bytes, timeout line: %s\n",
			seq, len(c), lineWith(c, "timeout_s"))
	}
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}

func lineWith(content, substr string) string {
	for _, l := range strings.Split(content, "\n") {
		if strings.Contains(l, substr) {
			return l
		}
	}
	return "(missing)"
}
