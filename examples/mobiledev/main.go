// Mobiledev: a day in the life of a mobile-app monorepo — the scenario the
// paper's introduction motivates. Three teams land a burst of changes
// concurrently: some break compilation, some pass alone but conflict when
// combined (the pre-release regression story from §1), and the rest are
// clean. SubmitQueue speculates, serializes the conflicting ones, rejects
// the faulty ones with precise reasons, and the mainline stays green at
// every commit point.
//
//	go run ./examples/mobiledev
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/repo"
)

// newMonorepo lays out a rider app, a driver app, and shared libraries.
func newMonorepo() *repo.Repo {
	return repo.New(map[string]string{
		"rider/BUILD":   "target rider srcs=app.go deps=//shared:net,//shared:ui",
		"rider/app.go":  "rider v1",
		"driver/BUILD":  "target driver srcs=app.go deps=//shared:net",
		"driver/app.go": "driver v1",
		"shared/BUILD":  "target net srcs=net.go\ntarget ui srcs=ui.go",
		"shared/net.go": "net timeout=30",
		"shared/ui.go":  "ui theme=light",
		"tools/BUILD":   "target ci srcs=ci.go",
		"tools/ci.go":   "ci v1",
	})
}

// appRunner simulates the build fleet: compilation fails on "syntax error"
// content, and the rider UI test fails when an aggressive network timeout is
// combined with the new heavy theme — a real conflict in the Fig. 1 sense:
// each change passes alone, together they break.
var appRunner = buildsys.RunnerFunc(func(_ context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
	for _, p := range snap.Paths() {
		if c, _ := snap.Read(p); strings.Contains(c, "syntax error") {
			return fmt.Errorf("compile: %s does not parse", p)
		}
	}
	if step.Kind == change.StepUITest && target == "//rider:rider" {
		net, _ := snap.Read("shared/net.go")
		ui, _ := snap.Read("shared/ui.go")
		if strings.Contains(net, "timeout=5") && strings.Contains(ui, "theme=heavy") {
			return errors.New("ui-test: rider app spinner exceeds 5s under heavy theme")
		}
	}
	return nil
})

func modify(r *repo.Repo, path, content string) repo.FileChange {
	cur, ok := r.Head().Snapshot().Read(path)
	if !ok {
		return repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: content}
	}
	return repo.FileChange{Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content}
}

func main() {
	r := newMonorepo()
	svc := core.NewService(r, core.Config{Workers: 6, Runner: appRunner})

	submit := func(id, author, team, desc string, fcs ...repo.FileChange) {
		c := &change.Change{
			ID:          change.ID(id),
			Author:      change.Developer{Name: author, Team: team, Level: 3},
			Description: desc,
			Patch:       repo.Patch{Changes: fcs},
			BuildSteps:  change.DefaultBuildSteps(),
		}
		if err := svc.Submit(c); err != nil {
			log.Fatalf("submit %s: %v", id, err)
		}
	}

	// The burst: six changes land within minutes, as before a release.
	submit("net-timeout", "nina", "network", "shared/net: aggressive 5s timeout",
		modify(r, "shared/net.go", "net timeout=5"))
	submit("ui-heavy", "uma", "design", "shared/ui: heavy theme",
		modify(r, "shared/ui.go", "ui theme=heavy"))
	submit("rider-feature", "rita", "rider", "rider: new pickup flow",
		modify(r, "rider/app.go", "rider v2 pickup-flow"))
	submit("driver-broken", "dan", "driver", "driver: WIP refactor",
		modify(r, "driver/app.go", "driver v2 syntax error"))
	submit("ci-tweak", "carl", "infra", "tools: faster ci",
		modify(r, "tools/ci.go", "ci v2"))
	submit("driver-fix", "dan", "driver", "driver: polish accepted-ride screen",
		modify(r, "driver/app.go", "driver v2 polished"))

	if err := svc.ProcessAll(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== outcomes (in decision order) ===")
	for _, o := range svc.Outcomes() {
		if o.State == change.StateCommitted {
			fmt.Printf("  %-14s committed as %s\n", o.ID, o.Commit)
		} else {
			fmt.Printf("  %-14s REJECTED: %s\n", o.ID, o.Reason)
		}
	}

	// Verify the headline guarantee: every commit point in mainline history
	// passes all build steps.
	fmt.Println("\n=== mainline audit ===")
	for i := 0; i < r.Len(); i++ {
		cm, err := r.At(i)
		if err != nil {
			log.Fatal(err)
		}
		if err := auditGreen(cm.Snapshot()); err != nil {
			log.Fatalf("commit %d (%s) is RED: %v", i, cm.ID, err)
		}
		msg := cm.Message
		if msg == "" {
			msg = "(root)"
		}
		fmt.Printf("  commit %d green ✓  %s\n", i, msg)
	}
	st := svc.BuildStats()
	fmt.Printf("\nbuilds: %d run, %d aborted (speculation), %d step-units skipped via minimal-steps/caching\n",
		st.Builds, st.Aborted, st.SkippedPrior+st.SkippedCache)
}

// auditGreen replays the full build predicate on a snapshot.
func auditGreen(snap repo.Snapshot) error {
	for _, p := range snap.Paths() {
		if c, _ := snap.Read(p); strings.Contains(c, "syntax error") {
			return fmt.Errorf("%s does not compile", p)
		}
	}
	net, _ := snap.Read("shared/net.go")
	ui, _ := snap.Read("shared/ui.go")
	if strings.Contains(net, "timeout=5") && strings.Contains(ui, "theme=heavy") {
		return errors.New("rider UI regression present")
	}
	return nil
}
