// Quickstart: stand up a SubmitQueue over a small monorepo, land one change,
// and watch it merge into an always-green mainline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/repo"
)

func main() {
	// 1. A monorepo: BUILD files declare targets (à la Buck/Bazel).
	r := repo.New(map[string]string{
		"app/BUILD":    "target app srcs=main.go deps=//lib:strings",
		"app/main.go":  `println(greet("rider"))`,
		"lib/BUILD":    "target strings srcs=greet.go",
		"lib/greet.go": `func greet(n string) string { return "hello " + n }`,
	})

	// 2. A SubmitQueue service over it.
	svc := core.NewService(r, core.Config{Workers: 4})

	// 3. A developer edits lib/greet.go and submits the change. The patch
	//    records the base content hash, exactly like a git merge base.
	cur, _ := r.Head().Snapshot().Read("lib/greet.go")
	c := &change.Change{
		ID:          "greet-v2",
		Author:      change.Developer{Name: "alice", Team: "platform", Level: 4},
		Description: "greet: capitalize greeting",
		Patch: repo.Patch{Changes: []repo.FileChange{{
			Path:       "lib/greet.go",
			Op:         repo.OpModify,
			BaseHash:   repo.HashContent(cur),
			NewContent: `func greet(n string) string { return "Hello, " + n }`,
		}}},
		BuildSteps: change.DefaultBuildSteps(),
	}
	if err := svc.Submit(c); err != nil {
		log.Fatal(err)
	}

	// 4. Drive the queue until every pending change is decided.
	if err := svc.ProcessAll(context.Background()); err != nil {
		log.Fatal(err)
	}

	st, err := svc.State("greet-v2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("change %s: %s (commit %s)\n", st.ID, st.State, st.Commit)
	fmt.Printf("mainline length: %d commits\n", r.Len())
	got, _ := r.Head().Snapshot().Read("lib/greet.go")
	fmt.Printf("lib/greet.go @ HEAD: %s\n", got)

	// Every commit point in history is green by construction — SubmitQueue
	// never lands a change whose build steps failed.
	fmt.Println("mainline green: every commit passed compile/unit/integration/ui/artifact steps")
}
