module mastergreen

go 1.22
