package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mastergreen/internal/api"
	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
	"mastergreen/internal/store"
)

// TestEndToEndHTTPStack drives the entire service through the HTTP API the
// way the paper's developers do (Fig. 3): concurrent submissions, some
// conflicting and some broken, over a real network listener — then audits
// that every mainline commit point is green.
func TestEndToEndHTTPStack(t *testing.T) {
	r := repo.New(map[string]string{
		"app/BUILD":   "target app srcs=main.go deps=//lib:lib",
		"app/main.go": "app v1",
		"lib/BUILD":   "target lib srcs=lib.go",
		"lib/lib.go":  "lib v1",
	})
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		for _, p := range snap.Paths() {
			if c, _ := snap.Read(p); strings.Contains(c, "BROKEN") {
				return fmt.Errorf("%s does not compile", p)
			}
		}
		return nil
	})
	bus := events.NewBus(256)
	svc := core.NewService(r, core.Config{
		Workers: 4, Runner: runner, Epoch: 2 * time.Millisecond, Events: bus,
	})
	svc.Start()
	defer svc.Stop()
	srv := api.NewServer(svc)
	srv.SetEvents(bus)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	submit := func(t *testing.T, id string, files []api.FileChange) {
		t.Helper()
		body, _ := json.Marshal(api.SubmitRequest{ID: id, Author: "it", Files: files})
		resp, err := http.Post(ts.URL+"/api/v1/changes", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d", id, resp.StatusCode)
		}
	}

	// Concurrent submissions: independent creates, one broken change, and a
	// pair editing the same file (merge conflict).
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			submit(t, fmt.Sprintf("ind-%d", i), []api.FileChange{{
				Path: fmt.Sprintf("new/f%d.txt", i), Op: "create", Content: "x",
			}})
		}(i)
	}
	wg.Wait()
	submit(t, "broken", []api.FileChange{{
		Path: "lib/lib.go", Op: "modify", BaseContent: "lib v1", Content: "BROKEN",
	}})
	submit(t, "conflict-a", []api.FileChange{{
		Path: "app/main.go", Op: "modify", BaseContent: "app v1", Content: "app v2a",
	}})
	submit(t, "conflict-b", []api.FileChange{{
		Path: "app/main.go", Op: "modify", BaseContent: "app v1", Content: "app v2b",
	}})

	// Poll until everything is decided.
	poll := func(id string) (state, reason string) {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(ts.URL + "/api/v1/changes/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st struct {
				State  string `json:"state"`
				Reason string `json:"reason"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if st.State == "committed" || st.State == "rejected" {
				return st.State, st.Reason
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("%s never decided", id)
		return "", ""
	}
	for i := 0; i < 6; i++ {
		if st, reason := poll(fmt.Sprintf("ind-%d", i)); st != "committed" {
			t.Fatalf("ind-%d = %s (%s)", i, st, reason)
		}
	}
	if st, _ := poll("broken"); st != "rejected" {
		t.Fatalf("broken = %s", st)
	}
	stA, _ := poll("conflict-a")
	stB, _ := poll("conflict-b")
	if !(stA == "committed" && stB == "rejected") {
		t.Fatalf("conflict pair = %s/%s, want committed/rejected (submission order)", stA, stB)
	}

	// Audit: every mainline commit point is green.
	for i := 0; i < r.Len(); i++ {
		cm, err := r.At(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range cm.Snapshot().Paths() {
			if c, _ := cm.Snapshot().Read(p); strings.Contains(c, "BROKEN") {
				t.Fatalf("mainline red at commit %d", i)
			}
		}
	}

	// The event feed saw the full lifecycle.
	resp, err := http.Get(ts.URL + "/api/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	var evResp api.EventsResponse
	_ = json.NewDecoder(resp.Body).Decode(&evResp)
	resp.Body.Close()
	seen := map[events.Type]bool{}
	for _, ev := range evResp.Events {
		seen[ev.Type] = true
	}
	for _, want := range []events.Type{
		events.TypeSubmitted, events.TypeBuildStarted,
		events.TypeBuildFinished, events.TypeCommitted, events.TypeRejected,
	} {
		if !seen[want] {
			t.Fatalf("event feed missing %s (have %v)", want, seen)
		}
	}

	// The dashboard renders with the landed history.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "master is green") {
		t.Fatal("dashboard did not render")
	}
}

// TestEndToEndDurableRestart exercises the durability path across a
// simulated crash mid-backlog, through the public service API.
func TestEndToEndDurableRestart(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")

	r := repo.New(map[string]string{"f/BUILD": "target f srcs=s.txt", "f/s.txt": "v1"})
	j, err := store.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService(r, core.Config{Workers: 2})
	svc.AttachJournal(j)
	for i := 0; i < 4; i++ {
		c := &change.Change{
			ID: change.ID(fmt.Sprintf("d%d", i)),
			Patch: repo.Patch{Changes: []repo.FileChange{{
				Path: fmt.Sprintf("f/new%d.txt", i), Op: repo.OpCreate, NewContent: "x",
			}}},
			BuildSteps: change.DefaultBuildSteps(),
		}
		if err := svc.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	// Crash before processing anything.
	var snap bytes.Buffer
	if err := r.Save(&snap); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	r2, err := repo.Load(&snap)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := core.OpenRecovered(r2, journalPath, core.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if svc2.PendingCount() != 4 {
		t.Fatalf("recovered pending = %d", svc2.PendingCount())
	}
	if err := svc2.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 5 { // root + 4 commits
		t.Fatalf("mainline = %d commits", r2.Len())
	}
	_ = svc2.CloseJournal()
	// Journal compaction leaves only outcomes.
	if err := store.Compact(journalPath, 100); err != nil {
		t.Fatal(err)
	}
	recs, err := store.Replay(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	pending, outcomes := store.PendingFromRecords(recs)
	if len(pending) != 0 || len(outcomes) != 4 {
		t.Fatalf("after compaction: pending=%d outcomes=%d", len(pending), len(outcomes))
	}
}
