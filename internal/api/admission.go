// Bounded admission and overload degradation for the serving path. The
// pending queue is the admission queue: once it holds Capacity undecided
// changes, new submissions are refused with 429 and a Retry-After computed
// from the observed drain rate, and once occupancy crosses the shed
// threshold, dashboard-class reads (status page, events, outcomes listing)
// are refused with 503 so the remaining capacity serves submissions and
// state polls. Accepted submissions are never dropped: admission happens
// before the journal append, so everything acked durable stays queued.
package api

import (
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mastergreen/internal/metrics"
)

// admission tracks queue occupancy against a fixed capacity and estimates
// the drain rate from outcome-count deltas.
type admission struct {
	capacity int
	// shedAt is the occupancy at which read shedding starts (~90% of
	// capacity, always below capacity so shedding precedes refusal).
	shedAt  int
	pending func() int       // current queue occupancy
	decided func() int       // total outcomes so far (drain-rate samples)
	now     func() time.Time // injected clock (wallclock policy)

	rejected int64 // 429s issued (atomic)
	shed     int64 // 503s issued (atomic)

	mu          sync.Mutex
	lastAt      time.Time
	lastDecided int
	ratePerSec  float64
}

func newAdmission(capacity int, pending, decided func() int, now func() time.Time) *admission {
	shedAt := capacity * 9 / 10
	if shedAt < 1 {
		shedAt = 1
	}
	if shedAt >= capacity {
		shedAt = capacity - 1
	}
	if shedAt < 1 {
		shedAt = 1
	}
	return &admission{
		capacity: capacity,
		shedAt:   shedAt,
		pending:  pending,
		decided:  decided,
		now:      now,
	}
}

// admitSubmit reports whether a submission may enter. When refused, it
// returns the Retry-After seconds derived from the backlog over capacity
// and the observed drain rate, clamped to [1, 30]. The under-capacity fast
// path is a single occupancy read and a compare — no locks, no allocation.
func (a *admission) admitSubmit() (retryAfter int, ok bool) {
	p := a.pending()
	if p < a.capacity {
		return 0, true
	}
	atomic.AddInt64(&a.rejected, 1)
	rate := a.sampleRate()
	excess := float64(p - a.capacity + 1)
	retry := 30
	if rate > 0 {
		retry = int(math.Ceil(excess / rate))
	}
	if retry < 1 {
		retry = 1
	}
	if retry > 30 {
		retry = 30
	}
	return retry, false
}

// sampleRate refreshes the drain-rate estimate at most once per second and
// returns the current estimate (decisions per second).
func (a *admission) sampleRate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	nowT := a.now()
	if a.lastAt.IsZero() {
		a.lastAt = nowT
		a.lastDecided = a.decided()
		return a.ratePerSec
	}
	if dt := nowT.Sub(a.lastAt); dt >= time.Second {
		d := a.decided()
		a.ratePerSec = float64(d-a.lastDecided) / dt.Seconds()
		a.lastAt = nowT
		a.lastDecided = d
	}
	return a.ratePerSec
}

// overloaded reports whether dashboard-class reads should be shed.
func (a *admission) overloaded() bool { return a.pending() >= a.shedAt }

// countShed records one shed read.
func (a *admission) countShed() { atomic.AddInt64(&a.shed, 1) }

// Rejected returns the number of submissions refused with 429.
func (a *admission) Rejected() int64 { return atomic.LoadInt64(&a.rejected) }

// Shed returns the number of reads refused with 503.
func (a *admission) Shed() int64 { return atomic.LoadInt64(&a.shed) }

// Rate returns the current drain-rate estimate (decisions per second).
func (a *admission) Rate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ratePerSec
}

// Gauges renders admission health in the repo's uniform gauge form.
func (a *admission) Gauges() metrics.Gauges {
	return metrics.Gauges{
		{Name: "admission_capacity", Value: float64(a.capacity)},
		{Name: "admission_queued", Value: float64(a.pending())},
		{Name: "admission_rejected", Value: float64(a.Rejected())},
		{Name: "admission_shed_reads", Value: float64(a.Shed())},
		{Name: "admission_drain_per_sec", Value: a.Rate()},
	}
}

// EnableAdmission bounds the submit queue at capacity pending changes
// (429 + Retry-After beyond it) and sheds dashboard-class reads with 503
// once occupancy reaches ~90% of capacity. State polls, health checks, and
// already-accepted submissions are never shed. Call before serving.
func (s *Server) EnableAdmission(capacity int) {
	if capacity < 2 {
		capacity = 2
	}
	s.adm = newAdmission(capacity,
		s.svc.PendingCount,
		s.svc.OutcomeCount,
		func() time.Time { return s.now() })
}

// itoaSmall renders small non-negative ints without allocating for the
// common single-digit Retry-After values.
func itoaSmall(n int) string {
	if n >= 0 && n < len(smallInts) {
		return smallInts[n]
	}
	return strconv.Itoa(n)
}

var smallInts = [...]string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10"}
