package api

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestAdmissionRejectsBeyondCapacity: once the queue holds Capacity pending
// changes, further submissions get 429 + Retry-After while state polls and
// liveness keep working — and nothing already accepted is lost.
func TestAdmissionRejectsBeyondCapacity(t *testing.T) {
	srv, svc := benchService(t)
	srv.EnableAdmission(4)

	for i := 0; i < 4; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/changes",
			strings.NewReader(submitBody(i))))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/changes",
		strings.NewReader(submitBody(99))))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", rec.Code)
	}
	ra := rec.Header().Get("Retry-After")
	if n, err := time.ParseDuration(ra + "s"); err != nil || n < time.Second || n > 30*time.Second {
		t.Fatalf("Retry-After = %q, want 1..30 seconds", ra)
	}
	// The refused change was never admitted.
	if svc.PendingCount() != 4 {
		t.Fatalf("pending = %d, want 4", svc.PendingCount())
	}
	// State polls are never shed.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/changes/bench-0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("state poll under overload = %d, want 200", rec.Code)
	}
	// Liveness is never shed.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz under overload = %d, want 200", rec.Code)
	}
	if srv.adm.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", srv.adm.Rejected())
	}
}

// TestOverloadShedsDashboardReads: at ~90% occupancy the status page,
// dashboard, events, and outcomes listings return 503 so the remaining
// capacity serves submissions and state polls.
func TestOverloadShedsDashboardReads(t *testing.T) {
	srv, _ := benchService(t)
	srv.EnableAdmission(4) // shedAt = 3

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/changes",
			strings.NewReader(submitBody(i))))
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, rec.Code)
		}
	}
	for _, path := range []string{"/api/v1/status", "/api/v1/outcomes", "/"} {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s at shed threshold = %d, want 503", path, rec.Code)
		}
	}
	// Submissions are still admitted between shedAt and capacity.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/changes",
		strings.NewReader(submitBody(3))))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit between shed and capacity = %d, want 202", rec.Code)
	}
	if srv.adm.Shed() != 3 {
		t.Fatalf("shed = %d, want 3", srv.adm.Shed())
	}
}

// TestRetryAfterTracksDrainRate: the Retry-After estimate follows the
// observed decisions-per-second, clamped to [1, 30].
func TestRetryAfterTracksDrainRate(t *testing.T) {
	pending, decided := 10, 0
	clock := time.Unix(1000, 0)
	a := newAdmission(10,
		func() int { return pending },
		func() int { return decided },
		func() time.Time { return clock })

	// No drain observed yet: conservative 30s.
	if retry, ok := a.admitSubmit(); ok || retry != 30 {
		t.Fatalf("first refusal = (%d, %v), want (30, false)", retry, ok)
	}
	// 5 decisions over 2s → 2.5/s; backlog of 1 over capacity → ceil(1/2.5)=1.
	clock = clock.Add(2 * time.Second)
	decided = 5
	if retry, ok := a.admitSubmit(); ok || retry != 1 {
		t.Fatalf("refusal with drain = (%d, %v), want (1, false)", retry, ok)
	}
	// Deep backlog: 31 over capacity at 2.5/s → ceil(31/2.5)=13.
	pending = 40
	if retry, ok := a.admitSubmit(); ok || retry != 13 {
		t.Fatalf("deep-backlog refusal = (%d, %v), want (13, false)", retry, ok)
	}
	// Under capacity admits without touching the estimator.
	pending = 3
	if _, ok := a.admitSubmit(); !ok {
		t.Fatal("under-capacity submit refused")
	}
}

// TestStatusCacheServesStaleWithinTTL: /api/v1/status is rebuilt at most
// once per TTL; between rebuilds every request gets the same pre-marshaled
// bytes without touching the core.
func TestStatusCacheServesStaleWithinTTL(t *testing.T) {
	srv, _ := benchService(t)
	clock := time.Unix(5000, 0)
	srv.SetClock(func() time.Time { return clock })

	get := func() string {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/status", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		return rec.Body.String()
	}
	before := get()
	// Mutate service state: a new pending change.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/changes",
		strings.NewReader(submitBody(0))))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	// Within the TTL the snapshot is intentionally stale.
	if got := get(); got != before {
		t.Fatal("status rebuilt within TTL")
	}
	if n := srv.status.Refreshes(); n != 1 {
		t.Fatalf("refreshes = %d, want 1", n)
	}
	// Past the TTL the next request rebuilds and sees the submit.
	clock = clock.Add(time.Second)
	after := get()
	if after == before {
		t.Fatal("status not rebuilt after TTL")
	}
	if !strings.Contains(after, `"pending":1`) {
		t.Fatalf("rebuilt status missing new pending count: %s", after)
	}
}

// TestStatusRefresherRebuildsInBackground: the sqd refresher rebuilds the
// snapshot off the request path; stop() halts it.
func TestStatusRefresherRebuildsInBackground(t *testing.T) {
	srv, _ := benchService(t)
	stop := srv.StartStatusRefresher(time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for srv.status.Refreshes() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("refresher did not rebuild in time")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
}
