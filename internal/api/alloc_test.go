package api

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Alloc budgets for the hot handlers, measured with testing.AllocsPerRun.
// The pre-PR baseline (stdlib json decode/encode, per-request status
// aggregation) was 28 allocs per submit and 5 per state read; the budgets
// pin the ≥5x reduction so a regression fails loudly instead of silently
// eroding throughput. If a budget trips, profile with
// `go test -bench BenchmarkSubmitHandler -memprofile` before raising it.
const (
	submitAllocBudget = 6 // measured 5 + headroom for map-growth amortization
	stateAllocBudget  = 1 // measured 0
)

// TestSubmitHandlerAllocBudget pins the submit path's allocations per
// request end to end through ServeHTTP.
func TestSubmitHandlerAllocBudget(t *testing.T) {
	srv, _ := benchService(t)
	const runs = 1000
	reqs := make([]*http.Request, 0, runs+2)
	for i := 0; i < runs+2; i++ {
		reqs = append(reqs, httptest.NewRequest(http.MethodPost, "/api/v1/changes",
			strings.NewReader(submitBody(i))))
	}
	w := &nullResponseWriter{}
	idx := 0
	allocs := testing.AllocsPerRun(runs, func() {
		srv.ServeHTTP(w, reqs[idx])
		idx++
	})
	if allocs > submitAllocBudget {
		t.Fatalf("submit handler allocs/op = %.1f, budget %d (pre-PR baseline: 28)",
			allocs, submitAllocBudget)
	}
}

// TestStateHandlerAllocBudget pins the state-poll path's allocations per
// request end to end through ServeHTTP.
func TestStateHandlerAllocBudget(t *testing.T) {
	srv, _ := benchService(t)
	seed := httptest.NewRequest(http.MethodPost, "/api/v1/changes", strings.NewReader(submitBody(0)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, seed)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("seed submit = %d: %s", rec.Code, rec.Body)
	}
	get := httptest.NewRequest(http.MethodGet, "/api/v1/changes/bench-0", nil)
	w := &nullResponseWriter{}
	allocs := testing.AllocsPerRun(1000, func() {
		srv.ServeHTTP(w, get)
	})
	if allocs > stateAllocBudget {
		t.Fatalf("state handler allocs/op = %.1f, budget %d (pre-PR baseline: 5)",
			allocs, stateAllocBudget)
	}
}
