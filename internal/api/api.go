// Package api exposes SubmitQueue over HTTP, mirroring the paper's stateless
// API service (§7.1): landing a change and getting the state of a change,
// plus a small status page in place of the cycle.js web UI.
//
// Endpoints:
//
//	POST /api/v1/changes        — submit (land) a change
//	GET  /api/v1/changes/{id}   — get a change's state
//	GET  /api/v1/status         — service counters
//	GET  /healthz               — liveness
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
)

// SubmitRequest is the JSON body of POST /api/v1/changes.
type SubmitRequest struct {
	ID          string       `json:"id"`
	Author      string       `json:"author"`
	Team        string       `json:"team"`
	Description string       `json:"description"`
	Files       []FileChange `json:"files"`
	// patch and nFiles are filled by the server-side parser (codec.go),
	// which converts file edits straight into repo form instead of
	// materializing Files; Files stays for clients that marshal requests.
	patch  repo.Patch
	nFiles int
	// TestPlan/RevertPlan feed the revision-level model features.
	TestPlan   bool `json:"test_plan"`
	RevertPlan bool `json:"revert_plan"`
	// Benefit weights this change in the speculation value function
	// (§4.2.1); 0 means the default of 1. Security patches and release
	// blockers submit with higher benefit.
	Benefit float64 `json:"benefit,omitempty"`
	// Priority selects the scheduling lane (DESIGN.md §4l): "P0"/"hotfix",
	// "P2"/"bulk", anything else (including empty) is the normal P1 lane.
	Priority string `json:"priority,omitempty"`
	// DeadlineInSec, when > 0, sets a soft deadline this many seconds from
	// submission; the scheduler ages the change's weight as it approaches.
	DeadlineInSec float64 `json:"deadline_in_sec,omitempty"`
}

// FileChange is one file edit in a submit request.
type FileChange struct {
	Path string `json:"path"`
	// Op is "create", "modify", "delete", or "edit-lines".
	Op string `json:"op"`
	// BaseContent is the content the edit was authored against (used to
	// compute the merge-base hash for modify/delete).
	BaseContent string `json:"base_content,omitempty"`
	Content     string `json:"content,omitempty"`
	// Line-edit fields ("edit-lines"): replace OldLines at the 1-based
	// StartLine with NewLines; the hunk is located by content with fuzz, so
	// disjoint line edits to one file merge instead of conflicting.
	StartLine int      `json:"start_line,omitempty"`
	OldLines  []string `json:"old_lines,omitempty"`
	NewLines  []string `json:"new_lines,omitempty"`
}

// SubmitResponse is the JSON reply to a submit.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// StateResponse is the JSON reply to a state query.
type StateResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	Commit string `json:"commit,omitempty"`
}

// StatusResponse summarizes the service.
type StatusResponse struct {
	Pending       int    `json:"pending"`
	MainlineLen   int    `json:"mainline_len"`
	MainlineHead  string `json:"mainline_head"`
	BuildsStarted int    `json:"builds_started"`
	BuildsAborted int    `json:"builds_aborted"`

	// Conflict-analyzer cache effectiveness (DESIGN.md §4e).
	AnalyzerGraphBuilds       int     `json:"analyzer_graph_builds"`
	AnalyzerReusedAnalyses    int     `json:"analyzer_reused_analyses"`
	AnalyzerPairCacheHits     int     `json:"analyzer_pair_cache_hits"`
	AnalyzerPairsReused       int     `json:"analyzer_pairs_reused"`
	AnalyzerAnalysisReuseRate float64 `json:"analyzer_analysis_reuse_rate"`

	// Planner incremental-epoch effectiveness (DESIGN.md §4f).
	PlannerPrefixHits     int     `json:"planner_prefix_hits"`
	PlannerPrefixMisses   int     `json:"planner_prefix_misses"`
	PlannerPlansComputed  int     `json:"planner_plans_computed"`
	PlannerPlansSkipped   int     `json:"planner_plans_skipped"`
	PlannerKeysCached     int     `json:"planner_keys_cached"`
	PlannerFinishedPruned int     `json:"planner_finished_pruned"`
	PlannerPrefixHitRate  float64 `json:"planner_prefix_hit_rate"`

	// Lean-CI fleet-compute accounting (DESIGN.md §4j): executed step
	// wall-time split by whether the owning build's result was used.
	ComputeExecSeconds         float64 `json:"compute_exec_seconds"`
	ComputeUsefulSeconds       float64 `json:"compute_useful_seconds"`
	ComputeWastedSeconds       float64 `json:"compute_wasted_seconds"`
	ComputeWasteRate           float64 `json:"compute_waste_rate"`
	PlannerObsoleteAborted     int     `json:"planner_obsolete_aborted"`
	PlannerSpecBranchesSkipped int     `json:"planner_spec_branches_skipped"`

	// Reliability-layer effectiveness (DESIGN.md §4g).
	ReliabilityInjectedFaults    int `json:"reliability_injected_faults"`
	ReliabilityRetries           int `json:"reliability_retries"`
	ReliabilityFlakesConfirmed   int `json:"reliability_flakes_confirmed"`
	ReliabilityQuarantinedKinds  int `json:"reliability_quarantined_kinds"`
	ReliabilityVerifications     int `json:"reliability_verifications"`
	ReliabilityRejectionsAverted int `json:"reliability_rejections_averted"`

	// Sharded multi-planner scale-out (DESIGN.md §4h); zero when the classic
	// single-planner engine runs.
	Sharded                  bool        `json:"sharded"`
	ShardsActive             int         `json:"shards_active"`
	ShardComponents          int         `json:"shard_components"`
	ShardRebalanced          int         `json:"shard_rebalanced"`
	ArbiterCommits           int         `json:"arbiter_commits"`
	ArbiterCrossShardChecks  int         `json:"arbiter_cross_shard_checks"`
	ArbiterCrossShardRejects int         `json:"arbiter_cross_shard_rejects"`
	ArbiterMaxQueueDepth     int         `json:"arbiter_max_queue_depth"`
	ArbiterCommitsByShard    map[int]int `json:"arbiter_commits_by_shard,omitempty"`

	// Serving-path health (DESIGN.md §4k): event-bus fan-out shedding and
	// submit admission. Zero when events/admission are not enabled.
	EventsPublished       int64 `json:"events_published"`
	EventsDropped         int64 `json:"events_dropped"`
	EventsSubscribers     int   `json:"events_subscribers"`
	EventsSlowSubscribers int   `json:"events_slow_subscribers"`

	AdmissionCapacity    int     `json:"admission_capacity"`
	AdmissionQueued      int     `json:"admission_queued"`
	AdmissionRejected    int64   `json:"admission_rejected"`
	AdmissionShedReads   int64   `json:"admission_shed_reads"`
	AdmissionDrainPerSec float64 `json:"admission_drain_per_sec"`

	// Priority-lane gauges (DESIGN.md §4l), in severity order P0, P1, P2.
	// Empty when the service runs without a sched policy.
	SchedClasses []ClassStatus `json:"sched_classes,omitempty"`

	// StatusRefreshes counts rebuilds of this very response: requests
	// between rebuilds were served from the pre-marshaled snapshot.
	StatusRefreshes int64 `json:"status_refreshes"`
}

// ClassStatus is one scheduling lane's live gauges in the status response.
type ClassStatus struct {
	Class             string  `json:"class"`
	Accepted          int64   `json:"accepted"`
	Pending           int     `json:"pending"`
	Committed         int64   `json:"committed"`
	Rejected          int64   `json:"rejected"`
	TurnaroundMeanSec float64 `json:"turnaround_mean_sec"`
	TurnaroundMaxSec  float64 `json:"turnaround_max_sec"`
}

// Server adapts a core.Service to HTTP.
type Server struct {
	svc    *core.Service
	mux    *http.ServeMux
	events *events.Bus
	// now supplies the clock for generated change IDs, the status cache
	// TTL, and admission drain-rate sampling; injectable so API behavior
	// replays deterministically under test.
	now func() time.Time
	// adm bounds submissions and sheds dashboard reads under overload
	// (nil: unbounded, never sheds). See EnableAdmission.
	adm *admission
	// status serves GET /api/v1/status from a pre-marshaled snapshot.
	status *statusCache
}

// NewServer wraps the service.
func NewServer(svc *core.Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), now: time.Now}
	s.status = newStatusCache(0, func() time.Time { return s.now() }, s.buildStatusBody)
	s.mux.HandleFunc("/api/v1/changes", s.handleChanges)
	s.mux.HandleFunc("/api/v1/changes/", s.handleChangeState)
	s.mux.HandleFunc("/api/v1/status", s.handleStatus)
	s.mux.HandleFunc("/api/v1/events", s.handleEvents)
	s.mux.HandleFunc("/api/v1/outcomes", s.handleOutcomes)
	s.mux.HandleFunc("/", s.handleDashboard)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// SetClock injects the clock used for generated change IDs, the status
// cache, and admission sampling (tests).
func (s *Server) SetClock(now func() time.Time) { s.now = now }

// ServeHTTP implements http.Handler. The hot endpoints (submit, state poll,
// status) are routed with a direct string switch: ServeMux's pattern matcher
// allocates per request, and those three paths are the entire serving load.
// Everything else falls through to the mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/api/v1/changes":
		s.handleChanges(w, r)
	case strings.HasPrefix(path, "/api/v1/changes/"):
		s.handleChangeState(w, r)
	case path == "/api/v1/status":
		s.handleStatus(w, r)
	default:
		s.mux.ServeHTTP(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// shedRead refuses a dashboard-class read with 503 + Retry-After when the
// admission queue is near capacity, reporting whether the request was
// handled. State polls and health checks never pass through here: under
// overload the cheap per-change reads and liveness stay up while the
// expensive aggregate reads make room for submissions.
func (s *Server) shedRead(w http.ResponseWriter) bool {
	if s.adm == nil || !s.adm.overloaded() {
		return false
	}
	s.adm.countShed()
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "overloaded: dashboard reads shed")
	return true
}

// convertFile converts one request file edit into repo form.
func convertFile(f *FileChange) (repo.FileChange, error) {
	if f.Path == "" {
		return repo.FileChange{}, fmt.Errorf("file change without path")
	}
	fc := repo.FileChange{Path: f.Path, NewContent: f.Content}
	switch f.Op {
	case "create":
		fc.Op = repo.OpCreate
	case "modify":
		fc.Op = repo.OpModify
		fc.BaseHash = repo.HashContent(f.BaseContent)
	case "delete":
		fc.Op = repo.OpDelete
		fc.BaseHash = repo.HashContent(f.BaseContent)
	case "edit-lines":
		fc.Op = repo.OpEditLines
		fc.StartLine = f.StartLine
		fc.OldLines = f.OldLines
		fc.NewLines = f.NewLines
	default:
		return repo.FileChange{}, fmt.Errorf("unknown op %q for %s", f.Op, f.Path)
	}
	return fc, nil
}

// changeWithRevision allocates a change and its revision together: one heap
// object instead of two on the submit hot path.
type changeWithRevision struct {
	c   change.Change
	rev change.Revision
}

// defaultBuildSteps is shared across all submitted changes: nothing mutates
// a change's BuildSteps in place (the planner's test selection copies before
// narrowing, the journal encodes element by element), so one slice serves
// every request.
var defaultBuildSteps = change.DefaultBuildSteps()

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.adm != nil {
		if retry, ok := s.adm.admitSubmit(); !ok {
			w.Header().Set("Retry-After", itoaSmall(retry))
			writeError(w, http.StatusTooManyRequests, "queue full; retry later")
			return
		}
	}
	bufp := getBuf()
	data, err := readAll(r.Body, *bufp)
	*bufp = data[:0]
	if err != nil {
		putBuf(bufp)
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	// One copy: the parser returns substrings of this string, which the
	// enqueued change retains; the read buffer itself goes back to the pool.
	body := string(data)
	putBuf(bufp)
	var req SubmitRequest
	if err := parseSubmitRequest(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.ID == "" {
		req.ID = "c-" + strconv.FormatInt(s.now().UnixNano(), 10)
	}
	cr := &changeWithRevision{}
	c := &cr.c
	*c = change.Change{
		ID:          change.ID(req.ID),
		Author:      change.Developer{Name: req.Author, Team: req.Team, Level: 3},
		Description: req.Description,
		Patch:       req.patch,
		BuildSteps:  defaultBuildSteps,
		Revision:    &cr.rev,
		Stats:       change.Stats{FilesChanged: req.nFiles},
		Benefit:     req.Benefit,
		Class:       change.ParseClass(req.Priority),
	}
	if req.DeadlineInSec > 0 {
		c.Deadline = s.now().Add(time.Duration(req.DeadlineInSec * float64(time.Second)))
	}
	cr.rev = change.Revision{
		ID:         change.RevisionID("r-" + req.ID),
		TestPlan:   req.TestPlan,
		RevertPlan: req.RevertPlan,
	}
	if err := s.svc.Submit(c); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	out := getBuf()
	b := append(*out, `{"id":`...)
	b = appendJSONString(b, req.ID)
	b = append(b, `,"state":"pending"}`...)
	h := w.Header()
	h["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusAccepted)
	_, _ = w.Write(b)
	*out = b[:0]
	putBuf(out)
}

func (s *Server) handleChangeState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/changes/")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing change id")
		return
	}
	st, err := s.svc.State(change.ID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	out := getBuf()
	b := append(*out, `{"id":`...)
	b = appendJSONString(b, string(st.ID))
	b = append(b, `,"state":`...)
	b = appendJSONString(b, st.State.String())
	if st.Reason != "" {
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, st.Reason)
	}
	if st.Commit != "" {
		b = append(b, `,"commit":`...)
		b = appendJSONString(b, string(st.Commit))
	}
	b = append(b, '}')
	h := w.Header()
	h["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	*out = b[:0]
	putBuf(out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.shedRead(w) {
		return
	}
	h := w.Header()
	h["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.status.get())
}

// buildStatusBody renders the full status snapshot to JSON (status cache
// rebuild; runs once per TTL or refresher tick, not per request).
func (s *Server) buildStatusBody() []byte {
	st := s.buildStatusResponse()
	b, err := json.Marshal(&st)
	if err != nil {
		return []byte(`{"error":"status marshal failed"}`)
	}
	return b
}

func (s *Server) buildStatusResponse() StatusResponse {
	bs := s.svc.BuildStats()
	as := s.svc.AnalyzerStats()
	ps := s.svc.PlannerStats()
	rs := s.svc.ReliabilityStats()
	ss := s.svc.ShardStats()
	abs := s.svc.ArbiterStats()
	head := s.svc.Repo().Head()
	reuseRate := 0.0
	if total := as.ReusedAnalyses + as.AnalyzedChanges; total > 0 {
		reuseRate = float64(as.ReusedAnalyses) / float64(total)
	}
	prefixRate := 0.0
	if total := ps.PrefixHits + ps.PrefixMisses; total > 0 {
		prefixRate = float64(ps.PrefixHits) / float64(total)
	}
	resp := StatusResponse{
		Pending:       s.svc.PendingCount(),
		MainlineLen:   s.svc.Repo().Len(),
		MainlineHead:  string(head.ID),
		BuildsStarted: bs.Builds,
		BuildsAborted: bs.Aborted,

		AnalyzerGraphBuilds:       as.GraphBuilds,
		AnalyzerReusedAnalyses:    as.ReusedAnalyses,
		AnalyzerPairCacheHits:     as.PairCacheHits,
		AnalyzerPairsReused:       as.PairsReused,
		AnalyzerAnalysisReuseRate: reuseRate,

		PlannerPrefixHits:     ps.PrefixHits,
		PlannerPrefixMisses:   ps.PrefixMisses,
		PlannerPlansComputed:  ps.PlansComputed,
		PlannerPlansSkipped:   ps.PlansSkipped,
		PlannerKeysCached:     ps.KeysCached,
		PlannerFinishedPruned: ps.FinishedPruned,
		PlannerPrefixHitRate:  prefixRate,

		ComputeExecSeconds:         bs.ExecTime.Seconds(),
		ComputeUsefulSeconds:       bs.UsefulTime.Seconds(),
		ComputeWastedSeconds:       bs.WastedTime.Seconds(),
		ComputeWasteRate:           bs.WasteRate(),
		PlannerObsoleteAborted:     ps.ObsoleteAborted,
		PlannerSpecBranchesSkipped: ps.SpecBranchesSkipped,

		ReliabilityInjectedFaults:    rs.InjectedFaults(),
		ReliabilityRetries:           rs.Retries,
		ReliabilityFlakesConfirmed:   rs.FlakesConfirmed,
		ReliabilityQuarantinedKinds:  rs.QuarantinedKinds,
		ReliabilityVerifications:     rs.Verifications,
		ReliabilityRejectionsAverted: rs.RejectionsAverted,

		Sharded:                  s.svc.Sharded(),
		ShardsActive:             ss.ShardsActive,
		ShardComponents:          ss.Components,
		ShardRebalanced:          ss.Rebalanced,
		ArbiterCommits:           abs.Commits,
		ArbiterCrossShardChecks:  abs.CrossShardChecks,
		ArbiterCrossShardRejects: abs.CrossShardRejects,
		ArbiterMaxQueueDepth:     abs.MaxQueueDepth,
		ArbiterCommitsByShard:    abs.CommitsByShard,

		StatusRefreshes: s.status.Refreshes(),
	}
	scs := s.svc.SchedStats()
	var schedActive bool
	for _, cs := range scs.Classes {
		if cs.Accepted > 0 {
			schedActive = true
			break
		}
	}
	if schedActive {
		for _, cl := range []change.Class{change.ClassHotfix, change.ClassNormal, change.ClassBulk} {
			cs := scs.Class(cl)
			resp.SchedClasses = append(resp.SchedClasses, ClassStatus{
				Class:             cl.String(),
				Accepted:          cs.Accepted,
				Pending:           cs.Pending,
				Committed:         cs.Committed,
				Rejected:          cs.Rejected,
				TurnaroundMeanSec: cs.TurnaroundMeanSec,
				TurnaroundMaxSec:  cs.TurnaroundMaxSec,
			})
		}
	}
	if s.events != nil {
		es := s.events.Stats()
		resp.EventsPublished = es.Published
		resp.EventsDropped = es.Dropped
		resp.EventsSubscribers = es.Subscribers
		resp.EventsSlowSubscribers = es.SlowSubscribers
	}
	if s.adm != nil {
		resp.AdmissionCapacity = s.adm.capacity
		resp.AdmissionQueued = s.adm.pending()
		resp.AdmissionRejected = s.adm.Rejected()
		resp.AdmissionShedReads = s.adm.Shed()
		resp.AdmissionDrainPerSec = s.adm.Rate()
	}
	return resp
}
