// Package api exposes SubmitQueue over HTTP, mirroring the paper's stateless
// API service (§7.1): landing a change and getting the state of a change,
// plus a small status page in place of the cycle.js web UI.
//
// Endpoints:
//
//	POST /api/v1/changes        — submit (land) a change
//	GET  /api/v1/changes/{id}   — get a change's state
//	GET  /api/v1/status         — service counters
//	GET  /healthz               — liveness
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
)

// SubmitRequest is the JSON body of POST /api/v1/changes.
type SubmitRequest struct {
	ID          string       `json:"id"`
	Author      string       `json:"author"`
	Team        string       `json:"team"`
	Description string       `json:"description"`
	Files       []FileChange `json:"files"`
	// TestPlan/RevertPlan feed the revision-level model features.
	TestPlan   bool `json:"test_plan"`
	RevertPlan bool `json:"revert_plan"`
	// Benefit weights this change in the speculation value function
	// (§4.2.1); 0 means the default of 1. Security patches and release
	// blockers submit with higher benefit.
	Benefit float64 `json:"benefit,omitempty"`
}

// FileChange is one file edit in a submit request.
type FileChange struct {
	Path string `json:"path"`
	// Op is "create", "modify", "delete", or "edit-lines".
	Op string `json:"op"`
	// BaseContent is the content the edit was authored against (used to
	// compute the merge-base hash for modify/delete).
	BaseContent string `json:"base_content,omitempty"`
	Content     string `json:"content,omitempty"`
	// Line-edit fields ("edit-lines"): replace OldLines at the 1-based
	// StartLine with NewLines; the hunk is located by content with fuzz, so
	// disjoint line edits to one file merge instead of conflicting.
	StartLine int      `json:"start_line,omitempty"`
	OldLines  []string `json:"old_lines,omitempty"`
	NewLines  []string `json:"new_lines,omitempty"`
}

// SubmitResponse is the JSON reply to a submit.
type SubmitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// StateResponse is the JSON reply to a state query.
type StateResponse struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	Commit string `json:"commit,omitempty"`
}

// StatusResponse summarizes the service.
type StatusResponse struct {
	Pending       int    `json:"pending"`
	MainlineLen   int    `json:"mainline_len"`
	MainlineHead  string `json:"mainline_head"`
	BuildsStarted int    `json:"builds_started"`
	BuildsAborted int    `json:"builds_aborted"`

	// Conflict-analyzer cache effectiveness (DESIGN.md §4e).
	AnalyzerGraphBuilds       int     `json:"analyzer_graph_builds"`
	AnalyzerReusedAnalyses    int     `json:"analyzer_reused_analyses"`
	AnalyzerPairCacheHits     int     `json:"analyzer_pair_cache_hits"`
	AnalyzerPairsReused       int     `json:"analyzer_pairs_reused"`
	AnalyzerAnalysisReuseRate float64 `json:"analyzer_analysis_reuse_rate"`

	// Planner incremental-epoch effectiveness (DESIGN.md §4f).
	PlannerPrefixHits     int     `json:"planner_prefix_hits"`
	PlannerPrefixMisses   int     `json:"planner_prefix_misses"`
	PlannerPlansComputed  int     `json:"planner_plans_computed"`
	PlannerPlansSkipped   int     `json:"planner_plans_skipped"`
	PlannerKeysCached     int     `json:"planner_keys_cached"`
	PlannerFinishedPruned int     `json:"planner_finished_pruned"`
	PlannerPrefixHitRate  float64 `json:"planner_prefix_hit_rate"`

	// Lean-CI fleet-compute accounting (DESIGN.md §4j): executed step
	// wall-time split by whether the owning build's result was used.
	ComputeExecSeconds         float64 `json:"compute_exec_seconds"`
	ComputeUsefulSeconds       float64 `json:"compute_useful_seconds"`
	ComputeWastedSeconds       float64 `json:"compute_wasted_seconds"`
	ComputeWasteRate           float64 `json:"compute_waste_rate"`
	PlannerObsoleteAborted     int     `json:"planner_obsolete_aborted"`
	PlannerSpecBranchesSkipped int     `json:"planner_spec_branches_skipped"`

	// Reliability-layer effectiveness (DESIGN.md §4g).
	ReliabilityInjectedFaults    int `json:"reliability_injected_faults"`
	ReliabilityRetries           int `json:"reliability_retries"`
	ReliabilityFlakesConfirmed   int `json:"reliability_flakes_confirmed"`
	ReliabilityQuarantinedKinds  int `json:"reliability_quarantined_kinds"`
	ReliabilityVerifications     int `json:"reliability_verifications"`
	ReliabilityRejectionsAverted int `json:"reliability_rejections_averted"`

	// Sharded multi-planner scale-out (DESIGN.md §4h); zero when the classic
	// single-planner engine runs.
	Sharded                  bool        `json:"sharded"`
	ShardsActive             int         `json:"shards_active"`
	ShardComponents          int         `json:"shard_components"`
	ShardRebalanced          int         `json:"shard_rebalanced"`
	ArbiterCommits           int         `json:"arbiter_commits"`
	ArbiterCrossShardChecks  int         `json:"arbiter_cross_shard_checks"`
	ArbiterCrossShardRejects int         `json:"arbiter_cross_shard_rejects"`
	ArbiterMaxQueueDepth     int         `json:"arbiter_max_queue_depth"`
	ArbiterCommitsByShard    map[int]int `json:"arbiter_commits_by_shard,omitempty"`
}

// Server adapts a core.Service to HTTP.
type Server struct {
	svc    *core.Service
	mux    *http.ServeMux
	events *events.Bus
	// now supplies the clock for generated change IDs; injectable so API
	// behavior replays deterministically under test.
	now func() time.Time
}

// NewServer wraps the service.
func NewServer(svc *core.Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), now: time.Now}
	s.mux.HandleFunc("/api/v1/changes", s.handleChanges)
	s.mux.HandleFunc("/api/v1/changes/", s.handleChangeState)
	s.mux.HandleFunc("/api/v1/status", s.handleStatus)
	s.mux.HandleFunc("/api/v1/events", s.handleEvents)
	s.mux.HandleFunc("/api/v1/outcomes", s.handleOutcomes)
	s.mux.HandleFunc("/", s.handleDashboard)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// SetClock injects the clock used for generated change IDs (tests).
func (s *Server) SetClock(now func() time.Time) { s.now = now }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// toPatch converts request file edits into a repo.Patch.
func toPatch(files []FileChange) (repo.Patch, error) {
	var p repo.Patch
	for _, f := range files {
		if f.Path == "" {
			return repo.Patch{}, fmt.Errorf("file change without path")
		}
		fc := repo.FileChange{Path: f.Path, NewContent: f.Content}
		switch f.Op {
		case "create":
			fc.Op = repo.OpCreate
		case "modify":
			fc.Op = repo.OpModify
			fc.BaseHash = repo.HashContent(f.BaseContent)
		case "delete":
			fc.Op = repo.OpDelete
			fc.BaseHash = repo.HashContent(f.BaseContent)
		case "edit-lines":
			fc.Op = repo.OpEditLines
			fc.StartLine = f.StartLine
			fc.OldLines = f.OldLines
			fc.NewLines = f.NewLines
		default:
			return repo.Patch{}, fmt.Errorf("unknown op %q for %s", f.Op, f.Path)
		}
		p.Changes = append(p.Changes, fc)
	}
	return p, nil
}

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.ID == "" {
		req.ID = fmt.Sprintf("c-%d", s.now().UnixNano())
	}
	patch, err := toPatch(req.Files)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	c := &change.Change{
		ID:          change.ID(req.ID),
		Author:      change.Developer{Name: req.Author, Team: req.Team, Level: 3},
		Description: req.Description,
		Patch:       patch,
		BuildSteps:  change.DefaultBuildSteps(),
		Revision: &change.Revision{
			ID:         change.RevisionID("r-" + req.ID),
			TestPlan:   req.TestPlan,
			RevertPlan: req.RevertPlan,
		},
		Stats:   change.Stats{FilesChanged: len(req.Files)},
		Benefit: req.Benefit,
	}
	if err := s.svc.Submit(c); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: req.ID, State: change.StatePending.String()})
}

func (s *Server) handleChangeState(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/changes/")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing change id")
		return
	}
	st, err := s.svc.State(change.ID(id))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, StateResponse{
		ID:     string(st.ID),
		State:  st.State.String(),
		Reason: st.Reason,
		Commit: string(st.Commit),
	})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	bs := s.svc.BuildStats()
	as := s.svc.AnalyzerStats()
	ps := s.svc.PlannerStats()
	rs := s.svc.ReliabilityStats()
	ss := s.svc.ShardStats()
	abs := s.svc.ArbiterStats()
	head := s.svc.Repo().Head()
	reuseRate := 0.0
	if total := as.ReusedAnalyses + as.AnalyzedChanges; total > 0 {
		reuseRate = float64(as.ReusedAnalyses) / float64(total)
	}
	prefixRate := 0.0
	if total := ps.PrefixHits + ps.PrefixMisses; total > 0 {
		prefixRate = float64(ps.PrefixHits) / float64(total)
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Pending:       s.svc.PendingCount(),
		MainlineLen:   s.svc.Repo().Len(),
		MainlineHead:  string(head.ID),
		BuildsStarted: bs.Builds,
		BuildsAborted: bs.Aborted,

		AnalyzerGraphBuilds:       as.GraphBuilds,
		AnalyzerReusedAnalyses:    as.ReusedAnalyses,
		AnalyzerPairCacheHits:     as.PairCacheHits,
		AnalyzerPairsReused:       as.PairsReused,
		AnalyzerAnalysisReuseRate: reuseRate,

		PlannerPrefixHits:     ps.PrefixHits,
		PlannerPrefixMisses:   ps.PrefixMisses,
		PlannerPlansComputed:  ps.PlansComputed,
		PlannerPlansSkipped:   ps.PlansSkipped,
		PlannerKeysCached:     ps.KeysCached,
		PlannerFinishedPruned: ps.FinishedPruned,
		PlannerPrefixHitRate:  prefixRate,

		ComputeExecSeconds:         bs.ExecTime.Seconds(),
		ComputeUsefulSeconds:       bs.UsefulTime.Seconds(),
		ComputeWastedSeconds:       bs.WastedTime.Seconds(),
		ComputeWasteRate:           bs.WasteRate(),
		PlannerObsoleteAborted:     ps.ObsoleteAborted,
		PlannerSpecBranchesSkipped: ps.SpecBranchesSkipped,

		ReliabilityInjectedFaults:    rs.InjectedFaults(),
		ReliabilityRetries:           rs.Retries,
		ReliabilityFlakesConfirmed:   rs.FlakesConfirmed,
		ReliabilityQuarantinedKinds:  rs.QuarantinedKinds,
		ReliabilityVerifications:     rs.Verifications,
		ReliabilityRejectionsAverted: rs.RejectionsAverted,

		Sharded:                  s.svc.Sharded(),
		ShardsActive:             ss.ShardsActive,
		ShardComponents:          ss.Components,
		ShardRebalanced:          ss.Rebalanced,
		ArbiterCommits:           abs.Commits,
		ArbiterCrossShardChecks:  abs.CrossShardChecks,
		ArbiterCrossShardRejects: abs.CrossShardRejects,
		ArbiterMaxQueueDepth:     abs.MaxQueueDepth,
		ArbiterCommitsByShard:    abs.CommitsByShard,
	})
}
