package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mastergreen/internal/core"
	"mastergreen/internal/repo"
)

func newServer(t *testing.T) (*Server, *core.Service, *repo.Repo) {
	t.Helper()
	r := repo.New(map[string]string{
		"lib/BUILD":  "target lib srcs=lib.go",
		"lib/lib.go": "lib v1",
	})
	svc := core.NewService(r, core.Config{Workers: 2, Epoch: 2 * time.Millisecond})
	svc.Start()
	t.Cleanup(svc.Stop)
	return NewServer(svc), svc, r
}

func doJSON(t *testing.T, h http.Handler, method, path string, body interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestSubmitAndPoll(t *testing.T) {
	srv, _, _ := newServer(t)
	sub := SubmitRequest{
		ID: "c1", Author: "alice", Team: "infra", Description: "edit lib",
		Files: []FileChange{{
			Path: "lib/lib.go", Op: "modify", BaseContent: "lib v1", Content: "lib v2",
		}},
		TestPlan: true,
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/v1/changes", sub)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", rec.Code, rec.Body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec = doJSON(t, srv, http.MethodGet, "/api/v1/changes/c1", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("state status = %d", rec.Code)
		}
		var st StateResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "committed" {
			if st.Commit == "" {
				t.Fatal("committed without commit id")
			}
			return
		}
		if st.State == "rejected" {
			t.Fatalf("rejected: %s", st.Reason)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never committed; state=%s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	srv, _, _ := newServer(t)
	// Bad JSON.
	req := httptest.NewRequest(http.MethodPost, "/api/v1/changes", bytes.NewBufferString("{"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json status = %d", rec.Code)
	}
	// Unknown op.
	rec = doJSON(t, srv, http.MethodPost, "/api/v1/changes", SubmitRequest{
		ID: "c2", Files: []FileChange{{Path: "x", Op: "exec"}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown op status = %d", rec.Code)
	}
	// Missing path.
	rec = doJSON(t, srv, http.MethodPost, "/api/v1/changes", SubmitRequest{
		ID: "c3", Files: []FileChange{{Op: "create"}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing path status = %d", rec.Code)
	}
	// Empty patch rejected by core validation.
	rec = doJSON(t, srv, http.MethodPost, "/api/v1/changes", SubmitRequest{ID: "c4"})
	if rec.Code != http.StatusConflict {
		t.Fatalf("empty patch status = %d", rec.Code)
	}
	// Wrong method.
	rec = doJSON(t, srv, http.MethodGet, "/api/v1/changes", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET collection status = %d", rec.Code)
	}
}

func TestDuplicateSubmit(t *testing.T) {
	srv, _, _ := newServer(t)
	sub := SubmitRequest{
		ID:    "dup",
		Files: []FileChange{{Path: "new.txt", Op: "create", Content: "x"}},
	}
	if rec := doJSON(t, srv, http.MethodPost, "/api/v1/changes", sub); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rec.Code)
	}
	if rec := doJSON(t, srv, http.MethodPost, "/api/v1/changes", sub); rec.Code != http.StatusConflict {
		t.Fatalf("dup submit = %d", rec.Code)
	}
}

func TestStateUnknown(t *testing.T) {
	srv, _, _ := newServer(t)
	rec := doJSON(t, srv, http.MethodGet, "/api/v1/changes/ghost", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
	rec = doJSON(t, srv, http.MethodGet, "/api/v1/changes/", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty id status = %d", rec.Code)
	}
	rec = doJSON(t, srv, http.MethodPost, "/api/v1/changes/x", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST state status = %d", rec.Code)
	}
}

func TestStatusAndHealth(t *testing.T) {
	srv, _, r := newServer(t)
	rec := doJSON(t, srv, http.MethodGet, "/api/v1/status", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st StatusResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.MainlineLen != r.Len() || st.MainlineHead == "" {
		t.Fatalf("status = %+v", st)
	}
	rec = doJSON(t, srv, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	rec = doJSON(t, srv, http.MethodPost, "/api/v1/status", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
}

func TestAutoIDAssigned(t *testing.T) {
	srv, _, _ := newServer(t)
	rec := doJSON(t, srv, http.MethodPost, "/api/v1/changes", SubmitRequest{
		Files: []FileChange{{Path: "auto.txt", Op: "create", Content: "x"}},
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	var resp SubmitResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" {
		t.Fatal("no auto ID assigned")
	}
}
