package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mastergreen/internal/core"
	"mastergreen/internal/repo"
)

// nullResponseWriter discards the response so handler benchmarks measure the
// handler's own allocations, not the recorder's.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header, 4)
	}
	return w.h
}
func (w *nullResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

func benchService(b testing.TB) (*Server, *core.Service) {
	b.Helper()
	r := repo.New(map[string]string{
		"lib/BUILD":  "target lib srcs=lib.go",
		"lib/lib.go": "lib v1",
	})
	// No background loop: the benchmarks exercise only the HTTP layer.
	svc := core.NewService(r, core.Config{Workers: 2})
	return NewServer(svc), svc
}

// submitBody returns one pre-rendered submit request body.
func submitBody(i int) string {
	return fmt.Sprintf(`{"id":"bench-%d","author":"bench","team":"load",`+
		`"files":[{"path":"load/f-%d.txt","op":"create","content":"content"}],"test_plan":true}`, i, i)
}

// BenchmarkSubmitHandler measures POST /api/v1/changes end to end through
// ServeHTTP (decode, validate, enqueue, encode). Alloc budget pinned by
// TestSubmitHandlerAllocBudget.
func BenchmarkSubmitHandler(b *testing.B) {
	srv, _ := benchService(b)
	bodies := make([]string, b.N)
	reqs := make([]*http.Request, b.N)
	for i := 0; i < b.N; i++ {
		bodies[i] = submitBody(i)
		reqs[i] = httptest.NewRequest(http.MethodPost, "/api/v1/changes", strings.NewReader(bodies[i]))
	}
	w := &nullResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.ServeHTTP(w, reqs[i])
	}
}

// BenchmarkStateHandler measures GET /api/v1/changes/{id}. Alloc budget
// pinned by TestStateHandlerAllocBudget.
func BenchmarkStateHandler(b *testing.B) {
	srv, _ := benchService(b)
	req := httptest.NewRequest(http.MethodPost, "/api/v1/changes", strings.NewReader(submitBody(0)))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		b.Fatalf("seed submit = %d: %s", rec.Code, rec.Body)
	}
	get := httptest.NewRequest(http.MethodGet, "/api/v1/changes/bench-0", nil)
	w := &nullResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.ServeHTTP(w, get)
	}
}

// BenchmarkStatusHandler measures GET /api/v1/status (the dashboard poll).
func BenchmarkStatusHandler(b *testing.B) {
	srv, svc := benchService(b)
	_ = svc
	get := httptest.NewRequest(http.MethodGet, "/api/v1/status", nil)
	w := &nullResponseWriter{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.ServeHTTP(w, get)
	}
}
