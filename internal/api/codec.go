// Hand-rolled JSON codec for the hot API endpoints. The stdlib
// encoding/json decoder costs ~12 heap allocations per submit body; at tens
// of thousands of submissions per minute that is the dominant serving cost.
// This codec reads the body into a pooled buffer, converts it to a string
// once (the only retained allocation — parsed fields are substrings sharing
// that backing array), and renders responses into pooled buffers with no
// per-request encoder state. Alloc budgets are pinned by
// TestSubmitHandlerAllocBudget and TestStateHandlerAllocBudget.
package api

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"unicode/utf16"
	"unicode/utf8"

	"mastergreen/internal/repo"
)

// jsonContentType is assigned directly into response header maps
// (h["Content-Type"] = jsonContentType): a shared immutable slice, where
// Header.Set would allocate a fresh []string per call.
var jsonContentType = []string{"application/json"}

// bufPool recycles request-read and response-render scratch buffers.
var bufPool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 4096); return &b }}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(p *[]byte) {
	if cap(*p) > 1<<20 {
		return // don't let one giant body pin a giant buffer
	}
	*p = (*p)[:0]
	bufPool.Put(p)
}

// readAll drains r into buf (which should come from bufPool), growing as
// needed, and returns the filled slice.
func readAll(r io.Reader, buf []byte) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// jparser is a minimal JSON parser over a string. String values that contain
// no escapes are returned as substrings of the input — zero-copy; the caller
// owns the input string's lifetime.
type jparser struct {
	s string
	i int
}

func (p *jparser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("offset %d: "+format, append([]interface{}{p.i}, args...)...)
}

func (p *jparser) skipWS() {
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *jparser) peek() byte {
	if p.i < len(p.s) {
		return p.s[p.i]
	}
	return 0
}

func (p *jparser) expect(c byte) error {
	if p.i >= len(p.s) || p.s[p.i] != c {
		return p.errf("expected %q", string(c))
	}
	p.i++
	return nil
}

// parseString parses a JSON string at the cursor. The fast path (no escapes)
// returns a substring; escaped strings are decoded into a fresh string.
func (p *jparser) parseString() (string, error) {
	if p.peek() != '"' {
		return "", p.errf("expected string")
	}
	start := p.i + 1
	for j := start; j < len(p.s); j++ {
		c := p.s[j]
		if c == '"' {
			p.i = j + 1
			return p.s[start:j], nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
	}
	end := start
	for end < len(p.s) && p.s[end] != '"' {
		if p.s[end] == '\\' {
			end++ // skip the escaped character (quote included)
		}
		end++
	}
	if end >= len(p.s) {
		return "", p.errf("unterminated string")
	}
	out, err := unescapeJSON(p.s[start:end])
	if err != nil {
		return "", p.errf("%v", err)
	}
	p.i = end + 1
	return out, nil
}

// unescapeJSON decodes the backslash escapes of a JSON string body (the part
// between the quotes).
func unescapeJSON(s string) (string, error) {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '\\' {
			b.WriteByte(c)
			i++
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("truncated escape")
		}
		switch s[i] {
		case '"', '\\', '/':
			b.WriteByte(s[i])
			i++
		case 'b':
			b.WriteByte('\b')
			i++
		case 'f':
			b.WriteByte('\f')
			i++
		case 'n':
			b.WriteByte('\n')
			i++
		case 'r':
			b.WriteByte('\r')
			i++
		case 't':
			b.WriteByte('\t')
			i++
		case 'u':
			if i+5 > len(s) {
				return "", fmt.Errorf("truncated \\u escape")
			}
			v, err := strconv.ParseUint(s[i+1:i+5], 16, 32)
			if err != nil {
				return "", fmt.Errorf("bad \\u escape")
			}
			i += 5
			r := rune(v)
			if utf16.IsSurrogate(r) && i+6 <= len(s) && s[i] == '\\' && s[i+1] == 'u' {
				if v2, err := strconv.ParseUint(s[i+2:i+6], 16, 32); err == nil {
					if dec := utf16.DecodeRune(r, rune(v2)); dec != utf8.RuneError {
						r = dec
						i += 6
					}
				}
			}
			b.WriteRune(r)
		default:
			return "", fmt.Errorf("bad escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

// parseBool parses true/false at the cursor.
func (p *jparser) parseBool() (bool, error) {
	if strings.HasPrefix(p.s[p.i:], "true") {
		p.i += 4
		return true, nil
	}
	if strings.HasPrefix(p.s[p.i:], "false") {
		p.i += 5
		return false, nil
	}
	return false, p.errf("expected bool")
}

// numberEnd returns the index just past the number token starting at i.
func (p *jparser) numberEnd() int {
	j := p.i
	for j < len(p.s) {
		switch p.s[j] {
		case '-', '+', '.', 'e', 'E',
			'0', '1', '2', '3', '4', '5', '6', '7', '8', '9':
			j++
		default:
			return j
		}
	}
	return j
}

func (p *jparser) parseFloat() (float64, error) {
	end := p.numberEnd()
	v, err := strconv.ParseFloat(p.s[p.i:end], 64)
	if err != nil {
		return 0, p.errf("bad number")
	}
	p.i = end
	return v, nil
}

func (p *jparser) parseInt() (int, error) {
	end := p.numberEnd()
	v, err := strconv.ParseInt(p.s[p.i:end], 10, 64)
	if err != nil {
		return 0, p.errf("bad integer")
	}
	p.i = end
	return int(v), nil
}

// skipValue consumes any JSON value (for unknown keys).
func (p *jparser) skipValue() error {
	p.skipWS()
	switch c := p.peek(); {
	case c == '"':
		_, err := p.parseString()
		return err
	case c == '{':
		p.i++
		return p.skipContainer('}')
	case c == '[':
		p.i++
		return p.skipContainer(']')
	case c == 't' || c == 'f':
		_, err := p.parseBool()
		return err
	case c == 'n':
		if strings.HasPrefix(p.s[p.i:], "null") {
			p.i += 4
			return nil
		}
		return p.errf("bad literal")
	case c == '-' || (c >= '0' && c <= '9'):
		_, err := p.parseFloat()
		return err
	default:
		return p.errf("unexpected %q", string(c))
	}
}

// skipContainer consumes the remainder of an object or array whose opener
// was already consumed. Counting only this container's own bracket kind is
// enough: strings are parsed (so brackets inside them don't count), and the
// other bracket kind can only appear properly nested, never closing ours.
func (p *jparser) skipContainer(closer byte) error {
	opener := byte('{')
	if closer == ']' {
		opener = '['
	}
	depth := 1
	for p.i < len(p.s) {
		switch p.s[p.i] {
		case '"':
			if _, err := p.parseString(); err != nil {
				return err
			}
			continue // parseString already advanced past the closing quote
		case opener:
			depth++
		case closer:
			depth--
			if depth == 0 {
				p.i++
				return nil
			}
		}
		p.i++
	}
	return p.errf("unterminated container")
}

// parseStringArray parses ["a","b",...] into out (appending).
func (p *jparser) parseStringArray() ([]string, error) {
	p.skipWS()
	if p.peek() == 'n' && strings.HasPrefix(p.s[p.i:], "null") {
		p.i += 4
		return nil, nil
	}
	if err := p.expect('['); err != nil {
		return nil, err
	}
	var out []string
	p.skipWS()
	if p.peek() == ']' {
		p.i++
		return out, nil
	}
	for {
		p.skipWS()
		s, err := p.parseString()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		p.skipWS()
		switch p.peek() {
		case ',':
			p.i++
		case ']':
			p.i++
			return out, nil
		default:
			return nil, p.errf("expected , or ]")
		}
	}
}

// parseFileChange parses one {"path":...,"op":...} object into fc.
func (p *jparser) parseFileChange(fc *FileChange) error {
	p.skipWS()
	if err := p.expect('{'); err != nil {
		return err
	}
	p.skipWS()
	if p.peek() == '}' {
		p.i++
		return nil
	}
	for {
		p.skipWS()
		key, err := p.parseString()
		if err != nil {
			return err
		}
		p.skipWS()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.skipWS()
		switch key {
		case "path":
			fc.Path, err = p.parseString()
		case "op":
			fc.Op, err = p.parseString()
		case "base_content":
			fc.BaseContent, err = p.parseString()
		case "content":
			fc.Content, err = p.parseString()
		case "start_line":
			fc.StartLine, err = p.parseInt()
		case "old_lines":
			fc.OldLines, err = p.parseStringArray()
		case "new_lines":
			fc.NewLines, err = p.parseStringArray()
		default:
			err = p.skipValue()
		}
		if err != nil {
			return err
		}
		p.skipWS()
		switch p.peek() {
		case ',':
			p.i++
		case '}':
			p.i++
			return nil
		default:
			return p.errf("expected , or }")
		}
	}
}

// parseSubmitRequest parses a submit body into req. Field substrings share
// body's backing array, so body must outlive req — the handler converts the
// pooled read buffer to a string precisely so this holds.
func parseSubmitRequest(body string, req *SubmitRequest) error {
	p := jparser{s: body}
	p.skipWS()
	if err := p.expect('{'); err != nil {
		return err
	}
	p.skipWS()
	if p.peek() == '}' {
		return nil
	}
	for {
		p.skipWS()
		key, err := p.parseString()
		if err != nil {
			return err
		}
		p.skipWS()
		if err := p.expect(':'); err != nil {
			return err
		}
		p.skipWS()
		switch key {
		case "id":
			req.ID, err = p.parseString()
		case "author":
			req.Author, err = p.parseString()
		case "team":
			req.Team, err = p.parseString()
		case "description":
			req.Description, err = p.parseString()
		case "test_plan":
			req.TestPlan, err = p.parseBool()
		case "revert_plan":
			req.RevertPlan, err = p.parseBool()
		case "benefit":
			req.Benefit, err = p.parseFloat()
		case "priority":
			req.Priority, err = p.parseString()
		case "deadline_in_sec":
			req.DeadlineInSec, err = p.parseFloat()
		case "files":
			err = p.parseFiles(req)
		default:
			err = p.skipValue()
		}
		if err != nil {
			return err
		}
		p.skipWS()
		switch p.peek() {
		case ',':
			p.i++
		case '}':
			p.i++
			return nil
		default:
			return p.errf("expected , or }")
		}
	}
}

// parseFiles parses the files array, converting each edit straight into
// repo form (req.patch) — the intermediate []FileChange never materializes
// on the serving path.
func (p *jparser) parseFiles(req *SubmitRequest) error {
	p.skipWS()
	if p.peek() == 'n' && strings.HasPrefix(p.s[p.i:], "null") {
		p.i += 4
		return nil
	}
	if err := p.expect('['); err != nil {
		return err
	}
	p.skipWS()
	if p.peek() == ']' {
		p.i++
		return nil
	}
	// One file per request is the common shape; start small and grow.
	if req.patch.Changes == nil {
		req.patch.Changes = make([]repo.FileChange, 0, 2)
	}
	for {
		var fc FileChange
		if err := p.parseFileChange(&fc); err != nil {
			return err
		}
		rfc, err := convertFile(&fc)
		if err != nil {
			return err
		}
		req.patch.Changes = append(req.patch.Changes, rfc)
		req.nFiles++
		p.skipWS()
		switch p.peek() {
		case ',':
			p.i++
		case ']':
			p.i++
			return nil
		default:
			return p.errf("expected , or ]")
		}
	}
}

// appendJSONString appends s as a quoted, escaped JSON string.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
