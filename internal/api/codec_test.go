package api

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mastergreen/internal/repo"
)

// TestParseSubmitRequestMatchesStdlib: the hand-rolled parser must agree
// with encoding/json on well-formed bodies, including escapes, unicode,
// unknown fields, and all file-op shapes.
func TestParseSubmitRequestMatchesStdlib(t *testing.T) {
	bodies := []string{
		`{}`,
		`{"id":"c1","author":"ana","team":"infra","description":"plain"}`,
		`{"id":"c2","files":[{"path":"a/b.go","op":"create","content":"x"}],"test_plan":true}`,
		`{"id":"c3","benefit":2.5,"revert_plan":true,"files":[]}`,
		`{"id":"esc-\"quoted\"","description":"line1\nline2\ttab \\ slash \/"}`,
		`{"id":"uni-\u00e9\u6f22","description":"surrogate \ud83d\ude00 pair"}`,
		`{"unknown_scalar":42,"unknown_obj":{"a":[1,{"b":"}"}]},"unknown_arr":["]","x"],"id":"c4"}`,
		`{"id":"c5","files":[{"path":"f.txt","op":"edit-lines","start_line":3,` +
			`"old_lines":["a","b"],"new_lines":["c"]}]}`,
		`{"id":"c6","files":[{"path":"m.go","op":"modify","base_content":"old","content":"new"},` +
			`{"path":"d.go","op":"delete","base_content":"bye"}]}`,
		"\n\t {\"id\" : \"ws\" , \"benefit\" : -1.5e2 } ",
	}
	for _, body := range bodies {
		var want SubmitRequest
		if err := json.Unmarshal([]byte(body), &want); err != nil {
			t.Fatalf("stdlib rejects test body %q: %v", body, err)
		}
		var got SubmitRequest
		if err := parseSubmitRequest(body, &got); err != nil {
			t.Fatalf("parse %q: %v", body, err)
		}
		if got.ID != want.ID || got.Author != want.Author || got.Team != want.Team ||
			got.Description != want.Description || got.TestPlan != want.TestPlan ||
			got.RevertPlan != want.RevertPlan || got.Benefit != want.Benefit {
			t.Fatalf("parse %q:\ngot  %+v\nwant %+v", body, got, want)
		}
		// The hand-rolled parser converts files straight to repo form;
		// compare against converting the stdlib result the same way.
		wantFiles := make([]repo.FileChange, 0, len(want.Files))
		for i := range want.Files {
			fc, cerr := convertFile(&want.Files[i])
			if cerr != nil {
				t.Fatalf("convert stdlib files for %q: %v", body, cerr)
			}
			wantFiles = append(wantFiles, fc)
		}
		if len(got.patch.Changes) != len(wantFiles) {
			t.Fatalf("parse %q: %d files, want %d", body, len(got.patch.Changes), len(wantFiles))
		}
		for i := range wantFiles {
			if !reflect.DeepEqual(got.patch.Changes[i], wantFiles[i]) {
				t.Fatalf("parse %q file %d:\ngot  %+v\nwant %+v",
					body, i, got.patch.Changes[i], wantFiles[i])
			}
		}
		if got.nFiles != len(want.Files) {
			t.Fatalf("parse %q: nFiles = %d, want %d", body, got.nFiles, len(want.Files))
		}
	}
}

// TestParseSubmitRequestRejectsMalformed: malformed bodies error instead of
// parsing partially.
func TestParseSubmitRequestRejectsMalformed(t *testing.T) {
	bad := []string{
		``,
		`not json`,
		`{`,
		`{"id"}`,
		`{"id":}`,
		`{"id":"x"`,
		`{"id":"unterminated}`,
		`{"files":[{"path":"p","op":"create"}`,
		`{"files":{"path":"p"}}`,
		`{"benefit":"not a number"}`,
		`{"test_plan":"yes"}`,
		`{"id":"x","desc\u0000ription":"bad escape \q"}`,
		`[1,2,3]`,
	}
	for _, body := range bad {
		var req SubmitRequest
		if err := parseSubmitRequest(body, &req); err == nil {
			t.Fatalf("parse %q: expected error", body)
		}
	}
}

// TestAppendJSONStringEscapes: the response encoder produces valid JSON for
// every byte class that needs escaping.
func TestAppendJSONStringEscapes(t *testing.T) {
	cases := []string{
		"plain",
		`with "quotes" and \backslash\`,
		"newline\nreturn\rtab\t",
		"control\x01bytes\x1f",
		"unicode é漢 😀",
		"",
	}
	for _, in := range cases {
		b := appendJSONString(nil, in)
		var out string
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("appendJSONString(%q) produced invalid JSON %s: %v", in, b, err)
		}
		if out != in {
			t.Fatalf("appendJSONString(%q) round-tripped to %q", in, out)
		}
	}
}

// TestUnescapeJSON: decoder edge cases, including surrogate pairs and
// unpaired surrogates.
func TestUnescapeJSON(t *testing.T) {
	got, err := unescapeJSON(`a\u00e9b\ud83d\ude00c`)
	if err != nil || got != "aéb😀c" {
		t.Fatalf("unescape = %q, %v", got, err)
	}
	// An unpaired high surrogate decodes to the replacement character, as
	// encoding/json does.
	if got, err := unescapeJSON(`x\ud83dy`); err != nil || !strings.Contains(got, "\uFFFD") {
		t.Fatalf("unpaired surrogate = %q, %v", got, err)
	}
	if _, err := unescapeJSON(`\u12`); err == nil {
		t.Fatal("truncated \\u escape accepted")
	}
	if _, err := unescapeJSON(`\q`); err == nil {
		t.Fatal("unknown escape accepted")
	}
}
