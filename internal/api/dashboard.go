package api

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"

	"mastergreen/internal/change"
	"mastergreen/internal/events"
	"mastergreen/internal/sched"
)

// SetEvents attaches an event bus, enabling GET /api/v1/events and the
// live portion of the status page (the role cycle.js plays in §7.1).
func (s *Server) SetEvents(b *events.Bus) { s.events = b }

// EventsResponse is the JSON reply of the polling events endpoint.
type EventsResponse struct {
	Events  []events.Event `json:"events"`
	LastSeq int64          `json:"last_seq"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.events == nil {
		writeError(w, http.StatusNotFound, "events not enabled")
		return
	}
	if s.shedRead(w) {
		return
	}
	since := int64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad since: "+err.Error())
			return
		}
		since = n
	}
	writeJSON(w, http.StatusOK, EventsResponse{
		Events:  s.events.Since(since),
		LastSeq: s.events.LastSeq(),
	})
}

// OutcomeItem is one entry of the outcomes listing.
type OutcomeItem struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Reason string `json:"reason,omitempty"`
	Commit string `json:"commit,omitempty"`
}

func (s *Server) handleOutcomes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.shedRead(w) {
		return
	}
	var out []OutcomeItem
	for _, o := range s.svc.Outcomes() {
		out = append(out, OutcomeItem{
			ID: string(o.ID), State: o.State.String(), Reason: o.Reason, Commit: string(o.Commit),
		})
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"outcomes": out})
}

var dashboardTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><title>SubmitQueue</title>
<style>
 body { font-family: monospace; margin: 2em; background: #fafafa; }
 h1 { color: #2a7d2a; } table { border-collapse: collapse; }
 td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; }
 .committed { color: #2a7d2a; } .rejected { color: #b03030; }
</style></head><body>
<h1>SubmitQueue — master is green</h1>
<p>mainline: {{.MainlineLen}} commits, HEAD {{.Head}} | pending: {{.Pending}} |
builds: {{.Builds}} run / {{.Aborted}} aborted</p>
<p>compute: {{.Compute}}</p>
<p>analyzer: {{.Analyzer}}</p>
<p>planner: {{.Planner}}</p>
<p>reliability: {{.Reliability}}</p>
{{if .Sched}}<p>sched: {{.Sched}}</p>{{end}}
{{if .Bus}}<p>bus: {{.Bus}}</p>{{end}}
{{if .Admission}}<p>admission: {{.Admission}}</p>{{end}}
{{if .Sharded}}<p>shards: {{.Shards}}</p>
<p>arbiter: {{.Arbiter}}</p>{{end}}
<h2>recent outcomes</h2>
<table><tr><th>change</th><th>state</th><th>detail</th></tr>
{{range .Outcomes}}<tr><td>{{.ID}}</td><td class="{{.State}}">{{.State}}</td><td>{{.Detail}}</td></tr>
{{end}}</table>
<h2>recent events</h2>
<table><tr><th>#</th><th>type</th><th>change</th><th>build</th><th>detail</th></tr>
{{range .Events}}<tr><td>{{.Seq}}</td><td>{{.Type}}</td><td>{{.Change}}</td><td>{{.Build}}</td><td>{{.Detail}}</td></tr>
{{end}}</table>
</body></html>`))

type dashboardData struct {
	MainlineLen int
	Head        string
	Pending     int
	Builds      int
	Aborted     int
	Compute     string // fleet-compute gauges (useful vs wasted), "name=value …"
	Analyzer    string // conflict-analyzer cache gauges, "name=value …"
	Planner     string // planner incremental-epoch gauges, "name=value …"
	Reliability string // flaky-failure layer gauges, "name=value …"
	Sched       string // priority-lane gauges, one block per class
	Bus         string // event-bus fan-out gauges, "name=value …"
	Admission   string // submit-admission gauges, "name=value …"
	Sharded     bool
	Shards      string // shard-coordinator gauges, "name=value …"
	Arbiter     string // commit-arbiter gauges, "name=value …"
	Outcomes    []dashboardOutcome
	Events      []events.Event
}

type dashboardOutcome struct {
	ID     change.ID
	State  string
	Detail string
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if s.shedRead(w) {
		return
	}
	bs := s.svc.BuildStats()
	d := dashboardData{
		MainlineLen: s.svc.Repo().Len(),
		Head:        string(s.svc.Repo().Head().ID),
		Pending:     s.svc.PendingCount(),
		Builds:      bs.Builds,
		Aborted:     bs.Aborted,
		Compute:     bs.Gauges().String(),
		Analyzer:    s.svc.AnalyzerStats().Gauges().String(),
		Planner:     s.svc.PlannerStats().Gauges().String(),
		Reliability: s.svc.ReliabilityStats().Gauges().String(),
		Sharded:     s.svc.Sharded(),
		Shards:      s.svc.ShardStats().Gauges().String(),
		Arbiter:     s.svc.ArbiterStats().Gauges().String(),
	}
	if s.events != nil {
		d.Bus = s.events.Gauges().String()
	}
	if s.adm != nil {
		d.Admission = s.adm.Gauges().String()
	}
	if scs := s.svc.SchedStats(); scs != (sched.Stats{}) {
		d.Sched = scs.Gauges()
	}
	outs := s.svc.Outcomes()
	start := 0
	if len(outs) > 20 {
		start = len(outs) - 20
	}
	for _, o := range outs[start:] {
		detail := string(o.Commit)
		if o.Reason != "" {
			detail = o.Reason
		}
		d.Outcomes = append(d.Outcomes, dashboardOutcome{
			ID: o.ID, State: o.State.String(), Detail: detail,
		})
	}
	if s.events != nil {
		evs := s.events.Since(0)
		if len(evs) > 20 {
			evs = evs[len(evs)-20:]
		}
		d.Events = evs
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, d); err != nil {
		fmt.Fprintf(w, "render error: %v", err)
	}
}
