package api

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/core"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
)

// newEventedServer wires a service with an event bus attached.
func newEventedServer(t *testing.T) (*Server, *events.Bus) {
	t.Helper()
	r := repo.New(map[string]string{
		"lib/BUILD":  "target lib srcs=lib.go",
		"lib/lib.go": "lib v1",
	})
	bus := events.NewBus(128)
	svc := core.NewService(r, core.Config{Workers: 2, Events: bus})
	srv := NewServer(svc)
	srv.SetEvents(bus)
	// Land one change synchronously so there is history to show.
	sub := SubmitRequest{
		ID: "c1", Author: "alice",
		Files: []FileChange{{Path: "lib/lib.go", Op: "modify", BaseContent: "lib v1", Content: "lib v2"}},
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/v1/changes", sub)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.ProcessAll(ctx); err != nil {
		t.Fatal(err)
	}
	return srv, bus
}

func TestEventsEndpoint(t *testing.T) {
	srv, bus := newEventedServer(t)
	rec := doJSON(t, srv, http.MethodGet, "/api/v1/events", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp EventsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Events) == 0 || resp.LastSeq == 0 {
		t.Fatalf("no events: %+v", resp)
	}
	// The lifecycle must include a submit and a commit.
	types := map[events.Type]bool{}
	for _, ev := range resp.Events {
		types[ev.Type] = true
	}
	if !types[events.TypeSubmitted] || !types[events.TypeCommitted] || !types[events.TypeBuildStarted] {
		t.Fatalf("missing lifecycle events: %v", types)
	}
	// Since filtering works.
	rec = doJSON(t, srv, http.MethodGet, "/api/v1/events?since="+jsonInt(resp.LastSeq), nil)
	var resp2 EventsResponse
	_ = json.Unmarshal(rec.Body.Bytes(), &resp2)
	if len(resp2.Events) != 0 {
		t.Fatalf("since filter leaked %d events", len(resp2.Events))
	}
	// Bad since.
	rec = doJSON(t, srv, http.MethodGet, "/api/v1/events?since=abc", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since = %d", rec.Code)
	}
	_ = bus
}

func jsonInt(v int64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

func TestEventsDisabled(t *testing.T) {
	srv, _, _ := newServer(t)
	rec := doJSON(t, srv, http.MethodGet, "/api/v1/events", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestOutcomesEndpoint(t *testing.T) {
	srv, _ := newEventedServer(t)
	rec := doJSON(t, srv, http.MethodGet, "/api/v1/outcomes", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"c1"`) || !strings.Contains(rec.Body.String(), "committed") {
		t.Fatalf("body = %s", rec.Body.String())
	}
	if rec := doJSON(t, srv, http.MethodPost, "/api/v1/outcomes", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d", rec.Code)
	}
}

func TestDashboardRenders(t *testing.T) {
	srv, _ := newEventedServer(t)
	rec := doJSON(t, srv, http.MethodGet, "/", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"SubmitQueue", "master is green", "c1", "committed", "recent events"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
	// Unknown paths 404 rather than rendering the dashboard.
	rec = doJSON(t, srv, http.MethodGet, "/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path = %d", rec.Code)
	}
}

func TestSubmitLineEditOverHTTP(t *testing.T) {
	srv, _ := newEventedServer(t)
	// lib/lib.go is now "lib v2" (landed by newEventedServer); edit it again
	// with a line hunk.
	sub := SubmitRequest{
		ID: "le1", Author: "alice", Benefit: 10,
		Files: []FileChange{{
			Path: "lib/lib.go", Op: "edit-lines",
			StartLine: 1, OldLines: []string{"lib v2"}, NewLines: []string{"lib v3"},
		}},
	}
	rec := doJSON(t, srv, http.MethodPost, "/api/v1/changes", sub)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
}
