// Pre-marshaled status snapshot. GET /api/v1/status aggregates a dozen
// stats calls, each taking the core's locks; at dashboard polling rates
// that contends directly with the planner. The cache renders the full
// StatusResponse once per TTL (or on a background ticker in sqd) and serves
// every request in between from the same byte slice — no core locks, no
// marshaling, no allocation on the hot path.
package api

import (
	"sync"
	"sync/atomic"
	"time"
)

type statusCache struct {
	now   func() time.Time // injected clock (wallclock policy)
	ttl   time.Duration
	build func() []byte // renders a fresh status body

	// refreshes is atomic: the build callback itself reads it (the status
	// body reports its own rebuild count) while refresh holds mu.
	refreshes int64

	mu      sync.Mutex
	body    []byte
	expires time.Time
}

func newStatusCache(ttl time.Duration, now func() time.Time, build func() []byte) *statusCache {
	if ttl <= 0 {
		ttl = 250 * time.Millisecond
	}
	return &statusCache{now: now, ttl: ttl, build: build}
}

// get returns the current status body, rebuilding if the TTL lapsed. The
// returned slice is shared and must not be mutated.
func (c *statusCache) get() []byte {
	c.mu.Lock()
	if c.body == nil || !c.now().Before(c.expires) {
		c.refresh()
	}
	b := c.body
	c.mu.Unlock()
	return b
}

// refresh rebuilds the body unconditionally. Callers hold c.mu or are the
// ticker goroutine via Refresh.
func (c *statusCache) refresh() {
	atomic.AddInt64(&c.refreshes, 1)
	c.body = c.build()
	c.expires = c.now().Add(c.ttl)
}

// Refresh rebuilds the cached body (background refresher tick).
func (c *statusCache) Refresh() {
	c.mu.Lock()
	c.refresh()
	c.mu.Unlock()
}

// Refreshes returns how many times the body has been rebuilt.
func (c *statusCache) Refreshes() int64 { return atomic.LoadInt64(&c.refreshes) }

// StartStatusRefresher rebuilds the status snapshot every interval on a
// background goroutine, so request-time rebuilds (and their core locking)
// disappear entirely in steady state. Returns a stop function.
func (s *Server) StartStatusRefresher(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	t := time.NewTicker(interval)
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-t.C:
				s.status.Refresh()
			case <-done:
				t.Stop()
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
