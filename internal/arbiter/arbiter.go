// Package arbiter implements the serialized commit arbiter of the sharded
// planner scale-out (DESIGN.md §4h). Per-shard planner engines propose
// commit-ready changes; the arbiter owns head advancement, applying proposals
// one at a time in arrival order so the mainline history is a deterministic
// total order. Before committing, it re-validates the proposal against every
// *foreign* commit that landed after the decisive build's base — commits the
// build did not merge — using the same target-intersection criterion as the
// conflict analyzer (Eq. 6): if any interleaved foreign commit touches an
// affected target or patch path of the proposal (or either side changed the
// build-graph structure, making target comparison unsound), the proposal is
// bounced with planner.ErrCrossShardConflict and the engine rebuilds against
// the new head. Commits of the proposal's own applied changes are part of the
// build and need no re-validation, which is what makes single-shard mode
// bit-for-bit identical to the legacy direct-commit path.
package arbiter

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/events"
	"mastergreen/internal/planner"
	"mastergreen/internal/repo"
)

// Config tunes the arbiter.
type Config struct {
	// Analyzer, when non-nil, supplies cached StructureChanged verdicts for
	// proposal subjects; changes without a cached analysis are treated
	// conservatively (structure assumed changed).
	Analyzer *conflict.Analyzer
	// Events, when non-nil, receives a TypeHeadAdvanced event per commit.
	Events *events.Bus
	// History bounds the retained per-commit footprint records (<=0: 4096).
	// A proposal whose base predates the retained window is bounced
	// conservatively; its rebuilt decisive build starts at the current head
	// and re-enters the window.
	History int
}

// hotfixYieldCap bounds how many scheduler passes a lower-lane proposal
// donates to waiting hotfixes before proceeding anyway.
const hotfixYieldCap = 64

// record is the conflict footprint of one committed change, kept so later
// proposals can re-validate against it without re-analyzing history.
type record struct {
	id        change.ID
	shard     int
	targets   map[string]bool
	paths     map[string]bool
	structure bool // change altered the build-graph structure
}

// Arbiter serializes head advancement across planner shards.
type Arbiter struct {
	repo *repo.Repo
	cfg  Config

	// depth counts proposals currently inside Commit (waiting on mu or
	// applying); its high-water mark is the "arbiter queue depth" gauge.
	depth int64
	// hotfixWaiters counts hotfix-lane proposals currently inside Commit.
	// Lower-lane proposals poll it at the admission gate and step aside
	// (bounded) so a waiting P0 reaches the mutex first.
	hotfixWaiters int64

	mu        sync.Mutex
	floor     int      // mainline length when the oldest retained record landed
	records   []record // records[i] is the footprint of commit seq floor+i
	committed map[change.ID]bool
	subs      []chan struct{}
	stats     Stats
}

// New creates an arbiter over the repository. Only commits made through the
// arbiter are re-validated; the repository should not advance behind its back.
func New(r *repo.Repo, cfg Config) *Arbiter {
	if cfg.History <= 0 {
		cfg.History = 4096
	}
	return &Arbiter{
		repo:      r,
		cfg:       cfg,
		floor:     r.Len(),
		committed: map[change.ID]bool{},
	}
}

// Subscribe returns a channel nudged (non-blocking, coalescing) after every
// head advancement. The shard coordinator waits on it between partition
// epochs instead of polling.
func (a *Arbiter) Subscribe() <-chan struct{} {
	ch := make(chan struct{}, 1)
	a.mu.Lock()
	a.subs = append(a.subs, ch)
	a.mu.Unlock()
	return ch
}

// structureChanged resolves the subject's structure flag, conservatively
// assuming a structure change when no analysis is cached.
func (a *Arbiter) structureChanged(id change.ID) bool {
	if a.cfg.Analyzer == nil {
		return true
	}
	changed, known := a.cfg.Analyzer.StructureChanged(id)
	return changed || !known
}

// Commit applies a commit proposal, re-validating cross-shard interleavings
// first. It returns planner.ErrCrossShardConflict (wrapped) when a foreign
// commit after the proposal's base conflicts with it — the proposing engine
// then drops its decisive build and rebuilds — and the underlying repo error
// when the patch itself no longer applies (the engine rejects the change).
func (a *Arbiter) Commit(p planner.CommitProposal) (*repo.Commit, error) {
	d := atomic.AddInt64(&a.depth, 1)
	defer atomic.AddInt64(&a.depth, -1)

	if p.Class == change.ClassHotfix {
		atomic.AddInt64(&a.hotfixWaiters, 1)
		defer atomic.AddInt64(&a.hotfixWaiters, -1)
	} else if atomic.LoadInt64(&a.hotfixWaiters) > 0 {
		// Step aside so the waiting hotfix reaches the mutex first. The
		// yield count is capped: after hotfixYieldCap scheduler passes the
		// proposal proceeds regardless, so a stream of P0s cannot starve
		// lower lanes (the gate favors, never fences).
		yielded := false
		for i := 0; i < hotfixYieldCap && atomic.LoadInt64(&a.hotfixWaiters) > 0; i++ {
			yielded = true
			runtime.Gosched()
		}
		if yielded {
			a.mu.Lock()
			a.stats.HotfixYields++
			a.mu.Unlock()
		}
	}

	a.mu.Lock()
	if int(d) > a.stats.MaxQueueDepth {
		a.stats.MaxQueueDepth = int(d)
	}
	commit, err := a.commitLocked(p)
	var subs []chan struct{}
	if err == nil {
		subs = append(subs, a.subs...)
	}
	a.mu.Unlock()

	// Notify outside the lock: the bus fans out to subscriber channels and
	// shard wakeups must never be sent while holding the arbiter mutex.
	if err == nil {
		if a.cfg.Events != nil {
			a.cfg.Events.Publish(events.Event{
				Type: events.TypeHeadAdvanced, Change: p.Change.ID,
				Detail: fmt.Sprintf("shard %d seq %d", p.Shard, commit.Seq),
			})
		}
		for _, ch := range subs {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}
	return commit, err
}

func (a *Arbiter) commitLocked(p planner.CommitProposal) (*repo.Commit, error) {
	id := p.Change.ID
	if a.committed[id] {
		// A concurrent engine already landed this change (the coordinator
		// moved it mid-decision). Bounce, never double-commit; the
		// coordinator's outcome GC clears the stale copy.
		a.stats.CrossShardRejects++
		return nil, fmt.Errorf("%w: %s already committed", planner.ErrCrossShardConflict, id)
	}

	headLen := a.repo.Len()
	if p.BaseLen < headLen {
		// Foreign commits may have interleaved; re-validate each one the
		// decisive build did not merge.
		applied := make(map[change.ID]bool, len(p.Applied))
		for _, aid := range p.Applied {
			applied[aid] = true
		}
		subjStructure := false
		subjStructureKnown := false
		for seq := p.BaseLen; seq < headLen; seq++ {
			if seq < a.floor {
				a.stats.CrossShardRejects++
				return nil, fmt.Errorf("%w: %s base predates retained history", planner.ErrCrossShardConflict, id)
			}
			r := a.records[seq-a.floor]
			if applied[r.id] {
				continue // part of the decisive build
			}
			a.stats.CrossShardChecks++
			if !subjStructureKnown {
				subjStructure = a.structureChanged(id)
				subjStructureKnown = true
			}
			if conflicts, why := footprintConflict(r, subjStructure, p); conflicts {
				a.stats.CrossShardRejects++
				return nil, fmt.Errorf("%w: %s vs committed %s (%s)", planner.ErrCrossShardConflict, id, r.id, why)
			}
		}
	}

	head := a.repo.Head()
	commit, err := a.repo.CommitPatch(head.ID, p.Change.Patch, p.Change.Author.Name, p.Change.Description, p.Now)
	if err != nil {
		a.stats.CommitFailures++
		return nil, err
	}
	a.committed[id] = true
	a.records = append(a.records, newRecord(p, a.structureChanged(id)))
	if over := len(a.records) - a.cfg.History; over > 0 {
		a.records = append(a.records[:0:0], a.records[over:]...)
		a.floor += over
	}
	a.stats.Commits++
	if a.stats.CommitsByShard == nil {
		a.stats.CommitsByShard = map[int]int{}
	}
	a.stats.CommitsByShard[p.Shard]++
	return commit, nil
}

// footprintConflict reports whether a committed record conflicts with a
// proposal, and why. Either side changing build-graph structure makes
// target-set comparison unsound, so it conflicts conservatively.
func footprintConflict(r record, subjStructure bool, p planner.CommitProposal) (bool, string) {
	if r.structure {
		return true, "committed change altered build-graph structure"
	}
	if subjStructure {
		return true, "proposal alters build-graph structure"
	}
	for _, t := range p.Targets {
		if r.targets[t] {
			return true, "affected target " + t
		}
	}
	for _, f := range p.Paths {
		if r.paths[f] {
			return true, "path " + f
		}
	}
	return false, ""
}

func newRecord(p planner.CommitProposal, structure bool) record {
	r := record{
		id:        p.Change.ID,
		shard:     p.Shard,
		targets:   make(map[string]bool, len(p.Targets)),
		paths:     make(map[string]bool, len(p.Paths)),
		structure: structure,
	}
	for _, t := range p.Targets {
		r.targets[t] = true
	}
	for _, f := range p.Paths {
		r.paths[f] = true
	}
	return r
}

// Committed reports whether the arbiter has landed the change.
func (a *Arbiter) Committed(id change.ID) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.committed[id]
}
