package arbiter

import (
	"errors"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/planner"
	"mastergreen/internal/repo"
)

func testRepo() *repo.Repo {
	return repo.New(map[string]string{
		"a/BUILD": "target a srcs=a.go",
		"a/a.go":  "a v1",
		"b/BUILD": "target b srcs=b.go",
		"b/b.go":  "b v1",
		"c/BUILD": "target c srcs=c.go",
		"c/c.go":  "c v1",
	})
}

func proposal(r *repo.Repo, shard int, id, path, content string, baseLen int, targets []string) planner.CommitProposal {
	c := &change.Change{
		ID:          change.ID(id),
		Author:      change.Developer{Name: "dev", Team: "t", Level: 3},
		Description: "test " + id,
		Patch: repo.Patch{Changes: []repo.FileChange{
			{Path: path, Op: repo.OpCreate, NewContent: content},
		}},
		BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
	}
	return planner.CommitProposal{
		Shard:   shard,
		Change:  c,
		BaseLen: baseLen,
		Applied: []change.ID{c.ID},
		Targets: targets,
		Paths:   []string{path},
		Now:     time.Unix(1700000000, 0),
	}
}

// TestCommitAndFootprintChecks covers the serialized happy path, the
// disjoint-footprint fast path, and target/path intersection rejections.
// The nil-analyzer conservative (structure-unknown) rule means any foreign
// interleaving rejects here; footprint intersection is exercised separately
// with a stub analyzer in the shard integration tests, so this test focuses
// on base bookkeeping.
func TestCommitAndFootprintChecks(t *testing.T) {
	r := testRepo()
	a := New(r, Config{})
	base := r.Len()

	// First commit at the current base: no interleavings, no checks.
	if _, err := a.Commit(proposal(r, 0, "c1", "a/x.go", "x", base, []string{"a"})); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Commits != 1 || st.CrossShardChecks != 0 {
		t.Fatalf("stats after first commit: %+v", st)
	}
	if !a.Committed("c1") {
		t.Fatal("c1 not recorded as committed")
	}

	// A proposal whose base predates c1 and does not apply c1: with no
	// analyzer, structure is unknown, so it must bounce conservatively with
	// ErrCrossShardConflict.
	_, err := a.Commit(proposal(r, 1, "c2", "b/y.go", "y", base, []string{"b"}))
	if !errors.Is(err, planner.ErrCrossShardConflict) {
		t.Fatalf("expected cross-shard bounce, got %v", err)
	}
	if st := a.Stats(); st.CrossShardRejects != 1 || st.CrossShardChecks != 1 {
		t.Fatalf("stats after bounce: %+v", st)
	}
	if r.Len() != base+1 {
		t.Fatalf("mainline advanced on a bounced proposal: len=%d", r.Len())
	}

	// Rebased to the current head, the same change lands.
	if _, err := a.Commit(proposal(r, 1, "c2", "b/y.go", "y", r.Len(), []string{"b"})); err != nil {
		t.Fatal(err)
	}

	// A proposal that *applied* the interleaved commits needs no checks.
	p := proposal(r, 0, "c3", "c/z.go", "z", base, []string{"c"})
	p.Applied = []change.ID{"c1", "c2", "c3"}
	if _, err := a.Commit(p); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Commits != 3 || st.CommitsByShard[0] != 2 || st.CommitsByShard[1] != 1 {
		t.Fatalf("per-shard attribution: %+v", st)
	}
}

// TestAlreadyCommittedBounces verifies the double-commit guard: a change the
// arbiter already landed is bounced, never applied twice.
func TestAlreadyCommittedBounces(t *testing.T) {
	r := testRepo()
	a := New(r, Config{})
	p := proposal(r, 0, "c1", "a/x.go", "x", r.Len(), []string{"a"})
	if _, err := a.Commit(p); err != nil {
		t.Fatal(err)
	}
	lenAfter := r.Len()
	p2 := proposal(r, 1, "c1", "a/x.go", "x", r.Len(), []string{"a"})
	_, err := a.Commit(p2)
	if !errors.Is(err, planner.ErrCrossShardConflict) {
		t.Fatalf("expected bounce for already-committed change, got %v", err)
	}
	if r.Len() != lenAfter {
		t.Fatal("double commit advanced the mainline")
	}
}

// TestMergeFailureLeavesMainlineUntouched: a proposal whose patch no longer
// applies surfaces the repo error (not a cross-shard bounce) and counts as a
// commit failure.
func TestMergeFailureLeavesMainlineUntouched(t *testing.T) {
	r := testRepo()
	a := New(r, Config{})
	if _, err := a.Commit(proposal(r, 0, "c1", "a/x.go", "x", r.Len(), []string{"a"})); err != nil {
		t.Fatal(err)
	}
	// Duplicate create of the same path at the current base: merge conflict.
	p := proposal(r, 1, "c2", "a/x.go", "other", r.Len(), []string{"a"})
	_, err := a.Commit(p)
	if err == nil || errors.Is(err, planner.ErrCrossShardConflict) {
		t.Fatalf("expected merge failure, got %v", err)
	}
	if st := a.Stats(); st.CommitFailures != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHistoryEviction: a proposal whose base predates the retained footprint
// window bounces conservatively instead of consulting evicted records.
func TestHistoryEviction(t *testing.T) {
	r := testRepo()
	a := New(r, Config{History: 1})
	base := r.Len()
	if _, err := a.Commit(proposal(r, 0, "c1", "a/x.go", "x", base, []string{"a"})); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(proposal(r, 0, "c2", "b/y.go", "y", r.Len(), []string{"b"})); err != nil {
		t.Fatal(err)
	}
	// c1's record is evicted (History=1). A proposal based before c1 bounces.
	_, err := a.Commit(proposal(r, 1, "c3", "c/z.go", "z", base, []string{"c"}))
	if !errors.Is(err, planner.ErrCrossShardConflict) {
		t.Fatalf("expected bounce on evicted history, got %v", err)
	}
}

// TestSubscribeNudges: head advancement nudges subscribers without blocking.
func TestSubscribeNudges(t *testing.T) {
	r := testRepo()
	a := New(r, Config{})
	ch := a.Subscribe()
	if _, err := a.Commit(proposal(r, 0, "c1", "a/x.go", "x", r.Len(), []string{"a"})); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no nudge after commit")
	}
	// Two commits with no reader in between coalesce into one pending token.
	if _, err := a.Commit(proposal(r, 0, "c2", "b/y.go", "y", r.Len(), []string{"b"})); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(proposal(r, 0, "c3", "c/z.go", "z", r.Len(), []string{"c"})); err != nil {
		t.Fatal(err)
	}
	<-ch
	select {
	case <-ch:
		t.Fatal("nudges not coalesced")
	default:
	}
}
