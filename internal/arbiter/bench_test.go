package arbiter

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/planner"
	"mastergreen/internal/repo"
)

func benchProposal(shard int, i int, baseLen int) planner.CommitProposal {
	id := change.ID(fmt.Sprintf("c%07d", i))
	path := fmt.Sprintf("sub%02d/f%d.go", i%16, i)
	c := &change.Change{
		ID: id,
		Patch: repo.Patch{Changes: []repo.FileChange{{
			Path: path, Op: repo.OpCreate, NewContent: fmt.Sprintf("v%d", i),
		}}},
	}
	return planner.CommitProposal{
		Shard:   shard,
		Change:  c,
		BaseLen: baseLen,
		Applied: []change.ID{id},
		Targets: []string{fmt.Sprintf("sub%02d", i%16)},
		Paths:   []string{path},
		Now:     time.Unix(1700000000, 0),
	}
}

func benchRepo() *repo.Repo {
	files := map[string]string{}
	for i := 0; i < 16; i++ {
		files[fmt.Sprintf("sub%02d/BUILD", i)] = "target t srcs=lib.go"
		files[fmt.Sprintf("sub%02d/lib.go", i)] = "lib v1"
	}
	return repo.New(files)
}

// BenchmarkCommitCurrentBase measures the serialized happy path: every
// proposal is based on the current head, so no cross-shard checks run. The
// proposals modify one fixed file so the tree (and the per-commit clone)
// stays constant-size across b.N.
func BenchmarkCommitCurrentBase(b *testing.B) {
	r := benchRepo()
	a := New(r, Config{})
	prev := "lib v1"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := fmt.Sprintf("v%d", i)
		id := change.ID(fmt.Sprintf("c%07d", i))
		c := &change.Change{
			ID: id,
			Patch: repo.Patch{Changes: []repo.FileChange{{
				Path: "sub00/lib.go", Op: repo.OpModify,
				BaseHash: repo.HashContent(prev), NewContent: next,
			}}},
		}
		p := planner.CommitProposal{
			Shard: i % 8, Change: c, BaseLen: r.Len(),
			Applied: []change.ID{id},
			Targets: []string{"sub00"}, Paths: []string{"sub00/lib.go"},
			Now: time.Unix(1700000000, 0),
		}
		if _, err := a.Commit(p); err != nil {
			b.Fatal(err)
		}
		prev = next
	}
}

// BenchmarkCommitStaleBounce measures the conservative cross-shard rejection:
// each proposal's base predates a foreign commit it did not apply, so the
// arbiter walks the interleaved window and bounces.
func BenchmarkCommitStaleBounce(b *testing.B) {
	r := benchRepo()
	a := New(r, Config{})
	base := r.Len()
	// One landed foreign commit every stale proposal interleaves with.
	if _, err := a.Commit(benchProposal(0, 1<<20, base)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := a.Commit(benchProposal(1, i, base))
		if !errors.Is(err, planner.ErrCrossShardConflict) {
			b.Fatalf("expected bounce, got %v", err)
		}
	}
}
