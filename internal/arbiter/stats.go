package arbiter

import (
	"fmt"
	"sort"

	"mastergreen/internal/metrics"
)

// Stats counts arbiter work so the cross-shard re-validation layer is
// observable: how often proposals raced foreign commits, how often the race
// was a real conflict, and how deep the proposal queue got.
type Stats struct {
	// Commits is the number of head advancements applied.
	Commits int
	// CommitFailures counts proposals whose patch no longer applied at the
	// current head (rejected by the proposing engine, mainline untouched).
	CommitFailures int
	// CrossShardChecks counts foreign interleaved commits re-validated.
	CrossShardChecks int
	// CrossShardRejects counts proposals bounced back for rebuild.
	CrossShardRejects int
	// MaxQueueDepth is the high-water mark of concurrent proposals.
	MaxQueueDepth int
	// HotfixYields counts lower-lane proposals that stepped aside at the
	// admission gate while a hotfix-lane proposal was waiting (§4l).
	HotfixYields int
	// CommitsByShard attributes commits to the proposing planner shard.
	CommitsByShard map[int]int
}

// Stats returns a copy of the arbiter's counters.
func (a *Arbiter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.CommitsByShard = make(map[int]int, len(a.stats.CommitsByShard))
	for k, v := range a.stats.CommitsByShard {
		s.CommitsByShard[k] = v
	}
	return s
}

// Gauges renders the counters as ordered name/value pairs for the status
// endpoint, the dashboard, and experiment reports.
func (s Stats) Gauges() metrics.Gauges {
	g := metrics.Gauges{
		{Name: "commits", Value: float64(s.Commits)},
		{Name: "commit_failures", Value: float64(s.CommitFailures)},
		{Name: "cross_shard_checks", Value: float64(s.CrossShardChecks)},
		{Name: "cross_shard_rejects", Value: float64(s.CrossShardRejects)},
		{Name: "max_queue_depth", Value: float64(s.MaxQueueDepth)},
		{Name: "hotfix_yields", Value: float64(s.HotfixYields)},
	}
	shards := make([]int, 0, len(s.CommitsByShard))
	for sh := range s.CommitsByShard {
		shards = append(shards, sh)
	}
	sort.Ints(shards)
	for _, sh := range shards {
		g = append(g, metrics.Gauge{
			Name:  fmt.Sprintf("commits_shard_%d", sh),
			Value: float64(s.CommitsByShard[sh]),
		})
	}
	return g
}
