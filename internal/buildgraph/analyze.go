package buildgraph

import (
	"sync"

	"mastergreen/internal/repo"
)

// The analyze cache memoizes Analyze results by snapshot content ID. A hit
// is O(1); a miss is analyzed incrementally against the most recently used
// entry's snapshot, so a small patch costs O(changed files + affected
// targets). Entries hold only references (snapshots share file storage), so
// the cache is cheap; it is bounded to keep long-running services flat.
const analyzeCacheLimit = 128

var (
	cacheMu      sync.Mutex
	cacheEntries = map[string]*cacheEntry{}
	cacheOrder   []string    // insertion order, for eviction
	cacheMRU     *cacheEntry // incremental base for the next miss
)

type cacheEntry struct {
	id    string
	snap  repo.Snapshot
	graph *Graph
}

// Analyze parses the snapshot's BUILD files into a target DAG and computes
// every target's Algorithm 1 hash. It fails on BUILD syntax errors, missing
// dependencies, and dependency cycles. Results are cached by snapshot
// content ID and computed incrementally from the previous analysis where
// possible; the returned Graph is immutable and may be shared.
func Analyze(snap repo.Snapshot) (*Graph, error) {
	id := snap.ContentID()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if e, ok := cacheEntries[id]; ok {
		cacheMRU = e
		return e.graph, nil
	}
	var g *Graph
	var err error
	if cacheMRU != nil {
		g, err = analyzeIncremental(snap, cacheMRU.snap, cacheMRU.graph)
	} else {
		g, err = analyzeCold(snap)
	}
	if err != nil {
		return nil, err
	}
	e := &cacheEntry{id: id, snap: snap, graph: g}
	cacheEntries[id] = e
	cacheOrder = append(cacheOrder, id)
	cacheMRU = e
	if len(cacheOrder) > analyzeCacheLimit {
		evict := cacheOrder[0]
		cacheOrder = cacheOrder[1:]
		if old := cacheEntries[evict]; old != nil {
			if cacheMRU == old {
				cacheMRU = e
			}
			delete(cacheEntries, evict)
		}
	}
	return g, nil
}

// resetAnalyzeCache clears the cache; benchmarks use it to measure the cold
// path honestly.
func resetAnalyzeCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cacheEntries = map[string]*cacheEntry{}
	cacheOrder = nil
	cacheMRU = nil
}

// analyzeCold analyzes a snapshot from scratch: parse every BUILD file,
// validate the DAG, hash every target.
func analyzeCold(snap repo.Snapshot) (*Graph, error) {
	g := &Graph{
		targets: map[string]*Target{},
		byDir:   map[string][]*Target{},
	}
	var parseErr error
	snap.Range(func(path, content string) bool {
		dir, ok := buildFileDir(path)
		if !ok {
			return true
		}
		ts, err := parseBuildFile(dir, content)
		if err != nil {
			parseErr = err
			return false
		}
		g.byDir[dir] = ts
		return true
	})
	if parseErr != nil {
		return nil, parseErr
	}
	return finishGraph(g, snap, nil, nil)
}

// analyzeIncremental analyzes snap against a previously analyzed base:
// re-parse only changed BUILD files, reuse the base's parsed targets for
// unchanged directories, and re-hash only targets whose inputs (definition,
// source content, or a transitive dependency's hash) changed.
func analyzeIncremental(snap, baseSnap repo.Snapshot, base *Graph) (*Graph, error) {
	changed := changedPaths(baseSnap, snap)
	if len(changed) == 0 {
		return base, nil
	}
	changedDirs := map[string]bool{}
	for _, p := range changed {
		if dir, ok := buildFileDir(p); ok {
			changedDirs[dir] = true
		}
	}
	// Fast path: no BUILD file changed, so the target DAG is structurally
	// identical to the base. Share every index and re-hash only the targets
	// owning changed sources plus their reverse-dependency closure — total
	// cost O(changed files + affected targets), independent of repo size.
	if len(changedDirs) == 0 {
		g := &Graph{
			targets: base.targets,
			byDir:   base.byDir,
			bySrc:   base.bySrc,
			rdeps:   base.rdeps,
		}
		dirty := map[string]bool{}
		stack := []string{}
		for _, p := range changed {
			for _, name := range base.bySrc[p] {
				if !dirty[name] {
					dirty[name] = true
					stack = append(stack, name)
				}
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range g.rdeps[n] {
				if !dirty[m] {
					dirty[m] = true
					stack = append(stack, m)
				}
			}
		}
		computeHashes(g, snap, base, dirty)
		return g, nil
	}
	g := &Graph{
		targets: map[string]*Target{},
		byDir:   make(map[string][]*Target, len(base.byDir)),
	}
	// Unchanged directories reuse the base's immutable targets.
	for dir, ts := range base.byDir {
		if !changedDirs[dir] {
			g.byDir[dir] = ts
		}
	}
	for dir := range changedDirs {
		path := "BUILD"
		if dir != "" {
			path = dir + "/BUILD"
		}
		content, ok := snap.Read(path)
		if !ok {
			continue // BUILD deleted: its targets vanish
		}
		ts, err := parseBuildFile(dir, content)
		if err != nil {
			return nil, err
		}
		g.byDir[dir] = ts
	}
	// Seed the dirty set: every target in a changed directory, plus every
	// target owning a changed source file. Reverse-dependency propagation
	// happens in finishGraph once edges exist.
	seed := map[string]bool{}
	for dir := range changedDirs {
		for _, t := range g.byDir[dir] {
			seed[t.Name] = true
		}
	}
	return finishGraph(g, snap, base, func(g *Graph) map[string]bool {
		for _, p := range changed {
			for _, name := range g.bySrc[p] {
				seed[name] = true
			}
		}
		return seed
	})
}

// finishGraph indexes, validates, and hashes a graph whose byDir map is
// populated. seedFn, when non-nil, returns the dirty seed once indexes
// exist; nil means everything is dirty (cold analysis).
func finishGraph(g *Graph, snap repo.Snapshot, base *Graph, seedFn func(*Graph) map[string]bool) (*Graph, error) {
	for _, ts := range g.byDir {
		for _, t := range ts {
			g.targets[t.Name] = t
		}
	}
	g.bySrc = map[string][]string{}
	for name, t := range g.targets {
		for _, s := range t.Srcs {
			g.bySrc[s] = append(g.bySrc[s], name)
		}
	}
	for s, names := range g.bySrc {
		sortUnique(&names)
		g.bySrc[s] = names
	}
	if _, err := topoCheck(g.targets); err != nil {
		return nil, err
	}
	g.rdeps = reverseEdges(g.targets)

	var dirty map[string]bool
	if seedFn == nil {
		dirty = make(map[string]bool, len(g.targets))
		for name := range g.targets {
			dirty[name] = true
		}
	} else {
		dirty = seedFn(g)
		// A target absent from the base graph has no memoized hash.
		for name := range g.targets {
			if _, ok := base.hashes[name]; !ok {
				dirty[name] = true
			}
		}
		// Propagate: anything depending on a dirty target is dirty.
		stack := make([]string, 0, len(dirty))
		for name := range dirty {
			//lint:ignore maporder worklist visit order does not affect the computed dirty set
			stack = append(stack, name)
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range g.rdeps[n] {
				if !dirty[m] {
					dirty[m] = true
					stack = append(stack, m)
				}
			}
		}
	}
	computeHashes(g, snap, base, dirty)
	return g, nil
}

// changedPaths returns every path whose content differs between base and
// next (added, modified, or deleted).
func changedPaths(base, next repo.Snapshot) []string {
	return base.ChangedPaths(next)
}
