package buildgraph

import (
	"fmt"
	"testing"

	"mastergreen/internal/repo"
)

// benchRepo builds a synthetic repo with n targets in n directories. Each
// target depends on up to `fanin` earlier targets, giving a realistic DAG
// rather than a chain.
func benchRepo(n, fanin int) repo.Snapshot {
	files := make(map[string]string, 2*n)
	for i := 0; i < n; i++ {
		dir := fmt.Sprintf("pkg%04d", i)
		decl := "target t srcs=t.go"
		if i > 0 {
			deps := ""
			for j := 1; j <= fanin && i-j*7 >= 0; j++ {
				if deps != "" {
					deps += ","
				}
				deps += fmt.Sprintf("//pkg%04d:t", i-j*7)
			}
			if deps != "" {
				decl += " deps=" + deps
			}
		}
		files[dir+"/BUILD"] = decl
		files[dir+"/t.go"] = fmt.Sprintf("package pkg%04d\n\nfunc F() int { return %d }\n", i, i)
	}
	return repo.NewSnapshot(files)
}

func benchPatch(b *testing.B, snap repo.Snapshot, path, content string) repo.Snapshot {
	b.Helper()
	cur, ok := snap.Read(path)
	if !ok {
		b.Fatalf("missing %s", path)
	}
	next, err := snap.Apply(repo.Patch{Changes: []repo.FileChange{{
		Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content,
	}}})
	if err != nil {
		b.Fatalf("Apply: %v", err)
	}
	return next
}

// BenchmarkAnalyzeCold measures a from-scratch analysis (parse + DAG check +
// hash every target) of a 600-target repo.
func BenchmarkAnalyzeCold(b *testing.B) {
	snap := benchRepo(600, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := analyzeCold(snap)
		if err != nil {
			b.Fatal(err)
		}
		if g.Len() != 600 {
			b.Fatalf("got %d targets", g.Len())
		}
	}
}

// BenchmarkAnalyzeIncremental measures re-analysis after a one-file edit on
// the same repo: the content changes every iteration so each pass exercises
// the incremental path (not the content-ID cache).
func BenchmarkAnalyzeIncremental(b *testing.B) {
	base := benchRepo(600, 3)
	resetAnalyzeCache()
	if _, err := Analyze(base); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		snap := benchPatch(b, base, "pkg0007/t.go", fmt.Sprintf("package pkg0007 // rev %d", i))
		b.StartTimer()
		if _, err := Analyze(snap); err != nil {
			b.Fatal(err)
		}
	}
}
