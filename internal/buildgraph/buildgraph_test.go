package buildgraph

import (
	"strings"
	"testing"

	"mastergreen/internal/repo"
)

// chainRepo builds a linear dependency chain t0 <- t1 <- ... <- t(n-1),
// one directory per target.
func chainRepo(n int) repo.Snapshot {
	files := map[string]string{}
	for i := 0; i < n; i++ {
		dir := dirName(i)
		decl := "target t srcs=t.go"
		if i > 0 {
			decl += " deps=//" + dirName(i-1) + ":t"
		}
		files[dir+"/BUILD"] = decl
		files[dir+"/t.go"] = "package t // " + dir
	}
	return repo.NewSnapshot(files)
}

func dirName(i int) string {
	return "d" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// diamondRepo: //top:t depends on //l:t and //r:t, both of which depend on
// //base:t; //side:t is unrelated.
func diamondRepo() repo.Snapshot {
	return repo.NewSnapshot(map[string]string{
		"base/BUILD": "target t srcs=t.go",
		"base/t.go":  "package base",
		"l/BUILD":    "target t srcs=t.go deps=//base:t",
		"l/t.go":     "package l",
		"r/BUILD":    "target t srcs=t.go deps=//base:t",
		"r/t.go":     "package r",
		"top/BUILD":  "target t srcs=t.go deps=//l:t,//r:t",
		"top/t.go":   "package top",
		"side/BUILD": "target t srcs=t.go",
		"side/t.go":  "package side",
	})
}

// patchSnap applies creates/modifies given as path->content (modify when the
// path already exists).
func patchSnap(t *testing.T, snap repo.Snapshot, files map[string]string) repo.Snapshot {
	t.Helper()
	var p repo.Patch
	for path, content := range files {
		fc := repo.FileChange{Path: path, NewContent: content}
		if cur, ok := snap.Read(path); ok {
			fc.Op = repo.OpModify
			fc.BaseHash = repo.HashContent(cur)
		} else {
			fc.Op = repo.OpCreate
		}
		p.Changes = append(p.Changes, fc)
	}
	next, err := snap.Apply(p)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return next
}

func mustAnalyze(t *testing.T, snap repo.Snapshot) *Graph {
	t.Helper()
	g, err := Analyze(snap)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return g
}

func hashesOf(g *Graph) map[string]string {
	out := make(map[string]string, g.Len())
	for _, n := range g.Names() {
		h, _ := g.Hash(n)
		out[n] = h
	}
	return out
}

// TestDeterministicHashes: the same snapshot yields identical hashes across
// repeated cold analyses and across serial vs parallel traversal.
func TestDeterministicHashes(t *testing.T) {
	snap := chainRepo(40)
	resetAnalyzeCache()
	want := hashesOf(mustAnalyze(t, snap))

	for run := 0; run < 3; run++ {
		resetAnalyzeCache()
		got := hashesOf(mustAnalyze(t, snap))
		for n, h := range want {
			if got[n] != h {
				t.Fatalf("run %d: hash of %s = %s, want %s", run, n, got[n], h)
			}
		}
	}

	old := hashWorkers
	hashWorkers = 1
	defer func() { hashWorkers = old }()
	resetAnalyzeCache()
	got := hashesOf(mustAnalyze(t, snap))
	for n, h := range want {
		if got[n] != h {
			t.Fatalf("serial traversal: hash of %s = %s, want %s", n, got[n], h)
		}
	}
}

// TestHashPropagation: editing one source changes the hashes of exactly the
// owning target and its transitive reverse dependencies.
func TestHashPropagation(t *testing.T) {
	resetAnalyzeCache()
	base := diamondRepo()
	g0 := mustAnalyze(t, base)

	patched := patchSnap(t, base, map[string]string{"l/t.go": "package l // edited"})
	g1 := mustAnalyze(t, patched)

	want := map[string]bool{"//l:t": true, "//top:t": true}
	h0, h1 := hashesOf(g0), hashesOf(g1)
	for n := range h0 {
		changed := h0[n] != h1[n]
		if changed != want[n] {
			t.Errorf("target %s: hash changed=%v, want %v", n, changed, want[n])
		}
	}
	if d := Diff(g0, g1); len(d) != 2 || d["//l:t"] == "" || d["//top:t"] == "" {
		t.Errorf("Diff = %v, want exactly {//l:t, //top:t}", d.Names())
	}
}

// TestIncrementalMatchesCold: incremental analysis after a patch produces the
// same hashes as a from-scratch analysis of the patched snapshot.
func TestIncrementalMatchesCold(t *testing.T) {
	base := chainRepo(30)
	resetAnalyzeCache()
	mustAnalyze(t, base) // prime the incremental base

	patched := patchSnap(t, base, map[string]string{
		"daf/t.go": "package t // v2",
		"zz/BUILD": "target t srcs=t.go deps=//dab:t",
		"zz/t.go":  "package zz",
	})
	inc := hashesOf(mustAnalyze(t, patched))

	resetAnalyzeCache()
	cold := hashesOf(mustAnalyze(t, patched))
	if len(inc) != len(cold) {
		t.Fatalf("incremental has %d targets, cold has %d", len(inc), len(cold))
	}
	for n, h := range cold {
		if inc[n] != h {
			t.Errorf("target %s: incremental %s != cold %s", n, inc[n], h)
		}
	}
}

// TestAnalyzeCacheHit: analyzing the same content twice returns the identical
// graph object, even via a different snapshot value.
func TestAnalyzeCacheHit(t *testing.T) {
	resetAnalyzeCache()
	snap := diamondRepo()
	g1 := mustAnalyze(t, snap)
	g2 := mustAnalyze(t, diamondRepo())
	if g1 != g2 {
		t.Error("same content should hit the analyze cache and share the graph")
	}
}

// TestCycleError: a dependency cycle is reported as an error, not a hang.
func TestCycleError(t *testing.T) {
	resetAnalyzeCache()
	snap := repo.NewSnapshot(map[string]string{
		"a/BUILD": "target t srcs=t.go deps=//b:t",
		"a/t.go":  "package a",
		"b/BUILD": "target t srcs=t.go deps=//a:t",
		"b/t.go":  "package b",
	})
	if _, err := Analyze(snap); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("Analyze = %v, want cycle error", err)
	}
}

// TestMissingDepError: an unresolved dep label fails analysis.
func TestMissingDepError(t *testing.T) {
	resetAnalyzeCache()
	snap := repo.NewSnapshot(map[string]string{
		"a/BUILD": "target t srcs=t.go deps=//nope:gone",
		"a/t.go":  "package a",
	})
	if _, err := Analyze(snap); err == nil || !strings.Contains(err.Error(), "missing target") {
		t.Fatalf("Analyze = %v, want missing-target error", err)
	}
}

// TestTargetsForPaths maps sources and BUILD files to owning targets.
func TestTargetsForPaths(t *testing.T) {
	resetAnalyzeCache()
	g := mustAnalyze(t, diamondRepo())
	got := g.TargetsForPaths([]string{"l/t.go", "r/BUILD", "unowned.txt"})
	want := map[string]bool{"//l:t": true, "//r:t": true}
	if len(got) != len(want) {
		t.Fatalf("TargetsForPaths = %v, want %v", got, want)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected target %s", n)
		}
	}
}

// TestDependentsWithin: radius-bounded reverse BFS includes the seeds.
func TestDependentsWithin(t *testing.T) {
	resetAnalyzeCache()
	g := mustAnalyze(t, chainRepo(5))
	got := g.DependentsWithin(1, "//"+dirName(0)+":t")
	want := map[string]bool{"//" + dirName(0) + ":t": true, "//" + dirName(1) + ":t": true}
	if len(got) != len(want) {
		t.Fatalf("DependentsWithin(1) = %v, want %v", got, want)
	}
	for n := range want {
		if !got[n] {
			t.Errorf("missing %s", n)
		}
	}
}

// TestSameStructure distinguishes content edits from structural edits.
func TestSameStructure(t *testing.T) {
	resetAnalyzeCache()
	base := diamondRepo()
	g0 := mustAnalyze(t, base)

	contentEdit := patchSnap(t, base, map[string]string{"base/t.go": "package base // v2"})
	g1 := mustAnalyze(t, contentEdit)
	if !SameStructure(g0, g1) {
		t.Error("content edit should preserve structure")
	}

	structEdit := patchSnap(t, base, map[string]string{"side/BUILD": "target t srcs=t.go deps=//top:t"})
	g2 := mustAnalyze(t, structEdit)
	if SameStructure(g0, g2) {
		t.Error("adding a dep edge should break structural equality")
	}
}
