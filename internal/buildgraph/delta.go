package buildgraph

import "sort"

// DeletedHash is the Delta value recorded for a target that exists in the
// base graph but not in the changed graph. It can never collide with a real
// hash (hashes are hex).
const DeletedHash = "deleted"

// Delta is δ_{H⊕C}: the targets affected by a change, mapped to their
// post-change hashes (or DeletedHash for removed targets).
type Delta map[string]string

// Names returns the affected target labels in sorted order.
func (d Delta) Names() []string {
	out := make([]string, 0, len(d))
	for n := range d {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Diff computes the delta from base to changed: targets that are new, have a
// different Algorithm 1 hash, or were deleted.
func Diff(base, changed *Graph) Delta {
	d := Delta{}
	for name, h := range changed.hashes {
		if bh, ok := base.hashes[name]; !ok || bh != h {
			d[name] = h
		}
	}
	for name := range base.hashes {
		if _, ok := changed.hashes[name]; !ok {
			d[name] = DeletedHash
		}
	}
	return d
}

// SameStructure reports whether two graphs have identical structure: the
// same targets with the same srcs and deps. Content-only edits preserve
// structure; adding/removing targets, edges, or source listings does not.
func SameStructure(a, b *Graph) bool {
	if len(a.targets) != len(b.targets) {
		return false
	}
	for name, ta := range a.targets {
		tb, ok := b.targets[name]
		if !ok {
			return false
		}
		if ta == tb { // shared via incremental analysis: definitionally equal
			continue
		}
		if !equalStrings(ta.Srcs, tb.Srcs) || !equalStrings(ta.Deps, tb.Deps) {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NameIntersectionConflict is the cheap §5.2 test, valid when neither change
// altered graph structure: the changes conflict iff their deltas share a
// target name.
func NameIntersectionConflict(di, dj Delta) bool {
	small, large := di, dj
	if len(large) < len(small) {
		small, large = large, small
	}
	for name := range small {
		if _, ok := large[name]; ok {
			return true
		}
	}
	return false
}

// Disjoint reports whether the two deltas affect no common target — the
// disjointness half of the conflict analyzer's selective-invalidation rule.
func (d Delta) Disjoint(other Delta) bool {
	return !NameIntersectionConflict(d, other)
}

// UnionConflict is the §5.2 union-graph algorithm for structure-altering
// changes: over the union of the edges of G_H, G_{H⊕Ci}, and G_{H⊕Cj}, the
// changes conflict iff some target transitively depends on affected targets
// of both — equivalently, the reverse-dependency closures of the two deltas
// intersect. It covers the Fig. 8 trap (name-disjoint deltas joined by a new
// edge) without building the combined graph.
func UnionConflict(gH, gi, gj *Graph) bool {
	return UnionConflictDeltas(Diff(gH, gi), Diff(gH, gj), gH, gi, gj)
}

// UnionConflictDeltas is UnionConflict with the two deltas supplied by the
// caller rather than recomputed from the graphs. The graphs contribute only
// their edge sets (the reverse-dependency union), so callers holding
// already-validated deltas — e.g. analyses re-homed across a head move,
// whose stored graphs carry stale hashes but current structure — can reuse
// them without rebuilding anything.
func UnionConflictDeltas(di, dj Delta, graphs ...*Graph) bool {
	if len(di) == 0 || len(dj) == 0 {
		return false
	}
	rdeps := map[string][]string{}
	for _, g := range graphs {
		for name, t := range g.targets {
			for _, d := range t.Deps {
				rdeps[d] = append(rdeps[d], name)
			}
		}
	}
	ci := unionClosure(di, rdeps)
	for name := range unionClosure(dj, rdeps) {
		if ci[name] {
			return true
		}
	}
	return false
}

func unionClosure(d Delta, rdeps map[string][]string) map[string]bool {
	seen := make(map[string]bool, len(d))
	stack := make([]string, 0, len(d))
	for name := range d {
		seen[name] = true
		//lint:ignore maporder worklist visit order does not affect the computed closure set
		stack = append(stack, name)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range rdeps[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return seen
}

// Equation6Conflict is the paper's exact-but-expensive definition: Ci and Cj
// conflict iff building them together affects targets differently than
// building them alone — i.e. δ_{H⊕Ci⊕Cj} is not the clean union of δ_{H⊕Ci}
// and δ_{H⊕Cj}. dc is the delta of the combined snapshot.
func Equation6Conflict(di, dj, dc Delta) bool {
	for name, hc := range dc {
		if di[name] != hc && dj[name] != hc {
			return true // affected together with a hash neither produces alone
		}
	}
	for name := range di {
		if _, ok := dc[name]; !ok {
			return true // affected alone but not together
		}
	}
	for name := range dj {
		if _, ok := dc[name]; !ok {
			return true
		}
	}
	return false
}
