package buildgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"mastergreen/internal/repo"
)

// randomDAGFiles generates a pseudo-random target DAG (edges only point to
// lower indices, so it is acyclic) and returns its file set as path->content
// pairs in a caller-shuffleable slice.
type fileKV struct{ path, content string }

func randomDAGFiles(rng *rand.Rand, n int) []fileKV {
	var files []fileKV
	for i := 0; i < n; i++ {
		dir := fmt.Sprintf("p%03d", i)
		decl := "target t srcs=t.go"
		seen := map[int]bool{}
		var deps string
		for k := rng.Intn(4); k > 0 && i > 0; k-- {
			d := rng.Intn(i)
			if seen[d] {
				continue
			}
			seen[d] = true
			if deps != "" {
				deps += ","
			}
			deps += fmt.Sprintf("//p%03d:t", d)
		}
		if deps != "" {
			decl += " deps=" + deps
		}
		files = append(files,
			fileKV{dir + "/BUILD", decl},
			fileKV{dir + "/t.go", fmt.Sprintf("package p%03d\nvar x = %d\n", i, rng.Intn(1000))})
	}
	return files
}

func snapshotOf(files []fileKV) repo.Snapshot {
	m := make(map[string]string, len(files))
	for _, f := range files {
		m[f.path] = f.content
	}
	return repo.NewSnapshot(m)
}

func allHashes(t *testing.T, g *Graph) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range g.Names() {
		h, ok := g.Hash(name)
		if !ok {
			t.Fatalf("no hash for %s", name)
		}
		out[name] = h
	}
	return out
}

func diffHashes(t *testing.T, label string, want, got map[string]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d targets vs %d", label, len(want), len(got))
	}
	for name, h := range want {
		if got[name] != h {
			t.Errorf("%s: hash of %s drifted: %s vs %s", label, name, h, got[name])
		}
	}
}

// TestAnalyzeDeterminism is the regression gate for Algorithm 1's core
// contract: target hashes are a pure function of snapshot content. It
// analyzes the same content repeatedly — shuffled construction order, cold
// cache each time, and once with the parallel fan-out forced serial — and
// requires bit-identical hashes for every target.
func TestAnalyzeDeterminism(t *testing.T) {
	files := randomDAGFiles(rand.New(rand.NewSource(7)), 60)

	t.Cleanup(resetAnalyzeCache)
	resetAnalyzeCache()
	ref, err := Analyze(snapshotOf(files))
	if err != nil {
		t.Fatal(err)
	}
	want := allHashes(t, ref)

	shuffler := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]fileKV(nil), files...)
		shuffler.Shuffle(len(shuffled), func(a, b int) {
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		})
		resetAnalyzeCache()
		g, err := Analyze(snapshotOf(shuffled))
		if err != nil {
			t.Fatal(err)
		}
		diffHashes(t, fmt.Sprintf("trial %d", trial), want, allHashes(t, g))
	}

	// The parallel bottom-up hash fan-out must agree with a serial pass.
	saved := hashWorkers
	hashWorkers = 1
	defer func() { hashWorkers = saved }()
	resetAnalyzeCache()
	g, err := Analyze(snapshotOf(files))
	if err != nil {
		t.Fatal(err)
	}
	diffHashes(t, "serial", want, allHashes(t, g))
}
