// Package buildgraph is the build-system substrate of §5.1: it parses
// BUILD files into a target DAG and computes the recursive Algorithm 1
// target hashes that the conflict analyzer and planner compare. It is the
// system's hot path — the planner re-analyzes snapshots up to three times
// per build start — so analysis is performance-first:
//
//   - Hashing is memoized per target and computed with a parallel bottom-up
//     traversal (goroutine fan-out over ready targets).
//   - Analyze results are cached by snapshot content ID, and a cache miss is
//     analyzed incrementally against the most recent cached snapshot, so
//     re-analyzing an unchanged or lightly-patched snapshot costs
//     O(changed files + affected targets), not O(repo).
//
// The BUILD dialect is one declaration per line:
//
//	target <name> srcs=<file>,... deps=//dir:name,...
//
// where srcs are paths relative to the BUILD file's directory and deps are
// fully-qualified target labels.
package buildgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Target is one build target declared in a BUILD file. Targets are immutable
// after analysis and may be shared between graphs; callers must not mutate
// the slices.
type Target struct {
	// Name is the fully-qualified label, e.g. "//lib:strings".
	Name string
	// Dir is the directory of the declaring BUILD file ("" for the root).
	Dir string
	// Srcs are the target's source files as full repository paths, sorted.
	Srcs []string
	// Deps are the labels of direct dependencies, sorted.
	Deps []string
}

// Graph is the target DAG of one snapshot, with Algorithm 1 hashes. All
// methods are read-only; a Graph is immutable after Analyze returns it and
// safe for concurrent use.
type Graph struct {
	targets map[string]*Target
	hashes  map[string]string
	rdeps   map[string][]string  // dep label -> labels depending on it
	byDir   map[string][]*Target // BUILD dir -> its targets, in declaration order
	bySrc   map[string][]string  // source path -> labels listing it in srcs
}

// Len returns the number of targets.
func (g *Graph) Len() int { return len(g.targets) }

// Names returns all target labels in sorted order.
func (g *Graph) Names() []string {
	out := make([]string, 0, len(g.targets))
	for n := range g.targets {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Target returns the target with the given label.
func (g *Graph) Target(name string) (*Target, bool) {
	t, ok := g.targets[name]
	return t, ok
}

// Hash returns the Algorithm 1 hash of the target.
func (g *Graph) Hash(name string) (string, bool) {
	h, ok := g.hashes[name]
	return h, ok
}

// TargetsForPaths returns the sorted labels of targets directly containing
// any of the given files: targets listing a path in srcs, plus targets
// declared by a listed BUILD file.
func (g *Graph) TargetsForPaths(paths []string) []string {
	seen := map[string]bool{}
	for _, p := range paths {
		for _, name := range g.bySrc[p] {
			seen[name] = true
		}
		if dir, ok := buildFileDir(p); ok {
			for _, t := range g.byDir[dir] {
				seen[t.Name] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DependencyClosure returns the transitive dependencies of the target,
// including the target itself.
func (g *Graph) DependencyClosure(name string) map[string]bool {
	return g.closure(name, func(n string) []string {
		if t, ok := g.targets[n]; ok {
			return t.Deps
		}
		return nil
	})
}

// Dependents returns the transitive reverse dependencies of the target,
// including the target itself.
func (g *Graph) Dependents(name string) map[string]bool {
	return g.closure(name, func(n string) []string { return g.rdeps[n] })
}

func (g *Graph) closure(name string, next func(string) []string) map[string]bool {
	if _, ok := g.targets[name]; !ok {
		return map[string]bool{}
	}
	seen := map[string]bool{name: true}
	stack := []string{name}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range next(n) {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return seen
}

// DependentsWithin returns every target reachable from the seeds by at most
// radius reverse-dependency hops, seeds included — the §9 test-selection
// neighborhood.
func (g *Graph) DependentsWithin(radius int, seeds ...string) map[string]bool {
	seen := map[string]bool{}
	frontier := make([]string, 0, len(seeds))
	for _, s := range seeds {
		if _, ok := g.targets[s]; ok && !seen[s] {
			seen[s] = true
			frontier = append(frontier, s)
		}
	}
	for hop := 0; hop < radius && len(frontier) > 0; hop++ {
		var next []string
		for _, n := range frontier {
			for _, m := range g.rdeps[n] {
				if !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		frontier = next
	}
	return seen
}

// Dot renders the target DAG in Graphviz format.
func (g *Graph) Dot() string {
	var sb strings.Builder
	sb.WriteString("digraph targets {\n")
	for _, name := range g.Names() {
		fmt.Fprintf(&sb, "  %q;\n", name)
		for _, d := range g.targets[name].Deps {
			fmt.Fprintf(&sb, "  %q -> %q;\n", name, d)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// buildFileDir reports whether path is a BUILD file and returns its
// directory ("" for a root-level BUILD).
func buildFileDir(path string) (string, bool) {
	if path == "BUILD" {
		return "", true
	}
	if strings.HasSuffix(path, "/BUILD") {
		return strings.TrimSuffix(path, "/BUILD"), true
	}
	return "", false
}
