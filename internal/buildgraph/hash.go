package buildgraph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"mastergreen/internal/repo"
)

// hashWorkers bounds the goroutine fan-out of the parallel bottom-up hash
// traversal. Overridden to 1 in tests to verify serial/parallel agreement.
var hashWorkers = runtime.GOMAXPROCS(0)

// missingSrcMarker feeds the hash of a declared-but-absent source file, so
// creating or deleting the file changes the owning target's hash.
const missingSrcMarker = "\x00<missing>\x00"

func sortUnique(s *[]string) {
	sort.Strings(*s)
	out := (*s)[:0]
	for i, v := range *s {
		if i == 0 || v != (*s)[i-1] {
			out = append(out, v)
		}
	}
	*s = out
}

// hashTarget computes the Algorithm 1 hash of one target: a digest over the
// target's label, its sources' contents, and — recursively — the hashes of
// its direct dependencies (already computed, supplied via depHash).
func hashTarget(t *Target, snap repo.Snapshot, depHash func(string) string) string {
	h := sha256.New()
	h.Write([]byte(t.Name))
	for _, src := range t.Srcs {
		content, ok := snap.Read(src)
		if !ok {
			content = missingSrcMarker
		}
		fmt.Fprintf(h, "\x00s%s\x00%d\x00", src, len(content))
		h.Write([]byte(content))
	}
	for _, d := range t.Deps {
		fmt.Fprintf(h, "\x00d%s\x00%s", d, depHash(d))
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// topoCheck validates that every dep resolves and the DAG is acyclic,
// returning targets in topological order (dependencies first).
func topoCheck(targets map[string]*Target) ([]string, error) {
	indeg := make(map[string]int, len(targets))
	for name, t := range targets {
		if _, ok := indeg[name]; !ok {
			indeg[name] = 0
		}
		for _, d := range t.Deps {
			if _, ok := targets[d]; !ok {
				return nil, fmt.Errorf("buildgraph: target %s depends on missing target %s", name, d)
			}
		}
		indeg[name] = len(t.Deps)
	}
	queue := make([]string, 0, len(targets))
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	sort.Strings(queue) // deterministic topological order regardless of map iteration
	rdeps := reverseEdges(targets)
	order := make([]string, 0, len(targets))
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, n)
		for _, m := range rdeps[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(targets) {
		var stuck []string
		for name, d := range indeg {
			if d > 0 {
				stuck = append(stuck, name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("buildgraph: dependency cycle involving %v", stuck)
	}
	return order, nil
}

func reverseEdges(targets map[string]*Target) map[string][]string {
	rdeps := make(map[string][]string, len(targets))
	for name, t := range targets {
		for _, d := range t.Deps {
			rdeps[d] = append(rdeps[d], name)
		}
	}
	for _, rs := range rdeps {
		sort.Strings(rs)
	}
	return rdeps
}

// computeHashes fills g.hashes. Targets in dirty are (re)hashed with a
// parallel bottom-up traversal; every other target's hash is memoized from
// base (which must contain it). The graph must already be cycle-checked: the
// traversal terminates because every dirty target's dirty-dependency count
// reaches zero exactly once.
func computeHashes(g *Graph, snap repo.Snapshot, base *Graph, dirty map[string]bool) {
	g.hashes = make(map[string]string, len(g.targets))
	var mu sync.Mutex // guards g.hashes and remaining during the fan-out
	for name := range g.targets {
		if !dirty[name] {
			g.hashes[name] = base.hashes[name]
		}
	}
	if len(dirty) == 0 {
		return
	}
	// remaining[t] = number of dirty direct deps not yet hashed; a dirty
	// target is ready once all its dirty deps are done (clean deps are
	// already memoized above).
	remaining := make(map[string]int, len(dirty))
	ready := make([]string, 0, len(dirty))
	for name := range dirty {
		n := 0
		for _, d := range g.targets[name].Deps {
			if dirty[d] {
				n++
			}
		}
		remaining[name] = n
		if n == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready) // feed workers in a deterministic order
	workers := hashWorkers
	if workers > len(dirty) {
		workers = len(dirty)
	}
	if workers < 1 {
		workers = 1
	}
	work := make(chan string, len(dirty))
	for _, name := range ready {
		//lint:ignore locksend work is buffered to len(dirty) and receives exactly len(dirty) sends total, so seeding cannot block even under a caller's lock
		work <- name
	}
	done := 0
	var wg sync.WaitGroup
	depHash := func(d string) string {
		mu.Lock()
		h := g.hashes[d]
		mu.Unlock()
		return h
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range work {
				h := hashTarget(g.targets[name], snap, depHash)
				// Collect newly-ready targets under the lock, but send them
				// after releasing it: work is buffered to len(dirty) so the
				// sends cannot block, and no goroutine ever sleeps on the
				// channel while holding mu.
				mu.Lock()
				g.hashes[name] = h
				var unlocked []string
				for _, m := range g.rdeps[name] {
					if dirty[m] {
						remaining[m]--
						if remaining[m] == 0 {
							unlocked = append(unlocked, m)
						}
					}
				}
				done++
				last := done == len(dirty)
				mu.Unlock()
				for _, m := range unlocked {
					work <- m
				}
				if last {
					close(work)
				}
			}
		}()
	}
	//lint:ignore locksend bounded wait: workers only drain the buffered work channel and take no caller-visible locks, so this terminates even when Analyze holds cacheMu
	wg.Wait()
}
