package buildgraph

import (
	"fmt"
	"strings"
)

// parseBuildFile parses one BUILD file's content into targets. dir is the
// file's directory ("" for the root BUILD).
func parseBuildFile(dir, content string) ([]*Target, error) {
	var out []*Target
	seen := map[string]bool{}
	for ln, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := parseTargetLine(dir, line)
		if err != nil {
			return nil, fmt.Errorf("%s/BUILD:%d: %w", dir, ln+1, err)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("%s/BUILD:%d: duplicate target %s", dir, ln+1, t.Name)
		}
		seen[t.Name] = true
		out = append(out, t)
	}
	return out, nil
}

// parseTargetLine parses "target <name> srcs=a,b deps=//d:n,//e:m".
func parseTargetLine(dir, line string) (*Target, error) {
	fields := strings.Fields(line)
	if fields[0] != "target" || len(fields) < 2 {
		return nil, fmt.Errorf("expected %q, got %q", "target <name> [srcs=...] [deps=...]", line)
	}
	short := fields[1]
	if short == "" || strings.ContainsAny(short, ":/=") {
		return nil, fmt.Errorf("invalid target name %q", short)
	}
	t := &Target{Name: "//" + dir + ":" + short, Dir: dir}
	for _, f := range fields[2:] {
		switch {
		case strings.HasPrefix(f, "srcs="):
			for _, s := range splitList(strings.TrimPrefix(f, "srcs=")) {
				p := s
				if dir != "" {
					p = dir + "/" + s
				}
				t.Srcs = append(t.Srcs, p)
			}
		case strings.HasPrefix(f, "deps="):
			for _, d := range splitList(strings.TrimPrefix(f, "deps=")) {
				if !strings.HasPrefix(d, "//") || !strings.Contains(d, ":") {
					return nil, fmt.Errorf("invalid dep label %q (want //dir:name)", d)
				}
				t.Deps = append(t.Deps, d)
			}
		default:
			return nil, fmt.Errorf("unknown attribute %q", f)
		}
	}
	sortUnique(&t.Srcs)
	sortUnique(&t.Deps)
	return t, nil
}

func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}
