package buildsys

import (
	"context"
	"fmt"
	"testing"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// BenchmarkControllerCacheHit measures a build whose every step-unit hits the
// artifact cache — the steady state of a deep speculation tree where branches
// share most of their targets.
func BenchmarkControllerCacheHit(b *testing.B) {
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		return nil
	})
	c := NewController(8, runner)
	names := make(map[string]string, 200)
	for i := 0; i < 200; i++ {
		n := fmt.Sprintf("//pkg%03d:t", i)
		names[n] = "h-" + n
	}
	req := Request{
		Key:     "warm",
		Steps:   []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		Targets: names,
	}
	if res := c.Run(context.Background(), req); !res.OK {
		b.Fatalf("warmup: %+v", res)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Key = fmt.Sprintf("b%d", i)
		if res := c.Run(context.Background(), req); !res.OK {
			b.Fatalf("build: %+v", res)
		}
	}
}

// BenchmarkComputeAccounting measures a build whose every step-unit executes
// and is timed — the worst case for the fleet-compute accounting (per-unit
// clock reads, per-kind rollup, per-task unit log). Compare against
// BenchmarkControllerCacheHit to see the accounting overhead in isolation.
func BenchmarkComputeAccounting(b *testing.B) {
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		return nil
	})
	c := NewController(8, runner)
	steps := []change.BuildStep{
		{Name: "compile", Kind: change.StepCompile},
		{Name: "unit", Kind: change.StepUnitTest},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		names := make(map[string]string, 64)
		for j := 0; j < 64; j++ {
			// Unique hashes per iteration: every unit misses the cache and runs.
			names[fmt.Sprintf("//pkg%03d:t", j)] = fmt.Sprintf("h-%d-%d", i, j)
		}
		if res := c.Run(context.Background(), Request{
			Key: fmt.Sprintf("b%d", i), Steps: steps, Targets: names,
		}); !res.OK {
			b.Fatalf("build: %+v", res)
		}
	}
}
