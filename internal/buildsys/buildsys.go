// Package buildsys is the §6 build controller: a bounded worker pool that
// executes a build's steps target by target, with the two levers that make
// speculation affordable at scale:
//
//   - Minimal build steps: targets listed in Request.PriorTargets — already
//     produced at the same hash by the prefix build of a speculation chain —
//     are skipped outright.
//   - A content-addressed artifact cache keyed by (target name, target hash,
//     step kind): identical work across speculation branches executes once,
//     concurrent duplicates coalesce onto the first execution in flight.
//
// Steps run sequentially (compile before tests); within a step, targets fan
// out across the worker pool. Builds are started asynchronously via Start
// and observed through the returned Task; Cancel aborts a build, whose
// result then carries ErrAborted and is dropped by the planner.
package buildsys

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/metrics"
	"mastergreen/internal/repo"
)

// ErrAborted is the result error of a cancelled build.
var ErrAborted = errors.New("buildsys: build aborted")

// StepRunner executes one build step for one target against a snapshot. A
// nil runner means every step succeeds (useful when the repository's own
// structure is the only failure source under study).
type StepRunner interface {
	RunStep(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error
}

// RunnerFunc adapts a function to StepRunner.
type RunnerFunc func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error

// RunStep implements StepRunner.
func (f RunnerFunc) RunStep(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
	return f(ctx, step, target, snap)
}

// StepHashRunner is an optional StepRunner extension. Runners that implement
// it receive the target's Algorithm 1 hash alongside each step-unit — the
// same content address the artifact cache keys by — so layers like the
// reliability detector can key outcomes by identical inputs. The hash is
// empty for repo-wide step-units that have no target to address.
type StepHashRunner interface {
	RunStepHash(ctx context.Context, step change.BuildStep, target, hash string, snap repo.Snapshot) error
}

// Request describes one build: a snapshot, the steps to run, and the
// affected targets (name -> Algorithm 1 hash) the steps cover.
type Request struct {
	// Key identifies the build in results (the speculation build key).
	Key string
	// Snapshot is the merged tree the build runs against.
	Snapshot repo.Snapshot
	// Steps run in order; a step failure fails the build and skips the rest.
	Steps []change.BuildStep
	// Targets maps affected target names to their hashes. A step with an
	// explicit Targets list covers only those names; otherwise it covers all.
	// An empty map still runs each step once (a repo-wide step-unit).
	Targets map[string]string
	// PriorTargets lists targets already built at the same hash by the
	// prefix build of a speculation chain; they are skipped (§6 minimal
	// build steps).
	PriorTargets map[string]bool
}

// Result is a build's final disposition.
type Result struct {
	Key          string
	OK           bool
	FailedStep   string // name of the step that failed, when !OK
	FailedTarget string // target whose step-unit failed, when attributable
	Err          error  // failure cause; ErrAborted for cancelled builds
	// Executed is the total step-unit wall time the runner spent on this
	// build — summed across concurrent units, so it measures compute, not
	// elapsed time. Aborted builds report the work executed before the
	// cancel: exactly the fleet compute the abort threw away.
	Executed time.Duration
}

// UnitTime is the executed wall time of one (step, target) unit, the finest
// grain of the fleet-compute accounting: every executed unit of a build is
// attributable to (build key, target, step kind).
type UnitTime struct {
	Step     string
	Kind     change.StepKind
	Target   string
	Duration time.Duration
}

// Stats counts controller work. Step-units are (step, target) executions;
// SkippedCache is the artifact-cache hit counter, CacheMisses the cacheable
// units that had to execute.
type Stats struct {
	Builds       int // builds started
	Completed    int // builds finished without abort
	Aborted      int // builds cancelled before completion
	Executed     int // step-units executed by the runner
	SkippedPrior int // step-units skipped via PriorTargets (minimal steps)
	SkippedCache int // step-units skipped via artifact-cache hits
	CacheMisses  int // cacheable step-units that found no artifact

	// Fleet-compute accounting (DESIGN.md §4j): ExecTime is the total
	// executed step-unit wall time across all builds; ExecTimeByKind breaks
	// it down per step kind. UsefulTime and WastedTime split the time of
	// *ended* builds by disposition — completed builds' compute was (at
	// least potentially) useful, aborted builds' compute is pure waste.
	// ExecTime − UsefulTime − WastedTime is the compute of still-running
	// builds, not yet attributable.
	ExecTime       time.Duration
	ExecTimeByKind map[change.StepKind]time.Duration
	UsefulTime     time.Duration
	WastedTime     time.Duration
}

// WasteRate is the fraction of attributed compute spent on builds that were
// later aborted.
func (s Stats) WasteRate() float64 {
	total := s.UsefulTime + s.WastedTime
	if total <= 0 {
		return 0
	}
	return float64(s.WastedTime) / float64(total)
}

// Gauges renders the compute-accounting counters as ordered name/value pairs
// for the status endpoint, the dashboard, and experiment reports. Durations
// are reported in seconds.
func (s Stats) Gauges() metrics.Gauges {
	return metrics.Gauges{
		{Name: "builds", Value: float64(s.Builds)},
		{Name: "completed", Value: float64(s.Completed)},
		{Name: "aborted", Value: float64(s.Aborted)},
		{Name: "executed_units", Value: float64(s.Executed)},
		{Name: "skipped_prior", Value: float64(s.SkippedPrior)},
		{Name: "skipped_cache", Value: float64(s.SkippedCache)},
		{Name: "exec_sec", Value: s.ExecTime.Seconds()},
		{Name: "useful_sec", Value: s.UsefulTime.Seconds()},
		{Name: "wasted_sec", Value: s.WastedTime.Seconds()},
		{Name: "waste_rate", Value: s.WasteRate()},
	}
}

// artifact is one cache slot. Claimants execute the step-unit and publish ok
// before closing done; waiters either reuse the artifact or — when the
// claimant failed or aborted — retry the claim themselves.
type artifact struct {
	done chan struct{}
	ok   bool
}

// Controller executes builds over a bounded worker pool. All methods are
// safe for concurrent use.
type Controller struct {
	runner StepRunner
	sem    chan struct{} // bounds concurrently executing step-units
	// now supplies the clock for step-unit timing; injectable so the
	// compute accounting replays deterministically under test.
	now func() time.Time

	mu    sync.Mutex
	stats Stats
	cache map[string]*artifact // content address -> artifact
}

// NewController creates a controller with the given worker count (<=0: 4).
// A nil runner succeeds at every step.
func NewController(workers int, runner StepRunner) *Controller {
	if workers <= 0 {
		workers = 4
	}
	return &Controller{
		runner: runner,
		sem:    make(chan struct{}, workers),
		now:    time.Now,
		cache:  map[string]*artifact{},
	}
}

// SetClock injects the clock used for step-unit timing (tests).
func (c *Controller) SetClock(now func() time.Time) { c.now = now }

// Stats returns a snapshot of the work counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	if c.stats.ExecTimeByKind != nil {
		s.ExecTimeByKind = make(map[change.StepKind]time.Duration, len(c.stats.ExecTimeByKind))
		for k, v := range c.stats.ExecTimeByKind {
			s.ExecTimeByKind[k] = v
		}
	}
	return s
}

// Task is a build in flight.
type Task struct {
	key    string
	cancel context.CancelFunc
	done   chan struct{}
	result Result // immutable once done is closed

	// execNs accumulates executed step-unit wall time (atomically: units
	// run concurrently); readable mid-flight via Executed so abort events
	// can report the compute wasted so far.
	execNs int64
	unitMu sync.Mutex
	units  []UnitTime
}

// Done is closed when the build finishes (normally or by abort).
func (t *Task) Done() <-chan struct{} { return t.done }

// Result returns the build's result; valid after Done is closed.
func (t *Task) Result() Result {
	<-t.done
	return t.result
}

// Cancel aborts the build; its result will carry ErrAborted. Idempotent.
func (t *Task) Cancel() { t.cancel() }

// Executed returns the step-unit wall time executed so far. Safe to call
// while the build runs; after Done it equals Result().Executed.
func (t *Task) Executed() time.Duration {
	return time.Duration(atomic.LoadInt64(&t.execNs))
}

// UnitTimes returns the per-(step, target) executed durations recorded so
// far, the finest grain of the compute accounting.
func (t *Task) UnitTimes() []UnitTime {
	t.unitMu.Lock()
	defer t.unitMu.Unlock()
	return append([]UnitTime(nil), t.units...)
}

// recordUnit attributes one executed step-unit's wall time to the build and
// the controller-wide per-kind rollup.
func (c *Controller) recordUnit(t *Task, step change.BuildStep, target string, d time.Duration) {
	if t != nil {
		atomic.AddInt64(&t.execNs, int64(d))
		t.unitMu.Lock()
		t.units = append(t.units, UnitTime{Step: step.Name, Kind: step.Kind, Target: target, Duration: d})
		t.unitMu.Unlock()
	}
	c.mu.Lock()
	c.stats.ExecTime += d
	if c.stats.ExecTimeByKind == nil {
		c.stats.ExecTimeByKind = map[change.StepKind]time.Duration{}
	}
	c.stats.ExecTimeByKind[step.Kind] += d
	c.mu.Unlock()
}

// Start launches the build asynchronously.
func (c *Controller) Start(ctx context.Context, req Request) *Task {
	ctx, cancel := context.WithCancel(ctx)
	t := &Task{key: req.Key, cancel: cancel, done: make(chan struct{})}
	c.mu.Lock()
	c.stats.Builds++
	c.mu.Unlock()
	go func() {
		defer cancel()
		t.result = c.execute(ctx, req, t)
		t.result.Executed = t.Executed()
		c.mu.Lock()
		if errors.Is(t.result.Err, ErrAborted) {
			c.stats.Aborted++
			c.stats.WastedTime += t.result.Executed
		} else {
			c.stats.Completed++
			c.stats.UsefulTime += t.result.Executed
		}
		c.mu.Unlock()
		close(t.done)
	}()
	return t
}

// Run executes the build synchronously.
func (c *Controller) Run(ctx context.Context, req Request) Result {
	return c.Start(ctx, req).Result()
}

// execute runs the build's steps in order, fanning each step's targets out
// over the worker pool. Executed step-unit wall time is attributed to t.
func (c *Controller) execute(ctx context.Context, req Request, t *Task) Result {
	all := make([]string, 0, len(req.Targets))
	for name := range req.Targets {
		all = append(all, name)
	}
	sort.Strings(all)
	for _, step := range req.Steps {
		names := all
		if len(step.Targets) > 0 {
			names = append([]string(nil), step.Targets...)
			sort.Strings(names)
		} else if len(all) == 0 {
			// No affected targets: the step still runs once, repo-wide
			// (uncacheable — there is no target hash to address it by).
			names = []string{""}
		}
		if target, err := c.runStep(ctx, req, step, names, t); err != nil {
			if ctx.Err() != nil || errors.Is(err, ErrAborted) {
				return Result{Key: req.Key, OK: false, FailedStep: step.Name, FailedTarget: target, Err: ErrAborted}
			}
			return Result{Key: req.Key, OK: false, FailedStep: step.Name, FailedTarget: target, Err: err}
		}
	}
	return Result{Key: req.Key, OK: true}
}

// runStep executes one step over the given target names in parallel and
// returns the failing target and failure of the lowest-indexed failing
// target (deterministic).
func (c *Controller) runStep(ctx context.Context, req Request, step change.BuildStep, names []string, t *Task) (string, error) {
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		if req.PriorTargets[name] {
			c.count(func(s *Stats) { s.SkippedPrior++ })
			continue
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = c.runUnit(ctx, req, step, name, t)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return names[i], err
		}
	}
	return "", nil
}

// runUnit executes one (step, target) unit, consulting the artifact cache
// when the target has a hash to address it by.
func (c *Controller) runUnit(ctx context.Context, req Request, step change.BuildStep, name string, t *Task) error {
	hash := req.Targets[name]
	if name == "" || hash == "" {
		return c.invoke(ctx, step, name, "", req.Snapshot, t)
	}
	key := name + "\x00" + hash + "\x00" + step.Kind.String()
	for {
		c.mu.Lock()
		a, ok := c.cache[key]
		if !ok {
			a = &artifact{done: make(chan struct{})}
			c.cache[key] = a
		}
		c.mu.Unlock()
		if ok {
			select {
			case <-a.done:
			case <-ctx.Done():
				return ErrAborted
			}
			if a.ok {
				c.count(func(s *Stats) { s.SkippedCache++ })
				return nil
			}
			// The claimant failed or aborted; its slot was withdrawn.
			// Re-claim and run the unit ourselves.
			continue
		}
		c.count(func(s *Stats) { s.CacheMisses++ })
		err := c.invoke(ctx, step, name, hash, req.Snapshot, t)
		c.mu.Lock()
		if err == nil {
			a.ok = true
		} else {
			delete(c.cache, key) // failures are not cached
		}
		c.mu.Unlock()
		close(a.done)
		return err
	}
}

// invoke runs the step through the worker pool, handing hash-aware runners
// the target's content address. Executed wall time — including the time a
// unit ran before a cancel interrupted it — is attributed to the task and
// the per-kind rollup.
func (c *Controller) invoke(ctx context.Context, step change.BuildStep, name, hash string, snap repo.Snapshot, t *Task) error {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return ErrAborted
	}
	defer func() { <-c.sem }()
	if ctx.Err() != nil {
		return ErrAborted
	}
	c.count(func(s *Stats) { s.Executed++ })
	if c.runner == nil {
		c.recordUnit(t, step, name, 0)
		return nil
	}
	start := c.now()
	var err error
	if hr, ok := c.runner.(StepHashRunner); ok {
		err = hr.RunStepHash(ctx, step, name, hash, snap)
	} else {
		err = c.runner.RunStep(ctx, step, name, snap)
	}
	c.recordUnit(t, step, name, c.now().Sub(start))
	return err
}

func (c *Controller) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
