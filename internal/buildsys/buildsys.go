// Package buildsys is the §6 build controller: a bounded worker pool that
// executes a build's steps target by target, with the two levers that make
// speculation affordable at scale:
//
//   - Minimal build steps: targets listed in Request.PriorTargets — already
//     produced at the same hash by the prefix build of a speculation chain —
//     are skipped outright.
//   - A content-addressed artifact cache keyed by (target name, target hash,
//     step kind): identical work across speculation branches executes once,
//     concurrent duplicates coalesce onto the first execution in flight.
//
// Steps run sequentially (compile before tests); within a step, targets fan
// out across the worker pool. Builds are started asynchronously via Start
// and observed through the returned Task; Cancel aborts a build, whose
// result then carries ErrAborted and is dropped by the planner.
package buildsys

import (
	"context"
	"errors"
	"sort"
	"sync"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// ErrAborted is the result error of a cancelled build.
var ErrAborted = errors.New("buildsys: build aborted")

// StepRunner executes one build step for one target against a snapshot. A
// nil runner means every step succeeds (useful when the repository's own
// structure is the only failure source under study).
type StepRunner interface {
	RunStep(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error
}

// RunnerFunc adapts a function to StepRunner.
type RunnerFunc func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error

// RunStep implements StepRunner.
func (f RunnerFunc) RunStep(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
	return f(ctx, step, target, snap)
}

// StepHashRunner is an optional StepRunner extension. Runners that implement
// it receive the target's Algorithm 1 hash alongside each step-unit — the
// same content address the artifact cache keys by — so layers like the
// reliability detector can key outcomes by identical inputs. The hash is
// empty for repo-wide step-units that have no target to address.
type StepHashRunner interface {
	RunStepHash(ctx context.Context, step change.BuildStep, target, hash string, snap repo.Snapshot) error
}

// Request describes one build: a snapshot, the steps to run, and the
// affected targets (name -> Algorithm 1 hash) the steps cover.
type Request struct {
	// Key identifies the build in results (the speculation build key).
	Key string
	// Snapshot is the merged tree the build runs against.
	Snapshot repo.Snapshot
	// Steps run in order; a step failure fails the build and skips the rest.
	Steps []change.BuildStep
	// Targets maps affected target names to their hashes. A step with an
	// explicit Targets list covers only those names; otherwise it covers all.
	// An empty map still runs each step once (a repo-wide step-unit).
	Targets map[string]string
	// PriorTargets lists targets already built at the same hash by the
	// prefix build of a speculation chain; they are skipped (§6 minimal
	// build steps).
	PriorTargets map[string]bool
}

// Result is a build's final disposition.
type Result struct {
	Key          string
	OK           bool
	FailedStep   string // name of the step that failed, when !OK
	FailedTarget string // target whose step-unit failed, when attributable
	Err          error  // failure cause; ErrAborted for cancelled builds
}

// Stats counts controller work. Step-units are (step, target) executions;
// SkippedCache is the artifact-cache hit counter, CacheMisses the cacheable
// units that had to execute.
type Stats struct {
	Builds       int // builds started
	Completed    int // builds finished without abort
	Aborted      int // builds cancelled before completion
	Executed     int // step-units executed by the runner
	SkippedPrior int // step-units skipped via PriorTargets (minimal steps)
	SkippedCache int // step-units skipped via artifact-cache hits
	CacheMisses  int // cacheable step-units that found no artifact
}

// artifact is one cache slot. Claimants execute the step-unit and publish ok
// before closing done; waiters either reuse the artifact or — when the
// claimant failed or aborted — retry the claim themselves.
type artifact struct {
	done chan struct{}
	ok   bool
}

// Controller executes builds over a bounded worker pool. All methods are
// safe for concurrent use.
type Controller struct {
	runner StepRunner
	sem    chan struct{} // bounds concurrently executing step-units

	mu    sync.Mutex
	stats Stats
	cache map[string]*artifact // content address -> artifact
}

// NewController creates a controller with the given worker count (<=0: 4).
// A nil runner succeeds at every step.
func NewController(workers int, runner StepRunner) *Controller {
	if workers <= 0 {
		workers = 4
	}
	return &Controller{
		runner: runner,
		sem:    make(chan struct{}, workers),
		cache:  map[string]*artifact{},
	}
}

// Stats returns a snapshot of the work counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Task is a build in flight.
type Task struct {
	key    string
	cancel context.CancelFunc
	done   chan struct{}
	result Result // immutable once done is closed
}

// Done is closed when the build finishes (normally or by abort).
func (t *Task) Done() <-chan struct{} { return t.done }

// Result returns the build's result; valid after Done is closed.
func (t *Task) Result() Result {
	<-t.done
	return t.result
}

// Cancel aborts the build; its result will carry ErrAborted. Idempotent.
func (t *Task) Cancel() { t.cancel() }

// Start launches the build asynchronously.
func (c *Controller) Start(ctx context.Context, req Request) *Task {
	ctx, cancel := context.WithCancel(ctx)
	t := &Task{key: req.Key, cancel: cancel, done: make(chan struct{})}
	c.mu.Lock()
	c.stats.Builds++
	c.mu.Unlock()
	go func() {
		defer cancel()
		t.result = c.execute(ctx, req)
		c.mu.Lock()
		if errors.Is(t.result.Err, ErrAborted) {
			c.stats.Aborted++
		} else {
			c.stats.Completed++
		}
		c.mu.Unlock()
		close(t.done)
	}()
	return t
}

// Run executes the build synchronously.
func (c *Controller) Run(ctx context.Context, req Request) Result {
	return c.Start(ctx, req).Result()
}

// execute runs the build's steps in order, fanning each step's targets out
// over the worker pool.
func (c *Controller) execute(ctx context.Context, req Request) Result {
	all := make([]string, 0, len(req.Targets))
	for name := range req.Targets {
		all = append(all, name)
	}
	sort.Strings(all)
	for _, step := range req.Steps {
		names := all
		if len(step.Targets) > 0 {
			names = append([]string(nil), step.Targets...)
			sort.Strings(names)
		} else if len(all) == 0 {
			// No affected targets: the step still runs once, repo-wide
			// (uncacheable — there is no target hash to address it by).
			names = []string{""}
		}
		if target, err := c.runStep(ctx, req, step, names); err != nil {
			if ctx.Err() != nil || errors.Is(err, ErrAborted) {
				return Result{Key: req.Key, OK: false, FailedStep: step.Name, FailedTarget: target, Err: ErrAborted}
			}
			return Result{Key: req.Key, OK: false, FailedStep: step.Name, FailedTarget: target, Err: err}
		}
	}
	return Result{Key: req.Key, OK: true}
}

// runStep executes one step over the given target names in parallel and
// returns the failing target and failure of the lowest-indexed failing
// target (deterministic).
func (c *Controller) runStep(ctx context.Context, req Request, step change.BuildStep, names []string) (string, error) {
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		if req.PriorTargets[name] {
			c.count(func(s *Stats) { s.SkippedPrior++ })
			continue
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = c.runUnit(ctx, req, step, name)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return names[i], err
		}
	}
	return "", nil
}

// runUnit executes one (step, target) unit, consulting the artifact cache
// when the target has a hash to address it by.
func (c *Controller) runUnit(ctx context.Context, req Request, step change.BuildStep, name string) error {
	hash := req.Targets[name]
	if name == "" || hash == "" {
		return c.invoke(ctx, step, name, "", req.Snapshot)
	}
	key := name + "\x00" + hash + "\x00" + step.Kind.String()
	for {
		c.mu.Lock()
		a, ok := c.cache[key]
		if !ok {
			a = &artifact{done: make(chan struct{})}
			c.cache[key] = a
		}
		c.mu.Unlock()
		if ok {
			select {
			case <-a.done:
			case <-ctx.Done():
				return ErrAborted
			}
			if a.ok {
				c.count(func(s *Stats) { s.SkippedCache++ })
				return nil
			}
			// The claimant failed or aborted; its slot was withdrawn.
			// Re-claim and run the unit ourselves.
			continue
		}
		c.count(func(s *Stats) { s.CacheMisses++ })
		err := c.invoke(ctx, step, name, hash, req.Snapshot)
		c.mu.Lock()
		if err == nil {
			a.ok = true
		} else {
			delete(c.cache, key) // failures are not cached
		}
		c.mu.Unlock()
		close(a.done)
		return err
	}
}

// invoke runs the step through the worker pool, handing hash-aware runners
// the target's content address.
func (c *Controller) invoke(ctx context.Context, step change.BuildStep, name, hash string, snap repo.Snapshot) error {
	select {
	case c.sem <- struct{}{}:
	case <-ctx.Done():
		return ErrAborted
	}
	defer func() { <-c.sem }()
	if ctx.Err() != nil {
		return ErrAborted
	}
	c.count(func(s *Stats) { s.Executed++ })
	if c.runner == nil {
		return nil
	}
	if hr, ok := c.runner.(StepHashRunner); ok {
		return hr.RunStepHash(ctx, step, name, hash, snap)
	}
	return c.runner.RunStep(ctx, step, name, snap)
}

func (c *Controller) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
