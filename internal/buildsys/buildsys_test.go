package buildsys

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

var compileStep = change.BuildStep{Name: "compile", Kind: change.StepCompile}

func targets(names ...string) map[string]string {
	m := make(map[string]string, len(names))
	for _, n := range names {
		m[n] = "hash-of-" + n
	}
	return m
}

// TestNilRunnerSucceeds: a nil runner completes every build successfully.
func TestNilRunnerSucceeds(t *testing.T) {
	c := NewController(2, nil)
	res := c.Run(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a", "//b:b"),
	})
	if !res.OK || res.Err != nil {
		t.Fatalf("Run = %+v, want OK", res)
	}
	st := c.Stats()
	if st.Builds != 1 || st.Completed != 1 || st.Executed != 2 {
		t.Errorf("Stats = %+v, want 1 build, 1 completed, 2 executed", st)
	}
}

// TestCancelAborts: cancelling an in-flight build yields ErrAborted and the
// build never reports success.
func TestCancelAborts(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		close(started)
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	c := NewController(2, runner)
	task := c.Start(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a"),
	})
	<-started
	task.Cancel()
	res := task.Result()
	close(release)
	if res.OK {
		t.Fatal("cancelled build reported OK")
	}
	if !errors.Is(res.Err, ErrAborted) {
		t.Fatalf("Err = %v, want ErrAborted", res.Err)
	}
	if st := c.Stats(); st.Aborted != 1 || st.Completed != 0 {
		t.Errorf("Stats = %+v, want 1 aborted, 0 completed", st)
	}
}

// TestCancelDoesNotLeakResult: cancelling before the work drains still closes
// Done promptly — the caller never blocks on a dead build.
func TestCancelDoesNotLeakResult(t *testing.T) {
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		<-ctx.Done()
		return ctx.Err()
	})
	c := NewController(1, runner)
	task := c.Start(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a", "//b:b", "//c:c"),
	})
	task.Cancel()
	select {
	case <-task.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done not closed after Cancel")
	}
	if !errors.Is(task.Result().Err, ErrAborted) {
		t.Fatalf("Err = %v, want ErrAborted", task.Result().Err)
	}
}

// TestPriorTargetsSkipped: targets built by the speculation prefix are not
// re-executed (§6 minimal build steps).
func TestPriorTargetsSkipped(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	res := c.Run(context.Background(), Request{
		Key:          "b1",
		Steps:        []change.BuildStep{compileStep},
		Targets:      targets("//a:a", "//b:b", "//c:c"),
		PriorTargets: map[string]bool{"//a:a": true, "//b:b": true},
	})
	if !res.OK {
		t.Fatalf("Run = %+v, want OK", res)
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("runner executed %d units, want 1", got)
	}
	if st := c.Stats(); st.SkippedPrior != 2 || st.Executed != 1 {
		t.Errorf("Stats = %+v, want SkippedPrior=2 Executed=1", st)
	}
}

// TestArtifactCacheHit: a second build of the same (target, hash, kind)
// reuses the artifact instead of re-executing, and Stats counts the hit.
func TestArtifactCacheHit(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	req := Request{Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets("//a:a", "//b:b")}
	if res := c.Run(context.Background(), req); !res.OK {
		t.Fatalf("first build: %+v", res)
	}
	req.Key = "b2"
	if res := c.Run(context.Background(), req); !res.OK {
		t.Fatalf("second build: %+v", res)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (second build fully cached)", got)
	}
	st := c.Stats()
	if st.SkippedCache != 2 || st.CacheMisses != 2 {
		t.Errorf("Stats = %+v, want SkippedCache=2 CacheMisses=2", st)
	}
}

// TestCacheMissOnNewHash: a changed target hash is a different content
// address — no false sharing across versions.
func TestCacheMissOnNewHash(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	c.Run(context.Background(), Request{
		Key: "b1", Steps: []change.BuildStep{compileStep},
		Targets: map[string]string{"//a:a": "h1"},
	})
	c.Run(context.Background(), Request{
		Key: "b2", Steps: []change.BuildStep{compileStep},
		Targets: map[string]string{"//a:a": "h2"},
	})
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (hash change must miss)", got)
	}
	if st := c.Stats(); st.SkippedCache != 0 {
		t.Errorf("SkippedCache = %d, want 0", st.SkippedCache)
	}
}

// TestFailureNotCached: a failed unit is not cached; a later build re-runs it
// and can succeed.
func TestFailureNotCached(t *testing.T) {
	var calls atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		if calls.Add(1) == 1 {
			return fmt.Errorf("compile error")
		}
		return nil
	})
	c := NewController(2, runner)
	req := Request{Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets("//a:a")}
	res := c.Run(context.Background(), req)
	if res.OK || res.FailedStep != "compile" {
		t.Fatalf("first build = %+v, want failure at compile", res)
	}
	req.Key = "b2"
	if res := c.Run(context.Background(), req); !res.OK {
		t.Fatalf("retry build = %+v, want OK", res)
	}
	if st := c.Stats(); st.SkippedCache != 0 {
		t.Errorf("SkippedCache = %d, want 0 (failures must not be cached)", st.SkippedCache)
	}
}

// TestConcurrentBuildsCoalesce: two concurrent builds of the same targets
// execute each unit once; the loser of the claim race waits and reuses.
func TestConcurrentBuildsCoalesce(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	c := NewController(4, runner)
	req1 := Request{Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets("//a:a", "//b:b")}
	req2 := req1
	req2.Key = "b2"
	t1 := c.Start(context.Background(), req1)
	t2 := c.Start(context.Background(), req2)
	if r := t1.Result(); !r.OK {
		t.Fatalf("b1 = %+v", r)
	}
	if r := t2.Result(); !r.OK {
		t.Fatalf("b2 = %+v", r)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (concurrent duplicates coalesce)", got)
	}
	if st := c.Stats(); st.SkippedCache != 2 {
		t.Errorf("SkippedCache = %d, want 2", st.SkippedCache)
	}
}

// TestStepOrderAndFailureStopsBuild: steps run in order; a failing step names
// itself in FailedStep and later steps never run.
func TestStepOrderAndFailureStopsBuild(t *testing.T) {
	var seen []string
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		seen = append(seen, step.Name)
		if step.Kind == change.StepUnitTest {
			return fmt.Errorf("test failed")
		}
		return nil
	})
	c := NewController(1, runner)
	res := c.Run(context.Background(), Request{
		Key: "b1",
		Steps: []change.BuildStep{
			{Name: "compile", Kind: change.StepCompile},
			{Name: "unit", Kind: change.StepUnitTest},
			{Name: "ui", Kind: change.StepUITest},
		},
		Targets: targets("//a:a"),
	})
	if res.OK || res.FailedStep != "unit" {
		t.Fatalf("Run = %+v, want failure at unit", res)
	}
	if len(seen) != 2 || seen[0] != "compile" || seen[1] != "unit" {
		t.Errorf("steps seen = %v, want [compile unit]", seen)
	}
}

// TestEmptyTargetBuildRuns: a build with no affected targets still runs each
// step once (repo-wide), so empty changes exercise the runner.
func TestEmptyTargetBuildRuns(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		if target != "" {
			t.Errorf("empty-target build passed target %q", target)
		}
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	res := c.Run(context.Background(), Request{
		Key:   "b1",
		Steps: []change.BuildStep{compileStep, {Name: "unit", Kind: change.StepUnitTest}},
	})
	if !res.OK {
		t.Fatalf("Run = %+v, want OK", res)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (one per step)", got)
	}
	if st := c.Stats(); st.SkippedCache != 0 || st.CacheMisses != 0 {
		t.Errorf("Stats = %+v, want no cache traffic for repo-wide units", st)
	}
}

// TestWorkerPoolBound: no more than `workers` units execute at once.
func TestWorkerPoolBound(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	c := NewController(workers, runner)
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("//t:t%d", i)
	}
	if res := c.Run(context.Background(), Request{
		Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets(names...),
	}); !res.OK {
		t.Fatalf("Run = %+v", res)
	}
	if got := max.Load(); got > workers {
		t.Errorf("max concurrency = %d, want <= %d", got, workers)
	}
}

// fakeClock returns a clock function that advances by step on every call, so
// each timed step-unit reports exactly one step of executed wall time.
func fakeClock(step time.Duration) func() time.Time {
	var mu sync.Mutex
	now := time.Unix(0, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		now = now.Add(step)
		return now
	}
}

// TestComputeAccounting: executed step-unit wall time is attributed per
// (build, target, step kind) and rolled up into the controller stats, with a
// completed build's compute counted as useful.
func TestComputeAccounting(t *testing.T) {
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		return nil
	})
	c := NewController(1, runner) // one worker: the fake clock ticks serially
	c.SetClock(fakeClock(500 * time.Millisecond))
	task := c.Start(context.Background(), Request{
		Key: "b1",
		Steps: []change.BuildStep{
			{Name: "compile", Kind: change.StepCompile},
			{Name: "unit", Kind: change.StepUnitTest},
		},
		Targets: targets("//a:a", "//b:b"),
	})
	res := task.Result()
	if !res.OK {
		t.Fatalf("Run = %+v, want OK", res)
	}
	// 4 step-units, each spanning one clock tick.
	if res.Executed != 2*time.Second {
		t.Errorf("Result.Executed = %v, want 2s", res.Executed)
	}
	units := task.UnitTimes()
	if len(units) != 4 {
		t.Fatalf("UnitTimes = %d entries, want 4", len(units))
	}
	for _, u := range units {
		if u.Duration != 500*time.Millisecond {
			t.Errorf("unit %+v duration = %v, want 500ms", u, u.Duration)
		}
		if u.Target != "//a:a" && u.Target != "//b:b" {
			t.Errorf("unit %+v has unexpected target", u)
		}
		if u.Kind != change.StepCompile && u.Kind != change.StepUnitTest {
			t.Errorf("unit %+v has unexpected kind", u)
		}
	}
	st := c.Stats()
	if st.ExecTime != 2*time.Second || st.UsefulTime != 2*time.Second || st.WastedTime != 0 {
		t.Errorf("Stats exec/useful/wasted = %v/%v/%v, want 2s/2s/0", st.ExecTime, st.UsefulTime, st.WastedTime)
	}
	if st.ExecTimeByKind[change.StepCompile] != time.Second || st.ExecTimeByKind[change.StepUnitTest] != time.Second {
		t.Errorf("ExecTimeByKind = %v, want 1s compile + 1s unit", st.ExecTimeByKind)
	}
	if rate := st.WasteRate(); rate != 0 {
		t.Errorf("WasteRate = %v, want 0", rate)
	}
}

// TestAbortedComputeIsWasted: a cancelled build's executed-so-far time lands
// in WastedTime, and the abort-time Result carries it — the fleet compute the
// abort threw away.
func TestAbortedComputeIsWasted(t *testing.T) {
	started := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	c := NewController(1, runner)
	c.SetClock(fakeClock(time.Minute))
	task := c.Start(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a"),
	})
	<-started
	task.Cancel()
	res := task.Result()
	if !errors.Is(res.Err, ErrAborted) {
		t.Fatalf("Err = %v, want ErrAborted", res.Err)
	}
	if res.Executed != time.Minute {
		t.Errorf("Result.Executed = %v, want 1m (one interrupted unit)", res.Executed)
	}
	st := c.Stats()
	if st.WastedTime != time.Minute || st.UsefulTime != 0 {
		t.Errorf("Stats wasted/useful = %v/%v, want 1m/0", st.WastedTime, st.UsefulTime)
	}
	if rate := st.WasteRate(); rate != 1 {
		t.Errorf("WasteRate = %v, want 1", rate)
	}
}

// TestExecutedReadableMidFlight: Task.Executed reports accumulated compute
// while the build is still running — the planner reads it when publishing an
// abort event for an in-flight build.
func TestExecutedReadableMidFlight(t *testing.T) {
	firstDone := make(chan struct{})
	block := make(chan struct{})
	var calls atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		if calls.Add(1) == 2 {
			close(firstDone)
			select {
			case <-block:
			case <-ctx.Done():
			}
		}
		return nil
	})
	c := NewController(1, runner)
	c.SetClock(fakeClock(time.Second))
	task := c.Start(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a", "//b:b"),
	})
	<-firstDone // first unit recorded, second in flight
	if got := task.Executed(); got != time.Second {
		t.Errorf("mid-flight Executed = %v, want 1s (one finished unit)", got)
	}
	close(block)
	if res := task.Result(); res.Executed != 2*time.Second {
		t.Errorf("final Executed = %v, want 2s", res.Executed)
	}
}

// TestStatsGauges: the compute gauges render the accounting counters.
func TestStatsGauges(t *testing.T) {
	s := Stats{
		Builds: 3, Completed: 2, Aborted: 1,
		ExecTime:   10 * time.Second,
		UsefulTime: 6 * time.Second,
		WastedTime: 4 * time.Second,
	}
	g := s.Gauges()
	want := map[string]float64{
		"builds": 3, "completed": 2, "aborted": 1,
		"exec_sec": 10, "useful_sec": 6, "wasted_sec": 4,
		"waste_rate": 0.4,
	}
	got := map[string]float64{}
	for _, kv := range g {
		got[kv.Name] = kv.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("gauge %s = %v, want %v", name, got[name], v)
		}
	}
}
