package buildsys

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

var compileStep = change.BuildStep{Name: "compile", Kind: change.StepCompile}

func targets(names ...string) map[string]string {
	m := make(map[string]string, len(names))
	for _, n := range names {
		m[n] = "hash-of-" + n
	}
	return m
}

// TestNilRunnerSucceeds: a nil runner completes every build successfully.
func TestNilRunnerSucceeds(t *testing.T) {
	c := NewController(2, nil)
	res := c.Run(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a", "//b:b"),
	})
	if !res.OK || res.Err != nil {
		t.Fatalf("Run = %+v, want OK", res)
	}
	st := c.Stats()
	if st.Builds != 1 || st.Completed != 1 || st.Executed != 2 {
		t.Errorf("Stats = %+v, want 1 build, 1 completed, 2 executed", st)
	}
}

// TestCancelAborts: cancelling an in-flight build yields ErrAborted and the
// build never reports success.
func TestCancelAborts(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		close(started)
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	c := NewController(2, runner)
	task := c.Start(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a"),
	})
	<-started
	task.Cancel()
	res := task.Result()
	close(release)
	if res.OK {
		t.Fatal("cancelled build reported OK")
	}
	if !errors.Is(res.Err, ErrAborted) {
		t.Fatalf("Err = %v, want ErrAborted", res.Err)
	}
	if st := c.Stats(); st.Aborted != 1 || st.Completed != 0 {
		t.Errorf("Stats = %+v, want 1 aborted, 0 completed", st)
	}
}

// TestCancelDoesNotLeakResult: cancelling before the work drains still closes
// Done promptly — the caller never blocks on a dead build.
func TestCancelDoesNotLeakResult(t *testing.T) {
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		<-ctx.Done()
		return ctx.Err()
	})
	c := NewController(1, runner)
	task := c.Start(context.Background(), Request{
		Key:     "b1",
		Steps:   []change.BuildStep{compileStep},
		Targets: targets("//a:a", "//b:b", "//c:c"),
	})
	task.Cancel()
	select {
	case <-task.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done not closed after Cancel")
	}
	if !errors.Is(task.Result().Err, ErrAborted) {
		t.Fatalf("Err = %v, want ErrAborted", task.Result().Err)
	}
}

// TestPriorTargetsSkipped: targets built by the speculation prefix are not
// re-executed (§6 minimal build steps).
func TestPriorTargetsSkipped(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	res := c.Run(context.Background(), Request{
		Key:          "b1",
		Steps:        []change.BuildStep{compileStep},
		Targets:      targets("//a:a", "//b:b", "//c:c"),
		PriorTargets: map[string]bool{"//a:a": true, "//b:b": true},
	})
	if !res.OK {
		t.Fatalf("Run = %+v, want OK", res)
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("runner executed %d units, want 1", got)
	}
	if st := c.Stats(); st.SkippedPrior != 2 || st.Executed != 1 {
		t.Errorf("Stats = %+v, want SkippedPrior=2 Executed=1", st)
	}
}

// TestArtifactCacheHit: a second build of the same (target, hash, kind)
// reuses the artifact instead of re-executing, and Stats counts the hit.
func TestArtifactCacheHit(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	req := Request{Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets("//a:a", "//b:b")}
	if res := c.Run(context.Background(), req); !res.OK {
		t.Fatalf("first build: %+v", res)
	}
	req.Key = "b2"
	if res := c.Run(context.Background(), req); !res.OK {
		t.Fatalf("second build: %+v", res)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (second build fully cached)", got)
	}
	st := c.Stats()
	if st.SkippedCache != 2 || st.CacheMisses != 2 {
		t.Errorf("Stats = %+v, want SkippedCache=2 CacheMisses=2", st)
	}
}

// TestCacheMissOnNewHash: a changed target hash is a different content
// address — no false sharing across versions.
func TestCacheMissOnNewHash(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	c.Run(context.Background(), Request{
		Key: "b1", Steps: []change.BuildStep{compileStep},
		Targets: map[string]string{"//a:a": "h1"},
	})
	c.Run(context.Background(), Request{
		Key: "b2", Steps: []change.BuildStep{compileStep},
		Targets: map[string]string{"//a:a": "h2"},
	})
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (hash change must miss)", got)
	}
	if st := c.Stats(); st.SkippedCache != 0 {
		t.Errorf("SkippedCache = %d, want 0", st.SkippedCache)
	}
}

// TestFailureNotCached: a failed unit is not cached; a later build re-runs it
// and can succeed.
func TestFailureNotCached(t *testing.T) {
	var calls atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		if calls.Add(1) == 1 {
			return fmt.Errorf("compile error")
		}
		return nil
	})
	c := NewController(2, runner)
	req := Request{Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets("//a:a")}
	res := c.Run(context.Background(), req)
	if res.OK || res.FailedStep != "compile" {
		t.Fatalf("first build = %+v, want failure at compile", res)
	}
	req.Key = "b2"
	if res := c.Run(context.Background(), req); !res.OK {
		t.Fatalf("retry build = %+v, want OK", res)
	}
	if st := c.Stats(); st.SkippedCache != 0 {
		t.Errorf("SkippedCache = %d, want 0 (failures must not be cached)", st.SkippedCache)
	}
}

// TestConcurrentBuildsCoalesce: two concurrent builds of the same targets
// execute each unit once; the loser of the claim race waits and reuses.
func TestConcurrentBuildsCoalesce(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		ran.Add(1)
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	c := NewController(4, runner)
	req1 := Request{Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets("//a:a", "//b:b")}
	req2 := req1
	req2.Key = "b2"
	t1 := c.Start(context.Background(), req1)
	t2 := c.Start(context.Background(), req2)
	if r := t1.Result(); !r.OK {
		t.Fatalf("b1 = %+v", r)
	}
	if r := t2.Result(); !r.OK {
		t.Fatalf("b2 = %+v", r)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (concurrent duplicates coalesce)", got)
	}
	if st := c.Stats(); st.SkippedCache != 2 {
		t.Errorf("SkippedCache = %d, want 2", st.SkippedCache)
	}
}

// TestStepOrderAndFailureStopsBuild: steps run in order; a failing step names
// itself in FailedStep and later steps never run.
func TestStepOrderAndFailureStopsBuild(t *testing.T) {
	var seen []string
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		seen = append(seen, step.Name)
		if step.Kind == change.StepUnitTest {
			return fmt.Errorf("test failed")
		}
		return nil
	})
	c := NewController(1, runner)
	res := c.Run(context.Background(), Request{
		Key: "b1",
		Steps: []change.BuildStep{
			{Name: "compile", Kind: change.StepCompile},
			{Name: "unit", Kind: change.StepUnitTest},
			{Name: "ui", Kind: change.StepUITest},
		},
		Targets: targets("//a:a"),
	})
	if res.OK || res.FailedStep != "unit" {
		t.Fatalf("Run = %+v, want failure at unit", res)
	}
	if len(seen) != 2 || seen[0] != "compile" || seen[1] != "unit" {
		t.Errorf("steps seen = %v, want [compile unit]", seen)
	}
}

// TestEmptyTargetBuildRuns: a build with no affected targets still runs each
// step once (repo-wide), so empty changes exercise the runner.
func TestEmptyTargetBuildRuns(t *testing.T) {
	var ran atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		if target != "" {
			t.Errorf("empty-target build passed target %q", target)
		}
		ran.Add(1)
		return nil
	})
	c := NewController(2, runner)
	res := c.Run(context.Background(), Request{
		Key:   "b1",
		Steps: []change.BuildStep{compileStep, {Name: "unit", Kind: change.StepUnitTest}},
	})
	if !res.OK {
		t.Fatalf("Run = %+v, want OK", res)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("runner executed %d units, want 2 (one per step)", got)
	}
	if st := c.Stats(); st.SkippedCache != 0 || st.CacheMisses != 0 {
		t.Errorf("Stats = %+v, want no cache traffic for repo-wide units", st)
	}
}

// TestWorkerPoolBound: no more than `workers` units execute at once.
func TestWorkerPoolBound(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int32
	runner := RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		n := cur.Add(1)
		for {
			m := max.Load()
			if n <= m || max.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	c := NewController(workers, runner)
	names := make([]string, 20)
	for i := range names {
		names[i] = fmt.Sprintf("//t:t%d", i)
	}
	if res := c.Run(context.Background(), Request{
		Key: "b1", Steps: []change.BuildStep{compileStep}, Targets: targets(names...),
	}); !res.OK {
		t.Fatalf("Run = %+v", res)
	}
	if got := max.Load(); got > workers {
		t.Errorf("max concurrency = %d, want <= %d", got, workers)
	}
}
