// Package change defines the domain vocabulary of the paper's development
// life cycle (§3.1): a Revision is a container of Changes; a Change is a code
// patch padded with the build steps that must succeed before the patch can be
// merged into the mainline, plus the metadata the probabilistic model feeds
// on (§7.2).
package change

import (
	"fmt"
	"sync/atomic"
	"time"

	"mastergreen/internal/repo"
)

// ID identifies a change.
type ID string

// RevisionID identifies a revision (a container for changes).
type RevisionID string

// StepKind classifies a build step.
type StepKind int

// Build step kinds, in typical execution order.
const (
	StepCompile StepKind = iota
	StepUnitTest
	StepIntegrationTest
	StepUITest
	StepArtifact
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepCompile:
		return "compile"
	case StepUnitTest:
		return "unit-test"
	case StepIntegrationTest:
		return "integration-test"
	case StepUITest:
		return "ui-test"
	case StepArtifact:
		return "artifact"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// BuildStep is one verification a change must pass before landing.
type BuildStep struct {
	Name string
	Kind StepKind
	// Target names this step covers; empty means "all affected targets".
	Targets []string
}

// State is the lifecycle state of a change inside SubmitQueue.
type State int

// Change lifecycle states.
const (
	StatePending State = iota
	StateBuilding
	StateCommitted
	StateRejected
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateBuilding:
		return "building"
	case StateCommitted:
		return "committed"
	case StateRejected:
		return "rejected"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Class is a change's scheduling priority class. The zero value is
// ClassNormal so every existing caller — and every submission that does not
// ask for a lane — schedules exactly as before the priority lanes existed.
type Class int

// Priority classes, from the default outward. The display names follow the
// incident-severity convention: P0 hotfix, P1 normal, P2 bulk.
const (
	// ClassNormal (P1) is the default lane: ordinary feature work.
	ClassNormal Class = iota
	// ClassHotfix (P0) is the hotfix lane: outage mitigations and security
	// patches. The scheduler weights these far above everything else,
	// exempts their modal path from predictor gating, and lets them preempt
	// running speculative builds.
	ClassHotfix
	// ClassBulk (P2) is the bulk lane: large mechanical refactors and
	// codemods that should soak up idle capacity without displacing normal
	// work. Deadline-aware aging keeps them from starving.
	ClassBulk
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassHotfix:
		return "P0"
	case ClassNormal:
		return "P1"
	case ClassBulk:
		return "P2"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ParseClass maps a request-level priority string to a Class. Unknown and
// empty strings fall back to ClassNormal so old clients keep working.
func ParseClass(s string) Class {
	switch s {
	case "P0", "p0", "hotfix":
		return ClassHotfix
	case "P2", "p2", "bulk":
		return ClassBulk
	default:
		return ClassNormal
	}
}

// Developer metadata used as model features (§7.2 "Developer").
type Developer struct {
	Name             string
	Team             string
	Level            int // seniority level, 1..10
	EmploymentMonths int
}

// Revision is a container for storing multiple changes (§3.1). Developers
// amend a revision until a change is approved; revision-level features
// (submit count, revert/test plans) are strong predictors (§7.2).
type Revision struct {
	ID          RevisionID
	Author      Developer
	SubmitCount int  // number of times changes were submitted to this revision
	TestPlan    bool // revision declares a test plan
	RevertPlan  bool // revision declares a revert plan
}

// Stats are the static, per-change features from §7.2 ("Change" category).
type Stats struct {
	NumGitCommits      int
	FilesChanged       int
	LinesAdded         int
	LinesRemoved       int
	HunksChanged       int
	BinariesAdded      int
	BinariesRemoved    int
	AffectedTargets    int
	InitialTestsPassed int // pre-submit checks that succeeded
	InitialTestsFailed int
}

// SpecStats are the dynamic features: the number of speculations for this
// change that succeeded or failed so far (§7.2 "Speculation"). The planner
// updates them as speculative builds finish while the analyzer/predictor
// fan-out reads them concurrently, so access goes through the atomic
// RecordOutcome/Counts pair; direct field access is not synchronized.
type SpecStats struct {
	succeeded int64
	failed    int64
}

// RecordOutcome atomically counts one finished speculation.
func (s *SpecStats) RecordOutcome(ok bool) {
	if ok {
		atomic.AddInt64(&s.succeeded, 1)
	} else {
		atomic.AddInt64(&s.failed, 1)
	}
}

// Counts atomically reads the (succeeded, failed) counters.
func (s *SpecStats) Counts() (succeeded, failed int64) {
	return atomic.LoadInt64(&s.succeeded), atomic.LoadInt64(&s.failed)
}

// Change comprises a developer's code patch padded with build steps that
// must succeed before the patch can be merged (§1), plus metadata.
type Change struct {
	ID          ID
	Revision    *Revision
	Author      Developer
	Description string

	Patch      repo.Patch
	BuildSteps []BuildStep

	// BaseCommit is the mainline commit the patch was authored against.
	// Staleness (Fig. 2) is measured from this commit's time.
	BaseCommit repo.CommitID
	BaseSeq    int // mainline position of BaseCommit

	SubmittedAt time.Time
	Stats       Stats
	Spec        SpecStats

	// Benefit weights this change's builds in the speculation engine's
	// value function V = B·P_needed (§4.2.1): "builds for certain projects
	// or with certain priority (e.g., security patches) can have higher
	// values". Zero means the default benefit of 1.
	Benefit float64

	// Class is the scheduling lane (internal/sched): P0 hotfix, P1 normal,
	// P2 bulk. The zero value is ClassNormal, so untouched callers behave
	// exactly as before priority lanes existed.
	Class Class
	// Deadline, when non-zero, is when the author needs a decision. The
	// scheduler ramps the change's weight up as slack shrinks so deadlined
	// bulk work cannot starve behind a sustained hotfix stream.
	Deadline time.Time

	State  State
	Reason string // rejection reason, if rejected
}

// Validate reports whether the change is well-formed enough to enqueue.
func (c *Change) Validate() error {
	if c == nil {
		return fmt.Errorf("change: nil change")
	}
	if c.ID == "" {
		return fmt.Errorf("change: empty ID")
	}
	if len(c.Patch.Changes) == 0 {
		return fmt.Errorf("change %s: empty patch", c.ID)
	}
	if len(c.BuildSteps) == 0 {
		return fmt.Errorf("change %s: no build steps", c.ID)
	}
	return nil
}

// DefaultBuildSteps returns the standard pipeline every change runs when the
// author does not customize it: compile, unit, integration, UI, artifact.
func DefaultBuildSteps() []BuildStep {
	return []BuildStep{
		{Name: "compile", Kind: StepCompile},
		{Name: "unit", Kind: StepUnitTest},
		{Name: "integration", Kind: StepIntegrationTest},
		{Name: "ui", Kind: StepUITest},
		{Name: "artifact", Kind: StepArtifact},
	}
}

// Staleness returns how old the change's base is relative to headTime: the
// quantity plotted on the x-axis of Fig. 2.
func (c *Change) Staleness(baseTime, headTime time.Time) time.Duration {
	d := headTime.Sub(baseTime)
	if d < 0 {
		return 0
	}
	return d
}
