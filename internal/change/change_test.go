package change

import (
	"strings"
	"testing"
	"time"

	"mastergreen/internal/repo"
)

func validChange() *Change {
	return &Change{
		ID: "c1",
		Patch: repo.Patch{Changes: []repo.FileChange{
			{Path: "a.go", Op: repo.OpCreate, NewContent: "x"},
		}},
		BuildSteps: DefaultBuildSteps(),
	}
}

func TestValidateOK(t *testing.T) {
	if err := validChange().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	var nilC *Change
	if err := nilC.Validate(); err == nil {
		t.Error("nil change must not validate")
	}
	c := validChange()
	c.ID = ""
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "empty ID") {
		t.Errorf("empty ID err = %v", err)
	}
	c = validChange()
	c.Patch = repo.Patch{}
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "empty patch") {
		t.Errorf("empty patch err = %v", err)
	}
	c = validChange()
	c.BuildSteps = nil
	if err := c.Validate(); err == nil || !strings.Contains(err.Error(), "no build steps") {
		t.Errorf("no steps err = %v", err)
	}
}

func TestDefaultBuildSteps(t *testing.T) {
	steps := DefaultBuildSteps()
	if len(steps) != 5 {
		t.Fatalf("len = %d", len(steps))
	}
	kinds := map[StepKind]bool{}
	for _, s := range steps {
		if s.Name == "" {
			t.Errorf("unnamed step %v", s)
		}
		kinds[s.Kind] = true
	}
	for _, k := range []StepKind{StepCompile, StepUnitTest, StepIntegrationTest, StepUITest, StepArtifact} {
		if !kinds[k] {
			t.Errorf("missing kind %v", k)
		}
	}
}

func TestStaleness(t *testing.T) {
	c := validChange()
	base := time.Unix(1000, 0)
	if got := c.Staleness(base, base.Add(2*time.Hour)); got != 2*time.Hour {
		t.Fatalf("Staleness = %v", got)
	}
	// Head older than base (clock skew): clamp to zero.
	if got := c.Staleness(base, base.Add(-time.Hour)); got != 0 {
		t.Fatalf("negative staleness = %v", got)
	}
}

func TestStateString(t *testing.T) {
	cases := map[State]string{
		StatePending: "pending", StateBuilding: "building",
		StateCommitted: "committed", StateRejected: "rejected",
		State(9): "State(9)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestStepKindString(t *testing.T) {
	cases := map[StepKind]string{
		StepCompile: "compile", StepUnitTest: "unit-test",
		StepIntegrationTest: "integration-test", StepUITest: "ui-test",
		StepArtifact: "artifact", StepKind(7): "StepKind(7)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
