package conflict

import (
	"fmt"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// benchRepo builds a repo of n mutually independent single-target packages
// plus one pending content edit per package.
func benchRepo(n int) (*repo.Repo, []*change.Change) {
	files := make(map[string]string, 2*n)
	for i := 0; i < n; i++ {
		files[fmt.Sprintf("d%03d/BUILD", i)] = fmt.Sprintf("target t%03d srcs=f.go", i)
		files[fmt.Sprintf("d%03d/f.go", i)] = fmt.Sprintf("v1 of %d", i)
	}
	r := repo.New(files)
	pending := make([]*change.Change, n)
	for i := 0; i < n; i++ {
		pending[i] = &change.Change{
			ID: change.ID(fmt.Sprintf("c%03d", i)),
			Patch: repo.Patch{Changes: []repo.FileChange{{
				Path: fmt.Sprintf("d%03d/f.go", i), Op: repo.OpModify,
				BaseHash:   repo.HashContent(fmt.Sprintf("v1 of %d", i)),
				NewContent: fmt.Sprintf("v2 of %d", i),
			}}},
		}
	}
	return r, pending
}

// runCommitSequence plans the full pending set, then lands the first k
// changes one at a time with a BuildGraph re-plan after each commit —
// the planner's steady-state loop. It returns the number of conflict-level
// graph builds the commit phase consumed.
func runCommitSequence(tb testing.TB, legacy bool, n, k int) (graphBuildsPerCommit float64, st Stats) {
	tb.Helper()
	r, pending := benchRepo(n)
	a := New(r)
	a.LegacyInvalidation = legacy
	if _, failed := a.BuildGraph(pending); len(failed) != 0 {
		tb.Fatalf("initial BuildGraph failed: %v", failed)
	}
	before := a.Stats().GraphBuilds
	for i := 0; i < k; i++ {
		head := r.Head()
		if _, err := r.CommitPatch(head.ID, pending[0].Patch, "dev", string(pending[0].ID), time.Time{}); err != nil {
			tb.Fatal(err)
		}
		pending = pending[1:]
		if _, failed := a.BuildGraph(pending); len(failed) != 0 {
			tb.Fatalf("BuildGraph after commit %d failed: %v", i, failed)
		}
	}
	st = a.Stats()
	return float64(st.GraphBuilds-before) / float64(k), st
}

// TestSelectiveInvalidationReducesGraphBuilds is the acceptance headline:
// at 64 pending independent changes, committing them one at a time must cost
// at least 5x fewer graph builds per commit than the wipe-on-head-move
// baseline (BENCH_conflict.json records the measured ratio).
func TestSelectiveInvalidationReducesGraphBuilds(t *testing.T) {
	const n, k = 64, 16
	legacyPer, _ := runCommitSequence(t, true, n, k)
	incPer, st := runCommitSequence(t, false, n, k)
	t.Logf("graph builds per commit: legacy=%.1f incremental=%.1f (%.1fx) stats=%+v",
		legacyPer, incPer, legacyPer/incPer, st)
	if incPer <= 0 {
		t.Fatalf("incremental graph builds per commit = %v", incPer)
	}
	if ratio := legacyPer / incPer; ratio < 5 {
		t.Fatalf("graph-build reduction %.1fx < 5x (legacy %.1f/commit, incremental %.1f/commit)",
			ratio, legacyPer, incPer)
	}
	if st.ReusedAnalyses == 0 || st.PairsReused == 0 {
		t.Fatalf("incremental pipeline idle: %+v", st)
	}
}

// BenchmarkCommitReplanIncremental measures the steady-state planner loop —
// commit one change, re-plan the remaining 63 — with selective invalidation
// and the incremental graph memo.
func BenchmarkCommitReplanIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCommitSequence(b, false, 64, 16)
	}
}

// BenchmarkCommitReplanLegacy is the same loop with wipe-on-head-move
// invalidation and from-scratch graph builds (the pre-incremental analyzer).
func BenchmarkCommitReplanLegacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runCommitSequence(b, true, 64, 16)
	}
}

// BenchmarkBuildGraphSteadyState measures a re-plan with no head movement
// and no pending churn: all pairs served from the graph memo.
func BenchmarkBuildGraphSteadyState(b *testing.B) {
	r, pending := benchRepo(64)
	a := New(r)
	if _, failed := a.BuildGraph(pending); len(failed) != 0 {
		b.Fatalf("setup failed: %v", failed)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, failed := a.BuildGraph(pending); len(failed) != 0 {
			b.Fatalf("BuildGraph failed: %v", failed)
		}
	}
}

// BenchmarkAnalyzeFanOut measures the parallel single-flight analysis of 64
// fresh changes (cache emptied each iteration via a forced legacy wipe).
func BenchmarkAnalyzeFanOut(b *testing.B) {
	r, pending := benchRepo(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(r)
		if _, failed := a.BuildGraph(pending); len(failed) != 0 {
			b.Fatalf("BuildGraph failed: %v", failed)
		}
	}
}
