package conflict

import (
	"sync"

	"mastergreen/internal/change"
)

// graphMemo is the analyzer's long-lived conflict graph plus the analysis
// identity each vertex's edges were last scanned under. A pair of vertices
// is clean — its edge state carried over without a rescan — iff both
// members' identities are unchanged since the last update.
type graphMemo struct {
	graph   *Graph
	members map[change.ID]uint64
}

// BuildGraph analyzes every pending change pairwise and returns the conflict
// graph. Changes whose patch no longer applies to HEAD are reported in
// failed with their error and excluded from the graph.
//
// Analyses fan out in parallel on the bounded worker pool. The returned
// graph is maintained incrementally across calls: vertices for changes no
// longer pending are removed, new ones added, and only pairs whose analyses
// changed since the previous epoch are re-verdicted; everything else carries
// over. If HEAD moves while the fan-out is in flight, the whole pass retries
// once against the new head; pairs still stale after the retry get a
// conservative conflict edge so the planner re-plans next epoch rather than
// miscommitting.
func (a *Analyzer) BuildGraph(pending []*change.Change) (*Graph, map[change.ID]error) {
	type slot struct {
		an  *Analysis
		err error
	}
	slots := make([]slot, len(pending))
	analyze := func() {
		var wg sync.WaitGroup
		for i, c := range pending {
			wg.Add(1)
			go func(i int, c *change.Change) {
				defer wg.Done()
				an, err := a.Analyze(c)
				slots[i] = slot{an: an, err: err}
			}(i, c)
		}
		wg.Wait()
	}

	for attempt := 0; ; attempt++ {
		analyze()

		a.mu.Lock()
		if err := a.refreshHeadLocked(); err != nil {
			// The head snapshot itself fails build-graph analysis; nothing
			// can be decided this epoch.
			a.mu.Unlock()
			failed := make(map[change.ID]error, len(pending))
			for _, c := range pending {
				failed[c.ID] = err
			}
			return NewGraph(nil), failed
		}
		stale := false
		for i, c := range pending {
			if slots[i].err != nil {
				continue
			}
			// Prefer the cached analysis: a head move since the fan-out
			// re-homed disjoint survivors in place.
			if cur, ok := a.analyses[c.ID]; ok {
				slots[i].an = cur
			}
			if slots[i].an.Head != a.head {
				stale = true
			}
		}
		if stale && attempt < 1 {
			a.stats.HeadMoveRetries++
			a.mu.Unlock()
			continue
		}

		failed := map[change.ID]error{}
		ok := make([]*Analysis, 0, len(pending))
		for i, c := range pending {
			if slots[i].err != nil {
				failed[c.ID] = slots[i].err
				continue
			}
			ok = append(ok, slots[i].an)
		}
		g := a.updateGraphLocked(ok)
		a.mu.Unlock()
		return g, failed
	}
}

// updateGraphLocked reconciles the memoized conflict graph with the current
// set of successfully analyzed pending changes (in submission order) and
// returns a clone. Callers hold a.mu.
func (a *Analyzer) updateGraphLocked(ok []*Analysis) *Graph {
	if a.memo == nil || a.LegacyInvalidation {
		a.memo = &graphMemo{graph: NewGraph(nil), members: map[change.ID]uint64{}}
		a.stats.GraphRebuilds++
	} else {
		a.stats.GraphUpdates++
	}
	m := a.memo

	// Drop vertices for changes no longer pending (committed, rejected, or
	// failed this epoch). Their analyses cannot be queried again at this
	// head through BuildGraph, so the per-change cache is pruned too, which
	// in turn lets the pair sweep reclaim their memoized verdicts.
	current := make(map[change.ID]bool, len(ok))
	for _, an := range ok {
		current[an.Change.ID] = true
	}
	pruned := false
	for _, id := range m.graph.Order() {
		if !current[id] {
			m.graph.Remove(id)
			delete(m.members, id)
			if _, cached := a.analyses[id]; cached {
				delete(a.analyses, id)
				pruned = true
			}
		}
	}
	if pruned {
		a.sweepPairsLocked()
	}

	// Add vertices in submission order and mark dirty ones: new vertices,
	// vertices whose analysis was recomputed (identity changed), and — after
	// an exhausted head-move retry — vertices whose analysis is still stale.
	dirty := make([]bool, len(ok))
	staleAt := make([]bool, len(ok))
	for i, an := range ok {
		m.graph.AddChange(an.Change.ID)
		staleAt[i] = an.Head != a.head
		dirty[i] = staleAt[i] || m.members[an.Change.ID] != an.id
	}

	for i := 0; i < len(ok); i++ {
		for j := i + 1; j < len(ok); j++ {
			if !dirty[i] && !dirty[j] {
				a.stats.PairsReused++
				continue
			}
			ci, cj := ok[i].Change.ID, ok[j].Change.ID
			if staleAt[i] || staleAt[j] {
				// Head kept moving through the retry: assume conflict so the
				// planner re-plans next epoch rather than miscommitting.
				a.stats.ConservativeEdges++
				m.graph.AddEdge(ci, cj)
				continue
			}
			a.stats.PairsRescanned++
			if a.pairVerdictLocked(ok[i], ok[j]) {
				m.graph.AddEdge(ci, cj)
			} else {
				m.graph.RemoveEdge(ci, cj)
			}
		}
	}
	for i, an := range ok {
		if staleAt[i] {
			// Not scanned at this head; force a rescan next epoch.
			delete(m.members, an.Change.ID)
		} else {
			m.members[an.Change.ID] = an.id
		}
	}
	return m.graph.Clone()
}
