// Package conflict implements the paper's scalable conflict analyzer (§5):
// it computes the set of build targets affected by each pending change
// (δ_{H⊕C}), decides pairwise whether two changes conflict, and assembles the
// conflict graph the speculation engine uses to (1) trim the speculation
// space and (2) find independent changes that can commit in parallel.
//
// Detection strategy, per §5.2: if neither change alters the build-graph
// structure (the common case — the paper measured 1.6–7.9%), a cheap
// name-intersection of deltas suffices; otherwise the union-graph algorithm
// runs on the three graphs G_H, G_{H⊕Ci}, G_{H⊕Cj}, avoiding the n² graph
// builds that Equation 6 would require.
//
// The analyzer's steady state is an incremental, parallel pipeline
// (DESIGN.md §4e):
//
//   - Selective invalidation: when HEAD advances, cached analyses whose
//     deltas are target-disjoint from the head movement (and whose patches
//     touch none of the moved files) are re-homed to the new head instead of
//     recomputed, so a commit costs ~conflict-degree re-analyses, not N.
//   - Parallel fan-out: per-change analyses run single-flight on a bounded
//     worker pool; the analyzer mutex only guards cache bookkeeping, never a
//     merge or graph build.
//   - Pairwise memoization + incremental conflict graph: pair verdicts are
//     cached under the two analyses' identities (which survive re-homing),
//     and BuildGraph updates one long-lived graph epoch to epoch, rescanning
//     only pairs whose analyses changed.
package conflict

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"mastergreen/internal/buildgraph"
	"mastergreen/internal/change"
	"mastergreen/internal/events"
	"mastergreen/internal/metrics"
	"mastergreen/internal/repo"
)

// errHeadMoved is returned by Conflicts when HEAD advanced between the two
// analyses; BuildGraph retries the pass once before assuming conflict.
var errHeadMoved = errors.New("conflict: head moved during analysis")

// ApplyError is the canonical rejection error for a change whose patch no
// longer applies to the current head. The analyzer produces it from a failed
// merge, and the sharded planner's engine view reproduces it from a live
// applicability check so both paths reject with identical wording.
func ApplyError(id change.ID, err error) error {
	return fmt.Errorf("conflict: change %s does not apply to head: %w", id, err)
}

// IsApplyFailure reports whether an analysis error was a patch-applicability
// failure (merge conflict with committed work) as opposed to a structural
// analysis failure such as a malformed BUILD file. Applicability is a
// function of the current head, so cached apply failures go stale the moment
// the head moves; structural failures travel with the change itself.
func IsApplyFailure(err error) bool {
	return errors.Is(err, repo.ErrFileExists) ||
		errors.Is(err, repo.ErrNoSuchFile) ||
		errors.Is(err, repo.ErrMergeConflict)
}

// Analysis is everything the analyzer derives from a single change at a
// given head.
type Analysis struct {
	// id is the analysis identity: a fresh value per computed analysis,
	// preserved when the analysis is re-homed across a head move. Pairwise
	// verdicts are memoized under the two identities, so a verdict stays
	// valid exactly as long as both analyses do.
	id uint64

	Change *change.Change
	Head   repo.CommitID
	// Delta is δ_{H⊕C}: affected targets and their post-change hashes.
	Delta buildgraph.Delta
	// StructureChanged reports whether the change alters the target graph
	// (adds/removes targets or edges). Only such changes need the union-graph
	// conflict algorithm.
	StructureChanged bool
	// Graph is the build graph of H⊕C as analyzed when the analysis was
	// computed. After re-homing, hashes of targets outside Delta may lag the
	// current head, but its structure (targets and edges) is current — the
	// only property the union comparison consults.
	Graph *buildgraph.Graph
	// paths is the set of files the change's patch touches, consulted by the
	// selective-invalidation rule (a head movement touching none of them
	// cannot affect the patch's applicability).
	paths map[string]bool
}

// Stats counts analyzer work, used by the ablation benchmarks to verify the
// "n graphs instead of n²" claim and to measure the incremental pipeline.
type Stats struct {
	GraphBuilds        int // full build-graph analyses performed
	CheapComparisons   int // name-intersection conflict tests
	UnionComparisons   int // union-graph conflict tests
	CacheHits          int
	StructureChanged   int // analyses whose change altered graph structure
	AnalyzedChanges    int
	PatchApplyFailures int

	// Incremental-pipeline counters (DESIGN.md §4e).
	ReusedAnalyses         int // analyses re-homed across a head move without recomputation
	SelectiveInvalidations int // analyses dropped by the invalidation rule
	PairCacheHits          int // pairwise verdicts served from the pair cache
	PairsReused            int // graph edges carried between epochs without any rescan
	PairsRescanned         int // dirty pairs re-verdicted during a graph update
	HeadMoveRetries        int // BuildGraph passes re-run because HEAD moved mid-analysis
	ConservativeEdges      int // edges assumed conflicting because HEAD kept moving
	GraphUpdates           int // incremental conflict-graph updates
	GraphRebuilds          int // conflict graphs built from scratch
}

// Gauges renders the counters as ordered name/value pairs for dashboards and
// experiment reports (cache effectiveness at a glance).
func (s Stats) Gauges() metrics.Gauges {
	return metrics.Gauges{
		{Name: "graph_builds", Value: float64(s.GraphBuilds)},
		{Name: "analyzed_changes", Value: float64(s.AnalyzedChanges)},
		{Name: "cache_hits", Value: float64(s.CacheHits)},
		{Name: "reused_analyses", Value: float64(s.ReusedAnalyses)},
		{Name: "selective_invalidations", Value: float64(s.SelectiveInvalidations)},
		{Name: "cheap_comparisons", Value: float64(s.CheapComparisons)},
		{Name: "union_comparisons", Value: float64(s.UnionComparisons)},
		{Name: "pair_cache_hits", Value: float64(s.PairCacheHits)},
		{Name: "pairs_reused", Value: float64(s.PairsReused)},
		{Name: "pairs_rescanned", Value: float64(s.PairsRescanned)},
		{Name: "head_move_retries", Value: float64(s.HeadMoveRetries)},
		{Name: "conservative_edges", Value: float64(s.ConservativeEdges)},
		{Name: "graph_updates", Value: float64(s.GraphUpdates)},
		{Name: "graph_rebuilds", Value: float64(s.GraphRebuilds)},
		{Name: "structure_changed", Value: float64(s.StructureChanged)},
		{Name: "patch_apply_failures", Value: float64(s.PatchApplyFailures)},
	}
}

// inflight is a single-flight slot: the claimant computes the analysis and
// publishes it before closing done; waiters re-check the cache afterwards.
type inflight struct {
	done chan struct{}
	an   *Analysis // set before done closes; may be for an older head
	err  error
}

// pairKey addresses one memoized pairwise verdict by the identities of the
// two analyses it was computed from, order-normalized.
type pairKey struct{ lo, hi uint64 }

func makePairKey(a, b uint64) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// Analyzer caches per-head build graphs, per-change analyses, pairwise
// verdicts, and an incrementally maintained conflict graph. All methods are
// safe for concurrent use.
type Analyzer struct {
	repo *repo.Repo

	// LegacyInvalidation, when set before first use, restores the
	// wipe-on-head-move baseline: every head movement discards all cached
	// analyses, pair verdicts, and the graph memo. It exists so benchmarks
	// and ablations can measure what the incremental pipeline saves.
	LegacyInvalidation bool

	sem chan struct{} // bounds concurrently executing per-change analyses

	mu        sync.Mutex
	head      repo.CommitID
	headSnap  repo.Snapshot
	headGraph *buildgraph.Graph
	analyses  map[change.ID]*Analysis
	inflight  map[change.ID]*inflight
	nextID    uint64 // next analysis identity; starts at 1 (0 = "no identity")
	pairs     map[pairKey]bool
	memo      *graphMemo
	stats     Stats
	bus       *events.Bus
}

// New creates an Analyzer over the repository. The analysis worker pool is
// sized to the machine; worker count never affects results, only latency.
func New(r *repo.Repo) *Analyzer {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	return &Analyzer{
		repo:     r,
		sem:      make(chan struct{}, workers),
		analyses: map[change.ID]*Analysis{},
		inflight: map[change.ID]*inflight{},
		nextID:   1,
		pairs:    map[pairKey]bool{},
	}
}

// SetEvents attaches an event bus for analyzer lifecycle events (analysis
// start/reuse/invalidate). Call before first use.
func (a *Analyzer) SetEvents(b *events.Bus) { a.bus = b }

// publish emits a lifecycle event. Safe to call with or without a.mu held:
// Bus.Publish's subscriber sends are non-blocking and its mutex is a leaf.
func (a *Analyzer) publish(typ events.Type, id change.ID, detail string) {
	if a.bus == nil {
		return
	}
	a.bus.Publish(events.Event{Type: typ, Change: id, Detail: detail})
}

// Stats returns a snapshot of the analyzer's work counters.
func (a *Analyzer) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func (a *Analyzer) count(f func(*Stats)) {
	a.mu.Lock()
	f(&a.stats)
	a.mu.Unlock()
}

// refreshHeadLocked ensures the cached head graph matches the repo's current
// HEAD. When the mainline advanced, per-change analyses are selectively
// invalidated (see invalidateLocked) rather than wiped. Callers hold a.mu.
func (a *Analyzer) refreshHeadLocked() error {
	head := a.repo.Head()
	if a.headGraph != nil && a.head == head.ID {
		return nil
	}
	snap := head.Snapshot()
	g, err := buildgraph.Analyze(snap)
	if err != nil {
		return fmt.Errorf("conflict: analyzing head %s: %w", head.ID, err)
	}
	a.stats.GraphBuilds++
	if a.headGraph == nil || a.LegacyInvalidation {
		a.analyses = map[change.ID]*Analysis{}
		a.pairs = map[pairKey]bool{}
		a.memo = nil
	} else {
		a.invalidateLocked(head.ID, snap, g)
	}
	a.head = head.ID
	a.headSnap = snap
	a.headGraph = g
	return nil
}

// Analyze computes (and caches) the Analysis for a change against the
// current HEAD. It fails if the patch does not apply cleanly to HEAD — a
// merge conflict with already-committed work, which SubmitQueue surfaces as
// an immediate rejection reason.
//
// Concurrent calls for the same change coalesce onto one computation
// (single-flight); concurrent calls for different changes proceed in
// parallel on a bounded pool. If HEAD moves while an analysis is in flight,
// the returned Analysis carries the head it was computed at; Conflicts and
// BuildGraph detect the mismatch and retry.
func (a *Analyzer) Analyze(c *change.Change) (*Analysis, error) {
	for {
		a.mu.Lock()
		if err := a.refreshHeadLocked(); err != nil {
			a.mu.Unlock()
			return nil, err
		}
		if an, ok := a.analyses[c.ID]; ok {
			a.stats.CacheHits++
			a.mu.Unlock()
			return an, nil
		}
		if fl, ok := a.inflight[c.ID]; ok {
			a.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, fl.err
			}
			// The in-flight analysis may have landed at an older head; loop
			// to pick it from the cache (or re-claim) at the current one.
			continue
		}
		fl := &inflight{done: make(chan struct{})}
		a.inflight[c.ID] = fl
		head, headGraph := a.head, a.headGraph
		a.mu.Unlock()

		a.publish(events.TypeAnalysisStarted, c.ID, "at head "+string(head))
		an, err := a.analyzeAt(c, head, headGraph)

		a.mu.Lock()
		delete(a.inflight, c.ID)
		if err == nil {
			an.id = a.nextID
			a.nextID++
			if a.head == head {
				a.analyses[c.ID] = an
			}
		}
		fl.an, fl.err = an, err
		a.mu.Unlock()
		close(fl.done)
		return an, err
	}
}

// analyzeAt performs the expensive part of an analysis — merge, build-graph
// analysis, delta — without holding a.mu, bounded by the worker pool.
func (a *Analyzer) analyzeAt(c *change.Change, head repo.CommitID, headGraph *buildgraph.Graph) (*Analysis, error) {
	a.sem <- struct{}{}
	defer func() { <-a.sem }()
	snap, err := a.repo.Merged(head, c.Patch)
	if err != nil {
		a.count(func(s *Stats) { s.PatchApplyFailures++ })
		return nil, ApplyError(c.ID, err)
	}
	g, err := buildgraph.Analyze(snap)
	if err != nil {
		return nil, fmt.Errorf("conflict: analyzing %s: %w", c.ID, err)
	}
	structureChanged := !buildgraph.SameStructure(headGraph, g)
	a.count(func(s *Stats) {
		s.GraphBuilds++
		s.AnalyzedChanges++
		if structureChanged {
			s.StructureChanged++
		}
	})
	paths := map[string]bool{}
	for _, p := range c.Patch.Paths() {
		paths[p] = true
	}
	return &Analysis{
		Change:           c,
		Head:             head,
		Delta:            buildgraph.Diff(headGraph, g),
		StructureChanged: structureChanged,
		Graph:            g,
		paths:            paths,
	}, nil
}

// StructureChanged reports whether the cached analysis for the change (at
// the head it was computed or re-homed to) altered build-graph structure.
// known is false when no analysis is cached — selective invalidation dropped
// it, or it was never computed — and callers needing a safe answer should
// then assume the structure did change. The commit arbiter consults this
// during cross-shard re-validation without forcing a recomputation.
func (a *Analyzer) StructureChanged(id change.ID) (changed, known bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	an, ok := a.analyses[id]
	if !ok {
		return false, false
	}
	return an.StructureChanged, true
}

// Conflicts reports whether two changes conflict at the current HEAD.
func (a *Analyzer) Conflicts(ci, cj *change.Change) (bool, error) {
	ai, err := a.Analyze(ci)
	if err != nil {
		return false, err
	}
	aj, err := a.Analyze(cj)
	if err != nil {
		return false, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Prefer the cached (possibly re-homed) analyses: a head move between
	// the two Analyze calls re-homes disjoint survivors in place.
	if cur, ok := a.analyses[ci.ID]; ok {
		ai = cur
	}
	if cur, ok := a.analyses[cj.ID]; ok {
		aj = cur
	}
	if ai.Head != a.head || aj.Head != a.head {
		// Head moved between the two analyses; caller should retry.
		return false, errHeadMoved
	}
	return a.pairVerdictLocked(ai, aj), nil
}

// pairVerdictLocked decides (and memoizes) whether two same-head analyses
// conflict. Callers hold a.mu and have verified both heads match a.head.
func (a *Analyzer) pairVerdictLocked(ai, aj *Analysis) bool {
	key := makePairKey(ai.id, aj.id)
	if v, ok := a.pairs[key]; ok {
		a.stats.PairCacheHits++
		return v
	}
	var conf bool
	if !ai.StructureChanged && !aj.StructureChanged {
		a.stats.CheapComparisons++
		conf = buildgraph.NameIntersectionConflict(ai.Delta, aj.Delta)
	} else {
		a.stats.UnionComparisons++
		conf = buildgraph.UnionConflictDeltas(ai.Delta, aj.Delta, a.headGraph, ai.Graph, aj.Graph)
	}
	if !a.LegacyInvalidation {
		a.pairs[key] = conf
	}
	return conf
}
