// Package conflict implements the paper's scalable conflict analyzer (§5):
// it computes the set of build targets affected by each pending change
// (δ_{H⊕C}), decides pairwise whether two changes conflict, and assembles the
// conflict graph the speculation engine uses to (1) trim the speculation
// space and (2) find independent changes that can commit in parallel.
//
// Detection strategy, per §5.2: if neither change alters the build-graph
// structure (the common case — the paper measured 1.6–7.9%), a cheap
// name-intersection of deltas suffices; otherwise the union-graph algorithm
// runs on the three graphs G_H, G_{H⊕Ci}, G_{H⊕Cj}, avoiding the n² graph
// builds that Equation 6 would require.
package conflict

import (
	"fmt"
	"sort"
	"sync"

	"mastergreen/internal/buildgraph"
	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// Analysis is everything the analyzer derives from a single change at a
// given head.
type Analysis struct {
	Change *change.Change
	Head   repo.CommitID
	// Delta is δ_{H⊕C}: affected targets and their post-change hashes.
	Delta buildgraph.Delta
	// StructureChanged reports whether the change alters the target graph
	// (adds/removes targets or edges). Only such changes need the union-graph
	// conflict algorithm.
	StructureChanged bool
	// Graph is the build graph of H⊕C, consulted by the union-graph
	// comparison when either side of a pair changed structure.
	Graph *buildgraph.Graph
}

// Stats counts analyzer work, used by the ablation benchmarks to verify the
// "n graphs instead of n²" claim.
type Stats struct {
	GraphBuilds        int // full build-graph analyses performed
	CheapComparisons   int // name-intersection conflict tests
	UnionComparisons   int // union-graph conflict tests
	CacheHits          int
	StructureChanged   int // analyses whose change altered graph structure
	AnalyzedChanges    int
	PatchApplyFailures int
}

// Analyzer caches per-head build graphs and per-change analyses. All methods
// are safe for concurrent use.
type Analyzer struct {
	repo *repo.Repo

	mu        sync.Mutex
	head      repo.CommitID
	headGraph *buildgraph.Graph
	analyses  map[change.ID]*Analysis
	stats     Stats
}

// New creates an Analyzer over the repository.
func New(r *repo.Repo) *Analyzer {
	return &Analyzer{repo: r, analyses: map[change.ID]*Analysis{}}
}

// Stats returns a snapshot of the analyzer's work counters.
func (a *Analyzer) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// refreshHead ensures the cached head graph matches the repo's current HEAD,
// invalidating per-change analyses when the mainline advanced. Callers hold
// a.mu.
func (a *Analyzer) refreshHead() error {
	head := a.repo.Head()
	if a.headGraph != nil && a.head == head.ID {
		return nil
	}
	g, err := buildgraph.Analyze(head.Snapshot())
	if err != nil {
		return fmt.Errorf("conflict: analyzing head %s: %w", head.ID, err)
	}
	a.stats.GraphBuilds++
	a.head = head.ID
	a.headGraph = g
	a.analyses = map[change.ID]*Analysis{}
	return nil
}

// Analyze computes (and caches) the Analysis for a change against the
// current HEAD. It fails if the patch does not apply cleanly to HEAD — a
// merge conflict with already-committed work, which SubmitQueue surfaces as
// an immediate rejection reason.
func (a *Analyzer) Analyze(c *change.Change) (*Analysis, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.refreshHead(); err != nil {
		return nil, err
	}
	if an, ok := a.analyses[c.ID]; ok {
		a.stats.CacheHits++
		return an, nil
	}
	snap, err := a.repo.Merged(a.head, c.Patch)
	if err != nil {
		a.stats.PatchApplyFailures++
		return nil, fmt.Errorf("conflict: change %s does not apply to head: %w", c.ID, err)
	}
	g, err := buildgraph.Analyze(snap)
	if err != nil {
		return nil, fmt.Errorf("conflict: analyzing %s: %w", c.ID, err)
	}
	a.stats.GraphBuilds++
	a.stats.AnalyzedChanges++
	an := &Analysis{
		Change:           c,
		Head:             a.head,
		Delta:            buildgraph.Diff(a.headGraph, g),
		StructureChanged: !buildgraph.SameStructure(a.headGraph, g),
		Graph:            g,
	}
	if an.StructureChanged {
		a.stats.StructureChanged++
	}
	a.analyses[c.ID] = an
	return an, nil
}

// Conflicts reports whether two changes conflict at the current HEAD.
func (a *Analyzer) Conflicts(ci, cj *change.Change) (bool, error) {
	ai, err := a.Analyze(ci)
	if err != nil {
		return false, err
	}
	aj, err := a.Analyze(cj)
	if err != nil {
		return false, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if ai.Head != a.head || aj.Head != a.head {
		// Head moved between the two analyses; caller should retry.
		return false, fmt.Errorf("conflict: head moved during analysis")
	}
	if !ai.StructureChanged && !aj.StructureChanged {
		a.stats.CheapComparisons++
		return buildgraph.NameIntersectionConflict(ai.Delta, aj.Delta), nil
	}
	a.stats.UnionComparisons++
	return buildgraph.UnionConflict(a.headGraph, ai.Graph, aj.Graph), nil
}

// Graph is the conflict graph over a set of pending changes: vertices are
// changes (in submission order) and edges join potentially conflicting pairs.
type Graph struct {
	order []change.ID
	index map[change.ID]int
	edges map[change.ID]map[change.ID]bool
}

// BuildGraph analyzes every pending change pairwise and returns the conflict
// graph. Changes whose patch no longer applies to HEAD are reported in
// failed with their error and excluded from the graph.
func (a *Analyzer) BuildGraph(pending []*change.Change) (g *Graph, failed map[change.ID]error) {
	failed = map[change.ID]error{}
	var ok []*change.Change
	for _, c := range pending {
		if _, err := a.Analyze(c); err != nil {
			failed[c.ID] = err
			continue
		}
		ok = append(ok, c)
	}
	g = NewGraph(nil)
	for _, c := range ok {
		g.AddChange(c.ID)
	}
	for i := 0; i < len(ok); i++ {
		for j := i + 1; j < len(ok); j++ {
			conf, err := a.Conflicts(ok[i], ok[j])
			if err != nil {
				// Head moved mid-build: mark conservative conflict so the
				// planner re-plans next epoch rather than miscommitting.
				conf = true
			}
			if conf {
				g.AddEdge(ok[i].ID, ok[j].ID)
			}
		}
	}
	return g, failed
}

// NewGraph creates a conflict graph with the given change order.
func NewGraph(order []change.ID) *Graph {
	g := &Graph{index: map[change.ID]int{}, edges: map[change.ID]map[change.ID]bool{}}
	for _, id := range order {
		g.AddChange(id)
	}
	return g
}

// AddChange appends a change to the submission order (idempotent).
func (g *Graph) AddChange(id change.ID) {
	if _, ok := g.index[id]; ok {
		return
	}
	g.index[id] = len(g.order)
	g.order = append(g.order, id)
	g.edges[id] = map[change.ID]bool{}
}

// AddEdge records that two changes potentially conflict.
func (g *Graph) AddEdge(a, b change.ID) {
	if a == b {
		return
	}
	g.AddChange(a)
	g.AddChange(b)
	g.edges[a][b] = true
	g.edges[b][a] = true
}

// Remove deletes a change (e.g. after it commits or is rejected).
func (g *Graph) Remove(id change.ID) {
	if _, ok := g.index[id]; !ok {
		return
	}
	for other := range g.edges[id] {
		delete(g.edges[other], id)
	}
	delete(g.edges, id)
	delete(g.index, id)
	for i, o := range g.order {
		if o == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	for i, o := range g.order {
		g.index[o] = i
	}
}

// Len returns the number of changes in the graph.
func (g *Graph) Len() int { return len(g.order) }

// Order returns change IDs in submission order (a copy).
func (g *Graph) Order() []change.ID { return append([]change.ID(nil), g.order...) }

// Conflict reports whether two changes are joined by an edge.
func (g *Graph) Conflict(a, b change.ID) bool { return g.edges[a][b] }

// Neighbors returns the changes conflicting with id, in submission order.
func (g *Graph) Neighbors(id change.ID) []change.ID {
	out := make([]change.ID, 0, len(g.edges[id]))
	for o := range g.edges[id] {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return g.index[out[i]] < g.index[out[j]] })
	return out
}

// ConflictingPredecessors returns the changes submitted before id that
// conflict with it — the set the speculation engine must speculate over.
func (g *Graph) ConflictingPredecessors(id change.ID) []change.ID {
	idx, ok := g.index[id]
	if !ok {
		return nil
	}
	var out []change.ID
	for _, o := range g.Neighbors(id) {
		if g.index[o] < idx {
			out = append(out, o)
		}
	}
	return out
}

// Components returns the connected components of the conflict graph, each in
// submission order, with components ordered by their earliest change.
// Changes in different components are mutually independent and can build and
// commit fully in parallel (§5).
func (g *Graph) Components() [][]change.ID {
	seen := map[change.ID]bool{}
	var comps [][]change.ID
	for _, id := range g.order {
		if seen[id] {
			continue
		}
		var comp []change.ID
		stack := []change.ID{id}
		seen[id] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for m := range g.edges[n] {
				if !seen[m] {
					seen[m] = true
					//lint:ignore maporder visit order is immaterial: comp is sorted by submission index below
					stack = append(stack, m)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return g.index[comp[i]] < g.index[comp[j]] })
		comps = append(comps, comp)
	}
	return comps
}
