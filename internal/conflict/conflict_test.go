package conflict

import (
	"strings"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// testRepo builds the Fig. 8-style monorepo: //y:y depends on //x:x, //z:z
// independent.
func testRepo() *repo.Repo {
	return repo.New(map[string]string{
		"x/BUILD": "target x srcs=x.go",
		"x/x.go":  "x v1",
		"y/BUILD": "target y srcs=y.go deps=//x:x",
		"y/y.go":  "y v1",
		"z/BUILD": "target z srcs=z.go",
		"z/z.go":  "z v1",
	})
}

func mkChange(t *testing.T, r *repo.Repo, id, path, content string) *change.Change {
	t.Helper()
	snap := r.Head().Snapshot()
	cur, ok := snap.Read(path)
	fc := repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: content}
	if ok {
		fc = repo.FileChange{Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content}
	}
	return &change.Change{
		ID:         change.ID(id),
		Patch:      repo.Patch{Changes: []repo.FileChange{fc}},
		BuildSteps: change.DefaultBuildSteps(),
		BaseCommit: r.Head().ID,
	}
}

func TestAnalyzeDelta(t *testing.T) {
	r := testRepo()
	a := New(r)
	c := mkChange(t, r, "c1", "x/x.go", "x v2")
	an, err := a.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.Delta) != 2 {
		t.Fatalf("delta = %v", an.Delta.Names())
	}
	if an.StructureChanged {
		t.Error("content edit should not change structure")
	}
	if an.Graph == nil {
		t.Error("analysis must retain the H⊕C graph for union comparisons")
	}
	// Second call hits the cache.
	if _, err := a.Analyze(c); err != nil {
		t.Fatal(err)
	}
	if a.Stats().CacheHits != 1 {
		t.Fatalf("cache hits = %d", a.Stats().CacheHits)
	}
}

func TestAnalyzeStructureChange(t *testing.T) {
	r := testRepo()
	a := New(r)
	c := mkChange(t, r, "c2", "z/BUILD", "target z srcs=z.go deps=//y:y")
	an, err := a.Analyze(c)
	if err != nil {
		t.Fatal(err)
	}
	if !an.StructureChanged || an.Graph == nil {
		t.Fatal("structure change not detected")
	}
	if a.Stats().StructureChanged != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestAnalyzeRejectsUnappliablePatch(t *testing.T) {
	r := testRepo()
	a := New(r)
	c := mkChange(t, r, "c1", "x/x.go", "x v2")
	// Land a competing edit so c1's base hash is stale.
	head := r.Head()
	p := mkChange(t, r, "other", "x/x.go", "x landed").Patch
	if _, err := r.CommitPatch(head.ID, p, "dev", "m", time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze(c); err == nil || !strings.Contains(err.Error(), "does not apply") {
		t.Fatalf("err = %v", err)
	}
	if a.Stats().PatchApplyFailures != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestConflictsCheapPath(t *testing.T) {
	r := testRepo()
	a := New(r)
	// Both touch //y:y's closure: x edit affects y transitively.
	c1 := mkChange(t, r, "c1", "x/x.go", "x v2")
	c2 := mkChange(t, r, "c2", "y/y.go", "y v2")
	conf, err := a.Conflicts(c1, c2)
	if err != nil || !conf {
		t.Fatalf("conf = %v, %v", conf, err)
	}
	// Independent pair.
	c3 := mkChange(t, r, "c3", "z/z.go", "z v2")
	conf, err = a.Conflicts(c1, c3)
	if err != nil || conf {
		t.Fatalf("independent pair conf = %v, %v", conf, err)
	}
	st := a.Stats()
	if st.CheapComparisons != 2 || st.UnionComparisons != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConflictsUnionPath(t *testing.T) {
	// The Fig. 8 trap: deltas are name-disjoint but the dependency edge added
	// by c2 makes them conflict. Requires the union-graph algorithm.
	r := testRepo()
	a := New(r)
	c1 := mkChange(t, r, "c1", "x/x.go", "x v2")
	c2 := mkChange(t, r, "c2", "z/BUILD", "target z srcs=z.go deps=//y:y")
	conf, err := a.Conflicts(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if !conf {
		t.Fatal("Fig. 8 conflict missed")
	}
	if a.Stats().UnionComparisons != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestHeadMoveInvalidatesCache(t *testing.T) {
	r := testRepo()
	a := New(r)
	c1 := mkChange(t, r, "c1", "z/z.go", "z v2")
	if _, err := a.Analyze(c1); err != nil {
		t.Fatal(err)
	}
	// Advance head with an unrelated commit.
	head := r.Head()
	p := mkChange(t, r, "land", "docsfile", "d").Patch
	if _, err := r.CommitPatch(head.ID, p, "dev", "m", time.Time{}); err != nil {
		t.Fatal(err)
	}
	an, err := a.Analyze(c1)
	if err != nil {
		t.Fatal(err)
	}
	if an.Head != r.Head().ID {
		t.Fatal("analysis not refreshed after head move")
	}
}

func TestBuildGraph(t *testing.T) {
	r := testRepo()
	a := New(r)
	c1 := mkChange(t, r, "c1", "x/x.go", "x v2") // affects x, y
	c2 := mkChange(t, r, "c2", "y/y.go", "y v2") // affects y
	c3 := mkChange(t, r, "c3", "z/z.go", "z v2") // independent
	g, failed := a.BuildGraph([]*change.Change{c1, c2, c3})
	if len(failed) != 0 {
		t.Fatalf("failed = %v", failed)
	}
	if !g.Conflict("c1", "c2") || g.Conflict("c1", "c3") || g.Conflict("c2", "c3") {
		t.Fatalf("bad edges: c1-c2=%v c1-c3=%v c2-c3=%v",
			g.Conflict("c1", "c2"), g.Conflict("c1", "c3"), g.Conflict("c2", "c3"))
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
}

func TestBuildGraphReportsFailures(t *testing.T) {
	r := testRepo()
	a := New(r)
	c1 := mkChange(t, r, "c1", "x/x.go", "x v2")
	// Land a competing edit to x so c1 no longer applies.
	head := r.Head()
	if _, err := r.CommitPatch(head.ID, mkChange(t, r, "w", "x/x.go", "landed").Patch, "d", "m", time.Time{}); err != nil {
		t.Fatal(err)
	}
	c2 := mkChange(t, r, "c2", "z/z.go", "z v2") // authored against new head
	g, failed := a.BuildGraph([]*change.Change{c1, c2})
	if len(failed) != 1 || failed["c1"] == nil {
		t.Fatalf("failed = %v", failed)
	}
	if g.Len() != 1 {
		t.Fatalf("graph len = %d", g.Len())
	}
}

func TestGraphOperations(t *testing.T) {
	g := NewGraph([]change.ID{"a", "b", "c", "d"})
	g.AddEdge("a", "c")
	g.AddEdge("b", "c")
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.Neighbors("c"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Neighbors = %v", got)
	}
	if got := g.ConflictingPredecessors("c"); len(got) != 2 {
		t.Fatalf("preds = %v", got)
	}
	if got := g.ConflictingPredecessors("a"); len(got) != 0 {
		t.Fatalf("preds of first = %v", got)
	}
	if got := g.ConflictingPredecessors("zz"); got != nil {
		t.Fatalf("preds of unknown = %v", got)
	}
	// Self edge ignored.
	g.AddEdge("a", "a")
	if g.Conflict("a", "a") {
		t.Fatal("self conflict recorded")
	}
	// Duplicate AddChange is idempotent.
	g.AddChange("a")
	if g.Len() != 4 {
		t.Fatal("duplicate AddChange grew graph")
	}
}

func TestGraphRemove(t *testing.T) {
	g := NewGraph([]change.ID{"a", "b", "c"})
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.Remove("b")
	if g.Len() != 2 || g.Conflict("a", "b") || g.Conflict("b", "c") {
		t.Fatalf("remove failed: len=%d", g.Len())
	}
	// Order preserved and reindexed.
	order := g.Order()
	if order[0] != "a" || order[1] != "c" {
		t.Fatalf("order = %v", order)
	}
	if got := g.ConflictingPredecessors("c"); len(got) != 0 {
		t.Fatalf("stale preds = %v", got)
	}
	g.Remove("nope") // no-op, no panic
}

func TestComponentsOrdering(t *testing.T) {
	g := NewGraph([]change.ID{"a", "b", "c", "d", "e"})
	g.AddEdge("d", "a") // component {a, d}
	g.AddEdge("c", "e") // component {c, e}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	// First component starts at earliest change, members sorted by order.
	if comps[0][0] != "a" || comps[0][1] != "d" {
		t.Fatalf("comp0 = %v", comps[0])
	}
	if comps[1][0] != "b" {
		t.Fatalf("comp1 = %v", comps[1])
	}
	if comps[2][0] != "c" || comps[2][1] != "e" {
		t.Fatalf("comp2 = %v", comps[2])
	}
}
