package conflict

import (
	"sort"

	"mastergreen/internal/change"
)

// Graph is the conflict graph over a set of pending changes: vertices are
// changes (in submission order) and edges join potentially conflicting pairs.
type Graph struct {
	order []change.ID
	index map[change.ID]int
	edges map[change.ID]map[change.ID]bool
}

// NewGraph creates a conflict graph with the given change order.
func NewGraph(order []change.ID) *Graph {
	g := &Graph{index: map[change.ID]int{}, edges: map[change.ID]map[change.ID]bool{}}
	for _, id := range order {
		g.AddChange(id)
	}
	return g
}

// AddChange appends a change to the submission order (idempotent).
func (g *Graph) AddChange(id change.ID) {
	if _, ok := g.index[id]; ok {
		return
	}
	g.index[id] = len(g.order)
	g.order = append(g.order, id)
	g.edges[id] = map[change.ID]bool{}
}

// AddEdge records that two changes potentially conflict.
func (g *Graph) AddEdge(a, b change.ID) {
	if a == b {
		return
	}
	g.AddChange(a)
	g.AddChange(b)
	g.edges[a][b] = true
	g.edges[b][a] = true
}

// RemoveEdge erases the conflict edge between two changes, if present. The
// incremental graph updater uses it when a rescanned dirty pair no longer
// conflicts at the new head.
func (g *Graph) RemoveEdge(a, b change.ID) {
	if es, ok := g.edges[a]; ok {
		delete(es, b)
	}
	if es, ok := g.edges[b]; ok {
		delete(es, a)
	}
}

// Remove deletes a change (e.g. after it commits or is rejected).
func (g *Graph) Remove(id change.ID) {
	if _, ok := g.index[id]; !ok {
		return
	}
	for other := range g.edges[id] {
		delete(g.edges[other], id)
	}
	delete(g.edges, id)
	delete(g.index, id)
	for i, o := range g.order {
		if o == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
	for i, o := range g.order {
		g.index[o] = i
	}
}

// Clone returns a deep copy of the graph. The analyzer maintains one graph
// incrementally across epochs and hands clones to callers, so a caller's view
// is never mutated by later updates.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		order: append([]change.ID(nil), g.order...),
		index: make(map[change.ID]int, len(g.index)),
		edges: make(map[change.ID]map[change.ID]bool, len(g.edges)),
	}
	for id, i := range g.index {
		c.index[id] = i
	}
	for id, set := range g.edges {
		es := make(map[change.ID]bool, len(set))
		for o := range set {
			es[o] = true
		}
		c.edges[id] = es
	}
	return c
}

// Len returns the number of changes in the graph.
func (g *Graph) Len() int { return len(g.order) }

// Order returns change IDs in submission order (a copy).
func (g *Graph) Order() []change.ID { return append([]change.ID(nil), g.order...) }

// Conflict reports whether two changes are joined by an edge.
func (g *Graph) Conflict(a, b change.ID) bool { return g.edges[a][b] }

// Contains reports whether the change is a vertex of the graph. The shard
// layer's per-engine views use it to detect changes the coordinator has not
// yet analyzed, which must be treated conservatively.
func (g *Graph) Contains(id change.ID) bool {
	_, ok := g.index[id]
	return ok
}

// Neighbors returns the changes conflicting with id, in submission order.
func (g *Graph) Neighbors(id change.ID) []change.ID {
	out := make([]change.ID, 0, len(g.edges[id]))
	for o := range g.edges[id] {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return g.index[out[i]] < g.index[out[j]] })
	return out
}

// ConflictingPredecessors returns the changes submitted before id that
// conflict with it — the set the speculation engine must speculate over.
func (g *Graph) ConflictingPredecessors(id change.ID) []change.ID {
	idx, ok := g.index[id]
	if !ok {
		return nil
	}
	var out []change.ID
	for _, o := range g.Neighbors(id) {
		if g.index[o] < idx {
			out = append(out, o)
		}
	}
	return out
}

// Components returns the connected components of the conflict graph, each in
// submission order, with components ordered by their earliest change.
// Changes in different components are mutually independent and can build and
// commit fully in parallel (§5).
func (g *Graph) Components() [][]change.ID {
	seen := map[change.ID]bool{}
	var comps [][]change.ID
	for _, id := range g.order {
		if seen[id] {
			continue
		}
		var comp []change.ID
		stack := []change.ID{id}
		seen[id] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for m := range g.edges[n] {
				if !seen[m] {
					seen[m] = true
					//lint:ignore maporder visit order is immaterial: comp is sorted by submission index below
					stack = append(stack, m)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return g.index[comp[i]] < g.index[comp[j]] })
		comps = append(comps, comp)
	}
	return comps
}
