package conflict

import (
	"reflect"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
)

// commit lands a patch built by mkChange and returns the new head.
func commit(t *testing.T, r *repo.Repo, path, content string) *repo.Commit {
	t.Helper()
	head := r.Head()
	c, err := r.CommitPatch(head.ID, mkChange(t, r, "land", path, content).Patch, "dev", "m", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSelectiveInvalidationRehomesDisjoint(t *testing.T) {
	r := testRepo()
	a := New(r)
	cy := mkChange(t, r, "cy", "y/y.go", "y v2") // delta {y}
	cz := mkChange(t, r, "cz", "z/z.go", "z v2") // delta {z}
	for _, c := range []*change.Change{cy, cz} {
		if _, err := a.Analyze(c); err != nil {
			t.Fatal(err)
		}
	}
	// Land an edit to x: δ = {x, y} (y depends on x), so cy intersects and
	// must be dropped while cz survives and is re-homed.
	commit(t, r, "x/x.go", "x v2 landed")
	anz, err := a.Analyze(cz)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.ReusedAnalyses != 1 || st.SelectiveInvalidations != 1 {
		t.Fatalf("reused=%d invalidated=%d", st.ReusedAnalyses, st.SelectiveInvalidations)
	}
	if st.CacheHits != 1 {
		t.Fatalf("re-homed analysis should be a cache hit, stats=%+v", st)
	}
	if anz.Head != r.Head().ID {
		t.Fatal("survivor not re-homed to new head")
	}
	if st.AnalyzedChanges != 2 {
		t.Fatalf("survivor was recomputed: analyzed=%d", st.AnalyzedChanges)
	}
	// The re-homed delta must equal what a cold analyzer computes at the
	// new head — names and hashes.
	fresh, err := New(r).Analyze(cz)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(anz.Delta, fresh.Delta) {
		t.Fatalf("re-homed delta %v != fresh delta %v", anz.Delta, fresh.Delta)
	}
	// cy recomputes from scratch at the new head.
	if _, err := a.Analyze(cy); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().AnalyzedChanges; got != 3 {
		t.Fatalf("analyzed=%d, want 3", got)
	}
}

func TestStructureChangingHeadMoveInvalidatesAll(t *testing.T) {
	r := testRepo()
	a := New(r)
	cz := mkChange(t, r, "cz", "z/z.go", "z v2")
	if _, err := a.Analyze(cz); err != nil {
		t.Fatal(err)
	}
	// Landing a BUILD edit changes graph structure: nothing may survive,
	// even target-disjoint content analyses.
	commit(t, r, "y/BUILD", "target y srcs=y.go")
	if _, err := a.Analyze(cz); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.ReusedAnalyses != 0 || st.SelectiveInvalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPathOverlapInvalidatesUnownedFiles(t *testing.T) {
	// A pending change creating a file no target owns has an empty delta;
	// disjointness alone would keep it across any head move. If the head
	// movement lands that same file, the patch no longer applies — the path
	// condition must catch it.
	r := testRepo()
	a := New(r)
	cn := mkChange(t, r, "cn", "notes.txt", "mine")
	if _, err := a.Analyze(cn); err != nil {
		t.Fatal(err)
	}
	commit(t, r, "notes.txt", "theirs")
	if _, err := a.Analyze(cn); err == nil {
		t.Fatal("stale create patch must fail after the path landed")
	}
	if st := a.Stats(); st.ReusedAnalyses != 0 || st.SelectiveInvalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPairCacheSurvivesRehoming(t *testing.T) {
	r := testRepo()
	a := New(r)
	cy := mkChange(t, r, "cy", "y/y.go", "y v2")
	cz := mkChange(t, r, "cz", "z/z.go", "z v2")
	conf, err := a.Conflicts(cy, cz)
	if err != nil || conf {
		t.Fatalf("conf = %v, %v", conf, err)
	}
	// Land an unowned file: empty head delta, both analyses re-home with
	// their identities intact, so the memoized verdict still applies.
	commit(t, r, "docsfile", "d")
	conf, err = a.Conflicts(cy, cz)
	if err != nil || conf {
		t.Fatalf("conf after re-home = %v, %v", conf, err)
	}
	st := a.Stats()
	if st.PairCacheHits != 1 {
		t.Fatalf("pair cache hits = %d, stats=%+v", st.PairCacheHits, st)
	}
	if st.CheapComparisons != 1 {
		t.Fatalf("verdict recomputed: cheap=%d", st.CheapComparisons)
	}
	if st.ReusedAnalyses != 2 {
		t.Fatalf("reused = %d", st.ReusedAnalyses)
	}
}

func TestBuildGraphIncrementalReuse(t *testing.T) {
	r := testRepo()
	a := New(r)
	c1 := mkChange(t, r, "c1", "x/x.go", "x v2")
	c2 := mkChange(t, r, "c2", "y/y.go", "y v2")
	c3 := mkChange(t, r, "c3", "z/z.go", "z v2")
	pending := []*change.Change{c1, c2, c3}
	g, failed := a.BuildGraph(pending)
	if len(failed) != 0 || !g.Conflict("c1", "c2") || g.Conflict("c1", "c3") {
		t.Fatalf("first build wrong: failed=%v", failed)
	}
	st := a.Stats()
	if st.GraphRebuilds != 1 || st.PairsRescanned != 3 {
		t.Fatalf("first build stats = %+v", st)
	}
	// Same pending set, no head move: every pair carries over untouched.
	g2, _ := a.BuildGraph(pending)
	st = a.Stats()
	if st.GraphUpdates != 1 || st.PairsReused != 3 || st.PairsRescanned != 3 {
		t.Fatalf("second build stats = %+v", st)
	}
	if !g2.Conflict("c1", "c2") || g2.Conflict("c2", "c3") {
		t.Fatal("second build edges wrong")
	}
	// Dropping c1 from pending removes its vertex and its cached state.
	g3, _ := a.BuildGraph([]*change.Change{c2, c3})
	if g3.Len() != 2 || g3.Conflict("c2", "c3") {
		t.Fatalf("third build wrong: len=%d", g3.Len())
	}
	// Returned graphs are clones: mutating one must not leak into the memo.
	g3.AddEdge("c2", "c3")
	g4, _ := a.BuildGraph([]*change.Change{c2, c3})
	if g4.Conflict("c2", "c3") {
		t.Fatal("caller mutation leaked into the memoized graph")
	}
}

func TestUpdateGraphConservativeEdgeForStaleAnalysis(t *testing.T) {
	// White-box: a pair whose analysis is still stale after the bounded
	// retry gets a conservative edge; once re-analyzed at the current head
	// the rescan removes it.
	r := testRepo()
	a := New(r)
	c1 := mkChange(t, r, "c1", "y/y.go", "y v2")
	c2 := mkChange(t, r, "c2", "z/z.go", "z v2")
	an1, err := a.Analyze(c1)
	if err != nil {
		t.Fatal(err)
	}
	an2, err := a.Analyze(c2)
	if err != nil {
		t.Fatal(err)
	}
	stale := *an2
	stale.Head = "elsewhere"
	a.mu.Lock()
	g := a.updateGraphLocked([]*Analysis{an1, &stale})
	a.mu.Unlock()
	if !g.Conflict("c1", "c2") {
		t.Fatal("stale pair must get a conservative edge")
	}
	if st := a.Stats(); st.ConservativeEdges != 1 {
		t.Fatalf("stats = %+v", st)
	}
	a.mu.Lock()
	g = a.updateGraphLocked([]*Analysis{an1, an2})
	a.mu.Unlock()
	if g.Conflict("c1", "c2") {
		t.Fatal("rescan at current head must remove the conservative edge")
	}
}

func TestAnalyzerLifecycleEvents(t *testing.T) {
	r := testRepo()
	a := New(r)
	bus := events.NewBus(64)
	a.SetEvents(bus)
	cz := mkChange(t, r, "cz", "z/z.go", "z v2")
	cy := mkChange(t, r, "cy", "y/y.go", "y v2")
	for _, c := range []*change.Change{cz, cy} {
		if _, err := a.Analyze(c); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, r, "x/x.go", "x v2") // drops cy (δ includes y), re-homes cz
	if _, err := a.Analyze(cz); err != nil {
		t.Fatal(err)
	}
	counts := map[events.Type]int{}
	for _, ev := range bus.Since(0) {
		counts[ev.Type]++
	}
	if counts[events.TypeAnalysisStarted] != 2 {
		t.Fatalf("started = %d", counts[events.TypeAnalysisStarted])
	}
	if counts[events.TypeAnalysisReused] != 1 || counts[events.TypeAnalysisInvalidated] != 1 {
		t.Fatalf("events = %v", counts)
	}
}

func TestLegacyInvalidationWipes(t *testing.T) {
	r := testRepo()
	a := New(r)
	a.LegacyInvalidation = true
	cz := mkChange(t, r, "cz", "z/z.go", "z v2")
	if _, err := a.Analyze(cz); err != nil {
		t.Fatal(err)
	}
	commit(t, r, "docsfile", "d") // unrelated, but legacy mode wipes anyway
	if _, err := a.Analyze(cz); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.ReusedAnalyses != 0 || st.AnalyzedChanges != 2 {
		t.Fatalf("stats = %+v", st)
	}
}
