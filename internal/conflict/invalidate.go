package conflict

import (
	"sort"

	"mastergreen/internal/buildgraph"
	"mastergreen/internal/change"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
)

// invalidateLocked reconciles the per-change analysis cache with a head
// movement (a.head/a.headSnap/a.headGraph → head/snap/g). A cached analysis
// survives — re-homed to the new head without recomputation — iff
//
//  1. neither the head movement nor the analysis changed build-graph
//     structure (same targets, same edges), and
//  2. the analysis's delta is target-disjoint from the head movement's delta
//     (δ_{H⊕C} ∩ δ_{H⊕D} = ∅ for the landed movement D), and
//  3. the change's patch touches none of the files the movement changed.
//
// (1)+(2) guarantee δ_{H'⊕C} = δ_{H⊕C} exactly — names and hashes: with the
// structure fixed, a target outside both deltas hashes identically at H and
// H'; a target of δ_{H⊕C} with a dependency in δ_{H⊕D} would itself appear
// in δ_{H⊕D} (Algorithm 1 hashes are recursive), contradicting disjointness.
// (3) guarantees the patch still applies, since base-hash checks only read
// the files the patch touches. The survivor's stored Graph keeps stale
// hashes outside its delta, but its structure equals the new head graph's —
// the only property the union comparison consults (UnionConflictDeltas).
//
// Pairwise verdicts are keyed by analysis identity, which survives
// re-homing, so verdicts between two survivors stay cached; verdicts
// involving a dropped analysis are swept. Callers hold a.mu.
func (a *Analyzer) invalidateLocked(head repo.CommitID, snap repo.Snapshot, g *buildgraph.Graph) {
	headDelta := buildgraph.Diff(a.headGraph, g)
	sameStructure := buildgraph.SameStructure(a.headGraph, g)
	changed := a.headSnap.ChangedPaths(snap)

	ids := make([]change.ID, 0, len(a.analyses))
	for id := range a.analyses {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		an := a.analyses[id]
		keep := sameStructure &&
			!an.StructureChanged &&
			an.Delta.Disjoint(headDelta) &&
			!touchesAny(an.paths, changed)
		if keep {
			rehomed := *an
			rehomed.Head = head
			a.analyses[id] = &rehomed
			a.stats.ReusedAnalyses++
			a.publish(events.TypeAnalysisReused, id, "re-homed to head "+string(head))
		} else {
			delete(a.analyses, id)
			a.stats.SelectiveInvalidations++
			a.publish(events.TypeAnalysisInvalidated, id, "intersects head movement to "+string(head))
		}
	}
	a.sweepPairsLocked()
}

// sweepPairsLocked drops memoized pair verdicts that reference an analysis
// identity no longer present in the cache. Callers hold a.mu.
func (a *Analyzer) sweepPairsLocked() {
	live := make(map[uint64]bool, len(a.analyses))
	for _, an := range a.analyses {
		live[an.id] = true
	}
	for k := range a.pairs {
		if !live[k.lo] || !live[k.hi] {
			delete(a.pairs, k)
		}
	}
}

// touchesAny reports whether any of paths (sorted) is in the set.
func touchesAny(set map[string]bool, paths []string) bool {
	for _, p := range paths {
		if set[p] {
			return true
		}
	}
	return false
}
