package conflict

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// TestConcurrentAnalysisUnderHeadChurn hammers Analyze/Conflicts/BuildGraph
// from many goroutines while a committer advances HEAD, asserting that no
// stale-head verdict ever escapes: every Conflicts answer matches the
// head-invariant ground truth (or reports errHeadMoved for the caller to
// retry), BuildGraph never loses a true conflict edge mid-churn, and once
// the churn stops the graph and every cached delta agree exactly with a cold
// analyzer at the final head.
func TestConcurrentAnalysisUnderHeadChurn(t *testing.T) {
	const apps = 8
	const pairsPerApp = 2 // changes per app file: each app yields one conflicting pair
	const commits = 12

	files := map[string]string{
		"lib/BUILD":  "target lib srcs=lib.go",
		"lib/lib.go": "lib v0",
	}
	for i := 0; i < apps; i++ {
		deps := ""
		if i < apps/2 {
			deps = " deps=//lib:lib" // apps 0..3 are invalidated by lib commits
		}
		files[fmt.Sprintf("app%d/BUILD", i)] = fmt.Sprintf("target app%d srcs=main.go%s", i, deps)
		files[fmt.Sprintf("app%d/main.go", i)] = fmt.Sprintf("app %d v0", i)
	}
	r := repo.New(files)
	a := New(r)

	// Pending changes: (2k, 2k+1) edit the same app file, so exactly those
	// pairs conflict — regardless of where HEAD is, because commits only
	// touch lib/lib.go and app deltas stay {appK}.
	var pending []*change.Change
	for i := 0; i < apps; i++ {
		path := fmt.Sprintf("app%d/main.go", i)
		base := repo.HashContent(fmt.Sprintf("app %d v0", i))
		for v := 0; v < pairsPerApp; v++ {
			pending = append(pending, &change.Change{
				ID: change.ID(fmt.Sprintf("c%02d", i*pairsPerApp+v)),
				Patch: repo.Patch{Changes: []repo.FileChange{{
					Path: path, Op: repo.OpModify, BaseHash: base,
					NewContent: fmt.Sprintf("app %d edit %d", i, v),
				}}},
			})
		}
	}
	expectConflict := func(x, y int) bool { return x/pairsPerApp == y/pairsPerApp }

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	// Committer: advance HEAD by editing lib/lib.go, re-reading the current
	// content for each base hash.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= commits; k++ {
			head := r.Head()
			cur, _ := head.Snapshot().Read("lib/lib.go")
			p := repo.Patch{Changes: []repo.FileChange{{
				Path: "lib/lib.go", Op: repo.OpModify,
				BaseHash: repo.HashContent(cur), NewContent: fmt.Sprintf("lib v%d", k),
			}}}
			if _, err := r.CommitPatch(head.ID, p, "dev", "lib", time.Time{}); err != nil {
				report(fmt.Errorf("commit %d: %w", k, err))
				return
			}
		}
	}()

	// Conflict workers: every verdict must match ground truth or report a
	// head move.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 40; iter++ {
				for x := 0; x < len(pending); x++ {
					y := (x + 1 + (w+iter)%(len(pending)-1)) % len(pending)
					conf, err := a.Conflicts(pending[x], pending[y])
					if err != nil {
						if !errors.Is(err, errHeadMoved) {
							report(fmt.Errorf("Conflicts(%s,%s): %w", pending[x].ID, pending[y].ID, err))
						}
						continue
					}
					if conf != expectConflict(x, y) {
						report(fmt.Errorf("stale verdict: Conflicts(%s,%s)=%v, want %v",
							pending[x].ID, pending[y].ID, conf, expectConflict(x, y)))
					}
				}
			}
		}(w)
	}

	// BuildGraph workers: mid-churn the graph may carry conservative extra
	// edges, but a true conflict must never be missing.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				g, failed := a.BuildGraph(pending)
				if len(failed) != 0 {
					report(fmt.Errorf("BuildGraph failed set: %v", failed))
					return
				}
				for x := 0; x < len(pending); x++ {
					for y := x + 1; y < len(pending); y++ {
						if expectConflict(x, y) && !g.Conflict(pending[x].ID, pending[y].ID) {
							report(fmt.Errorf("lost conflict edge %s-%s", pending[x].ID, pending[y].ID))
						}
					}
				}
			}
		}()
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Quiesced: the graph must now match the ground truth exactly (any
	// conservative edges rescanned away) and every cached delta must equal a
	// cold analyzer's at the final head.
	g, failed := a.BuildGraph(pending)
	if len(failed) != 0 {
		t.Fatalf("final BuildGraph failed: %v", failed)
	}
	for x := 0; x < len(pending); x++ {
		for y := x + 1; y < len(pending); y++ {
			if got, want := g.Conflict(pending[x].ID, pending[y].ID), expectConflict(x, y); got != want {
				t.Errorf("final edge %s-%s = %v, want %v", pending[x].ID, pending[y].ID, got, want)
			}
		}
	}
	cold := New(r)
	for _, c := range pending {
		warm, err := a.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := cold.Analyze(c)
		if err != nil {
			t.Fatal(err)
		}
		if warm.Head != r.Head().ID {
			t.Errorf("%s: cached analysis at head %s, repo head %s", c.ID, warm.Head, r.Head().ID)
		}
		if !reflect.DeepEqual(warm.Delta, want.Delta) {
			t.Errorf("%s: cached delta %v != cold delta %v", c.ID, warm.Delta, want.Delta)
		}
	}
	if r.Len() != commits+1 {
		t.Fatalf("committer landed %d commits, want %d", r.Len()-1, commits)
	}
}
