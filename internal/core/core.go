// Package core is the public facade of SubmitQueue: the change-management
// service of §3 that guarantees an always-green mainline by providing the
// illusion of a single queue where every change performs all its build steps
// and is merged into the mainline's most recent HEAD only if they all
// succeed.
//
// A Service owns the monorepo, the distributed pending queue, the conflict
// analyzer, the speculation engine (with a pluggable probability model), the
// planner engine, and the build controller. Drive it either synchronously
// (Submit then ProcessAll, as the examples do) or as a daemon (Start/Stop
// with a background epoch loop, as cmd/sqd does).
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mastergreen/internal/arbiter"
	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/events"
	"mastergreen/internal/planner"
	"mastergreen/internal/predict"
	"mastergreen/internal/queue"
	"mastergreen/internal/reliability"
	"mastergreen/internal/repo"
	"mastergreen/internal/sched"
	"mastergreen/internal/shard"
	"mastergreen/internal/speculation"
	"mastergreen/internal/store"
)

// Config tunes a Service.
type Config struct {
	// Workers is the number of builds that may run concurrently (<=0: 4).
	Workers int
	// QueueShards is the shard count of the pending queue (<=0: 1).
	QueueShards int
	// Predictor supplies P_succ/P_conf. Nil defaults to a mildly optimistic
	// static predictor; production uses predict.Learned.
	Predictor predict.Predictor
	// Runner executes build steps. Nil defaults to always-succeed, which is
	// useful when the repository's own structure (merge conflicts, target
	// graph errors) is the only failure source under study.
	Runner buildsys.StepRunner
	// Epoch is the planner period for the background loop (<=0: 250ms).
	Epoch time.Duration
	// MaxSpecDepth caps speculation branching per change.
	MaxSpecDepth int
	// PreemptionGrace: builds running at least this long are not aborted.
	PreemptionGrace time.Duration
	// TestSelectionRadius, if > 0, restricts test steps to targets within
	// this many reverse-dependency hops of directly modified targets (§9
	// test selection; compilation still covers every affected target).
	TestSelectionRadius int
	// SkipThreshold, if > 0, enables predictor-gated build skipping
	// (DESIGN.md §4j): speculation branch points whose in-context commit
	// probability is at least this value do not plan the reject-branch hedge.
	// The always-run decisive build preserves greenness; a wrong skip costs a
	// restart, never a red mainline.
	SkipThreshold float64
	// Now is the clock; injectable for tests.
	Now func() time.Time
	// Events, when non-nil, receives lifecycle events for observability
	// (submissions, build starts/finishes/aborts, commits, rejections).
	Events *events.Bus
	// LegacyPlanner disables the planner's incremental-epoch machinery
	// (shared-prefix preparation trie and plan memoization), restoring the
	// per-build full-merge path. For ablation and benchmarking.
	LegacyPlanner bool
	// Reliability tunes the flaky-failure handling layer (retries, flake
	// detection, quarantine, verification re-runs; DESIGN.md §4g). The zero
	// value enables the default policy; set Reliability.LegacyNoRetry to
	// restore the fail-fast baseline.
	Reliability reliability.Config
	// FaultInjector, when non-nil, wraps Runner with deterministic fault
	// injection (tests and chaos experiments); its inner runner is set to
	// Config.Runner and its counters surface through ReliabilityStats.
	FaultInjector *reliability.Injector
	// Shards, when >= 1, enables the sharded multi-planner scale-out
	// (DESIGN.md §4h): that many independent planner engines over
	// connected-component partitions of the conflict graph, with a serialized
	// commit arbiter owning head advancement. <= 0 keeps the classic
	// single-planner engine.
	Shards int
	// SingleShard forces the classic single-planner engine even when Shards
	// is set — the preserved legacy path, bit-for-bit identical to the
	// service before the shard layer existed.
	SingleShard bool
	// Sched, when non-nil, enables the priority-lane scheduling layer
	// (DESIGN.md §4l): per-class value weights, deadline aging, hotfix
	// preemption, and per-class turnaround tracking. Nil keeps the
	// unprioritized behavior bit-for-bit.
	Sched *sched.Policy
}

// Status reports a change's current position in the pipeline.
type Status struct {
	ID     change.ID
	State  change.State
	Reason string
	Commit repo.CommitID
}

// Service is a running SubmitQueue instance.
type Service struct {
	repo     *repo.Repo
	queue    *queue.Queue
	analyzer *conflict.Analyzer
	planner  *planner.Planner // single-planner mode; nil when sharded
	runtime  *shard.Runtime   // sharded mode; nil when single-planner
	arb      *arbiter.Arbiter // sharded mode; nil when single-planner
	ctrl     *buildsys.Controller
	rel      *reliability.Reliability
	cfg      Config

	mu       sync.Mutex
	statuses map[change.ID]Status
	cancel   context.CancelFunc
	loopDone chan struct{}
	// outCursor is how many planner outcomes have been folded into statuses;
	// syncOutcomes reads only the delta past it, so a State() poll with no new
	// decisions costs a counter compare instead of a full outcome-slice copy.
	outCursor int

	// Durability (optional): journal records submissions and outcomes;
	// recorded tracks which outcomes have already been appended.
	journal  *store.Journal
	recorded map[change.ID]bool

	// tracker accumulates per-class queue depths and turnaround times for
	// the status endpoint and dashboard (nil when Config.Sched is nil).
	tracker *sched.Tracker
}

// NewService creates a SubmitQueue over the repository.
func NewService(r *repo.Repo, cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueShards <= 0 {
		cfg.QueueShards = 1
	}
	if cfg.Predictor == nil {
		cfg.Predictor = predict.Static{Success: 0.85, Conflict: 0.05}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	q := queue.New(cfg.QueueShards)
	an := conflict.New(r)
	if cfg.Events != nil {
		an.SetEvents(cfg.Events)
	}
	spec := speculation.New(cfg.Predictor)
	relCfg := cfg.Reliability
	if relCfg.Events == nil {
		relCfg.Events = cfg.Events
	}
	rel := reliability.New(relCfg)
	runner := cfg.Runner
	if cfg.FaultInjector != nil {
		cfg.FaultInjector.SetInner(runner)
		runner = cfg.FaultInjector
		rel.SetInjector(cfg.FaultInjector)
	}
	runner = rel.Wrap(runner)
	ctrl := buildsys.NewController(cfg.Workers, runner)
	pcfg := planner.Config{
		Budget:              cfg.Workers,
		MaxSpecDepth:        cfg.MaxSpecDepth,
		PreemptionGrace:     cfg.PreemptionGrace,
		Now:                 cfg.Now,
		Events:              cfg.Events,
		TestSelectionRadius: cfg.TestSelectionRadius,
		SkipThreshold:       cfg.SkipThreshold,
		LegacyPreparation:   cfg.LegacyPlanner,
		LegacyReplan:        cfg.LegacyPlanner,
		Reliability:         rel,
		Sched:               cfg.Sched,
	}
	s := &Service{
		repo:     r,
		queue:    q,
		analyzer: an,
		ctrl:     ctrl,
		rel:      rel,
		cfg:      cfg,
		statuses: map[change.ID]Status{},
		recorded: map[change.ID]bool{},
	}
	if cfg.Sched != nil {
		s.tracker = sched.NewTracker()
	}
	if cfg.Shards >= 1 && !cfg.SingleShard {
		s.arb = arbiter.New(r, arbiter.Config{Analyzer: an, Events: cfg.Events})
		s.runtime = shard.New(r, q, an, s.arb, ctrl, shard.Config{
			Shards:  cfg.Shards,
			Planner: pcfg,
			Spec:    func() *speculation.Engine { return speculation.New(cfg.Predictor) },
			Events:  cfg.Events,
		})
	} else {
		s.planner = planner.New(r, q, an, spec, ctrl, pcfg)
	}
	return s
}

// Repo exposes the managed repository (read-only use expected).
func (s *Service) Repo() *repo.Repo { return s.repo }

// Submit enqueues a change (step 5 of the development life cycle, Fig. 3).
func (s *Service) Submit(c *change.Change) error {
	return s.submitLocked(c, true)
}

// submitLocked enqueues a change, journaling it when journalIt is set
// (recovery re-submissions skip journaling: they are already recorded).
func (s *Service) submitLocked(c *change.Change, journalIt bool) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.SubmittedAt.IsZero() {
		c.SubmittedAt = s.cfg.Now()
	}
	if c.BaseCommit == "" {
		c.BaseCommit = s.repo.Head().ID
	}
	c.State = change.StatePending
	if err := s.queue.Enqueue(c); err != nil {
		return err
	}
	s.mu.Lock()
	s.statuses[c.ID] = Status{ID: c.ID, State: change.StatePending}
	j := s.journal
	s.mu.Unlock()
	if s.tracker != nil {
		s.tracker.NoteSubmit(c, c.SubmittedAt)
	}
	if s.cfg.Events != nil {
		s.cfg.Events.Publish(events.Event{Type: events.TypeSubmitted, Change: c.ID, Detail: c.Description})
	}
	if journalIt && j != nil {
		if err := j.AppendSubmit(c); err != nil {
			// Durability failure: surface it; the change stays enqueued so
			// in-memory operation continues.
			return fmt.Errorf("core: change %s enqueued but journaling failed: %w", c.ID, err)
		}
	}
	return nil
}

// State returns the change's status. Unknown IDs return an error.
func (s *Service) State(id change.ID) (Status, error) {
	s.syncOutcomes()
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.statuses[id]
	if !ok {
		return Status{}, fmt.Errorf("core: unknown change %s", id)
	}
	return st, nil
}

// syncOutcomes folds planner outcomes into the status map and journals
// newly-final dispositions. The first decision for a change wins: in sharded
// mode a change moved between engines mid-decision can surface a bounced
// duplicate, and a final status must never flip. A cursor tracks how far the
// outcome log has been folded: the steady-state call (a status poll with no
// new decisions) is a counter compare with zero allocations, and concurrent
// callers at worst re-fold a delta — harmless, since folding is idempotent
// and journaling is deduplicated by s.recorded.
func (s *Service) syncOutcomes() {
	n := s.plannerOutcomeCount()
	s.mu.Lock()
	cur := s.outCursor
	s.mu.Unlock()
	if n <= cur {
		return
	}
	outs := s.plannerOutcomesSince(cur)
	var toJournal []store.OutcomeRecord
	s.mu.Lock()
	if end := cur + len(outs); end > s.outCursor {
		s.outCursor = end
	}
	for _, o := range outs {
		st, ok := s.statuses[o.ID]
		if !ok {
			st = Status{ID: o.ID}
		}
		if st.State == change.StateCommitted || st.State == change.StateRejected {
			continue // already final; first decision wins
		}
		st.State = o.State
		st.Reason = o.Reason
		st.Commit = o.Commit
		s.statuses[o.ID] = st
		if s.tracker != nil && (o.State == change.StateCommitted || o.State == change.StateRejected) {
			s.tracker.NoteDecision(o.ID, o.State == change.StateCommitted, o.At)
		}
		if s.journal != nil && !s.recorded[o.ID] {
			s.recorded[o.ID] = true
			toJournal = append(toJournal, store.OutcomeRecord{
				ID: o.ID, State: o.State.String(), Reason: o.Reason,
				Commit: o.Commit, At: o.At,
			})
		}
	}
	j := s.journal
	s.mu.Unlock()
	for _, rec := range toJournal {
		_ = j.AppendOutcome(rec) // best effort; replay tolerates re-decisions
	}
}

// plannerOutcomes returns the dispositions from whichever engine layer runs.
func (s *Service) plannerOutcomes() []planner.Outcome {
	if s.runtime != nil {
		return s.runtime.Outcomes()
	}
	return s.planner.Outcomes()
}

// plannerOutcomeCount returns the outcome count from whichever engine layer
// runs, without copying the log.
func (s *Service) plannerOutcomeCount() int {
	if s.runtime != nil {
		return s.runtime.OutcomeCount()
	}
	return s.planner.OutcomeCount()
}

// plannerOutcomesSince returns the dispositions recorded after the first n.
func (s *Service) plannerOutcomesSince(n int) []planner.Outcome {
	if s.runtime != nil {
		return s.runtime.OutcomesSince(n)
	}
	return s.planner.OutcomesSince(n)
}

// Tick runs one planner epoch (for callers managing their own loop).
func (s *Service) Tick(ctx context.Context) error {
	var err error
	if s.runtime != nil {
		_, err = s.runtime.Tick(ctx)
	} else {
		_, err = s.planner.Tick(ctx)
	}
	s.syncOutcomes()
	return err
}

// ProcessAll drives the planner until every submitted change is committed or
// rejected (or the context is cancelled).
func (s *Service) ProcessAll(ctx context.Context) error {
	var err error
	if s.runtime != nil {
		err = s.runtime.Quiesce(ctx)
	} else {
		err = s.planner.Quiesce(ctx)
	}
	s.syncOutcomes()
	return err
}

// Outcomes returns all final dispositions so far, in decision order.
func (s *Service) Outcomes() []planner.Outcome { return s.plannerOutcomes() }

// OutcomeCount returns the number of final dispositions so far, without
// copying the outcome log (admission drain-rate sampling polls this).
func (s *Service) OutcomeCount() int { return s.plannerOutcomeCount() }

// PendingCount returns the number of changes still undecided.
func (s *Service) PendingCount() int {
	if s.runtime != nil {
		return s.runtime.PendingCount()
	}
	return s.queue.Len()
}

// BuildStats exposes the build controller's work counters.
func (s *Service) BuildStats() buildsys.Stats { return s.ctrl.Stats() }

// AnalyzerStats exposes the conflict analyzer's work counters.
func (s *Service) AnalyzerStats() conflict.Stats { return s.analyzer.Stats() }

// PlannerStats exposes the planner's incremental-epoch work counters
// (aggregated across engines in sharded mode).
func (s *Service) PlannerStats() planner.Stats {
	if s.runtime != nil {
		return s.runtime.PlannerStats()
	}
	return s.planner.Stats()
}

// ShardStats exposes the shard coordinator's counters (zero value when the
// service runs the classic single-planner engine).
func (s *Service) ShardStats() shard.Stats {
	if s.runtime == nil {
		return shard.Stats{}
	}
	return s.runtime.Stats()
}

// ArbiterStats exposes the commit arbiter's counters (zero value when the
// service runs the classic single-planner engine).
func (s *Service) ArbiterStats() arbiter.Stats {
	if s.arb == nil {
		return arbiter.Stats{}
	}
	return s.arb.Stats()
}

// Sharded reports whether the sharded multi-planner runtime is active.
func (s *Service) Sharded() bool { return s.runtime != nil }

// SchedStats exposes per-class queue depths and turnaround statistics from
// the priority-lane layer (zero value when Config.Sched is nil).
func (s *Service) SchedStats() sched.Stats {
	if s.tracker == nil {
		return sched.Stats{}
	}
	return s.tracker.Snapshot()
}

// ReliabilityStats exposes the flaky-failure layer's work counters.
func (s *Service) ReliabilityStats() reliability.Stats { return s.rel.Stats() }

// Reliability exposes the reliability layer (quarantine operations, tests).
func (s *Service) Reliability() *reliability.Reliability { return s.rel }

// Start launches the background epoch loop. Call Stop to halt it.
func (s *Service) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		return // already running
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	done := make(chan struct{})
	s.loopDone = done
	go func() {
		defer close(done)
		if s.runtime != nil {
			_ = s.runtime.Run(ctx, s.cfg.Epoch)
		} else {
			_ = s.planner.Run(ctx, s.cfg.Epoch)
		}
	}()
}

// Stop halts the background loop started by Start.
func (s *Service) Stop() {
	s.mu.Lock()
	cancel, done := s.cancel, s.loopDone
	s.cancel = nil
	s.loopDone = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	s.syncOutcomes()
}
