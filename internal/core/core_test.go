package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

func newRepo() *repo.Repo {
	return repo.New(map[string]string{
		"app/BUILD":     "target app srcs=main.go deps=//lib:lib",
		"app/main.go":   "app v1",
		"lib/BUILD":     "target lib srcs=lib.go",
		"lib/lib.go":    "lib v1",
		"doc/BUILD":     "target doc srcs=readme.md",
		"doc/readme.md": "doc v1",
	})
}

func mkChange(r *repo.Repo, id, path, content string) *change.Change {
	snap := r.Head().Snapshot()
	cur, ok := snap.Read(path)
	fc := repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: content}
	if ok {
		fc = repo.FileChange{Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content}
	}
	return &change.Change{
		ID:          change.ID(id),
		Author:      change.Developer{Name: "dev", Team: "t", Level: 3},
		Description: "test " + id,
		Patch:       repo.Patch{Changes: []repo.FileChange{fc}},
		BuildSteps:  []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
	}
}

func TestSubmitAndProcess(t *testing.T) {
	r := newRepo()
	s := NewService(r, Config{Workers: 4})
	c := mkChange(r, "c1", "lib/lib.go", "lib v2")
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	st, err := s.State("c1")
	if err != nil || st.State != change.StatePending {
		t.Fatalf("state = %+v, %v", st, err)
	}
	if s.PendingCount() != 1 {
		t.Fatalf("pending = %d", s.PendingCount())
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err = s.State("c1")
	if err != nil || st.State != change.StateCommitted || st.Commit == "" {
		t.Fatalf("state = %+v, %v", st, err)
	}
	if got, _ := r.Head().Snapshot().Read("lib/lib.go"); got != "lib v2" {
		t.Fatalf("content = %q", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := NewService(newRepo(), Config{})
	if err := s.Submit(&change.Change{ID: "bad"}); err == nil {
		t.Fatal("invalid change accepted")
	}
	// Duplicate submit fails.
	r := s.Repo()
	c := mkChange(r, "c1", "lib/lib.go", "v2")
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	dup := mkChange(r, "c1", "doc/readme.md", "v2")
	if err := s.Submit(dup); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestUnknownState(t *testing.T) {
	s := NewService(newRepo(), Config{})
	if _, err := s.State("ghost"); err == nil {
		t.Fatal("expected error for unknown change")
	}
}

func TestSubmitFillsDefaults(t *testing.T) {
	r := newRepo()
	now := time.Unix(12345, 0)
	s := NewService(r, Config{Now: func() time.Time { return now }})
	c := mkChange(r, "c1", "lib/lib.go", "v2")
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	if c.SubmittedAt != now {
		t.Fatalf("SubmittedAt = %v", c.SubmittedAt)
	}
	if c.BaseCommit != r.Head().ID {
		t.Fatalf("BaseCommit = %v", c.BaseCommit)
	}
}

func TestRejectionSurfacesReason(t *testing.T) {
	r := newRepo()
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		if c, _ := snap.Read("lib/lib.go"); strings.Contains(c, "bug") {
			return errors.New("unit test failed: nil pointer")
		}
		return nil
	})
	s := NewService(r, Config{Workers: 2, Runner: runner})
	if err := s.Submit(mkChange(r, "c1", "lib/lib.go", "bug here")); err != nil {
		t.Fatal(err)
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, _ := s.State("c1")
	if st.State != change.StateRejected || !strings.Contains(st.Reason, "nil pointer") {
		t.Fatalf("status = %+v", st)
	}
}

func TestManyChangesAllDisposed(t *testing.T) {
	r := newRepo()
	s := NewService(r, Config{Workers: 8})
	n := 12
	for i := 0; i < n; i++ {
		// Alternate between three independent files to exercise parallel
		// commits; same-file changes merge-conflict and get rejected.
		paths := []string{"lib/lib.go", "doc/readme.md", "app/main.go"}
		c := mkChange(r, fmt.Sprintf("c%02d", i), paths[i%3], fmt.Sprintf("v%d", i))
		if err := s.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.ProcessAll(ctx); err != nil {
		t.Fatal(err)
	}
	outs := s.Outcomes()
	if len(outs) != n {
		t.Fatalf("outcomes = %d, want %d", len(outs), n)
	}
	committed := 0
	for _, o := range outs {
		if o.State == change.StateCommitted {
			committed++
		}
	}
	// First change per file commits; later same-file ones conflict at merge
	// level and are rejected (they were authored against the original base).
	if committed != 3 {
		t.Fatalf("committed = %d, want 3", committed)
	}
	if s.PendingCount() != 0 {
		t.Fatalf("pending = %d", s.PendingCount())
	}
}

func TestBackgroundLoop(t *testing.T) {
	r := newRepo()
	s := NewService(r, Config{Workers: 2, Epoch: 5 * time.Millisecond})
	s.Start()
	s.Start() // idempotent
	defer s.Stop()
	if err := s.Submit(mkChange(r, "c1", "doc/readme.md", "doc v2")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.State("c1")
		if err != nil {
			t.Fatal(err)
		}
		if st.State == change.StateCommitted {
			s.Stop()
			s.Stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("change never committed by background loop")
}

func TestStatsExposed(t *testing.T) {
	r := newRepo()
	s := NewService(r, Config{Workers: 2})
	if err := s.Submit(mkChange(r, "c1", "lib/lib.go", "v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.BuildStats().Builds == 0 {
		t.Fatal("no builds recorded")
	}
	if s.AnalyzerStats().GraphBuilds == 0 {
		t.Fatal("no analyzer work recorded")
	}
}

func TestTickManualLoop(t *testing.T) {
	r := newRepo()
	s := NewService(r, Config{Workers: 2})
	if err := s.Submit(mkChange(r, "c1", "lib/lib.go", "v2")); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for s.PendingCount() > 0 && time.Now().Before(deadline) {
		if err := s.Tick(ctx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := s.State("c1")
	if st.State != change.StateCommitted {
		t.Fatalf("state = %+v", st)
	}
}
