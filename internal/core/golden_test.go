package core

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/planner"
	"mastergreen/internal/repo"
)

// goldenRepo has four independent subtrees whose targets declare slot files
// that do not exist yet, so creates conflict at the target level within a
// subtree and are independent across subtrees.
func goldenRepo() *repo.Repo {
	srcs := "lib.go"
	for s := 0; s < 8; s++ {
		srcs += fmt.Sprintf(",f%d.go", s)
	}
	files := map[string]string{}
	for i := 0; i < 4; i++ {
		dir := fmt.Sprintf("sub%d", i)
		files[dir+"/BUILD"] = "target t srcs=" + srcs
		files[dir+"/lib.go"] = "lib v1"
	}
	return repo.New(files)
}

// goldenWorkload builds the same deterministic change list for every run:
// chained creates per subtree, one build breakage, one duplicate-create
// merge conflict.
func goldenWorkload() []*change.Change {
	var out []*change.Change
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("sub%d/f%d.go", i%4, i/4)
		content := fmt.Sprintf("content %d", i)
		switch i {
		case 9:
			content = "BROKEN " + content // decisive build fails
		case 14:
			path = fmt.Sprintf("sub%d/f%d.go", (i-1)%4, (i-1)/4) // duplicate create
		}
		out = append(out, &change.Change{
			ID:          change.ID(fmt.Sprintf("c%03d", i)),
			Author:      change.Developer{Name: "dev", Team: "t", Level: 3},
			Description: fmt.Sprintf("golden %03d", i),
			Patch: repo.Patch{Changes: []repo.FileChange{
				{Path: path, Op: repo.OpCreate, NewContent: content},
			}},
			BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		})
	}
	return out
}

type goldenTrace struct {
	outcomes []planner.Outcome
	history  []repo.CommitID
	headLen  int
	files    map[string]string
}

func goldenRun(t *testing.T, shards int, single bool) goldenTrace {
	t.Helper()
	r := goldenRepo()
	base := time.Unix(1700000000, 0)
	runner := buildsys.RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		for _, p := range snap.Paths() {
			if content, ok := snap.Read(p); ok && strings.Contains(content, "BROKEN") {
				return fmt.Errorf("compile error in %s", p)
			}
		}
		return nil
	})
	// Workers: 1 pins build-completion order; the synchronous Tick loop keeps
	// both drivers single-threaded, so the trace is bit-for-bit reproducible
	// even under the race detector's scheduling perturbation.
	s := NewService(r, Config{
		Workers: 1, Shards: shards, SingleShard: single,
		Runner: runner, Now: func() time.Time { return base },
	})
	for _, c := range goldenWorkload() {
		if err := s.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for s.PendingCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("golden run did not converge: %d pending", s.PendingCount())
		}
		if err := s.Tick(ctx); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Microsecond) // let the build worker drain
	}
	files := map[string]string{}
	snap := r.Head().Snapshot()
	for _, p := range snap.Paths() {
		content, _ := snap.Read(p)
		files[p] = content
	}
	return goldenTrace{
		outcomes: s.Outcomes(),
		history:  r.History(),
		headLen:  r.Len(),
		files:    files,
	}
}

// TestGoldenSingleShardMatchesLegacy is the acceptance golden trace: the
// sharded runtime with one shard must reproduce the legacy single-planner
// engine bit for bit — same outcome sequence (IDs, states, reasons, commit
// IDs), same commit history, same head snapshot.
func TestGoldenSingleShardMatchesLegacy(t *testing.T) {
	legacy := goldenRun(t, 0, true)
	sharded := goldenRun(t, 1, false)

	if len(sharded.outcomes) != len(legacy.outcomes) {
		t.Fatalf("outcome count: sharded %d, legacy %d", len(sharded.outcomes), len(legacy.outcomes))
	}
	for i := range legacy.outcomes {
		l, s := legacy.outcomes[i], sharded.outcomes[i]
		if l.ID != s.ID || l.State != s.State || l.Reason != s.Reason || l.Commit != s.Commit {
			t.Fatalf("outcome %d diverges:\nlegacy  %+v\nsharded %+v", i, l, s)
		}
	}
	if sharded.headLen != legacy.headLen {
		t.Fatalf("mainline length: sharded %d, legacy %d", sharded.headLen, legacy.headLen)
	}
	if len(sharded.history) != len(legacy.history) {
		t.Fatalf("history length: sharded %d, legacy %d", len(sharded.history), len(legacy.history))
	}
	for i := range legacy.history {
		if sharded.history[i] != legacy.history[i] {
			t.Fatalf("commit %d diverges: sharded %s, legacy %s", i, sharded.history[i], legacy.history[i])
		}
	}
	if len(sharded.files) != len(legacy.files) {
		t.Fatalf("head file count: sharded %d, legacy %d", len(sharded.files), len(legacy.files))
	}
	for p, want := range legacy.files {
		if sharded.files[p] != want {
			t.Fatalf("head file %s: sharded %q, legacy %q", p, sharded.files[p], want)
		}
	}
	// Sanity: the golden workload exercised all three decision kinds.
	var committed, rejected int
	for _, o := range legacy.outcomes {
		if o.State == change.StateCommitted {
			committed++
		} else {
			rejected++
		}
	}
	if committed == 0 || rejected < 2 {
		t.Fatalf("workload too weak: %d committed, %d rejected", committed, rejected)
	}
}
