package core

import (
	"fmt"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
	"mastergreen/internal/store"
)

// AttachJournal makes the service durable: every submission and every final
// outcome is appended to the journal (the role MySQL plays in §7.1). Call
// before Submit/Start.
func (s *Service) AttachJournal(j *store.Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// Recover replays a journal into a fresh service: every change that was
// still pending when the previous process stopped is re-enqueued, and past
// outcomes become queryable again. Returns the number of re-enqueued
// changes.
func (s *Service) Recover(records []store.Record) (int, error) {
	pending, outcomes := store.PendingFromRecords(records)
	s.mu.Lock()
	for _, o := range outcomes {
		st := Status{ID: o.ID, Reason: o.Reason, Commit: o.Commit}
		if o.State == change.StateCommitted.String() {
			st.State = change.StateCommitted
		} else {
			st.State = change.StateRejected
		}
		s.statuses[o.ID] = st
		s.recorded[o.ID] = true
	}
	s.mu.Unlock()
	n := 0
	for _, c := range pending {
		// Re-submissions bypass journaling (they are already recorded).
		if err := s.submitLocked(c, false); err != nil {
			return n, fmt.Errorf("core: recovering %s: %w", c.ID, err)
		}
		n++
	}
	return n, nil
}

// CloseJournal flushes and detaches the journal (call after Stop, before
// compacting the journal file externally).
func (s *Service) CloseJournal() error {
	s.mu.Lock()
	j := s.journal
	s.journal = nil
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// SnapshotJournal folds the journal's history into a snapshot (pending set
// plus a bounded outcome tail) and truncates the live journal, keeping
// restart replay time flat as history grows. No-op without a journal.
func (s *Service) SnapshotJournal(keepOutcomes int) error {
	s.mu.Lock()
	j := s.journal
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Snapshot(s.repo.Head().ID, keepOutcomes, s.cfg.Now())
}

// OpenRecovered builds a durable service from a saved repository and a
// journal path: the repo is loaded, undecided submissions re-enqueued, and
// the journal attached for future writes. LoadState folds the snapshot chain
// (if SnapshotJournal has run) with the live tail, so boot cost is
// proportional to live state, not total history.
func OpenRecovered(repoSnapshot *repo.Repo, journalPath string, cfg Config) (*Service, error) {
	recs, err := store.LoadState(journalPath)
	if err != nil {
		return nil, err
	}
	svc := NewService(repoSnapshot, cfg)
	if _, err := svc.Recover(recs); err != nil {
		return nil, err
	}
	j, err := store.Open(journalPath)
	if err != nil {
		return nil, err
	}
	svc.AttachJournal(j)
	return svc, nil
}
