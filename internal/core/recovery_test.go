package core

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
	"mastergreen/internal/store"
)

// TestDurableServiceSurvivesRestart: submit changes to a journaled service,
// decide some, "crash", recover into a fresh service, and verify the pending
// ones complete and past outcomes remain queryable.
func TestDurableServiceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")

	r := newRepo()
	j, err := store.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(r, Config{Workers: 4})
	svc.AttachJournal(j)

	// c1 is decided before the crash; c2 and c3 are submitted but the
	// process dies before they finish.
	if err := svc.Submit(mkChange(r, "c1", "lib/lib.go", "lib v2")); err != nil {
		t.Fatal(err)
	}
	if err := svc.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(mkChange(r, "c2", "doc/readme.md", "doc v2")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(mkChange(r, "c3", "app/main.go", "app v2")); err != nil {
		t.Fatal(err)
	}
	// Persist the repo and "crash" (close the journal without processing).
	var repoBuf bytes.Buffer
	if err := r.Save(&repoBuf); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: reload the repo and recover the service from the journal.
	r2, err := repo.Load(&repoBuf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Head().ID != r.Head().ID {
		t.Fatalf("repo reload mismatch: %s vs %s", r2.Head().ID, r.Head().ID)
	}
	svc2, err := OpenRecovered(r2, journalPath, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// c1's outcome survived the restart.
	st, err := svc2.State("c1")
	if err != nil || st.State != change.StateCommitted {
		t.Fatalf("c1 after restart = %+v, %v", st, err)
	}
	// c2 and c3 are pending again and complete normally.
	if svc2.PendingCount() != 2 {
		t.Fatalf("pending after recovery = %d", svc2.PendingCount())
	}
	if err := svc2.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []change.ID{"c2", "c3"} {
		st, err := svc2.State(id)
		if err != nil || st.State != change.StateCommitted {
			t.Fatalf("%s after recovery = %+v, %v", id, st, err)
		}
	}
	if got, _ := r2.Head().Snapshot().Read("doc/readme.md"); got != "doc v2" {
		t.Fatalf("c2 content = %q", got)
	}
}

// TestRecoveredOutcomesNotReJournaled: outcomes restored from the journal
// must not be appended again by the recovered service.
func TestRecoveredOutcomesNotReJournaled(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")

	r := newRepo()
	j, _ := store.Open(journalPath)
	svc := NewService(r, Config{Workers: 2})
	svc.AttachJournal(j)
	if err := svc.Submit(mkChange(r, "c1", "lib/lib.go", "v2")); err != nil {
		t.Fatal(err)
	}
	if err := svc.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	before, _ := store.Replay(journalPath)
	svc2, err := OpenRecovered(r, journalPath, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = svc2.Tick(context.Background()) // would re-journal if buggy
	after, _ := store.Replay(journalPath)
	if len(after) != len(before) {
		t.Fatalf("journal grew on recovery: %d -> %d", len(before), len(after))
	}
}

// TestRepoSaveLoadRoundTrip: a repository with creates, edits, and deletes
// reloads bit-identically including commit IDs.
func TestRepoSaveLoadRoundTrip(t *testing.T) {
	r := newRepo()
	head := r.Head()
	if _, err := r.CommitPatch(head.ID, mkChange(r, "x", "lib/lib.go", "v2").Patch, "a", "edit lib", head.Time); err != nil {
		t.Fatal(err)
	}
	head = r.Head()
	p := repo.Patch{Changes: []repo.FileChange{
		{Path: "new.txt", Op: repo.OpCreate, NewContent: "n"},
		{Path: "doc/readme.md", Op: repo.OpDelete, BaseHash: repo.HashContent("doc v1")},
	}}
	if _, err := r.CommitPatch(head.ID, p, "b", "add+del", head.Time); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := repo.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Fatalf("len %d vs %d", r2.Len(), r.Len())
	}
	h1, h2 := r.History(), r2.History()
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("commit %d id mismatch: %s vs %s", i, h1[i], h2[i])
		}
	}
	s1, s2 := r.Head().Snapshot(), r2.Head().Snapshot()
	if s1.Len() != s2.Len() {
		t.Fatalf("snapshot sizes differ")
	}
	for _, pth := range s1.Paths() {
		c1, _ := s1.Read(pth)
		c2, _ := s2.Read(pth)
		if c1 != c2 {
			t.Fatalf("content mismatch at %s", pth)
		}
	}
}

// TestSnapshotJournalRestart: a service that snapshots its journal restarts
// from snapshot + tail with the same state a full-history replay would give —
// decided changes stay decided, pending ones are re-enqueued and complete.
func TestSnapshotJournalRestart(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "journal.jsonl")

	r := newRepo()
	j, err := store.Open(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(r, Config{Workers: 4})
	svc.AttachJournal(j)

	if err := svc.Submit(mkChange(r, "s1", "lib/lib.go", "lib v2")); err != nil {
		t.Fatal(err)
	}
	if err := svc.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(mkChange(r, "s2", "doc/readme.md", "doc v2")); err != nil {
		t.Fatal(err)
	}
	// Snapshot mid-stream: s1's decision and s2's pending submit fold into
	// the snapshot; the live journal is truncated.
	if err := svc.SnapshotJournal(8); err != nil {
		t.Fatal(err)
	}
	// A post-snapshot submit lands in the tail.
	if err := svc.Submit(mkChange(r, "s3", "app/main.go", "app v2")); err != nil {
		t.Fatal(err)
	}
	var repoBuf bytes.Buffer
	if err := r.Save(&repoBuf); err != nil {
		t.Fatal(err)
	}
	if err := svc.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	r2, err := repo.Load(&repoBuf)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := OpenRecovered(r2, journalPath, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc2.State("s1")
	if err != nil || st.State != change.StateCommitted {
		t.Fatalf("s1 after snapshotted restart = %+v, %v", st, err)
	}
	if svc2.PendingCount() != 2 {
		t.Fatalf("pending after snapshotted recovery = %d, want 2", svc2.PendingCount())
	}
	if err := svc2.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range []change.ID{"s2", "s3"} {
		st, err := svc2.State(id)
		if err != nil || st.State != change.StateCommitted {
			t.Fatalf("%s after snapshotted recovery = %+v, %v", id, st, err)
		}
	}
}
