package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/events"
	"mastergreen/internal/reliability"
	"mastergreen/internal/repo"
)

func relNoSleep(context.Context, time.Duration) error { return nil }

// TestInnocentSurvivesInjectedTransient: with every step-unit failing
// exactly once (the canonical flaky fleet), in-place retries absorb the
// transients so an innocent change still commits, while a change whose
// content genuinely breaks the build is still rejected.
func TestInnocentSurvivesInjectedTransient(t *testing.T) {
	r := newRepo()
	badRunner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		if got, _ := snap.Read("lib/lib.go"); got == "lib broken" {
			return errors.New("compile error in lib.go")
		}
		return nil
	})
	inj := reliability.NewInjector(nil, rand.New(rand.NewSource(5)), reliability.InjectorConfig{
		DefaultTransientRate: 1, // every unit flakes...
		MaxTransientsPerUnit: 1, // ...exactly once, then passes
		Sleep:                relNoSleep,
	})
	s := NewService(r, Config{
		Workers:       2,
		Runner:        badRunner,
		FaultInjector: inj,
		Reliability:   reliability.Config{Sleep: relNoSleep},
	})

	good := mkChange(r, "good", "doc/readme.md", "doc v2")
	bad := mkChange(r, "bad", "lib/lib.go", "lib broken")
	if err := s.Submit(good); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(bad); err != nil {
		t.Fatal(err)
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	st, err := s.State("good")
	if err != nil || st.State != change.StateCommitted {
		t.Fatalf("innocent change lost to injected transients: %+v, %v", st, err)
	}
	st, err = s.State("bad")
	if err != nil || st.State != change.StateRejected {
		t.Fatalf("genuinely-broken change not rejected: %+v, %v", st, err)
	}

	rs := s.ReliabilityStats()
	if rs.InjectedTransients == 0 {
		t.Error("no transients injected")
	}
	if rs.Retries == 0 {
		t.Error("no in-place retries spent")
	}
	if rs.FlakesConfirmed == 0 {
		t.Error("no flakes confirmed despite fail-then-pass on identical inputs")
	}
}

// TestVerificationAvertsRejection: with in-place retries disabled
// (MaxAttempts 1) and the compile kind quarantined, a decisive build that
// fails on an injected transient gets one verification re-run against the
// same snapshot; the re-run passes (the injector's per-unit cap is spent),
// the change commits, and the averted rejection is counted and published.
func TestVerificationAvertsRejection(t *testing.T) {
	r := newRepo()
	bus := events.NewBus(256)
	inj := reliability.NewInjector(nil, rand.New(rand.NewSource(9)), reliability.InjectorConfig{
		DefaultTransientRate: 1,
		MaxTransientsPerUnit: 1,
		Sleep:                relNoSleep,
	})
	s := NewService(r, Config{
		Workers:       2,
		Events:        bus,
		FaultInjector: inj,
		Reliability: reliability.Config{
			Retry: reliability.RetryPolicy{MaxAttempts: 1},
			Sleep: relNoSleep,
		},
	})
	s.Reliability().Quarantine(change.StepCompile)

	c := mkChange(r, "c1", "doc/readme.md", "doc v2")
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}

	st, err := s.State("c1")
	if err != nil || st.State != change.StateCommitted {
		t.Fatalf("verification did not avert the rejection: %+v, %v", st, err)
	}
	rs := s.ReliabilityStats()
	if rs.Verifications == 0 || rs.QuarantineVerifications == 0 {
		t.Errorf("stats = %+v, want a quarantine-granted verification", rs)
	}
	if rs.RejectionsAverted != 1 {
		t.Errorf("RejectionsAverted = %d, want 1", rs.RejectionsAverted)
	}
	var retried, averted bool
	for _, ev := range bus.Since(0) {
		switch ev.Type {
		case events.TypeBuildRetried:
			retried = true
		case events.TypeRejectionAverted:
			averted = true
		}
	}
	if !retried || !averted {
		t.Errorf("events: build-retried=%v rejection-averted=%v, want both", retried, averted)
	}
}

// TestLegacyNoRetryRejectsInnocent is the baseline contrast: the same
// flaky fleet without the reliability layer falsely rejects the innocent
// change.
func TestLegacyNoRetryRejectsInnocent(t *testing.T) {
	r := newRepo()
	inj := reliability.NewInjector(nil, rand.New(rand.NewSource(5)), reliability.InjectorConfig{
		DefaultTransientRate: 1,
		MaxTransientsPerUnit: 1,
		Sleep:                relNoSleep,
	})
	s := NewService(r, Config{
		Workers:       2,
		FaultInjector: inj,
		Reliability:   reliability.Config{LegacyNoRetry: true, Sleep: relNoSleep},
	})
	c := mkChange(r, "c1", "doc/readme.md", "doc v2")
	if err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := s.State("c1")
	if err != nil || st.State != change.StateRejected {
		t.Fatalf("legacy baseline should falsely reject the innocent change: %+v, %v", st, err)
	}
}
