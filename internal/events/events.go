// Package events is SubmitQueue's observability spine: a bounded in-memory
// event bus that the planner publishes lifecycle events to (submissions,
// build starts/finishes/aborts, commits, rejections). The paper's deployment
// streams equivalent events through RxJava to its web UI (§7.1); here the
// bus backs the HTTP API's polling endpoint and the sqd status page.
package events

import (
	"sync"
	"sync/atomic"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/metrics"
)

// Type classifies an event.
type Type string

// Event types.
const (
	TypeSubmitted     Type = "submitted"
	TypeBuildStarted  Type = "build-started"
	TypeBuildFinished Type = "build-finished"
	TypeBuildAborted  Type = "build-aborted"
	TypeCommitted     Type = "committed"
	TypeRejected      Type = "rejected"

	// Conflict-analyzer lifecycle events: an analysis was computed fresh,
	// re-homed across a head move without recomputation, or dropped by the
	// selective-invalidation rule.
	TypeAnalysisStarted     Type = "analysis-started"
	TypeAnalysisReused      Type = "analysis-reused"
	TypeAnalysisInvalidated Type = "analysis-invalidated"

	// Reliability-layer events (DESIGN.md §4g): a step-unit was proven flaky
	// (fail then pass on identical inputs), a failed suspect build was given
	// a verification re-run, and a verification re-run passed — averting a
	// false rejection.
	TypeFlakyDetected    Type = "flaky-detected"
	TypeBuildRetried     Type = "build-retried"
	TypeRejectionAverted Type = "rejection-averted"

	// Shard-layer events (DESIGN.md §4h): the commit arbiter advanced the
	// mainline head, and the coordinator moved changes between planner
	// shards after a partition epoch.
	TypeHeadAdvanced    Type = "head-advanced"
	TypeShardRebalanced Type = "shard-rebalanced"
)

// Event is one lifecycle occurrence.
type Event struct {
	Seq    int64     `json:"seq"`
	At     time.Time `json:"at"`
	Type   Type      `json:"type"`
	Change change.ID `json:"change,omitempty"`
	Build  string    `json:"build,omitempty"` // build key, for build events
	Detail string    `json:"detail,omitempty"`
}

// Bus is a bounded ring of recent events plus live subscriptions. The zero
// value is not usable; call NewBus.
type Bus struct {
	mu      sync.Mutex
	ring    []Event
	start   int // index of oldest
	count   int
	nextSeq int64
	subs    map[int]*subscriber
	nextSub int
	now     func() time.Time

	// dropped counts fan-out sends discarded because a subscriber's buffer
	// was full. Atomic: incremented outside mu on the publish fast path.
	dropped int64
}

// subscriber is one live subscription plus its drop count.
type subscriber struct {
	ch      chan Event
	dropped int64 // atomic
}

// Stats is a point-in-time summary of bus health: how much was published,
// how much fan-out was shed, and how many subscribers are falling behind.
type Stats struct {
	// Published is the total number of events published on this bus.
	Published int64
	// Dropped is the total number of per-subscriber sends discarded because
	// the subscriber's buffer was full. One published event fanned out to k
	// stalled subscribers counts k drops.
	Dropped int64
	// Subscribers is the current number of live subscriptions.
	Subscribers int
	// SlowSubscribers is how many current subscribers have dropped at least
	// one event — the ones a dashboard should call out.
	SlowSubscribers int
}

// NewBus creates a bus retaining the most recent capacity events (min 16).
func NewBus(capacity int) *Bus {
	if capacity < 16 {
		capacity = 16
	}
	return &Bus{
		ring: make([]Event, capacity),
		subs: map[int]*subscriber{},
		now:  time.Now,
	}
}

// SetClock injects a clock (tests).
func (b *Bus) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// Publish stamps and stores the event, then fans it out to subscribers.
// Slow subscribers are skipped rather than blocking the planner.
func (b *Bus) Publish(ev Event) Event {
	b.mu.Lock()
	b.nextSeq++
	ev.Seq = b.nextSeq
	if ev.At.IsZero() {
		ev.At = b.now()
	}
	idx := (b.start + b.count) % len(b.ring)
	if b.count == len(b.ring) {
		b.start = (b.start + 1) % len(b.ring)
	} else {
		b.count++
	}
	b.ring[idx] = ev
	subs := make([]*subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.Unlock()
	for _, s := range subs {
		select {
		case s.ch <- ev:
		default:
			// Drop rather than block: a stalled consumer must never stall
			// the planner. The shed send is counted so /status can surface
			// the slow subscriber instead of hiding the loss.
			atomic.AddInt64(&s.dropped, 1)
			atomic.AddInt64(&b.dropped, 1)
		}
	}
	return ev
}

// Stats returns current bus health counters.
func (b *Bus) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{
		Published:   b.nextSeq,
		Dropped:     atomic.LoadInt64(&b.dropped),
		Subscribers: len(b.subs),
	}
	for _, s := range b.subs {
		if atomic.LoadInt64(&s.dropped) > 0 {
			st.SlowSubscribers++
		}
	}
	return st
}

// Gauges renders the bus health counters in the repo's uniform gauge form.
func (b *Bus) Gauges() metrics.Gauges {
	st := b.Stats()
	return metrics.Gauges{
		{Name: "events_published", Value: float64(st.Published)},
		{Name: "events_dropped", Value: float64(st.Dropped)},
		{Name: "events_subscribers", Value: float64(st.Subscribers)},
		{Name: "events_slow_subscribers", Value: float64(st.SlowSubscribers)},
	}
}

// Since returns retained events with Seq > seq, oldest first.
func (b *Bus) Since(seq int64) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []Event
	for i := 0; i < b.count; i++ {
		ev := b.ring[(b.start+i)%len(b.ring)]
		if ev.Seq > seq {
			out = append(out, ev)
		}
	}
	return out
}

// LastSeq returns the sequence number of the newest event (0 if none).
func (b *Bus) LastSeq() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextSeq
}

// Subscribe returns a live channel of future events and a cancel function.
// The channel buffers up to buffer events; overflow is dropped.
func (b *Bus) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer < 1 {
		buffer = 1
	}
	s := &subscriber{ch: make(chan Event, buffer)}
	b.mu.Lock()
	id := b.nextSub
	b.nextSub++
	b.subs[id] = s
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(s.ch)
		}
		b.mu.Unlock()
	}
	return s.ch, cancel
}

// Counts aggregates retained events by type (for status pages).
func (b *Bus) Counts() map[Type]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := map[Type]int{}
	for i := 0; i < b.count; i++ {
		out[b.ring[(b.start+i)%len(b.ring)].Type]++
	}
	return out
}
