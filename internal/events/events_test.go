package events

import (
	"testing"
	"time"
)

func TestPublishAssignsSequence(t *testing.T) {
	b := NewBus(16)
	e1 := b.Publish(Event{Type: TypeSubmitted, Change: "c1"})
	e2 := b.Publish(Event{Type: TypeCommitted, Change: "c1"})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if e1.At.IsZero() {
		t.Fatal("timestamp not assigned")
	}
	if b.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d", b.LastSeq())
	}
}

func TestSince(t *testing.T) {
	b := NewBus(16)
	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: TypeSubmitted})
	}
	got := b.Since(2)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("Since(2) = %v", got)
	}
	if len(b.Since(99)) != 0 {
		t.Fatal("Since beyond end should be empty")
	}
}

func TestRingEviction(t *testing.T) {
	b := NewBus(16) // min capacity
	for i := 0; i < 40; i++ {
		b.Publish(Event{Type: TypeSubmitted})
	}
	got := b.Since(0)
	if len(got) != 16 {
		t.Fatalf("retained = %d, want 16", len(got))
	}
	if got[0].Seq != 25 || got[15].Seq != 40 {
		t.Fatalf("window = [%d, %d]", got[0].Seq, got[15].Seq)
	}
}

func TestSubscribeReceivesLiveEvents(t *testing.T) {
	b := NewBus(16)
	ch, cancel := b.Subscribe(8)
	defer cancel()
	b.Publish(Event{Type: TypeBuildStarted, Build: "b1"})
	select {
	case ev := <-ch:
		if ev.Type != TypeBuildStarted || ev.Build != "b1" {
			t.Fatalf("ev = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(16)
	ch, cancel := b.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish(Event{Type: TypeSubmitted})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
	// The single buffered event is still deliverable.
	if ev := <-ch; ev.Seq == 0 {
		t.Fatal("no event buffered")
	}
}

func TestCancelIdempotent(t *testing.T) {
	b := NewBus(16)
	_, cancel := b.Subscribe(1)
	cancel()
	cancel() // no panic
	b.Publish(Event{Type: TypeSubmitted})
}

func TestCounts(t *testing.T) {
	b := NewBus(32)
	b.Publish(Event{Type: TypeSubmitted})
	b.Publish(Event{Type: TypeSubmitted})
	b.Publish(Event{Type: TypeCommitted})
	c := b.Counts()
	if c[TypeSubmitted] != 2 || c[TypeCommitted] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestSetClock(t *testing.T) {
	b := NewBus(16)
	fixed := time.Unix(42, 0)
	b.SetClock(func() time.Time { return fixed })
	ev := b.Publish(Event{Type: TypeSubmitted})
	if !ev.At.Equal(fixed) {
		t.Fatalf("At = %v", ev.At)
	}
}
