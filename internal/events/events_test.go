package events

import (
	"testing"
	"time"
)

func TestPublishAssignsSequence(t *testing.T) {
	b := NewBus(16)
	e1 := b.Publish(Event{Type: TypeSubmitted, Change: "c1"})
	e2 := b.Publish(Event{Type: TypeCommitted, Change: "c1"})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seqs = %d, %d", e1.Seq, e2.Seq)
	}
	if e1.At.IsZero() {
		t.Fatal("timestamp not assigned")
	}
	if b.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d", b.LastSeq())
	}
}

func TestSince(t *testing.T) {
	b := NewBus(16)
	for i := 0; i < 5; i++ {
		b.Publish(Event{Type: TypeSubmitted})
	}
	got := b.Since(2)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("Since(2) = %v", got)
	}
	if len(b.Since(99)) != 0 {
		t.Fatal("Since beyond end should be empty")
	}
}

func TestRingEviction(t *testing.T) {
	b := NewBus(16) // min capacity
	for i := 0; i < 40; i++ {
		b.Publish(Event{Type: TypeSubmitted})
	}
	got := b.Since(0)
	if len(got) != 16 {
		t.Fatalf("retained = %d, want 16", len(got))
	}
	if got[0].Seq != 25 || got[15].Seq != 40 {
		t.Fatalf("window = [%d, %d]", got[0].Seq, got[15].Seq)
	}
}

func TestSubscribeReceivesLiveEvents(t *testing.T) {
	b := NewBus(16)
	ch, cancel := b.Subscribe(8)
	defer cancel()
	b.Publish(Event{Type: TypeBuildStarted, Build: "b1"})
	select {
	case ev := <-ch:
		if ev.Type != TypeBuildStarted || ev.Build != "b1" {
			t.Fatalf("ev = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus(16)
	ch, cancel := b.Subscribe(1)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish(Event{Type: TypeSubmitted})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher blocked on slow subscriber")
	}
	// The single buffered event is still deliverable.
	if ev := <-ch; ev.Seq == 0 {
		t.Fatal("no event buffered")
	}
}

func TestCancelIdempotent(t *testing.T) {
	b := NewBus(16)
	_, cancel := b.Subscribe(1)
	cancel()
	cancel() // no panic
	b.Publish(Event{Type: TypeSubmitted})
}

func TestCounts(t *testing.T) {
	b := NewBus(32)
	b.Publish(Event{Type: TypeSubmitted})
	b.Publish(Event{Type: TypeSubmitted})
	b.Publish(Event{Type: TypeCommitted})
	c := b.Counts()
	if c[TypeSubmitted] != 2 || c[TypeCommitted] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestSetClock(t *testing.T) {
	b := NewBus(16)
	fixed := time.Unix(42, 0)
	b.SetClock(func() time.Time { return fixed })
	ev := b.Publish(Event{Type: TypeSubmitted})
	if !ev.At.Equal(fixed) {
		t.Fatalf("At = %v", ev.At)
	}
}

// TestStalledSubscriberNeverBlocksPublish: a subscriber that never drains
// must not stall Publish. Every overflowed send is shed, counted against the
// subscriber, and surfaced through Stats and Gauges.
func TestStalledSubscriberNeverBlocksPublish(t *testing.T) {
	b := NewBus(16)
	stalled, cancelStalled := b.Subscribe(2) // fills after 2 events, never drained
	defer cancelStalled()
	healthy, cancelHealthy := b.Subscribe(64)
	defer cancelHealthy()

	const n = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			b.Publish(Event{Type: TypeSubmitted})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}

	if got := len(healthy); got != n {
		t.Fatalf("healthy subscriber saw %d events, want %d", got, n)
	}
	st := b.Stats()
	if st.Published != n {
		t.Fatalf("Published = %d, want %d", st.Published, n)
	}
	if want := int64(n - 2); st.Dropped != want {
		t.Fatalf("Dropped = %d, want %d (stalled buffer holds 2)", st.Dropped, want)
	}
	if st.Subscribers != 2 || st.SlowSubscribers != 1 {
		t.Fatalf("Subscribers = %d SlowSubscribers = %d, want 2 and 1", st.Subscribers, st.SlowSubscribers)
	}
	// The stalled subscriber still holds the first events it had room for.
	if ev := <-stalled; ev.Seq != 1 {
		t.Fatalf("stalled subscriber's first buffered event Seq = %d", ev.Seq)
	}

	g := b.Gauges()
	if v, ok := g.Get("events_dropped"); !ok || v != float64(n-2) {
		t.Fatalf("gauges = %v", g)
	}
	if v, ok := g.Get("events_slow_subscribers"); !ok || v != 1 {
		t.Fatalf("gauges = %v", g)
	}
}
