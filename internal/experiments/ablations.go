package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"mastergreen/internal/buildgraph"
	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/core"
	"mastergreen/internal/metrics"
	"mastergreen/internal/planner"
	"mastergreen/internal/predict"
	"mastergreen/internal/queue"
	"mastergreen/internal/repo"
	"mastergreen/internal/sim"
	"mastergreen/internal/speculation"
	"mastergreen/internal/strategies"
	"mastergreen/internal/textplot"
	"mastergreen/internal/workload"
)

// AblationSelection compares the greedy best-first build selection (§7.1)
// against exhaustive enumeration + sort on small pending sets: the selected
// top-k builds must be identical while the greedy search visits a bounded
// number of nodes instead of 2^n.
func AblationSelection(o Options) *Report {
	r := newReport("ablation-selection", "Ablation — greedy best-first vs exhaustive selection")
	pred := predict.Static{Success: 0.8, Conflict: 0.1}
	agree := 0
	total := 0
	for n := 2; n <= 10; n++ {
		pending := make([]*change.Change, n)
		for i := range pending {
			pending[i] = &change.Change{ID: change.ID(fmt.Sprintf("c%d", i))}
		}
		budget := n
		greedy := speculation.New(pred).Plan(speculation.Request{Pending: pending, Budget: budget})
		// Exhaustive: no budget (full enumeration), then take top-k.
		full := speculation.New(pred).Plan(speculation.Request{Pending: pending, Budget: 0})
		k := budget
		if len(full.Builds) < k {
			k = len(full.Builds)
		}
		want := map[string]bool{}
		for _, b := range full.Builds[:k] {
			want[b.Key()] = true
		}
		for _, b := range greedy.Builds {
			total++
			if want[b.Key()] {
				agree++
			}
		}
	}
	frac := ratio(float64(agree), float64(total))
	r.Metrics["top_k_agreement"] = frac
	r.Text = fmt.Sprintf("greedy top-k matches exhaustive top-k on %.1f%% of builds (n=2..10)\n", frac*100)
	return r
}

// AblationConflictDetection compares the three conflict-detection methods of
// §5.2 on the Fig. 8 scenario and on plain content edits: name intersection
// is cheapest but misses structure changes; the union-graph and Equation 6
// methods agree.
func AblationConflictDetection(o Options) *Report {
	r := newReport("ablation-conflict", "Ablation — conflict detection methods (§5.2)")
	base := repo.NewSnapshot(map[string]string{
		"x/BUILD": "target x srcs=x.go",
		"x/x.go":  "x v1",
		"y/BUILD": "target y srcs=y.go deps=//x:x",
		"y/y.go":  "y v1",
		"z/BUILD": "target z srcs=z.go",
		"z/z.go":  "z v1",
	})
	edit := func(s repo.Snapshot, path, content string) repo.Snapshot {
		cur, ok := s.Read(path)
		fc := repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: content}
		if ok {
			fc = repo.FileChange{Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content}
		}
		next, err := s.Apply(repo.Patch{Changes: []repo.FileChange{fc}})
		if err != nil {
			panic(err)
		}
		return next
	}
	scenarios := []struct {
		name   string
		c1, c2 func() repo.Snapshot
		isConf bool // ground truth
	}{
		{"independent edits", func() repo.Snapshot { return edit(base, "x/x.go", "x v2") },
			func() repo.Snapshot { return edit(base, "z/z.go", "z v2") }, false},
		{"shared target", func() repo.Snapshot { return edit(base, "x/x.go", "x v2") },
			func() repo.Snapshot { return edit(base, "y/y.go", "y v2") }, true},
		{"fig8 structure change", func() repo.Snapshot { return edit(base, "x/x.go", "x v2") },
			func() repo.Snapshot { return edit(base, "z/BUILD", "target z srcs=z.go deps=//y:y") }, true},
	}
	gH, err := buildgraph.Analyze(base)
	if err != nil {
		r.Text = err.Error()
		return r
	}
	rows := [][]string{}
	correct := map[string]int{"name-intersection": 0, "union-graph": 0, "equation-6": 0}
	for _, sc := range scenarios {
		s1, s2 := sc.c1(), sc.c2()
		g1, _ := buildgraph.Analyze(s1)
		g2, _ := buildgraph.Analyze(s2)
		d1, d2 := buildgraph.Diff(gH, g1), buildgraph.Diff(gH, g2)
		name := buildgraph.NameIntersectionConflict(d1, d2)
		union := buildgraph.UnionConflict(gH, g1, g2)
		// Equation 6 needs the combined snapshot.
		var eq6 bool
		comb := s1
		for _, p := range s2.Paths() {
			c2c, _ := s2.Read(p)
			c1c, okc := comb.Read(p)
			if !okc {
				comb, _ = comb.Apply(repo.Patch{Changes: []repo.FileChange{{Path: p, Op: repo.OpCreate, NewContent: c2c}}})
			} else if c1c != c2c {
				bc, _ := base.Read(p)
				if c2c != bc {
					comb, _ = comb.Apply(repo.Patch{Changes: []repo.FileChange{{Path: p, Op: repo.OpModify, BaseHash: repo.HashContent(c1c), NewContent: c2c}}})
				}
			}
		}
		if gc, err := buildgraph.Analyze(comb); err == nil {
			eq6 = buildgraph.Equation6Conflict(d1, d2, buildgraph.Diff(gH, gc))
		}
		mark := func(got bool, key string) string {
			if got == sc.isConf {
				correct[key]++
				return fmt.Sprintf("%v ✓", got)
			}
			return fmt.Sprintf("%v ✗", got)
		}
		rows = append(rows, []string{sc.name, fmt.Sprint(sc.isConf),
			mark(name, "name-intersection"), mark(union, "union-graph"), mark(eq6, "equation-6")})
	}
	for k, v := range correct {
		r.Metrics[k+"_correct"] = float64(v)
	}
	r.Text = textplot.Table(r.Title,
		[]string{"scenario", "truth", "name-intersection", "union-graph", "equation-6"}, rows)
	return r
}

// AblationIncremental measures the §6 minimal-build-steps and artifact-cache
// savings on a speculative chain executed by the real build controller.
func AblationIncremental(o Options) *Report {
	r := newReport("ablation-incremental", "Ablation — minimal build steps & artifact caching (§6)")
	// A 12-target chain monorepo; each change touches one target's source.
	files := map[string]string{}
	for i := 0; i < 12; i++ {
		dep := ""
		if i > 0 {
			dep = fmt.Sprintf(" deps=//t%d:t%d", i-1, i-1)
		}
		files[fmt.Sprintf("t%d/BUILD", i)] = fmt.Sprintf("target t%d srcs=s.go%s", i, dep)
		files[fmt.Sprintf("t%d/s.go", i)] = "v1"
	}
	base := repo.NewSnapshot(files)
	gH, err := buildgraph.Analyze(base)
	if err != nil {
		r.Text = err.Error()
		return r
	}
	// Chain build: H⊕C1, H⊕C1⊕C2, H⊕C1⊕C2⊕C3 where Ci edits t_{3i}.
	ctrl := buildsys.NewController(4, nil)
	snap := base
	var priorDelta buildgraph.Delta
	steps := []change.BuildStep{{Name: "compile", Kind: change.StepCompile}, {Name: "unit", Kind: change.StepUnitTest}}
	for i := 1; i <= 3; i++ {
		path := fmt.Sprintf("t%d/s.go", 3*i)
		cur, _ := snap.Read(path)
		next, _ := snap.Apply(repo.Patch{Changes: []repo.FileChange{{
			Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: fmt.Sprintf("v%d", i+1),
		}}})
		g, _ := buildgraph.Analyze(next)
		delta := buildgraph.Diff(gH, g)
		prior := map[string]bool{}
		for name, h := range priorDelta {
			if delta[name] == h {
				prior[name] = true
			}
		}
		targets := map[string]string{}
		for name, h := range delta {
			targets[name] = h
		}
		res := ctrl.Run(context.Background(), buildsys.Request{
			Key: fmt.Sprintf("chain-%d", i), Snapshot: next, Steps: steps,
			Targets: targets, PriorTargets: prior,
		})
		if !res.OK {
			r.Text = "build failed: " + res.FailedStep
			return r
		}
		snap = next
		priorDelta = delta
	}
	st := ctrl.Stats()
	total := st.Executed + st.SkippedPrior + st.SkippedCache
	saved := ratio(float64(st.SkippedPrior+st.SkippedCache), float64(total))
	r.Metrics["step_units_total"] = float64(total)
	r.Metrics["step_units_executed"] = float64(st.Executed)
	r.Metrics["savings_fraction"] = saved
	r.Text = fmt.Sprintf(
		"chain of 3 speculative builds over a 12-target dependency chain:\n"+
			"  step-units total    %d\n  executed            %d\n  skipped (prior)     %d\n  skipped (cache)     %d\n  savings             %.0f%%\n",
		total, st.Executed, st.SkippedPrior, st.SkippedCache, saved*100)
	return r
}

// AblationSpecDepth sweeps the speculation-depth cap: deeper speculation
// improves turnaround until the conflict-probability product starves the
// deep nodes of value.
func AblationSpecDepth(o Options) *Report {
	r := newReport("ablation-depth", "Ablation — speculation depth cap")
	w := workload.Generate(workload.IOSConfig(o.seed(), o.count(400, 1000), 300))
	oracle := strategies.NewOracle(w)
	oracleRes := runCell(w, oracle, 300, true)
	base := oracleRes.Summary().P95

	depths := []int{1, 2, 4, 8, 16}
	var rows [][]string
	prev := math.Inf(1)
	monotone := true
	for _, d := range depths {
		sq := strategies.NewSubmitQueue(w, w.OraclePredictor())
		sq.Engine.MaxSpecDepth = d
		res := runCell(w, sq, 300, true)
		p95 := res.Summary().P95
		norm := ratio(p95, base)
		r.Metrics[fmt.Sprintf("norm_p95_depth%d", d)] = norm
		rows = append(rows, []string{fmt.Sprint(d), fmtF(p95), fmtF(norm)})
		if norm > prev+0.25 {
			monotone = false
		}
		if norm < prev {
			prev = norm
		}
	}
	r.Metrics["roughly_monotone"] = boolF(monotone)
	r.Text = textplot.Table(r.Title, []string{"depth", "P95 (min)", "vs Oracle"}, rows)
	return r
}

// AblationBatching evaluates the §10 "batching independent changes"
// extension across batch sizes: larger batches save builds but risk longer
// turnaround on failure.
func AblationBatching(o Options) *Report {
	r := newReport("ablation-batch", "Extension — batching (§10 future work / Chromium CQ)")
	w := workload.Generate(workload.IOSConfig(o.seed(), o.count(300, 800), 200))
	var rows [][]string
	sizes := []int{1, 2, 4, 8}
	for _, size := range sizes {
		b := &strategies.Batch{BatchSize: size}
		res := runCell(w, b, 100, true)
		s := res.Summary()
		r.Metrics[fmt.Sprintf("p95_batch%d", size)] = s.P95
		r.Metrics[fmt.Sprintf("builds_batch%d", size)] = float64(res.BuildsFinished)
		rows = append(rows, []string{
			fmt.Sprint(size), fmtF(s.P50), fmtF(s.P95),
			fmt.Sprint(res.BuildsFinished), fmt.Sprint(res.Committed),
		})
	}
	r.Text = textplot.Table(r.Title, []string{"batch", "P50", "P95", "builds", "commits"}, rows)
	return r
}

// AblationPreemptionGrace exercises the §10 build-preemption idea in the
// real-time planner: with a grace window, nearly-finished builds survive
// re-planning.
func AblationPreemptionGrace(o Options) *Report {
	r := newReport("ablation-grace", "Extension — build preemption grace (§10)")
	// Real-time micro-scenario driven through the actual planner: changes
	// that all conflict at the target level, with a runner slow enough that
	// re-planning happens while builds run.
	run := func(grace time.Duration) (aborted int) {
		rp := repo.New(map[string]string{
			"a/BUILD": "target a srcs=s.go", "a/s.go": "v1",
		})
		runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
			select {
			case <-time.After(10 * time.Millisecond):
				return nil
			case <-ctx.Done():
				return buildsys.ErrAborted
			}
		})
		svc := core.NewService(rp, core.Config{
			Workers: 4, Runner: runner, PreemptionGrace: grace,
		})
		for i := 0; i < 4; i++ {
			c := &change.Change{
				ID: change.ID(fmt.Sprintf("g%d", i)),
				Patch: repo.Patch{Changes: []repo.FileChange{{
					Path: fmt.Sprintf("a/f%d.txt", i), Op: repo.OpCreate, NewContent: "x",
				}}},
				BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
			}
			_ = svc.Submit(c)
		}
		_ = svc.ProcessAll(context.Background())
		return svc.BuildStats().Aborted
	}
	without := run(0)
	with := run(time.Nanosecond) // everything past 1ns counts as "nearly done"
	r.Metrics["aborted_without_grace"] = float64(without)
	r.Metrics["aborted_with_grace"] = float64(with)
	r.Text = fmt.Sprintf("aborted builds without grace: %d, with grace: %d (grace keeps nearly-done builds)\n",
		without, with)
	return r
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// AblationReordering evaluates the §10 change-reordering extension: small
// changes may commit ahead of long-running conflicting predecessors. The
// benefit concentrates on turnaround under heavy-tailed build times; the
// cost is commit order deviating from submission order.
func AblationReordering(o Options) *Report {
	r := newReport("ablation-reorder", "Extension — change reordering (§10)")
	cfg := workload.IOSConfig(o.seed(), o.count(400, 1000), 250)
	cfg.DurSigma = 0.9 // heavy-tailed build times make reordering matter
	w := workload.Generate(cfg)

	base := strategies.NewSubmitQueue(w, w.OraclePredictor())
	resBase := runCell(w, base, 150, true)

	re := strategies.NewSubmitQueue(w, w.OraclePredictor())
	re.ReorderSmall = true
	resRe := runCell(w, re, 150, true)

	r.Metrics["p50_base"] = metrics.Percentile(resBase.TurnaroundCommittedMin, 50)
	r.Metrics["p50_reorder"] = metrics.Percentile(resRe.TurnaroundCommittedMin, 50)
	r.Metrics["p95_base"] = metrics.Percentile(resBase.TurnaroundCommittedMin, 95)
	r.Metrics["p95_reorder"] = metrics.Percentile(resRe.TurnaroundCommittedMin, 95)
	r.Metrics["green_violations"] = float64(resRe.GreenViolations)
	r.Text = fmt.Sprintf(
		"heavy-tailed builds (sigma 0.9), 250 changes/h, 150 workers:\n"+
			"  P50 turnaround:  in-order %.0f min → reorder %.0f min\n"+
			"  P95 turnaround:  in-order %.0f min → reorder %.0f min\n"+
			"  green violations with reordering: %d (must be 0)\n",
		r.Metrics["p50_base"], r.Metrics["p50_reorder"],
		r.Metrics["p95_base"], r.Metrics["p95_reorder"],
		resRe.GreenViolations)
	return r
}

// AblationBoosting compares logistic regression against gradient-boosted
// stumps (§10: "exploring other ML techniques such as Gradient Boosting") on
// both prediction tasks.
func AblationBoosting(o Options) *Report {
	r := newReport("ablation-boost", "Extension — gradient boosting vs logistic regression (§10)")
	n := o.count(6000, 20000)
	w := workload.Generate(workload.Config{Seed: o.seed(), Count: n, RatePerHour: 300})

	X, y := w.IsolatedTrainingData()
	trX, trY, vaX, vaY := predict.Split(X, y, 0.7, o.seed())
	lr, err := predict.Train(predict.SuccessFeatureNames, trX, trY, predict.TrainConfig{Epochs: 60})
	if err != nil {
		r.Text = err.Error()
		return r
	}
	gb, err := predict.TrainBoost(predict.SuccessFeatureNames, trX, trY, predict.BoostConfig{Rounds: 120})
	if err != nil {
		r.Text = err.Error()
		return r
	}
	lrAcc := predict.Evaluate(lr, vaX, vaY).Accuracy
	gbAcc := predict.EvaluateBoost(gb, vaX, vaY).Accuracy
	lrAUC := predict.AUC(lr.Predictions(vaX), vaY)
	gbAUC := predict.AUC(gb.Predictions(vaX), vaY)
	r.Metrics["success_lr_accuracy"] = lrAcc
	r.Metrics["success_gb_accuracy"] = gbAcc
	r.Metrics["success_lr_auc"] = lrAUC
	r.Metrics["success_gb_auc"] = gbAUC

	cX, cy := w.ConflictTrainingData(o.seed())
	ctrX, ctrY, cvaX, cvaY := predict.Split(cX, cy, 0.7, o.seed())
	clr, err := predict.Train(predict.ConflictFeatureNames, ctrX, ctrY, predict.TrainConfig{Epochs: 40})
	if err != nil {
		r.Text = err.Error()
		return r
	}
	cgb, err := predict.TrainBoost(predict.ConflictFeatureNames, ctrX, ctrY, predict.BoostConfig{Rounds: 80})
	if err != nil {
		r.Text = err.Error()
		return r
	}
	r.Metrics["conflict_lr_auc"] = predict.AUC(clr.Predictions(cvaX), cvaY)
	r.Metrics["conflict_gb_auc"] = predict.AUC(cgb.Predictions(cvaX), cvaY)

	r.Text = fmt.Sprintf(
		"success model:  LR acc=%.3f auc=%.3f | GB acc=%.3f auc=%.3f (%d stumps)\n"+
			"conflict model: LR auc=%.3f | GB auc=%.3f\n"+
			"the generative ground truth is logistic, so LR is near-Bayes here;\n"+
			"boosting matches it and would win on threshold-shaped signals (see predict tests)\n",
		lrAcc, lrAUC, gbAcc, gbAUC, len(gb.Stumps),
		r.Metrics["conflict_lr_auc"], r.Metrics["conflict_gb_auc"])
	return r
}

// AblationAnalyzerCache measures the incremental conflict analyzer
// (DESIGN.md §4e) against the wipe-on-head-move baseline: a pool of mutually
// independent pending changes is re-planned (BuildGraph) after each of a
// series of commits. The baseline re-analyzes every remaining change per
// commit; selective invalidation re-homes them all, so each commit costs one
// head-graph build.
func AblationAnalyzerCache(o Options) *Report {
	r := newReport("ablation-analyzer", "Ablation — incremental conflict analyzer (selective invalidation)")
	n := o.count(16, 64)
	commits := n / 4

	run := func(legacy bool) (perCommit float64, st conflict.Stats) {
		files := map[string]string{}
		for i := 0; i < n; i++ {
			files[fmt.Sprintf("d%02d/BUILD", i)] = fmt.Sprintf("target t%02d srcs=f.go", i)
			files[fmt.Sprintf("d%02d/f.go", i)] = fmt.Sprintf("v1 of %d", i)
		}
		rp := repo.New(files)
		an := conflict.New(rp)
		an.LegacyInvalidation = legacy
		pending := make([]*change.Change, n)
		for i := 0; i < n; i++ {
			path := fmt.Sprintf("d%02d/f.go", i)
			pending[i] = &change.Change{
				ID: change.ID(fmt.Sprintf("c%02d", i)),
				Patch: repo.Patch{Changes: []repo.FileChange{{
					Path: path, Op: repo.OpModify,
					BaseHash:   repo.HashContent(fmt.Sprintf("v1 of %d", i)),
					NewContent: fmt.Sprintf("v2 of %d", i),
				}}},
			}
		}
		if _, failed := an.BuildGraph(pending); len(failed) > 0 {
			panic(fmt.Sprintf("ablation-analyzer: unexpected failures: %v", failed))
		}
		before := an.Stats().GraphBuilds
		for k := 0; k < commits; k++ {
			head := rp.Head()
			if _, err := rp.CommitPatch(head.ID, pending[0].Patch, "dev", string(pending[0].ID), time.Time{}); err != nil {
				panic(err)
			}
			pending = pending[1:]
			if _, failed := an.BuildGraph(pending); len(failed) > 0 {
				panic(fmt.Sprintf("ablation-analyzer: unexpected failures: %v", failed))
			}
		}
		st = an.Stats()
		return float64(st.GraphBuilds-before) / float64(commits), st
	}

	legacyPer, _ := run(true)
	incPer, st := run(false)
	r.Metrics["pending_changes"] = float64(n)
	r.Metrics["commits"] = float64(commits)
	r.Metrics["legacy_graph_builds_per_commit"] = legacyPer
	r.Metrics["incremental_graph_builds_per_commit"] = incPer
	r.Metrics["reduction_x"] = ratio(legacyPer, incPer)
	r.Metrics["reused_analyses"] = float64(st.ReusedAnalyses)
	r.Metrics["pairs_reused"] = float64(st.PairsReused)
	r.Metrics["pair_cache_hits"] = float64(st.PairCacheHits)
	r.Text = fmt.Sprintf(
		"%d independent pending changes, %d sequential commits, BuildGraph after each:\n"+
			"  wipe-on-head-move: %.1f graph builds/commit\n"+
			"  incremental:       %.1f graph builds/commit  (%.0fx fewer; %d analyses re-homed, %d pairs carried)\n",
		n, commits, legacyPer, incPer, ratio(legacyPer, incPer), st.ReusedAnalyses, st.PairsReused)
	return r
}

// AblationPlannerPrep measures the planner's incremental-epoch machinery
// (DESIGN.md §4f) against the legacy per-build path: one planning epoch over
// a chain of n mutually conflicting changes starts speculation builds of
// depth 1..n. The shared-prefix trie pays one incremental merge + analysis
// per build where the baseline re-merges every prefix from scratch, and the
// plan-fingerprint memo then skips the idle follow-up epochs entirely.
func AblationPlannerPrep(o Options) *Report {
	r := newReport("ablation-planner", "Ablation — planner shared-prefix preparation & plan memo (§6)")
	n := o.count(8, 12)

	run := func(legacy bool) planner.Stats {
		files := map[string]string{}
		for i := 0; i < n; i++ {
			dep := ""
			if i > 0 {
				dep = fmt.Sprintf(" deps=//d%02d:t%02d", i-1, i-1)
			}
			files[fmt.Sprintf("d%02d/BUILD", i)] = fmt.Sprintf("target t%02d srcs=f.go%s", i, dep)
			files[fmt.Sprintf("d%02d/f.go", i)] = "v1"
		}
		rp := repo.New(files)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
			<-ctx.Done() // hold the epoch open so every speculation is prepared
			return buildsys.ErrAborted
		})
		q := queue.New(1)
		an := conflict.New(rp)
		eng := speculation.New(predict.Static{Success: 0.95, Conflict: 0.05})
		ctrl := buildsys.NewController(4, runner)
		pl := planner.New(rp, q, an, eng, ctrl, planner.Config{
			Budget: n, MaxSpecDepth: n,
			LegacyPreparation: legacy, LegacyReplan: legacy,
		})
		for i := 0; i < n; i++ {
			c := &change.Change{
				ID: change.ID(fmt.Sprintf("c%02d", i)),
				Patch: repo.Patch{Changes: []repo.FileChange{{
					Path: fmt.Sprintf("d%02d/f.go", i), Op: repo.OpModify,
					BaseHash: repo.HashContent("v1"), NewContent: "v2",
				}}},
				BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
			}
			if err := q.Enqueue(c); err != nil {
				panic(err)
			}
		}
		// One planning epoch plus four idle follow-ups (the Run-loop shape).
		for i := 0; i < 5; i++ {
			if _, err := pl.Tick(ctx); err != nil {
				panic(err)
			}
		}
		return pl.Stats()
	}

	legacy := run(true)
	inc := run(false)
	legacyPer := ratio(float64(legacy.PrepOps()), float64(legacy.BuildsStarted))
	incPer := ratio(float64(inc.PrepOps()), float64(inc.BuildsStarted))
	r.Metrics["chain_depth"] = float64(n)
	r.Metrics["legacy_prep_ops_per_build"] = legacyPer
	r.Metrics["incremental_prep_ops_per_build"] = incPer
	r.Metrics["reduction_x"] = ratio(legacyPer, incPer)
	r.Metrics["prefix_hits"] = float64(inc.PrefixHits)
	r.Metrics["plans_skipped"] = float64(inc.PlansSkipped)
	r.Metrics["legacy_plans_computed"] = float64(legacy.PlansComputed)
	r.Text = fmt.Sprintf(
		"chain of %d conflicting changes, one epoch starts builds of depth 1..%d, then 4 idle epochs:\n"+
			"  legacy:      %.1f prep ops/build (%d analyses, %d merge units), %d plans computed\n"+
			"  incremental: %.1f prep ops/build (%d analyses, %d merge units; %d trie hits), %.0fx fewer;\n"+
			"               %d idle plans skipped by the input fingerprint\n",
		n, n,
		legacyPer, legacy.SnapshotAnalyses, legacy.PatchApplies, legacy.PlansComputed,
		incPer, inc.SnapshotAnalyses, inc.PatchApplies, inc.PrefixHits,
		ratio(legacyPer, incPer), inc.PlansSkipped)
	return r
}

// AblationReliability measures the reliability layer (DESIGN.md §4g) under
// an unreliable build fleet: every step of an otherwise-passing build
// suffers a deterministic injected transient with 5% probability. The
// LegacyNoRetry baseline rejects innocent changes whenever a decisive build
// flakes; with the layer on, in-place step retries absorb most transients
// and a verification re-run against the same snapshot catches the rest, so
// false rejections drop by orders of magnitude while master stays green and
// turnaround stays close to the fault-free run.
func AblationReliability(o Options) *Report {
	r := newReport("ablation-reliability", "Ablation — retry/quarantine under an unreliable build fleet (§4g)")
	const rate = 0.05
	w := workload.Generate(workload.Config{
		Seed: o.seed(), Count: o.count(300, 600), RatePerHour: 250,
	})

	cell := func(flakeRate float64, legacy bool) *sim.Result {
		s := strategies.NewSubmitQueue(w, w.OraclePredictor())
		return sim.Run(w, s, sim.Config{
			Workers: 150, UseAnalyzer: true,
			FlakePerStepRate: flakeRate, FlakeSeed: o.seed() + 99,
			LegacyNoRetry: legacy,
		})
	}

	clean := cell(0, false)
	legacy := cell(rate, true)
	retry := cell(rate, false)

	p50Clean := metrics.Percentile(clean.TurnaroundCommittedMin, 50)
	p50Retry := metrics.Percentile(retry.TurnaroundCommittedMin, 50)
	reduction := float64(legacy.FalseRejections)
	if retry.FalseRejections > 0 {
		reduction = ratio(float64(legacy.FalseRejections), float64(retry.FalseRejections))
	}
	r.Metrics["flake_per_step_rate"] = rate
	r.Metrics["false_rejections_legacy"] = float64(legacy.FalseRejections)
	r.Metrics["false_rejections_retry"] = float64(retry.FalseRejections)
	r.Metrics["reduction_x"] = reduction
	r.Metrics["flakes_injected_legacy"] = float64(legacy.FlakesInjected)
	r.Metrics["flakes_injected_retry"] = float64(retry.FlakesInjected)
	r.Metrics["step_retries"] = float64(retry.StepRetries)
	r.Metrics["flaky_verifications"] = float64(retry.FlakyVerifications)
	r.Metrics["green_violations"] = float64(clean.GreenViolations +
		legacy.GreenViolations + retry.GreenViolations)
	r.Metrics["p50_fault_free"] = p50Clean
	r.Metrics["p50_retry"] = p50Retry
	r.Metrics["p50_ratio"] = ratio(p50Retry, p50Clean)
	r.Metrics["committed_legacy"] = float64(legacy.Committed)
	r.Metrics["committed_retry"] = float64(retry.Committed)
	r.Text = fmt.Sprintf(
		"%d changes, 250/h, 150 workers, %.0f%% injected transient rate per step:\n"+
			"  legacy (no retry):  %d false rejections (%d flakes injected), %d committed\n"+
			"  retry+verification: %d false rejections (%d flakes injected; %d step retries,\n"+
			"                      %d verification re-runs), %d committed — %.0fx fewer\n"+
			"  P50 turnaround:     fault-free %.0f min → with faults+retry %.0f min (%.2fx)\n"+
			"  green violations across all cells: %.0f (must be 0)\n",
		len(w.Changes), rate*100,
		legacy.FalseRejections, legacy.FlakesInjected, legacy.Committed,
		retry.FalseRejections, retry.FlakesInjected, retry.StepRetries,
		retry.FlakyVerifications, retry.Committed, reduction,
		p50Clean, p50Retry, r.Metrics["p50_ratio"],
		r.Metrics["green_violations"])
	return r
}
