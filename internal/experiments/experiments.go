// Package experiments regenerates every figure and headline number of the
// paper's evaluation (§8) from the synthetic workload substrate: each
// ExpXX function runs the corresponding experiment and returns a Report with
// the rendered figure plus the key metrics, which cmd/sqsim prints and
// bench_test.go asserts on. See DESIGN.md's per-experiment index.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mastergreen/internal/metrics"
	"mastergreen/internal/predict"
	"mastergreen/internal/sim"
	"mastergreen/internal/strategies"
	"mastergreen/internal/workload"
)

// Options scales experiment cost.
type Options struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Quick shrinks workload sizes and sweep grids for fast benchmarking;
	// the full setting approximates the paper's sweep resolution.
	Quick bool
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// count picks a workload size.
func (o Options) count(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Report is one regenerated experiment.
type Report struct {
	ID      string
	Title   string
	Text    string             // rendered figure/table, terminal-friendly
	Metrics map[string]float64 // headline numbers for assertions
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

// rates and worker grids of the paper's Figs. 10–13.
func (o Options) rateGrid() []float64 {
	if o.Quick {
		return []float64{100, 300, 500}
	}
	return []float64{100, 200, 300, 400, 500}
}

func (o Options) workerGrid() []int {
	if o.Quick {
		return []int{100, 300, 500}
	}
	return []int{100, 200, 300, 400, 500}
}

// strategySet builds the comparison strategies over a workload. The
// SubmitQueue entry uses a logistic-regression model trained on a separate
// historical workload (never the evaluation one), as in §7.2.
func strategySet(w *workload.Workload, trained predict.Predictor) []sim.Strategy {
	return []sim.Strategy{
		strategies.NewOracle(w),
		strategies.NewSubmitQueue(w, trained),
		strategies.NewSpeculateAll(w),
		strategies.Optimistic{},
		strategies.SingleQueue{},
	}
}

// TrainPredictor fits the success and conflict models on a dedicated
// historical workload (70/30 methodology, §7.2) and returns the production
// predictor. The success model is trained on isolated build outcomes — the
// paper's decomposition keeps P_succ(C) (would C pass alone?) separate from
// P_conf(Ci,Cj); mixing eventual outcomes into P_succ would double-count
// conflict mass that Eqs. 4–5 already subtract explicitly.
func TrainPredictor(seed int64, n int) (predict.Learned, predict.Metrics, error) {
	return TrainPredictorOn(workload.Config{Seed: seed + 7777, Count: n, RatePerHour: 300})
}

// TrainPredictorOn trains the success/conflict models on a history drawn
// from the given workload distribution. Cells whose traffic differs
// structurally from the default stream (e.g. the adaptive-batching cell's
// reliable low-conflict changes) train on their own distribution, exactly
// as the production predictor trains on its own repo's history — a
// miscalibrated success prior makes the batcher's expected-cost model
// refuse batch sizes the traffic would support.
func TrainPredictorOn(cfg workload.Config) (predict.Learned, predict.Metrics, error) {
	seed := cfg.Seed
	hist := workload.Generate(cfg)
	X, y := hist.IsolatedTrainingData()
	trX, trY, vaX, vaY := predict.Split(X, y, 0.7, seed)
	sm, err := predict.Train(predict.SuccessFeatureNames, trX, trY, predict.TrainConfig{Epochs: 60})
	if err != nil {
		return predict.Learned{}, predict.Metrics{}, err
	}
	mt := predict.Evaluate(sm, vaX, vaY)
	cX, cy := hist.ConflictTrainingData(seed)
	cm, err := predict.Train(predict.ConflictFeatureNames, cX, cy, predict.TrainConfig{Epochs: 40})
	if err != nil {
		return predict.Learned{}, predict.Metrics{}, err
	}
	return predict.Learned{SuccessModel: sm, ConflictModel: cm}, mt, nil
}

// runCell simulates one (workload, strategy, workers) cell.
func runCell(w *workload.Workload, s sim.Strategy, workers int, analyzer bool) *sim.Result {
	return sim.Run(w, s, sim.Config{Workers: workers, UseAnalyzer: analyzer})
}

// ratio returns a/b guarding against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MetricsBlock renders the metrics map as an aligned block for the CLI.
func (r *Report) MetricsBlock() string {
	var b strings.Builder
	for _, k := range sortedKeys(r.Metrics) {
		fmt.Fprintf(&b, "  %-40s %10.4f\n", k, r.Metrics[k])
	}
	return b.String()
}

// percentiles used throughout the turnaround figures.
var pcts = []struct {
	name string
	p    float64
}{{"P50", 50}, {"P95", 95}, {"P99", 99}}

func pctOf(res *sim.Result, p float64) float64 {
	return metrics.Percentile(res.TurnaroundCommittedMin, p)
}
