package experiments

import (
	"strings"
	"testing"
)

// All experiment tests run in Quick mode; the bench harness exercises the
// full-scale versions.

func opts() Options { return Options{Seed: 1, Quick: true} }

func checkReport(t *testing.T, r *Report) {
	t.Helper()
	if r.ID == "" || r.Title == "" {
		t.Fatalf("incomplete report: %+v", r)
	}
	if strings.TrimSpace(r.Text) == "" {
		t.Fatalf("%s: empty text", r.ID)
	}
	if len(r.Metrics) == 0 {
		t.Fatalf("%s: no metrics", r.ID)
	}
	if r.MetricsBlock() == "" {
		t.Fatalf("%s: empty metrics block", r.ID)
	}
}

func TestFig1(t *testing.T) {
	r := Fig1(opts())
	checkReport(t, r)
	p2 := r.Metrics["iOS/p_real_conflict_n2"]
	if p2 < 0.01 || p2 > 0.15 {
		t.Errorf("iOS p2 = %v, want ≈0.05", p2)
	}
	// The curve must grow with concurrency wherever both points exist.
	if p8, ok := r.Metrics["iOS/p_real_conflict_n8"]; ok && p8 <= p2 {
		t.Errorf("curve not increasing: p2=%v p8=%v", p2, p8)
	}
}

func TestFig2(t *testing.T) {
	r := Fig2(opts())
	checkReport(t, r)
	p1 := r.Metrics["p_breakage_1h"]
	p10 := r.Metrics["p_breakage_10h"]
	p100 := r.Metrics["p_breakage_100h"]
	if !(p1 < p10 && p10 < p100) {
		t.Errorf("breakage not increasing: %v %v %v", p1, p10, p100)
	}
	if p10 < 0.08 || p10 > 0.25 {
		t.Errorf("p(10h) = %v, paper: 10–20%%", p10)
	}
}

func TestFig9(t *testing.T) {
	r := Fig9(opts())
	checkReport(t, r)
	med := r.Metrics["iOS/median_min"]
	if med < 20 || med > 35 {
		t.Errorf("median = %v, want ≈27", med)
	}
}

func TestFig10(t *testing.T) {
	r := Fig10(opts())
	checkReport(t, r)
	// With 2000 workers, median Oracle turnaround is near the build-duration
	// median; contention only adds serialization cost at higher rates.
	p50lo := r.Metrics["p50_rate100"]
	p50hi := r.Metrics["p50_rate500"]
	if p50lo < 15 || p50lo > 90 {
		t.Errorf("p50@100 = %v", p50lo)
	}
	if p50hi < p50lo-5 {
		t.Errorf("higher rate should not be faster: %v vs %v", p50hi, p50lo)
	}
}

func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	r := Fig11(opts())
	checkReport(t, r)
	// SubmitQueue stays within a small multiple of Oracle at the well
	// provisioned corner, and the baselines are much worse there.
	sq := r.Metrics["SubmitQueue/P95/rate300/w500"]
	sa := r.Metrics["Speculate-all/P95/rate300/w500"]
	op := r.Metrics["Optimistic/P95/rate300/w500"]
	if sq > 5 {
		t.Errorf("SubmitQueue P95 ratio = %v, want small multiple of Oracle", sq)
	}
	if sa < sq || op < sq {
		t.Errorf("baselines should trail SubmitQueue: sq=%v sa=%v op=%v", sq, sa, op)
	}
}

func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	r := Fig12(opts())
	checkReport(t, r)
	sq := r.Metrics["SubmitQueue/rate300/w500"]
	single := r.Metrics["Single-Queue/rate300/w500"]
	if sq < 0.4 || sq > 1.05 {
		t.Errorf("SubmitQueue throughput ratio = %v", sq)
	}
	if single > sq {
		t.Errorf("Single-Queue throughput %v should trail SubmitQueue %v", single, sq)
	}
}

func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("grid sweep")
	}
	r := Fig13(opts())
	checkReport(t, r)
	// The conflict analyzer must help the Oracle substantially at some cell.
	improved := false
	for k, v := range r.Metrics {
		if strings.HasPrefix(k, "Oracle/") && v > 0.2 {
			improved = true
			break
		}
	}
	if !improved {
		t.Error("conflict analyzer shows no Oracle improvement anywhere")
	}
}

func TestFig14(t *testing.T) {
	r := Fig14(opts())
	checkReport(t, r)
	g := r.Metrics["overall_green_pct"]
	if g < 35 || g > 70 {
		t.Errorf("green%% = %v, paper: 52%%", g)
	}
}

func TestModelAccuracyReport(t *testing.T) {
	r := ModelAccuracy(opts())
	checkReport(t, r)
	if r.Metrics["isolated_accuracy"] < 0.95 {
		t.Errorf("isolated accuracy = %v", r.Metrics["isolated_accuracy"])
	}
	if r.Metrics["final_accuracy"] < 0.80 {
		t.Errorf("final accuracy = %v", r.Metrics["final_accuracy"])
	}
}

func TestSingleQueueBacklog(t *testing.T) {
	r := SingleQueueBacklog(opts())
	checkReport(t, r)
	if d := r.Metrics["analytic_last_turnaround_days"]; d < 20 {
		t.Errorf("analytic = %v days, paper: over 20", d)
	}
	if d := r.Metrics["sim_last_turnaround_days"]; d < 0.5 {
		t.Errorf("sim backlog = %v days, expected growth", d)
	}
}

func TestAblationSelection(t *testing.T) {
	r := AblationSelection(opts())
	checkReport(t, r)
	if r.Metrics["top_k_agreement"] < 0.999 {
		t.Errorf("greedy/exhaustive agreement = %v", r.Metrics["top_k_agreement"])
	}
}

func TestAblationConflictDetection(t *testing.T) {
	r := AblationConflictDetection(opts())
	checkReport(t, r)
	if r.Metrics["union-graph_correct"] != 3 || r.Metrics["equation-6_correct"] != 3 {
		t.Errorf("exact methods wrong: %v", r.Metrics)
	}
	if r.Metrics["name-intersection_correct"] != 2 {
		t.Errorf("name intersection should miss exactly the Fig. 8 case: %v",
			r.Metrics["name-intersection_correct"])
	}
}

func TestAblationIncremental(t *testing.T) {
	r := AblationIncremental(opts())
	checkReport(t, r)
	if r.Metrics["savings_fraction"] <= 0 {
		t.Errorf("no incremental savings: %v", r.Metrics)
	}
}

func TestAblationSpecDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := AblationSpecDepth(opts())
	checkReport(t, r)
	d1 := r.Metrics["norm_p95_depth1"]
	d16 := r.Metrics["norm_p95_depth16"]
	if d16 > d1 {
		t.Errorf("deeper speculation should not hurt: depth1=%v depth16=%v", d1, d16)
	}
}

func TestAblationBatching(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := AblationBatching(opts())
	checkReport(t, r)
	// Pairing changes must save builds at batch size 2. Larger batches are
	// not asserted: on this conflict-heavy stream bisect-on-failure overhead
	// can exceed the savings — the very tradeoff the ablation demonstrates.
	b1 := r.Metrics["builds_batch1"]
	b2 := r.Metrics["builds_batch2"]
	if b2 >= b1 {
		t.Errorf("batching should reduce builds: batch1=%v batch2=%v", b1, b2)
	}
}

func TestAblationPreemptionGrace(t *testing.T) {
	r := AblationPreemptionGrace(opts())
	checkReport(t, r)
	if r.Metrics["aborted_with_grace"] > r.Metrics["aborted_without_grace"] {
		t.Errorf("grace should not increase aborts: %v", r.Metrics)
	}
}

func TestAblationReordering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	r := AblationReordering(opts())
	checkReport(t, r)
	if r.Metrics["green_violations"] != 0 {
		t.Fatalf("reordering broke the mainline: %v", r.Metrics["green_violations"])
	}
	if r.Metrics["p50_reorder"] > r.Metrics["p50_base"]*1.2 {
		t.Errorf("reordering hurt P50 badly: %v vs %v",
			r.Metrics["p50_reorder"], r.Metrics["p50_base"])
	}
}

func TestAblationBoosting(t *testing.T) {
	r := AblationBoosting(opts())
	checkReport(t, r)
	if r.Metrics["success_gb_accuracy"] < r.Metrics["success_lr_accuracy"]-0.05 {
		t.Errorf("boosting far behind LR: %v vs %v",
			r.Metrics["success_gb_accuracy"], r.Metrics["success_lr_accuracy"])
	}
	if r.Metrics["conflict_gb_auc"] < 0.7 {
		t.Errorf("boosted conflict AUC = %v", r.Metrics["conflict_gb_auc"])
	}
}

func TestAblationAnalyzerCache(t *testing.T) {
	r := AblationAnalyzerCache(opts())
	checkReport(t, r)
	if r.Metrics["reduction_x"] < 5 {
		t.Errorf("graph-build reduction = %vx, want >= 5x", r.Metrics["reduction_x"])
	}
	if r.Metrics["incremental_graph_builds_per_commit"] > r.Metrics["legacy_graph_builds_per_commit"] {
		t.Errorf("incremental costs more than legacy: %v", r.Metrics)
	}
	if r.Metrics["reused_analyses"] <= 0 {
		t.Errorf("no analyses re-homed: %v", r.Metrics)
	}
}
