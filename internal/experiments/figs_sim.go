package experiments

import (
	"fmt"
	"time"

	"mastergreen/internal/metrics"
	"mastergreen/internal/sim"
	"mastergreen/internal/strategies"
	"mastergreen/internal/textplot"
	"mastergreen/internal/workload"
)

// evalWorkload builds the evaluation change stream for a rate, mirroring
// §8.1: the paper replays recorded iOS changes at 100–500 changes/hour.
func evalWorkload(o Options, rate float64) *workload.Workload {
	n := o.count(500, 1500)
	return workload.Generate(workload.IOSConfig(o.seed()+int64(rate), n, rate))
}

// Fig10 reproduces Figure 10: the CDF of Oracle turnaround time for 100–500
// changes/hour with abundant workers (the paper uses 2000, i.e. effectively
// no contention), isolating the cost of serializing conflicting changes.
func Fig10(o Options) *Report {
	r := newReport("fig10", "Fig. 10 — CDF of Oracle turnaround (minutes), 2000 workers")
	var series []textplot.Series
	for _, rate := range o.rateGrid() {
		w := evalWorkload(o, rate)
		res := runCell(w, strategies.NewOracle(w), 2000, true)
		cdf := metrics.NewCDF(res.TurnaroundCommittedMin)
		var xs, ys []float64
		for m := 0.0; m <= 120; m += 5 {
			xs = append(xs, m)
			ys = append(ys, cdf.At(m))
		}
		series = append(series, textplot.Series{Name: fmt.Sprintf("%.0f/h", rate), X: xs, Y: ys})
		s := res.Summary()
		r.Metrics[fmt.Sprintf("p50_rate%.0f", rate)] = s.P50
		r.Metrics[fmt.Sprintf("p95_rate%.0f", rate)] = s.P95
	}
	r.Text = textplot.LinePlot(r.Title, 60, 12, series...)
	return r
}

// Fig11 reproduces Figure 11: P50/P95/P99 turnaround normalized against
// Oracle, for SubmitQueue, Speculate-all, and Optimistic, across the
// {changes/hour} × {workers} grid.
func Fig11(o Options) *Report {
	r := newReport("fig11", "Fig. 11 — turnaround normalized against Oracle")
	trained, _, err := TrainPredictor(o.seed(), o.count(4000, 12000))
	if err != nil {
		r.Text = "train failed: " + err.Error()
		return r
	}
	rates := o.rateGrid()
	workers := o.workerGrid()

	type cellKey struct {
		strat   string
		rate    float64
		workers int
		pct     string
	}
	cells := map[cellKey]float64{}

	for _, rate := range rates {
		w := evalWorkload(o, rate)
		for _, wk := range workers {
			oracle := runCell(w, strategies.NewOracle(w), wk, true)
			for _, s := range []sim.Strategy{
				strategies.NewSubmitQueue(w, trained),
				strategies.NewSpeculateAll(w),
				strategies.Optimistic{},
			} {
				res := runCell(w, s, wk, true)
				for _, pc := range pcts {
					cells[cellKey{s.Name(), rate, wk, pc.name}] =
						ratio(pctOf(res, pc.p), pctOf(oracle, pc.p))
				}
			}
		}
	}

	var text string
	for _, strat := range []string{"SubmitQueue", "Speculate-all", "Optimistic"} {
		for _, pc := range pcts {
			rows := make([][]float64, 0, len(rates))
			rowLabels := make([]string, 0, len(rates))
			colLabels := make([]string, 0, len(workers))
			for _, wk := range workers {
				colLabels = append(colLabels, fmt.Sprintf("%dw", wk))
			}
			// Paper's heatmaps list the highest rate on top.
			for i := len(rates) - 1; i >= 0; i-- {
				rate := rates[i]
				rowLabels = append(rowLabels, fmt.Sprintf("%.0f/h", rate))
				row := make([]float64, 0, len(workers))
				for _, wk := range workers {
					v := cells[cellKey{strat, rate, wk, pc.name}]
					row = append(row, v)
					r.Metrics[fmt.Sprintf("%s/%s/rate%.0f/w%d", strat, pc.name, rate, wk)] = v
				}
				rows = append(rows, row)
			}
			text += textplot.Heatmap(
				fmt.Sprintf("%s %s turnaround / Oracle", strat, pc.name),
				rowLabels, colLabels, rows) + "\n"
		}
	}
	r.Text = text
	return r
}

// Fig12 reproduces Figure 12: average throughput normalized against Oracle
// at 300/400/500 changes per hour as workers scale.
func Fig12(o Options) *Report {
	r := newReport("fig12", "Fig. 12 — average throughput normalized against Oracle")
	trained, _, err := TrainPredictor(o.seed(), o.count(4000, 12000))
	if err != nil {
		r.Text = "train failed: " + err.Error()
		return r
	}
	rates := []float64{300, 400, 500}
	if o.Quick {
		rates = []float64{300, 500}
	}
	workers := o.workerGrid()

	var text string
	for _, rate := range rates {
		w := evalWorkload(o, rate)
		groups := []textplot.BarGroup{}
		names := []string{"SubmitQueue", "Speculate-all", "Optimistic", "Single-Queue", "Oracle"}
		values := map[string][]float64{}
		cats := make([]string, 0, len(workers))
		for _, wk := range workers {
			cats = append(cats, fmt.Sprintf("%dw", wk))
			oracle := runCell(w, strategies.NewOracle(w), wk, true)
			values["Oracle"] = append(values["Oracle"], 1.0)
			for _, s := range []sim.Strategy{
				strategies.NewSubmitQueue(w, trained),
				strategies.NewSpeculateAll(w),
				strategies.Optimistic{},
				strategies.SingleQueue{},
			} {
				res := runCell(w, s, wk, true)
				v := ratio(res.ThroughputPerHour, oracle.ThroughputPerHour)
				values[s.Name()] = append(values[s.Name()], v)
				r.Metrics[fmt.Sprintf("%s/rate%.0f/w%d", s.Name(), rate, wk)] = v
			}
		}
		for _, n := range names {
			groups = append(groups, textplot.BarGroup{Name: n, Values: values[n]})
		}
		text += textplot.Bars(fmt.Sprintf("throughput / Oracle @ %.0f changes/h", rate),
			cats, 30, groups...) + "\n"
	}
	r.Text = text
	return r
}

// Fig13 reproduces Figure 13: the P95 turnaround improvement from enabling
// the conflict analyzer, per approach, at 300–500 changes/hour.
func Fig13(o Options) *Report {
	r := newReport("fig13", "Fig. 13 — P95 turnaround improvement from the conflict analyzer")
	trained, _, err := TrainPredictor(o.seed(), o.count(4000, 12000))
	if err != nil {
		r.Text = "train failed: " + err.Error()
		return r
	}
	rates := []float64{300, 400, 500}
	workers := o.workerGrid()
	if o.Quick {
		rates = []float64{300, 500}
		// The analyzer-off cells at large worker counts are by far the most
		// expensive simulations in the whole harness (every pair conflicts,
		// so build identities are long chains); the improvement trend is
		// already visible at two worker points.
		workers = []int{100, 300}
	}

	var text string
	for _, rate := range rates {
		w := evalWorkload(o, rate)
		cats := make([]string, 0, len(workers))
		values := map[string][]float64{}
		names := []string{"Oracle", "SubmitQueue", "Speculate-all", "Optimistic", "Single-Queue"}
		mk := func(name string) sim.Strategy {
			switch name {
			case "Oracle":
				return strategies.NewOracle(w)
			case "SubmitQueue":
				return strategies.NewSubmitQueue(w, trained)
			case "Speculate-all":
				return strategies.NewSpeculateAll(w)
			case "Optimistic":
				return strategies.Optimistic{}
			default:
				return strategies.SingleQueue{}
			}
		}
		for _, wk := range workers {
			cats = append(cats, fmt.Sprintf("%dw", wk))
			for _, name := range names {
				with := runCell(w, mk(name), wk, true)
				without := runCell(w, mk(name), wk, false)
				impr := 0.0
				if p := pctOf(without, 95); p > 0 {
					impr = (p - pctOf(with, 95)) / p
				}
				values[name] = append(values[name], impr)
				r.Metrics[fmt.Sprintf("%s/rate%.0f/w%d", name, rate, wk)] = impr
			}
		}
		var groups []textplot.BarGroup
		for _, n := range names {
			groups = append(groups, textplot.BarGroup{Name: n, Values: values[n]})
		}
		text += textplot.Bars(fmt.Sprintf("P95 improvement @ %.0f changes/h", rate),
			cats, 30, groups...) + "\n"
	}
	r.Text = text
	return r
}

// SingleQueueBacklog reproduces the §2.2 back-of-envelope: a single queue at
// 1000 changes/day with 30-minute builds pushes the last enqueued change's
// turnaround past 20 days. We verify the analytic claim and simulate a
// scaled-down version.
func SingleQueueBacklog(o Options) *Report {
	r := newReport("t2", "§2.2 — single-queue turnaround blow-up")
	// Analytic: day one enqueues 1000 changes; serial processing does 48/day.
	const perDay = 1000.0
	const buildMin = 30.0
	processedPerDay := 24 * 60 / buildMin
	lastTurnaroundDays := perDay / processedPerDay
	r.Metrics["analytic_last_turnaround_days"] = lastTurnaroundDays

	// Simulated (scaled 1/10, fully conflicting so the queue is truly single):
	n := o.count(60, 100)
	w := workload.Generate(workload.Config{
		Seed: o.seed(), Count: n, RatePerHour: 1000.0 / 24,
		Components: 1, ComponentsPerChange: 1,
		ConflictWindow: 1000 * time.Hour,
		DurMedianMin:   30, DurSigma: 0.001, DurMinMin: 29, DurMaxMin: 31,
	})
	res := runCell(w, strategies.SingleQueue{}, 50, true)
	last := metrics.Percentile(res.TurnaroundAllMin, 100) / 60 / 24
	r.Metrics["sim_last_turnaround_days"] = last
	r.Text = fmt.Sprintf(
		"analytic: 1000 changes/day × 30 min serial → last change waits ≈ %.1f days (paper: 'over 20 days')\n"+
			"simulated (%d changes at same rate): last turnaround = %.2f days and growing linearly with backlog\n",
		lastTurnaroundDays, n, last)
	return r
}
