package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"mastergreen/internal/metrics"
	"mastergreen/internal/predict"
	"mastergreen/internal/textplot"
	"mastergreen/internal/workload"
)

// Fig1 reproduces Figure 1: the probability of real conflicts as the number
// of concurrent and potentially conflicting changes increases, for the iOS
// and Android monorepo presets.
func Fig1(o Options) *Report {
	r := newReport("fig1", "Fig. 1 — P(real conflict) vs #concurrent potentially-conflicting changes")
	n := o.count(6000, 20000)
	ns := []int{2, 4, 6, 8, 10, 12, 14, 16}

	series := make([]textplot.Series, 0, 2)
	for _, plat := range []struct {
		name string
		cfg  workload.Config
	}{
		{"iOS", workload.IOSConfig(o.seed(), n, 600)},
		{"Android", workload.AndroidConfig(o.seed()+1, n, 600)},
	} {
		w := workload.Generate(plat.cfg)
		xs := make([]float64, 0, len(ns))
		ys := make([]float64, 0, len(ns))
		for _, k := range ns {
			p, trials := realConflictProbAt(w, k)
			if trials < 20 {
				continue // not enough dense groups at this k
			}
			xs = append(xs, float64(k))
			ys = append(ys, p)
			r.Metrics[fmt.Sprintf("%s/p_real_conflict_n%d", plat.name, k)] = p
		}
		series = append(series, textplot.Series{Name: plat.name, X: xs, Y: ys})
	}
	r.Text = textplot.LinePlot(r.Title, 60, 12, series...)
	return r
}

// realConflictProbAt estimates, over all changes with at least k−1 earlier
// concurrent potential conflicters, the probability the k-th change really
// conflicts with one of the first k−1 (the Fig. 1 definition).
func realConflictProbAt(w *workload.Workload, k int) (p float64, trials int) {
	hits := 0
	for _, c := range w.Changes {
		var pot []int
		for j := range c.PotentialConflicts {
			if j < c.Index {
				pot = append(pot, j)
			}
		}
		sort.Ints(pot) // pot[:k-1] below must pick the earliest conflicters, not a map-ordered subset
		if len(pot) < k-1 {
			continue
		}
		trials++
		conflicted := false
		for _, j := range pot[:k-1] {
			if c.RealConflicts[j] {
				conflicted = true
				break
			}
		}
		if conflicted {
			hits++
		}
	}
	if trials == 0 {
		return 0, 0
	}
	return float64(hits) / float64(trials), trials
}

// Fig2 reproduces Figure 2: the probability of a mainline breakage as change
// staleness increases (log-scaled 0.1 h – 100 h). The paper measured this on
// a year of production data; we substitute a constant-hazard model — each
// hour of staleness accumulates risk from conflicting commits landing — and
// regenerate the curve with Monte Carlo sampling so the figure carries
// realistic estimation noise.
func Fig2(o Options) *Report {
	r := newReport("fig2", "Fig. 2 — P(mainline breakage) vs change staleness (hours, log scale)")
	rng := rand.New(rand.NewSource(o.seed()))
	samples := o.count(2000, 10000)

	stalenessHours := []float64{0.1, 0.3, 1, 3, 10, 30, 100}
	xs := make([]float64, 0, len(stalenessHours))
	ys := make([]float64, 0, len(stalenessHours))
	for _, h := range stalenessHours {
		p := workload.StalenessBreakageProb(time.Duration(h*float64(time.Hour)), 0)
		broke := 0
		for i := 0; i < samples; i++ {
			if rng.Float64() < p {
				broke++
			}
		}
		emp := float64(broke) / float64(samples)
		xs = append(xs, logish(h))
		ys = append(ys, emp)
		r.Metrics[fmt.Sprintf("p_breakage_%gh", h)] = emp
	}
	r.Text = textplot.LinePlot(r.Title+" (x = log10 h)", 60, 12,
		textplot.Series{Name: "iOS/Android", X: xs, Y: ys})
	return r
}

func logish(h float64) float64 {
	// log10 without importing math for one call site's readability.
	l := 0.0
	for h >= 10 {
		h /= 10
		l++
	}
	for h < 1 {
		h *= 10
		l--
	}
	// linear interpolation within the decade is fine for plotting
	return l + (h-1)/9
}

// Fig9 reproduces Figure 9: the CDF of build durations for the iOS and
// Android monorepos (log-normal fit: median ≈ 27 min, truncated at 2 h).
func Fig9(o Options) *Report {
	r := newReport("fig9", "Fig. 9 — CDF of build duration (minutes)")
	n := o.count(5000, 20000)
	series := make([]textplot.Series, 0, 2)
	for _, plat := range []struct {
		name string
		cfg  workload.Config
	}{
		{"iOS", workload.IOSConfig(o.seed(), n, 300)},
		{"Android", workload.AndroidConfig(o.seed()+1, n, 300)},
	} {
		w := workload.Generate(plat.cfg)
		var mins []float64
		for _, c := range w.Changes {
			mins = append(mins, c.Duration.Minutes())
		}
		cdf := metrics.NewCDF(mins)
		var xs, ys []float64
		for m := 0.0; m <= 120; m += 5 {
			xs = append(xs, m)
			ys = append(ys, cdf.At(m))
		}
		series = append(series, textplot.Series{Name: plat.name, X: xs, Y: ys})
		s := metrics.Summarize(mins)
		r.Metrics[plat.name+"/median_min"] = s.P50
		r.Metrics[plat.name+"/p95_min"] = s.P95
	}
	r.Text = textplot.LinePlot(r.Title, 60, 12, series...)
	return r
}

// Fig14 reproduces Figure 14: the state of the iOS mainline prior to
// SubmitQueue over one week — per-hour green percentage under trunk-based
// development, where faulty commits land and stay red until detected and
// rolled back. Calibrated to the paper's "green only 52% of the time".
func Fig14(o Options) *Report {
	r := newReport("fig14", "Fig. 14 — mainline green %% per hour, trunk-based (one week)")
	rng := rand.New(rand.NewSource(o.seed()))

	const week = 7 * 24 * time.Hour
	// Diurnal commit rate: 4/h overnight to ~28/h mid-day.
	rate := func(t time.Duration) float64 {
		hod := float64(t%(24*time.Hour)) / float64(time.Hour)
		base := 4.0
		if hod >= 9 && hod <= 19 {
			base = 28
		} else if hod >= 7 && hod < 9 || hod > 19 && hod <= 22 {
			base = 12
		}
		return base
	}
	// Per-landed-change breakage probability (stale bases, untested
	// interactions) and mean time to detect + roll back.
	const pBreak = 0.035
	meanRepair := 75 * time.Minute

	type redSpan struct{ from, to time.Duration }
	var spans []redSpan
	for t := time.Duration(0); t < week; {
		lam := rate(t)
		gap := time.Duration(rng.ExpFloat64() / lam * float64(time.Hour))
		t += gap
		if t >= week {
			break
		}
		if rng.Float64() < pBreak {
			repair := time.Duration(rng.ExpFloat64() * float64(meanRepair))
			spans = append(spans, redSpan{t, t + repair})
		}
	}
	// Per-hour green fraction.
	ts := metrics.NewTimeSeries(time.Hour)
	step := 5 * time.Minute
	for t := time.Duration(0); t < week; t += step {
		red := false
		for _, s := range spans {
			if t >= s.from && t < s.to {
				red = true
				break
			}
		}
		g := 1.0
		if red {
			g = 0
		}
		ts.Add(t, g, 1)
	}
	ratios := ts.Ratios()
	var xs, ys []float64
	green := 0.0
	for i, v := range ratios {
		xs = append(xs, float64(i))
		ys = append(ys, v*100)
		green += v
	}
	overall := green / float64(len(ratios)) * 100
	r.Metrics["overall_green_pct"] = overall
	r.Metrics["breakages"] = float64(len(spans))
	r.Text = textplot.LinePlot(r.Title, 70, 12,
		textplot.Series{Name: "green % (paper: 52% overall)", X: xs, Y: ys}) +
		fmt.Sprintf("overall green: %.1f%% (paper: 52%%)\n", overall)
	return r
}

// ModelAccuracy reproduces the §7.2 numbers: ~97% validation accuracy on
// isolated build outcomes, the top positive/negative features, and an RFE
// pass to a minimal feature set.
func ModelAccuracy(o Options) *Report {
	r := newReport("model", "§7.2 — logistic-regression model accuracy and features")
	n := o.count(6000, 20000)
	w := workload.Generate(workload.Config{Seed: o.seed(), Count: n, RatePerHour: 300})

	X, y := w.IsolatedTrainingData()
	trX, trY, vaX, vaY := predict.Split(X, y, 0.7, o.seed())
	m, err := predict.Train(predict.SuccessFeatureNames, trX, trY, predict.TrainConfig{Epochs: 60})
	if err != nil {
		r.Text = "train failed: " + err.Error()
		return r
	}
	iso := predict.Evaluate(m, vaX, vaY)
	r.Metrics["isolated_accuracy"] = iso.Accuracy

	Xf, yf := w.TrainingData()
	trXf, trYf, vaXf, vaYf := predict.Split(Xf, yf, 0.7, o.seed())
	mf, err := predict.Train(predict.SuccessFeatureNames, trXf, trYf, predict.TrainConfig{Epochs: 60})
	if err != nil {
		r.Text = "train failed: " + err.Error()
		return r
	}
	fin := predict.Evaluate(mf, vaXf, vaYf)
	r.Metrics["final_accuracy"] = fin.Accuracy

	rm, kept, err := predict.RFE(predict.SuccessFeatureNames, trX, trY, predict.TrainConfig{Epochs: 30}, 8)
	if err == nil {
		keptX := make([][]float64, len(vaX))
		for i, row := range vaX {
			pr := make([]float64, len(kept))
			for k, c := range kept {
				pr[k] = row[c]
			}
			keptX[i] = pr
		}
		r.Metrics["rfe8_accuracy"] = predict.Evaluate(rm, keptX, vaY).Accuracy
	}

	var rows [][]string
	for i, imp := range m.Importances() {
		if i >= 8 {
			break
		}
		rows = append(rows, []string{imp.Name, fmt.Sprintf("%+.3f", imp.Weight)})
	}
	r.Text = fmt.Sprintf(
		"isolated-outcome accuracy: %.3f (paper: ~0.97)\nfinal-outcome accuracy:    %.3f\n",
		iso.Accuracy, fin.Accuracy) +
		textplot.Table("top features", []string{"feature", "weight"}, rows)
	return r
}
