package experiments

import (
	"fmt"
	"sort"

	"mastergreen/internal/metrics"
	"mastergreen/internal/sim"
	"mastergreen/internal/strategies"
	"mastergreen/internal/workload"
)

// AblationLeanCI measures the lean-CI compute layer (DESIGN.md §4j): the
// SubmitQueue strategy on the PR 6 baseline configuration versus the same
// strategy with obsolete-build pruning, and with pruning plus predictor-gated
// build skipping. The headline is fleet worker-minutes per committed change —
// the lean cell must cut it by at least 30% while holding P50 turnaround
// within 1.05x and committing the exact same change set with zero green
// violations. Skipping is sound by construction (the commit-gating decisive
// build always runs), so a wrong skip costs a restart, never a red mainline.
func AblationLeanCI(o Options) *Report {
	r := newReport("ablation-leanci", "Lean CI — obsolete-build pruning + predictor-gated skipping (§4j)")
	w := workload.Generate(workload.Config{
		Seed: o.seed(), Count: o.count(300, 600), RatePerHour: 250,
	})
	// The production configuration: a logistic model trained on a separate
	// historical workload (§7.2). An imperfect predictor is what makes the
	// baseline hedge — the oracle never plans a zero-value reject branch, so
	// it has no waste for skipping to remove.
	pred, _, err := TrainPredictor(o.seed(), o.count(2000, 6000))
	if err != nil {
		r.Text = err.Error()
		return r
	}

	// The fleet is provisioned for peak speculation (§4.2 plans one build
	// per worker): that is the regime the lean layer targets, because the
	// baseline fills every idle worker with deep low-probability tree nodes
	// whose results are overwhelmingly falsified before use.
	workers := o.count(250, 400)
	cell := func(prune bool, skip float64) (*sim.Result, *strategies.Speculative) {
		s := strategies.NewSubmitQueue(w, pred)
		s.Engine.SkipThreshold = skip
		res := sim.Run(w, s, sim.Config{
			Workers: workers, UseAnalyzer: true, PruneObsolete: prune,
		})
		return res, s
	}
	base, _ := cell(false, 0)
	prune, _ := cell(true, 0)
	// τ = 0.80: hedges for predecessors ≥80% likely to commit are skipped,
	// and non-modal tree nodes whose P_needed decays to ≤20% are never
	// built. The decisive build still gates every commit, so the only cost
	// of a wrong skip is a restart — measured by the P50 ratio below.
	lean, leanStrat := cell(true, 0.80)

	sameSet := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		as := append([]int(nil), a...)
		bs := append([]int(nil), b...)
		sort.Ints(as)
		sort.Ints(bs)
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return true
	}

	p50Base := metrics.Percentile(base.TurnaroundCommittedMin, 50)
	p50Lean := metrics.Percentile(lean.TurnaroundCommittedMin, 50)
	reduction := 1 - ratio(lean.WorkerMinutesPerCommit, base.WorkerMinutesPerCommit)
	wasteRate := func(res *sim.Result) float64 {
		return ratio(res.WorkerBusyWasted.Minutes(), res.WorkerBusy.Minutes())
	}

	r.Metrics["worker_min_per_commit_base"] = base.WorkerMinutesPerCommit
	r.Metrics["worker_min_per_commit_prune"] = prune.WorkerMinutesPerCommit
	r.Metrics["worker_min_per_commit_lean"] = lean.WorkerMinutesPerCommit
	r.Metrics["reduction_frac"] = reduction
	r.Metrics["waste_rate_base"] = wasteRate(base)
	r.Metrics["waste_rate_lean"] = wasteRate(lean)
	r.Metrics["builds_pruned"] = float64(prune.BuildsPruned + lean.BuildsPruned)
	r.Metrics["branches_skipped"] = float64(leanStrat.SkippedBranches)
	r.Metrics["builds_skipped"] = float64(leanStrat.SkippedBuilds)
	r.Metrics["p50_base"] = p50Base
	r.Metrics["p50_lean"] = p50Lean
	r.Metrics["p50_ratio"] = ratio(p50Lean, p50Base)
	r.Metrics["green_violations"] = float64(base.GreenViolations +
		prune.GreenViolations + lean.GreenViolations)
	r.Metrics["identical_committed_sets_prune"] = boolF(sameSet(base.CommittedChanges, prune.CommittedChanges))
	r.Metrics["identical_committed_sets_lean"] = boolF(sameSet(base.CommittedChanges, lean.CommittedChanges))
	r.Metrics["committed"] = float64(lean.Committed)

	r.Text = fmt.Sprintf(
		"%d changes, 250/h, %d workers, SubmitQueue with the trained predictor:\n"+
			"  worker-min/commit:  base %.1f → prune %.1f → prune+skip %.1f  (%.0f%% less)\n"+
			"  waste rate:         base %.0f%% → prune+skip %.0f%%\n"+
			"  builds pruned:      %.0f; branch points skipped: %d; low-value nodes skipped: %d\n"+
			"  P50 turnaround:     base %.0f min → prune+skip %.0f min (%.2fx)\n"+
			"  green violations across all cells: %d (must be 0); committed sets identical: %v\n",
		len(w.Changes), workers,
		base.WorkerMinutesPerCommit, prune.WorkerMinutesPerCommit,
		lean.WorkerMinutesPerCommit, reduction*100,
		wasteRate(base)*100, wasteRate(lean)*100,
		r.Metrics["builds_pruned"], leanStrat.SkippedBranches, leanStrat.SkippedBuilds,
		p50Base, p50Lean, r.Metrics["p50_ratio"],
		base.GreenViolations+prune.GreenViolations+lean.GreenViolations,
		sameSet(base.CommittedChanges, lean.CommittedChanges))
	return r
}
