package experiments

import "testing"

// TestAblationLeanCI is the lean-CI acceptance gate (DESIGN.md §4j): pruning
// plus predictor-gated skipping must cut fleet worker-minutes per committed
// change by at least 30% while holding P50 turnaround within 1.05x of the
// baseline, committing the identical change set, and never violating
// greenness (quick scale; BENCH_leanci.json records the full 600-change run,
// which clears the same floors).
func TestAblationLeanCI(t *testing.T) {
	r := AblationLeanCI(opts())
	checkReport(t, r)
	if r.Metrics["green_violations"] != 0 {
		t.Fatalf("green violations: %.0f\n%s", r.Metrics["green_violations"], r.Text)
	}
	if r.Metrics["identical_committed_sets_prune"] != 1 {
		t.Fatalf("pruning changed the committed set:\n%s", r.Text)
	}
	if r.Metrics["identical_committed_sets_lean"] != 1 {
		t.Fatalf("skipping changed the committed set:\n%s", r.Text)
	}
	if r.Metrics["branches_skipped"] <= 0 || r.Metrics["builds_skipped"] <= 0 {
		t.Fatalf("skip machinery idle in the lean cell:\n%s", r.Text)
	}
	if testing.Short() {
		t.Skip("headline gates need the full quick simulation margins")
	}
	if got := r.Metrics["reduction_frac"]; got < 0.30 {
		t.Fatalf("compute reduction %.1f%%, want >= 30%%:\n%s", got*100, r.Text)
	}
	if got := r.Metrics["p50_ratio"]; got > 1.05 {
		t.Fatalf("P50 turnaround ratio %.3f, want <= 1.05:\n%s", got, r.Text)
	}
}
