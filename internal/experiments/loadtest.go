package experiments

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"mastergreen/internal/api"
	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/events"
	"mastergreen/internal/loadgen"
	"mastergreen/internal/repo"
)

// loadtestStack is one live serving stack: a core service behind the real
// api.Server on a localhost TCP listener, with admission control and the
// background status refresher enabled — the same wiring sqd uses.
type loadtestStack struct {
	svc   *core.Service
	srv   *api.Server
	bus   *events.Bus
	ln    net.Listener
	hs    *http.Server
	stops []func()
}

func (s *loadtestStack) base() string { return "http://" + s.ln.Addr().String() }

func (s *loadtestStack) close() {
	_ = s.hs.Close()
	s.svc.Stop()
	for _, stop := range s.stops {
		stop()
	}
}

// startStack boots a serving stack over a many-subtree repo. buildDelay
// simulates build duration (0 = instant); admissionCap bounds the submit
// queue. brokenPaths lists every file the workload can submit with broken
// content: the runner probes exactly those instead of scanning the whole
// tree, keeping the harness's own build cost O(broken set) rather than
// O(tree) — at thousands of commits a full scan per build step would starve
// the single-core serving path and corrupt the latency measurement.
func startStack(subtrees, slots, workers, shards, admissionCap int, buildDelay time.Duration, brokenPaths []string) (*loadtestStack, error) {
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		if buildDelay > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(buildDelay):
			}
		}
		for _, p := range brokenPaths {
			if content, ok := snap.Read(p); ok && strings.Contains(content, "BROKEN") {
				return fmt.Errorf("compile error: broken source %s", p)
			}
		}
		return nil
	})

	bus := events.NewBus(1024)
	svc := core.NewService(shardRepo(subtrees, slots), core.Config{
		Workers: workers, Epoch: 2 * time.Millisecond, Shards: shards,
		Runner: runner, Events: bus,
	})
	svc.Start()

	srv := api.NewServer(svc)
	srv.SetEvents(bus)
	srv.EnableAdmission(admissionCap)
	stopRefresh := srv.StartStatusRefresher(50 * time.Millisecond)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		svc.Stop()
		stopRefresh()
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()

	return &loadtestStack{svc: svc, srv: srv, bus: bus, ln: ln, hs: hs,
		stops: []func(){stopRefresh}}, nil
}

// loadtestPath maps submission i to its file: slot i/subtrees in subtree
// i%subtrees, matching shardRepo's declared targets.
func loadtestPath(i, subtrees int) string {
	return fmt.Sprintf("sub%03d/f%d.go", i%subtrees, i/subtrees)
}

// loadtestBroken reports whether submission i carries broken content (every
// 37th does, so the green invariant is actually exercised).
func loadtestBroken(i int) bool { return i%37 == 19 }

// loadtestRequest spreads submissions over subtrees via loadtestPath.
func loadtestRequest(prefix string, subtrees int) loadgen.RequestFunc {
	return func(i int) (string, []byte) {
		id := fmt.Sprintf("%s-%05d", prefix, i)
		content := fmt.Sprintf("content %d", i)
		if loadtestBroken(i) {
			content = "BROKEN " + content
		}
		body := fmt.Sprintf(`{"id":%q,"author":"loadgen-%d","team":"load",`+
			`"files":[{"path":%q,"op":"create","content":%q}],"test_plan":true}`,
			id, i%8, loadtestPath(i, subtrees), content)
		return id, []byte(body)
	}
}

// drainPending waits until the service has decided every admitted change (or
// the timeout passes) and returns the drain wall time in seconds.
func drainPending(svc *core.Service, timeout time.Duration) float64 {
	//lint:ignore wallclock load test measures real elapsed time
	start := time.Now()
	for svc.PendingCount() > 0 {
		//lint:ignore wallclock,tainttime load test measures real elapsed time
		if time.Since(start) > timeout {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	//lint:ignore wallclock load test measures real elapsed time
	return time.Since(start).Seconds()
}

// greenViolations scans HEAD's full tree for broken content. Sound for this
// workload because every submission is a create: bad content that ever
// reached mainline can never be removed, so HEAD sees it.
func greenViolations(r *repo.Repo) int {
	v := 0
	r.Head().Snapshot().Range(func(path, content string) bool {
		if strings.Contains(content, "BROKEN") {
			v++
		}
		return true
	})
	return v
}

// Loadtest drives the real sqd serving stack over localhost HTTP with the
// open-loop generator, in two phases. Sustained: instant builds, generous
// admission; the serving path must hold tens of thousands of submissions per
// minute with P99 submit latency in single-digit milliseconds, then drain to
// zero undecided. Overload: slow builds (25ms/step — decisions far below the
// offered rate), a small admission queue, and 2x the sustained rate; the
// service must shed with 429 + Retry-After and 503 dashboard reads instead
// of collapsing, and every accepted change must still reach a decision. Both
// phases keep mainline green under deliberately broken submissions.
func Loadtest(o Options) *Report {
	r := newReport("loadtest", "Serving path — sustained throughput, backpressure, overload degradation")

	subtrees := 32
	rate := float64(o.count(100, 350))
	dur := time.Duration(o.count(1500, 6000)) * time.Millisecond
	warm := time.Duration(o.count(300, 2000)) * time.Millisecond
	overRate := 2 * rate
	overDur := time.Duration(o.count(1000, 3000)) * time.Millisecond
	overCap := o.count(30, 200)
	overDelay := time.Duration(o.count(50, 100)) * time.Millisecond

	// Slot budget: worst case every paced submission lands in one phase.
	slots := int(rate*(warm+dur).Seconds()+overRate*overDur.Seconds())/subtrees + 64
	var brokenPaths []string
	for i := 0; i < slots*subtrees; i++ {
		if loadtestBroken(i) {
			brokenPaths = append(brokenPaths, loadtestPath(i, subtrees))
		}
	}

	client := loadgen.SharedClient(256)

	// --- Phase 1: sustained throughput on the hot serving path.
	sus, err := startStack(subtrees, slots, 16, 8, 50000, 0, brokenPaths)
	//lint:ignore tainttime load test drives a live stack on real time by design
	if err != nil {
		r.Text = "loadtest: " + err.Error()
		return r
	}
	// A deliberately stalled subscriber: publishes must never block on it;
	// its losses show up in the bus drop counters instead.
	_, cancelStalled := sus.bus.Subscribe(2)

	res, err := loadgen.Run(loadgen.Config{
		BaseURL: sus.base(), Rate: rate, Duration: dur, Warmup: warm,
		MaxInFlight: 256, Client: client,
		Request:  loadtestRequest("sus", subtrees),
		PollRate: rate / 4, StatusRate: 20,
	})
	//lint:ignore tainttime load test drives a live stack on real time by design
	if err != nil {
		sus.close()
		cancelStalled()
		r.Text = "loadtest: sustained run: " + err.Error()
		return r
	}
	drainSecs := drainPending(sus.svc, 2*time.Minute)
	dec := loadgen.Classify(client, sus.base(), res.AcceptedIDs, 256)
	busStats := sus.bus.Stats()
	greenSus := greenViolations(sus.svc.Repo())
	cancelStalled()
	sus.close()

	r.Metrics["sustained_per_min"] = res.Sustained()
	r.Metrics["offered"] = float64(res.Offered)
	r.Metrics["accepted"] = float64(res.Accepted)
	r.Metrics["throttled_sustained"] = float64(res.Throttled)
	r.Metrics["errors_sustained"] = float64(res.Errors)
	r.Metrics["submit_p50_ms"] = res.Submit.P50Ms
	r.Metrics["submit_p99_ms"] = res.Submit.P99Ms
	r.Metrics["submit_p999_ms"] = res.Submit.P999Ms
	r.Metrics["state_p99_ms"] = res.StatePoll.P99Ms
	r.Metrics["status_p99_ms"] = res.StatusRead.P99Ms
	r.Metrics["drain_secs"] = drainSecs
	r.Metrics["committed"] = float64(dec.Committed)
	r.Metrics["rejected"] = float64(dec.Rejected)
	r.Metrics["undecided"] = float64(dec.Undecided)
	r.Metrics["events_dropped"] = float64(busStats.Dropped)

	// --- Phase 2: overload. Slow builds, small queue, double the rate.
	// Four workers, single planner, slow builds: the decision rate sits far
	// below the offered rate, so the queue actually fills and backpressure
	// engages.
	over, err := startStack(subtrees, slots, 4, 0, overCap, overDelay, brokenPaths)
	//lint:ignore tainttime load test drives a live stack on real time by design
	if err != nil {
		r.Text = "loadtest: " + err.Error()
		return r
	}
	overRes, err := loadgen.Run(loadgen.Config{
		BaseURL: over.base(), Rate: overRate, Duration: overDur,
		MaxInFlight: 256, Client: client,
		Request:  loadtestRequest("over", subtrees),
		PollRate: rate / 4, StatusRate: 50,
	})
	//lint:ignore tainttime load test drives a live stack on real time by design
	if err != nil {
		over.close()
		r.Text = "loadtest: overload run: " + err.Error()
		return r
	}
	overDrainSecs := drainPending(over.svc, 2*time.Minute)
	overDec := loadgen.Classify(client, over.base(), overRes.AcceptedIDs, 256)
	greenOver := greenViolations(over.svc.Repo())
	over.close()

	r.Metrics["overload_offered"] = float64(overRes.Offered)
	r.Metrics["overload_accepted"] = float64(overRes.Accepted)
	r.Metrics["overload_throttled"] = float64(overRes.Throttled)
	r.Metrics["overload_retry_after_mean"] = overRes.RetryAfterMean
	r.Metrics["overload_shed_reads"] = float64(overRes.StatusShed)
	r.Metrics["overload_errors"] = float64(overRes.Errors)
	r.Metrics["overload_drain_secs"] = overDrainSecs
	r.Metrics["overload_committed"] = float64(overDec.Committed)
	r.Metrics["overload_rejected"] = float64(overDec.Rejected)
	r.Metrics["overload_undecided"] = float64(overDec.Undecided)
	r.Metrics["green_violations"] = float64(greenSus + greenOver)

	r.Text = fmt.Sprintf(
		"sustained: offered %d at %.0f/s → accepted %.0f/min, throttled %d, errors %d\n"+
			"  submit  %s\n  state   %s\n  status  %s\n"+
			"  drained in %.1fs: %d committed, %d rejected, %d undecided; bus drops %d (stalled subscriber)\n"+
			"overload (%.0f/s into capacity %d, %v builds): accepted %d, throttled %d (mean Retry-After %.1fs),\n"+
			"  dashboard reads shed %d; drained in %.1fs: %d committed, %d rejected, %d undecided\n"+
			"green violations across both mainlines: %d\n",
		res.Offered, res.OfferedPerSec, res.Sustained(), res.Throttled, res.Errors,
		res.Submit, res.StatePoll, res.StatusRead,
		drainSecs, dec.Committed, dec.Rejected, dec.Undecided, busStats.Dropped,
		overRate, overCap, overDelay, overRes.Accepted, overRes.Throttled, overRes.RetryAfterMean,
		overRes.StatusShed, overDrainSecs, overDec.Committed, overDec.Rejected, overDec.Undecided,
		greenSus+greenOver)
	return r
}
