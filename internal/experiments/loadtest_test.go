package experiments

import "testing"

// TestLoadtest is the serving-path acceptance gate: the real HTTP stack must
// absorb the sustained open-loop stream without backpressure, decide every
// accepted change (the 202 durability promise), degrade under overload via
// 429s and shed dashboard reads rather than errors or lost submissions, and
// keep both mainlines green throughout. Quick scale here; BENCH_serving.json
// records the full run, which additionally clears the ≥20k/min sustained and
// P99 < 50ms floors.
func TestLoadtest(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a live HTTP server for several wall-clock seconds")
	}
	r := Loadtest(opts())
	checkReport(t, r)

	if r.Metrics["errors_sustained"] != 0 || r.Metrics["overload_errors"] != 0 {
		t.Fatalf("serving errors: sustained %.0f, overload %.0f\n%s",
			r.Metrics["errors_sustained"], r.Metrics["overload_errors"], r.Text)
	}
	if r.Metrics["throttled_sustained"] != 0 {
		t.Fatalf("backpressure during the sustained phase (%.0f throttled): capacity misconfigured\n%s",
			r.Metrics["throttled_sustained"], r.Text)
	}
	if r.Metrics["accepted"] == 0 {
		t.Fatalf("no submissions accepted:\n%s", r.Text)
	}
	// Every 202 must reach a decision — in both phases.
	if r.Metrics["undecided"] != 0 || r.Metrics["overload_undecided"] != 0 {
		t.Fatalf("accepted changes lost: sustained %.0f, overload %.0f undecided\n%s",
			r.Metrics["undecided"], r.Metrics["overload_undecided"], r.Text)
	}
	// The broken submissions must actually exercise rejection.
	if r.Metrics["rejected"] == 0 {
		t.Fatalf("no rejections — green invariant untested:\n%s", r.Text)
	}
	if r.Metrics["green_violations"] != 0 {
		t.Fatalf("green violations: %.0f\n%s", r.Metrics["green_violations"], r.Text)
	}
	// Overload must visibly degrade: refusals with Retry-After and shed
	// dashboard reads, while still accepting some work.
	if r.Metrics["overload_throttled"] == 0 {
		t.Fatalf("overload phase never throttled:\n%s", r.Text)
	}
	if r.Metrics["overload_retry_after_mean"] < 1 {
		t.Fatalf("Retry-After mean %.1f, want >= 1\n%s", r.Metrics["overload_retry_after_mean"], r.Text)
	}
	if r.Metrics["overload_shed_reads"] == 0 {
		t.Fatalf("overload phase never shed dashboard reads:\n%s", r.Text)
	}
	if r.Metrics["overload_accepted"] == 0 {
		t.Fatalf("overload phase accepted nothing:\n%s", r.Text)
	}
	// The stalled subscriber must lose events to the drop counter, not
	// stall the publisher (the run completing at rate is the liveness half).
	if r.Metrics["events_dropped"] == 0 {
		t.Fatalf("stalled subscriber dropped nothing:\n%s", r.Text)
	}
}
