package experiments

import "testing"

// TestAblationReliability is the headline acceptance test for the
// reliability layer (DESIGN.md §4g): with a 5% injected transient rate per
// step, in-place retries plus verification re-runs must produce at least
// 10x fewer false rejections than the LegacyNoRetry baseline on the same
// seeded workload, master must stay green in every cell, and median
// committed-change turnaround must stay within 1.5x of the fault-free run.
func TestAblationReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("three full simulation cells; skipped in -short")
	}
	r := AblationReliability(opts())
	checkReport(t, r)

	legacy := r.Metrics["false_rejections_legacy"]
	retry := r.Metrics["false_rejections_retry"]
	if legacy < 10 {
		t.Errorf("legacy false rejections = %v, too few to make the 10x claim meaningful", legacy)
	}
	if legacy < 10*retry {
		t.Errorf("false rejections: legacy %v vs retry %v, want >= 10x reduction", legacy, retry)
	}
	if gv := r.Metrics["green_violations"]; gv != 0 {
		t.Errorf("green violations = %v, master must stay green in every cell", gv)
	}
	if ratio := r.Metrics["p50_ratio"]; ratio > 1.5 {
		t.Errorf("P50 turnaround with faults+retry is %.2fx fault-free, want <= 1.5x", ratio)
	}
	if r.Metrics["step_retries"] == 0 {
		t.Error("no in-place step retries recorded; the retry path did not engage")
	}
	if r.Metrics["committed_retry"] < r.Metrics["committed_legacy"] {
		t.Errorf("retry cell committed %v < legacy %v; retries should only save changes",
			r.Metrics["committed_retry"], r.Metrics["committed_legacy"])
	}
}

// TestAblationReliabilityDeterministic re-runs the experiment with the same
// seed and requires bit-identical metrics: the injected fault schedule is a
// pure function of the seed and build identities.
func TestAblationReliabilityDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("six full simulation cells; skipped in -short")
	}
	a := AblationReliability(Options{Seed: 7, Quick: true})
	b := AblationReliability(Options{Seed: 7, Quick: true})
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s differs across identical-seed runs: %v vs %v", k, v, b.Metrics[k])
		}
	}
}
