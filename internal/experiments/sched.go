package experiments

import (
	"fmt"
	"sort"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/metrics"
	"mastergreen/internal/sched"
	"mastergreen/internal/sim"
	"mastergreen/internal/strategies"
	"mastergreen/internal/workload"
)

// schedDeadlineBudget is the soft deadline granted to every P2 bulk change
// in the priority cell, measured from its submission. It must exceed the
// critical path of the densest conflict component (a serial chain of
// builds no scheduler can compress), or the miss would measure workload
// infeasibility rather than starvation: the full-size backlog is twice as
// deep as the quick one, and its densest closures decide past ten hours
// even under the unprioritized planner.
func schedDeadlineBudget(o Options) time.Duration {
	if o.Quick {
		return 10 * time.Hour
	}
	return 13 * time.Hour
}

// schedClasses stamps the priority-cell lane assignment onto a workload:
// every 20th change is a P0 hotfix, every 5th (that is not a hotfix) a P2
// bulk change with a deadline budget from submission. Returns the per-change
// class labels for sim.Config.Classes.
func schedClasses(w *workload.Workload, budget time.Duration) []int {
	labels := make([]int, len(w.Changes))
	for i, c := range w.Changes {
		switch {
		case i%20 == 0:
			c.Meta.Class = change.ClassHotfix
		case i%5 == 0:
			c.Meta.Class = change.ClassBulk
			c.Meta.Deadline = strategies.SimEpoch.Add(c.SubmitAt + budget)
		}
		labels[i] = int(c.Meta.Class)
	}
	return labels
}

// AblationSched measures the priority-lane scheduling subsystem (DESIGN.md
// §4l) in three cells:
//
//  1. Priority: a deep backlog with mixed lanes, unprioritized planner vs
//     the same planner with the sched policy. The headline is the P0 hotfix
//     P50 turnaround ratio (must halve) without starving deadlined P2s.
//  2. Compatibility: a uniform workload (one class, no deadlines) must
//     commit the *identical* change set with and without the policy — the
//     weight discipline guarantees the engine request is unchanged.
//  3. Batching: reliable burst traffic on scarce workers, the adaptive
//     batcher (predictor-sized batches, pooling, bisection on failure) vs
//     the fixed Batch-4 baseline, in commits per worker-hour.
//
// Green violations must be zero in every cell.
func AblationSched(o Options) *Report {
	r := newReport("ablation-sched", "Priority lanes + adaptive batching (§4l)")
	pred, _, err := TrainPredictor(o.seed(), o.count(2000, 6000))
	if err != nil {
		r.Text = err.Error()
		return r
	}

	// Cell 1 — priority lanes under a deep backlog: arrivals are an order
	// of magnitude faster than the fleet drains, so at peak several hundred
	// changes are pending and scheduling order dominates turnaround.
	// Components well above the default keep the potential-conflict graph
	// sparse (the paper's regime: conflicts are the exception), so a P0's
	// decision is gated by a short predecessor chain rather than most of
	// the backlog.
	wcfg := workload.Config{
		Seed: o.seed(), Count: o.count(256, 512), RatePerHour: 3000, Components: 150,
	}
	workers := o.count(24, 48)
	wPrio := workload.Generate(wcfg)
	budget := schedDeadlineBudget(o)
	labels := schedClasses(wPrio, budget)
	simCfg := sim.Config{
		Workers: workers, UseAnalyzer: true, PruneObsolete: true, Classes: labels,
	}
	baseStrat := strategies.NewSubmitQueue(wPrio, pred)
	base := sim.Run(wPrio, baseStrat, simCfg)
	prioStrat := strategies.NewSubmitQueue(wPrio, pred)
	prioStrat.Sched = sched.Default()
	prio := sim.Run(wPrio, prioStrat, simCfg)

	hot, bulk := int(change.ClassHotfix), int(change.ClassBulk)
	p0Base := metrics.Percentile(base.TurnaroundByClassMin[hot], 50)
	p0Prio := metrics.Percentile(prio.TurnaroundByClassMin[hot], 50)

	// Starvation freedom: every deadlined P2 is decided within its budget
	// even while the P0 lane preempts (deadline aging lifts P2 weights as
	// slack shrinks, so they cannot be pushed out indefinitely).
	deadlineMisses := 0
	for i, c := range wPrio.Changes {
		if c.Meta.Class != change.ClassBulk || c.Meta.Deadline.IsZero() {
			continue
		}
		deadlineMin := (c.SubmitAt + budget).Minutes()
		if prio.DecidedAtMin[i] < 0 || prio.DecidedAtMin[i] > deadlineMin {
			deadlineMisses++
		}
	}

	// Cell 2 — compatibility: regenerate the same workload without lane
	// stamping; the sched cell must commit the identical set in the
	// identical order (Policy.Weights returns nil for uniform windows, so
	// the engine request is bit-for-bit the baseline's).
	wUni := workload.Generate(wcfg)
	uniBase := sim.Run(wUni, strategies.NewSubmitQueue(wUni, pred), sim.Config{
		Workers: workers, UseAnalyzer: true, PruneObsolete: true,
	})
	uniSchedStrat := strategies.NewSubmitQueue(wUni, pred)
	uniSchedStrat.Sched = sched.Default()
	uniSched := sim.Run(wUni, uniSchedStrat, sim.Config{
		Workers: workers, UseAnalyzer: true, PruneObsolete: true,
	})
	sameSet := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		as := append([]int(nil), a...)
		bs := append([]int(nil), b...)
		sort.Ints(as)
		sort.Ints(bs)
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
		return true
	}

	// Cell 3 — adaptive batching: reliable traffic, scarce workers, a burst
	// arrival an order of magnitude above drain rate. The fixed Batch-4
	// baseline pays one build per four commits at best; the adaptive
	// batcher grows conflict-disjoint groups toward its cap while the
	// predictor says the expected bisection cost stays cheap, pools small
	// groups while running builds will refill the candidate pool, and
	// bisects failures down to the guilty member.
	// Components is high so most pairs are analyzer-independent: the
	// batcher can only group analyzer-disjoint changes, and the interesting
	// comparison is how large it dares to grow those groups, not how often
	// the analyzer forbids grouping at all. Its predictor trains on a
	// history drawn from this cell's own distribution — a production
	// predictor trains on its own repo's history, and the batch cost model
	// is exactly the consumer that a mismatched success prior misleads.
	// Components/Teams/Developers scale with Count so the full-size run
	// keeps the quick run's per-change flag density — doubling the backlog
	// over a fixed component set would quadruple flagged pairs and measure
	// graph densification, not batching.
	bcfg := workload.Config{
		Seed: o.seed() + 3, Count: o.count(200, 400), RatePerHour: 3000,
		RealConflictFraction: 0.004, BaseSuccessLogit: 7,
		Components: o.count(600, 1200), Teams: o.count(40, 80),
		Developers: o.count(200, 400),
	}
	tcfg := bcfg
	tcfg.Seed += 7777
	tcfg.Count = 2000
	tcfg.RatePerHour = 300
	bpred, _, berr := TrainPredictorOn(tcfg)
	if berr != nil {
		r.Text = berr.Error()
		return r
	}
	batchWorkers := 6
	wBatch := workload.Generate(bcfg)
	batchCfg := sim.Config{Workers: batchWorkers, UseAnalyzer: true}
	fixed := sim.Run(wBatch, &strategies.Batch{BatchSize: 4}, batchCfg)
	wBatch2 := workload.Generate(bcfg)
	ab := strategies.NewAdaptiveBatch(wBatch2, bpred, sched.DefaultBatcher())
	adaptive := sim.Run(wBatch2, ab, batchCfg)

	commitsPerWorkerHour := func(res *sim.Result) float64 {
		if res.WorkerMinutesPerCommit <= 0 {
			return 0
		}
		return 60 / res.WorkerMinutesPerCommit
	}

	r.Metrics["p0_p50_base_min"] = p0Base
	r.Metrics["p0_p50_sched_min"] = p0Prio
	r.Metrics["p0_p50_ratio"] = ratio(p0Prio, p0Base)
	r.Metrics["p1_p50_sched_min"] = metrics.Percentile(prio.TurnaroundByClassMin[int(change.ClassNormal)], 50)
	r.Metrics["p2_p50_sched_min"] = metrics.Percentile(prio.TurnaroundByClassMin[bulk], 50)
	r.Metrics["p2_deadline_misses"] = float64(deadlineMisses)
	r.Metrics["identical_committed_sets_uniform"] = boolF(sameSet(uniBase.CommittedChanges, uniSched.CommittedChanges))
	r.Metrics["batch_commits_per_worker_hour_fixed"] = commitsPerWorkerHour(fixed)
	r.Metrics["batch_commits_per_worker_hour_adaptive"] = commitsPerWorkerHour(adaptive)
	r.Metrics["batch_throughput_ratio"] = ratio(commitsPerWorkerHour(adaptive), commitsPerWorkerHour(fixed))
	r.Metrics["batch_evictions"] = float64(ab.Evictions)
	r.Metrics["batch_halvings"] = float64(ab.Halvings)
	r.Metrics["green_violations"] = float64(base.GreenViolations + prio.GreenViolations +
		uniBase.GreenViolations + uniSched.GreenViolations +
		fixed.GreenViolations + adaptive.GreenViolations)
	r.Metrics["committed_prio"] = float64(prio.Committed)
	r.Metrics["committed_adaptive"] = float64(adaptive.Committed)

	r.Text = fmt.Sprintf(
		"%d changes, 3000/h, %d workers, mixed lanes (P0 every 20th, deadlined P2 every 5th):\n"+
			"  P0 P50 turnaround:  unprioritized %.0f min → sched %.0f min (%.2fx, floor ≤ 0.5)\n"+
			"  P2 deadline misses: %d of deadlined bulk changes (must be 0)\n"+
			"  uniform-class committed sets identical: %v\n"+
			"%d reliable changes (~2%% of analyzer-flagged pairs truly conflict), %d workers:\n"+
			"  commits/worker-hour: Batch-4 %.2f → adaptive %.2f (%.2fx, floor ≥ 1.5)\n"+
			"  bisections: %d guilty evictions, %d halvings\n"+
			"  green violations across all cells: %d (must be 0)\n",
		len(wPrio.Changes), workers,
		p0Base, p0Prio, r.Metrics["p0_p50_ratio"],
		deadlineMisses,
		sameSet(uniBase.CommittedChanges, uniSched.CommittedChanges),
		len(wBatch.Changes), batchWorkers,
		commitsPerWorkerHour(fixed), commitsPerWorkerHour(adaptive),
		r.Metrics["batch_throughput_ratio"],
		ab.Evictions, ab.Halvings,
		int(r.Metrics["green_violations"]))
	return r
}
