package experiments

import (
	"sync"
	"testing"
)

// ablationSchedReport runs the (deterministic) sched ablation once and shares
// the report between the acceptance gate and the starvation property below —
// it is the package's most expensive single experiment.
var ablationSchedReport = sync.OnceValue(func() *Report { return AblationSched(opts()) })

// TestAblationSched is the scheduling-subsystem acceptance gate (DESIGN.md
// §4l). The priority cell must cut P0 hotfix P50 turnaround to at most half
// the unprioritized planner's; the adaptive batcher must clear 1.5x the
// fixed Batch-4 baseline's commits per worker-hour and bisect failed batches
// down to the guilty member; greenness must hold everywhere (quick scale;
// BENCH_sched.json records the full run, which clears the same floors).
func TestAblationSched(t *testing.T) {
	r := ablationSchedReport()
	checkReport(t, r)
	if r.Metrics["green_violations"] != 0 {
		t.Fatalf("green violations: %.0f\n%s", r.Metrics["green_violations"], r.Text)
	}
	if r.Metrics["identical_committed_sets_uniform"] != 1 {
		t.Fatalf("uniform-class sched run changed the committed set:\n%s", r.Text)
	}
	if r.Metrics["batch_evictions"] <= 0 {
		t.Fatalf("no guilty-member evictions — batches never bisected:\n%s", r.Text)
	}
	if testing.Short() {
		t.Skip("headline gates need the full quick simulation margins")
	}
	if got := r.Metrics["p0_p50_ratio"]; got > 0.5 {
		t.Fatalf("P0 P50 ratio %.3f, want <= 0.5:\n%s", got, r.Text)
	}
	if got := r.Metrics["batch_throughput_ratio"]; got < 1.5 {
		t.Fatalf("adaptive batching throughput ratio %.3f, want >= 1.5:\n%s", got, r.Text)
	}
}

// TestSchedStarvationFreedom is the starvation-freedom property: under a
// sustained P0 hotfix stream preempting the speculation budget, every P2
// bulk change that carries a deadline is still decided before it — deadline
// aging ramps a P2's weight as slack shrinks, so the hotfix lane can delay
// bulk work but never push it out indefinitely.
func TestSchedStarvationFreedom(t *testing.T) {
	r := ablationSchedReport()
	if misses := r.Metrics["p2_deadline_misses"]; misses != 0 {
		t.Fatalf("%.0f deadlined P2 changes decided past their deadline:\n%s", misses, r.Text)
	}
	if r.Metrics["p2_p50_sched_min"] <= 0 {
		t.Fatalf("no P2 turnaround recorded — lane stamping broken:\n%s", r.Text)
	}
}
