package experiments

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/repo"
)

// shardRepo builds a monorepo with many independent target subtrees. Every
// target declares slot files that do not exist yet, so creates within a
// subtree conflict at the target level (they chain) while different subtrees
// stay independent conflict-graph components — the partitionable workload the
// sharded scale-out is built for.
func shardRepo(subtrees, slots int) *repo.Repo {
	srcs := "lib.go"
	for s := 0; s < slots; s++ {
		srcs += fmt.Sprintf(",f%d.go", s)
	}
	files := map[string]string{}
	for i := 0; i < subtrees; i++ {
		dir := fmt.Sprintf("sub%03d", i)
		files[dir+"/BUILD"] = "target t srcs=" + srcs
		files[dir+"/lib.go"] = "lib v1"
	}
	return repo.New(files)
}

// shardChanges is the deterministic change list: change i creates a distinct
// slot file in subtree i%subtrees; every 37th is build-broken so the green
// invariant is actually exercised.
func shardChanges(n, subtrees int) []*change.Change {
	out := make([]*change.Change, 0, n)
	for i := 0; i < n; i++ {
		content := fmt.Sprintf("content %d", i)
		if i%37 == 19 {
			content = "BROKEN " + content
		}
		out = append(out, &change.Change{
			ID:          change.ID(fmt.Sprintf("c%04d", i)),
			Author:      change.Developer{Name: "dev", Team: "t", Level: 3},
			Description: fmt.Sprintf("shard ablation %04d", i),
			Patch: repo.Patch{Changes: []repo.FileChange{{
				Path:       fmt.Sprintf("sub%03d/f%d.go", i%subtrees, i/subtrees),
				Op:         repo.OpCreate,
				NewContent: content,
			}}},
			BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		})
	}
	return out
}

// AblationShards measures the sharded multi-planner scale-out (DESIGN.md
// §4h) against the legacy single-planner engine on a many-subtree workload:
// the same change list is driven to quiescence with 1, 4, 8 and 16 planner
// shards, and throughput is committed changes per hour of wall clock. The
// single-planner path pays a global O(n²) conflict pass per decision epoch;
// each shard engine pays O(k²) over its own component group, which is where
// the speedup comes from — the serialized commit arbiter keeps every
// configuration's mainline green and the committed sets identical.
func AblationShards(o Options) *Report {
	r := newReport("ablation-shards", "Ablation — sharded multi-planner scale-out (§4h)")
	subtrees := o.count(16, 64)
	n := o.count(128, 512)
	slots := (n + subtrees - 1) / subtrees
	shardGrid := []int{1, 4, 8, 16}

	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		broken := false
		snap.Range(func(path, content string) bool {
			if strings.Contains(content, "BROKEN") {
				broken = true
				return false
			}
			return true
		})
		if broken {
			return fmt.Errorf("compile error: broken source in snapshot")
		}
		return nil
	})

	run := func(shards int, single bool) (secs float64, committed map[change.ID]bool, violations int) {
		rp := shardRepo(subtrees, slots)
		s := core.NewService(rp, core.Config{
			Workers: 16, Shards: shards, SingleShard: single, Runner: runner,
		})
		for _, c := range shardChanges(n, subtrees) {
			if err := s.Submit(c); err != nil {
				panic(err)
			}
		}
		ctx := context.Background()
		//lint:ignore wallclock throughput ablation measures real elapsed time
		start := time.Now()
		for s.PendingCount() > 0 {
			if err := s.Tick(ctx); err != nil {
				panic(err)
			}
			runtime.Gosched() // let the instant build workers drain
		}
		//lint:ignore wallclock throughput ablation measures real elapsed time
		secs = time.Since(start).Seconds()
		committed = map[change.ID]bool{}
		for _, out := range s.Outcomes() {
			if out.State == change.StateCommitted {
				committed[out.ID] = true
			}
		}
		for seq := 0; seq < rp.Len(); seq++ {
			commit, err := rp.At(seq)
			if err != nil {
				panic(err)
			}
			commit.Snapshot().Range(func(path, content string) bool {
				if strings.Contains(content, "BROKEN") {
					violations++
					return false
				}
				return true
			})
		}
		return secs, committed, violations
	}

	cph := func(committed int, secs float64) float64 {
		if secs <= 0 {
			return 0
		}
		return float64(committed) / (secs / 3600)
	}

	legacySecs, legacyCommitted, legacyViolations := run(0, true)
	r.Metrics["committed_per_hour_legacy"] = cph(len(legacyCommitted), legacySecs)

	identical := 1.0
	violations := legacyViolations
	perShard := map[int]float64{}
	var rows []string
	rows = append(rows, fmt.Sprintf("  %-8s %8.1fs  %12.0f committed/h", "legacy", legacySecs, cph(len(legacyCommitted), legacySecs)))
	for _, shards := range shardGrid {
		secs, committed, v := run(shards, false)
		violations += v
		if len(committed) != len(legacyCommitted) {
			identical = 0
		} else {
			for id := range legacyCommitted {
				if !committed[id] {
					identical = 0
					break
				}
			}
		}
		perShard[shards] = cph(len(committed), secs)
		r.Metrics[fmt.Sprintf("committed_per_hour_%d", shards)] = perShard[shards]
		rows = append(rows, fmt.Sprintf("  %-8s %8.1fs  %12.0f committed/h  (%.2fx vs 1 shard)",
			fmt.Sprintf("%d shard", shards), secs, perShard[shards], ratio(perShard[shards], perShard[1])))
	}
	r.Metrics["speedup_4"] = ratio(perShard[4], perShard[1])
	r.Metrics["speedup_8"] = ratio(perShard[8], perShard[1])
	r.Metrics["speedup_16"] = ratio(perShard[16], perShard[1])
	r.Metrics["green_violations"] = float64(violations)
	r.Metrics["identical_committed_sets"] = identical
	r.Metrics["pending_changes"] = float64(n)
	r.Metrics["subtrees"] = float64(subtrees)

	r.Text = fmt.Sprintf(
		"%d pending changes over %d independent subtrees, commit throughput to quiescence:\n%s\n"+
			"  green violations: %d; committed sets identical across configurations: %v\n",
		n, subtrees, strings.Join(rows, "\n"), violations, identical == 1)
	return r
}
