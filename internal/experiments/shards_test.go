package experiments

import "testing"

// TestAblationShards is the scale-out acceptance gate: on the many-subtree
// workload the 8-shard configuration must deliver at least 3x the 1-shard
// commit throughput with zero green violations and identical committed sets
// across every configuration (quick scale; BENCH_shards.json records the
// full 512-change run, which clears the same floor).
func TestAblationShards(t *testing.T) {
	r := AblationShards(opts())
	if r.Metrics["green_violations"] != 0 {
		t.Fatalf("green violations: %.0f", r.Metrics["green_violations"])
	}
	if r.Metrics["identical_committed_sets"] != 1 {
		t.Fatalf("committed sets diverged across shard configurations:\n%s", r.Text)
	}
	if got := r.Metrics["speedup_8"]; got < 3.0 {
		t.Fatalf("8-shard speedup %.2fx, want >= 3x:\n%s", got, r.Text)
	}
	for _, k := range []string{
		"committed_per_hour_legacy", "committed_per_hour_1", "committed_per_hour_4",
		"committed_per_hour_8", "committed_per_hour_16",
	} {
		if r.Metrics[k] <= 0 {
			t.Fatalf("metric %s missing or zero:\n%s", k, r.Text)
		}
	}
}
