package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// AtomicmixAnalyzer flags fields and variables that are accessed through
// sync/atomic in one place and by plain load or store in another — anywhere
// in the module, which is what makes the check interprocedural: the atomic
// half and the racy half are usually in different files (the stats fast path
// uses atomic.AddInt64, a later-added snapshot method reads the field bare).
// Mixing the two is a data race the happy path never trips: the plain read
// can see a torn or stale value exactly when the counter is hottest.
//
// Initialization inside a composite literal is exempt — the struct is not
// shared yet. Everything else, including writes in constructors and reads
// "protected" by an unrelated mutex, is reported: the fix is to use the
// atomic API everywhere or to move the field behind one lock.
var AtomicmixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "disallow mixing sync/atomic and plain access to the same field",
	Run:  runAtomicmix,
}

// atomicIndex is the module-wide map of atomically-accessed variables,
// built once per Run and shared by every package's pass.
type atomicIndex struct {
	once sync.Once
	// vars maps each variable that is ever passed to a sync/atomic function
	// to one witness position (for the message).
	vars map[*types.Var]witness
	// argSpans are the source ranges of atomic call arguments; uses inside
	// them are the sanctioned atomic half.
	argSpans []span
}

type witness struct {
	pos  token.Pos
	fset *token.FileSet
}

type span struct{ from, to token.Pos }

func runAtomicmix(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	idx := pass.Mod.atomicVars()
	if len(idx.vars) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Syntax {
		// Composite-literal value spans: a use of the field name as a
		// literal key is initialization, not access.
		var litKeys []span
		ast.Inspect(file, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				litKeys = append(litKeys, span{kv.Key.Pos(), kv.Key.End()})
			}
			return true
		})
		inSpans := func(pos token.Pos, spans []span) bool {
			for _, s := range spans {
				if pos >= s.from && pos <= s.to {
					return true
				}
			}
			return false
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			w, tracked := idx.vars[v]
			if !tracked || inSpans(id.Pos(), idx.argSpans) || inSpans(id.Pos(), litKeys) {
				return true
			}
			pass.Reportf(id.Pos(),
				"plain access to %q, which is accessed with sync/atomic at %s; use the atomic API everywhere or move it behind one lock",
				id.Name, posString(w.fset, w.pos))
			return true
		})
	}
}

// atomicVars builds (once) the module-wide index of atomically-accessed
// variables: any field or variable whose address is the first argument of a
// sync/atomic package function.
func (m *Module) atomicVars() *atomicIndex {
	idx := m.atomicIdx
	idx.once.Do(func() {
		idx.vars = map[*types.Var]witness{}
		for _, pkg := range m.Pkgs {
			info := pkg.Info
			for _, file := range pkg.Syntax {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					pkgPath, _, ok := pkgFuncCall(info, call)
					if !ok || pkgPath != "sync/atomic" || len(call.Args) == 0 {
						return true
					}
					for _, arg := range call.Args {
						idx.argSpans = append(idx.argSpans, span{arg.Pos(), arg.End()})
					}
					// The addressed operand is the first argument for every
					// sync/atomic function (Add, Load, Store, Swap, CAS).
					un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						return true
					}
					if root := addrTarget(info, un.X); root != nil {
						if _, dup := idx.vars[root]; !dup {
							idx.vars[root] = witness{pos: call.Pos(), fset: pkg.Fset}
						}
					}
					return true
				})
			}
		}
	})
	return idx
}

// addrTarget resolves the variable behind &x, &x.f, or &x.f[i].g.
func addrTarget(info *types.Info, e ast.Expr) *types.Var {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		tv, _ := info.Uses[v].(*types.Var)
		return tv
	case *ast.SelectorExpr:
		tv, _ := info.Uses[v.Sel].(*types.Var)
		return tv
	case *ast.IndexExpr:
		return addrTarget(info, v.X)
	}
	return nil
}
