package lint_test

import (
	"sync"
	"testing"

	"mastergreen/internal/lint"
)

// benchPkgs loads and type-checks the whole module exactly once across the
// lint benchmarks: the load is file I/O plus go/types work that `make lint`
// pays identically before and after the v2 analyzers, so it stays out of the
// measured region.
var benchPkgs = sync.OnceValues(func() ([]*lint.Package, error) {
	root, modpath, err := lint.FindModule(".")
	if err != nil {
		return nil, err
	}
	return lint.LoadModule(root, modpath)
})

// BenchmarkRunModule measures one full lint pass over the loaded module —
// call-graph construction, function summaries, and all nine analyzers under
// the default policy. This is the part of `make lint` wall-clock that the
// interprocedural passes grew and the GOMAXPROCS-bounded package fan-out
// claws back; EXPERIMENTS.md records the headline number.
func BenchmarkRunModule(b *testing.B) {
	pkgs, err := benchPkgs()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := lint.Run(pkgs, lint.Analyzers(), lint.DefaultPolicy); len(findings) != 0 {
			b.Fatalf("repo not lint-clean: %v", findings[0])
		}
	}
}

// BenchmarkRunModuleV1 runs only the five original per-function analyzers —
// the pre-v2 baseline. Comparing against BenchmarkRunModule isolates what the
// call graph, summaries, and four new analyzers cost on top of it.
func BenchmarkRunModuleV1(b *testing.B) {
	pkgs, err := benchPkgs()
	if err != nil {
		b.Fatal(err)
	}
	var analyzers []*lint.Analyzer
	for _, name := range []string{"wallclock", "seedrand", "maporder", "locksend", "errdrop"} {
		a := lint.AnalyzerByName(name)
		if a == nil {
			b.Fatalf("analyzer %s missing", name)
		}
		analyzers = append(analyzers, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lint.Run(pkgs, analyzers, lint.DefaultPolicy)
	}
}
