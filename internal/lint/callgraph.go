package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds mglint's interprocedural substrate: a call graph over every
// function body in the loaded packages. Per-function facts (summary.go) are
// composed transitively along its edges, which is what lets lockorder see a
// mutex acquired three calls away and locksend see a channel send inside a
// callee.
//
// Resolution is class-hierarchy style, all from go/types:
//
//   - static: direct calls of package-level functions and methods with a
//     concrete receiver (promoted methods follow the embedded declaration),
//     plus immediately-invoked function literals;
//   - interface: a call through an interface method fans out to that method
//     on every module type whose method set implements the interface;
//   - funcvalue: a call through a function-typed value fans out to every
//     module function or literal whose address is taken somewhere and whose
//     signature matches.
//
// interface and funcvalue edges are conservative over-approximations; each
// analyzer decides which edge kinds it traverses (summary propagation uses
// static edges only — the precision trade-offs are documented in DESIGN.md
// §4i).

// EdgeKind classifies how a call site was resolved to its callee.
type EdgeKind int

const (
	// EdgeStatic is a direct call: package function, concrete method, or
	// immediately-invoked function literal. The callee is exact.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is interface-method dispatch; the callee is one of the
	// CHA candidates (every implementing module type's method).
	EdgeInterface
	// EdgeFuncValue is a call through a function-typed value; the callee is
	// one of the address-taken functions with a matching signature.
	EdgeFuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// Edge is one resolved call-site → callee pair.
type Edge struct {
	Site   *ast.CallExpr
	Kind   EdgeKind
	Callee *FuncNode
	// Concurrent marks calls made via a `go` statement: the callee runs on
	// its own goroutine, so its blocking and locking behavior does not
	// happen on the caller's stack.
	Concurrent bool
}

// FuncNode is one function body in the module: a declared function or method,
// or a function literal.
type FuncNode struct {
	// Obj is the declared function or method; nil for function literals.
	Obj *types.Func
	// Lit is the literal; nil for declared functions.
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Pkg  *Package
	// Name is a stable human-readable name: "pkg.Func", "pkg.(*T).Method",
	// or "pkg.Func$2" for the second literal inside Func.
	Name string
	Sig  *types.Signature
	// Out is this function's resolved call edges, in source order.
	Out []Edge

	summary *Summary // computed by BuildModule; nil until then
	index   int      // dense index for SCC computation
}

// Module is the interprocedural index shared by every Pass of one Run: the
// call graph plus the per-function summaries. It is immutable once built.
type Module struct {
	Pkgs  []*Package
	Nodes []*FuncNode

	byObj  map[*types.Func]*FuncNode
	byBody map[*ast.BlockStmt]*FuncNode
	// siteEdges indexes Out edges by call site for O(1) lookup from
	// analyzers walking an AST.
	siteEdges map[*ast.CallExpr][]Edge

	lockGraph *lockGraph   // lazily built by lockorder, memoized
	atomicIdx *atomicIndex // lazily built by atomicmix, memoized
	// dirs caches each package's //lint:ignore directives; the summary layer
	// honors a directive placed on a witness operation (a blocking op for
	// locksend, a loop for goleak, a Lock for lockorder), so one reasoned
	// suppression at the root silences every transitive caller finding.
	dirs map[*Package][]directive
}

// suppressedAt reports whether a reasoned //lint:ignore <analyzer> directive
// covers the given position.
func (m *Module) suppressedAt(pkg *Package, pos token.Pos, analyzer string) bool {
	p := pkg.Fset.Position(pos)
	return suppressed(m.dirs[pkg], Finding{Analyzer: analyzer, File: p.Filename, Line: p.Line})
}

// NodeOf returns the node for a declared function or method, or nil.
func (m *Module) NodeOf(fn *types.Func) *FuncNode { return m.byObj[fn] }

// NodeByBody returns the node whose body is the given block, or nil. This is
// how a per-package analyzer walking functions with eachFunc finds the node
// it is inside.
func (m *Module) NodeByBody(body *ast.BlockStmt) *FuncNode { return m.byBody[body] }

// CalleesOf returns the resolved edges of one call site (empty for calls of
// non-module functions, builtins, and conversions).
func (m *Module) CalleesOf(call *ast.CallExpr) []Edge { return m.siteEdges[call] }

// BuildModule constructs the call graph and computes every function summary.
// Cost is one AST walk per package plus a linear-in-edges fixpoint, so it is
// cheap next to type checking.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		byObj:     map[*types.Func]*FuncNode{},
		byBody:    map[*ast.BlockStmt]*FuncNode{},
		siteEdges: map[*ast.CallExpr][]Edge{},
		// The lazy per-analyzer indexes are allocated up front so their
		// sync.Once guards are in place before packages fan out in parallel.
		lockGraph: &lockGraph{},
		atomicIdx: &atomicIndex{},
		dirs:      map[*Package][]directive{},
	}
	for _, pkg := range pkgs {
		m.dirs[pkg] = directives(pkg)
	}
	m.collectNodes()
	taken, ifaceImpls := m.collectTargets()
	for _, n := range m.Nodes {
		m.resolveEdges(n, taken, ifaceImpls)
	}
	computeSummaries(m)
	return m
}

// collectNodes creates a FuncNode for every function declaration and literal,
// naming literals after their innermost enclosing declaration.
func (m *Module) collectNodes() {
	for _, pkg := range m.Pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &FuncNode{
					Obj:  obj,
					Body: fd.Body,
					Pkg:  pkg,
					Name: funcDisplayName(pkg, obj),
					Sig:  obj.Type().(*types.Signature),
				}
				m.addNode(node)
				m.collectLits(pkg, fd.Body, node.Name)
			}
		}
	}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].Name < m.Nodes[j].Name })
	for i, n := range m.Nodes {
		n.index = i
	}
}

// collectLits registers every function literal nested (at any depth) inside
// body under the enclosing name.
func (m *Module) collectLits(pkg *Package, body *ast.BlockStmt, enclosing string) {
	seq := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		seq++
		sig, _ := pkg.Info.TypeOf(lit).(*types.Signature)
		name := fmt.Sprintf("%s$%d", enclosing, seq)
		m.addNode(&FuncNode{
			Lit:  lit,
			Body: lit.Body,
			Pkg:  pkg,
			Name: name,
			Sig:  sig,
		})
		m.collectLits(pkg, lit.Body, name)
		return false // inner literals were just named under this one
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		return walk(n)
	})
}

func (m *Module) addNode(n *FuncNode) {
	if _, dup := m.byBody[n.Body]; dup {
		return
	}
	m.Nodes = append(m.Nodes, n)
	m.byBody[n.Body] = n
	if n.Obj != nil {
		m.byObj[n.Obj] = n
	}
}

// funcDisplayName renders "pkg.Func" or "pkg.(*T).Method" using the
// module-relative package path.
func funcDisplayName(pkg *Package, fn *types.Func) string {
	short := pkg.RelPath
	if short == "" {
		short = pkg.ImportPath
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		name := ""
		if p, ok := recv.(*types.Pointer); ok {
			name = "(*" + typeBaseName(p.Elem()) + ")"
		} else {
			name = typeBaseName(recv)
		}
		return short + "." + name + "." + fn.Name()
	}
	return short + "." + fn.Name()
}

func typeBaseName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}

// collectTargets scans every package for (a) address-taken functions — any
// reference to a declared function, method, or literal outside call position,
// indexed by signature for funcvalue resolution — and (b) the per-method-name
// table of module types used for interface CHA.
func (m *Module) collectTargets() (taken map[string][]*FuncNode, ifaceImpls map[string][]*FuncNode) {
	taken = map[string][]*FuncNode{}
	addTaken := func(n *FuncNode) {
		if n == nil || n.Sig == nil {
			return
		}
		key := sigKey(n.Sig)
		taken[key] = append(taken[key], n)
	}
	for _, pkg := range m.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Syntax {
			// callPos marks the expressions that are the Fun of a call; a
			// function reference there is a call, not an address-taken use.
			callPos := map[ast.Expr]bool{}
			ast.Inspect(file, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					callPos[ast.Unparen(call.Fun)] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.FuncLit:
					if !callPos[ast.Expr(v)] {
						addTaken(m.byBody[v.Body])
					}
				case *ast.Ident:
					if callPos[ast.Expr(v)] {
						return true
					}
					if fn, ok := info.Uses[v].(*types.Func); ok {
						addTaken(m.byObj[fn])
					}
				case *ast.SelectorExpr:
					if callPos[ast.Expr(v)] {
						return true
					}
					if s, ok := info.Selections[v]; ok && s.Kind() == types.MethodVal {
						if fn, ok := s.Obj().(*types.Func); ok {
							addTaken(m.byObj[fn])
						}
					}
				}
				return true
			})
		}
	}
	// Method table: every method of every named module type, by name. CHA
	// filters this by interface satisfaction at the call site.
	ifaceImpls = map[string][]*FuncNode{}
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				meth := named.Method(i)
				if node := m.byObj[meth]; node != nil {
					ifaceImpls[meth.Name()] = append(ifaceImpls[meth.Name()], node)
				}
			}
		}
	}
	return taken, ifaceImpls
}

// sigKey canonicalizes a signature (receiver dropped) for funcvalue matching.
func sigKey(sig *types.Signature) string {
	noRecv := types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	return types.TypeString(noRecv, nil)
}

// resolveEdges walks one function body (shallow — nested literals own their
// calls) and resolves every call site.
func (m *Module) resolveEdges(n *FuncNode, taken map[string][]*FuncNode, ifaceImpls map[string][]*FuncNode) {
	info := n.Pkg.Info
	// goCalls marks call expressions spawned by a `go` statement.
	goCalls := map[*ast.CallExpr]bool{}
	inspectShallow(n.Body, func(nd ast.Node) bool {
		if g, ok := nd.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})
	addEdge := func(site *ast.CallExpr, kind EdgeKind, callee *FuncNode) {
		if callee == nil {
			return
		}
		e := Edge{Site: site, Kind: kind, Callee: callee, Concurrent: goCalls[site]}
		n.Out = append(n.Out, e)
		m.siteEdges[site] = append(m.siteEdges[site], e)
	}
	inspectShallow(n.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		// Conversions are not calls.
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return true
		}
		switch f := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[f].(type) {
			case *types.Func:
				addEdge(call, EdgeStatic, m.byObj[obj])
				return true
			case *types.Var:
				m.resolveFuncValue(call, obj.Type(), taken, addEdge)
				return true
			case *types.Builtin, nil:
				return true
			}
		case *ast.SelectorExpr:
			if s, ok := info.Selections[f]; ok {
				switch s.Kind() {
				case types.MethodVal:
					fn, _ := s.Obj().(*types.Func)
					if fn == nil {
						return true
					}
					if types.IsInterface(s.Recv()) {
						m.resolveInterface(call, s.Recv(), fn, ifaceImpls, addEdge)
					} else {
						addEdge(call, EdgeStatic, m.byObj[fn])
					}
					return true
				case types.FieldVal:
					// Call of a func-typed struct field.
					m.resolveFuncValue(call, s.Type(), taken, addEdge)
					return true
				}
			}
			// Qualified identifier pkg.Func.
			if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
				addEdge(call, EdgeStatic, m.byObj[fn])
				return true
			}
			if v, ok := info.Uses[f.Sel].(*types.Var); ok {
				m.resolveFuncValue(call, v.Type(), taken, addEdge)
			}
			return true
		case *ast.FuncLit:
			addEdge(call, EdgeStatic, m.byBody[f.Body])
			return true
		default:
			// Call of an arbitrary func-typed expression (index, call
			// result, type assertion): resolve by signature.
			if t := info.TypeOf(fun); t != nil {
				m.resolveFuncValue(call, t, taken, addEdge)
			}
		}
		return true
	})
}

// resolveFuncValue fans a call through a function-typed value out to every
// address-taken function with the same signature.
func (m *Module) resolveFuncValue(call *ast.CallExpr, t types.Type, taken map[string][]*FuncNode, addEdge func(*ast.CallExpr, EdgeKind, *FuncNode)) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, cand := range taken[sigKey(sig)] {
		addEdge(call, EdgeFuncValue, cand)
	}
}

// resolveInterface fans an interface-method call out to that method on every
// module type implementing the interface (CHA).
func (m *Module) resolveInterface(call *ast.CallExpr, recv types.Type, fn *types.Func, ifaceImpls map[string][]*FuncNode, addEdge func(*ast.CallExpr, EdgeKind, *FuncNode)) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, cand := range ifaceImpls[fn.Name()] {
		if cand.Obj == nil || cand.Sig == nil || cand.Sig.Recv() == nil {
			continue
		}
		rt := cand.Sig.Recv().Type()
		// The method set of *T includes methods with value receiver T, so
		// checking the pointer type covers both receiver forms.
		if !types.Implements(rt, iface) && !types.Implements(types.NewPointer(deref(rt)), iface) {
			continue
		}
		addEdge(call, EdgeInterface, cand)
	}
}

// sccOrder condenses the static, same-goroutine call graph into strongly
// connected components and returns them in reverse topological order
// (callees before callers), so summaries can be computed bottom-up with one
// fixpoint iteration per cycle. Tarjan's algorithm, iterative over a
// deterministic node order.
func sccOrder(nodes []*FuncNode) [][]*FuncNode {
	n := len(nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]*FuncNode
	next := 0

	type frame struct {
		v    int
		edge int
		out  []int
	}
	staticOut := func(v int) []int {
		var out []int
		for _, e := range nodes[v].Out {
			if e.Kind == EdgeStatic && !e.Concurrent {
				out = append(out, e.Callee.index)
			}
		}
		return out
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start, out: staticOut(start)}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(f.out) {
				w := f.out[f.edge]
				f.edge++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, out: staticOut(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []*FuncNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, nodes[w])
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// posString renders a position as "file:line" with just the base filename.
func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", shortFile(p.Filename), p.Line)
}

func shortFile(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
