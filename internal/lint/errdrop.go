package lint

import (
	"go/ast"
)

// ErrdropAnalyzer flags call statements that silently discard an error
// result. A dropped error in the planner or controller turns a failed commit
// or a lost build result into silent state divergence — the mainline looks
// green because nobody saw the red. Errors must be handled, returned, or
// visibly discarded with `_ =` (the explicit form is allowed: it is greppable
// and reviewable, silence is not).
//
// Conventionally un-checkable calls are exempt: the fmt print family, and
// writes to strings.Builder / bytes.Buffer / hash.Hash, which are documented
// never to fail. Deferred calls (defer f.Close()) are also exempt — there is
// no control flow left to handle the error.
var ErrdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "disallow silently discarded error returns",
	Run:  runErrdrop,
}

var errdropExemptRecv = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
	"hash.Hash32":     true,
	"hash.Hash64":     true,
}

func runErrdrop(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok || !returnsError(info, call) {
				return true
			}
			if pkgPath, _, ok := pkgFuncCall(info, call); ok && pkgPath == "fmt" {
				return true
			}
			// The exemption keys on the receiver's static type at the call
			// site: hash.Hash's Write is promoted from io.Writer, and
			// exempting io.Writer itself would swallow real file writes.
			if recv, _, ok := methodCallOn(info, call); ok && errdropExemptRecv[namedPath(recv)] {
				return true
			}
			pass.Reportf(call.Pos(),
				"error result of %s is silently discarded; handle it or discard explicitly with `_ =`", calleeName(call))
			return true
		})
	}
}
