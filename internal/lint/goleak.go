package lint

import (
	"go/ast"
)

// GoleakAnalyzer flags `go` statements that spawn a goroutine with no
// reachable termination path. The spawned body (a literal, or the static
// callee chain resolved through the call graph) is searched for an
// unconditional for-loop that contains no return, no break targeting the
// loop, no goto, and no process exit: once entered, such a loop runs for the
// life of the process, which is exactly the waitAny-style leak PR 4 fixed by
// hand — under churn the leaked goroutines accumulate until the scheduler
// drowns.
//
// The accepted termination shapes all surface as an exit statement inside
// the loop: `case <-done: return`, `if ctx.Err() != nil { return }`,
// `v, ok := <-ch; if !ok { return }`, or a bounded `for cond {}` loop in the
// first place. An unlabeled break inside a nested select/switch targets the
// inner construct, not the loop — `for { select { case <-done: break } }`
// still leaks and is still reported. Goroutines spawned through interface or
// funcvalue dispatch are not analyzed (the over-approximated target set
// would flood the report); range-over-channel loops terminate on close and
// are accepted.
var GoleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "every spawned goroutine must have a reachable termination path",
	Run:  runGoleak,
}

func runGoleak(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			for _, e := range pass.Mod.CalleesOf(g.Call) {
				if e.Kind != EdgeStatic {
					continue
				}
				s := e.Callee.Summary()
				if s == nil || !s.Hangs {
					continue
				}
				where := posString(e.Callee.Pkg.Fset, s.HangPos)
				chain := ""
				if e.Callee.Lit == nil || s.HangPath != "" {
					chain = " in " + e.Callee.Name
					if s.HangPath != "" {
						chain += " (" + s.HangPath + ")"
					}
				}
				pass.Reportf(g.Pos(),
					"goroutine has no termination path: unconditional loop%s at %s never returns or breaks; add a done/stop receive or context check", chain, where)
				return true // one finding per go statement
			}
			return true
		})
	}
}
