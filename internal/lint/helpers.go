package lint

import (
	"go/ast"
	"go/types"
)

// pkgFuncCall reports whether call is a direct call of a package-level
// function, returning the imported package path and function name. It
// returns ok=false for method calls, locals, and conversions.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodCallOn returns the method name and receiver type of a method call,
// or ok=false if call is not a method call.
func methodCallOn(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	s, isMethod := info.Selections[sel]
	if !isMethod || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	return s.Recv(), sel.Sel.Name, true
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedPath returns "pkgpath.TypeName" for a (possibly pointer-to) named
// type, or "".
func namedPath(t types.Type) string {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// eachFunc invokes fn for every function body in the file: declarations and
// function literals alike. Each body is visited exactly once as its own
// scope; fn receives the body and must not descend into nested literals
// itself (they get their own call).
func eachFunc(file *ast.File, fn func(body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d.Body)
			}
		case *ast.FuncLit:
			fn(d.Body)
		}
		return true
	})
}

// inspectShallow walks the statements of body, calling fn for every node but
// not descending into nested function literals — their bodies run on their
// own goroutine or at their own call time, so they are separate scopes for
// lock- and loop-tracking purposes.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if n == body {
			return true
		}
		return fn(n)
	})
}

// declaredWithin reports whether the identifier's declaration lies inside
// the given node's source range (e.g. a loop-local variable).
func declaredWithin(info *types.Info, ident *ast.Ident, n ast.Node) bool {
	obj := info.Uses[ident]
	if obj == nil {
		obj = info.Defs[ident]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// returnsError reports whether the call's result type is or contains error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	tup, ok := t.(*types.Tuple)
	if !ok {
		return false
	}
	for i := 0; i < tup.Len(); i++ {
		if isErrorType(tup.At(i).Type()) {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
