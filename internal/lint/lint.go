// Package lint is mglint's analysis framework: a stdlib-only static-analysis
// harness (go/parser, go/ast, go/types — no x/tools dependency) that loads
// every package in the module, runs a pluggable set of analyzers, and reports
// findings with file:line positions.
//
// The always-green guarantee rests on invariants the type system cannot see:
// Algorithm 1 target hashes and the planner's ordering decisions must be
// bit-for-bit deterministic, and the epoch loop must never deadlock under
// abort storms. Each analyzer mechanically enforces one such invariant; the
// policy table (policy.go) says which packages each invariant governs.
//
// Suppressions: a finding may be silenced with a directive comment on the
// same line or the line directly above:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// The reason string is mandatory — a reasonless directive is itself reported
// as a finding. Files carrying the standard "Code generated ... DO NOT EDIT."
// header are skipped entirely.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one analyzer report, positioned at file:line:col.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Package is the module-relative import path the finding is in.
	Package string `json:"package"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// Analyzer is one pluggable check. Run inspects the package via the Pass and
// reports findings through it.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work. Mod is the shared
// interprocedural index (call graph + function summaries) built once per Run;
// it is immutable, so passes running in parallel read it freely.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Mod      *Module
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Pkg.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
		Package:  p.Pkg.RelPath,
	})
}

// TypeOf returns the type of expr, or nil if unknown.
func (p *Pass) TypeOf(expr ast.Expr) types.Type { return p.Pkg.Info.TypeOf(expr) }

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		SeedrandAnalyzer,
		MaporderAnalyzer,
		LocksendAnalyzer,
		ErrdropAnalyzer,
		LockorderAnalyzer,
		GoleakAnalyzer,
		AtomicmixAnalyzer,
		TainttimeAnalyzer,
	}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages under the policy and returns
// suppression-filtered findings sorted by position. A nil policy applies
// every analyzer to every package (used by fixture tests); the real gate
// passes DefaultPolicy.
//
// The interprocedural index (call graph + summaries) is built once up front;
// packages then fan out across GOMAXPROCS workers — analyses only read the
// type-checked ASTs and the immutable Module, so per-package runs are
// embarrassingly parallel, and the final sort keeps output deterministic
// regardless of completion order.
func Run(pkgs []*Package, analyzers []*Analyzer, policy Policy) []Finding {
	mod := BuildModule(pkgs)
	// Force the lazy module-wide indexes that analyzers share before the
	// fan-out; their sync.Once guards make this belt-and-braces rather than
	// load-bearing, but it keeps the parallel section read-only.
	mod.lockOrderGraph()
	mod.atomicVars()

	perPkg := make([][]Finding, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				perPkg[i] = runPackage(pkgs[i], mod, analyzers, policy)
			}
		}()
	}
	for i := range pkgs {
		work <- i
	}
	close(work)
	wg.Wait()

	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// runPackage executes every applicable analyzer over one package and returns
// its suppression-filtered findings.
func runPackage(pkg *Package, mod *Module, analyzers []*Analyzer, policy Policy) []Finding {
	var findings []Finding
	dirs := directives(pkg)
	for _, d := range dirs {
		if d.reason == "" {
			findings = append(findings, Finding{
				Analyzer: "mglint",
				File:     d.file,
				Line:     d.line,
				Col:      d.col,
				Message:  "//lint:ignore directive is missing a reason",
				Package:  pkg.RelPath,
			})
		}
	}
	for _, a := range analyzers {
		if policy != nil && !policy.Applies(a.Name, pkg.RelPath) {
			continue
		}
		var raw []Finding
		pass := &Pass{Analyzer: a, Pkg: pkg, Mod: mod, findings: &raw}
		a.Run(pass)
		for _, f := range raw {
			if pkg.Generated[f.File] || suppressed(dirs, f) {
				continue
			}
			findings = append(findings, f)
		}
	}
	return findings
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	file      string
	line, col int
	analyzers map[string]bool
	reason    string
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// directives extracts every //lint:ignore comment in the package's files.
func directives(pkg *Package) []directive {
	var out []directive
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := directive{
					file:      pos.Filename,
					line:      pos.Line,
					col:       pos.Column,
					analyzers: map[string]bool{},
					reason:    strings.TrimSpace(m[2]),
				}
				for _, name := range strings.Split(m[1], ",") {
					d.analyzers[strings.TrimSpace(name)] = true
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressed reports whether a directive with a reason covers the finding: a
// matching //lint:ignore on the finding's line or the line directly above.
func suppressed(dirs []directive, f Finding) bool {
	for _, d := range dirs {
		if d.file != f.File || d.reason == "" || !d.analyzers[f.Analyzer] {
			continue
		}
		if d.line == f.Line || d.line == f.Line-1 {
			return true
		}
	}
	return false
}
