package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mastergreen/internal/lint"
)

// loadFixture type-checks one testdata package and runs the full suite over
// it with no policy scoping.
func loadFixture(t *testing.T, name string) []lint.Finding {
	t.Helper()
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return lint.Run([]*lint.Package{pkg}, lint.Analyzers(), lint.AllPolicy())
}

var wantRe = regexp.MustCompile(`// want ([a-z,]+)`)

// checkMarkers asserts an exact correspondence between findings and the
// fixture's `// want <analyzer>` line markers: every marked line must
// produce the named finding (true positive) and every unmarked line must
// produce none (true negative).
func checkMarkers(t *testing.T, name string, findings []lint.Finding) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{} // "file:line:analyzer"
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, a := range strings.Split(m[1], ",") {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), i+1, a)] = true
			}
		}
	}
	got := map[string]bool{}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d:%s", filepath.Base(f.File), f.Line, f.Analyzer)
		got[key] = true
		if !want[key] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key := range want {
		if !got[key] {
			t.Errorf("missing expected finding: %s", key)
		}
	}
}

func TestWallclockFixture(t *testing.T) { checkMarkers(t, "wallclock", loadFixture(t, "wallclock")) }
func TestSeedrandFixture(t *testing.T)  { checkMarkers(t, "seedrand", loadFixture(t, "seedrand")) }
func TestMaporderFixture(t *testing.T)  { checkMarkers(t, "maporder", loadFixture(t, "maporder")) }
func TestLocksendFixture(t *testing.T)  { checkMarkers(t, "locksend", loadFixture(t, "locksend")) }
func TestErrdropFixture(t *testing.T)   { checkMarkers(t, "errdrop", loadFixture(t, "errdrop")) }

// The v2 interprocedural analyzers: lock-order cycles, goroutine termination,
// atomic/plain mixing, determinism taint, and locksend through callees.
func TestLockorderFixture(t *testing.T) { checkMarkers(t, "lockorder", loadFixture(t, "lockorder")) }
func TestGoleakFixture(t *testing.T)    { checkMarkers(t, "goleak", loadFixture(t, "goleak")) }
func TestAtomicmixFixture(t *testing.T) { checkMarkers(t, "atomicmix", loadFixture(t, "atomicmix")) }
func TestTainttimeFixture(t *testing.T) { checkMarkers(t, "tainttime", loadFixture(t, "tainttime")) }
func TestLocksendIPFixture(t *testing.T) {
	checkMarkers(t, "locksendip", loadFixture(t, "locksendip"))
}

// TestAlltripFixture pins the edge case of one function tripping every
// analyzer at once.
func TestAlltripFixture(t *testing.T) {
	findings := loadFixture(t, "alltrip")
	checkMarkers(t, "alltrip", findings)
	seen := map[string]bool{}
	for _, f := range findings {
		seen[f.Analyzer] = true
	}
	for _, a := range lint.Analyzers() {
		if !seen[a.Name] {
			t.Errorf("alltrip fixture did not trip %s", a.Name)
		}
	}
}

// TestSuppressions covers //lint:ignore edge cases: with a reason (on the
// preceding line and on the finding's own line) the finding is silenced;
// without a reason the finding survives and the directive is reported;
// naming the wrong analyzer suppresses nothing.
func TestSuppressions(t *testing.T) {
	findings := loadFixture(t, "suppress")
	byLine := map[int][]string{}
	for _, f := range findings {
		byLine[f.Line] = append(byLine[f.Line], f.Analyzer)
	}
	data, err := os.ReadFile(filepath.Join("testdata", "src", "suppress", "suppress.go"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	lineOf := func(sub string) int {
		for i, l := range lines {
			if strings.Contains(l, sub) {
				return i + 1
			}
		}
		t.Fatalf("fixture line containing %q not found", sub)
		return 0
	}

	if got := byLine[lineOf("reason provided, finding suppressed")+1]; len(got) != 0 {
		t.Errorf("directive with reason (preceding line) did not suppress: %v", got)
	}
	if got := byLine[lineOf("same-line directive")]; len(got) != 0 {
		t.Errorf("same-line directive with reason did not suppress: %v", got)
	}
	bare := 0
	for i, l := range lines {
		if strings.TrimSpace(l) == "//lint:ignore wallclock" {
			bare = i + 1
		}
	}
	if bare == 0 {
		t.Fatal("bare directive line not found")
	}
	if got := byLine[bare]; len(got) != 1 || got[0] != "mglint" {
		t.Errorf("reasonless directive not reported as mglint finding: %v", got)
	}
	if got := byLine[bare+1]; len(got) != 1 || got[0] != "wallclock" {
		t.Errorf("finding under reasonless directive was not kept: %v", got)
	}
	if got := byLine[lineOf("names the wrong analyzer")+1]; len(got) != 1 || got[0] != "wallclock" {
		t.Errorf("directive naming another analyzer suppressed the finding: %v", got)
	}
}

// TestGeneratedSkipped verifies generated-file skipping: the fixture's
// time.Now produces no finding.
func TestGeneratedSkipped(t *testing.T) {
	if findings := loadFixture(t, "generated"); len(findings) != 0 {
		t.Errorf("findings reported in a generated file: %v", findings)
	}
}

// TestPolicyMatching pins the pattern forms the table supports.
func TestPolicyMatching(t *testing.T) {
	p := lint.TablePolicy{
		{Analyzer: "a", Packages: []string{"internal/sim"}},
		{Analyzer: "b", Packages: []string{"internal/..."}},
		{Analyzer: "c", Packages: []string{"..."}},
	}
	cases := []struct {
		analyzer, rel string
		want          bool
	}{
		{"a", "internal/sim", true},
		{"a", "internal/simx", false},
		{"a", "internal/sim/sub", false},
		{"b", "internal/planner", true},
		{"b", "internal", true},
		{"b", "cmd/mg", false},
		{"c", "", true},
		{"c", "cmd/mg", true},
		{"missing", "internal/sim", false},
	}
	for _, c := range cases {
		if got := p.Applies(c.analyzer, c.rel); got != c.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", c.analyzer, c.rel, got, c.want)
		}
	}
}

// TestModuleClean is the gate's gate: the repository itself must be clean
// under the default policy. It loads and type-checks the whole module (a few
// seconds), so it is skipped under -short.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide lint load is slow; run without -short")
	}
	root, modpath, err := lint.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.LoadModule(root, modpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost the module", len(pkgs))
	}
	findings := lint.Run(pkgs, lint.Analyzers(), lint.DefaultPolicy)
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

// TestDefaultPolicyCoversReliability pins internal/reliability into every
// determinism policy: the fault schedule must replay bit-for-bit from an
// injected seed and clock, so wallclock/seedrand/maporder all apply (and
// the repo-wide locksend/errdrop catch-alls reach it too).
func TestDefaultPolicyCoversReliability(t *testing.T) {
	for _, an := range []string{"wallclock", "seedrand", "maporder", "locksend", "errdrop"} {
		if !lint.DefaultPolicy.Applies(an, "internal/reliability") {
			t.Errorf("DefaultPolicy does not apply %s to internal/reliability", an)
		}
	}
}

// TestDefaultPolicyCoversShardScaleOut pins the sharded scale-out packages
// into every determinism policy: the coordinator's partition and the
// arbiter's total commit order must replay bit-for-bit (the golden trace
// test depends on it), so wallclock/seedrand/maporder all apply, plus the
// repo-wide locksend/errdrop catch-alls.
func TestDefaultPolicyCoversShardScaleOut(t *testing.T) {
	for _, pkg := range []string{"internal/shard", "internal/arbiter"} {
		for _, an := range []string{"wallclock", "seedrand", "maporder", "locksend", "errdrop"} {
			if !lint.DefaultPolicy.Applies(an, pkg) {
				t.Errorf("DefaultPolicy does not apply %s to %s", an, pkg)
			}
		}
	}
}

// TestDefaultPolicyExemptsLoadgen pins internal/loadgen's deliberate scope:
// it is a real-time measurement instrument (open-loop pacing, wall-clock
// latency percentiles), so the determinism analyzers must NOT govern it —
// adding it to wallclock/tainttime would force lint:ignore noise on every
// line of the harness. The repo-wide safety analyzers still apply: a
// deadlock or leaked goroutine in the load harness corrupts measurements.
func TestDefaultPolicyExemptsLoadgen(t *testing.T) {
	for _, an := range []string{"wallclock", "tainttime", "maporder"} {
		if lint.DefaultPolicy.Applies(an, "internal/loadgen") {
			t.Errorf("DefaultPolicy applies %s to internal/loadgen; the load harness measures real time by design", an)
		}
	}
	for _, an := range []string{"locksend", "lockorder", "goleak", "errdrop", "atomicmix"} {
		if !lint.DefaultPolicy.Applies(an, "internal/loadgen") {
			t.Errorf("DefaultPolicy does not apply %s to internal/loadgen", an)
		}
	}
}

// TestDefaultPolicyCoversSched pins internal/sched into the determinism
// policies: policy weights and batch partitions feed the speculation
// engine's plan, which must replay bit-for-bit in the simulator — so
// wallclock (urgency must compute from the injected sim clock, never
// time.Now), seedrand, maporder (batch groups preserve deterministic
// order), and tainttime all apply, plus the repo-wide safety catch-alls.
func TestDefaultPolicyCoversSched(t *testing.T) {
	for _, an := range []string{"wallclock", "seedrand", "maporder", "tainttime", "locksend", "errdrop"} {
		if !lint.DefaultPolicy.Applies(an, "internal/sched") {
			t.Errorf("DefaultPolicy does not apply %s to internal/sched", an)
		}
	}
}
