package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package.
type Package struct {
	// ImportPath is the full import path (module path + "/" + RelPath).
	ImportPath string
	// RelPath is the module-relative path ("" for the module root package);
	// policy rules match against it.
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Generated marks filenames carrying a "Code generated ... DO NOT EDIT."
	// header; analyzers skip their files entirely.
	Generated map[string]bool
}

var generatedRe = regexp.MustCompile(`^// Code generated .* DO NOT EDIT\.$`)

// isGenerated reports whether the file carries the standard generated-code
// header before its package clause.
func isGenerated(file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.Pos() >= file.Package {
			break
		}
		for _, c := range cg.List {
			if generatedRe.MatchString(c.Text) {
				return true
			}
		}
	}
	return false
}

// FindModule walks up from dir to the enclosing go.mod, returning the module
// root directory and module path.
func FindModule(dir string) (root, modpath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return abs, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// rawPkg is a parsed-but-unchecked package.
type rawPkg struct {
	relPath string
	dir     string
	files   []*ast.File
	imports []string // module-relative paths of intra-module imports
}

// LoadModule parses and type-checks every package in the module rooted at
// root. Only non-test files are loaded: the determinism and concurrency
// invariants the analyzers enforce govern library code, and the policy table
// exempts tests anyway. Packages are returned sorted by RelPath.
func LoadModule(root, modpath string) ([]*Package, error) {
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	raw := map[string]*rawPkg{} // by relPath
	for _, dir := range dirs {
		rp, err := parseDir(fset, root, modpath, dir)
		if err != nil {
			return nil, err
		}
		if rp != nil {
			raw[rp.relPath] = rp
		}
	}
	order, err := topoSort(raw)
	if err != nil {
		return nil, err
	}

	checked := map[string]*Package{}
	imp := &moduleImporter{
		modpath: modpath,
		checked: checked,
		std:     importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for _, rel := range order {
		pkg, err := typeCheck(fset, modpath, raw[rel], imp)
		if err != nil {
			return nil, err
		}
		checked[rel] = pkg
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].RelPath < pkgs[j].RelPath })
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, importing only
// the standard library. Fixture tests use it to load testdata packages that
// the module loader deliberately skips.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	rp, err := parseDir(fset, dir, "fixture", dir)
	if err != nil {
		return nil, err
	}
	if rp == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	imp := &moduleImporter{
		modpath: "fixture",
		checked: map[string]*Package{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
	return typeCheck(fset, "fixture", rp, imp)
}

// parseDir parses the non-test Go files of one directory; nil if there are
// none.
func parseDir(fset *token.FileSet, root, modpath, dir string) (*rawPkg, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	rp := &rawPkg{relPath: rel, dir: dir}
	seen := map[string]bool{}
	for _, name := range names {
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		rp.files = append(rp.files, file)
		for _, spec := range file.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			var sub string
			switch {
			case path == modpath:
				sub = ""
			case strings.HasPrefix(path, modpath+"/"):
				sub = strings.TrimPrefix(path, modpath+"/")
			default:
				continue
			}
			if !seen[sub] {
				seen[sub] = true
				rp.imports = append(rp.imports, sub)
			}
		}
	}
	return rp, nil
}

// topoSort orders packages dependencies-first; ties break lexically so load
// order (and therefore finding order) is deterministic.
func topoSort(raw map[string]*rawPkg) ([]string, error) {
	rels := make([]string, 0, len(raw))
	for rel := range raw {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []string
	var visit func(rel string) error
	visit = func(rel string) error {
		switch state[rel] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %q", rel)
		}
		state[rel] = visiting
		rp := raw[rel]
		deps := append([]string(nil), rp.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := raw[dep]; !ok {
				return fmt.Errorf("lint: package %q imports %q, which has no Go files", rel, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[rel] = done
		order = append(order, rel)
		return nil
	}
	for _, rel := range rels {
		if err := visit(rel); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from already-checked packages
// and everything else (the standard library) through the source importer.
type moduleImporter struct {
	modpath string
	checked map[string]*Package
	std     types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	var sub string
	switch {
	case path == m.modpath:
		sub = ""
	case strings.HasPrefix(path, m.modpath+"/"):
		sub = strings.TrimPrefix(path, m.modpath+"/")
	default:
		return m.std.Import(path)
	}
	pkg, ok := m.checked[sub]
	if !ok {
		return nil, fmt.Errorf("lint: import %q not yet checked (loader bug)", path)
	}
	return pkg.Types, nil
}

// typeCheck runs go/types over one parsed package.
func typeCheck(fset *token.FileSet, modpath string, rp *rawPkg, imp types.Importer) (*Package, error) {
	importPath := modpath
	if rp.relPath != "" {
		importPath = modpath + "/" + rp.relPath
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, fset, rp.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %v", importPath, typeErrs[0])
	}
	generated := map[string]bool{}
	for _, file := range rp.files {
		if isGenerated(file) {
			generated[fset.Position(file.Package).Filename] = true
		}
	}
	return &Package{
		ImportPath: importPath,
		RelPath:    rp.relPath,
		Dir:        rp.dir,
		Fset:       fset,
		Syntax:     rp.files,
		Types:      tpkg,
		Info:       info,
		Generated:  generated,
	}, nil
}

// packageDirs returns every directory under root that may hold a package,
// skipping hidden directories, testdata, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}
