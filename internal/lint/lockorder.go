package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// LockorderAnalyzer builds the module-wide lock-acquisition-order graph —
// an edge A → B whenever some function acquires lock class B while holding
// lock class A, directly or through any chain of static calls — and reports
// every acquisition that participates in a cycle. A cycle (A → B somewhere,
// B → A somewhere else) is the classic deadlock recipe: two goroutines taking
// the two locks in opposite orders wedge the queue the first time an abort
// storm makes them race. The fix is a single global acquisition order (or
// narrowing one critical section so the nested acquisition moves outside).
//
// Lock identity is class-based: every instance of planner.Planner.mu is one
// node. That is sound for the AB/BA inversion pattern but cannot order two
// instances of the same class, so same-class nesting is reported only when
// the two acquisitions textually name the same lock (a certain
// self-deadlock: Go mutexes are not reentrant) or when the nested acquisition
// happens inside a callee (possible recursion back into the held lock).
var LockorderAnalyzer = &Analyzer{
	Name: "lockorder",
	Doc:  "report cycles in the interprocedural lock-acquisition-order graph",
	Run:  runLockorder,
}

// lockPair is one observed "B acquired while A held" event.
type lockPair struct {
	from, to         string // lock class keys
	fromRecv, toRecv string // textual receivers at the observation site
	pos              token.Pos
	pkg              *Package
	path             string // "" for a direct nested Lock, else "via pkg.f ..."
}

type lockGraph struct {
	once  sync.Once
	pairs []lockPair
	// inCycle marks lock-class keys whose SCC contains a cycle, and
	// reverse[from][to] records one witness position of each edge for
	// cross-referencing in messages.
	inCycle map[string]int // key -> SCC id (only for cyclic SCCs)
	witness map[[2]string]token.Pos
	fsets   map[[2]string]*token.FileSet
}

func runLockorder(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	g := pass.Mod.lockOrderGraph()
	for _, p := range g.pairs {
		if p.pkg != pass.Pkg {
			continue
		}
		fromSCC, fromCyc := g.inCycle[p.from]
		toSCC, toCyc := g.inCycle[p.to]
		if p.from == p.to {
			// Same-class nesting: certain self-deadlock when the textual
			// receiver is identical, possible recursive re-acquisition when
			// it happens through a callee.
			switch {
			case p.path == "" && p.fromRecv == p.toRecv:
				pass.Reportf(p.pos, "%s.Lock while %s is already held in this function: Go mutexes are not reentrant, this deadlocks", p.fromRecv, p.fromRecv)
			case p.path != "":
				pass.Reportf(p.pos, "call may re-acquire %s (%s) while it is held: non-reentrant deadlock if the receiver is the same instance", p.from, p.path)
			}
			continue
		}
		if !fromCyc || !toCyc || fromSCC != toSCC {
			continue
		}
		via := ""
		if p.path != "" {
			via = " " + p.path
		}
		other := ""
		if pos, ok := g.witness[[2]string{p.to, p.from}]; ok {
			other = fmt.Sprintf("; reverse order at %s", posString(g.fsets[[2]string{p.to, p.from}], pos))
		}
		pass.Reportf(p.pos, "lock order inversion: %s acquired%s while %s is held%s — deadlock cycle; pick one global acquisition order", p.to, via, p.from, other)
	}
}

// lockOrderGraph builds (once) the module's acquisition-order graph and its
// cycle analysis.
func (m *Module) lockOrderGraph() *lockGraph {
	g := m.lockGraph
	g.once.Do(func() {
		for _, n := range m.Nodes {
			g.pairs = append(g.pairs, lockPairsOf(m, n)...)
		}
		sort.Slice(g.pairs, func(i, j int) bool {
			a, b := g.pairs[i], g.pairs[j]
			if a.from != b.from {
				return a.from < b.from
			}
			if a.to != b.to {
				return a.to < b.to
			}
			return a.pos < b.pos
		})
		g.witness = map[[2]string]token.Pos{}
		g.fsets = map[[2]string]*token.FileSet{}
		adj := map[string][]string{}
		for _, p := range g.pairs {
			k := [2]string{p.from, p.to}
			if _, ok := g.witness[k]; !ok {
				g.witness[k] = p.pos
				g.fsets[k] = p.pkg.Fset
				adj[p.from] = append(adj[p.from], p.to)
			}
		}
		g.inCycle = cyclicSCCs(adj)
	})
	return g
}

// lockPairsOf extracts the acquisition-order pairs one function contributes:
// for every held interval of lock A, every nested direct Lock of B and every
// static same-goroutine call whose callee transitively acquires B.
func lockPairsOf(m *Module, n *FuncNode) []lockPair {
	intervals, events := lockIntervals(n.Pkg, n.Body)
	if len(intervals) == 0 {
		return nil
	}
	var pairs []lockPair
	add := func(iv heldInterval, to, toRecv string, pos token.Pos, path string) {
		if iv.key == "" || to == "" {
			return
		}
		pairs = append(pairs, lockPair{
			from: iv.key, to: to,
			fromRecv: iv.recv, toRecv: toRecv,
			pos: pos, pkg: n.Pkg, path: path,
		})
	}
	for _, iv := range intervals {
		for _, ev := range events {
			if ev.kind == evLock && ev.pos > iv.from && ev.pos < iv.to {
				add(iv, ev.key, ev.recv, ev.pos, "")
			}
		}
		for _, e := range n.Out {
			if e.Kind != EdgeStatic || e.Concurrent {
				continue
			}
			pos := e.Site.Pos()
			if pos <= iv.from || pos >= iv.to {
				continue
			}
			cs := e.Callee.Summary()
			if cs == nil {
				continue
			}
			keys := make([]string, 0, len(cs.Acquires))
			for key := range cs.Acquires {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			for _, key := range keys {
				acq := cs.Acquires[key]
				path := extendPath(e.Callee.Name, acq.Path)
				// Skip local mutexes of the callee: they are private to one
				// call frame and cannot participate in cross-goroutine
				// ordering.
				if strings.HasPrefix(key, "local:") {
					continue
				}
				add(iv, key, key, pos, path)
			}
		}
	}
	return pairs
}

// cyclicSCCs condenses the key digraph and returns, for every node in a
// strongly connected component that contains a cycle (size > 1; self-loops
// are handled separately by the same-class rules), its SCC id.
func cyclicSCCs(adj map[string][]string) map[string]int {
	keys := make([]string, 0, len(adj))
	seen := map[string]bool{}
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			keys = append(keys, from)
		}
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				keys = append(keys, to)
			}
		}
	}
	sort.Strings(keys)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	sccID := 0
	out := map[string]int{}

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := append([]string(nil), adj[v]...)
		sort.Strings(tos)
		for _, w := range tos {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				for _, w := range scc {
					out[w] = sccID
				}
				sccID++
			}
		}
	}
	for _, k := range keys {
		if _, visited := index[k]; !visited {
			strongconnect(k)
		}
	}
	return out
}
