package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// LocksendAnalyzer flags blocking channel operations — sends, receives,
// channel-range loops, select without default, sync.WaitGroup.Wait — executed
// while a sync.Mutex or sync.RWMutex is held. This is the classic
// build-controller deadlock shape: the goroutine that would drain the channel
// needs the same lock, and an abort storm wedges the epoch loop. The fix is
// always the same — collect under the lock, release, then communicate (see
// events.Bus.Publish).
//
// Since mglint v2 the check is interprocedural: a call made while the lock is
// held is resolved through the module call graph, and if any static callee
// may block (transitively — the Summary.Blocks fact), the call site is
// reported with the chain to the blocking op. Interface and funcvalue edges
// are not followed — an over-approximated callee set would flag nearly every
// indirect call — so a blocking op behind dynamic dispatch still needs the
// caller-side discipline locksend has always enforced.
//
// Non-blocking communication (a select with a default clause) is allowed, as
// is anything inside a nested function literal: its body runs on its own
// goroutine or call, not under the caller's lock... unless it is invoked
// inline, which the call graph does model (an immediately-invoked literal is
// a static callee).
var LocksendAnalyzer = &Analyzer{
	Name: "locksend",
	Doc:  "disallow blocking channel ops and WaitGroup.Wait while a mutex is held, including inside callees",
	Run:  runLocksend,
}

type lockEventKind int

const (
	evLock lockEventKind = iota
	evUnlock
	evDeferUnlock
)

type lockEvent struct {
	pos  token.Pos
	end  token.Pos
	kind lockEventKind
	recv string // textual receiver, e.g. "p.mu" — pairs Lock with Unlock
	key  string // cross-function lock class key, e.g. "pkg.Planner.mu"
}

type heldInterval struct {
	from, to token.Pos
	recv     string
	key      string
}

func runLocksend(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Syntax {
		eachFunc(file, func(body *ast.BlockStmt) {
			intervals, _ := lockIntervals(pass.Pkg, body)
			if len(intervals) == 0 {
				return
			}
			report := func(pos token.Pos, what string) bool {
				for _, iv := range intervals {
					if pos > iv.from && pos < iv.to {
						pass.Reportf(pos, "%s while %s is held; release the lock before blocking (collect-then-communicate)", what, iv.recv)
						return true
					}
				}
				return false
			}
			inspectShallow(body, func(n ast.Node) bool {
				switch v := n.(type) {
				case *ast.SendStmt:
					report(v.Pos(), "channel send")
				case *ast.UnaryExpr:
					if v.Op == token.ARROW {
						report(v.Pos(), "channel receive")
					}
				case *ast.RangeStmt:
					if t := info.TypeOf(v.X); t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							report(v.Pos(), "range over channel")
						}
					}
				case *ast.SelectStmt:
					for _, clause := range v.Body.List {
						if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
							return false // has default: non-blocking poll, and skip its comm exprs
						}
					}
					report(v.Pos(), "blocking select")
					return false // comm clauses already covered by the select finding
				case *ast.CallExpr:
					if fn := calledMethod(info, v); fn != nil && fn.Name() == "Wait" && methodRecvPath(fn) == "sync.WaitGroup" {
						report(v.Pos(), "sync.WaitGroup.Wait")
						return true
					}
					reportBlockingCallee(pass, v, report)
				}
				return true
			})
		})
	}
}

// reportBlockingCallee resolves a call made under a lock through the call
// graph and reports it when a static, same-goroutine callee may block.
func reportBlockingCallee(pass *Pass, call *ast.CallExpr, report func(token.Pos, string) bool) {
	if pass.Mod == nil {
		return
	}
	for _, e := range pass.Mod.CalleesOf(call) {
		if e.Kind != EdgeStatic || e.Concurrent {
			continue
		}
		s := e.Callee.Summary()
		if s == nil || !s.Blocks {
			continue
		}
		chain := extendPath(e.Callee.Name, s.BlockPath)
		what := "call may block: " + s.BlockWhat + " " + chain +
			" at " + posString(e.Callee.Pkg.Fset, s.BlockPos)
		if report(call.Pos(), what) {
			return // one finding per call site is enough
		}
	}
}

// lockIntervals computes the held regions of every sync.Mutex/RWMutex in one
// function scope by pairing Lock/Unlock calls on the same textual receiver,
// returning both the intervals and the raw lock events (lockorder consumes
// the events for nested-acquisition pairs). A deferred or unmatched unlock
// holds to the end of the scope.
func lockIntervals(pkg *Package, body *ast.BlockStmt) ([]heldInterval, []lockEvent) {
	info := pkg.Info
	var events []lockEvent
	inspectShallow(body, func(n ast.Node) bool {
		if def, ok := n.(*ast.DeferStmt); ok {
			if kind, recv, key, ok := mutexCall(pkg, info, def.Call); ok && kind == evUnlock {
				events = append(events, lockEvent{pos: def.Pos(), end: def.End(), kind: evDeferUnlock, recv: recv, key: key})
			}
			return false // the deferred call does not execute here
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, recv, key, ok := mutexCall(pkg, info, call); ok {
			events = append(events, lockEvent{pos: call.Pos(), end: call.End(), kind: kind, recv: recv, key: key})
		}
		return true
	})
	if len(events) == 0 {
		return nil, nil
	}
	// events arrive in source order from the inspection.
	open := map[string][]lockEvent{} // recv -> stack of open locks
	var out []heldInterval
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			open[ev.recv] = append(open[ev.recv], ev)
		case evUnlock, evDeferUnlock:
			stack := open[ev.recv]
			if len(stack) == 0 {
				continue // unlock of a lock taken by the caller; out of scope
			}
			lock := stack[len(stack)-1]
			open[ev.recv] = stack[:len(stack)-1]
			to := ev.pos
			if ev.kind == evDeferUnlock {
				to = body.End()
			}
			out = append(out, heldInterval{from: lock.end, to: to, recv: ev.recv, key: lock.key})
		}
	}
	for recv, stack := range open {
		for _, lock := range stack {
			out = append(out, heldInterval{from: lock.end, to: body.End(), recv: recv, key: lock.key})
		}
	}
	return out, events
}

// mutexCall classifies a call as a sync.Mutex/RWMutex Lock or Unlock
// (including promoted methods on embedding structs), returning the textual
// receiver expression as the pairing key and the cross-function class key.
func mutexCall(pkg *Package, info *types.Info, call *ast.CallExpr) (kind lockEventKind, recv, key string, ok bool) {
	fn := calledMethod(info, call)
	if fn == nil {
		return 0, "", "", false
	}
	if p := methodRecvPath(fn); p != "sync.Mutex" && p != "sync.RWMutex" {
		return 0, "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return 0, "", "", false
	}
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, pkg.Fset, sel.X)
	key, _ = lockClassKey(pkg, call)
	switch fn.Name() {
	case "Lock", "RLock":
		return evLock, buf.String(), key, true
	case "Unlock", "RUnlock":
		return evUnlock, buf.String(), key, true
	}
	return 0, "", "", false
}

// calledMethod resolves the *types.Func a method call invokes (following
// promoted methods to their original receiver), or nil.
func calledMethod(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	fn, _ := s.Obj().(*types.Func)
	return fn
}

// methodRecvPath returns "pkg.Type" of the method's declared receiver.
func methodRecvPath(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedPath(sig.Recv().Type())
}
