package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MaporderAnalyzer flags `range` loops over maps whose body accumulates into
// an ordering-sensitive sink — appending to a slice, writing to a
// builder/hash, or concatenating a string — declared outside the loop. Map
// iteration order is randomized per run, so such loops silently produce
// different target hashes or plan orders on identical input, which is
// exactly the nondeterminism that breaks Algorithm 1 hash comparison and the
// planner's P_needed tie-breaks.
//
// Loops whose appended slice is passed to a sort call (sort.Strings,
// sort.Slice, a local sortX helper, ...) later in the same function are
// allowed: collect-then-sort is the standard deterministic idiom. Writing
// into another map or a set is also allowed — those sinks are
// order-insensitive.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map-range loops that accumulate into order-sensitive sinks without sorting",
	Run:  runMaporder,
}

var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMaporder(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Syntax {
		eachFunc(file, func(body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := info.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, body, rng)
				return true
			})
		})
	}
}

// checkMapRange inspects one map-range loop for order-sensitive sinks.
func checkMapRange(pass *Pass, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			// s += expr string concatenation into an outer variable.
			if stmt.Tok.String() == "+=" && len(stmt.Lhs) == 1 {
				ident, ok := stmt.Lhs[0].(*ast.Ident)
				if !ok || declaredWithin(info, ident, rng) {
					return true
				}
				t := info.TypeOf(ident)
				if t == nil {
					return true
				}
				if bt, ok := t.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
					pass.Reportf(stmt.Pos(),
						"map iteration order is random; string concatenation into %q is order-sensitive — sort the keys first", ident.Name)
				}
			}
		case *ast.CallExpr:
			// append(outer, ...) without a later sort of outer.
			if fun, ok := stmt.Fun.(*ast.Ident); ok && fun.Name == "append" && len(stmt.Args) > 0 {
				if target, ok := stmt.Args[0].(*ast.Ident); ok && !declaredWithin(info, target, rng) {
					if !sortedAfter(info, enclosing, rng, target) {
						pass.Reportf(stmt.Pos(),
							"map iteration order is random; append into %q is order-sensitive — sort the keys first or sort %q afterwards", target.Name, target.Name)
					}
				}
				return true
			}
			// builder/hash writes: sb.WriteString(...), h.Write(...).
			if _, name, ok := methodCallOn(info, stmt); ok && writeMethods[name] {
				if sel, ok := stmt.Fun.(*ast.SelectorExpr); ok {
					if root := rootIdent(sel.X); root != nil && !declaredWithin(info, root, rng) {
						pass.Reportf(stmt.Pos(),
							"map iteration order is random; writing to %q inside the loop is order-sensitive — sort the keys first", root.Name)
					}
				}
				return true
			}
			// fmt.Fprint*(sink, ...) into an outer builder/hash.
			if pkgPath, name, ok := pkgFuncCall(info, stmt); ok && pkgPath == "fmt" && strings.HasPrefix(name, "Fprint") && len(stmt.Args) > 0 {
				if root := rootIdent(stmt.Args[0]); root != nil && !declaredWithin(info, root, rng) {
					pass.Reportf(stmt.Pos(),
						"map iteration order is random; fmt.%s into %q inside the loop is order-sensitive — sort the keys first", name, root.Name)
				}
			}
		}
		return true
	})
}

// rootIdent returns the base identifier of an expression like x, x.f, x.f.g,
// &x, or x[i]; nil if there is none.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, after the range loop in the same function
// body, target is passed to a call whose name mentions sort (sort.Strings,
// sort.Slice, slices.Sort, a sortUnique helper, ...): the collect-then-sort
// idiom that restores determinism.
func sortedAfter(info *types.Info, enclosing *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	obj := info.Uses[target]
	if obj == nil {
		return false
	}
	found := false
	inspectShallow(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if !strings.Contains(strings.ToLower(calleeName(call)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(arg); root != nil && info.Uses[root] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calleeName renders the called function's name: "Strings" for sort.Strings,
// "sortUnique" for a local helper, "" when unknown.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return f.Sel.Name
	}
	return ""
}
