package lint

import "strings"

// Policy decides which analyzers govern which packages.
type Policy interface {
	// Applies reports whether the named analyzer runs on the package with
	// the given module-relative path.
	Applies(analyzer, relPath string) bool
}

// Rule scopes one analyzer to a set of package-path patterns. A pattern is a
// module-relative path matched exactly, a "dir/..." prefix, or "..." for
// every package.
type Rule struct {
	Analyzer string
	Packages []string
}

// TablePolicy is a Policy declared as one Go table: the rule list is the
// single source of truth for where each invariant is enforced.
type TablePolicy []Rule

// DefaultPolicy scopes the suite to this repository.
//
// The wallclock set is the sim-deterministic core — every package whose
// behavior must replay bit-for-bit from an injected clock — plus the services
// (api, core, events) that default to real time but must route it through an
// injectable field. The maporder set is every package where iteration order
// feeds a hash, a plan, or a persisted artifact. locksend and errdrop are
// repo-wide: a controller deadlock or a silently dropped error anywhere can
// take the queue down.
var DefaultPolicy = TablePolicy{
	{Analyzer: "wallclock", Packages: []string{
		"internal/sim",
		"internal/planner",
		"internal/speculation",
		"internal/sched",
		"internal/queue",
		"internal/conflict",
		"internal/core",
		"internal/api",
		"internal/events",
		"internal/reliability",
		"internal/shard",
		"internal/arbiter",
		"internal/experiments",
		"internal/workload",
		"internal/predict",
		"internal/buildgraph",
		"internal/buildsys",
		"internal/strategies",
		"internal/metrics",
	}},
	{Analyzer: "seedrand", Packages: []string{"internal/...", "cmd/..."}},
	{Analyzer: "maporder", Packages: []string{
		"internal/buildgraph",
		"internal/buildsys",
		"internal/planner",
		"internal/speculation",
		"internal/sched",
		"internal/conflict",
		"internal/queue",
		"internal/repo",
		"internal/predict",
		"internal/change",
		"internal/workload",
		"internal/experiments",
		"internal/sim",
		"internal/core",
		"internal/strategies",
		"internal/reliability",
		"internal/shard",
		"internal/arbiter",
	}},
	{Analyzer: "locksend", Packages: []string{"..."}},
	{Analyzer: "errdrop", Packages: []string{"internal/...", "cmd/..."}},
	// The interprocedural suite (mglint v2). lockorder and goleak are
	// repo-wide like locksend: a deadlock cycle or a leaked goroutine
	// anywhere takes the queue down. atomicmix covers all first-party code.
	// tainttime governs the same sim-deterministic core as wallclock — it is
	// wallclock's transitive closure.
	{Analyzer: "lockorder", Packages: []string{"..."}},
	{Analyzer: "goleak", Packages: []string{"..."}},
	{Analyzer: "atomicmix", Packages: []string{"internal/...", "cmd/..."}},
	{Analyzer: "tainttime", Packages: []string{
		"internal/sim",
		"internal/planner",
		"internal/speculation",
		"internal/sched",
		"internal/queue",
		"internal/conflict",
		"internal/core",
		"internal/events",
		"internal/reliability",
		"internal/shard",
		"internal/arbiter",
		"internal/experiments",
		"internal/workload",
		"internal/predict",
		"internal/buildgraph",
		"internal/buildsys",
		"internal/strategies",
		"internal/metrics",
	}},
}

// Applies implements Policy.
func (t TablePolicy) Applies(analyzer, relPath string) bool {
	for _, r := range t {
		if r.Analyzer != analyzer {
			continue
		}
		for _, pat := range r.Packages {
			if matchPattern(pat, relPath) {
				return true
			}
		}
	}
	return false
}

// matchPattern matches a module-relative path against a pattern: exact,
// "dir/..." prefix, or the catch-all "...".
func matchPattern(pat, relPath string) bool {
	if pat == "..." {
		return true
	}
	if strings.HasSuffix(pat, "/...") {
		prefix := strings.TrimSuffix(pat, "/...")
		return relPath == prefix || strings.HasPrefix(relPath, prefix+"/")
	}
	return pat == relPath
}

// allPolicy applies every analyzer everywhere (fixture tests).
type allPolicy struct{}

func (allPolicy) Applies(string, string) bool { return true }

// AllPolicy returns a policy with no scoping, for tests and one-off runs.
func AllPolicy() Policy { return allPolicy{} }
