package lint

import "go/ast"

// SeedrandAnalyzer flags calls to math/rand's package-level functions
// (rand.Intn, rand.Float64, rand.Shuffle, ...) in library code. Those draw
// from the global, racily shared source, so two runs with identical configs
// produce different workloads and experiments stop being replayable. RNGs
// must be constructed with rand.New(rand.NewSource(seed)) and injected; the
// constructors themselves (New, NewSource, NewZipf) are allowed.
var SeedrandAnalyzer = &Analyzer{
	Name: "seedrand",
	Doc:  "disallow global math/rand functions; RNGs must be seeded and injected",
	Run:  runSeedrand,
}

var seedrandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runSeedrand(pass *Pass) {
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass.Pkg.Info, call)
			if !ok {
				return true
			}
			if pkgPath != "math/rand" && pkgPath != "math/rand/v2" {
				return true
			}
			if seedrandAllowed[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"global rand.%s uses the shared math/rand source; seed a *rand.Rand and inject it", name)
			return true
		})
	}
}
