package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Summary is the per-function fact sheet the interprocedural analyzers
// compose. Every transitive field is propagated along static, same-goroutine
// call edges only: interface and funcvalue edges over-approximate call
// targets so badly that following them would drown the report in
// false positives (see DESIGN.md §4i for the trade-off).
type Summary struct {
	// Blocks reports that calling this function may block the caller's
	// goroutine: a channel send/receive, a range over a channel, a select
	// without default, or sync.WaitGroup.Wait, here or in a callee.
	Blocks bool
	// BlockWhat describes the witness op ("channel send"), BlockPath the
	// call chain to it ("" when the op is in this very function, else
	// "via pkg.f → pkg.g"), and BlockPos its position.
	BlockWhat string
	BlockPath string
	BlockPos  token.Pos

	// Hangs reports that this function may never return: it (or a callee on
	// every-path... conservatively, any reachable callee) contains an
	// unconditional for-loop with no reachable return, break, or process
	// exit.
	Hangs    bool
	HangPath string
	HangPos  token.Pos

	// Acquires maps lock class keys (lockClassKey) to the site where this
	// function — or a transitive callee — acquires them, even if released
	// before returning.
	Acquires map[string]AcqSite

	// ReturnsTainted reports that some return value derives from the wall
	// clock (time.Now/Since/Until) or the global math/rand source.
	// TaintWhy names the root source and chain ("time.Now at sim.go:10" or
	// "pkg.f → time.Now at x.go:3").
	ReturnsTainted bool
	TaintWhy       string
	// ParamFlows[i] reports that parameter i can flow into a return value,
	// which is how caller-side taint rides through helper functions.
	ParamFlows []bool
}

// AcqSite is where a lock class is acquired, with the call chain when the
// acquisition happens in a callee.
type AcqSite struct {
	Pos  token.Pos
	Path string // "" when direct, else "via pkg.f → pkg.g"
}

// blockOp is one directly-blocking operation in a function body.
type blockOp struct {
	pos  token.Pos
	what string
}

// computeSummaries fills every node's summary bottom-up over the SCC
// condensation of the static call graph. Within a cycle the transitive facts
// are iterated to a fixpoint (they are monotone booleans and set unions, so
// this terminates).
func computeSummaries(m *Module) {
	for _, n := range m.Nodes {
		n.summary = directSummary(m, n)
	}
	for _, scc := range sccOrder(m.Nodes) {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if propagateCallees(n) {
					changed = true
				}
			}
			// Acyclic components converge in one pass; only real recursion
			// iterates.
			if len(scc) == 1 {
				break
			}
		}
	}
	computeTaintSummaries(m)
}

// Summary returns the node's computed summary (never nil after BuildModule).
func (n *FuncNode) Summary() *Summary { return n.summary }

// directSummary computes the facts visible in one function body alone.
func directSummary(m *Module, n *FuncNode) *Summary {
	s := &Summary{Acquires: map[string]AcqSite{}}
	for _, op := range directBlockOps(n.Pkg, n.Body) {
		// A reasoned //lint:ignore locksend at the op itself (e.g. a send on
		// a channel provably buffered for all its sends) removes it from the
		// summary, silencing every transitive caller finding at the root.
		if m.suppressedAt(n.Pkg, op.pos, "locksend") {
			continue
		}
		s.Blocks = true
		s.BlockWhat = op.what
		s.BlockPos = op.pos
		break
	}
	for _, pos := range inescapableLoops(n.Body) {
		if m.suppressedAt(n.Pkg, pos, "goleak") {
			continue
		}
		s.Hangs = true
		s.HangPos = pos
		break
	}
	info := n.Pkg.Info
	inspectShallow(n.Body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, _, key, ok := mutexCall(n.Pkg, info, call); ok && kind == evLock && key != "" {
			if m.suppressedAt(n.Pkg, call.Pos(), "lockorder") {
				return true
			}
			if _, dup := s.Acquires[key]; !dup {
				s.Acquires[key] = AcqSite{Pos: call.Pos()}
			}
		}
		return true
	})
	return s
}

// propagateCallees folds the static callees' summaries into n's; reports
// whether anything changed.
func propagateCallees(n *FuncNode) bool {
	s := n.summary
	changed := false
	for _, e := range n.Out {
		if e.Kind != EdgeStatic || e.Concurrent {
			continue
		}
		cs := e.Callee.summary
		if cs == nil {
			continue
		}
		if cs.Blocks && !s.Blocks {
			s.Blocks = true
			s.BlockWhat = cs.BlockWhat
			s.BlockPos = cs.BlockPos
			s.BlockPath = extendPath(e.Callee.Name, cs.BlockPath)
			changed = true
		}
		if cs.Hangs && !s.Hangs {
			s.Hangs = true
			s.HangPos = cs.HangPos
			s.HangPath = extendPath(e.Callee.Name, cs.HangPath)
			changed = true
		}
		for key, site := range cs.Acquires {
			if _, ok := s.Acquires[key]; ok {
				continue
			}
			s.Acquires[key] = AcqSite{Pos: site.Pos, Path: extendPath(e.Callee.Name, site.Path)}
			changed = true
		}
	}
	return changed
}

// extendPath prepends one callee hop to an existing chain description.
func extendPath(callee, rest string) string {
	if rest == "" {
		return "via " + callee
	}
	return "via " + callee + " " + strings.TrimPrefix(rest, "via ")
}

// directBlockOps lists the operations in body (shallow) that block the
// current goroutine: the same op set locksend polices. Deferred calls count —
// they run on this goroutine before it returns.
func directBlockOps(pkg *Package, body *ast.BlockStmt) []blockOp {
	info := pkg.Info
	var ops []blockOp
	inspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			ops = append(ops, blockOp{v.Pos(), "channel send"})
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				ops = append(ops, blockOp{v.Pos(), "channel receive"})
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(v.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ops = append(ops, blockOp{v.Pos(), "range over channel"})
				}
			}
		case *ast.SelectStmt:
			for _, clause := range v.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					return false // non-blocking poll
				}
			}
			ops = append(ops, blockOp{v.Pos(), "blocking select"})
			return false
		case *ast.CallExpr:
			if fn := calledMethod(info, v); fn != nil && fn.Name() == "Wait" && methodRecvPath(fn) == "sync.WaitGroup" {
				ops = append(ops, blockOp{v.Pos(), "sync.WaitGroup.Wait"})
			}
		}
		return true
	})
	sort.Slice(ops, func(i, j int) bool { return ops[i].pos < ops[j].pos })
	return ops
}

// inescapableLoops returns the positions of unconditional for-loops in body
// (shallow) that contain no reachable exit: no return, no break that targets
// the loop, no goto, and no process-exit call. Such a loop, once entered,
// runs for the life of the goroutine — for a spawned goroutine that means a
// leak unless the loop can return via a done/stop receive or context check
// (which would appear as a return or break inside it).
func inescapableLoops(body *ast.BlockStmt) []token.Pos {
	var loops []token.Pos
	inspectShallow(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !loopHasExit(loop) {
			loops = append(loops, loop.Pos())
		}
		return true
	})
	return loops
}

// loopHasExit reports whether the unconditional loop's body contains a
// statement that escapes it: return, goto, a break whose target is this loop
// (unlabeled break inside a nested for/select/switch targets the inner
// construct — the classic `for { select { case <-done: break } }` bug is
// correctly treated as NOT exiting), panic, or a process-exit call.
func loopHasExit(loop *ast.ForStmt) bool {
	// Any labeled break is accepted as a possible exit (the label may name
	// this loop; resolving labels precisely is not worth the false-positive
	// risk — conservative toward not reporting).
	exit := false
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if exit || n == nil {
			return
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return // separate goroutine/call; its returns do not exit the loop
		case *ast.ReturnStmt:
			exit = true
			return
		case *ast.BranchStmt:
			switch v.Tok {
			case token.BREAK:
				if v.Label != nil || depth == 0 {
					exit = true
				}
			case token.GOTO:
				exit = true // may jump out; conservative toward not reporting
			}
			return
		case *ast.CallExpr:
			if isProcessExit(v) {
				exit = true
				return
			}
		case *ast.ForStmt:
			walkAll(v.Init, v.Cond, v.Post, depth, walk)
			walk(v.Body, depth+1)
			return
		case *ast.RangeStmt:
			walkAll(v.X, nil, nil, depth, walk)
			walk(v.Body, depth+1)
			return
		case *ast.SelectStmt:
			walk(v.Body, depth+1)
			return
		case *ast.SwitchStmt:
			walkAll(v.Init, v.Tag, nil, depth, walk)
			walk(v.Body, depth+1)
			return
		case *ast.TypeSwitchStmt:
			walkAll(v.Init, nil, nil, depth, walk)
			walk(v.Assign, depth)
			walk(v.Body, depth+1)
			return
		}
		for _, c := range childNodes(n) {
			walk(c, depth)
		}
	}
	walk(loop.Body, 0)
	return exit
}

// walkAll visits the non-nil nodes at the same nesting depth; absent AST
// fields are nil interface values, so a plain nil check suffices.
func walkAll(a, b, c ast.Node, depth int, walk func(ast.Node, int)) {
	for _, n := range []ast.Node{a, b, c} {
		if n != nil {
			walk(n, depth)
		}
	}
}

// childNodes returns the immediate children of n, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// isProcessExit reports calls that terminate the goroutine or process:
// os.Exit, runtime.Goexit, log.Fatal*, and the panic builtin.
func isProcessExit(call *ast.CallExpr) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := f.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return f.Sel.Name == "Exit"
		case "runtime":
			return f.Sel.Name == "Goexit"
		case "log":
			return strings.HasPrefix(f.Sel.Name, "Fatal")
		}
	}
	return false
}

// lockClassKey names the lock a Lock/Unlock call operates on in a way that is
// stable across functions: "pkg.Type.field" for a mutex field (including
// promoted/embedded mutexes), "pkg.var" for a package-level mutex, and a
// position-unique "local:..." key for function-local mutexes. Two different
// instances of the same struct share a class — lock-order analysis is
// class-based, which is standard (and sound for the AB/BA pattern; it cannot
// order two instances of the same class, see DESIGN.md §4i).
func lockClassKey(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	info := pkg.Info
	x := ast.Unparen(sel.X)

	// p.Lock() with an embedded sync.Mutex: the selection's index path names
	// the embedded field chain.
	if s, ok := info.Selections[sel]; ok && len(s.Index()) > 1 {
		t := deref(s.Recv())
		idx := s.Index()
		names := []string{namedPathOrStr(t)}
		for _, i := range idx[:len(idx)-1] {
			st, ok := deref(t).Underlying().(*types.Struct)
			if !ok {
				break
			}
			f := st.Field(i)
			names = append(names, f.Name())
			t = f.Type()
		}
		return strings.Join(names, "."), true
	}

	switch mx := x.(type) {
	case *ast.SelectorExpr:
		// a.b.mu → "<type of a.b>.mu"
		if parent := info.TypeOf(mx.X); parent != nil {
			if np := namedPath(parent); np != "" {
				return np + "." + mx.Sel.Name, true
			}
		}
		// pkg.mu → "pkgpath.mu"
		if v, ok := info.Uses[mx.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		obj, _ := info.Uses[mx].(*types.Var)
		if obj == nil {
			return "", false
		}
		if obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), true
		}
		// Function-local mutex: unique per declaration.
		return fmt.Sprintf("local:%s:%d", obj.Name(), obj.Pos()), true
	case *ast.IndexExpr:
		if t := info.TypeOf(mx); t != nil {
			if np := namedPath(t); np != "" {
				return np, true
			}
		}
	}
	return "", false
}

func namedPathOrStr(t types.Type) string {
	if np := namedPath(t); np != "" {
		return np
	}
	return t.String()
}
