package lint

import (
	"go/ast"
	"go/types"
)

// Determinism taint: values derived from time.Now/Since/Until or the global
// math/rand functions. The intra-function analysis is flow-insensitive label
// propagation over local objects; the interprocedural part is the
// ReturnsTainted / ParamFlows summary fields, computed bottom-up so a wall
// clock read three packages away still taints the value a sim-deterministic
// package receives.

// taintLabel tracks where a value may come from: the wall clock / global
// rand ("real" taint), and/or any of the enclosing function's parameters
// (a bitset; functions with more than 64 parameters do not occur).
type taintLabel struct {
	real   bool
	params uint64
}

func (l taintLabel) union(o taintLabel) taintLabel {
	return taintLabel{real: l.real || o.real, params: l.params | o.params}
}

func (l taintLabel) empty() bool { return !l.real && l.params == 0 }

// taintState is the fixpoint result for one function: labels for every local
// object plus the label and provenance of the function's return values.
type taintState struct {
	m    *Module
	node *FuncNode
	// labels maps params, locals, and named results to what flows into them.
	labels map[types.Object]taintLabel
	// why records, for each object with real taint, a human-readable root
	// cause ("time.Now at sim.go:12" or "via pkg.f → time.Now at x.go:3").
	why map[types.Object]string

	retLabel taintLabel
	retWhy   string
	params   []*types.Var
}

// funcTaint runs the intra-function taint fixpoint for one node, using the
// already-computed summaries of its static callees (so it must run in
// bottom-up SCC order during summary construction; analyzers re-running it
// later see the final summaries).
func funcTaint(m *Module, n *FuncNode) *taintState {
	st := &taintState{
		m:      m,
		node:   n,
		labels: map[types.Object]taintLabel{},
		why:    map[types.Object]string{},
	}
	if n.Sig != nil {
		for i := 0; i < n.Sig.Params().Len(); i++ {
			p := n.Sig.Params().At(i)
			st.params = append(st.params, p)
			if i < 64 {
				st.labels[p] = taintLabel{params: 1 << uint(i)}
			}
		}
	}
	// Flow-insensitive fixpoint: iterate assignments until stable. Function
	// bodies are small; the label lattice height bounds iterations anyway.
	for iter := 0; iter < 32; iter++ {
		if !st.sweep() {
			break
		}
	}
	st.computeReturns()
	return st
}

// sweep propagates labels through every statement once; reports change.
func (st *taintState) sweep() bool {
	changed := false
	assign := func(obj types.Object, l taintLabel, why string) {
		if obj == nil || l.empty() {
			return
		}
		old := st.labels[obj]
		merged := old.union(l)
		if merged != old {
			st.labels[obj] = merged
			changed = true
		}
		if l.real && st.why[obj] == "" && why != "" {
			st.why[obj] = why
		}
	}
	inspectShallow(st.node.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			st.sweepAssign(v, assign)
		case *ast.GenDecl:
			for _, spec := range v.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if len(vs.Values) == len(vs.Names) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					if rhs != nil {
						l, why := st.exprLabel(rhs)
						assign(st.node.Pkg.Info.Defs[name], l, why)
					}
				}
			}
		case *ast.RangeStmt:
			l, why := st.exprLabel(v.X)
			if !l.empty() {
				for _, e := range []ast.Expr{v.Key, v.Value} {
					if id, ok := e.(*ast.Ident); ok && e != nil {
						assign(st.objOf(id), l, why)
					}
				}
			}
		}
		return true
	})
	return changed
}

func (st *taintState) sweepAssign(v *ast.AssignStmt, assign func(types.Object, taintLabel, string)) {
	if len(v.Lhs) == len(v.Rhs) {
		for i := range v.Lhs {
			l, why := st.exprLabel(v.Rhs[i])
			st.assignTo(v.Lhs[i], l, why, assign)
		}
		return
	}
	// Tuple assignment: every LHS gets the single RHS's label.
	if len(v.Rhs) == 1 {
		l, why := st.exprLabel(v.Rhs[0])
		for _, lhs := range v.Lhs {
			st.assignTo(lhs, l, why, assign)
		}
	}
}

// assignTo taints the object behind an assignment target. A store into a
// field or element taints the whole root object (coarse, conservative).
func (st *taintState) assignTo(lhs ast.Expr, l taintLabel, why string, assign func(types.Object, taintLabel, string)) {
	if l.empty() {
		return
	}
	if root := rootIdent(lhs); root != nil {
		assign(st.objOf(root), l, why)
	}
}

func (st *taintState) objOf(id *ast.Ident) types.Object {
	info := st.node.Pkg.Info
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// exprLabel computes what flows into an expression, with a root-cause string
// when real taint is involved.
func (st *taintState) exprLabel(e ast.Expr) (taintLabel, string) {
	if e == nil {
		return taintLabel{}, ""
	}
	switch v := e.(type) {
	case *ast.Ident:
		obj := st.objOf(v)
		if obj == nil {
			return taintLabel{}, ""
		}
		return st.labels[obj], st.why[obj]
	case *ast.ParenExpr:
		return st.exprLabel(v.X)
	case *ast.UnaryExpr:
		return st.exprLabel(v.X)
	case *ast.StarExpr:
		return st.exprLabel(v.X)
	case *ast.BinaryExpr:
		lx, wx := st.exprLabel(v.X)
		ly, wy := st.exprLabel(v.Y)
		return lx.union(ly), firstNonEmpty(wx, wy)
	case *ast.SelectorExpr:
		// x.f carries x's taint (field of a tainted struct). Qualified
		// identifiers (pkg.Var) have no local label.
		if _, isPkg := st.node.Pkg.Info.Uses[selRoot(v)].(*types.PkgName); isPkg {
			return taintLabel{}, ""
		}
		return st.exprLabel(v.X)
	case *ast.IndexExpr:
		lx, wx := st.exprLabel(v.X)
		li, wi := st.exprLabel(v.Index)
		return lx.union(li), firstNonEmpty(wx, wi)
	case *ast.SliceExpr:
		return st.exprLabel(v.X)
	case *ast.TypeAssertExpr:
		return st.exprLabel(v.X)
	case *ast.CompositeLit:
		var l taintLabel
		var why string
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			le, we := st.exprLabel(el)
			l = l.union(le)
			why = firstNonEmpty(why, we)
		}
		return l, why
	case *ast.CallExpr:
		return st.callLabel(v)
	case *ast.FuncLit:
		return taintLabel{}, ""
	}
	return taintLabel{}, ""
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

func selRoot(sel *ast.SelectorExpr) *ast.Ident {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return id
	}
	return nil
}

// callLabel classifies a call's result taint: a direct source, a module
// callee whose summary returns taint (or forwards tainted arguments), a
// method on a tainted receiver, or — for unknown (non-module) functions — the
// conservative union of argument and receiver taint (this is what carries
// t.UnixNano(), fmt.Sprintf("%d", t), and strconv conversions).
func (st *taintState) callLabel(call *ast.CallExpr) (taintLabel, string) {
	info := st.node.Pkg.Info
	// Conversions propagate the operand.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.exprLabel(call.Args[0])
		}
		return taintLabel{}, ""
	}
	if src := taintSourceCall(info, call); src != "" {
		return taintLabel{real: true}, src + " at " + posString(st.node.Pkg.Fset, call.Pos())
	}

	var out taintLabel
	var why string
	resolved := false
	for _, e := range st.m.CalleesOf(call) {
		if e.Kind != EdgeStatic {
			continue
		}
		resolved = true
		cs := e.Callee.Summary()
		if cs == nil {
			continue
		}
		if cs.ReturnsTainted {
			out.real = true
			why = firstNonEmpty(why, extendPath(e.Callee.Name, "")+" → "+cs.TaintWhy)
		}
		for i, flows := range cs.ParamFlows {
			if !flows {
				continue
			}
			args := call.Args
			if i < len(args) {
				l, w := st.exprLabel(args[i])
				out = out.union(l)
				why = firstNonEmpty(why, w)
			}
		}
	}
	// Method calls carry receiver taint regardless of resolution (module
	// methods may also forward it; the union is conservative either way).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := info.Uses[selRoot(sel)].(*types.PkgName); !isPkg {
			if s, isSel := info.Selections[sel]; isSel && s.Kind() == types.MethodVal {
				l, w := st.exprLabel(sel.X)
				out = out.union(l)
				why = firstNonEmpty(why, w)
			}
		}
	}
	if !resolved {
		// Unknown function: taint in, taint out.
		for _, arg := range call.Args {
			l, w := st.exprLabel(arg)
			out = out.union(l)
			why = firstNonEmpty(why, w)
		}
	}
	return out, why
}

// taintSourceCall reports the root determinism-taint sources: wall-clock
// reads and global math/rand draws. The seeded-constructor calls are clean —
// an injected *rand.Rand is exactly the sanctioned idiom.
func taintSourceCall(info *types.Info, call *ast.CallExpr) string {
	pkgPath, name, ok := pkgFuncCall(info, call)
	if !ok {
		return ""
	}
	switch pkgPath {
	case "time":
		if wallclockFuncs[name] {
			return "time." + name
		}
	case "math/rand", "math/rand/v2":
		if !seedrandAllowed[name] {
			return "rand." + name
		}
	}
	return ""
}

// computeReturns folds every return statement (and named results) into the
// function's return label.
func (st *taintState) computeReturns() {
	sig := st.node.Sig
	var named []*types.Var
	if sig != nil {
		for i := 0; i < sig.Results().Len(); i++ {
			if r := sig.Results().At(i); r.Name() != "" {
				named = append(named, r)
			}
		}
	}
	inspectShallow(st.node.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			for _, r := range named {
				st.retLabel = st.retLabel.union(st.labels[r])
				st.retWhy = firstNonEmpty(st.retWhy, st.why[r])
			}
			return true
		}
		for _, r := range ret.Results {
			l, w := st.exprLabel(r)
			st.retLabel = st.retLabel.union(l)
			st.retWhy = firstNonEmpty(st.retWhy, w)
		}
		return true
	})
	// A bare-return-free function can still publish via named results at the
	// closing brace only through panic/recover shapes; ignore.
}

// computeTaintSummaries fills ReturnsTainted/ParamFlows bottom-up. It runs
// after the other summary fields because callLabel consults callee
// summaries; SCCs iterate to fixpoint like propagateCallees.
func computeTaintSummaries(m *Module) {
	for _, scc := range sccOrder(m.Nodes) {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				st := funcTaint(m, n)
				s := n.summary
				if st.retLabel.real && !s.ReturnsTainted {
					s.ReturnsTainted = true
					s.TaintWhy = st.retWhy
					if s.TaintWhy == "" {
						s.TaintWhy = "wall-clock/global-rand derived value"
					}
					changed = true
				}
				flows := make([]bool, len(st.params))
				for i := range st.params {
					if i < 64 && st.retLabel.params&(1<<uint(i)) != 0 {
						flows[i] = true
					}
				}
				for i, f := range flows {
					if f && (i >= len(s.ParamFlows) || !s.ParamFlows[i]) {
						changed = true
					}
				}
				s.ParamFlows = flows
			}
			if len(scc) == 1 {
				break
			}
		}
	}
}
