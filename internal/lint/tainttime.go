package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TainttimeAnalyzer is the interprocedural upgrade of wallclock/seedrand:
// instead of "no direct time.Now call in this package", it enforces "no value
// derived from the wall clock or the global math/rand source reaches a
// determinism-sensitive output in this package" — no matter how many call
// hops away the source is. A helper in a non-deterministic package that
// returns time.Now() taints its result; when a sim-deterministic package
// stores that result under a map key, feeds it to a hash or sort, sends it
// on a channel, or branches on it, the sink is reported with the full chain
// back to the clock read.
//
// Taint rides through module functions via their summaries (ReturnsTainted,
// ParamFlows) along static call edges, and through unknown (stdlib) calls by
// the conservative args-to-result rule — which is what carries
// t.UnixNano(), fmt.Sprintf("%d", t), and string conversions. Direct
// time.Now calls in a governed package are wallclock's finding; tainttime
// reports them again only when they actually reach a sink (the fixture pins
// both markers on such lines).
var TainttimeAnalyzer = &Analyzer{
	Name: "tainttime",
	Doc:  "no wall-clock/global-rand derived value may reach a hash, sort key, map key, channel, or branch in deterministic packages",
	Run:  runTainttime,
}

func runTainttime(pass *Pass) {
	if pass.Mod == nil {
		return
	}
	for _, file := range pass.Pkg.Syntax {
		eachFunc(file, func(body *ast.BlockStmt) {
			node := pass.Mod.NodeByBody(body)
			if node == nil {
				return
			}
			st := funcTaint(pass.Mod, node)
			checkTaintSinks(pass, st, body)
		})
	}
}

// checkTaintSinks walks one function body (shallow) reporting every sink a
// real-tainted value reaches.
func checkTaintSinks(pass *Pass, st *taintState, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	report := func(e ast.Expr, sink string) {
		l, why := st.exprLabel(e)
		if !l.real {
			return
		}
		if why == "" {
			why = "wall-clock/global-rand derived value"
		}
		pass.Reportf(e.Pos(), "%s derived from the wall clock or global rand (%s); deterministic packages must take time/randomness from injected sources", sink, why)
	}
	inspectShallow(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range v.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if t := info.TypeOf(idx.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							report(idx.Index, "map insertion key")
						}
					}
				}
			}
		case *ast.SendStmt:
			report(v.Value, "value published on a channel")
		case *ast.IfStmt:
			report(v.Cond, "branch condition")
		case *ast.SwitchStmt:
			if v.Tag != nil {
				report(v.Tag, "switch value")
			}
		case *ast.CallExpr:
			if pkgPath, _, ok := pkgFuncCall(info, v); ok && (pkgPath == "sort" || pkgPath == "slices") {
				for _, arg := range v.Args {
					report(arg, "sort input")
				}
				return true
			}
			if recv, name, ok := methodCallOn(info, v); ok && (writeMethods[name] || name == "Sum") {
				if np := namedPath(recv); strings.HasPrefix(np, "hash.") || strings.HasPrefix(np, "crypto/") {
					for _, arg := range v.Args {
						report(arg, "hash input")
					}
				}
			}
		}
		return true
	})
}
