// Package alltrip deliberately violates every invariant at once: one
// function tripping all five analyzers.
package alltrip

import (
	"math/rand"
	"strings"
	"sync"
	"time"
)

// S couples a mutex to a channel, the deadlock-prone shape.
type S struct {
	mu sync.Mutex
	ch chan string
}

func mayFail() error { return nil }

// Everything trips wallclock, seedrand, maporder, locksend, and errdrop.
func (s *S) Everything(m map[string]int) string {
	t := time.Now()    // want wallclock
	n := rand.Intn(10) // want seedrand
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want maporder
	}
	s.mu.Lock()
	s.ch <- sb.String() // want locksend
	s.mu.Unlock()
	mayFail() // want errdrop
	_, _ = t, n
	return sb.String()
}
