// Package alltrip deliberately violates every invariant at once: one
// function tripping all nine analyzers.
package alltrip

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// S couples a mutex to a channel, the deadlock-prone shape.
type S struct {
	mu sync.Mutex
	ch chan string
}

// T carries the second lock of the ordering cycle.
type T struct{ mu sync.Mutex }

var other T

// hits is atomic in Everything's increment, plain in its read.
var hits int64

func mayFail() error { return nil }

// Everything trips wallclock, seedrand, maporder, locksend, errdrop,
// lockorder, goleak, atomicmix, and tainttime.
func (s *S) Everything(m map[string]int) string {
	t := time.Now()    // want wallclock
	n := rand.Intn(10) // want seedrand
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want maporder
	}
	go func() { // want goleak
		for {
			<-s.ch
		}
	}()
	s.mu.Lock()
	other.mu.Lock() // want lockorder
	other.mu.Unlock()
	s.ch <- sb.String() // want locksend
	s.mu.Unlock()
	mayFail() // want errdrop
	if t.UnixNano() > int64(n) { // want tainttime
		atomic.AddInt64(&hits, 1)
	}
	_ = hits // want atomicmix
	return sb.String()
}

// Reverse closes the S.mu/T.mu cycle Everything opens.
func (s *S) Reverse() {
	other.mu.Lock()
	s.mu.Lock() // want lockorder
	s.mu.Unlock()
	other.mu.Unlock()
}
