// Package atomicmix exercises the atomic/plain mixed-access analyzer: a field
// or package variable touched through sync/atomic anywhere in the module must
// be touched through sync/atomic everywhere; composite-literal initialization
// is the only sanctioned plain use.
package atomicmix

import "sync/atomic"

type counter struct {
	// hits is mixed: atomic in Incr, plain in Snapshot and Reset.
	hits int64
	// total is atomic-only.
	total int64
	// name is never touched atomically, so plain access is fine.
	name string
}

func (c *counter) Incr() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// Snapshot reads the hot counter bare: a data race with Incr.
func (c *counter) Snapshot() int64 {
	return c.hits // want atomicmix
}

// Reset stores bare for the same field.
func (c *counter) Reset() {
	c.hits = 0 // want atomicmix
}

func (c *counter) Total() int64 {
	return atomic.LoadInt64(&c.total)
}

func (c *counter) Name() string {
	return c.name
}

// NewCounter initializes fields in a composite literal: the struct is not
// shared yet, so this is exempt.
func NewCounter(name string) *counter {
	return &counter{hits: 0, total: 0, name: name}
}

// ops is a package-level variable with the same split: atomic increment in
// one function, bare read in another.
var ops int64

func IncrOps() {
	atomic.AddInt64(&ops, 1)
}

func ReadOps() int64 {
	return ops // want atomicmix
}
