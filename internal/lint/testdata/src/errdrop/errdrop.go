// Package errdrop exercises the errdrop analyzer: silently discarded error
// returns are findings; handled, explicitly discarded, exempt-family, and
// deferred calls are not.
package errdrop

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

// Bad drops errors silently.
func Bad() {
	mayFail()           // want errdrop
	os.Remove("/tmp/x") // want errdrop
}

// Good handles, explicitly discards, or uses exempt never-fail writers.
func Good() error {
	if err := mayFail(); err != nil {
		return err
	}
	_ = mayFail() // explicit discard is visible and allowed
	fmt.Println("the fmt print family is exempt")
	var sb strings.Builder
	sb.WriteString("builder writes never fail")
	return nil
}

// GoodDefer is exempt: no control flow remains to handle the error.
func GoodDefer(f *os.File) {
	defer f.Close()
}
