// Package goleak exercises the goroutine-termination analyzer: spawned
// bodies (literal or resolved through the call graph) whose unconditional
// loop has no reachable exit are findings; done-channel returns, context
// checks, bounded loops, range-over-channel, and dynamic dispatch are not.
package goleak

import "context"

// Leaky spawns an endless receive loop with no way out.
func Leaky(ch chan int) {
	go func() { // want goleak
		for {
			<-ch
		}
	}()
}

// SelectBreak has the classic bug: break exits the select, not the loop, so
// the goroutine still never terminates.
func SelectBreak(in chan int, done chan struct{}) {
	go func() { // want goleak
		for {
			select {
			case <-in:
			case <-done:
				break
			}
		}
	}()
}

// GoodDone returns on the done receive.
func GoodDone(in chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-in:
			case <-done:
				return
			}
		}
	}()
}

// GoodCtx returns on context cancellation.
func GoodCtx(ctx context.Context, in chan int) {
	go func() {
		for {
			select {
			case <-in:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// spin loops forever with no exit; worker reaches it one call deeper.
func spin(ch chan int) {
	for {
		ch <- 1
	}
}

func worker(ch chan int) {
	spin(ch)
}

// LeakyNamed spawns a named function that hangs directly.
func LeakyNamed(ch chan int) {
	go spin(ch) // want goleak
}

// LeakyTransitive spawns a function that hangs two calls down.
func LeakyTransitive(ch chan int) {
	go worker(ch) // want goleak
}

// GoodBounded loops a bounded number of times.
func GoodBounded(ch chan int) {
	go func() {
		for i := 0; i < 10; i++ {
			ch <- i
		}
	}()
}

// GoodRange terminates when the channel is closed.
func GoodRange(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// GoodLoopBreak exits the loop directly.
func GoodLoopBreak(ch chan int) {
	go func() {
		for {
			if _, ok := <-ch; !ok {
				break
			}
		}
	}()
}

// runner hides a hanging body behind an interface; goleak follows static
// edges only, so dynamic dispatch is not analyzed.
type runner interface{ Run(chan int) }

type spinner struct{}

func (spinner) Run(ch chan int) {
	for {
		ch <- 2
	}
}

func ViaInterface(r runner, ch chan int) {
	go r.Run(ch)
}

// ViaFuncValue likewise hides it behind a function value.
func ViaFuncValue(ch chan int) {
	f := spin
	go f(ch)
}
