// Package lockorder exercises the lock-acquisition-order analyzer: AB/BA
// cycles (direct and through callees) and non-reentrant re-acquisition are
// findings; consistent global order, goroutine-spawned acquisitions, and
// nesting reached only through interface or funcvalue dispatch are not.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// AThenB nests b.mu under a.mu; together with BThenA this is the classic
// deadlock cycle, so both nested acquisitions are reported.
func AThenB() {
	a.mu.Lock()
	b.mu.Lock() // want lockorder
	b.mu.Unlock()
	a.mu.Unlock()
}

// BThenA is the reverse order.
func BThenA() {
	b.mu.Lock()
	a.mu.Lock() // want lockorder
	a.mu.Unlock()
	b.mu.Unlock()
}

func lockB() {
	b.mu.Lock()
	b.mu.Unlock()
}

// AThenBIndirect acquires b.mu through a callee while a.mu is held: the same
// cycle edge, one call away.
func AThenBIndirect() {
	a.mu.Lock()
	lockB() // want lockorder
	a.mu.Unlock()
}

// Reentrant double-locks the same mutex in one function: a certain deadlock,
// Go mutexes are not reentrant.
func Reentrant() {
	a.mu.Lock()
	a.mu.Lock() // want lockorder
	a.mu.Unlock()
	a.mu.Unlock()
}

func lockA() {
	a.mu.Lock()
	a.mu.Unlock()
}

// ReentrantViaCallee may re-acquire a.mu through the callee while holding it.
func ReentrantViaCallee() {
	a.mu.Lock()
	lockA() // want lockorder
	a.mu.Unlock()
}

// Consistent order on a disjoint lock pair: C before D everywhere, no cycle,
// no findings.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

var (
	c C
	d D
)

func CThenD() {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func CThenDAgain() {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

// Spawned acquires d.mu on a fresh goroutine while c.mu is held: no ordering
// edge — the goroutine does not run under the caller's lock.
func Spawned() {
	c.mu.Lock()
	go lockD()
	c.mu.Unlock()
}

// locker hides a reverse acquisition behind an interface; lockorder follows
// static edges only, so no D→C edge (and no cycle) is recorded.
type locker interface{ Grab() }

type reverser struct{}

func (reverser) Grab() {
	c.mu.Lock()
	c.mu.Unlock()
}

func ViaInterface(l locker) {
	d.mu.Lock()
	l.Grab()
	d.mu.Unlock()
}

// ViaFuncValue likewise hides it behind a function value.
func ViaFuncValue() {
	f := lockD
	var e sync.Mutex
	e.Lock()
	f()
	e.Unlock()
}
