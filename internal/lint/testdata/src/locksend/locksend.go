// Package locksend exercises the locksend analyzer: blocking channel
// operations and WaitGroup waits under a held mutex are findings;
// unlock-first, non-blocking polls, and separate goroutine scopes are not.
package locksend

import "sync"

// Q is a queue with the deadlock-prone shape.
type Q struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

// BadSend blocks on a channel while holding the lock.
func (q *Q) BadSend(v int) {
	q.mu.Lock()
	q.ch <- v // want locksend
	q.mu.Unlock()
}

// BadDeferRecv holds the lock (via defer) across a blocking receive.
func (q *Q) BadDeferRecv() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return <-q.ch // want locksend
}

// BadWait blocks on a WaitGroup while holding the lock.
func (q *Q) BadWait() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.wg.Wait() // want locksend
}

// BadSelect blocks in a select with no default while holding the lock.
func (q *Q) BadSelect() {
	q.mu.Lock()
	defer q.mu.Unlock()
	select { // want locksend
	case v := <-q.ch:
		_ = v
	}
}

// GoodUnlockFirst releases before communicating.
func (q *Q) GoodUnlockFirst(v int) {
	q.mu.Lock()
	q.mu.Unlock()
	q.ch <- v
}

// GoodPoll is a non-blocking receive: select with default.
func (q *Q) GoodPoll() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case v := <-q.ch:
		return v, true
	default:
		return 0, false
	}
}

// GoodGoroutine communicates from a separate goroutine scope that does not
// hold the caller's lock.
func (q *Q) GoodGoroutine() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.ch <- 1
	}()
}
