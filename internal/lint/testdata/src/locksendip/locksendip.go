// Package locksendip exercises the interprocedural half of locksend: a call
// made while a mutex is held is reported when any static callee may block
// (transitively), while dynamic dispatch, released locks, and
// reason-suppressed roots stay clean.
package locksendip

import "sync"

type hub struct {
	mu   sync.Mutex
	subs []chan int
	out  chan int
	buf  chan int
}

// notify blocks on an unbuffered send; its summary says so.
func (h *hub) notify(v int) {
	h.out <- v
}

// relay adds a hop: the blocking fact propagates through the chain.
func (h *hub) relay(v int) {
	h.notify(v + 1)
}

// flush parks on a WaitGroup, the other blocking shape summaries carry.
func (h *hub) flush() {
	var wg sync.WaitGroup
	wg.Wait()
}

// BadDirect is the classic intraprocedural finding, unchanged from v1.
func (h *hub) BadDirect(v int) {
	h.mu.Lock()
	h.out <- v // want locksend
	h.mu.Unlock()
}

// Bad publishes through the callee while holding the lock: same deadlock,
// one call away.
func (h *hub) Bad(v int) {
	h.mu.Lock()
	h.notify(v) // want locksend
	h.mu.Unlock()
}

// BadTwoHop reaches the send through two calls.
func (h *hub) BadTwoHop(v int) {
	h.mu.Lock()
	h.relay(v) // want locksend
	h.mu.Unlock()
}

// BadWait blocks on the callee's WaitGroup under the lock.
func (h *hub) BadWait(v int) {
	h.mu.Lock()
	h.flush() // want locksend
	h.mu.Unlock()
}

// Good collects under the lock, releases, then communicates.
func (h *hub) Good(v int) {
	h.mu.Lock()
	h.subs = append(h.subs, nil)
	h.mu.Unlock()
	h.notify(v)
}

// sink hides the blocking send behind an interface; locksend follows static
// edges only, so the dispatch is the caller's responsibility.
type sink interface{ Push(int) }

type chanSink struct{ c chan int }

func (s chanSink) Push(v int) {
	s.c <- v
}

func (h *hub) ViaInterface(s sink, v int) {
	h.mu.Lock()
	s.Push(v)
	h.mu.Unlock()
}

// ViaFuncValue likewise hides it behind a method value.
func (h *hub) ViaFuncValue(v int) {
	f := h.notify
	h.mu.Lock()
	f(v)
	h.mu.Unlock()
}

// seed's send is provably non-blocking and carries a reasoned suppression at
// the root: the summary drops the fact, so callers under a lock stay clean.
func (h *hub) seed() {
	//lint:ignore locksend buf is buffered to 1 and seeded exactly once before any receive, so the send cannot block
	h.buf <- 0
}

func (h *hub) GoodSuppressedRoot() {
	h.mu.Lock()
	h.seed()
	h.mu.Unlock()
}
