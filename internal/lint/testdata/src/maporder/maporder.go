// Package maporder exercises the maporder analyzer: order-sensitive
// accumulation inside a map range is a finding unless the result is sorted;
// order-insensitive sinks (maps, sets, loop-locals) are not.
package maporder

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
)

// BadAppend collects keys in random order and never sorts them.
func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maporder
	}
	return out
}

// GoodSortedAfter is the collect-then-sort idiom.
func GoodSortedAfter(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// BadBuilder streams keys into a builder in random order.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want maporder
	}
	return sb.String()
}

// BadHash feeds a digest in random order — the Algorithm 1 failure shape.
func BadHash(m map[string]string) []byte {
	h := sha256.New()
	for k, v := range m {
		fmt.Fprintf(h, "%s=%s", k, v) // want maporder
	}
	return h.Sum(nil)
}

// BadConcat builds a string in random order.
func BadConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want maporder
	}
	return s
}

// GoodSetBuild writes into another map: order-insensitive.
func GoodSetBuild(m map[string]int) map[string]bool {
	out := map[string]bool{}
	for k := range m {
		out[k] = true
	}
	return out
}

// GoodLoopLocal appends to a slice scoped to one iteration.
func GoodLoopLocal(m map[string]int) int {
	n := 0
	for _, v := range m {
		local := []int{}
		local = append(local, v)
		n += local[0]
	}
	return n
}
