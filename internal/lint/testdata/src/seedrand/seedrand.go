// Package seedrand exercises the seedrand analyzer: global math/rand
// functions are findings, seeded injected RNGs are not.
package seedrand

import "math/rand"

// Bad draws from the global source.
func Bad() int {
	rand.Shuffle(3, func(i, j int) {}) // want seedrand
	return rand.Intn(10)               // want seedrand
}

// Good seeds and injects.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
