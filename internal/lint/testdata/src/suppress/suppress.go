// Package suppress exercises //lint:ignore handling: a directive with a
// reason silences the finding on its line or the next; a reasonless
// directive suppresses nothing and is itself reported.
package suppress

import "time"

// Suppressed carries a directive with a reason on the preceding line.
func Suppressed() time.Time {
	//lint:ignore wallclock fixture: reason provided, finding suppressed
	return time.Now()
}

// SameLine carries the directive on the finding's own line.
func SameLine() time.Time {
	return time.Now() //lint:ignore wallclock fixture: same-line directive
}

// MissingReason has a reasonless directive: the wallclock finding survives
// and the directive itself becomes an mglint finding.
func MissingReason() time.Time {
	//lint:ignore wallclock
	return time.Now()
}

// WrongAnalyzer suppresses a different analyzer: the finding survives.
func WrongAnalyzer() time.Time {
	//lint:ignore seedrand fixture: names the wrong analyzer
	return time.Now()
}
