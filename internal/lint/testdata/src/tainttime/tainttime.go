// Package tainttime exercises the interprocedural determinism-taint
// analyzer: wall-clock and global-rand values picked up in helpers reach
// sinks (map keys, channel sends, branches, sort and hash inputs) through
// call summaries; injected parameters and taint-dropping callees stay clean.
package tainttime

import (
	"crypto/sha256"
	"math/rand"
	"sort"
	"strconv"
	"time"
)

// stamp reads the wall clock one call away from every sink below; its
// summary carries the taint back to callers.
func stamp() int64 {
	return time.Now().UnixNano() // want wallclock
}

// jitter forwards its parameter to its result: a flow, not a source.
func jitter(base int64) int64 {
	return base + 1
}

// constant ignores its argument entirely, so taint dies here.
func constant(x int64) int64 {
	_ = x
	return 7
}

type index struct {
	byTime map[int64]string
	out    chan int64
}

// Record keys the map by a clock-derived value: iteration order and replay
// both diverge run to run.
func (ix *index) Record(name string) {
	t := stamp()
	ix.byTime[t] = name // want tainttime
}

// RecordAt takes the timestamp from the caller — the injected-clock idiom.
func (ix *index) RecordAt(t int64, name string) {
	ix.byTime[t] = name
}

// Publish sends a clock-derived value on a channel, through the forwarding
// helper.
func (ix *index) Publish() {
	ix.out <- jitter(stamp()) // want tainttime
}

// PublishFixed pushes the tainted argument through a callee whose summary
// drops it: resolved module calls are precise, not args-to-result.
func (ix *index) PublishFixed() {
	ix.out <- constant(stamp())
}

// Expired branches on the clock.
func Expired(deadline int64) bool {
	if stamp() > deadline { // want tainttime
		return true
	}
	return false
}

// BadSort feeds a clock-derived key into the sort input.
func BadSort(keys []int64) {
	keys = append(keys, stamp())
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] }) // want tainttime
}

// GoodSort sorts caller-supplied keys only.
func GoodSort(keys []int64) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
}

// BadHash mixes a wall-clock read into a digest.
func BadHash(data []byte) []byte {
	h := sha256.New()
	h.Write(data)
	h.Write([]byte(strconv.FormatInt(stamp(), 10))) // want tainttime
	return h.Sum(nil)
}

// pickName draws from the global rand source; the taint rides the indexed
// result.
func pickName(names []string) string {
	return names[rand.Intn(len(names))] // want seedrand
}

// BadPick switches on the rand-derived name two hops from the draw.
func BadPick(names []string) string {
	switch pickName(names) { // want tainttime
	case "a":
		return "first"
	}
	return "other"
}
