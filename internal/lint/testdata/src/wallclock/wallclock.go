// Package wallclock exercises the wallclock analyzer: direct wall-clock
// reads are findings, the injected-clock idiom is not.
package wallclock

import "time"

// Clock is the injectable seam.
type Clock struct {
	Now func() time.Time
}

// Bad reads the wall clock directly.
func Bad() (time.Time, time.Duration) {
	start := time.Now()          // want wallclock
	elapsed := time.Since(start) // want wallclock
	_ = time.Until(start)        // want wallclock
	return start, elapsed
}

// Good takes time from the injected clock; referencing time.Now without
// calling it (the default-clock idiom) is allowed.
func Good(c Clock) time.Time {
	if c.Now == nil {
		c.Now = time.Now
	}
	return c.Now()
}
