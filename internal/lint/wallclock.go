package lint

import "go/ast"

// WallclockAnalyzer flags direct wall-clock reads — time.Now(), time.Since(),
// time.Until() — in sim-deterministic packages. Those packages must take time
// from an injected clock (a `Now func() time.Time` field or the simulator's
// virtual clock) so that runs replay bit-for-bit; a stray time.Now() makes an
// experiment unreproducible in a way no test reliably catches.
//
// Referencing the function without calling it (`cfg.Now = time.Now`, the
// standard default-clock idiom) is allowed: the read still happens through
// the injectable seam.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "disallow direct time.Now/Since/Until calls in sim-deterministic packages",
	Run:  runWallclock,
}

var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallclock(pass *Pass) {
	for _, file := range pass.Pkg.Syntax {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass.Pkg.Info, call)
			if !ok || pkgPath != "time" || !wallclockFuncs[name] {
				return true
			}
			pass.Reportf(call.Pos(),
				"direct time.%s call reads the wall clock; take time from the injected clock (Now field / sim clock)", name)
			return true
		})
	}
}
