// Package loadgen is the open-loop load harness for the sqd serving path:
// it paces submissions at a fixed target rate regardless of how fast the
// server responds (so a slow server shows up as latency and backlog, not as
// a silently reduced offered rate), mixes in state polls and status reads,
// and reports per-endpoint latency percentiles up to P99.9.
//
// The package deliberately sits OUTSIDE mglint's wallclock policy
// (internal/lint/policy.go): its entire job is measuring real elapsed time
// against a live HTTP server, so injected clocks would defeat the point.
package loadgen

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mastergreen/internal/metrics"
)

// RequestFunc builds the i-th submission body. The returned id must match
// the "id" field inside body so accepted changes can be polled later.
type RequestFunc func(i int) (id string, body []byte)

// DefaultRequest returns a RequestFunc where every submission creates a
// distinct file under load/, so changes are independent at the file level.
// IDs embed prefix, which callers should salt (e.g. with a start timestamp)
// when driving a long-lived server to keep runs disjoint.
func DefaultRequest(prefix string) RequestFunc {
	return func(i int) (string, []byte) {
		id := fmt.Sprintf("%s-%d", prefix, i)
		body := fmt.Sprintf(`{"id":%q,"author":"loadgen-%d","team":"load",`+
			`"files":[{"path":"load/f-%s.txt","op":"create","content":"content %d"}],"test_plan":true}`,
			id, i%8, id, i)
		return id, []byte(body)
	}
}

// PriorityRequest is DefaultRequest plus scheduling lanes: every
// hotfixEvery-th submission lands in the P0 hotfix lane and every
// bulkEvery-th in the P2 bulk lane with a ten-minute deadline (0 disables a
// lane; P0 wins when both divide i). The lane is embedded in the id so a
// finished run can be classified per class afterwards (see SplitByLane).
func PriorityRequest(prefix string, hotfixEvery, bulkEvery int) RequestFunc {
	return func(i int) (string, []byte) {
		lane, extra := "p1", ""
		if hotfixEvery > 0 && i%hotfixEvery == 0 {
			lane, extra = "p0", `,"priority":"P0"`
		} else if bulkEvery > 0 && i%bulkEvery == 0 {
			lane, extra = "p2", `,"priority":"P2","deadline_in_sec":600`
		}
		id := fmt.Sprintf("%s-%s-%d", prefix, lane, i)
		body := fmt.Sprintf(`{"id":%q,"author":"loadgen-%d","team":"load",`+
			`"files":[{"path":"load/f-%s.txt","op":"create","content":"content %d"}],"test_plan":true%s}`,
			id, i%8, id, i, extra)
		return id, []byte(body)
	}
}

// SplitByLane groups ids by the lane marker PriorityRequest embeds, keyed
// "P0"/"P1"/"P2"; ids without a marker count as P1.
func SplitByLane(ids []string) map[string][]string {
	out := map[string][]string{}
	for _, id := range ids {
		lane := "P1"
		switch {
		case strings.Contains(id, "-p0-"):
			lane = "P0"
		case strings.Contains(id, "-p2-"):
			lane = "P2"
		}
		out[lane] = append(out[lane], id)
	}
	return out
}

// SharedClient returns an http.Client tuned for sustained load against one
// host: keep-alives with an idle pool sized to the in-flight bound, so every
// sender reuses a warm connection instead of re-dialing per request.
func SharedClient(maxInFlight int) *http.Client {
	if maxInFlight <= 0 {
		maxInFlight = 64
	}
	return &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        maxInFlight,
			MaxIdleConnsPerHost: maxInFlight,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// Config describes one load run.
type Config struct {
	BaseURL  string        // sqd base URL, e.g. http://127.0.0.1:8080
	Rate     float64       // target submissions per second (open loop)
	Duration time.Duration // measured window
	Warmup   time.Duration // paced at Rate before measuring; excluded from stats

	// MaxInFlight bounds concurrent HTTP requests (default 512). The pacer
	// never blocks on it — excess submissions queue in goroutines, keeping
	// the offered rate honest while capping socket usage.
	MaxInFlight int
	Client      *http.Client // default SharedClient(MaxInFlight)
	Request     RequestFunc  // default DefaultRequest("load")

	PollRate   float64 // state polls per second over accepted ids (0 = none)
	StatusRate float64 // GET /api/v1/status per second (0 = none)
}

// Latency summarizes one endpoint's observed latencies in milliseconds.
type Latency struct {
	Count  int
	MeanMs float64
	P50Ms  float64
	P95Ms  float64
	P99Ms  float64
	P999Ms float64
	MaxMs  float64
}

// String renders the summary as one terminal-friendly line.
func (l Latency) String() string {
	return fmt.Sprintf("n=%d mean=%.2fms p50=%.2f p95=%.2f p99=%.2f p99.9=%.2f max=%.2f",
		l.Count, l.MeanMs, l.P50Ms, l.P95Ms, l.P99Ms, l.P999Ms, l.MaxMs)
}

func summarize(ms []float64) Latency {
	if len(ms) == 0 {
		return Latency{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Latency{
		Count:  len(sorted),
		MeanMs: sum / float64(len(sorted)),
		P50Ms:  metrics.Percentile(sorted, 50),
		P95Ms:  metrics.Percentile(sorted, 95),
		P99Ms:  metrics.Percentile(sorted, 99),
		P999Ms: metrics.Percentile(sorted, 99.9),
		MaxMs:  sorted[len(sorted)-1],
	}
}

// Result is one completed load run. AcceptedIDs covers warmup and measured
// phases (every 202 is a durability promise the caller may audit with
// Classify); all other fields cover only the measured window.
type Result struct {
	Offered   int // submissions paced into the measured window
	Accepted  int // 202
	Throttled int // 429 (admission backpressure)
	Errors    int // transport errors or unexpected statuses

	RetryAfterMean float64 // mean Retry-After seconds across 429s

	StatusReads int // 200 status reads
	StatusShed  int // 503 status reads (overload degradation)
	StatePolls  int // 200 state polls

	Submit     Latency
	StatePoll  Latency
	StatusRead Latency

	ElapsedSec     float64
	OfferedPerSec  float64
	AcceptedPerSec float64

	AcceptedIDs []string
}

// Sustained reports accepted submissions per minute — the headline
// throughput number.
func (r *Result) Sustained() float64 { return r.AcceptedPerSec * 60 }

type runState struct {
	cfg    Config
	sem    chan struct{}
	wg     sync.WaitGroup
	warmup atomic.Bool

	accepted  atomic.Int64
	throttled atomic.Int64
	errs      atomic.Int64
	retrySum  atomic.Int64 // Retry-After seconds summed across 429s

	statusOK   atomic.Int64
	statusShed atomic.Int64
	stateOK    atomic.Int64

	mu       sync.Mutex
	submitMs []float64
	stateMs  []float64
	statusMs []float64
	idsByNum []string // accepted ids, warmup included
}

// Run executes one load run. It returns an error only when the run cannot
// start (bad config, unhealthy server); per-request failures are counted in
// the Result instead.
func Run(cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	if cfg.Rate <= 0 {
		return nil, errors.New("loadgen: Rate must be positive")
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: Duration must be positive")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.Client == nil {
		cfg.Client = SharedClient(cfg.MaxInFlight)
	}
	if cfg.Request == nil {
		cfg.Request = DefaultRequest("load")
	}

	resp, err := cfg.Client.Get(cfg.BaseURL + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("loadgen: service not reachable at %s: %w", cfg.BaseURL, err)
	}
	drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: service not healthy at %s: status %d", cfg.BaseURL, resp.StatusCode)
	}

	g := &runState{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}

	seq := 0
	if cfg.Warmup > 0 {
		g.warmup.Store(true)
		seq = g.pace(seq, cfg.Warmup)
		g.wg.Wait()
		g.warmup.Store(false)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	if cfg.PollRate > 0 {
		readers.Add(1)
		go g.pollLoop(stop, &readers)
	}
	if cfg.StatusRate > 0 {
		readers.Add(1)
		go g.statusLoop(stop, &readers)
	}

	start := time.Now()
	end := g.pace(seq, cfg.Duration)
	g.wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	readers.Wait()

	g.mu.Lock()
	defer g.mu.Unlock()
	res := &Result{
		Offered:     end - seq,
		Accepted:    int(g.accepted.Load()),
		Throttled:   int(g.throttled.Load()),
		Errors:      int(g.errs.Load()),
		StatusReads: int(g.statusOK.Load()),
		StatusShed:  int(g.statusShed.Load()),
		StatePolls:  int(g.stateOK.Load()),
		Submit:      summarize(g.submitMs),
		StatePoll:   summarize(g.stateMs),
		StatusRead:  summarize(g.statusMs),
		ElapsedSec:  elapsed.Seconds(),
		AcceptedIDs: append([]string(nil), g.idsByNum...),
	}
	if res.Throttled > 0 {
		res.RetryAfterMean = float64(g.retrySum.Load()) / float64(res.Throttled)
	}
	if res.ElapsedSec > 0 {
		res.OfferedPerSec = float64(res.Offered) / res.ElapsedSec
		res.AcceptedPerSec = float64(res.Accepted) / res.ElapsedSec
	}
	return res, nil
}

// pace schedules submissions seq, seq+1, ... at cfg.Rate for d, spawning one
// goroutine per submission so a slow server never slows the offered rate.
// Returns the next unused sequence number.
func (g *runState) pace(seq int, d time.Duration) int {
	interval := time.Duration(float64(time.Second) / g.cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	start := time.Now()
	deadline := start.Add(d)
	for next := start; next.Before(deadline); next = next.Add(interval) {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		i := seq
		seq++
		g.wg.Add(1)
		go g.submit(i)
	}
	return seq
}

func (g *runState) submit(i int) {
	defer g.wg.Done()
	g.sem <- struct{}{}
	defer func() { <-g.sem }()

	warm := g.warmup.Load()
	id, body := g.cfg.Request(i)
	start := time.Now()
	resp, err := g.cfg.Client.Post(g.cfg.BaseURL+"/api/v1/changes", "application/json", bytes.NewReader(body))
	ms := float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		if !warm {
			g.errs.Add(1)
		}
		return
	}
	retryAfter := 0
	if resp.StatusCode == http.StatusTooManyRequests {
		retryAfter, _ = parseSeconds(resp.Header.Get("Retry-After"))
	}
	drain(resp)
	switch resp.StatusCode {
	case http.StatusAccepted:
		g.mu.Lock()
		g.idsByNum = append(g.idsByNum, id)
		if !warm {
			g.submitMs = append(g.submitMs, ms)
		}
		g.mu.Unlock()
		if !warm {
			g.accepted.Add(1)
		}
	case http.StatusTooManyRequests:
		if !warm {
			g.throttled.Add(1)
			g.retrySum.Add(int64(retryAfter))
			g.mu.Lock()
			g.submitMs = append(g.submitMs, ms)
			g.mu.Unlock()
		}
	default:
		if !warm {
			g.errs.Add(1)
		}
	}
}

// pollLoop issues state reads over accepted ids round-robin at PollRate.
func (g *runState) pollLoop(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := time.NewTicker(time.Duration(float64(time.Second) / g.cfg.PollRate))
	defer tick.Stop()
	i := 0
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		g.mu.Lock()
		var id string
		if n := len(g.idsByNum); n > 0 {
			id = g.idsByNum[i%n]
			i++
		}
		g.mu.Unlock()
		if id == "" {
			continue
		}
		start := time.Now()
		resp, err := g.cfg.Client.Get(g.cfg.BaseURL + "/api/v1/changes/" + id)
		ms := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			g.errs.Add(1)
			continue
		}
		drain(resp)
		if resp.StatusCode == http.StatusOK {
			g.stateOK.Add(1)
			g.mu.Lock()
			g.stateMs = append(g.stateMs, ms)
			g.mu.Unlock()
		} else {
			g.errs.Add(1)
		}
	}
}

// statusLoop issues dashboard-style status reads at StatusRate, counting
// 503 sheds separately: under overload those are expected degradation, not
// errors.
func (g *runState) statusLoop(stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	tick := time.NewTicker(time.Duration(float64(time.Second) / g.cfg.StatusRate))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		start := time.Now()
		resp, err := g.cfg.Client.Get(g.cfg.BaseURL + "/api/v1/status")
		ms := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			g.errs.Add(1)
			continue
		}
		drain(resp)
		switch resp.StatusCode {
		case http.StatusOK:
			g.statusOK.Add(1)
			g.mu.Lock()
			g.statusMs = append(g.statusMs, ms)
			g.mu.Unlock()
		case http.StatusServiceUnavailable:
			g.statusShed.Add(1)
		default:
			g.errs.Add(1)
		}
	}
}

// Decisions tallies the final states of a set of accepted changes.
type Decisions struct {
	Committed int
	Rejected  int
	Undecided int
	Errors    int
}

// Classify polls every id once and tallies its current state. Run it after
// the service has drained to audit the 202 durability promise: accepted
// changes must all reach committed or rejected — never vanish.
func Classify(client *http.Client, baseURL string, ids []string, maxInFlight int) Decisions {
	if client == nil {
		client = SharedClient(maxInFlight)
	}
	if maxInFlight <= 0 {
		maxInFlight = 64
	}
	sem := make(chan struct{}, maxInFlight)
	var wg sync.WaitGroup
	var committed, rejected, undecided, errs atomic.Int64
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, err := client.Get(baseURL + "/api/v1/changes/" + id)
			if err != nil {
				errs.Add(1)
				return
			}
			body, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			_ = resp.Body.Close()
			if rerr != nil || resp.StatusCode != http.StatusOK {
				errs.Add(1)
				return
			}
			switch {
			case bytes.Contains(body, []byte(`"state":"committed"`)):
				committed.Add(1)
			case bytes.Contains(body, []byte(`"state":"rejected"`)):
				rejected.Add(1)
			default:
				undecided.Add(1)
			}
		}(id)
	}
	wg.Wait()
	return Decisions{
		Committed: int(committed.Load()),
		Rejected:  int(rejected.Load()),
		Undecided: int(undecided.Load()),
		Errors:    int(errs.Load()),
	}
}

// drain empties and closes a response body so the keep-alive connection goes
// back to the pool.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// parseSeconds parses a small non-negative decimal like a Retry-After value.
func parseSeconds(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
		if n > 1<<20 {
			return 0, false
		}
	}
	return n, true
}
