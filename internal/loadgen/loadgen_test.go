package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeSQD mimics the sqd serving surface: accepts submissions up to a
// capacity, then 429s with Retry-After; sheds status reads while at or above
// 90% occupancy; decides ids on demand (odd sequence numbers rejected).
type fakeSQD struct {
	mu       sync.Mutex
	capacity int
	ids      []string
}

func (f *fakeSQD) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/api/v1/changes", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad json", http.StatusBadRequest)
			return
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.capacity > 0 && len(f.ids) >= f.capacity {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		f.ids = append(f.ids, req.ID)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q,"state":"pending"}`, req.ID)
	})
	mux.HandleFunc("/api/v1/changes/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/api/v1/changes/")
		state := "committed"
		if strings.HasSuffix(id, "1") || strings.HasSuffix(id, "3") {
			state = "rejected"
		}
		fmt.Fprintf(w, `{"id":%q,"state":%q}`, id, state)
	})
	mux.HandleFunc("/api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		overloaded := f.capacity > 0 && len(f.ids)*10 >= f.capacity*9
		f.mu.Unlock()
		if overloaded {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, `{"pending":0}`)
	})
	return mux
}

// TestRunPacesAndRecords: a healthy server sees roughly rate*duration
// submissions, all accepted, with per-endpoint latencies recorded and the
// warmup excluded from the measured counts.
func TestRunPacesAndRecords(t *testing.T) {
	f := &fakeSQD{}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	res, err := Run(Config{
		BaseURL:    ts.URL,
		Rate:       200,
		Duration:   500 * time.Millisecond,
		Warmup:     100 * time.Millisecond,
		PollRate:   100,
		StatusRate: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Open loop: offered tracks rate*duration (scheduling jitter aside).
	if res.Offered < 80 || res.Offered > 110 {
		t.Fatalf("offered = %d, want ~100", res.Offered)
	}
	if res.Accepted != res.Offered {
		t.Fatalf("accepted = %d, offered = %d (healthy server should accept all)",
			res.Accepted, res.Offered)
	}
	if res.Throttled != 0 || res.Errors != 0 {
		t.Fatalf("throttled = %d, errors = %d, want 0", res.Throttled, res.Errors)
	}
	// Warmup submissions are in AcceptedIDs but not in measured counts.
	if len(res.AcceptedIDs) <= res.Accepted {
		t.Fatalf("AcceptedIDs = %d, should include warmup beyond measured %d",
			len(res.AcceptedIDs), res.Accepted)
	}
	if res.Submit.Count != res.Accepted || res.Submit.P999Ms < res.Submit.P50Ms {
		t.Fatalf("submit latency summary inconsistent: %+v", res.Submit)
	}
	if res.StatePolls == 0 || res.StatePoll.Count != res.StatePolls {
		t.Fatalf("state polls = %d, summary count = %d", res.StatePolls, res.StatePoll.Count)
	}
	if res.StatusReads == 0 || res.StatusShed != 0 {
		t.Fatalf("status reads = %d shed = %d, want reads>0 shed=0", res.StatusReads, res.StatusShed)
	}
	if res.Sustained() < 60*60 { // 100 accepted in ~0.5s ≫ 3600/min
		t.Fatalf("sustained = %.0f/min, implausibly low", res.Sustained())
	}
}

// TestRunCountsBackpressure: a saturated server yields 429s (with the
// Retry-After surfaced) and 503-shed status reads, not errors.
func TestRunCountsBackpressure(t *testing.T) {
	f := &fakeSQD{capacity: 10}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	res, err := Run(Config{
		BaseURL:    ts.URL,
		Rate:       200,
		Duration:   400 * time.Millisecond,
		StatusRate: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 10 {
		t.Fatalf("accepted = %d, want capacity 10", res.Accepted)
	}
	if res.Throttled < 10 {
		t.Fatalf("throttled = %d, want the rest of the stream", res.Throttled)
	}
	if res.RetryAfterMean != 7 {
		t.Fatalf("retry-after mean = %.1f, want 7", res.RetryAfterMean)
	}
	if res.StatusShed == 0 {
		t.Fatalf("status shed = 0, want >0 once saturated")
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (backpressure is not an error)", res.Errors)
	}
}

// TestClassify tallies decisions across accepted ids.
func TestClassify(t *testing.T) {
	f := &fakeSQD{}
	ts := httptest.NewServer(f.handler())
	defer ts.Close()

	ids := []string{"c-0", "c-1", "c-2", "c-3", "c-10"}
	d := Classify(nil, ts.URL, ids, 4)
	if d.Committed != 3 || d.Rejected != 2 || d.Undecided != 0 || d.Errors != 0 {
		t.Fatalf("classify = %+v, want 3 committed / 2 rejected", d)
	}
}

// TestRunRejectsBadConfig: unreachable server and invalid rates fail fast.
func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{BaseURL: "", Rate: 1, Duration: time.Second}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	if _, err := Run(Config{BaseURL: "http://x", Rate: 0, Duration: time.Second}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:1", Rate: 1, Duration: time.Second}); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

// TestSummarizePercentiles: the tail percentiles order correctly.
func TestSummarizePercentiles(t *testing.T) {
	var ms []float64
	for i := 1; i <= 1000; i++ {
		ms = append(ms, float64(i))
	}
	l := summarize(ms)
	if l.Count != 1000 || l.P50Ms > l.P95Ms || l.P95Ms > l.P99Ms || l.P99Ms > l.P999Ms || l.P999Ms > l.MaxMs {
		t.Fatalf("summary out of order: %+v", l)
	}
	if l.MaxMs != 1000 {
		t.Fatalf("max = %v, want 1000", l.MaxMs)
	}
	if z := summarize(nil); z.Count != 0 || z.MaxMs != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

// TestParseSeconds covers the Retry-After parser.
func TestParseSeconds(t *testing.T) {
	if n, ok := parseSeconds("30"); !ok || n != 30 {
		t.Fatalf("parseSeconds(30) = %d, %v", n, ok)
	}
	for _, bad := range []string{"", "-1", "1.5", "Wed, 21 Oct 2015 07:28:00 GMT", "99999999"} {
		if _, ok := parseSeconds(bad); ok {
			t.Fatalf("parseSeconds(%q) accepted", bad)
		}
	}
}
