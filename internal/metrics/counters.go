package metrics

import (
	"fmt"
	"strings"
)

// Gauge is one named scalar reading, e.g. a cache counter snapshot.
type Gauge struct {
	Name  string
	Value float64
}

// Gauges is an ordered list of named readings. Subsystems (like the conflict
// analyzer) render their internal counters as Gauges so daemons and
// experiment reports can display them uniformly without importing the
// subsystem's stats type.
type Gauges []Gauge

// Get returns the value of the named gauge and whether it exists.
func (gs Gauges) Get(name string) (float64, bool) {
	for _, g := range gs {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Ratio returns num/den over the named gauges, or 0 when the denominator is
// missing or zero. Cache hit rates are the typical use.
func (gs Gauges) Ratio(num, den string) float64 {
	n, _ := gs.Get(num)
	d, _ := gs.Get(den)
	if d == 0 {
		return 0
	}
	return n / d
}

// String renders the gauges as "name=value name=value …" in listed order,
// with integral values printed without a decimal point.
func (gs Gauges) String() string {
	var b strings.Builder
	for i, g := range gs {
		if i > 0 {
			b.WriteByte(' ')
		}
		if g.Value == float64(int64(g.Value)) {
			fmt.Fprintf(&b, "%s=%d", g.Name, int64(g.Value))
		} else {
			fmt.Fprintf(&b, "%s=%.4g", g.Name, g.Value)
		}
	}
	return b.String()
}
