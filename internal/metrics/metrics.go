// Package metrics provides the statistical primitives used by the
// SubmitQueue evaluation harness: percentile estimation, empirical CDFs,
// histograms, and time-bucketed series. All functions are deterministic and
// allocation-conscious so they can run inside benchmarks.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. It returns 0 for an empty
// input. The input slice is not modified.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted computes a percentile over an already-sorted slice.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the order statistics the paper reports for turnaround times.
type Summary struct {
	Count int
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// Summarize computes a Summary over values. It returns a zero Summary for an
// empty input.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   percentileSorted(sorted, 50),
		P95:   percentileSorted(sorted, 95),
		P99:   percentileSorted(sorted, 99),
	}
}

// String renders a Summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f p99=%.2f min=%.2f max=%.2f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max)
}

// CDF is an empirical cumulative distribution function: for each point,
// Fraction of samples <= Value.
type CDF struct {
	Values    []float64 // sorted sample values
	Fractions []float64 // cumulative fraction at each value, in (0, 1]
}

// NewCDF builds an empirical CDF from samples. Duplicate values are merged.
func NewCDF(samples []float64) CDF {
	if len(samples) == 0 {
		return CDF{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var c CDF
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Merge runs of equal values, keeping the highest fraction.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		c.Values = append(c.Values, sorted[i])
		c.Fractions = append(c.Fractions, float64(i+1)/n)
	}
	return c
}

// At returns the cumulative fraction of samples <= x.
func (c CDF) At(x float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.Values, x)
	if i < len(c.Values) && c.Values[i] == x {
		return c.Fractions[i]
	}
	if i == 0 {
		return 0
	}
	return c.Fractions[i-1]
}

// Quantile returns the smallest sample value v such that At(v) >= q.
func (c CDF) Quantile(q float64) float64 {
	if len(c.Values) == 0 {
		return 0
	}
	for i, f := range c.Fractions {
		if f >= q {
			return c.Values[i]
		}
	}
	return c.Values[len(c.Values)-1]
}

// Histogram is a fixed-width bucket histogram over [Min, Max).
type Histogram struct {
	Min     float64
	Max     float64
	Buckets []int
	// Underflow and Overflow count samples outside [Min, Max).
	Underflow int
	Overflow  int
	total     int
}

// NewHistogram creates a histogram with n buckets spanning [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if max <= min {
		max = min + 1
	}
	return &Histogram{Min: min, Max: max, Buckets: make([]int, n)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.total++
	switch {
	case v < h.Min:
		h.Underflow++
	case v >= h.Max:
		h.Overflow++
	default:
		i := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) { // guard against float edge
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Total returns the number of observed samples, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BucketCenter returns the midpoint value of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Buckets))
	return h.Min + w*(float64(i)+0.5)
}

// TimeSeries buckets events into fixed-duration windows, tracking a
// numerator and denominator per window (e.g. green minutes per hour).
type TimeSeries struct {
	Window time.Duration
	num    map[int64]float64
	den    map[int64]float64
}

// NewTimeSeries creates a TimeSeries with the given window size.
func NewTimeSeries(window time.Duration) *TimeSeries {
	if window <= 0 {
		window = time.Hour
	}
	return &TimeSeries{Window: window, num: map[int64]float64{}, den: map[int64]float64{}}
}

// Add accumulates num/den into the window containing t.
func (ts *TimeSeries) Add(t time.Duration, num, den float64) {
	k := int64(t / ts.Window)
	ts.num[k] += num
	ts.den[k] += den
}

// Ratios returns the per-window num/den ratios ordered by window index.
// Windows with a zero denominator are reported as ratio 0.
func (ts *TimeSeries) Ratios() []float64 {
	if len(ts.den) == 0 {
		return nil
	}
	var maxK int64 = -1
	var minK int64 = math.MaxInt64
	for k := range ts.den {
		if k > maxK {
			maxK = k
		}
		if k < minK {
			minK = k
		}
	}
	out := make([]float64, 0, maxK-minK+1)
	for k := minK; k <= maxK; k++ {
		d := ts.den[k]
		if d == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, ts.num[k]/d)
	}
	return out
}

// Normalize divides every element of values by base. A base of zero returns
// a copy of values unchanged (avoids Inf in reports).
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	copy(out, values)
	if base == 0 {
		return out
	}
	for i := range out {
		out[i] /= base
	}
	return out
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	s := 0.0
	for _, v := range values {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(values)))
}
