package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile([]float64{42}, p); got != 42 {
			t.Fatalf("Percentile([42], %v) = %v, want 42", p, got)
		}
	}
}

func TestPercentileKnown(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileClampsRange(t *testing.T) {
	vals := []float64{3, 1, 2}
	if got := Percentile(vals, -10); got != 1 {
		t.Errorf("p=-10 got %v, want min", got)
	}
	if got := Percentile(vals, 200); got != 3 {
		t.Errorf("p=200 got %v, want max", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	// Property: for any sample set, percentile is monotone nondecreasing in p
	// and bounded by [min, max].
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			q := Percentile(vals, p)
			if q < prev || q < sorted[0] || q > sorted[len(sorted)-1] {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 2, 6, 8})
	if s.Count != 4 || s.Min != 2 || s.Max != 8 || !almostEqual(s.Mean, 5, 1e-9) {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.P50 != 5 {
		t.Fatalf("p50 = %v, want 5", s.P50)
	}
	if got := Summarize(nil); got.Count != 0 {
		t.Fatalf("empty summary nonzero: %+v", got)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(1); !almostEqual(got, 0.25, 1e-9) {
		t.Errorf("At(1) = %v, want 0.25", got)
	}
	if got := c.At(2); !almostEqual(got, 0.75, 1e-9) {
		t.Errorf("At(2) = %v, want 0.75", got)
	}
	if got := c.At(2.5); !almostEqual(got, 0.75, 1e-9) {
		t.Errorf("At(2.5) = %v, want 0.75", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v, want 1", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Quantile(0.5); got != 20 {
		t.Errorf("Quantile(0.5) = %v, want 20", got)
	}
	if got := c.Quantile(1.0); got != 40 {
		t.Errorf("Quantile(1) = %v, want 40", got)
	}
	if got := c.Quantile(0.01); got != 10 {
		t.Errorf("Quantile(0.01) = %v, want 10", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(1) != 0 || c.Quantile(0.5) != 0 {
		t.Fatal("empty CDF should return zeros")
	}
	if got := NewCDF(nil); len(got.Values) != 0 {
		t.Fatal("NewCDF(nil) should be empty")
	}
}

func TestCDFPropertyMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 10
	}
	c := NewCDF(samples)
	prev := -1.0
	for _, f := range c.Fractions {
		if f <= prev {
			t.Fatalf("fractions not strictly increasing: %v after %v", f, prev)
		}
		prev = f
	}
	if !almostEqual(c.Fractions[len(c.Fractions)-1], 1.0, 1e-9) {
		t.Fatalf("last fraction = %v, want 1", c.Fractions[len(c.Fractions)-1])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	h.Observe(-1)
	h.Observe(11)
	if h.Total() != 12 {
		t.Fatalf("total = %d, want 12", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Fatalf("under=%d over=%d, want 1/1", h.Underflow, h.Overflow)
	}
	for i, b := range h.Buckets {
		if b != 1 {
			t.Fatalf("bucket %d = %d, want 1", i, b)
		}
	}
	if got := h.BucketCenter(0); !almostEqual(got, 0.5, 1e-9) {
		t.Fatalf("BucketCenter(0) = %v", got)
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid range and bucket count
	h.Observe(5)
	if h.Total() != 1 {
		t.Fatal("degenerate histogram should still count")
	}
}

func TestTimeSeriesRatios(t *testing.T) {
	ts := NewTimeSeries(time.Hour)
	ts.Add(10*time.Minute, 1, 1)  // hour 0: 1/1
	ts.Add(70*time.Minute, 1, 2)  // hour 1: 1/2
	ts.Add(80*time.Minute, 0, 2)  // hour 1: now 1/4
	ts.Add(200*time.Minute, 3, 3) // hour 3: 1 (hour 2 empty)
	got := ts.Ratios()
	want := []float64{1, 0.25, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Errorf("ratio[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(0) // also exercises default window
	if got := ts.Ratios(); got != nil {
		t.Fatalf("empty ratios = %v, want nil", got)
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 6}, 2)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Normalize = %v, want %v", got, want)
		}
	}
	// Zero base: unchanged copy.
	src := []float64{1, 2}
	got = Normalize(src, 0)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Normalize zero base = %v", got)
	}
	got[0] = 99
	if src[0] == 99 {
		t.Fatal("Normalize must copy, not alias")
	}
}

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("empty/degenerate stats should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("Mean = %v", got)
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2, 1e-9) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestGauges(t *testing.T) {
	gs := Gauges{{Name: "hits", Value: 3}, {Name: "total", Value: 4}, {Name: "rate", Value: 0.75}}
	if v, ok := gs.Get("hits"); !ok || v != 3 {
		t.Fatalf("Get(hits) = %v, %v", v, ok)
	}
	if _, ok := gs.Get("nope"); ok {
		t.Fatal("Get(nope) found")
	}
	if r := gs.Ratio("hits", "total"); !almostEqual(r, 0.75, 1e-9) {
		t.Fatalf("Ratio = %v", r)
	}
	if r := gs.Ratio("hits", "nope"); r != 0 {
		t.Fatalf("Ratio with missing denominator = %v", r)
	}
	if got, want := gs.String(), "hits=3 total=4 rate=0.75"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if Gauges(nil).String() != "" {
		t.Fatal("empty Gauges should render empty")
	}
}
