package planner

import (
	"context"
	"fmt"
	"testing"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/predict"
	"mastergreen/internal/queue"
	"mastergreen/internal/repo"
	"mastergreen/internal/speculation"
)

// benchChainRepo builds an n-deep dependency chain (t0 ← t1 ← … ← t(n-1))
// with one pending edit per link. Every pair of changes conflicts at the
// target level, so the speculation plan is the paper's prefix chain:
// B(c0), B(c0⊕c1), …, B(c0⊕…⊕c(n-1)) — average depth (n+1)/2.
func benchChainRepo(n int) (*repo.Repo, []*change.Change) {
	files := make(map[string]string, 2*n)
	for i := 0; i < n; i++ {
		dep := ""
		if i > 0 {
			dep = fmt.Sprintf(" deps=//d%02d:t%02d", i-1, i-1)
		}
		files[fmt.Sprintf("d%02d/BUILD", i)] = fmt.Sprintf("target t%02d srcs=f.go%s", i, dep)
		files[fmt.Sprintf("d%02d/f.go", i)] = "v1"
	}
	r := repo.New(files)
	changes := make([]*change.Change, n)
	for i := 0; i < n; i++ {
		changes[i] = &change.Change{
			ID: change.ID(fmt.Sprintf("c%02d", i)),
			Patch: repo.Patch{Changes: []repo.FileChange{{
				Path: fmt.Sprintf("d%02d/f.go", i), Op: repo.OpModify,
				BaseHash: repo.HashContent("v1"), NewContent: "v2",
			}}},
			BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		}
	}
	return r, changes
}

// benchIndependentRepo builds n mutually independent single-target packages
// with one pending edit each — the 64-pending idle-epoch scenario.
func benchIndependentRepo(n int) (*repo.Repo, []*change.Change) {
	files := make(map[string]string, 2*n)
	for i := 0; i < n; i++ {
		files[fmt.Sprintf("p%03d/BUILD", i)] = fmt.Sprintf("target t%03d srcs=f.go", i)
		files[fmt.Sprintf("p%03d/f.go", i)] = "v1"
	}
	r := repo.New(files)
	changes := make([]*change.Change, n)
	for i := 0; i < n; i++ {
		changes[i] = &change.Change{
			ID: change.ID(fmt.Sprintf("i%03d", i)),
			Patch: repo.Patch{Changes: []repo.FileChange{{
				Path: fmt.Sprintf("p%03d/f.go", i), Op: repo.OpModify,
				BaseHash: repo.HashContent("v1"), NewContent: "v2",
			}}},
			BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		}
	}
	return r, changes
}

// holdOpenRunner blocks every build until its context is cancelled, freezing
// an epoch mid-flight so preparation and idle-tick costs can be measured.
func holdOpenRunner() buildsys.StepRunner {
	return buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
		<-ctx.Done()
		return buildsys.ErrAborted
	})
}

func newBenchPlanner(r *repo.Repo, runner buildsys.StepRunner, cfg Config) (*Planner, *queue.Queue) {
	q := queue.New(2)
	an := conflict.New(r)
	spec := speculation.New(predict.Static{Success: 0.95, Conflict: 0.05})
	ctrl := buildsys.NewController(8, runner)
	return New(r, q, an, spec, ctrl, cfg), q
}

// runChainEpoch submits n chained conflicting changes and runs one planning
// epoch with every build held open, so speculation builds of depth 1..n are
// all prepared. Returns the epoch's stats and the average build depth.
func runChainEpoch(tb testing.TB, legacy bool, n int) (Stats, float64) {
	tb.Helper()
	r, changes := benchChainRepo(n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, q := newBenchPlanner(r, holdOpenRunner(), Config{
		Budget: n, MaxSpecDepth: n, LegacyPreparation: legacy,
	})
	for _, c := range changes {
		if err := q.Enqueue(c); err != nil {
			tb.Fatal(err)
		}
	}
	if _, err := p.Tick(ctx); err != nil {
		tb.Fatal(err)
	}
	st := p.Stats()
	if st.BuildsStarted != n {
		tb.Fatalf("started %d of %d chain builds", st.BuildsStarted, n)
	}
	depthSum := 0
	p.mu.Lock()
	for _, rb := range p.running {
		depthSum += len(rb.build.Changes)
	}
	p.mu.Unlock()
	return st, float64(depthSum) / float64(n)
}

// TestPrefixTrieReducesPreparation is the acceptance headline: preparing one
// epoch of 8 chained speculation builds (average depth 4.5) must cost at
// least 3x fewer preparation operations — buildgraph.Analyze calls plus
// per-patch merge units — per started build than the legacy full-merge path
// (BENCH_planner.json records the measured ratios).
func TestPrefixTrieReducesPreparation(t *testing.T) {
	const n = 8
	legacy, _ := runChainEpoch(t, true, n)
	inc, avgDepth := runChainEpoch(t, false, n)
	if avgDepth < 4 {
		t.Fatalf("average speculation depth %.1f < 4; scenario lost its chain", avgDepth)
	}
	legacyPer := float64(legacy.PrepOps()) / float64(legacy.BuildsStarted)
	incPer := float64(inc.PrepOps()) / float64(inc.BuildsStarted)
	ratio := legacyPer / incPer
	t.Logf("prep ops/build: legacy=%.1f incremental=%.1f (%.1fx); analyses %d→%d, merges %d→%d, hits=%d",
		legacyPer, incPer, ratio,
		legacy.SnapshotAnalyses, inc.SnapshotAnalyses,
		legacy.PatchApplies, inc.PatchApplies, inc.PrefixHits)
	if ratio < 3 {
		t.Fatalf("preparation reduction %.1fx < 3x (legacy %.1f/build, incremental %.1f/build)",
			ratio, legacyPer, incPer)
	}
	if inc.PrefixHits == 0 {
		t.Fatalf("trie never hit: %+v", inc)
	}
	if inc.HeadGraphBuilds != 1 {
		t.Fatalf("head graph analyzed %d times, want once per head", inc.HeadGraphBuilds)
	}
}

// BenchmarkChainEpochIncremental measures preparing one 8-deep chain epoch
// through the prefix trie.
func BenchmarkChainEpochIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runChainEpoch(b, false, 8)
	}
}

// BenchmarkChainEpochLegacy is the same epoch with per-build full merges.
func BenchmarkChainEpochLegacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runChainEpoch(b, true, 8)
	}
}

// benchIdleTicks measures the steady-state Run-loop epoch at 64 pending
// changes with the build slots saturated and nothing resolving: the planner
// either skips via the input fingerprint or (legacy) redoes
// decide + Plan + reconcile every tick.
func benchIdleTicks(b *testing.B, legacyReplan bool) {
	r, changes := benchIndependentRepo(64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, q := newBenchPlanner(r, holdOpenRunner(), Config{
		Budget: 4, LegacyReplan: legacyReplan,
	})
	for _, c := range changes {
		if err := q.Enqueue(c); err != nil {
			b.Fatal(err)
		}
	}
	// Two warm-up ticks reach the steady state (builds started, memo primed).
	for i := 0; i < 2; i++ {
		if _, err := p.Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Tick(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdleTickMemoized: fingerprint-skipped epochs.
func BenchmarkIdleTickMemoized(b *testing.B) { benchIdleTicks(b, false) }

// BenchmarkIdleTickLegacyReplan: full replanning every epoch.
func BenchmarkIdleTickLegacyReplan(b *testing.B) { benchIdleTicks(b, true) }

// BenchmarkObsoletePrune measures the §4j obsolescence predicate over a full
// chain epoch's running set — the work resolve adds to every resolution. No
// build here is obsolete, so the bench isolates pure predicate cost (the
// stale checks plus the dominated-key scan) without cancel traffic.
func BenchmarkObsoletePrune(b *testing.B) {
	const n = 12
	r, changes := benchChainRepo(n)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, q := newBenchPlanner(r, holdOpenRunner(), Config{Budget: n, MaxSpecDepth: n})
	for _, c := range changes {
		if err := q.Enqueue(c); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := p.Tick(ctx); err != nil {
		b.Fatal(err)
	}
	if p.RunningCount() != n {
		b.Fatalf("running = %d, want %d", p.RunningCount(), n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.mu.Lock()
		for _, rb := range p.running {
			if p.obsoleteLocked(rb, nil) {
				p.mu.Unlock()
				b.Fatal("live build judged obsolete")
			}
		}
		p.mu.Unlock()
	}
}
