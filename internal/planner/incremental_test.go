package planner

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// TestPrepareTrieHitMiss drives the preparation trie directly: the first
// walk of H⊕c1⊕c2 computes both nodes, a second walk is all hits, and the
// c1 prefix rides the same path.
func TestPrepareTrieHitMiss(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	head := e.repo.Head()
	ids := []change.ID{c1.ID, c2.ID}
	patches := []repo.Patch{c1.Patch, c2.Patch}

	pr, err := e.planner.prepare(head, ids, patches)
	if err != nil || pr.failure != "" {
		t.Fatalf("prepare: %v %q", err, pr.failure)
	}
	st := e.planner.Stats()
	if st.PrefixMisses != 2 || st.PrefixHits != 0 || st.HeadGraphBuilds != 1 {
		t.Fatalf("first walk: %+v", st)
	}
	if st.SnapshotAnalyses != 3 || st.PatchApplies != 2 {
		t.Fatalf("first walk cost: %+v", st)
	}
	if got, _ := pr.snap.Read("y/y.go"); got != "y v2" {
		t.Fatalf("merged content = %q", got)
	}
	// y deps //x:x, so c1 perturbs both targets; c2 then rewrites y. The
	// prefix build already produced //x:x at its final hash, //y:y not.
	if !pr.prior["//x:x"] || pr.prior["//y:y"] {
		t.Fatalf("prior = %v", pr.prior)
	}

	if _, err := e.planner.prepare(head, ids, patches); err != nil {
		t.Fatal(err)
	}
	st = e.planner.Stats()
	if st.PrefixMisses != 2 || st.PrefixHits != 2 || st.SnapshotAnalyses != 3 {
		t.Fatalf("second walk should be all hits: %+v", st)
	}

	if _, err := e.planner.prepare(head, ids[:1], patches[:1]); err != nil {
		t.Fatal(err)
	}
	st = e.planner.Stats()
	if st.PrefixHits != 3 || st.PrefixMisses != 2 {
		t.Fatalf("prefix walk should share the path: %+v", st)
	}
}

// TestPrepareTrieInvalidatedOnHeadMove: moving the mainline head discards
// every memoized snapshot (all are rooted at the old head) and re-analyzes
// the new head exactly once.
func TestPrepareTrieInvalidatedOnHeadMove(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	head := e.repo.Head()
	if _, err := e.planner.prepare(head, []change.ID{c1.ID}, []repo.Patch{c1.Patch}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.repo.CommitPatch(head.ID, c1.Patch, "dev", "c1", time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	newHead := e.repo.Head()
	c2 := &change.Change{ID: "c2", Patch: repo.Patch{Changes: []repo.FileChange{{
		Path: "z/z.go", Op: repo.OpModify,
		BaseHash: repo.HashContent("z v1"), NewContent: "z v2",
	}}}}
	if _, err := e.planner.prepare(newHead, []change.ID{c2.ID}, []repo.Patch{c2.Patch}); err != nil {
		t.Fatal(err)
	}
	st := e.planner.Stats()
	if st.PrefixInvalidations != 1 || st.HeadGraphBuilds != 2 {
		t.Fatalf("head move should reset the trie once: %+v", st)
	}
	// The old head's branches are gone: re-walking c2 under the new head
	// hits, re-walking under the old head rebuilds from scratch.
	if _, err := e.planner.prepare(newHead, []change.ID{c2.ID}, []repo.Patch{c2.Patch}); err != nil {
		t.Fatal(err)
	}
	if st = e.planner.Stats(); st.PrefixHits != 1 {
		t.Fatalf("re-walk under same head should hit: %+v", st)
	}
}

// TestPrepareTrieSurvivesQueueChurn: withdrawing and replacing pending
// changes under an unmoved head never invalidates the trie — new change
// stacks just grow new branches next to the old ones.
func TestPrepareTrieSurvivesQueueChurn(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	head := e.repo.Head()
	if _, err := e.planner.prepare(head, []change.ID{c1.ID}, []repo.Patch{c1.Patch}); err != nil {
		t.Fatal(err)
	}
	// Mid-epoch churn: c1 is withdrawn, a different change c1b to the same
	// file shows up.
	if err := e.queue.Remove(c1.ID); err != nil {
		t.Fatal(err)
	}
	c1b := e.submit(t, "c1b", "x/x.go", "x other")
	if _, err := e.planner.prepare(head, []change.ID{c1b.ID}, []repo.Patch{c1b.Patch}); err != nil {
		t.Fatal(err)
	}
	st := e.planner.Stats()
	if st.PrefixInvalidations != 0 || st.HeadGraphBuilds != 1 {
		t.Fatalf("queue churn must not reset the trie: %+v", st)
	}
	if st.PrefixMisses != 2 {
		t.Fatalf("c1b should branch beside c1: %+v", st)
	}
}

// TestPlanFingerprintSkipsIdleEpochs: while a build runs and nothing else
// changes, repeated ticks skip decide/Plan/reconcile entirely; any input
// change (new pending, build completion) forces a recompute.
func TestPlanFingerprintSkipsIdleEpochs(t *testing.T) {
	block := make(chan struct{})
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return buildsys.ErrAborted
		}
	})
	e := newEnv(t, runner, Config{Budget: 1})
	e.submit(t, "c1", "x/x.go", "x v2")
	ctx := context.Background()
	// Tick 1 plans and starts the build; tick 2 sees the running set change;
	// ticks 3-5 are true idle epochs.
	for i := 0; i < 5; i++ {
		if _, err := e.planner.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := e.planner.Stats()
	if st.PlansComputed != 2 || st.PlansSkipped != 3 {
		t.Fatalf("idle loop: computed=%d skipped=%d", st.PlansComputed, st.PlansSkipped)
	}
	if st.KeysCached == 0 {
		t.Fatalf("idle fingerprints should serve cached keys: %+v", st)
	}
	// New pending input invalidates the memo.
	e.submit(t, "c2", "z/z.go", "z v2")
	if _, err := e.planner.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if st = e.planner.Stats(); st.PlansComputed != 3 {
		t.Fatalf("new pending must recompute the plan: %+v", st)
	}
	close(block)
	e.quiesce(t)
	if st = e.planner.Stats(); st.PlansComputed <= 3 {
		t.Fatalf("build completions must recompute the plan: %+v", st)
	}
}

// TestLegacyReplanDisablesMemo: the ablation flag restores plan-every-tick.
func TestLegacyReplanDisablesMemo(t *testing.T) {
	block := make(chan struct{})
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return buildsys.ErrAborted
		}
	})
	e := newEnv(t, runner, Config{Budget: 1, LegacyReplan: true})
	e.submit(t, "c1", "x/x.go", "x v2")
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := e.planner.Tick(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := e.planner.Stats()
	if st.PlansComputed != 5 || st.PlansSkipped != 0 {
		t.Fatalf("legacy replan: computed=%d skipped=%d", st.PlansComputed, st.PlansSkipped)
	}
	close(block)
	e.quiesce(t)
}

// TestFinishedBoundedAcrossEpochs is the memory regression test: 200
// simulated epochs of commits and rejections must not grow p.finished —
// every resolution garbage-collects the builds it obsoletes.
func TestFinishedBoundedAcrossEpochs(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	for i := 0; i < 200; i++ {
		c := e.submit(t, fmt.Sprintf("c%d", i), "x/x.go", fmt.Sprintf("x v%d", i+2))
		if i%3 == 0 {
			// A same-file competitor: loses the race and is rejected, so the
			// rejection pruning path is exercised too.
			e.submit(t, fmt.Sprintf("c%dr", i), "x/x.go", fmt.Sprintf("x alt%d", i))
		}
		e.quiesce(t)
		if c.State != change.StateCommitted {
			t.Fatalf("epoch %d: %v (%s)", i, c.State, c.Reason)
		}
		e.planner.mu.Lock()
		finished := len(e.planner.finished)
		e.planner.mu.Unlock()
		if finished > 8 {
			t.Fatalf("epoch %d: finished set grew to %d", i, finished)
		}
	}
	e.planner.mu.Lock()
	finished := len(e.planner.finished)
	e.planner.mu.Unlock()
	if finished != 0 {
		t.Fatalf("all subjects resolved but %d finished builds retained", finished)
	}
	st := e.planner.Stats()
	if st.FinishedPruned < 200 {
		t.Fatalf("pruning idle: %+v", st)
	}
	if st.KeysCached == 0 {
		t.Fatalf("key cache idle: %+v", st)
	}
}
