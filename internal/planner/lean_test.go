package planner

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/repo"
	"mastergreen/internal/speculation"
)

// TestObsoletePredicateContradictedPrefix: a running build that assumed a
// predecessor commits becomes obsolete the moment that predecessor is
// rejected.
func TestObsoletePredicateContradictedPrefix(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	e.submit(t, "c2", "y/y.go", "y v2") // subject stays pending
	rb := &trackedBuild{
		build: speculation.Build{
			Subject: "c2",
			Assumed: []change.ID{"c1"},
			Changes: []change.ID{"c1", "c2"},
		},
		baseLen: e.repo.Len(),
	}
	p := e.planner
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.obsoleteLocked(rb, nil) {
		t.Fatal("build obsolete before any resolution")
	}
	p.rejected["c1"] = "build failed"
	p.keyEpoch++
	if !p.obsoleteLocked(rb, nil) {
		t.Fatal("assumed-committed predecessor rejected; build must be obsolete")
	}
}

// TestObsoletePredicateAssumedRejectionCommitted: the dual contradiction — a
// build that assumed a predecessor's rejection is obsolete once that
// predecessor commits.
func TestObsoletePredicateAssumedRejectionCommitted(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	e.submit(t, "c2", "y/y.go", "y v2")
	rb := &trackedBuild{
		build: speculation.Build{
			Subject:         "c2",
			AssumedRejected: []change.ID{"c1"},
			Changes:         []change.ID{"c2"},
		},
		baseLen: e.repo.Len(),
	}
	p := e.planner
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.obsoleteLocked(rb, nil) {
		t.Fatal("build obsolete before any resolution")
	}
	p.committedSet["c1"] = true
	p.keyEpoch++
	if !p.obsoleteLocked(rb, nil) {
		t.Fatal("assumed-rejected predecessor committed; build must be obsolete")
	}
}

// TestObsoletePredicateDominated: a running build whose dynamic key is
// already held by a finished build can no longer affect any decision.
func TestObsoletePredicateDominated(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	e.submit(t, "c1", "x/x.go", "x v2")
	b := speculation.Build{Subject: "c1", Changes: []change.ID{"c1"}}
	rb := &trackedBuild{build: b, baseLen: e.repo.Len()}
	p := e.planner
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.obsoleteLocked(rb, nil) {
		t.Fatal("build obsolete with no finished twin")
	}
	p.finished = append(p.finished, &trackedBuild{
		build: b, baseLen: e.repo.Len(),
		result: buildsys.Result{Key: b.Key(), OK: true},
	})
	if !p.obsoleteLocked(rb, nil) {
		t.Fatal("dominated build (finished twin exists) must be obsolete")
	}
}

// TestObsolescenceOverridesGrace is the satellite regression: a misspeculated
// build protected by PreemptionGrace must still be aborted once its assumed
// predecessor is rejected — grace damps re-planning churn, it does not save
// contradicted builds.
func TestObsolescenceOverridesGrace(t *testing.T) {
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		x, _ := snap.Read("x/x.go")
		y, _ := snap.Read("y/y.go")
		if x == "broken" && y == "y v2" {
			<-ctx.Done() // the misspeculated c1+c2 build: holds until aborted
			return buildsys.ErrAborted
		}
		if x == "broken" {
			return errors.New("compile error")
		}
		return nil
	})
	// A nanosecond grace puts every running build inside the keep-window, so
	// without the obsolescence override the c1+c2 build would never be cut.
	e := newEnv(t, runner, Config{Budget: 8, PreemptionGrace: time.Nanosecond})
	c1 := e.submit(t, "c1", "x/x.go", "broken")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	e.quiesce(t)
	if c1.State != change.StateRejected {
		t.Fatalf("c1 = %v", c1.State)
	}
	if c2.State != change.StateCommitted {
		t.Fatalf("c2 = %v (%s)", c2.State, c2.Reason)
	}
	if st := e.planner.Stats(); st.ObsoleteAborted == 0 {
		t.Fatalf("no obsolete abort recorded despite contradicted speculation: %+v", st)
	}
	// The cancelled task finishes asynchronously; wait for the controller to
	// account it as aborted (and its compute as wasted).
	var st buildsys.Stats
	for i := 0; i < 200; i++ {
		st = e.ctrl.Stats()
		if st.Aborted >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Aborted < 1 {
		t.Fatalf("misspeculated build never aborted: %+v", st)
	}
}

// TestAbortAllCancelsDespiteGrace pins abortAll's unconditional cancel: with
// the queue drained every running build is obsolete by definition, and the
// grace window must not keep it burning workers.
func TestAbortAllCancelsDespiteGrace(t *testing.T) {
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
		<-ctx.Done()
		return buildsys.ErrAborted
	})
	e := newEnv(t, runner, Config{Budget: 4, PreemptionGrace: time.Nanosecond})
	e.submit(t, "c1", "x/x.go", "x v2")
	ctx := context.Background()
	if _, err := e.planner.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if e.planner.RunningCount() == 0 {
		t.Fatal("build never started")
	}
	if err := e.queue.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.planner.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.planner.RunningCount(); got != 0 {
		t.Fatalf("running = %d after queue drained, want 0", got)
	}
	var st buildsys.Stats
	for i := 0; i < 200; i++ {
		st = e.ctrl.Stats()
		if st.Aborted >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Aborted < 1 {
		t.Fatalf("withdrawn change's build never aborted: %+v", st)
	}
}

// TestSkipWrongPredictionCaughtByDecisive: with skipping enabled and the
// predictor confidently wrong (c1 predicted to pass, actually fails), the
// deep hedge builds under c1's rejection are never planned — only c2's
// protected one-step hedge stays warm. c2 lands via that hedge, c3 lands via
// a fresh decisive build after the dust settles, and the mainline never goes
// red. The wrong skip costs a restart, not greenness.
func TestSkipWrongPredictionCaughtByDecisive(t *testing.T) {
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		if x, _ := snap.Read("x/x.go"); x == "broken" {
			return errors.New("compile error")
		}
		return nil
	})
	// newEnv's predictor says P_succ = 0.9; threshold 0.5 gates branching
	// once a node would carry two or more assumptions (c3 branches over both
	// c1 and c2 — x and y conflict through y's dep on //x:x).
	e := newEnv(t, runner, Config{Budget: 8, SkipThreshold: 0.5})
	c1 := e.submit(t, "c1", "x/x.go", "broken")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	c3 := e.submit(t, "c3", "x/x.go", "x v3")
	e.quiesce(t)
	if c1.State != change.StateRejected {
		t.Fatalf("c1 = %v", c1.State)
	}
	if c2.State != change.StateCommitted {
		t.Fatalf("c2 = %v (%s)", c2.State, c2.Reason)
	}
	if c3.State != change.StateCommitted {
		t.Fatalf("c3 = %v (%s)", c3.State, c3.Reason)
	}
	st := e.planner.Stats()
	if st.SpecBranchesSkipped == 0 {
		t.Fatalf("no branch skipped despite threshold: %+v", st)
	}
	if st.SpecBuildsSkipped == 0 {
		t.Fatalf("no low-P_needed node dropped despite floor: %+v", st)
	}
	// Mainline green at every commit point: "broken" never landed.
	for i := 0; i < e.repo.Len(); i++ {
		cm, err := e.repo.At(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range cm.Snapshot().Paths() {
			if c, _ := cm.Snapshot().Read(p); strings.Contains(c, "broken") {
				t.Fatalf("mainline red at commit %d: %s", i, p)
			}
		}
	}
}

// TestSkipDisabledPlansHedges: with SkipThreshold zero the planner still
// hedges — the reject-branch build is planned and reused as c2's decisive
// build after c1's rejection, with no restart.
func TestSkipDisabledPlansHedges(t *testing.T) {
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		if x, _ := snap.Read("x/x.go"); x == "broken" {
			return errors.New("compile error")
		}
		return nil
	})
	e := newEnv(t, runner, Config{Budget: 8})
	c1 := e.submit(t, "c1", "x/x.go", "broken")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	e.quiesce(t)
	if c1.State != change.StateRejected || c2.State != change.StateCommitted {
		t.Fatalf("c1=%v c2=%v", c1.State, c2.State)
	}
	if st := e.planner.Stats(); st.SpecBranchesSkipped != 0 {
		t.Fatalf("branches skipped with skipping disabled: %+v", st)
	}
}
