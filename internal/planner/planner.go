// Package planner implements the paper's planner engine (§3.2, §6): on every
// epoch it consults the conflict analyzer and the speculation engine, then
// (1) schedules the selected builds through the build controller, (2) aborts
// builds that fell out of the selected set, and (3) commits a change's patch
// into the monorepo once it is safe — i.e. once every conflicting predecessor
// is resolved and a finished build exists whose speculation assumptions match
// what actually happened.
//
// Builds are identified by a *dynamic key*: the full sequence of changes
// applied on top of the mainline state the planner started from, plus any
// rejection assumptions about still-unresolved changes. The key is
// recomputed whenever builds are matched, so identity survives head
// movement — after C1 commits, the running build H⊕C1⊕C2 is recognized as
// exactly the build the new plan wants for C2, and after C1 is rejected the
// build "C2 assuming C1 rejected" becomes simply C2's decisive build.
// Builds whose assumptions have been falsified stop matching any plan and
// are aborted.
package planner

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mastergreen/internal/buildgraph"
	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/events"
	"mastergreen/internal/queue"
	"mastergreen/internal/reliability"
	"mastergreen/internal/repo"
	"mastergreen/internal/sched"
	"mastergreen/internal/speculation"
)

// ErrStopped is returned by Quiesce when its context is cancelled.
var ErrStopped = errors.New("planner: stopped")

// ErrCrossShardConflict is returned by a Committer when re-validation against
// commits that landed after the decisive build's base fails. The planner
// reacts by dropping the decisive build so reconcile schedules a fresh one
// against the new head — the change is rebuilt, not rejected.
var ErrCrossShardConflict = errors.New("planner: cross-shard conflict at commit")

// ConflictSource supplies the conflict graph the planner plans over. The
// single-planner service passes the *conflict.Analyzer directly; sharded
// planner engines receive a coordinator-fed view scoped to their component
// group, so concurrent engines never contend on one incremental graph memo.
type ConflictSource interface {
	BuildGraph(pending []*change.Change) (*conflict.Graph, map[change.ID]error)
}

// CommitProposal describes a commit-ready change a planner wants to land:
// the decisive build's base, everything the build merged, and the footprint
// a commit arbiter needs for cross-shard re-validation (DESIGN.md §4h).
type CommitProposal struct {
	// Shard identifies the proposing planner engine (stats and events).
	Shard int
	// Change is the subject whose decisive build passed.
	Change *change.Change
	// BaseLen is the repo mainline length at the decisive build's base; any
	// commit at sequence >= BaseLen landed after the build started.
	BaseLen int
	// Applied are the changes the decisive build merged (assumed-committed
	// predecessors followed by the subject); interleaved commits of these
	// changes are part of the build and need no re-validation.
	Applied []change.ID
	// Targets are the affected-target names of the decisive build's delta.
	Targets []string
	// Paths are the files the subject's patch touches.
	Paths []string
	// Now is the commit timestamp (the planner's injected clock).
	Now time.Time
	// Class is the subject's scheduling lane; the commit arbiter lets
	// hotfix-lane proposals overtake waiting lower-lane proposals.
	Class change.Class
}

// Committer owns head advancement. When Config.Committer is nil the planner
// commits directly with repo.CommitPatch, exactly as before the shard layer
// existed; in sharded mode every engine routes proposals through the
// serialized commit arbiter, which re-validates cross-shard interleavings
// and applies commits in a deterministic total order.
type Committer interface {
	Commit(p CommitProposal) (*repo.Commit, error)
}

// Outcome records the final disposition of a change.
type Outcome struct {
	ID     change.ID
	State  change.State // StateCommitted or StateRejected
	Reason string       // rejection reason
	Commit repo.CommitID
	At     time.Time
}

// Config tunes the planner.
type Config struct {
	// Budget is the maximum number of concurrently running builds (the
	// paper's "based on the number of available resources"). <= 0 means 4.
	Budget int
	// MaxSpecDepth caps per-subject speculation branching.
	MaxSpecDepth int
	// SkipThreshold, when in (0, 1], enables predictor-gated build skipping
	// (DESIGN.md §4j): speculation branch points whose predecessor is
	// predicted to commit with probability >= the threshold are not hedged —
	// only the assume-commit subtree is planned. The decisive build still
	// gates every commit, so a wrong skip costs a restart, never a red
	// master. Zero disables skipping.
	SkipThreshold float64
	// PreemptionGrace, if > 0, prevents aborting a build that has been
	// running longer than this (§10 "Build Preemption" future work).
	PreemptionGrace time.Duration
	// TestSelectionRadius, if > 0, restricts test-kind build steps (unit,
	// integration, UI) to targets within this many reverse-dependency hops
	// of the directly modified targets — the §9/§10 test-selection
	// extension. Compilation and artifact steps still cover every affected
	// target, so the mainline remains structurally green; the trade-off is
	// that a behavioral regression in a distant dependent may slip through,
	// exactly as with production test-selection systems.
	TestSelectionRadius int
	// Now supplies the clock (real time by default); injectable for tests.
	Now func() time.Time
	// Events, when non-nil, receives lifecycle events (build starts,
	// finishes, aborts, commits, rejections) for observability.
	Events *events.Bus
	// LegacyPreparation disables the shared-prefix preparation trie:
	// startBuild re-merges and re-analyzes the full change list (and its
	// k−1 prefix) from scratch per build, as the planner did before the
	// trie existed. Kept for ablation and benchmarking.
	LegacyPreparation bool
	// LegacyReplan disables plan/reconcile memoization: every Tick runs
	// decide + spec.Plan + reconcile even when the planner inputs are
	// unchanged since the previous epoch. Kept for ablation and
	// benchmarking.
	LegacyReplan bool
	// Reliability, when non-nil, provides flaky-failure handling (DESIGN.md
	// §4g): its retry budget is refreshed each epoch, and before a failed
	// decisive build rejects its change, suspect failures earn one
	// verification re-run of the same request (same snapshot, same steps).
	Reliability *reliability.Reliability
	// Committer, when non-nil, owns head advancement: decide proposes
	// commit-ready changes instead of calling repo.CommitPatch directly.
	// Sharded mode points every engine at the shared commit arbiter.
	Committer Committer
	// ShardID identifies this planner engine in sharded mode (proposal
	// attribution; 0 for the single-planner service).
	ShardID int
	// ExternalSubjectState stops resolve from writing Subject.State/Reason in
	// place. The shard coordinator sets it: a rebalance can briefly assign one
	// change to two engines, and concurrent in-place writes would race, so the
	// coordinator applies the single winning decision itself at outcome-merge
	// time.
	ExternalSubjectState bool
	// Sched, when non-nil, enables priority-lane scheduling (DESIGN.md §4l):
	// each pending change's class/deadline weight multiplies its value in
	// the speculation request, the P0 lane is exempt from SkipThreshold
	// gating, and a pending hotfix overrides PreemptionGrace for non-hotfix
	// running builds. Nil planners behave exactly as before the sched layer
	// existed. Sharded mode clones one policy per engine.
	Sched *sched.Policy
}

// trackedBuild is a build the planner started, with enough context to
// recompute its dynamic key at any time.
type trackedBuild struct {
	build     speculation.Build
	baseLen   int            // repo mainline length when the build started
	task      *buildsys.Task // nil once finished
	result    buildsys.Result
	startedAt time.Time
	// req is the controller request, kept so a suspect failure can be
	// verified by re-running the identical build (zero for synthetic
	// merge-failure results). verified marks that the one verification
	// re-run has been spent.
	req      buildsys.Request
	verified bool

	// Cached dynamic key, valid while keyedAt matches the planner's
	// keyEpoch. Resolutions (commit/reject) are the only events that change
	// a build's key, so the cache is invalidated by bumping the epoch there
	// instead of rebuilding every key on every decide/reconcile pass.
	key     string
	keyedAt uint64
}

// Planner orchestrates pending changes to commit or rejection. Tick must not
// be called concurrently with itself; all other methods are safe to call
// from any goroutine.
type Planner struct {
	repo       *repo.Repo
	queue      *queue.Queue
	analyzer   ConflictSource
	spec       *speculation.Engine
	controller *buildsys.Controller
	cfg        Config

	// wake receives (coalesced) build-completion notifications from the
	// per-build watcher goroutines; waitAny blocks on it instead of
	// spawning a goroutine per running build per call.
	wake chan struct{}

	// prep is the shared-prefix preparation trie. Only the Tick goroutine
	// touches it (Tick must not be called concurrently with itself).
	prep *prepCache

	mu           sync.Mutex
	running      []*trackedBuild
	finished     []*trackedBuild
	committed    []change.ID // in commit order since planner creation
	committedSet map[change.ID]bool
	rejected     map[change.ID]string // reason
	outcomes     []Outcome
	initialLen   int // repo mainline length at planner creation
	stats        Stats

	// keyEpoch versions the per-build dynamic-key caches; resolve bumps it.
	keyEpoch uint64
	// committedPrefix is the committed history rendered once ("c1+c2+…+"),
	// and prefixLen[i] is the byte length of its first i entries, so
	// dynamicKey and decisiveKey slice in O(1) instead of re-joining the
	// full history per key.
	committedPrefix string
	prefixLen       []int
	// lastPlanFP memoizes the plan-input fingerprint of the last epoch that
	// ran decide+Plan+reconcile; an identical fingerprint lets Tick skip
	// both entirely.
	lastPlanFP string
	havePlanFP bool
}

// New creates a Planner over the repository.
func New(r *repo.Repo, q *queue.Queue, an ConflictSource, spec *speculation.Engine, ctrl *buildsys.Controller, cfg Config) *Planner {
	if cfg.Budget <= 0 {
		cfg.Budget = 4
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxSpecDepth > 0 {
		spec.MaxSpecDepth = cfg.MaxSpecDepth
	}
	if cfg.SkipThreshold > 0 {
		spec.SkipThreshold = cfg.SkipThreshold
	}
	return &Planner{
		repo:         r,
		queue:        q,
		analyzer:     an,
		spec:         spec,
		controller:   ctrl,
		cfg:          cfg,
		wake:         make(chan struct{}, 1),
		committedSet: map[change.ID]bool{},
		rejected:     map[change.ID]string{},
		initialLen:   r.Len(),
		keyEpoch:     1,
		prefixLen:    []int{0},
	}
}

// Stats returns a copy of the planner's work counters.
func (p *Planner) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// count applies f to the stats under the planner mutex.
func (p *Planner) count(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}

// Outcomes returns the dispositions recorded so far, in decision order.
func (p *Planner) Outcomes() []Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Outcome(nil), p.outcomes...)
}

// OutcomeCount returns the number of dispositions recorded so far. The shard
// coordinator polls it each epoch and fetches the full slice only when the
// count advanced, keeping the idle path allocation-free.
func (p *Planner) OutcomeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.outcomes)
}

// OutcomesSince returns a copy of the dispositions recorded after the first
// n, in decision order. Callers that track a cursor (core's journal sync, the
// shard coordinator) use it to read only the delta instead of copying the
// full history on every poll.
func (p *Planner) OutcomesSince(n int) []Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(p.outcomes) {
		return nil
	}
	return append([]Outcome(nil), p.outcomes[n:]...)
}

// dynamicKey identifies a build by its absolute apply list (committed prefix
// up to the build's base, then the build's changes) plus rejection
// assumptions about changes that are still unresolved. Callers hold p.mu.
func (p *Planner) dynamicKey(baseLen int, b speculation.Build) string {
	var sb strings.Builder
	prefix := baseLen - p.initialLen
	if prefix > len(p.committed) {
		prefix = len(p.committed)
	}
	if prefix < 0 {
		prefix = 0
	}
	sb.WriteString(p.committedPrefix[:p.prefixLen[prefix]])
	for i, id := range b.Changes {
		if i > 0 {
			sb.WriteByte('+')
		}
		sb.WriteString(string(id))
	}
	var rej []string
	for _, id := range b.AssumedRejected {
		if !p.committedSet[id] {
			if _, wasRejected := p.rejected[id]; !wasRejected {
				rej = append(rej, string(id)) // still unresolved
			}
		}
	}
	if len(rej) > 0 {
		sb.WriteByte('!')
		sb.WriteString(strings.Join(rej, ","))
	}
	return sb.String()
}

// decisiveKey is the dynamic key of the build that decides the fate of a
// change whose conflicting predecessors are all resolved: the full committed
// history plus the change itself, with no outstanding assumptions. Callers
// hold p.mu.
func (p *Planner) decisiveKey(id change.ID) string {
	return p.committedPrefix + string(id)
}

// buildKeyLocked returns the build's dynamic key, recomputing it only when a
// resolution has bumped the key epoch since it was last cached. Callers hold
// p.mu.
func (p *Planner) buildKeyLocked(rb *trackedBuild) string {
	if rb.keyedAt == p.keyEpoch {
		p.stats.KeysCached++
		return rb.key
	}
	rb.key = p.dynamicKey(rb.baseLen, rb.build)
	rb.keyedAt = p.keyEpoch
	p.stats.KeysComputed++
	return rb.key
}

// planFingerprintLocked renders every input decide/Plan/reconcile depend on:
// the head commit, the budget, the pending IDs in submission order, and the
// dynamic keys of running and finished builds in slice order. Change
// features that feed speculation (Spec success counters) change only when a
// build is reaped, which changes the finished set, so they are covered
// transitively. A build's verified flag is part of its key: a failed build
// that already spent its verification re-run decides differently (reject)
// than the same key before verification (re-run), and without the marker
// the post-verification state would fingerprint identically to the
// pre-verification epoch and decide would be skipped forever. Callers hold
// p.mu.
func (p *Planner) planFingerprintLocked(pending []*change.Change) string {
	var sb strings.Builder
	sb.WriteString(string(p.repo.Head().ID))
	sb.WriteString("|b")
	fmt.Fprintf(&sb, "%d", p.cfg.Budget)
	sb.WriteString("|p:")
	for _, c := range pending {
		sb.WriteString(string(c.ID))
		sb.WriteByte(',')
	}
	if p.cfg.Sched != nil {
		// Deadline urgency moves with the clock, so a quantized weight per
		// non-default change must be part of the fingerprint — otherwise an
		// aging P2's rising weight would be memoized away and its plan never
		// recomputed. One decimal of quantization bounds replan churn.
		sb.WriteString("|s:")
		now := p.cfg.Now()
		for _, c := range pending {
			w := p.cfg.Sched.Weight(c.Class, c.Deadline, now)
			if c.Class == change.ClassNormal && w == 1 {
				sb.WriteByte('.')
			} else {
				fmt.Fprintf(&sb, "%d:%.1f", c.Class, w)
			}
			sb.WriteByte(',')
		}
	}
	sb.WriteString("|r:")
	for _, rb := range p.running {
		sb.WriteString(p.buildKeyLocked(rb))
		if rb.verified {
			sb.WriteByte('!')
		}
		sb.WriteByte(';')
	}
	sb.WriteString("|f:")
	for _, fb := range p.finished {
		sb.WriteString(p.buildKeyLocked(fb))
		if fb.verified {
			sb.WriteByte('!')
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

// pruneFinishedLocked garbage-collects finished builds that can never again
// match a plan: the subject is resolved (or gone from the queue), a change
// the build merged in was rejected, or a change it assumed rejected has
// committed. Without this, p.finished grows without bound over a long run.
// Builds whose assumed predecessors *committed* are kept — after head
// movement their dynamic key becomes the subject's decisive key, which is
// exactly the reuse the speculation tree exists for. Callers hold p.mu.
func (p *Planner) pruneFinishedLocked() {
	kept := p.finished[:0]
	for _, fb := range p.finished {
		if p.staleFinishedLocked(fb) {
			p.stats.FinishedPruned++
			continue
		}
		kept = append(kept, fb)
	}
	for i := len(kept); i < len(p.finished); i++ {
		p.finished[i] = nil
	}
	p.finished = kept
}

// staleFinishedLocked reports whether a build's result can never again be
// used: the subject is resolved or withdrawn, an assumed-committed change was
// rejected, or an assumed-rejected change committed. It applies equally to
// running builds — the same contradictions make an in-flight build's outcome
// unusable. Callers hold p.mu.
func (p *Planner) staleFinishedLocked(fb *trackedBuild) bool {
	subject := fb.build.Subject
	if p.committedSet[subject] {
		return true
	}
	if _, rejected := p.rejected[subject]; rejected {
		return true
	}
	if !p.queue.Contains(subject) {
		return true // withdrawn without a decision
	}
	for _, id := range fb.build.Assumed {
		if _, rejected := p.rejected[id]; rejected {
			return true // built on a rejected predecessor's patch
		}
	}
	for _, id := range fb.build.AssumedRejected {
		if p.committedSet[id] {
			return true // assumed a rejection that did not happen
		}
	}
	return false
}

// obsoleteLocked is the §4j obsolescence predicate for a running build: its
// success can no longer affect any commit decision. Either a resolution
// contradicted its assumptions (staleFinishedLocked), or it is dominated — a
// finished build with the same dynamic key already holds the result it is
// still computing. finishedKeys, when non-nil, is the caller's precomputed
// finished-key set; otherwise the finished list is scanned. Callers hold p.mu.
func (p *Planner) obsoleteLocked(rb *trackedBuild, finishedKeys map[string]bool) bool {
	if p.staleFinishedLocked(rb) {
		return true
	}
	key := p.buildKeyLocked(rb)
	if finishedKeys != nil {
		return finishedKeys[key]
	}
	for _, fb := range p.finished {
		if p.buildKeyLocked(fb) == key {
			return true
		}
	}
	return false
}

// cancelRunningLocked cancels a build the planner is dropping and publishes
// the abort together with the compute it throws away (the task's executed
// step-unit wall time so far). Callers hold p.mu and remove the build from
// p.running themselves.
func (p *Planner) cancelRunningLocked(rb *trackedBuild, why string) {
	wasted := rb.task.Executed()
	rb.task.Cancel()
	if p.cfg.Events != nil {
		p.cfg.Events.Publish(events.Event{
			Type: events.TypeBuildAborted, Change: rb.build.Subject, Build: rb.build.Key(),
			Detail: fmt.Sprintf("%s; %v executed wasted", why, wasted),
		})
	}
}

// pruneRunningLocked eagerly aborts running builds the obsolescence predicate
// condemns. It runs on every resolution, so a contradicted speculation build
// stops burning workers the moment the contradiction lands instead of running
// until the next reconcile drops it (or, under PreemptionGrace, to
// completion). Obsolescence deliberately ignores the grace window: grace
// exists to damp re-planning churn, and a build whose assumptions are
// contradicted can never be useful no matter how nearly done it is. Callers
// hold p.mu.
func (p *Planner) pruneRunningLocked() {
	kept := p.running[:0]
	for _, rb := range p.running {
		if !p.obsoleteLocked(rb, nil) {
			kept = append(kept, rb)
			continue
		}
		p.stats.ObsoleteAborted++
		p.cancelRunningLocked(rb, "obsolete after resolution")
	}
	for i := len(kept); i < len(p.running); i++ {
		p.running[i] = nil
	}
	p.running = kept
}

// Tick runs one epoch: reap finished builds, decide commits/rejections,
// re-plan, and reconcile running builds with the plan. It returns true if
// any state changed (useful for quiescence detection).
//
// When the plan-input fingerprint (head, pending, running/finished keys,
// budget) is unchanged since the last fully-planned epoch, decide and
// reconcile are provably no-ops — every decision and scheduling choice is a
// function of exactly those inputs, and the only time-dependent choice
// (keeping an over-grace build) is monotone — so Tick skips them entirely.
// This is what makes the 250ms Run loop cheap on idle epochs.
func (p *Planner) Tick(ctx context.Context) (bool, error) {
	if p.cfg.Reliability != nil {
		p.cfg.Reliability.BeginEpoch()
	}
	progress := p.reap()
	pending := p.queue.Pending()
	p.mu.Lock()
	fp := p.planFingerprintLocked(pending)
	if !p.cfg.LegacyReplan && p.havePlanFP && fp == p.lastPlanFP {
		p.stats.PlansSkipped++
		p.mu.Unlock()
		return progress, nil
	}
	p.stats.PlansComputed++
	p.lastPlanFP = fp
	p.havePlanFP = true
	p.mu.Unlock()
	var cg *conflict.Graph
	for {
		n, g, err := p.decide(ctx)
		if err != nil {
			return progress, err
		}
		cg = g
		if n == 0 {
			break
		}
		progress = true
	}
	started, err := p.reconcile(ctx, cg)
	if err != nil {
		return progress, err
	}
	return progress || started, nil
}

// reap moves completed tasks from running to finished.
func (p *Planner) reap() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	progress := false
	var still []*trackedBuild
	for _, rb := range p.running {
		select {
		case <-rb.task.Done():
			res := rb.task.Result()
			progress = true
			if errors.Is(res.Err, buildsys.ErrAborted) {
				if p.cfg.Events != nil {
					p.cfg.Events.Publish(events.Event{
						Type: events.TypeBuildAborted, Change: rb.build.Subject, Build: rb.build.Key(),
						Detail: fmt.Sprintf("%v executed wasted", res.Executed),
					})
				}
				continue // dropped entirely
			}
			if p.cfg.Events != nil {
				detail := "ok"
				if !res.OK {
					detail = "failed: " + res.FailedStep
					if res.FailedTarget != "" {
						detail += " @ " + res.FailedTarget
					}
				}
				p.cfg.Events.Publish(events.Event{
					Type: events.TypeBuildFinished, Change: rb.build.Subject,
					Build: rb.build.Key(), Detail: detail,
				})
			}
			rb.result = res
			rb.task = nil
			p.finished = append(p.finished, rb)
			// Dynamic speculation features (§7.2). Atomic: change structs
			// are read concurrently by the analyzer/predictor fan-out.
			if c, err := p.queue.Get(rb.build.Subject); err == nil {
				c.Spec.RecordOutcome(res.OK)
			}
		default:
			still = append(still, rb)
		}
	}
	p.running = still
	return progress
}

// decide commits or rejects every change whose fate is determined, in
// submission order. Returns the number of decisions made and the conflict
// graph it planned over, so reconcile can reuse it when no decision (and no
// head movement) intervened. A suspect failed decisive build is re-run once
// for verification instead of rejecting (counted as a decision so the Tick
// loop and plan fingerprint observe the state change).
func (p *Planner) decide(ctx context.Context) (int, *conflict.Graph, error) {
	pending := p.queue.Pending()
	if len(pending) == 0 {
		return 0, nil, nil
	}
	cg, failed := p.analyzer.BuildGraph(pending)
	byID := make(map[change.ID]*change.Change, len(pending))
	for _, c := range pending {
		byID[c.ID] = c
	}
	decisions := 0
	// Changes that no longer apply to head are rejected outright (merge
	// conflict with committed work), in a stable order so outcome logs and
	// event streams replay identically.
	var failedIDs []change.ID
	for id := range failed {
		failedIDs = append(failedIDs, id)
	}
	sort.Slice(failedIDs, func(i, j int) bool { return failedIDs[i] < failedIDs[j] })
	for _, id := range failedIDs {
		p.resolve(byID[id], change.StateRejected, fmt.Sprintf("patch no longer applies: %v", failed[id]), "")
		decisions++
	}
	if decisions > 0 {
		return decisions, cg, nil
	}
	for _, c := range pending {
		// All conflicting predecessors must be resolved; with the graph
		// computed over pending only, any predecessor still pending blocks.
		if len(cg.ConflictingPredecessors(c.ID)) > 0 {
			continue
		}
		p.mu.Lock()
		want := p.decisiveKey(c.ID)
		var match *trackedBuild
		for _, fb := range p.finished {
			if p.buildKeyLocked(fb) == want {
				match = fb
				break
			}
		}
		p.mu.Unlock()
		if match == nil {
			continue
		}
		res := match.result
		if !res.OK {
			if p.verifySuspect(ctx, match) {
				decisions++
				continue
			}
			reason := fmt.Sprintf("build failed at %s", res.FailedStep)
			if res.FailedTarget != "" {
				reason = fmt.Sprintf("build failed at %s (target %s)", res.FailedStep, res.FailedTarget)
			}
			if res.Err != nil {
				reason = fmt.Sprintf("%s: %v", reason, res.Err)
			}
			p.resolve(c, change.StateRejected, reason, "")
			decisions++
			continue
		}
		var commit *repo.Commit
		var err error
		if p.cfg.Committer != nil {
			commit, err = p.cfg.Committer.Commit(CommitProposal{
				Shard:   p.cfg.ShardID,
				Change:  c,
				BaseLen: match.baseLen,
				Applied: match.build.Changes,
				Targets: targetNames(match.req.Targets),
				Paths:   c.Patch.Paths(),
				Now:     p.cfg.Now(),
				Class:   c.Class,
			})
		} else {
			head := p.repo.Head()
			commit, err = p.repo.CommitPatch(head.ID, c.Patch, c.Author.Name, c.Description, p.cfg.Now())
		}
		if err != nil {
			if errors.Is(err, repo.ErrStaleHead) {
				continue // concurrent commit; retry next tick
			}
			if errors.Is(err, ErrCrossShardConflict) {
				// The decisive build raced a conflicting foreign commit. Drop
				// it so reconcile schedules a fresh build against the new
				// head; the change is rebuilt, not rejected.
				p.dropFinished(match)
				decisions++
				continue
			}
			p.resolve(c, change.StateRejected, fmt.Sprintf("commit failed: %v", err), "")
			decisions++
			continue
		}
		if match.verified && p.cfg.Reliability != nil {
			p.cfg.Reliability.NoteAverted()
			if p.cfg.Events != nil {
				p.cfg.Events.Publish(events.Event{
					Type: events.TypeRejectionAverted, Change: c.ID, Build: match.build.Key(),
					Detail: "verification re-run passed; flaky failure did not reject",
				})
			}
		}
		p.resolve(c, change.StateCommitted, "", commit.ID)
		decisions++
	}
	return decisions, cg, nil
}

// verifySuspect grants a failed decisive build one verification re-run when
// its failing step is suspect (known-flaky identity, flaky kind, or
// quarantined kind): the identical request — same snapshot, same steps — is
// restarted and the build moves from finished back to running, so decide
// revisits it when the re-run completes. Synthetic merge failures (empty
// request) and already-verified builds never qualify.
func (p *Planner) verifySuspect(ctx context.Context, fb *trackedBuild) bool {
	rel := p.cfg.Reliability
	if rel == nil || fb.verified || len(fb.req.Steps) == 0 {
		return false
	}
	if !rel.ShouldVerifyBuild(fb.req, fb.result) {
		return false
	}
	detail := "verification re-run of suspect failure: " + fb.result.FailedStep
	if fb.result.FailedTarget != "" {
		detail += " @ " + fb.result.FailedTarget
	}
	fb.verified = true
	task := p.controller.Start(ctx, fb.req)
	go p.notifyDone(task)
	p.mu.Lock()
	for i, x := range p.finished {
		if x == fb {
			p.finished = append(p.finished[:i], p.finished[i+1:]...)
			break
		}
	}
	fb.task = task
	fb.result = buildsys.Result{}
	fb.startedAt = p.cfg.Now()
	p.running = append(p.running, fb)
	p.stats.BuildsStarted++
	p.mu.Unlock()
	if p.cfg.Events != nil {
		p.cfg.Events.Publish(events.Event{
			Type: events.TypeBuildRetried, Change: fb.build.Subject, Build: fb.build.Key(),
			Detail: detail,
		})
	}
	return true
}

// resolve finalizes a change's state. It always records the outcome, even if
// the change has already left this planner's queue: in sharded mode the
// coordinator may move a change between engines while a decision is in
// flight, and dropping the outcome here would lose the decision entirely.
func (p *Planner) resolve(c *change.Change, st change.State, reason string, commit repo.CommitID) {
	if c == nil {
		return
	}
	id := c.ID
	if !p.cfg.ExternalSubjectState {
		c.State = st
		c.Reason = reason
	}
	_ = p.queue.Remove(id)
	p.mu.Lock()
	defer p.mu.Unlock()
	if st == change.StateCommitted {
		p.committed = append(p.committed, id)
		p.committedSet[id] = true
		p.committedPrefix += string(id) + "+"
		p.prefixLen = append(p.prefixLen, len(p.committedPrefix))
	} else {
		p.rejected[id] = reason
	}
	p.keyEpoch++ // every resolution can change dynamic keys
	p.pruneFinishedLocked()
	p.pruneRunningLocked()
	p.outcomes = append(p.outcomes, Outcome{ID: id, State: st, Reason: reason, Commit: commit, At: p.cfg.Now()})
	if p.cfg.Events != nil {
		typ := events.TypeCommitted
		detail := string(commit)
		if st == change.StateRejected {
			typ = events.TypeRejected
			detail = reason
		}
		p.cfg.Events.Publish(events.Event{Type: typ, Change: id, Detail: detail})
	}
}

// dropFinished removes a finished build after the arbiter bounced its commit
// proposal: the build's base predates a conflicting foreign commit, so its
// result is unusable and reconcile must schedule a fresh decisive build
// against the new head.
func (p *Planner) dropFinished(fb *trackedBuild) {
	p.mu.Lock()
	for i, x := range p.finished {
		if x == fb {
			p.finished = append(p.finished[:i], p.finished[i+1:]...)
			break
		}
	}
	p.stats.CrossShardRebuilds++
	p.mu.Unlock()
	if p.cfg.Events != nil {
		p.cfg.Events.Publish(events.Event{
			Type: events.TypeBuildAborted, Change: fb.build.Subject, Build: fb.build.Key(),
			Detail: "cross-shard conflict at commit; rebuilding against new head",
		})
	}
}

// targetNames returns the sorted target names of a build request's delta.
func targetNames(targets map[string]string) []string {
	out := make([]string, 0, len(targets))
	for name := range targets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// reconcile computes the current plan and aligns running builds with it.
// cg, when it covers exactly the current pending set, is reused from decide
// rather than rebuilt; the analyzer's incremental graph memo makes a rebuild
// cheap, but reusing the clone avoids even the O(n²) pair walk.
func (p *Planner) reconcile(ctx context.Context, cg *conflict.Graph) (bool, error) {
	pending := p.queue.Pending()
	if len(pending) == 0 {
		p.abortAll()
		return false, nil
	}
	if cg == nil || !graphCovers(cg, pending) {
		cg, _ = p.analyzer.BuildGraph(pending)
	}
	var weights []float64
	var noSkip []bool
	if p.cfg.Sched != nil {
		weights, noSkip = p.cfg.Sched.Weights(pending, p.cfg.Now())
	}
	plan := p.spec.Plan(speculation.Request{
		Pending:   pending,
		Conflicts: cg,
		Budget:    p.cfg.Budget,
		Weights:   weights,
		NoSkip:    noSkip,
	})

	p.mu.Lock()
	headLen := p.repo.Len()
	doneKeys := map[string]bool{}
	for _, fb := range p.finished {
		doneKeys[p.buildKeyLocked(fb)] = true
	}
	runningKeys := map[string]*trackedBuild{}
	for _, rb := range p.running {
		runningKeys[p.buildKeyLocked(rb)] = rb
	}
	desired := map[string]speculation.Build{}
	for _, b := range plan.Builds {
		if len(desired) >= p.cfg.Budget {
			break
		}
		key := p.dynamicKey(headLen, b)
		if doneKeys[key] {
			continue // result already available; no need to build
		}
		desired[key] = b
	}
	p.stats.SpecBranchesSkipped += plan.BranchesSkipped
	p.stats.SpecBuildsSkipped += plan.BuildsSkipped
	// Abort running builds not desired (honoring the preemption grace —
	// except for obsolete builds, whose contradicted assumptions make them
	// worthless no matter how nearly done they are). A pending hotfix
	// overrides the grace for non-hotfix builds: the P0 lane needs the
	// capacity now, and a nearly-done build for a preempted plan is worth
	// less than hotfix turnaround (DESIGN.md §4l).
	hotfixPressure := false
	classOf := map[change.ID]change.Class{}
	if p.cfg.Sched != nil {
		for _, c := range pending {
			classOf[c.ID] = c.Class
			if c.Class == change.ClassHotfix {
				hotfixPressure = true
			}
		}
	}
	now := p.cfg.Now()
	var keep []*trackedBuild
	for _, rb := range p.running { // slice order, not map order: keep is the new p.running
		key := p.buildKeyLocked(rb)
		if _, want := desired[key]; want {
			keep = append(keep, rb)
			continue
		}
		obsolete := p.obsoleteLocked(rb, doneKeys)
		if !obsolete && p.cfg.PreemptionGrace > 0 && now.Sub(rb.startedAt) >= p.cfg.PreemptionGrace {
			if hotfixPressure && classOf[rb.build.Subject] != change.ClassHotfix {
				p.stats.HotfixPreempted++
				p.cancelRunningLocked(rb, "preempted by hotfix lane")
				continue
			}
			keep = append(keep, rb) // nearly done; let it finish (§10)
			continue
		}
		if obsolete {
			p.stats.ObsoleteAborted++
			p.cancelRunningLocked(rb, "obsolete")
			continue
		}
		p.cancelRunningLocked(rb, "dropped from plan")
	}
	p.running = keep
	// Builds to start, in plan priority order.
	var toStart []speculation.Build
	for _, b := range plan.Builds {
		key := p.dynamicKey(headLen, b)
		if _, want := desired[key]; !want {
			continue
		}
		if _, already := runningKeys[key]; already {
			continue
		}
		toStart = append(toStart, b)
	}
	slots := p.cfg.Budget - len(p.running)
	p.mu.Unlock()

	started := false
	for _, b := range toStart {
		if slots <= 0 {
			break
		}
		if err := p.startBuild(ctx, b); err != nil {
			return started, err
		}
		slots--
		started = true
	}
	return started, nil
}

// graphCovers reports whether the conflict graph's vertex set is exactly the
// pending changes, in order. Any decision or queue churn between decide and
// reconcile breaks the match and forces a fresh (incremental) BuildGraph.
func graphCovers(cg *conflict.Graph, pending []*change.Change) bool {
	order := cg.Order()
	if len(order) != len(pending) {
		return false
	}
	for i, c := range pending {
		if order[i] != c.ID {
			return false
		}
	}
	return true
}

// startBuild merges the build's patches (through the shared-prefix
// preparation trie unless LegacyPreparation), computes affected targets and
// the minimal-build-step sets, and launches the controller task.
func (p *Planner) startBuild(ctx context.Context, b speculation.Build) error {
	head := p.repo.Head()
	var patches []repo.Patch
	var subject *change.Change
	for _, id := range b.Changes {
		c, err := p.queue.Get(id)
		if err != nil {
			return nil // pending set changed under us; replan next tick
		}
		patches = append(patches, c.Patch)
		subject = c
	}
	var prep prepared
	var err error
	if p.cfg.LegacyPreparation {
		prep, err = p.prepareLegacy(head, patches)
	} else {
		prep, err = p.prepare(head, b.Changes, patches)
	}
	if err != nil {
		return err
	}
	if prep.failure != "" {
		// The merge (or its graph) fails: record as a failed build so
		// decide() can reject the subject when its turn comes.
		p.recordImmediateFailure(b, head, prep.failure)
		return nil
	}

	targets := map[string]string{}
	for name, h := range prep.delta {
		if h == buildgraph.DeletedHash {
			continue
		}
		targets[name] = h
	}
	subject.Stats.AffectedTargets = len(targets)

	steps := subject.BuildSteps
	if p.cfg.TestSelectionRadius > 0 {
		steps = p.selectTests(steps, prep.graph, subject, targets)
	}

	req := buildsys.Request{
		Key:          b.Key(),
		Snapshot:     prep.snap,
		Steps:        steps,
		Targets:      targets,
		PriorTargets: prep.prior,
	}
	task := p.controller.Start(ctx, req)
	go p.notifyDone(task)
	p.mu.Lock()
	p.stats.BuildsStarted++
	p.running = append(p.running, &trackedBuild{
		build:     b,
		baseLen:   head.Seq + 1,
		task:      task,
		startedAt: p.cfg.Now(),
		req:       req,
	})
	p.mu.Unlock()
	if p.cfg.Events != nil {
		p.cfg.Events.Publish(events.Event{
			Type: events.TypeBuildStarted, Change: b.Subject, Build: b.Key(),
		})
	}
	return nil
}

// selectTests restricts test-kind steps to targets within the configured
// radius of the subject's directly modified targets (§9 test selection).
func (p *Planner) selectTests(steps []change.BuildStep, g *buildgraph.Graph, subject *change.Change, affected map[string]string) []change.BuildStep {
	direct := g.TargetsForPaths(subject.Patch.Paths())
	within := g.DependentsWithin(p.cfg.TestSelectionRadius, direct...)
	var selected []string
	for name := range affected {
		if within[name] {
			selected = append(selected, name)
		}
	}
	sort.Strings(selected)
	out := make([]change.BuildStep, 0, len(steps))
	for _, st := range steps {
		switch st.Kind {
		case change.StepUnitTest, change.StepIntegrationTest, change.StepUITest:
			if len(st.Targets) == 0 { // only widen-to-all steps are narrowed
				if len(selected) == 0 {
					continue // nothing in radius: drop the test step entirely
				}
				st.Targets = selected
			}
		}
		out = append(out, st)
	}
	return out
}

// recordImmediateFailure registers a synthetic failed result for builds that
// cannot even start (merge or graph errors).
func (p *Planner) recordImmediateFailure(b speculation.Build, head *repo.Commit, reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished = append(p.finished, &trackedBuild{
		build:   b,
		baseLen: head.Seq + 1,
		result:  buildsys.Result{Key: b.Key(), OK: false, Err: errors.New(reason), FailedStep: "merge"},
	})
}

// abortAll cancels every running build (used when the queue is empty). With
// no pending changes every build is obsolete by definition, so no grace
// window applies.
func (p *Planner) abortAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rb := range p.running {
		p.cancelRunningLocked(rb, "queue drained")
	}
	p.running = nil
}

// RunningCount returns the number of in-flight builds.
func (p *Planner) RunningCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.running)
}

// Quiesce ticks until the queue drains, waiting for build completions
// between epochs. It returns ErrStopped if the context is cancelled first.
func (p *Planner) Quiesce(ctx context.Context) error {
	for {
		if _, err := p.Tick(ctx); err != nil {
			return err
		}
		if p.queue.Len() == 0 {
			return nil
		}
		if err := p.waitAny(ctx); err != nil {
			return err
		}
	}
}

// notifyDone forwards one build completion into the coalescing wake channel.
// Exactly one watcher goroutine exists per build lifetime (spawned when the
// build starts, gone when it completes) — unlike the previous scheme, where
// every waitAny call spawned a fresh goroutine per running build that
// blocked until that build finished, accumulating one goroutine per tick for
// long builds.
func (p *Planner) notifyDone(task *buildsys.Task) {
	<-task.Done()
	select {
	case p.wake <- struct{}{}:
	default: // a wake token is already pending; coalesce
	}
}

// waitAny blocks until any running build finishes, a short poll interval
// elapses, or the context is cancelled. Spurious wakes (a token left over
// from a build reaped earlier) cost one extra Tick and are harmless; the
// 50ms fallback covers tokens coalesced away while no one was waiting.
func (p *Planner) waitAny(ctx context.Context) error {
	if p.RunningCount() == 0 {
		select {
		case <-ctx.Done():
			return ErrStopped
		case <-time.After(time.Millisecond):
			return nil
		}
	}
	select {
	case <-ctx.Done():
		return ErrStopped
	case <-p.wake:
		return nil
	case <-time.After(50 * time.Millisecond):
		return nil
	}
}

// Run ticks on the configured epoch until the context is cancelled.
func (p *Planner) Run(ctx context.Context, epoch time.Duration) error {
	if epoch <= 0 {
		epoch = 250 * time.Millisecond
	}
	tick := time.NewTicker(epoch)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			p.abortAll()
			return ctx.Err()
		case <-tick.C:
			if _, err := p.Tick(ctx); err != nil {
				return err
			}
		}
	}
}
