package planner

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/predict"
	"mastergreen/internal/queue"
	"mastergreen/internal/repo"
	"mastergreen/internal/speculation"
)

// TestMergeFailureRecordedAsBuildFailure: a speculative build whose patches
// do not merge (two changes editing the same file) must surface as a failed
// build that rejects the later change once its predecessor commits.
func TestMergeFailureRecordedAsBuildFailure(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 8})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "x/x.go", "x v3") // same file: merge conflict
	e.quiesce(t)
	if c1.State != change.StateCommitted {
		t.Fatalf("c1 = %v (%s)", c1.State, c1.Reason)
	}
	if c2.State != change.StateRejected {
		t.Fatalf("c2 = %v (%s)", c2.State, c2.Reason)
	}
	if !strings.Contains(c2.Reason, "merge") && !strings.Contains(c2.Reason, "apply") {
		t.Fatalf("reason should mention the merge: %q", c2.Reason)
	}
}

// TestBrokenBuildFileRejected: a change that corrupts the target graph (BUILD
// syntax error) must be rejected with a graph error, not crash the planner.
func TestBrokenBuildFileRejected(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	c := e.submit(t, "c1", "x/BUILD", "target x srcs=x.go deps=//nope:gone")
	e.quiesce(t)
	if c.State != change.StateRejected {
		t.Fatalf("state = %v (%s)", c.State, c.Reason)
	}
	if e.repo.Len() != 1 {
		t.Fatal("broken BUILD landed")
	}
}

// TestPreemptionGraceKeepsOldBuilds: with a grace window, a long-running
// build survives re-planning even when it drops out of the selected set.
func TestPreemptionGraceKeepsOldBuilds(t *testing.T) {
	block := make(chan struct{})
	started := make(chan string, 64)
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, target string, _ repo.Snapshot) error {
		select {
		case started <- target:
		default:
		}
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return buildsys.ErrAborted
		}
	})
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	e := newEnv(t, runner, Config{Budget: 1, PreemptionGrace: time.Nanosecond, Now: clock})
	e.submit(t, "c1", "x/x.go", "x v2")
	ctx := context.Background()
	if _, err := e.planner.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	<-started
	// Advance the clock past the grace threshold and enqueue a competitor in
	// the same conflict component; with budget 1 the planner would normally
	// preempt, but grace protects the running build.
	now = now.Add(time.Hour)
	e.submit(t, "c2", "y/y.go", "y v2")
	if _, err := e.planner.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.planner.RunningCount(); got != 1 {
		t.Fatalf("running = %d, want the protected build", got)
	}
	close(block)
	e.quiesce(t)
	if e.ctrl.Stats().Aborted != 0 {
		t.Fatalf("aborted = %d, grace should prevent preemption", e.ctrl.Stats().Aborted)
	}
}

// TestOutcomesOrderedByDecisionTime: outcomes appear in the order decisions
// were made, oldest first.
func TestOutcomesOrderedByDecisionTime(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 8})
	e.submit(t, "a", "x/x.go", "x v2")
	e.submit(t, "b", "z/z.go", "z v2")
	e.submit(t, "c", "w/w.go", "w v2")
	e.quiesce(t)
	outs := e.planner.Outcomes()
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	for i := 1; i < len(outs); i++ {
		if outs[i].At.Before(outs[i-1].At) {
			t.Fatal("outcomes not in decision order")
		}
	}
}

// TestEmptyTickIsNoop: ticking with no pending changes must not error or
// change state.
func TestEmptyTickIsNoop(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 2})
	prog, err := e.planner.Tick(context.Background())
	if err != nil || prog {
		t.Fatalf("tick = %v, %v", prog, err)
	}
	if e.repo.Len() != 1 || e.planner.RunningCount() != 0 {
		t.Fatal("state changed on empty tick")
	}
}

// TestTestSelectionRadius: with radius 1, test steps run only on targets
// within one reverse-dependency hop of the directly modified targets, while
// compilation still covers every affected target.
func TestTestSelectionRadius(t *testing.T) {
	// Chain repo: a <- b <- c <- d; editing a affects all four.
	r := repo.New(map[string]string{
		"a/BUILD": "target a srcs=a.go", "a/a.go": "a v1",
		"b/BUILD": "target b srcs=b.go deps=//a:a", "b/b.go": "b v1",
		"c/BUILD": "target c srcs=c.go deps=//b:b", "c/c.go": "c v1",
		"d/BUILD": "target d srcs=d.go deps=//c:c", "d/d.go": "d v1",
	})
	type unitRun struct {
		step   string
		target string
	}
	var mu sync.Mutex
	var runs []unitRun
	runner := buildsys.RunnerFunc(func(_ context.Context, step change.BuildStep, target string, _ repo.Snapshot) error {
		mu.Lock()
		runs = append(runs, unitRun{step.Name, target})
		mu.Unlock()
		return nil
	})
	q := queue.New(1)
	an := conflict.New(r)
	spec := speculation.New(predict.Static{Success: 0.9, Conflict: 0.1})
	ctrl := buildsys.NewController(2, runner)
	pl := New(r, q, an, spec, ctrl, Config{Budget: 2, TestSelectionRadius: 1})

	snap := r.Head().Snapshot()
	cur, _ := snap.Read("a/a.go")
	c := &change.Change{
		ID: "sel1",
		Patch: repo.Patch{Changes: []repo.FileChange{{
			Path: "a/a.go", Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: "a v2",
		}}},
		BuildSteps: []change.BuildStep{
			{Name: "compile", Kind: change.StepCompile},
			{Name: "unit", Kind: change.StepUnitTest},
		},
	}
	if err := q.Enqueue(c); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := pl.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if c.State != change.StateCommitted {
		t.Fatalf("state = %v (%s)", c.State, c.Reason)
	}
	compiled := map[string]bool{}
	tested := map[string]bool{}
	mu.Lock()
	defer mu.Unlock()
	for _, u := range runs {
		if u.step == "compile" {
			compiled[u.target] = true
		} else {
			tested[u.target] = true
		}
	}
	// Compile covers all 4 affected targets; tests only a (direct) and b
	// (radius 1).
	if len(compiled) != 4 {
		t.Fatalf("compiled = %v", compiled)
	}
	if !tested["//a:a"] || !tested["//b:b"] || tested["//c:c"] || tested["//d:d"] {
		t.Fatalf("tested = %v, want exactly a and b", tested)
	}
}
