package planner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/predict"
	"mastergreen/internal/queue"
	"mastergreen/internal/repo"
	"mastergreen/internal/speculation"
)

// testEnv wires a planner over the Fig. 8-style repo.
type testEnv struct {
	repo    *repo.Repo
	queue   *queue.Queue
	planner *Planner
	ctrl    *buildsys.Controller
}

func newEnv(t *testing.T, runner buildsys.StepRunner, cfg Config) *testEnv {
	t.Helper()
	r := repo.New(map[string]string{
		"x/BUILD": "target x srcs=x.go",
		"x/x.go":  "x v1",
		"y/BUILD": "target y srcs=y.go deps=//x:x",
		"y/y.go":  "y v1",
		"z/BUILD": "target z srcs=z.go",
		"z/z.go":  "z v1",
		"w/BUILD": "target w srcs=w.go",
		"w/w.go":  "w v1",
	})
	q := queue.New(2)
	an := conflict.New(r)
	spec := speculation.New(predict.Static{Success: 0.9, Conflict: 0.2})
	ctrl := buildsys.NewController(4, runner)
	return &testEnv{repo: r, queue: q, planner: New(r, q, an, spec, ctrl, cfg), ctrl: ctrl}
}

func (e *testEnv) submit(t *testing.T, id, path, content string) *change.Change {
	t.Helper()
	snap := e.repo.Head().Snapshot()
	cur, ok := snap.Read(path)
	fc := repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: content}
	if ok {
		fc = repo.FileChange{Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content}
	}
	c := &change.Change{
		ID:          change.ID(id),
		Author:      change.Developer{Name: "dev-" + id, Team: "team"},
		Description: "change " + id,
		Patch:       repo.Patch{Changes: []repo.FileChange{fc}},
		BuildSteps:  []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		BaseCommit:  e.repo.Head().ID,
	}
	if err := e.queue.Enqueue(c); err != nil {
		t.Fatal(err)
	}
	return c
}

func (e *testEnv) quiesce(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := e.planner.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
}

func outcomeOf(outs []Outcome, id change.ID) (Outcome, bool) {
	for _, o := range outs {
		if o.ID == id {
			return o, true
		}
	}
	return Outcome{}, false
}

func TestSingleChangeCommits(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	c := e.submit(t, "c1", "x/x.go", "x v2")
	e.quiesce(t)
	if c.State != change.StateCommitted {
		t.Fatalf("state = %v, reason %q", c.State, c.Reason)
	}
	if e.repo.Len() != 2 {
		t.Fatalf("repo len = %d", e.repo.Len())
	}
	got, _ := e.repo.Head().Snapshot().Read("x/x.go")
	if got != "x v2" {
		t.Fatalf("content = %q", got)
	}
	o, ok := outcomeOf(e.planner.Outcomes(), "c1")
	if !ok || o.State != change.StateCommitted || o.Commit == "" {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestFailingBuildRejects(t *testing.T) {
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, target string, snap repo.Snapshot) error {
		if content, _ := snap.Read("x/x.go"); content == "broken" && target == "//x:x" {
			return errors.New("compile error")
		}
		return nil
	})
	e := newEnv(t, runner, Config{Budget: 4})
	c := e.submit(t, "c1", "x/x.go", "broken")
	e.quiesce(t)
	if c.State != change.StateRejected {
		t.Fatalf("state = %v", c.State)
	}
	if !strings.Contains(c.Reason, "compile error") {
		t.Fatalf("reason = %q", c.Reason)
	}
	if e.repo.Len() != 1 {
		t.Fatal("rejected change must not land")
	}
}

func TestSerializedConflictingChanges(t *testing.T) {
	// c1 and c2 both edit x/x.go: real merge conflict. c1 lands; c2 must be
	// rejected (its patch no longer applies).
	e := newEnv(t, nil, Config{Budget: 4})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "x/x.go", "x other")
	e.quiesce(t)
	if c1.State != change.StateCommitted {
		t.Fatalf("c1 = %v (%s)", c1.State, c1.Reason)
	}
	if c2.State != change.StateRejected {
		t.Fatalf("c2 = %v (%s)", c2.State, c2.Reason)
	}
	got, _ := e.repo.Head().Snapshot().Read("x/x.go")
	if got != "x v2" {
		t.Fatalf("content = %q", got)
	}
}

func TestIndependentChangesBothCommit(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "z/z.go", "z v2")
	c3 := e.submit(t, "c3", "w/w.go", "w v2")
	e.quiesce(t)
	for _, c := range []*change.Change{c1, c2, c3} {
		if c.State != change.StateCommitted {
			t.Fatalf("%s = %v (%s)", c.ID, c.State, c.Reason)
		}
	}
	if e.repo.Len() != 4 {
		t.Fatalf("repo len = %d", e.repo.Len())
	}
}

func TestConflictingTargetsSerialized(t *testing.T) {
	// c1 edits x (affects //x:x, //y:y), c2 edits y (affects //y:y): they
	// conflict at target level but touch different files, so both should
	// land, serialized, with c2 built on top of c1.
	e := newEnv(t, nil, Config{Budget: 4})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	e.quiesce(t)
	if c1.State != change.StateCommitted || c2.State != change.StateCommitted {
		t.Fatalf("c1=%v (%s) c2=%v (%s)", c1.State, c1.Reason, c2.State, c2.Reason)
	}
	// c1 committed before c2 (submission order respected).
	outs := e.planner.Outcomes()
	if outs[0].ID != "c1" || outs[1].ID != "c2" {
		t.Fatalf("order = %v, %v", outs[0].ID, outs[1].ID)
	}
}

func TestRealConflictOnlyTogether(t *testing.T) {
	// c1 succeeds alone; c2 succeeds alone; together the build fails (a real
	// conflict per Fig. 1's definition). c1 lands, c2 is rejected.
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		x, _ := snap.Read("x/x.go")
		y, _ := snap.Read("y/y.go")
		if x == "x v2" && y == "y v2" {
			return errors.New("integration failure: x v2 incompatible with y v2")
		}
		return nil
	})
	e := newEnv(t, runner, Config{Budget: 8})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	e.quiesce(t)
	if c1.State != change.StateCommitted {
		t.Fatalf("c1 = %v (%s)", c1.State, c1.Reason)
	}
	if c2.State != change.StateRejected {
		t.Fatalf("c2 = %v (%s)", c2.State, c2.Reason)
	}
	if !strings.Contains(c2.Reason, "integration failure") {
		t.Fatalf("reason = %q", c2.Reason)
	}
}

func TestSpeculativeResultReusedAfterPredecessorCommits(t *testing.T) {
	// With budget >= 2, the planner runs B(c1) and B(c1+c2) concurrently;
	// after c1 commits, B(c1+c2)'s result must decide c2 without a rebuild.
	e := newEnv(t, nil, Config{Budget: 8})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "y/y.go", "y v2") // conflicts with c1 at target level
	e.quiesce(t)
	if c1.State != change.StateCommitted || c2.State != change.StateCommitted {
		t.Fatalf("c1=%v c2=%v", c1.State, c2.State)
	}
	// The controller should have run at most 3 builds (c1, c1+c2, and
	// possibly c2-alone before abort); crucially, no 4th build after c1
	// committed.
	if st := e.ctrl.Stats(); st.Builds > 3 {
		t.Fatalf("builds = %d, expected speculation reuse", st.Builds)
	}
}

func TestMisspeculatedBuildAborted(t *testing.T) {
	// c1 fails; the speculative build B(c1+c2) assumed c1 commits and must be
	// aborted/discarded; c2 still lands via its B(c2 | c1 rejected) build.
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		if x, _ := snap.Read("x/x.go"); x == "broken" {
			return errors.New("compile error")
		}
		return nil
	})
	e := newEnv(t, runner, Config{Budget: 8})
	c1 := e.submit(t, "c1", "x/x.go", "broken")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	e.quiesce(t)
	if c1.State != change.StateRejected {
		t.Fatalf("c1 = %v", c1.State)
	}
	if c2.State != change.StateCommitted {
		t.Fatalf("c2 = %v (%s)", c2.State, c2.Reason)
	}
	// Mainline stayed green: y v2 applied on original x.
	x, _ := e.repo.Head().Snapshot().Read("x/x.go")
	if x != "x v1" {
		t.Fatalf("x = %q", x)
	}
}

func TestAlwaysGreenInvariant(t *testing.T) {
	// Mixed workload: some changes break builds, some conflict, some are
	// fine. At every commit point the mainline must pass all builds
	// (simulated: snapshot never contains the string "broken").
	runner := buildsys.RunnerFunc(func(_ context.Context, _ change.BuildStep, _ string, snap repo.Snapshot) error {
		for _, p := range snap.Paths() {
			if c, _ := snap.Read(p); strings.Contains(c, "broken") {
				return fmt.Errorf("%s is broken", p)
			}
		}
		return nil
	})
	e := newEnv(t, runner, Config{Budget: 6})
	e.submit(t, "c1", "x/x.go", "x v2")
	e.submit(t, "c2", "z/z.go", "broken")
	e.submit(t, "c3", "y/y.go", "y v2")
	e.submit(t, "c4", "w/w.go", "w v2")
	e.submit(t, "c5", "z/z.go", "z v2")
	e.quiesce(t)

	// Walk every mainline commit point: none may contain "broken".
	for i := 0; i < e.repo.Len(); i++ {
		cm, err := e.repo.At(i)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range cm.Snapshot().Paths() {
			if c, _ := cm.Snapshot().Read(p); strings.Contains(c, "broken") {
				t.Fatalf("mainline red at commit %d: %s", i, p)
			}
		}
	}
	// c2 rejected; the rest committed (c5 may conflict with c2's rejection
	// only, and z/z.go edits from c2 never landed so c5 applies cleanly).
	outs := e.planner.Outcomes()
	if len(outs) != 5 {
		t.Fatalf("outcomes = %d", len(outs))
	}
	rejected := 0
	for _, o := range outs {
		if o.State == change.StateRejected {
			rejected++
			if o.ID != "c2" {
				t.Fatalf("unexpected rejection: %+v", o)
			}
		}
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d", rejected)
	}
}

func TestMinimalBuildStepsUsed(t *testing.T) {
	// Speculative chain builds should skip targets already covered by the
	// prefix build.
	e := newEnv(t, nil, Config{Budget: 8})
	e.submit(t, "c1", "x/x.go", "x v2")
	e.submit(t, "c2", "y/y.go", "y v2")
	e.quiesce(t)
	if st := e.ctrl.Stats(); st.SkippedPrior == 0 && st.SkippedCache == 0 {
		t.Fatalf("no incremental savings recorded: %+v", st)
	}
}

func TestSpeculationArtifactCacheHits(t *testing.T) {
	// c3 conflicts with c1 (via //y:y, since y depends on x) and with c2
	// (via //w:w), so its speculation tree has sibling branches — H⊕c3,
	// H⊕c1⊕c3, H⊕c2⊕c3, H⊕c1⊕c2⊕c3 — that build //y:y and //w:w at hashes
	// shared across branches. The content-addressed artifact cache must
	// serve those repeats instead of re-executing them.
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
		select {
		case <-time.After(5 * time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})
	e := newEnv(t, runner, Config{Budget: 8})
	e.submit(t, "c1", "x/x.go", "x v2")
	e.submit(t, "c2", "w/w.go", "w v2")
	snap := e.repo.Head().Snapshot()
	yCur, _ := snap.Read("y/y.go")
	wBuild, _ := snap.Read("w/BUILD")
	c3 := &change.Change{
		ID:     "c3",
		Author: change.Developer{Name: "dev-c3", Team: "team"},
		Patch: repo.Patch{Changes: []repo.FileChange{
			{Path: "y/y.go", Op: repo.OpModify, BaseHash: repo.HashContent(yCur), NewContent: "y v2"},
			{Path: "w/BUILD", Op: repo.OpModify, BaseHash: repo.HashContent(wBuild), NewContent: "target w srcs=w.go,w2.go"},
			{Path: "w/w2.go", Op: repo.OpCreate, NewContent: "w2 v1"},
		}},
		BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		BaseCommit: e.repo.Head().ID,
	}
	if err := e.queue.Enqueue(c3); err != nil {
		t.Fatal(err)
	}
	e.quiesce(t)
	for _, c := range []*change.Change{c3} {
		if c.State != change.StateCommitted {
			t.Fatalf("c3 state = %v, reason %q", c.State, c.Reason)
		}
	}
	if st := e.ctrl.Stats(); st.SkippedCache == 0 {
		t.Fatalf("artifact cache never hit during speculation: %+v", st)
	}
}

func TestBudgetLimitsConcurrentBuilds(t *testing.T) {
	block := make(chan struct{})
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return buildsys.ErrAborted
		}
	})
	e := newEnv(t, runner, Config{Budget: 2})
	for i := 1; i <= 5; i++ {
		e.submit(t, fmt.Sprintf("c%d", i), "x/x.go", fmt.Sprintf("x v%d", i+1))
	}
	ctx := context.Background()
	if _, err := e.planner.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if got := e.planner.RunningCount(); got > 2 {
		t.Fatalf("running = %d, want <= 2", got)
	}
	close(block)
	e.quiesce(t)
}

func TestQuiesceCancellable(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	runner := buildsys.RunnerFunc(func(ctx context.Context, _ change.BuildStep, _ string, _ repo.Snapshot) error {
		select {
		case <-block:
			return nil
		case <-ctx.Done():
			return buildsys.ErrAborted
		}
	})
	e := newEnv(t, runner, Config{Budget: 1})
	e.submit(t, "c1", "x/x.go", "x v2")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := e.planner.Quiesce(ctx); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpecStatsUpdated(t *testing.T) {
	e := newEnv(t, nil, Config{Budget: 4})
	c1 := e.submit(t, "c1", "x/x.go", "x v2")
	c2 := e.submit(t, "c2", "y/y.go", "y v2")
	e.quiesce(t)
	// At least one speculation involving c1/c2 succeeded and was recorded
	// while the change was still pending.
	ok1, _ := c1.Spec.Counts()
	ok2, _ := c2.Spec.Counts()
	if ok1+ok2 == 0 {
		t.Fatalf("no speculation stats recorded: %d %d", ok1, ok2)
	}
}
