package planner

import (
	"fmt"

	"mastergreen/internal/buildgraph"
	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// prepNodeCap bounds the preparation trie. When the trie grows past the cap
// (pathological queue churn producing many disjoint prefixes under one head)
// it is reset to the bare head node rather than evicted piecemeal: plan
// builds share prefixes by construction, so a full reset re-warms in one
// epoch while keeping memory strictly bounded.
const prepNodeCap = 1024

// prepNode is one node of the shared-prefix preparation trie: the merged
// snapshot H ⊕ C1 ⊕ … ⊕ Ci for the change-ID path from the root, its build
// graph, and the target delta against the head graph. Children are keyed by
// the next applied change ID. Nodes are immutable once computed; callers
// must treat snap/graph/delta as read-only.
type prepNode struct {
	snap  repo.Snapshot
	graph *buildgraph.Graph
	delta buildgraph.Delta
	kids  map[change.ID]*prepNode
}

// prepCache memoizes build preparation for a single head commit. Plan builds
// are prefix-closed (H⊕C1⊕C2⊕C3 extends H⊕C1⊕C2), so an epoch starting B
// builds of average depth k walks mostly-shared paths: each trie miss costs
// exactly one single-patch apply plus one graph analysis, giving O(B)
// incremental merges per epoch instead of O(B·k) full ones. The cache is
// invalidated wholesale when the head moves — every memoized snapshot is
// rooted at the old head and none survive.
//
// The cache is touched only from the Tick goroutine (Tick must not be called
// concurrently with itself), so it needs no lock of its own; the Stats
// counters it bumps are guarded by the planner mutex via count.
type prepCache struct {
	head      repo.CommitID
	headGraph *buildgraph.Graph
	root      *prepNode
	nodes     int
}

// prepared is everything startBuild needs to launch a controller task:
// the merged snapshot, its graph, the target delta versus head, and the
// prior-target set already produced by the k−1 prefix build (§6 minimal
// build steps). failure carries a merge/graph error that should reject the
// subject rather than abort the tick.
type prepared struct {
	snap    repo.Snapshot
	graph   *buildgraph.Graph
	delta   buildgraph.Delta
	prior   map[string]bool
	failure string
}

// prepare resolves H ⊕ changes through the trie, computing only the missing
// suffix. A node miss applies one patch to the parent snapshot and analyzes
// the result; a hit costs a map lookup. The head graph is computed once per
// head. The returned error is infrastructural (head graph analysis failed);
// merge/graph failures of the change stack come back in prepared.failure.
func (p *Planner) prepare(head *repo.Commit, ids []change.ID, patches []repo.Patch) (prepared, error) {
	pc := p.prep
	if pc == nil || pc.head != head.ID {
		snap := head.Snapshot()
		hg, err := buildgraph.Analyze(snap)
		if err != nil {
			return prepared{}, fmt.Errorf("planner: head graph: %w", err)
		}
		p.count(func(s *Stats) {
			if pc != nil {
				s.PrefixInvalidations++
			}
			s.HeadGraphBuilds++
			s.SnapshotAnalyses++
		})
		pc = &prepCache{
			head:      head.ID,
			headGraph: hg,
			root:      &prepNode{snap: snap, graph: hg, delta: buildgraph.Delta{}},
			nodes:     1,
		}
		p.prep = pc
	}
	if pc.nodes >= prepNodeCap {
		pc.root.kids = nil
		pc.nodes = 1
		p.count(func(s *Stats) { s.PrefixInvalidations++ })
	}
	cur := pc.root
	parent := pc.root
	for i, id := range ids {
		parent = cur
		if next, ok := cur.kids[id]; ok {
			p.count(func(s *Stats) { s.PrefixHits++ })
			cur = next
			continue
		}
		snap, err := cur.snap.Apply(patches[i])
		p.count(func(s *Stats) { s.PatchApplies++ })
		if err != nil {
			return prepared{failure: fmt.Sprintf("merge failed: applying patch %d: %v", i, err)}, nil
		}
		g, err := buildgraph.Analyze(snap)
		p.count(func(s *Stats) { s.SnapshotAnalyses++; s.PrefixMisses++ })
		if err != nil {
			return prepared{failure: fmt.Sprintf("build graph invalid: %v", err)}, nil
		}
		next := &prepNode{snap: snap, graph: g, delta: buildgraph.Diff(pc.headGraph, g)}
		if cur.kids == nil {
			cur.kids = map[change.ID]*prepNode{}
		}
		cur.kids[id] = next
		pc.nodes++
		cur = next
	}
	// A target is "prior" when the k−1 prefix build already produced it at
	// the same hash — the parent node's delta is exactly that prefix's delta.
	prior := map[string]bool{}
	for name, h := range parent.delta {
		if cur.delta[name] == h {
			prior[name] = true
		}
	}
	return prepared{snap: cur.snap, graph: cur.graph, delta: cur.delta, prior: prior}, nil
}

// prepareLegacy is the pre-trie preparation path, kept behind
// Config.LegacyPreparation for ablation: analyze the head, merge the full
// change list from scratch, analyze it, then merge and analyze the k−1
// prefix again for prior targets.
func (p *Planner) prepareLegacy(head *repo.Commit, patches []repo.Patch) (prepared, error) {
	headGraph, err := buildgraph.Analyze(head.Snapshot())
	p.count(func(s *Stats) { s.HeadGraphBuilds++; s.SnapshotAnalyses++ })
	if err != nil {
		return prepared{}, fmt.Errorf("planner: head graph: %w", err)
	}
	merged, err := p.repo.Merged(head.ID, patches...)
	p.count(func(s *Stats) { s.PatchApplies += len(patches) })
	if err != nil {
		return prepared{failure: fmt.Sprintf("merge failed: %v", err)}, nil
	}
	fullGraph, err := buildgraph.Analyze(merged)
	p.count(func(s *Stats) { s.SnapshotAnalyses++ })
	if err != nil {
		return prepared{failure: fmt.Sprintf("build graph invalid: %v", err)}, nil
	}
	deltaFull := buildgraph.Diff(headGraph, fullGraph)
	prior := map[string]bool{}
	if len(patches) > 1 {
		prefixSnap, err := p.repo.Merged(head.ID, patches[:len(patches)-1]...)
		p.count(func(s *Stats) { s.PatchApplies += len(patches) - 1 })
		if err == nil {
			prefixGraph, err := buildgraph.Analyze(prefixSnap)
			p.count(func(s *Stats) { s.SnapshotAnalyses++ })
			if err == nil {
				deltaPrefix := buildgraph.Diff(headGraph, prefixGraph)
				for name, h := range deltaPrefix {
					if deltaFull[name] == h {
						prior[name] = true
					}
				}
			}
		}
	}
	return prepared{snap: merged, graph: fullGraph, delta: deltaFull, prior: prior}, nil
}
