package planner

import "mastergreen/internal/metrics"

// Stats counts planner work, layer by layer, so the incremental-epoch
// machinery (DESIGN.md §4f) is observable and benchmarkable: the prefix
// preparation trie, the plan-fingerprint memo, the dynamic-key cache, and
// the finished-build garbage collector.
type Stats struct {
	// BuildsStarted counts controller tasks launched by startBuild.
	BuildsStarted int

	// Shared-prefix preparation cache (the per-head trie).
	PrefixHits          int // trie nodes reused while preparing a build
	PrefixMisses        int // trie nodes computed (one patch apply + one analyze each)
	PrefixInvalidations int // trie resets (head movement or size cap)
	HeadGraphBuilds     int // head-graph analyses (once per head in trie mode)

	// Raw preparation work, counted identically in both modes so the legacy
	// baseline and the trie are directly comparable: SnapshotAnalyses is the
	// number of buildgraph.Analyze calls issued while preparing builds,
	// PatchApplies the number of single-patch snapshot applications
	// (a repo.Merged over k patches costs k units).
	SnapshotAnalyses int
	PatchApplies     int

	// Plan/reconcile memoization.
	PlansComputed int // epochs that ran decide + spec.Plan + reconcile
	PlansSkipped  int // epochs skipped because the input fingerprint was unchanged

	// Bounded bookkeeping.
	KeysComputed   int // dynamic keys rebuilt from the committed history
	KeysCached     int // dynamic keys served from the per-build cache
	FinishedPruned int // finished builds garbage-collected

	// CrossShardRebuilds counts decisive builds the commit arbiter bounced
	// (a conflicting foreign commit landed after the build's base) and the
	// planner rebuilt against the new head.
	CrossShardRebuilds int

	// Lean-CI counters (DESIGN.md §4j). ObsoleteAborted counts running
	// builds eagerly aborted because a resolution contradicted their
	// assumptions or a finished build already held their result;
	// SpecBranchesSkipped counts speculation branch points collapsed by the
	// predictor-gated skip threshold; SpecBuildsSkipped counts tree nodes
	// dropped because the predictor was confident their result would never
	// be used (P_needed ≤ 1−τ).
	ObsoleteAborted     int
	SpecBranchesSkipped int
	SpecBuildsSkipped   int

	// HotfixPreempted counts running builds aborted past their preemption
	// grace because a P0 hotfix was pending and needed the capacity
	// (DESIGN.md §4l).
	HotfixPreempted int
}

// PrepOps is the total preparation work startBuild performed: analyze calls
// plus per-patch merge units. The headline benchmark divides it by
// BuildsStarted to compare the trie against the legacy full-merge path.
func (s Stats) PrepOps() int { return s.SnapshotAnalyses + s.PatchApplies }

// Gauges renders the counters as ordered name/value pairs for the status
// endpoint, the dashboard, and experiment reports.
func (s Stats) Gauges() metrics.Gauges {
	return metrics.Gauges{
		{Name: "builds_started", Value: float64(s.BuildsStarted)},
		{Name: "prefix_hits", Value: float64(s.PrefixHits)},
		{Name: "prefix_misses", Value: float64(s.PrefixMisses)},
		{Name: "prefix_invalidations", Value: float64(s.PrefixInvalidations)},
		{Name: "head_graph_builds", Value: float64(s.HeadGraphBuilds)},
		{Name: "snapshot_analyses", Value: float64(s.SnapshotAnalyses)},
		{Name: "patch_applies", Value: float64(s.PatchApplies)},
		{Name: "plans_computed", Value: float64(s.PlansComputed)},
		{Name: "plans_skipped", Value: float64(s.PlansSkipped)},
		{Name: "keys_computed", Value: float64(s.KeysComputed)},
		{Name: "keys_cached", Value: float64(s.KeysCached)},
		{Name: "finished_pruned", Value: float64(s.FinishedPruned)},
		{Name: "cross_shard_rebuilds", Value: float64(s.CrossShardRebuilds)},
		{Name: "obsolete_aborted", Value: float64(s.ObsoleteAborted)},
		{Name: "spec_branches_skipped", Value: float64(s.SpecBranchesSkipped)},
		{Name: "spec_builds_skipped", Value: float64(s.SpecBuildsSkipped)},
		{Name: "hotfix_preempted", Value: float64(s.HotfixPreempted)},
	}
}
