package planner

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// TestTickingPlannerRaceStress drives a live planner loop while other
// goroutines submit changes and read the concurrently-accessed surfaces:
// SpecStats.Counts (written by reap as speculations finish), planner Stats,
// running counts, and outcomes. Run with -race; it covers the previously
// unsynchronized Spec.Succeeded++/Failed++ mutation.
func TestTickingPlannerRaceStress(t *testing.T) {
	runPlannerRaceStress(t, Config{Budget: 4})
}

// TestTickingPlannerRaceStressWithSkipping runs the same load with
// predictor-gated skipping enabled, so eager obsolete pruning and skipped
// branch points race the observability readers too.
func TestTickingPlannerRaceStressWithSkipping(t *testing.T) {
	runPlannerRaceStress(t, Config{Budget: 4, SkipThreshold: 0.85})
}

func runPlannerRaceStress(t *testing.T, cfg Config) {
	const nChanges = 60
	e := newEnv(t, nil, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	var mu sync.Mutex
	var submitted []*change.Change
	var wg, subWg sync.WaitGroup
	stop := make(chan struct{})

	// Submitter: feeds the queue while the planner is live. Every third
	// change collides on x/x.go so rejections, aborts, and rejection-assumed
	// speculations all occur under load.
	subWg.Add(1)
	go func() {
		defer subWg.Done()
		for i := 0; i < nChanges; i++ {
			path := fmt.Sprintf("z%d/f.go", i)
			fc := repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: "v1"}
			if i%3 == 0 {
				head := e.repo.Head().Snapshot()
				if cur, ok := head.Read("x/x.go"); ok {
					fc = repo.FileChange{Path: "x/x.go", Op: repo.OpModify,
						BaseHash: repo.HashContent(cur), NewContent: fmt.Sprintf("x v%d", i)}
				}
			}
			c := &change.Change{
				ID:         change.ID(fmt.Sprintf("s%d", i)),
				Patch:      repo.Patch{Changes: []repo.FileChange{fc}},
				BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
			}
			if err := e.queue.Enqueue(c); err != nil {
				continue
			}
			mu.Lock()
			submitted = append(submitted, c)
			mu.Unlock()
		}
	}()

	// Readers: the predictor-style fan-out reading speculation features,
	// plus observability surfaces, all while reap mutates them.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				changes := append([]*change.Change(nil), submitted...)
				mu.Unlock()
				var total int64
				for _, c := range changes {
					ok, failed := c.Spec.Counts()
					total += ok + failed
				}
				_ = total
				_ = e.planner.Stats()
				_ = e.planner.RunningCount()
				_ = e.planner.Outcomes()
			}
		}()
	}

	// The planner loop itself (single goroutine; Tick is not reentrant).
	if err := e.planner.Quiesce(ctx); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	// The submitter may still be racing the final ticks; wait for it and
	// drain whatever it added after the first quiescence.
	subWg.Wait()
	if err := e.planner.Quiesce(ctx); err != nil {
		t.Fatalf("re-quiesce: %v", err)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	resolved := 0
	for _, c := range submitted {
		if c.State == change.StateCommitted || c.State == change.StateRejected {
			resolved++
		}
	}
	if resolved != len(submitted) {
		t.Fatalf("resolved %d of %d submitted changes", resolved, len(submitted))
	}
	st := e.planner.Stats()
	if st.BuildsStarted == 0 || st.PlansComputed == 0 {
		t.Fatalf("planner idle under stress: %+v", st)
	}
}
