package predict

import (
	"fmt"
	"math"
	"sort"

	"mastergreen/internal/change"
)

// Gradient boosting with depth-1 trees (stumps) over logistic loss — the
// §10 future-work alternative to logistic regression ("exploring other ML
// techniques such as Gradient Boosting remains an interesting future work").
// Stumps capture threshold effects (e.g. "more than 2 failed pre-submit
// checks") that a linear model can only approximate.

// BoostConfig controls gradient-boosting training.
type BoostConfig struct {
	Rounds    int     // boosting rounds (default 100)
	Shrinkage float64 // learning rate (default 0.1)
	// MinLeaf is the minimum samples per leaf for a split to be considered
	// (default 8).
	MinLeaf int
}

func (c BoostConfig) withDefaults() BoostConfig {
	if c.Rounds <= 0 {
		c.Rounds = 100
	}
	if c.Shrinkage <= 0 {
		c.Shrinkage = 0.1
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 8
	}
	return c
}

// stump is one depth-1 regression tree: f(x) = left if x[Feature] < Threshold
// else right.
type stump struct {
	Feature   int
	Threshold float64
	Left      float64
	Right     float64
}

// BoostModel is an additive ensemble of stumps over the logit.
type BoostModel struct {
	Names  []string
	Bias   float64 // initial log-odds
	Stumps []stump
	Rate   float64 // shrinkage applied per stump
}

// TrainBoost fits a gradient-boosted stump ensemble on X with labels y.
func TrainBoost(names []string, X [][]float64, y []bool, cfg BoostConfig) (*BoostModel, error) {
	if len(X) == 0 || len(y) != len(X) {
		return nil, fmt.Errorf("%w: %d rows, %d labels", ErrNoData, len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-width rows", ErrDimension)
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrDimension, i, len(row), d)
		}
	}
	cfg = cfg.withDefaults()
	n := len(X)

	// Initial log-odds.
	pos := 0
	for _, v := range y {
		if v {
			pos++
		}
	}
	p0 := (float64(pos) + 0.5) / (float64(n) + 1)
	m := &BoostModel{
		Names: append([]string(nil), names...),
		Bias:  math.Log(p0 / (1 - p0)),
		Rate:  cfg.Shrinkage,
	}

	// Presort feature columns once.
	order := make([][]int, d)
	for j := 0; j < d; j++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		col := j
		sort.Slice(idx, func(a, b int) bool { return X[idx[a]][col] < X[idx[b]][col] })
		order[j] = idx
	}

	logits := make([]float64, n)
	for i := range logits {
		logits[i] = m.Bias
	}
	grad := make([]float64, n) // residuals y − p
	hess := make([]float64, n) // p(1−p)

	for round := 0; round < cfg.Rounds; round++ {
		for i := 0; i < n; i++ {
			p := Sigmoid(logits[i])
			t := 0.0
			if y[i] {
				t = 1
			}
			grad[i] = t - p
			hess[i] = p * (1 - p)
		}
		st, gain := bestStump(X, order, grad, hess, cfg.MinLeaf)
		if gain <= 1e-12 {
			break // no useful split remains
		}
		st.Left *= cfg.Shrinkage
		st.Right *= cfg.Shrinkage
		m.Stumps = append(m.Stumps, st)
		for i := 0; i < n; i++ {
			if X[i][st.Feature] < st.Threshold {
				logits[i] += st.Left
			} else {
				logits[i] += st.Right
			}
		}
	}
	return m, nil
}

// bestStump finds the split maximizing the Newton gain over all features.
func bestStump(X [][]float64, order [][]int, grad, hess []float64, minLeaf int) (stump, float64) {
	n := len(X)
	var totG, totH float64
	for i := 0; i < n; i++ {
		totG += grad[i]
		totH += hess[i]
	}
	const lambda = 1.0 // L2 on leaf weights
	score := func(g, h float64) float64 { return g * g / (h + lambda) }
	baseScore := score(totG, totH)

	best := stump{}
	bestGain := 0.0
	for j := range order {
		idx := order[j]
		var lg, lh float64
		for k := 0; k < n-1; k++ {
			i := idx[k]
			lg += grad[i]
			lh += hess[i]
			// Candidate threshold between distinct values only.
			cur, next := X[i][j], X[idx[k+1]][j]
			if cur == next {
				continue
			}
			if k+1 < minLeaf || n-(k+1) < minLeaf {
				continue
			}
			gain := score(lg, lh) + score(totG-lg, totH-lh) - baseScore
			if gain > bestGain {
				bestGain = gain
				best = stump{
					Feature:   j,
					Threshold: (cur + next) / 2,
					Left:      lg / (lh + lambda),
					Right:     (totG - lg) / (totH - lh + lambda),
				}
			}
		}
	}
	return best, bestGain
}

// Predict returns the probability of the positive class.
func (m *BoostModel) Predict(x []float64) float64 {
	z := m.Bias
	for _, st := range m.Stumps {
		v := 0.0
		if st.Feature < len(x) {
			v = x[st.Feature]
		}
		if v < st.Threshold {
			z += st.Left
		} else {
			z += st.Right
		}
	}
	return Sigmoid(z)
}

// Predictions applies the model to every row.
func (m *BoostModel) Predictions(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = m.Predict(row)
	}
	return out
}

// EvaluateBoost computes Metrics at the 0.5 threshold.
func EvaluateBoost(m *BoostModel, X [][]float64, y []bool) Metrics {
	var tp, fp, tn, fn int
	for i, row := range X {
		pred := m.Predict(row) >= 0.5
		switch {
		case pred && y[i]:
			tp++
		case pred && !y[i]:
			fp++
		case !pred && !y[i]:
			tn++
		default:
			fn++
		}
	}
	var mt Metrics
	mt.N = len(X)
	if mt.N == 0 {
		return mt
	}
	mt.Accuracy = float64(tp+tn) / float64(mt.N)
	if tp+fp > 0 {
		mt.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		mt.Recall = float64(tp) / float64(tp+fn)
	}
	if mt.Precision+mt.Recall > 0 {
		mt.F1 = 2 * mt.Precision * mt.Recall / (mt.Precision + mt.Recall)
	}
	return mt
}

// FeatureUsage counts how often each feature is split on, as a rough
// importance measure.
func (m *BoostModel) FeatureUsage() map[string]int {
	out := map[string]int{}
	for _, st := range m.Stumps {
		name := fmt.Sprintf("f%d", st.Feature)
		if st.Feature < len(m.Names) && m.Names[st.Feature] != "" {
			name = m.Names[st.Feature]
		}
		out[name]++
	}
	return out
}

// BoostedPredictor adapts two boosted models to the Predictor interface,
// mirroring predict.Learned.
type BoostedPredictor struct {
	SuccessModel  *BoostModel
	ConflictModel *BoostModel
}

// PredictSuccess implements Predictor.
func (b BoostedPredictor) PredictSuccess(c *change.Change) float64 {
	if b.SuccessModel == nil {
		return 0.5
	}
	return clampProb(b.SuccessModel.Predict(SuccessFeatures(c)))
}

// PredictConflict implements Predictor.
func (b BoostedPredictor) PredictConflict(ci, cj *change.Change) float64 {
	if b.ConflictModel == nil {
		return 0
	}
	return clampProb(b.ConflictModel.Predict(ConflictFeatures(ci, cj)))
}
