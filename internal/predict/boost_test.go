package predict

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestBoostLearnsThresholdFunction(t *testing.T) {
	// Ground truth is a threshold rule — exactly what stumps express and
	// linear models cannot: y = x0 > 1.5 XOR-free region.
	rng := rand.New(rand.NewSource(4))
	n := 3000
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x0 := rng.Float64() * 3
		x1 := rng.NormFloat64() // noise feature
		X[i] = []float64{x0, x1}
		y[i] = x0 > 1.5
	}
	m, err := TrainBoost([]string{"x0", "noise"}, X, y, BoostConfig{Rounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	if acc := EvaluateBoost(m, X, y).Accuracy; acc < 0.97 {
		t.Fatalf("accuracy = %v on a pure threshold rule", acc)
	}
	// The split feature should be x0, not noise.
	usage := m.FeatureUsage()
	if usage["x0"] <= usage["noise"] {
		t.Fatalf("feature usage = %v", usage)
	}
}

func TestBoostMatchesLogisticOnLinearData(t *testing.T) {
	X, y := synthData(4000, 4, 6, []float64{2, -2, 1, 0}, 0)
	trX, trY, vaX, vaY := Split(X, y, 0.7, 3)
	lr, err := Train(nil, trX, trY, TrainConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := TrainBoost(nil, trX, trY, BoostConfig{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	lrAcc := Evaluate(lr, vaX, vaY).Accuracy
	gbAcc := EvaluateBoost(gb, vaX, vaY).Accuracy
	if gbAcc < lrAcc-0.05 {
		t.Fatalf("boosting too far behind LR on linear data: %v vs %v", gbAcc, lrAcc)
	}
}

func TestBoostNonlinearBeatsLogistic(t *testing.T) {
	// A V-shaped decision (|x| > 1) is invisible to a linear model but
	// trivial for two stumps.
	rng := rand.New(rand.NewSource(5))
	n := 4000
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		x := rng.NormFloat64() * 2
		X[i] = []float64{x}
		y[i] = math.Abs(x) > 1
	}
	trX, trY, vaX, vaY := Split(X, y, 0.7, 5)
	lr, _ := Train(nil, trX, trY, TrainConfig{Epochs: 60})
	gb, _ := TrainBoost(nil, trX, trY, BoostConfig{Rounds: 80})
	lrAcc := Evaluate(lr, vaX, vaY).Accuracy
	gbAcc := EvaluateBoost(gb, vaX, vaY).Accuracy
	if gbAcc < 0.9 {
		t.Fatalf("boosting accuracy = %v on V-shape", gbAcc)
	}
	if gbAcc <= lrAcc {
		t.Fatalf("boosting should beat LR on V-shape: %v vs %v", gbAcc, lrAcc)
	}
}

func TestBoostErrors(t *testing.T) {
	if _, err := TrainBoost(nil, nil, nil, BoostConfig{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := TrainBoost(nil, [][]float64{{}}, []bool{true}, BoostConfig{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("zero width err = %v", err)
	}
	if _, err := TrainBoost(nil, [][]float64{{1}, {1, 2}}, []bool{true, false}, BoostConfig{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("ragged err = %v", err)
	}
}

func TestBoostConstantFeaturesStopEarly(t *testing.T) {
	// All features constant: no split possible; model = prior only.
	X := [][]float64{{1}, {1}, {1}, {1}}
	y := []bool{true, true, false, true}
	m, err := TrainBoost(nil, X, y, BoostConfig{Rounds: 50, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stumps) != 0 {
		t.Fatalf("stumps = %d, want 0", len(m.Stumps))
	}
	p := m.Predict([]float64{1})
	if p < 0.5 || p > 0.95 {
		t.Fatalf("prior prediction = %v, want ≈ 3/4", p)
	}
}

func TestBoostPredictShortVector(t *testing.T) {
	X, y := synthData(500, 3, 8, []float64{1, 1, 1}, 0)
	m, err := TrainBoost(nil, X, y, BoostConfig{Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{0.5}); math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("short-vector predict = %v", p)
	}
	if got := m.Predictions(X); len(got) != len(X) {
		t.Fatalf("Predictions len = %d", len(got))
	}
}

func TestBoostedPredictorInterface(t *testing.T) {
	var p Predictor = BoostedPredictor{}
	if got := p.PredictSuccess(nil); got != 0.5 {
		t.Fatalf("nil success model = %v", got)
	}
	if got := p.PredictConflict(nil, nil); got != 0 {
		t.Fatalf("nil conflict model = %v", got)
	}
}

func TestBoostCalibrationReasonable(t *testing.T) {
	X, y := synthData(5000, 3, 11, []float64{2, -1, 1}, 0)
	m, err := TrainBoost(nil, X, y, BoostConfig{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	bins := Calibration(m.Predictions(X), y, 10)
	if ece := ExpectedCalibrationError(bins); ece > 0.08 {
		t.Fatalf("boost ECE = %v", ece)
	}
}
