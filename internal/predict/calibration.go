package predict

import (
	"fmt"
	"sort"
	"strings"
)

// AUC computes the area under the ROC curve for predicted probabilities
// against boolean labels — threshold-free ranking quality, the natural
// companion to accuracy for the imbalanced conflict model. Returns 0.5 for
// degenerate inputs (all one class).
func AUC(probs []float64, labels []bool) float64 {
	type pair struct {
		p float64
		y bool
	}
	ps := make([]pair, 0, len(probs))
	pos, neg := 0, 0
	for i, p := range probs {
		ps = append(ps, pair{p, labels[i]})
		if labels[i] {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0.5
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].p < ps[j].p })
	// Rank-sum (Mann–Whitney U) with midranks for ties.
	rankSum := 0.0
	i := 0
	for i < len(ps) {
		j := i
		for j < len(ps) && ps[j].p == ps[i].p {
			j++
		}
		midrank := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			if ps[k].y {
				rankSum += midrank
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg))
}

// CalibrationBin is one reliability-diagram bucket.
type CalibrationBin struct {
	Lo, Hi   float64 // predicted-probability range [Lo, Hi)
	Count    int
	MeanPred float64
	FracTrue float64 // empirical positive rate in the bin
}

// Calibration buckets predictions into n equal-width bins and reports the
// empirical positive rate per bin — a well-calibrated model has
// FracTrue ≈ MeanPred everywhere, which is what the speculation math
// actually depends on (P_needed uses the probabilities as probabilities).
func Calibration(probs []float64, labels []bool, n int) []CalibrationBin {
	if n <= 0 {
		n = 10
	}
	bins := make([]CalibrationBin, n)
	sums := make([]float64, n)
	trues := make([]int, n)
	for i := range bins {
		bins[i].Lo = float64(i) / float64(n)
		bins[i].Hi = float64(i+1) / float64(n)
	}
	for i, p := range probs {
		k := int(p * float64(n))
		if k >= n {
			k = n - 1
		}
		if k < 0 {
			k = 0
		}
		bins[k].Count++
		sums[k] += p
		if labels[i] {
			trues[k]++
		}
	}
	for i := range bins {
		if bins[i].Count > 0 {
			bins[i].MeanPred = sums[i] / float64(bins[i].Count)
			bins[i].FracTrue = float64(trues[i]) / float64(bins[i].Count)
		}
	}
	return bins
}

// ExpectedCalibrationError is the count-weighted mean |MeanPred − FracTrue|.
func ExpectedCalibrationError(bins []CalibrationBin) float64 {
	total, sum := 0, 0.0
	for _, b := range bins {
		total += b.Count
		sum += float64(b.Count) * abs(b.MeanPred-b.FracTrue)
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// CalibrationReport renders the reliability diagram as text.
func CalibrationReport(bins []CalibrationBin) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s\n", "bin", "count", "mean pred", "frac true")
	for _, bin := range bins {
		if bin.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.2f,%.2f) %8d %10.3f %10.3f\n",
			bin.Lo, bin.Hi, bin.Count, bin.MeanPred, bin.FracTrue)
	}
	fmt.Fprintf(&b, "expected calibration error: %.4f\n", ExpectedCalibrationError(bins))
	return b.String()
}

// Predictions applies the model to every row (raw features).
func (m *Model) Predictions(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, row := range X {
		out[i] = m.Predict(row)
	}
	return out
}
