package predict

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAUCPerfectRanking(t *testing.T) {
	probs := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{false, false, true, true}
	if got := AUC(probs, labels); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
	// Inverted ranking.
	labels = []bool{true, true, false, false}
	if got := AUC(probs, labels); got != 0 {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if got := AUC([]float64{0.5, 0.6}, []bool{true, true}); got != 0.5 {
		t.Fatalf("all-positive AUC = %v", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %v", got)
	}
}

func TestAUCTiesGetMidranks(t *testing.T) {
	// All equal predictions: AUC must be exactly 0.5.
	probs := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false}
	if got := AUC(probs, labels); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCOnTrainedModel(t *testing.T) {
	X, y := synthData(3000, 3, 5, []float64{3, -2, 1}, 0)
	m, err := Train(nil, X, y, TrainConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	auc := AUC(m.Predictions(X), y)
	if auc < 0.85 {
		t.Fatalf("AUC = %v, want ranked well", auc)
	}
}

func TestCalibrationBins(t *testing.T) {
	probs := []float64{0.05, 0.05, 0.95, 0.95}
	labels := []bool{false, false, true, true}
	bins := Calibration(probs, labels, 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0].Count != 2 || bins[0].FracTrue != 0 {
		t.Fatalf("low bin = %+v", bins[0])
	}
	if bins[9].Count != 2 || bins[9].FracTrue != 1 {
		t.Fatalf("high bin = %+v", bins[9])
	}
	if ece := ExpectedCalibrationError(bins); ece > 0.06 {
		t.Fatalf("ECE = %v for a perfectly calibrated toy", ece)
	}
}

func TestCalibrationEdges(t *testing.T) {
	// p = 1.0 lands in the last bin; p < 0 clamps to the first.
	bins := Calibration([]float64{1.0, -0.1}, []bool{true, false}, 4)
	if bins[3].Count != 1 || bins[0].Count != 1 {
		t.Fatalf("edge binning wrong: %+v", bins)
	}
	if ExpectedCalibrationError(nil) != 0 {
		t.Fatal("empty ECE should be 0")
	}
	// Degenerate bin count defaults.
	if got := Calibration(nil, nil, 0); len(got) != 10 {
		t.Fatalf("default bins = %d", len(got))
	}
}

func TestCalibrationReportRenders(t *testing.T) {
	bins := Calibration([]float64{0.2, 0.8}, []bool{false, true}, 5)
	rep := CalibrationReport(bins)
	if !strings.Contains(rep, "expected calibration error") {
		t.Fatalf("report = %q", rep)
	}
}

func TestTrainedModelIsCalibrated(t *testing.T) {
	// Logistic regression on logistic ground truth should calibrate well.
	X, y := synthData(6000, 3, 9, []float64{2, -1.5, 1}, 0.3)
	m, err := Train(nil, X, y, TrainConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	bins := Calibration(m.Predictions(X), y, 10)
	if ece := ExpectedCalibrationError(bins); ece > 0.05 {
		t.Fatalf("ECE = %v, model poorly calibrated", ece)
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	X, y := synthData(800, 3, 21, []float64{2, -1, 1}, 0)
	m, err := Train([]string{"a", "b", "c"}, X, y, TrainConfig{Epochs: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	lm, bm, err := LoadModel(&buf)
	if err != nil || bm != nil || lm == nil {
		t.Fatalf("load = %v, %v, %v", lm, bm, err)
	}
	for i, row := range X[:50] {
		if math.Abs(lm.Predict(row)-m.Predict(row)) > 1e-12 {
			t.Fatalf("prediction drift at %d", i)
		}
	}
}

func TestBoostSaveLoadRoundTrip(t *testing.T) {
	X, y := synthData(800, 3, 22, []float64{2, -1, 1}, 0)
	m, err := TrainBoost(nil, X, y, BoostConfig{Rounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveBoostModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	lm, bm, err := LoadModel(&buf)
	if err != nil || lm != nil || bm == nil {
		t.Fatalf("load = %v, %v, %v", lm, bm, err)
	}
	for i, row := range X[:50] {
		if math.Abs(bm.Predict(row)-m.Predict(row)) > 1e-12 {
			t.Fatalf("prediction drift at %d", i)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, _, err := LoadModel(strings.NewReader("{")); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, _, err := LoadModel(strings.NewReader(`{"kind":"weird"}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, _, err := LoadModel(strings.NewReader(`{"kind":"logistic","logistic":{"Weights":[1],"Means":[],"Stds":[]}}`)); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
	if _, _, err := LoadModel(strings.NewReader(`{"kind":"boost"}`)); err == nil {
		t.Fatal("empty boost accepted")
	}
}
