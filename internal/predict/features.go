package predict

import (
	"path"

	"mastergreen/internal/change"
)

// SuccessFeatureNames lists, in order, the features fed to the
// change-success model. They follow §7.2's categories: change, revision,
// developer, and (dynamic) speculation features.
var SuccessFeatureNames = []string{
	"affected_targets",
	"git_commits",
	"files_changed",
	"lines_added",
	"lines_removed",
	"hunks_changed",
	"binaries_added",
	"binaries_removed",
	"initial_tests_passed",
	"initial_tests_failed",
	"revision_submit_count",
	"revision_test_plan",
	"revision_revert_plan",
	"dev_level",
	"dev_employment_months",
	"spec_succeeded",
	"spec_failed",
}

// SuccessFeatures extracts the success-model feature vector from a change.
func SuccessFeatures(c *change.Change) []float64 {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	var submitCount float64
	var testPlan, revertPlan float64
	if c.Revision != nil {
		submitCount = float64(c.Revision.SubmitCount)
		testPlan = b2f(c.Revision.TestPlan)
		revertPlan = b2f(c.Revision.RevertPlan)
	}
	specOK, specFail := c.Spec.Counts()
	return []float64{
		float64(c.Stats.AffectedTargets),
		float64(c.Stats.NumGitCommits),
		float64(c.Stats.FilesChanged),
		float64(c.Stats.LinesAdded),
		float64(c.Stats.LinesRemoved),
		float64(c.Stats.HunksChanged),
		float64(c.Stats.BinariesAdded),
		float64(c.Stats.BinariesRemoved),
		float64(c.Stats.InitialTestsPassed),
		float64(c.Stats.InitialTestsFailed),
		submitCount,
		testPlan,
		revertPlan,
		float64(c.Author.Level),
		float64(c.Author.EmploymentMonths),
		float64(specOK),
		float64(specFail),
	}
}

// ConflictFeatureNames lists the features fed to the pairwise conflict model.
var ConflictFeatureNames = []string{
	"shared_paths",
	"shared_dirs",
	"same_team",
	"same_author",
	"combined_files_changed",
	"combined_targets",
	"min_dev_level",
	"sum_initial_failures",
}

// ConflictFeatures extracts the conflict-model feature vector from a pair of
// changes. It is symmetric in its arguments.
func ConflictFeatures(ci, cj *change.Change) []float64 {
	pathsI := ci.Patch.Paths()
	pathsJ := cj.Patch.Paths()
	setJ := make(map[string]bool, len(pathsJ))
	dirsJ := map[string]bool{}
	for _, p := range pathsJ {
		setJ[p] = true
		dirsJ[path.Dir(p)] = true
	}
	sharedPaths, sharedDirs := 0, 0
	seenDir := map[string]bool{}
	for _, p := range pathsI {
		if setJ[p] {
			sharedPaths++
		}
		d := path.Dir(p)
		if dirsJ[d] && !seenDir[d] {
			seenDir[d] = true
			sharedDirs++
		}
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	minLevel := ci.Author.Level
	if cj.Author.Level < minLevel {
		minLevel = cj.Author.Level
	}
	return []float64{
		float64(sharedPaths),
		float64(sharedDirs),
		b2f(ci.Author.Team == cj.Author.Team && ci.Author.Team != ""),
		b2f(ci.Author.Name == cj.Author.Name && ci.Author.Name != ""),
		float64(ci.Stats.FilesChanged + cj.Stats.FilesChanged),
		float64(ci.Stats.AffectedTargets + cj.Stats.AffectedTargets),
		float64(minLevel),
		float64(ci.Stats.InitialTestsFailed + cj.Stats.InitialTestsFailed),
	}
}
