// Package predict implements the paper's probabilistic model (§4.2, §7.2):
// logistic regression trained on historical changes to estimate P_succ(C) —
// the probability a change's build independently succeeds — and
// P_conf(Ci,Cj) — the probability two changes conflict. It also provides the
// Oracle and constant predictors the evaluation compares against (§8), and a
// recursive-feature-elimination pass mirroring the paper's use of RFE.
package predict

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Errors returned by training.
var (
	ErrNoData     = errors.New("predict: no training data")
	ErrDimension  = errors.New("predict: inconsistent feature dimensions")
	ErrNotTrained = errors.New("predict: model not trained")
)

// TrainConfig controls logistic-regression training.
type TrainConfig struct {
	Epochs       int     // full passes over the data (default 200)
	LearningRate float64 // SGD step size (default 0.1)
	L2           float64 // ridge penalty (default 1e-4)
	BatchSize    int     // mini-batch size (default 64)
	Seed         int64   // shuffle seed (default 1)
	// Rand, when non-nil, is the injected shuffle RNG; otherwise a fresh
	// rand.New(rand.NewSource(Seed)), so equal Seeds train identical models.
	Rand *rand.Rand
}

// rng returns the injected RNG, or a fresh one seeded from Seed.
func (c TrainConfig) rng() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return rand.New(rand.NewSource(c.Seed))
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model is a trained logistic-regression classifier with input
// standardization baked in.
type Model struct {
	Names   []string  // feature names, len d
	Weights []float64 // len d
	Bias    float64
	Means   []float64 // standardization means, len d
	Stds    []float64 // standardization stds, len d (never zero)
}

// Sigmoid is the logistic function.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// Train fits a logistic-regression model on X (n×d) with boolean labels y.
// names may be nil; if given it must have length d.
func Train(names []string, X [][]float64, y []bool, cfg TrainConfig) (*Model, error) {
	if len(X) == 0 || len(y) != len(X) {
		return nil, fmt.Errorf("%w: %d rows, %d labels", ErrNoData, len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-width rows", ErrDimension)
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d features, want %d", ErrDimension, i, len(row), d)
		}
	}
	if names != nil && len(names) != d {
		return nil, fmt.Errorf("%w: %d names for %d features", ErrDimension, len(names), d)
	}
	cfg = cfg.withDefaults()

	m := &Model{
		Names:   append([]string(nil), names...),
		Weights: make([]float64, d),
		Means:   make([]float64, d),
		Stds:    make([]float64, d),
	}
	// Standardize: z = (x - mean) / std.
	n := float64(len(X))
	for j := 0; j < d; j++ {
		s := 0.0
		for _, row := range X {
			s += row[j]
		}
		m.Means[j] = s / n
	}
	for j := 0; j < d; j++ {
		s := 0.0
		for _, row := range X {
			dx := row[j] - m.Means[j]
			s += dx * dx
		}
		m.Stds[j] = math.Sqrt(s / n)
		if m.Stds[j] < 1e-12 {
			m.Stds[j] = 1
		}
	}
	Z := make([][]float64, len(X))
	for i, row := range X {
		z := make([]float64, d)
		for j := range row {
			z[j] = (row[j] - m.Means[j]) / m.Stds[j]
		}
		Z[i] = z
	}

	rng := cfg.rng()
	idx := make([]int, len(Z))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		lr := cfg.LearningRate / (1 + 0.01*float64(epoch)) // mild decay
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			gw := make([]float64, d)
			gb := 0.0
			for _, i := range idx[start:end] {
				z := m.Bias
				for j, v := range Z[i] {
					z += m.Weights[j] * v
				}
				p := Sigmoid(z)
				t := 0.0
				if y[i] {
					t = 1
				}
				e := p - t
				for j, v := range Z[i] {
					gw[j] += e * v
				}
				gb += e
			}
			bs := float64(end - start)
			for j := range m.Weights {
				m.Weights[j] -= lr * (gw[j]/bs + cfg.L2*m.Weights[j])
			}
			m.Bias -= lr * gb / bs
		}
	}
	return m, nil
}

// Predict returns the probability of the positive class for raw features x.
func (m *Model) Predict(x []float64) float64 {
	z := m.Bias
	for j, v := range x {
		if j >= len(m.Weights) {
			break
		}
		z += m.Weights[j] * (v - m.Means[j]) / m.Stds[j]
	}
	return Sigmoid(z)
}

// Metrics summarizes classifier quality on a labeled set.
type Metrics struct {
	Accuracy  float64
	Precision float64
	Recall    float64
	F1        float64
	N         int
}

// Evaluate computes Metrics at the 0.5 decision threshold.
func Evaluate(m *Model, X [][]float64, y []bool) Metrics {
	var tp, fp, tn, fn int
	for i, row := range X {
		pred := m.Predict(row) >= 0.5
		switch {
		case pred && y[i]:
			tp++
		case pred && !y[i]:
			fp++
		case !pred && !y[i]:
			tn++
		default:
			fn++
		}
	}
	var mt Metrics
	mt.N = len(X)
	if mt.N == 0 {
		return mt
	}
	mt.Accuracy = float64(tp+tn) / float64(mt.N)
	if tp+fp > 0 {
		mt.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		mt.Recall = float64(tp) / float64(tp+fn)
	}
	if mt.Precision+mt.Recall > 0 {
		mt.F1 = 2 * mt.Precision * mt.Recall / (mt.Precision + mt.Recall)
	}
	return mt
}

// Split partitions (X, y) into train/validate sets with the given training
// fraction (the paper used 70/30), shuffled with seed.
func Split(X [][]float64, y []bool, trainFrac float64, seed int64) (trX [][]float64, trY []bool, vaX [][]float64, vaY []bool) {
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
	cut := int(trainFrac * float64(len(idx)))
	for i, k := range idx {
		if i < cut {
			trX = append(trX, X[k])
			trY = append(trY, y[k])
		} else {
			vaX = append(vaX, X[k])
			vaY = append(vaY, y[k])
		}
	}
	return
}

// FeatureImportance pairs a feature name with its standardized weight.
type FeatureImportance struct {
	Name   string
	Weight float64
}

// Importances returns features sorted by descending |weight|.
func (m *Model) Importances() []FeatureImportance {
	out := make([]FeatureImportance, len(m.Weights))
	for i, w := range m.Weights {
		name := fmt.Sprintf("f%d", i)
		if i < len(m.Names) && m.Names[i] != "" {
			name = m.Names[i]
		}
		out[i] = FeatureImportance{Name: name, Weight: w}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Weight) > math.Abs(out[j].Weight)
	})
	return out
}

// RFE performs recursive feature elimination (§7.2): it repeatedly trains on
// the surviving features and drops the one with the smallest |standardized
// weight| until keep features remain. It returns the final model and the
// indices (into the original feature space) of the kept features, sorted.
func RFE(names []string, X [][]float64, y []bool, cfg TrainConfig, keep int) (*Model, []int, error) {
	if len(X) == 0 {
		return nil, nil, ErrNoData
	}
	d := len(X[0])
	if keep <= 0 || keep > d {
		keep = d
	}
	alive := make([]int, d)
	for i := range alive {
		alive[i] = i
	}
	project := func(cols []int) ([][]float64, []string) {
		px := make([][]float64, len(X))
		for i, row := range X {
			pr := make([]float64, len(cols))
			for k, c := range cols {
				pr[k] = row[c]
			}
			px[i] = pr
		}
		var pn []string
		if names != nil {
			pn = make([]string, len(cols))
			for k, c := range cols {
				pn[k] = names[c]
			}
		}
		return px, pn
	}
	for len(alive) > keep {
		px, pn := project(alive)
		m, err := Train(pn, px, y, cfg)
		if err != nil {
			return nil, nil, err
		}
		worst, worstAbs := 0, math.Inf(1)
		for j, w := range m.Weights {
			if a := math.Abs(w); a < worstAbs {
				worst, worstAbs = j, a
			}
		}
		alive = append(alive[:worst], alive[worst+1:]...)
	}
	px, pn := project(alive)
	m, err := Train(pn, px, y, cfg)
	if err != nil {
		return nil, nil, err
	}
	return m, append([]int(nil), alive...), nil
}
