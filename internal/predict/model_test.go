package predict

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthData generates a linearly separable-ish dataset: label is a logistic
// draw from trueW·x + b with the given noise.
func synthData(n, d int, seed int64, trueW []float64, bias float64) ([][]float64, []bool) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]bool, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		z := bias
		for j := 0; j < d; j++ {
			row[j] = rng.NormFloat64()
			if j < len(trueW) {
				z += trueW[j] * row[j]
			}
		}
		X[i] = row
		y[i] = rng.Float64() < Sigmoid(z)
	}
	return X, y
}

func TestSigmoid(t *testing.T) {
	if got := Sigmoid(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Sigmoid(100); got <= 0.999 {
		t.Fatalf("Sigmoid(100) = %v", got)
	}
	if got := Sigmoid(-100); got >= 0.001 {
		t.Fatalf("Sigmoid(-100) = %v", got)
	}
	// Symmetry property: sigmoid(-z) = 1 - sigmoid(z).
	f := func(z float64) bool {
		if math.IsNaN(z) || math.IsInf(z, 0) {
			return true
		}
		return math.Abs(Sigmoid(-z)-(1-Sigmoid(z))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainLearnsSeparableData(t *testing.T) {
	trueW := []float64{3, -2, 0, 0}
	X, y := synthData(3000, 4, 42, trueW, 0.5)
	m, err := Train([]string{"a", "b", "c", "d"}, X, y, TrainConfig{Epochs: 80})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(m, X, y)
	if mt.Accuracy < 0.85 {
		t.Fatalf("train accuracy = %v, want >= 0.85", mt.Accuracy)
	}
	// Signs of informative weights recovered.
	if m.Weights[0] <= 0 || m.Weights[1] >= 0 {
		t.Fatalf("weights = %v, want +,-", m.Weights[:2])
	}
	// Uninformative features near zero relative to informative ones.
	if math.Abs(m.Weights[2]) > math.Abs(m.Weights[0])/3 {
		t.Fatalf("noise weight too large: %v", m.Weights)
	}
}

func TestTrainValidationSplit(t *testing.T) {
	X, y := synthData(4000, 3, 7, []float64{4, -3, 2}, 0)
	trX, trY, vaX, vaY := Split(X, y, 0.7, 99)
	if len(trX) != 2800 || len(vaX) != 1200 {
		t.Fatalf("split sizes = %d/%d", len(trX), len(vaX))
	}
	m, err := Train(nil, trX, trY, TrainConfig{Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	mt := Evaluate(m, vaX, vaY)
	if mt.Accuracy < 0.8 {
		t.Fatalf("validation accuracy = %v", mt.Accuracy)
	}
	if mt.N != 1200 {
		t.Fatalf("metrics N = %d", mt.N)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, nil, TrainConfig{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Train(nil, [][]float64{{1}, {1, 2}}, []bool{true, false}, TrainConfig{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("ragged err = %v", err)
	}
	if _, err := Train(nil, [][]float64{{}}, []bool{true}, TrainConfig{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("zero-width err = %v", err)
	}
	if _, err := Train([]string{"a", "b"}, [][]float64{{1}}, []bool{true}, TrainConfig{}); !errors.Is(err, ErrDimension) {
		t.Fatalf("name mismatch err = %v", err)
	}
	if _, err := Train(nil, [][]float64{{1}}, []bool{true, false}, TrainConfig{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("label mismatch err = %v", err)
	}
}

func TestTrainDeterministic(t *testing.T) {
	X, y := synthData(500, 3, 5, []float64{1, 1, -1}, 0)
	m1, err := Train(nil, X, y, TrainConfig{Epochs: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(nil, X, y, TrainConfig{Epochs: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for j := range m1.Weights {
		if m1.Weights[j] != m2.Weights[j] {
			t.Fatal("training not deterministic for fixed seed")
		}
	}
}

func TestConstantFeatureDoesNotNaN(t *testing.T) {
	// A zero-variance feature must not divide by zero.
	X := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []bool{false, false, true, true}
	m, err := Train(nil, X, y, TrainConfig{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Predict([]float64{2.5, 5})
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("Predict = %v", p)
	}
}

func TestPredictShortVector(t *testing.T) {
	X, y := synthData(200, 3, 11, []float64{1, 1, 1}, 0)
	m, err := Train(nil, X, y, TrainConfig{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Shorter vector than trained dimension: uses available prefix.
	p := m.Predict([]float64{1})
	if math.IsNaN(p) {
		t.Fatal("NaN on short vector")
	}
}

func TestEvaluateEmptySet(t *testing.T) {
	m := &Model{Weights: []float64{1}, Means: []float64{0}, Stds: []float64{1}}
	mt := Evaluate(m, nil, nil)
	if mt.N != 0 || mt.Accuracy != 0 {
		t.Fatalf("empty metrics = %+v", mt)
	}
}

func TestMetricsPrecisionRecall(t *testing.T) {
	// Hand-built model: predicts positive iff x > 0.
	m := &Model{Weights: []float64{10}, Means: []float64{0}, Stds: []float64{1}}
	X := [][]float64{{1}, {1}, {-1}, {-1}}
	y := []bool{true, false, true, false}
	mt := Evaluate(m, X, y)
	if mt.Accuracy != 0.5 || mt.Precision != 0.5 || mt.Recall != 0.5 {
		t.Fatalf("metrics = %+v", mt)
	}
	if math.Abs(mt.F1-0.5) > 1e-12 {
		t.Fatalf("f1 = %v", mt.F1)
	}
}

func TestImportancesSorted(t *testing.T) {
	m := &Model{
		Names:   []string{"small", "big", "mid"},
		Weights: []float64{0.1, -5, 2},
		Means:   []float64{0, 0, 0},
		Stds:    []float64{1, 1, 1},
	}
	imp := m.Importances()
	if imp[0].Name != "big" || imp[1].Name != "mid" || imp[2].Name != "small" {
		t.Fatalf("importances = %v", imp)
	}
	// Unnamed model falls back to f<i>.
	m.Names = nil
	if got := m.Importances()[0].Name; got != "f1" {
		t.Fatalf("fallback name = %q", got)
	}
}

func TestRFEKeepsInformativeFeatures(t *testing.T) {
	// Features 0 and 2 are informative; 1 and 3 are noise.
	trueW := []float64{4, 0, -4, 0}
	X, y := synthData(2500, 4, 13, trueW, 0)
	m, kept, err := RFE([]string{"a", "noise1", "c", "noise2"}, X, y, TrainConfig{Epochs: 40}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 2 {
		t.Fatalf("kept = %v", kept)
	}
	has := map[int]bool{}
	for _, k := range kept {
		has[k] = true
	}
	if !has[0] || !has[2] {
		t.Fatalf("RFE kept wrong features: %v", kept)
	}
	if len(m.Weights) != 2 {
		t.Fatalf("final model width = %d", len(m.Weights))
	}
	if mt := Evaluate(m, projectCols(X, kept), y); mt.Accuracy < 0.8 {
		t.Fatalf("RFE model accuracy = %v", mt.Accuracy)
	}
}

func projectCols(X [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		pr := make([]float64, len(cols))
		for k, c := range cols {
			pr[k] = row[c]
		}
		out[i] = pr
	}
	return out
}

func TestRFEErrorsAndDefaults(t *testing.T) {
	if _, _, err := RFE(nil, nil, nil, TrainConfig{}, 1); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	// keep out of range defaults to all features.
	X, y := synthData(100, 2, 3, []float64{1, 1}, 0)
	m, kept, err := RFE(nil, X, y, TrainConfig{Epochs: 5}, 0)
	if err != nil || len(kept) != 2 || len(m.Weights) != 2 {
		t.Fatalf("defaulted RFE = %v, %v, %v", m, kept, err)
	}
}
