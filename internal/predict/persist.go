package predict

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model serialization: trained models persist as JSON so the production
// service can load them at startup instead of retraining (the paper trains
// offline in scikit and serves the coefficients).

// modelFile wraps either model kind with a type tag.
type modelFile struct {
	Kind     string      `json:"kind"` // "logistic" or "boost"
	Logistic *Model      `json:"logistic,omitempty"`
	Boost    *BoostModel `json:"boost,omitempty"`
}

// SaveModel writes a logistic model as JSON.
func SaveModel(w io.Writer, m *Model) error {
	return json.NewEncoder(w).Encode(modelFile{Kind: "logistic", Logistic: m})
}

// SaveBoostModel writes a boosted model as JSON.
func SaveBoostModel(w io.Writer, m *BoostModel) error {
	return json.NewEncoder(w).Encode(modelFile{Kind: "boost", Boost: m})
}

// LoadModel reads a model saved with SaveModel or SaveBoostModel. Exactly
// one of the returns is non-nil on success.
func LoadModel(r io.Reader) (*Model, *BoostModel, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, nil, fmt.Errorf("predict: decode model: %w", err)
	}
	switch mf.Kind {
	case "logistic":
		if mf.Logistic == nil || len(mf.Logistic.Weights) == 0 {
			return nil, nil, fmt.Errorf("predict: empty logistic model")
		}
		if len(mf.Logistic.Means) != len(mf.Logistic.Weights) || len(mf.Logistic.Stds) != len(mf.Logistic.Weights) {
			return nil, nil, fmt.Errorf("predict: inconsistent logistic model dimensions")
		}
		return mf.Logistic, nil, nil
	case "boost":
		if mf.Boost == nil {
			return nil, nil, fmt.Errorf("predict: empty boost model")
		}
		return nil, mf.Boost, nil
	default:
		return nil, nil, fmt.Errorf("predict: unknown model kind %q", mf.Kind)
	}
}
