package predict

import (
	"math"

	"mastergreen/internal/change"
)

// Predictor supplies the two probabilities the speculation engine consumes:
// P_succ(C) and P_conf(Ci, Cj) (§4.2).
type Predictor interface {
	// PredictSuccess estimates the probability the change's build succeeds
	// against the current HEAD with no other pending change applied.
	PredictSuccess(c *change.Change) float64
	// PredictConflict estimates the probability Ci and Cj really conflict:
	// each succeeds alone but they fail together.
	PredictConflict(ci, cj *change.Change) float64
}

// Static is the predictor used by the Speculate-all baseline (§8): a fixed
// success probability (the paper assumes 50%) and a fixed conflict
// probability.
type Static struct {
	Success  float64
	Conflict float64
}

// PredictSuccess implements Predictor.
func (s Static) PredictSuccess(*change.Change) float64 { return clampProb(s.Success) }

// PredictConflict implements Predictor.
func (s Static) PredictConflict(*change.Change, *change.Change) float64 {
	return clampProb(s.Conflict)
}

// Oracle perfectly predicts outcomes using ground-truth callbacks; it is the
// normalization baseline of §8 ("can perfectly predict the outcome of a
// change").
type Oracle struct {
	Success  func(id change.ID) bool
	Conflict func(a, b change.ID) bool
}

// PredictSuccess implements Predictor.
func (o Oracle) PredictSuccess(c *change.Change) float64 {
	if o.Success != nil && o.Success(c.ID) {
		return 1
	}
	return 0
}

// PredictConflict implements Predictor.
func (o Oracle) PredictConflict(ci, cj *change.Change) float64 {
	if o.Conflict != nil && o.Conflict(ci.ID, cj.ID) {
		return 1
	}
	return 0
}

// Learned wraps the two trained logistic-regression models, exactly as
// SubmitQueue runs in production (§7.2).
type Learned struct {
	SuccessModel  *Model
	ConflictModel *Model
}

// PredictSuccess implements Predictor.
func (l Learned) PredictSuccess(c *change.Change) float64 {
	if l.SuccessModel == nil {
		return 0.5
	}
	return clampProb(l.SuccessModel.Predict(SuccessFeatures(c)))
}

// PredictConflict implements Predictor.
func (l Learned) PredictConflict(ci, cj *change.Change) float64 {
	if l.ConflictModel == nil {
		return 0
	}
	return clampProb(l.ConflictModel.Predict(ConflictFeatures(ci, cj)))
}

// clampProb keeps probabilities strictly inside (0,1) so speculation math
// never saturates to impossible certainty.
func clampProb(p float64) float64 {
	if math.IsNaN(p) {
		return 0.5
	}
	if p < 1e-4 {
		return 1e-4
	}
	if p > 1-1e-4 {
		return 1 - 1e-4
	}
	return p
}

// Interface checks.
var (
	_ Predictor = Static{}
	_ Predictor = Oracle{}
	_ Predictor = Learned{}
)
