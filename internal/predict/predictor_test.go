package predict

import (
	"math"
	"testing"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

func chg(id, author, team string, paths ...string) *change.Change {
	var fcs []repo.FileChange
	for _, p := range paths {
		fcs = append(fcs, repo.FileChange{Path: p, Op: repo.OpCreate, NewContent: "x"})
	}
	return &change.Change{
		ID:     change.ID(id),
		Author: change.Developer{Name: author, Team: team, Level: 3, EmploymentMonths: 24},
		Patch:  repo.Patch{Changes: fcs},
		Stats:  change.Stats{FilesChanged: len(paths), AffectedTargets: len(paths)},
	}
}

func TestStaticPredictor(t *testing.T) {
	s := Static{Success: 0.5, Conflict: 0.1}
	if got := s.PredictSuccess(chg("a", "dev", "t", "f")); got != 0.5 {
		t.Fatalf("success = %v", got)
	}
	if got := s.PredictConflict(nil, nil); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("conflict = %v", got)
	}
	// Out-of-range values are clamped into (0,1).
	if got := (Static{Success: 2}).PredictSuccess(nil); got >= 1 {
		t.Fatalf("clamped success = %v", got)
	}
	if got := (Static{Success: -1}).PredictSuccess(nil); got <= 0 {
		t.Fatalf("clamped success = %v", got)
	}
	if got := (Static{Success: math.NaN()}).PredictSuccess(nil); got != 0.5 {
		t.Fatalf("NaN clamp = %v", got)
	}
}

func TestOraclePredictor(t *testing.T) {
	o := Oracle{
		Success:  func(id change.ID) bool { return id == "good" },
		Conflict: func(a, b change.ID) bool { return a == "x" && b == "y" },
	}
	if got := o.PredictSuccess(chg("good", "d", "t", "f")); got != 1 {
		t.Fatalf("good = %v", got)
	}
	if got := o.PredictSuccess(chg("bad", "d", "t", "f")); got != 0 {
		t.Fatalf("bad = %v", got)
	}
	if got := o.PredictConflict(chg("x", "d", "t", "f"), chg("y", "d", "t", "g")); got != 1 {
		t.Fatalf("conflict = %v", got)
	}
	// Nil callbacks behave as "never".
	var empty Oracle
	if empty.PredictSuccess(chg("a", "d", "t", "f")) != 0 || empty.PredictConflict(nil, nil) != 0 {
		t.Fatal("nil-callback oracle should predict 0")
	}
}

func TestLearnedPredictorFallbacks(t *testing.T) {
	var l Learned
	if got := l.PredictSuccess(chg("a", "d", "t", "f")); got != 0.5 {
		t.Fatalf("nil success model = %v", got)
	}
	if got := l.PredictConflict(chg("a", "d", "t", "f"), chg("b", "d", "t", "g")); got != 0 {
		t.Fatalf("nil conflict model = %v", got)
	}
}

func TestLearnedPredictorUsesModels(t *testing.T) {
	// Train a success model where initial_tests_failed strongly predicts
	// failure, then check the predictor orders changes sensibly.
	var X [][]float64
	var y []bool
	for i := 0; i < 600; i++ {
		good := chg("g", "d", "t", "f")
		good.Stats.InitialTestsPassed = 10
		bad := chg("b", "d", "t", "f")
		bad.Stats.InitialTestsFailed = 5 + i%3
		X = append(X, SuccessFeatures(good), SuccessFeatures(bad))
		y = append(y, true, false)
	}
	m, err := Train(SuccessFeatureNames, X, y, TrainConfig{Epochs: 40})
	if err != nil {
		t.Fatal(err)
	}
	l := Learned{SuccessModel: m}
	good := chg("g", "d", "t", "f")
	good.Stats.InitialTestsPassed = 10
	bad := chg("b", "d", "t", "f")
	bad.Stats.InitialTestsFailed = 6
	pg, pb := l.PredictSuccess(good), l.PredictSuccess(bad)
	if pg <= pb {
		t.Fatalf("good %.3f should outrank bad %.3f", pg, pb)
	}
	if pg <= 0 || pg >= 1 || pb <= 0 || pb >= 1 {
		t.Fatalf("probabilities not clamped: %v %v", pg, pb)
	}
}

func TestSuccessFeaturesShape(t *testing.T) {
	c := chg("a", "dev", "team", "f1", "f2")
	c.Revision = &change.Revision{SubmitCount: 3, TestPlan: true}
	f := SuccessFeatures(c)
	if len(f) != len(SuccessFeatureNames) {
		t.Fatalf("len = %d, want %d", len(f), len(SuccessFeatureNames))
	}
	// revision_submit_count position.
	idx := -1
	for i, n := range SuccessFeatureNames {
		if n == "revision_submit_count" {
			idx = i
		}
	}
	if f[idx] != 3 {
		t.Fatalf("submit count = %v", f[idx])
	}
	// Nil revision yields zeros, no panic.
	c.Revision = nil
	f = SuccessFeatures(c)
	if f[idx] != 0 {
		t.Fatalf("nil revision submit count = %v", f[idx])
	}
}

func TestConflictFeaturesSymmetric(t *testing.T) {
	a := chg("a", "alice", "riders", "app/x.go", "app/y.go")
	b := chg("b", "bob", "riders", "app/x.go", "lib/z.go")
	fab := ConflictFeatures(a, b)
	fba := ConflictFeatures(b, a)
	if len(fab) != len(ConflictFeatureNames) {
		t.Fatalf("len = %d", len(fab))
	}
	for i := range fab {
		if fab[i] != fba[i] {
			t.Fatalf("asymmetric at %s: %v vs %v", ConflictFeatureNames[i], fab[i], fba[i])
		}
	}
	// shared_paths = 1 (app/x.go), shared_dirs = 1 (app), same_team = 1.
	if fab[0] != 1 || fab[1] != 1 || fab[2] != 1 {
		t.Fatalf("features = %v", fab)
	}
	// Different teams and no overlap.
	c := chg("c", "carol", "eats", "other/w.go")
	fac := ConflictFeatures(a, c)
	if fac[0] != 0 || fac[1] != 0 || fac[2] != 0 {
		t.Fatalf("disjoint features = %v", fac)
	}
}

func TestConflictFeaturesSameAuthor(t *testing.T) {
	a := chg("a", "alice", "t", "f1")
	b := chg("b", "alice", "t", "f2")
	f := ConflictFeatures(a, b)
	if f[3] != 1 {
		t.Fatalf("same_author = %v", f[3])
	}
	// Empty names never count as same.
	a.Author.Name, b.Author.Name = "", ""
	if got := ConflictFeatures(a, b); got[3] != 0 {
		t.Fatalf("empty-name same_author = %v", got[3])
	}
}
