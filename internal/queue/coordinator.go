package queue

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Coordinator assigns queue shards to core-service nodes, the role Apache
// Helix plays in the paper's deployment (§7.1: "Apache Helix for sharding
// queues across machines"). It implements rendezvous (highest-random-weight)
// hashing: every shard is owned by exactly one live node, assignments are
// balanced, and when membership changes only the shards of the affected node
// move — the stability property that makes rebalancing cheap.
type Coordinator struct {
	mu     sync.RWMutex
	shards int
	nodes  map[string]bool
}

// NewCoordinator manages the given number of shards (minimum 1).
func NewCoordinator(shards int) *Coordinator {
	if shards < 1 {
		shards = 1
	}
	return &Coordinator{shards: shards, nodes: map[string]bool{}}
}

// Join adds a node to the cluster.
func (c *Coordinator) Join(node string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[node] = true
}

// Leave removes a node (crash or drain); its shards fail over on the next
// Owner call.
func (c *Coordinator) Leave(node string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.nodes, node)
}

// Nodes returns the live members, sorted.
func (c *Coordinator) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return c.shards }

// weight is the rendezvous score of (shard, node).
func weight(shard int, node string) uint64 {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d|%s", shard, node)))
	return binary.BigEndian.Uint64(h[:8])
}

// keyWeight is the rendezvous score of (key, node) for arbitrary string
// keys. The shard layer hashes target-subtree anchors through it so a
// conflict-graph component lands on a stable planner shard as the queue
// churns.
func keyWeight(key, node string) uint64 {
	h := sha256.Sum256([]byte(key + "|" + node))
	return binary.BigEndian.Uint64(h[:8])
}

// KeyOwner returns the live node owning an arbitrary key under rendezvous
// hashing, or "" if the cluster is empty. Stability mirrors Owner: a node
// joining claims only the keys it now ranks first on; a node leaving moves
// only its own keys.
func (c *Coordinator) KeyOwner(key string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	best, bestW := "", uint64(0)
	for n := range c.nodes {
		if w := keyWeight(key, n); best == "" || w > bestW || (w == bestW && n < best) {
			best, bestW = n, w
		}
	}
	return best
}

// BalancedAssignment assigns every shard to a live node with strict balance:
// every node owns either ⌊shards/nodes⌋ or ⌈shards/nodes⌉ shards, so any two
// nodes differ by at most one. Shards are placed in index order, each going
// to its highest-weight node that still has capacity, so the result tracks
// pure rendezvous except where the balance constraint forces a spill. It
// returns nil if the cluster is empty.
func (c *Coordinator) BalancedAssignment() map[int]string {
	nodes := c.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	lo := c.shards / len(nodes)
	rem := c.shards % len(nodes) // this many nodes may own lo+1 shards
	hiUsed := 0
	load := make(map[string]int, len(nodes))
	out := make(map[int]string, c.shards)
	for s := 0; s < c.shards; s++ {
		best, bestW := "", uint64(0)
		for _, n := range nodes {
			if load[n] >= lo && (load[n] >= lo+1 || hiUsed >= rem) {
				continue // at capacity: lo, or lo+1 with the quota spent
			}
			if w := weight(s, n); best == "" || w > bestW || (w == bestW && n < best) {
				best, bestW = n, w
			}
		}
		out[s] = best
		load[best]++
		if load[best] == lo+1 {
			hiUsed++
		}
	}
	return out
}

// Owner returns the node owning the shard, or "" if the cluster is empty.
func (c *Coordinator) Owner(shard int) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	best, bestW := "", uint64(0)
	for n := range c.nodes {
		if w := weight(shard, n); best == "" || w > bestW || (w == bestW && n < best) {
			best, bestW = n, w
		}
	}
	return best
}

// Assignment returns the full shard→node map.
func (c *Coordinator) Assignment() map[int]string {
	out := make(map[int]string, c.shards)
	for s := 0; s < c.shards; s++ {
		out[s] = c.Owner(s)
	}
	return out
}

// OwnedBy returns the shards owned by the node, ascending.
func (c *Coordinator) OwnedBy(node string) []int {
	var out []int
	for s := 0; s < c.shards; s++ {
		if c.Owner(s) == node {
			out = append(out, s)
		}
	}
	return out
}

// Moved reports which shards changed owner between two assignments.
func Moved(before, after map[int]string) []int {
	var out []int
	for s, b := range before {
		if after[s] != b {
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
