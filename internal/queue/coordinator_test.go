package queue

import (
	"fmt"
	"testing"
)

func cluster(shards int, nodes ...string) *Coordinator {
	c := NewCoordinator(shards)
	for _, n := range nodes {
		c.Join(n)
	}
	return c
}

func TestOwnerDeterministic(t *testing.T) {
	c1 := cluster(16, "a", "b", "c")
	c2 := cluster(16, "c", "a", "b") // join order must not matter
	for s := 0; s < 16; s++ {
		if c1.Owner(s) != c2.Owner(s) {
			t.Fatalf("shard %d owner differs by join order", s)
		}
	}
}

func TestEveryShardOwned(t *testing.T) {
	c := cluster(64, "a", "b", "c", "d")
	for s, n := range c.Assignment() {
		if n == "" {
			t.Fatalf("shard %d unowned", s)
		}
	}
}

func TestEmptyClusterNoOwner(t *testing.T) {
	c := NewCoordinator(4)
	if got := c.Owner(0); got != "" {
		t.Fatalf("owner of empty cluster = %q", got)
	}
}

func TestBalancedAssignment(t *testing.T) {
	nodes := []string{"n0", "n1", "n2", "n3", "n4"}
	c := cluster(500, nodes...)
	counts := map[string]int{}
	for _, n := range c.Assignment() {
		counts[n]++
	}
	for _, n := range nodes {
		got := counts[n]
		// Expect 100 ± 50% — rendezvous hashing balances well at this scale.
		if got < 50 || got > 150 {
			t.Fatalf("node %s owns %d of 500 shards", n, got)
		}
	}
}

func TestLeaveMovesOnlyFailedNodesShards(t *testing.T) {
	c := cluster(256, "a", "b", "c", "d")
	before := c.Assignment()
	c.Leave("b")
	after := c.Assignment()
	moved := Moved(before, after)
	for _, s := range moved {
		if before[s] != "b" {
			t.Fatalf("shard %d moved but was owned by %s, not the failed node", s, before[s])
		}
		if after[s] == "b" || after[s] == "" {
			t.Fatalf("shard %d not reassigned: %q", s, after[s])
		}
	}
	// Everything b owned must have moved.
	for s, n := range before {
		if n == "b" && after[s] == "b" {
			t.Fatalf("shard %d still owned by departed node", s)
		}
	}
}

func TestJoinStealsBoundedShare(t *testing.T) {
	c := cluster(400, "a", "b", "c", "d")
	before := c.Assignment()
	c.Join("e")
	after := c.Assignment()
	moved := Moved(before, after)
	// The newcomer should take roughly 1/5 of the shards and nothing else
	// should shuffle between survivors.
	for _, s := range moved {
		if after[s] != "e" {
			t.Fatalf("shard %d moved to %s, not the new node", s, after[s])
		}
	}
	if len(moved) < 40 || len(moved) > 160 {
		t.Fatalf("moved %d of 400 shards on join, want ≈80", len(moved))
	}
}

func TestOwnedByPartitions(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	c := cluster(48, nodes...)
	seen := map[int]bool{}
	total := 0
	for _, n := range nodes {
		for _, s := range c.OwnedBy(n) {
			if seen[s] {
				t.Fatalf("shard %d owned twice", s)
			}
			seen[s] = true
			total++
		}
	}
	if total != 48 {
		t.Fatalf("covered %d of 48", total)
	}
}

func TestNodesSorted(t *testing.T) {
	c := cluster(4, "zeta", "alpha", "mid")
	got := c.Nodes()
	if len(got) != 3 || got[0] != "alpha" || got[2] != "zeta" {
		t.Fatalf("Nodes = %v", got)
	}
	c.Leave("mid")
	if len(c.Nodes()) != 2 {
		t.Fatal("leave not applied")
	}
}

func TestCoordinatorWithQueueShards(t *testing.T) {
	// End to end: the queue's shard of a change maps to a node via the
	// coordinator, and every pending change has exactly one responsible node.
	q := New(8)
	c := cluster(8, "core-0", "core-1")
	for i := 0; i < 40; i++ {
		if err := q.Enqueue(mk(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	perNode := map[string]int{}
	for s := 0; s < q.Shards(); s++ {
		node := c.Owner(s)
		if node == "" {
			t.Fatalf("shard %d unowned", s)
		}
		perNode[node] += len(q.ShardPending(s))
	}
	if perNode["core-0"]+perNode["core-1"] != 40 {
		t.Fatalf("coverage = %v", perNode)
	}
}

// TestKeyOwnerStability is the rendezvous stability property over arbitrary
// string keys: a node leaving moves only its own keys, and a node joining
// steals keys only for itself.
func TestKeyOwnerStability(t *testing.T) {
	c := cluster(1, "a", "b", "c", "d")
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("subtree%03d", i)
	}
	before := map[string]string{}
	for _, k := range keys {
		owner := c.KeyOwner(k)
		if owner == "" {
			t.Fatalf("key %s unowned", k)
		}
		before[k] = owner
	}
	c.Leave("b")
	for _, k := range keys {
		after := c.KeyOwner(k)
		if before[k] != "b" && after != before[k] {
			t.Fatalf("leave(b) moved key %s from %s to %s", k, before[k], after)
		}
		if before[k] == "b" && after == "b" {
			t.Fatalf("key %s still owned by departed node", k)
		}
	}
	c.Join("b")
	for _, k := range keys {
		if got := c.KeyOwner(k); got != before[k] {
			t.Fatalf("rejoin did not restore key %s: %s != %s", k, got, before[k])
		}
	}
	c.Join("e")
	moved := 0
	for _, k := range keys {
		after := c.KeyOwner(k)
		if after != before[k] {
			if after != "e" {
				t.Fatalf("join(e) moved key %s to %s, not e", k, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("join(e) stole no keys from 200; rendezvous weights suspicious")
	}
}

// TestBalancedAssignmentWithinOne: under BalancedAssignment any two nodes own
// within one shard of each other, every shard has a live owner, and the
// result is deterministic.
func TestBalancedAssignmentWithinOne(t *testing.T) {
	for _, nodes := range [][]string{
		{"a"}, {"a", "b"}, {"a", "b", "c"}, {"a", "b", "c", "d", "e"},
		{"a", "b", "c", "d", "e", "f", "g"},
	} {
		c := cluster(16, nodes...)
		asg := c.BalancedAssignment()
		if len(asg) != 16 {
			t.Fatalf("nodes=%v: %d shards assigned", nodes, len(asg))
		}
		load := map[string]int{}
		for s, n := range asg {
			if n == "" {
				t.Fatalf("nodes=%v: shard %d unowned", nodes, s)
			}
			load[n]++
		}
		min, max := 16, 0
		for _, n := range nodes {
			if load[n] < min {
				min = load[n]
			}
			if load[n] > max {
				max = load[n]
			}
		}
		if max-min > 1 {
			t.Fatalf("nodes=%v: imbalance %v", nodes, load)
		}
		again := c.BalancedAssignment()
		for s := range asg {
			if asg[s] != again[s] {
				t.Fatalf("nodes=%v: assignment not deterministic at shard %d", nodes, s)
			}
		}
	}
}

// TestBalancedAssignmentEmpty: no nodes, no assignment.
func TestBalancedAssignmentEmpty(t *testing.T) {
	if got := NewCoordinator(8).BalancedAssignment(); got != nil {
		t.Fatalf("expected nil assignment, got %v", got)
	}
}
