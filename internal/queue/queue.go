// Package queue provides the distributed pending-change queue of §3.2/§7.1:
// SubmitQueue gives the illusion of a single queue; internally changes are
// sharded across machines (the paper uses Apache Helix). This implementation
// shards by consistent hashing of the change ID while preserving a global
// submission order, which is what serializability is defined over.
package queue

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"mastergreen/internal/change"
)

// Errors returned by the queue.
var (
	ErrDuplicate = errors.New("queue: change already enqueued")
	ErrNotFound  = errors.New("queue: change not found")
)

// Queue is a sharded FIFO of pending changes. All methods are safe for
// concurrent use.
type Queue struct {
	mu      sync.RWMutex
	shards  int
	nextSeq uint64
	entries map[change.ID]*entry
}

type entry struct {
	c     *change.Change
	seq   uint64
	shard int
}

// New creates a queue with the given shard count (minimum 1).
func New(shards int) *Queue {
	if shards < 1 {
		shards = 1
	}
	return &Queue{shards: shards, entries: map[change.ID]*entry{}}
}

// Shards returns the shard count.
func (q *Queue) Shards() int { return q.shards }

// shardOf consistently maps a change ID to a shard.
func (q *Queue) shardOf(id change.ID) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32()) % q.shards
}

// Enqueue adds a change; the enqueue order defines the submission order the
// speculation engine respects.
func (q *Queue) Enqueue(c *change.Change) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("queue: %w", err)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.entries[c.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, c.ID)
	}
	q.entries[c.ID] = &entry{c: c, seq: q.nextSeq, shard: q.shardOf(c.ID)}
	q.nextSeq++
	return nil
}

// EnqueueSeq adds a change under an explicit global submission sequence
// number. The shard layer uses it when moving a change between per-shard
// sub-queues: the change keeps the sequence its original submission assigned,
// so submission order — the order serializability is defined over — survives
// rebalancing.
func (q *Queue) EnqueueSeq(c *change.Change, seq uint64) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("queue: %w", err)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.entries[c.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, c.ID)
	}
	q.entries[c.ID] = &entry{c: c, seq: seq, shard: q.shardOf(c.ID)}
	if seq >= q.nextSeq {
		q.nextSeq = seq + 1
	}
	return nil
}

// Remove deletes a change (after commit or rejection).
func (q *Queue) Remove(id change.ID) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.entries[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(q.entries, id)
	return nil
}

// Get returns the enqueued change.
func (q *Queue) Get(id change.ID) (*change.Change, error) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	e, ok := q.entries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return e.c, nil
}

// Contains reports whether the change is enqueued.
func (q *Queue) Contains(id change.ID) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	_, ok := q.entries[id]
	return ok
}

// Len returns the number of pending changes.
func (q *Queue) Len() int {
	q.mu.RLock()
	defer q.mu.RUnlock()
	return len(q.entries)
}

// Pending returns all pending changes in submission order.
func (q *Queue) Pending() []*change.Change {
	q.mu.RLock()
	defer q.mu.RUnlock()
	es := make([]*entry, 0, len(q.entries))
	for _, e := range q.entries {
		es = append(es, e)
	}
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
	out := make([]*change.Change, len(es))
	for i, e := range es {
		out[i] = e.c
	}
	return out
}

// ShardPending returns the pending changes of one shard, in submission order.
func (q *Queue) ShardPending(shard int) []*change.Change {
	q.mu.RLock()
	defer q.mu.RUnlock()
	es := make([]*entry, 0)
	for _, e := range q.entries {
		if e.shard == shard {
			es = append(es, e)
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
	out := make([]*change.Change, len(es))
	for i, e := range es {
		out[i] = e.c
	}
	return out
}

// Seq returns the global submission sequence number of a change.
func (q *Queue) Seq(id change.ID) (uint64, error) {
	q.mu.RLock()
	defer q.mu.RUnlock()
	e, ok := q.entries[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return e.seq, nil
}
