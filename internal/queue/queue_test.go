package queue

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

func mk(id string) *change.Change {
	return &change.Change{
		ID: change.ID(id),
		Patch: repo.Patch{Changes: []repo.FileChange{
			{Path: "f", Op: repo.OpCreate, NewContent: "x"},
		}},
		BuildSteps: change.DefaultBuildSteps(),
	}
}

func TestEnqueueOrder(t *testing.T) {
	q := New(4)
	for _, id := range []string{"c3", "c1", "c2"} {
		if err := q.Enqueue(mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	got := q.Pending()
	if len(got) != 3 || got[0].ID != "c3" || got[1].ID != "c1" || got[2].ID != "c2" {
		t.Fatalf("order = %v", got)
	}
	if q.Len() != 3 {
		t.Fatalf("len = %d", q.Len())
	}
}

func TestEnqueueValidates(t *testing.T) {
	q := New(1)
	bad := &change.Change{ID: "x"} // no patch, no steps
	if err := q.Enqueue(bad); err == nil {
		t.Fatal("invalid change accepted")
	}
}

func TestDuplicateEnqueue(t *testing.T) {
	q := New(1)
	if err := q.Enqueue(mk("c1")); err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(mk("c1")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveGetContains(t *testing.T) {
	q := New(2)
	if err := q.Enqueue(mk("c1")); err != nil {
		t.Fatal(err)
	}
	c, err := q.Get("c1")
	if err != nil || c.ID != "c1" {
		t.Fatalf("Get = %v, %v", c, err)
	}
	if !q.Contains("c1") {
		t.Fatal("Contains = false")
	}
	if err := q.Remove("c1"); err != nil {
		t.Fatal(err)
	}
	if q.Contains("c1") || q.Len() != 0 {
		t.Fatal("remove did not take effect")
	}
	if err := q.Remove("c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
	if _, err := q.Get("c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get removed err = %v", err)
	}
	if _, err := q.Seq("c1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Seq removed err = %v", err)
	}
}

func TestSeqMonotone(t *testing.T) {
	q := New(3)
	var prev uint64
	for i := 0; i < 10; i++ {
		id := fmt.Sprintf("c%d", i)
		if err := q.Enqueue(mk(id)); err != nil {
			t.Fatal(err)
		}
		s, err := q.Seq(change.ID(id))
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && s <= prev {
			t.Fatalf("seq not monotone: %d after %d", s, prev)
		}
		prev = s
	}
}

func TestShardsPartitionPending(t *testing.T) {
	q := New(4)
	n := 50
	for i := 0; i < n; i++ {
		if err := q.Enqueue(mk(fmt.Sprintf("c%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	seen := map[change.ID]bool{}
	for s := 0; s < q.Shards(); s++ {
		part := q.ShardPending(s)
		total += len(part)
		var prevSeq uint64
		for i, c := range part {
			if seen[c.ID] {
				t.Fatalf("change %s in two shards", c.ID)
			}
			seen[c.ID] = true
			sq, _ := q.Seq(c.ID)
			if i > 0 && sq <= prevSeq {
				t.Fatalf("shard %d order broken", s)
			}
			prevSeq = sq
		}
	}
	if total != n {
		t.Fatalf("shards cover %d of %d", total, n)
	}
}

func TestShardAssignmentStable(t *testing.T) {
	q1, q2 := New(8), New(8)
	if q1.shardOf("c42") != q2.shardOf("c42") {
		t.Fatal("shard mapping not consistent across instances")
	}
}

func TestMinimumOneShard(t *testing.T) {
	q := New(0)
	if q.Shards() != 1 {
		t.Fatalf("shards = %d", q.Shards())
	}
}

func TestConcurrentAccess(t *testing.T) {
	q := New(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("c%d-%d", w, i)
				if err := q.Enqueue(mk(id)); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := q.Remove(change.ID(id)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if q.Len() != 8*25 {
		t.Fatalf("len = %d, want %d", q.Len(), 8*25)
	}
	// Pending is globally ordered.
	pend := q.Pending()
	var prev uint64
	for i, c := range pend {
		s, _ := q.Seq(c.ID)
		if i > 0 && s <= prev {
			t.Fatal("global order broken")
		}
		prev = s
	}
}

// TestEnqueueSeqPreservesOrder: re-homing a change under its original
// sequence keeps the global submission order, and the sequence counter never
// moves backwards.
func TestEnqueueSeqPreservesOrder(t *testing.T) {
	src := New(1)
	for _, id := range []string{"c1", "c2", "c3"} {
		if err := src.Enqueue(mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	dst := New(1)
	// Move c3 first, then c1: insertion order must not matter.
	for _, id := range []string{"c3", "c1", "c2"} {
		c, err := src.Get(change.ID(id))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := src.Seq(change.ID(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := src.Remove(change.ID(id)); err != nil {
			t.Fatal(err)
		}
		if err := dst.EnqueueSeq(c, seq); err != nil {
			t.Fatal(err)
		}
	}
	got := dst.Pending()
	want := []string{"c1", "c2", "c3"}
	for i, c := range got {
		if string(c.ID) != want[i] {
			t.Fatalf("order[%d] = %s, want %s", i, c.ID, want[i])
		}
	}
	// New plain enqueues continue after the highest re-homed sequence.
	if err := dst.Enqueue(mk("c4")); err != nil {
		t.Fatal(err)
	}
	s3, _ := dst.Seq("c3")
	s4, _ := dst.Seq("c4")
	if s4 <= s3 {
		t.Fatalf("seq regressed: c4=%d <= c3=%d", s4, s3)
	}
	// Duplicates and invalid changes are rejected.
	if err := dst.EnqueueSeq(mk("c4"), 99); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate EnqueueSeq: %v", err)
	}
}
