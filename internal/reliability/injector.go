package reliability

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/repo"
)

// ErrInjectedTransient marks a fault-injected transient step failure. The
// stuck-step watchdog error wraps it, so errors.Is(err, ErrInjectedTransient)
// covers both transient classes.
var ErrInjectedTransient = errors.New("reliability: injected transient fault")

// Fault classifies an injected perturbation.
type Fault int

// Fault kinds, in the order the stacked probability thresholds are drawn.
const (
	FaultNone Fault = iota
	FaultCrash
	FaultStuck
	FaultSlow
	FaultTransient
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultStuck:
		return "stuck"
	case FaultSlow:
		return "slow"
	case FaultTransient:
		return "transient"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// InjectorConfig tunes fault injection. All rates are probabilities in
// [0, 1] applied per step-unit execution; they stack in the order crash,
// stuck, slow, transient (a single uniform draw is consumed left to right).
type InjectorConfig struct {
	// TransientRate is the per-step-kind transient-failure rate;
	// DefaultTransientRate covers kinds absent from the map.
	TransientRate        map[change.StepKind]float64
	DefaultTransientRate float64
	// MaxTransientsPerUnit caps injected transients per step-unit identity
	// (0 = unlimited). With 1, a unit fails exactly once and then passes —
	// the canonical flaky step.
	MaxTransientsPerUnit int
	// SlowRate/SlowDelay: the unit runs normally after an injected delay.
	SlowRate  float64
	SlowDelay time.Duration
	// StuckRate/StuckDelay: the unit hangs for StuckDelay, then the modeled
	// watchdog kills it — it fails with a transient-class error.
	StuckRate  float64
	StuckDelay time.Duration
	// CrashRate models a worker crash: the unit fails with
	// buildsys.ErrAborted, tearing the whole build down (the planner drops
	// aborted builds and reschedules them).
	CrashRate float64
	// Sleep waits out slow/stuck delays; injectable for tests. The default
	// waits on a real timer, honoring context cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Injection is one recorded fault, keyed by the step-unit identity and the
// per-identity attempt number it hit.
type Injection struct {
	Target  string
	Hash    string
	Step    string
	Kind    change.StepKind
	Attempt int
	Fault   Fault
}

// InjectorStats counts injected faults.
type InjectorStats struct {
	Transients int
	Slows      int
	Stucks     int
	Crashes    int
}

// Total sums all injected faults.
func (s InjectorStats) Total() int { return s.Transients + s.Slows + s.Stucks + s.Crashes }

// Injector wraps a StepRunner with deterministic fault injection. Fault
// decisions are pure functions of (seed, step-unit identity, per-identity
// attempt number): a 64-bit seed is drawn once from the injected *rand.Rand,
// and each execution hashes it with the unit's step name, kind, target,
// target hash, and attempt counter. The schedule is therefore bit-reproducible
// for a given seed and independent of goroutine interleaving — concurrent
// executions of different units cannot perturb each other's draws.
//
// The injector is safe for concurrent use and implements both
// buildsys.StepRunner and buildsys.StepHashRunner.
type Injector struct {
	cfg  InjectorConfig
	seed uint64

	mu         sync.Mutex
	inner      buildsys.StepRunner
	attempts   map[unitKey]int
	transients map[unitKey]int
	schedule   []Injection
	stats      InjectorStats
}

// scheduleCap bounds the recorded fault log (golden tests need far less).
const scheduleCap = 65536

// NewInjector wraps inner (nil means every un-perturbed step succeeds) with
// fault injection seeded from rng (nil means seed 1).
func NewInjector(inner buildsys.StepRunner, rng *rand.Rand, cfg InjectorConfig) *Injector {
	seed := uint64(1)
	if rng != nil {
		seed = uint64(rng.Int63())
	}
	if cfg.Sleep == nil {
		cfg.Sleep = defaultSleep
	}
	return &Injector{
		cfg:        cfg,
		seed:       seed,
		inner:      inner,
		attempts:   map[unitKey]int{},
		transients: map[unitKey]int{},
	}
}

// SetInner replaces the wrapped runner (used by core wiring, before any
// builds run).
func (in *Injector) SetInner(inner buildsys.StepRunner) {
	in.mu.Lock()
	in.inner = inner
	in.mu.Unlock()
}

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Schedule returns the recorded faults in a canonical order (sorted by
// identity then attempt), so two runs' schedules compare equal regardless of
// the goroutine interleaving that produced them.
func (in *Injector) Schedule() []Injection {
	in.mu.Lock()
	out := append([]Injection(nil), in.schedule...)
	in.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Target != y.Target {
			return x.Target < y.Target
		}
		if x.Hash != y.Hash {
			return x.Hash < y.Hash
		}
		if x.Kind != y.Kind {
			return x.Kind < y.Kind
		}
		if x.Step != y.Step {
			return x.Step < y.Step
		}
		return x.Attempt < y.Attempt
	})
	return out
}

// RunStep implements buildsys.StepRunner (no content address available).
func (in *Injector) RunStep(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
	return in.RunStepHash(ctx, step, target, "", snap)
}

// RunStepHash implements buildsys.StepHashRunner.
func (in *Injector) RunStepHash(ctx context.Context, step change.BuildStep, target, hash string, snap repo.Snapshot) error {
	key := unitKey{Target: target, Hash: hash, Kind: step.Kind}
	in.mu.Lock()
	in.attempts[key]++
	attempt := in.attempts[key]
	fault := in.decide(key, step.Name, attempt)
	if fault == FaultTransient && in.cfg.MaxTransientsPerUnit > 0 &&
		in.transients[key] >= in.cfg.MaxTransientsPerUnit {
		fault = FaultNone
	}
	if fault != FaultNone {
		switch fault {
		case FaultTransient:
			in.transients[key]++
			in.stats.Transients++
		case FaultSlow:
			in.stats.Slows++
		case FaultStuck:
			in.stats.Stucks++
		case FaultCrash:
			in.stats.Crashes++
		}
		if len(in.schedule) < scheduleCap {
			in.schedule = append(in.schedule, Injection{
				Target: target, Hash: hash, Step: step.Name, Kind: step.Kind,
				Attempt: attempt, Fault: fault,
			})
		}
	}
	inner := in.inner
	in.mu.Unlock()

	switch fault {
	case FaultCrash:
		return buildsys.ErrAborted
	case FaultStuck:
		if err := in.cfg.Sleep(ctx, in.cfg.StuckDelay); err != nil {
			return buildsys.ErrAborted
		}
		return fmt.Errorf("injected stuck step killed by watchdog after %v: %w", in.cfg.StuckDelay, ErrInjectedTransient)
	case FaultTransient:
		return fmt.Errorf("%w (step %s, target %q, attempt %d)", ErrInjectedTransient, step.Name, target, attempt)
	case FaultSlow:
		if err := in.cfg.Sleep(ctx, in.cfg.SlowDelay); err != nil {
			return buildsys.ErrAborted
		}
	}
	if inner == nil {
		return nil
	}
	if hr, ok := inner.(buildsys.StepHashRunner); ok {
		return hr.RunStepHash(ctx, step, target, hash, snap)
	}
	return inner.RunStep(ctx, step, target, snap)
}

// decide maps (identity, attempt) to a fault by hashing it with the seed and
// consuming one uniform draw against the stacked rates.
func (in *Injector) decide(key unitKey, stepName string, attempt int) Fault {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(in.seed >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(key.Target))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key.Hash))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key.Kind.String()))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(stepName))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(strconv.Itoa(attempt)))
	u := float64(finalize(h.Sum64())>>11) / float64(1<<53)

	u -= in.cfg.CrashRate
	if u < 0 {
		return FaultCrash
	}
	u -= in.cfg.StuckRate
	if u < 0 {
		return FaultStuck
	}
	u -= in.cfg.SlowRate
	if u < 0 {
		return FaultSlow
	}
	rate, ok := in.cfg.TransientRate[key.Kind]
	if !ok {
		rate = in.cfg.DefaultTransientRate
	}
	u -= rate
	if u < 0 {
		return FaultTransient
	}
	return FaultNone
}

// finalize avalanches an FNV-1a sum (murmur3 fmix64). FNV's final input
// byte shifts the sum by only ~±prime (≈2^40), so without this the top bits
// — the ones the uniform draw keeps — are nearly identical across attempt
// numbers and every retry would re-draw the same fault.
func finalize(s uint64) uint64 {
	s ^= s >> 33
	s *= 0xff51afd7ed558ccd
	s ^= s >> 33
	s *= 0xc4ceb9fe1a85ec53
	s ^= s >> 33
	return s
}

// defaultSleep waits on a real timer, honoring cancellation. (No wall-clock
// reads: duration-only, so the wallclock lint policy holds.)
func defaultSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
