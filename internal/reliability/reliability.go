// Package reliability hardens SubmitQueue against an unreliable build fleet.
// The paper's always-green guarantee (§2) assumes build steps are
// deterministic; in practice flaky tests and infrastructure hiccups are the
// dominant threat to a green mainline, and a single transient failure must
// not reject an innocent change.
//
// Three cooperating pieces (DESIGN.md §4g):
//
//   - Injector: deterministic fault injection wrapping buildsys.StepRunner —
//     transient failures, slow/stuck steps, and worker crashes — driven by an
//     injected *rand.Rand so every robustness behavior is bit-reproducible.
//   - Detector + RetryPolicy: outcomes are keyed by (target name, target
//     hash, step kind) — the artifact cache's content address — so a failure
//     followed by a pass on *identical inputs* is proof of flakiness, not
//     correlation. Suspect step failures are retried in place with bounded
//     attempts, deterministic exponential backoff, and a per-epoch retry
//     budget; step kinds whose measured flake rate crosses a threshold are
//     quarantined (they still run, but can no longer solely reject a change).
//   - Planner integration: before a failed decisive build rejects its
//     change, Reliability.ShouldVerifyBuild grants one verification re-run of
//     the same request when the failing step-unit is suspect (known-flaky
//     identity, flaky kind, or quarantined kind). Quarantined failures always
//     get the re-run; they are never converted into passes, so every commit's
//     decisive build genuinely passed and the mainline stays green.
package reliability

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
)

// unitKey is the content-addressed identity of one step-unit: the same
// (target name, target hash, step kind) triple the artifact cache keys by.
// Identical keys mean identical inputs, which is what makes fail-then-pass
// proof of flakiness rather than a change in behavior.
type unitKey struct {
	Target string
	Hash   string
	Kind   change.StepKind
}

func (k unitKey) String() string {
	h := k.Hash
	if len(h) > 8 {
		h = h[:8]
	}
	return fmt.Sprintf("%s@%s/%s", k.Target, h, k.Kind)
}

// RetryPolicy bounds in-place step retries.
type RetryPolicy struct {
	// MaxAttempts is the execution bound per step-unit per build (<=0: 2).
	MaxAttempts int
	// BaseBackoff starts the deterministic exponential backoff between
	// attempts (0: retry immediately). No jitter: determinism first.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (0: uncapped).
	MaxBackoff time.Duration
	// EpochBudget is the number of retries granted per planner epoch
	// (<=0: 64); BeginEpoch refills it.
	EpochBudget int
}

// Backoff returns the wait before the given attempt (attempt 2 waits
// BaseBackoff, attempt 3 twice that, …, capped at MaxBackoff).
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	if p.BaseBackoff <= 0 || attempt <= 1 {
		return 0
	}
	d := p.BaseBackoff
	for i := 2; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// Config tunes the reliability layer.
type Config struct {
	// LegacyNoRetry disables retries, flake detection, quarantine, and
	// verification re-runs — the fail-fast baseline, kept for ablation.
	LegacyNoRetry bool
	// Retry bounds in-place step retries; zero fields take defaults.
	Retry RetryPolicy
	// QuarantineThreshold is the per-kind flake rate (confirmed flake events
	// over recorded units) beyond which a step kind is quarantined (<=0: 0.1).
	QuarantineThreshold float64
	// QuarantineMinSamples is the minimum recorded units of a kind before
	// its rate is trusted (<=0: 20).
	QuarantineMinSamples int
	// HistoryCap bounds the per-identity history map (<=0: 8192). Only
	// identities that have failed at least once occupy a slot.
	HistoryCap int
	// Sleep waits out retry backoff; injectable for tests. The default waits
	// on a real timer, honoring context cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
	// Events, when non-nil, receives flaky-detected events.
	Events *events.Bus
}

// Reliability owns the detector, the retry policy state, and the planner's
// verification decisions. All methods are safe for concurrent use.
type Reliability struct {
	cfg Config

	mu          sync.Mutex
	hist        map[unitKey]*unitHistory
	kinds       map[change.StepKind]*kindTally
	quarantined map[change.StepKind]bool
	budget      int
	stats       Stats
	injector    *Injector
}

// unitHistory tracks one content-addressed step-unit identity (created on
// first failure; never-failed units only count in the kind tally).
type unitHistory struct {
	fails       int
	passes      int
	consecFails int
	flaky       bool // a pass was observed after a failure: flakiness proven
}

// kindTally aggregates per step kind for the quarantine rate.
type kindTally struct {
	units       int // recorded executions
	flakeEvents int // fail→pass transitions observed
}

// Genuineness cutoffs: two consecutive failures on identical inputs make a
// failure confirmed-genuine (no more in-place retries); four with no pass
// ever make it strongly genuine (no verification re-run either, except for
// quarantined kinds).
const (
	genuineCutoff         = 2
	stronglyGenuineCutoff = 4
)

// New creates a Reliability layer with defaults applied.
func New(cfg Config) *Reliability {
	if cfg.Retry.MaxAttempts <= 0 {
		cfg.Retry.MaxAttempts = 2
	}
	if cfg.Retry.EpochBudget <= 0 {
		cfg.Retry.EpochBudget = 64
	}
	if cfg.QuarantineThreshold <= 0 {
		cfg.QuarantineThreshold = 0.1
	}
	if cfg.QuarantineMinSamples <= 0 {
		cfg.QuarantineMinSamples = 20
	}
	if cfg.HistoryCap <= 0 {
		cfg.HistoryCap = 8192
	}
	if cfg.Sleep == nil {
		cfg.Sleep = defaultSleep
	}
	return &Reliability{
		cfg:         cfg,
		hist:        map[unitKey]*unitHistory{},
		kinds:       map[change.StepKind]*kindTally{},
		quarantined: map[change.StepKind]bool{},
		budget:      cfg.Retry.EpochBudget,
	}
}

// SetInjector attaches the fault injector whose counters Stats should merge.
func (r *Reliability) SetInjector(in *Injector) {
	r.mu.Lock()
	r.injector = in
	r.mu.Unlock()
}

// BeginEpoch refills the per-epoch retry budget; the planner calls it once
// per Tick.
func (r *Reliability) BeginEpoch() {
	r.mu.Lock()
	r.budget = r.cfg.Retry.EpochBudget
	r.mu.Unlock()
}

// Quarantine force-quarantines a step kind (operator action; also used by
// tests). Quarantined steps still run but cannot solely reject a change.
func (r *Reliability) Quarantine(kind change.StepKind) {
	r.mu.Lock()
	if !r.quarantined[kind] {
		r.quarantined[kind] = true
		r.stats.QuarantinedKinds++
	}
	r.mu.Unlock()
}

// Quarantined reports whether the kind is currently quarantined.
func (r *Reliability) Quarantined(kind change.StepKind) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.quarantined[kind]
}

// Stats returns a snapshot of all reliability counters, injector included.
func (r *Reliability) Stats() Stats {
	r.mu.Lock()
	s := r.stats
	inj := r.injector
	r.mu.Unlock()
	if inj != nil {
		is := inj.Stats()
		s.InjectedTransients = is.Transients
		s.InjectedSlows = is.Slows
		s.InjectedStucks = is.Stucks
		s.InjectedCrashes = is.Crashes
	}
	return s
}

// Wrap layers the retry/detection runner over inner. A nil inner with
// nothing to perturb stays nil (buildsys's always-succeed fast path);
// LegacyNoRetry returns inner unchanged.
func (r *Reliability) Wrap(inner buildsys.StepRunner) buildsys.StepRunner {
	if inner == nil || r.cfg.LegacyNoRetry {
		return inner
	}
	return &retryRunner{r: r, inner: inner}
}

// record folds one step-unit outcome into the detector. Returns events to
// publish (computed under the lock, published outside it).
func (r *Reliability) record(key unitKey, ok bool) {
	var evs []events.Event
	r.mu.Lock()
	t := r.kinds[key.Kind]
	if t == nil {
		t = &kindTally{}
		r.kinds[key.Kind] = t
	}
	t.units++
	r.stats.UnitsRecorded++
	h := r.hist[key]
	if ok {
		if h != nil {
			h.passes++
			if h.consecFails > 0 {
				// Fail followed by pass on identical inputs: flakiness proven.
				h.consecFails = 0
				t.flakeEvents++
				r.stats.FlakesConfirmed++
				if !h.flaky {
					h.flaky = true
					r.stats.FlakyUnits++
					evs = append(evs, events.Event{
						Type:   events.TypeFlakyDetected,
						Detail: fmt.Sprintf("step-unit %s passed after failing on identical inputs", key),
					})
				}
				if !r.quarantined[key.Kind] && t.units >= r.cfg.QuarantineMinSamples &&
					float64(t.flakeEvents)/float64(t.units) >= r.cfg.QuarantineThreshold {
					r.quarantined[key.Kind] = true
					r.stats.QuarantinedKinds++
					evs = append(evs, events.Event{
						Type: events.TypeFlakyDetected,
						Detail: fmt.Sprintf("step kind %s quarantined: flake rate %.3f over %d units",
							key.Kind, float64(t.flakeEvents)/float64(t.units), t.units),
					})
				}
			}
		}
		r.mu.Unlock()
	} else {
		if h == nil {
			if len(r.hist) < r.cfg.HistoryCap {
				h = &unitHistory{}
				r.hist[key] = h
			} else {
				r.stats.HistoryDropped++
			}
		}
		if h != nil {
			h.fails++
			h.consecFails++
			if h.consecFails == genuineCutoff {
				r.stats.GenuineFailures++
			}
		}
		r.mu.Unlock()
	}
	if r.cfg.Events != nil {
		for _, ev := range evs {
			r.cfg.Events.Publish(ev)
		}
	}
}

// allowRetry decides whether a just-failed step-unit may run again: the
// identity must not be confirmed genuine, and a budget token must be
// available. Called after the failure was recorded.
func (r *Reliability) allowRetry(key unitKey, addressable bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if addressable {
		if h := r.hist[key]; h != nil && h.consecFails >= genuineCutoff {
			r.stats.GenuineShortCircuits++
			return false
		}
	}
	if r.budget <= 0 {
		r.stats.RetryBudgetDenied++
		return false
	}
	r.budget--
	r.stats.Retries++
	return true
}

// stepKindByName finds the failing step's kind in the request's step list.
func stepKindByName(steps []change.BuildStep, name string) (change.StepKind, bool) {
	for _, s := range steps {
		if s.Name == name {
			return s.Kind, true
		}
	}
	return 0, false
}

// ShouldVerifyBuild reports whether a failed build's failing step is suspect
// enough to earn one verification re-run of the same request before the
// planner resolves the change to StateRejected. Quarantined kinds always
// qualify (quarantine means "cannot solely reject") and bypass the retry
// budget; otherwise the failing unit's identity must be known flaky — or its
// kind must have confirmed flakes — and not strongly genuine.
func (r *Reliability) ShouldVerifyBuild(req buildsys.Request, res buildsys.Result) bool {
	if r == nil || r.cfg.LegacyNoRetry || res.OK || errors.Is(res.Err, buildsys.ErrAborted) {
		return false
	}
	kind, ok := stepKindByName(req.Steps, res.FailedStep)
	if !ok {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.quarantined[kind] {
		r.stats.Verifications++
		r.stats.QuarantineVerifications++
		return true
	}
	hash := req.Targets[res.FailedTarget]
	if res.FailedTarget == "" || hash == "" {
		return false
	}
	key := unitKey{Target: res.FailedTarget, Hash: hash, Kind: kind}
	h := r.hist[key]
	if h != nil && h.consecFails >= stronglyGenuineCutoff && !h.flaky {
		return false // overwhelming evidence the failure is real
	}
	t := r.kinds[kind]
	suspect := (h != nil && h.flaky) || (t != nil && t.flakeEvents > 0)
	if !suspect {
		return false
	}
	if r.budget <= 0 {
		r.stats.RetryBudgetDenied++
		return false
	}
	r.budget--
	r.stats.Verifications++
	return true
}

// NoteAverted records that a verification re-run passed and a rejection was
// averted (the planner calls it when committing a verified build's change).
func (r *Reliability) NoteAverted() {
	r.mu.Lock()
	r.stats.RejectionsAverted++
	r.mu.Unlock()
}

// retryRunner is the StepRunner layer Wrap installs: it records every
// content-addressed outcome in the detector and retries suspect failures in
// place under the policy. Aborts (cancelled builds, injected crashes) pass
// through unrecorded — a torn-down build says nothing about the step.
type retryRunner struct {
	r     *Reliability
	inner buildsys.StepRunner
}

// RunStep implements buildsys.StepRunner (no content address available:
// outcomes are not recorded, but retries still apply).
func (w *retryRunner) RunStep(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
	return w.RunStepHash(ctx, step, target, "", snap)
}

// RunStepHash implements buildsys.StepHashRunner.
func (w *retryRunner) RunStepHash(ctx context.Context, step change.BuildStep, target, hash string, snap repo.Snapshot) error {
	key := unitKey{Target: target, Hash: hash, Kind: step.Kind}
	addressable := target != "" && hash != ""
	for attempt := 1; ; attempt++ {
		err := w.invoke(ctx, step, target, hash, snap)
		if err == nil {
			if addressable {
				w.r.record(key, true)
			}
			return nil
		}
		if errors.Is(err, buildsys.ErrAborted) || ctx.Err() != nil {
			return err
		}
		if addressable {
			w.r.record(key, false)
		}
		if attempt >= w.r.cfg.Retry.MaxAttempts || !w.r.allowRetry(key, addressable) {
			return err
		}
		if d := w.r.cfg.Retry.Backoff(attempt + 1); d > 0 {
			if serr := w.r.cfg.Sleep(ctx, d); serr != nil {
				return err
			}
		}
	}
}

func (w *retryRunner) invoke(ctx context.Context, step change.BuildStep, target, hash string, snap repo.Snapshot) error {
	if hr, ok := w.inner.(buildsys.StepHashRunner); ok {
		return hr.RunStepHash(ctx, step, target, hash, snap)
	}
	return w.inner.RunStep(ctx, step, target, snap)
}
