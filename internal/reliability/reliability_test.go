package reliability

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/events"
	"mastergreen/internal/repo"
)

func noSleep(context.Context, time.Duration) error { return nil }

// hashRunnerFunc adapts a function to both runner interfaces.
type hashRunnerFunc func(ctx context.Context, step change.BuildStep, target, hash string) error

func (f hashRunnerFunc) RunStep(ctx context.Context, step change.BuildStep, target string, _ repo.Snapshot) error {
	return f(ctx, step, target, "")
}

func (f hashRunnerFunc) RunStepHash(ctx context.Context, step change.BuildStep, target, hash string, _ repo.Snapshot) error {
	return f(ctx, step, target, hash)
}

func unitStep(kind change.StepKind, name string) change.BuildStep {
	return change.BuildStep{Name: name, Kind: kind}
}

// driveInjector executes a fixed unit matrix through the injector and
// returns its canonical schedule.
func driveInjector(t *testing.T, seed int64, shuffle bool) []Injection {
	t.Helper()
	in := NewInjector(nil, rand.New(rand.NewSource(seed)), InjectorConfig{
		DefaultTransientRate: 0.3,
		CrashRate:            0.05,
		StuckRate:            0.05,
		SlowRate:             0.1,
		Sleep:                noSleep,
	})
	type call struct {
		step   change.BuildStep
		target string
		hash   string
	}
	var calls []call
	for i := 0; i < 20; i++ {
		for _, k := range []change.StepKind{change.StepCompile, change.StepUnitTest} {
			calls = append(calls, call{
				step:   unitStep(k, k.String()),
				target: fmt.Sprintf("//t%02d", i),
				hash:   fmt.Sprintf("h%02d", i),
			})
		}
	}
	if shuffle {
		// Deterministic shuffle unrelated to the injector seed: exercises
		// order independence.
		sh := rand.New(rand.NewSource(999))
		sh.Shuffle(len(calls), func(a, b int) { calls[a], calls[b] = calls[b], calls[a] })
	}
	for _, c := range calls {
		// Each unit runs three attempts so retry draws are covered too.
		for a := 0; a < 3; a++ {
			_ = in.RunStepHash(context.Background(), c.step, c.target, c.hash, repo.Snapshot{})
		}
	}
	return in.Schedule()
}

// TestInjectorGoldenSchedule: the fault schedule is a pure function of the
// seed and the unit identities — identical across runs and across execution
// orders, different across seeds.
func TestInjectorGoldenSchedule(t *testing.T) {
	a := driveInjector(t, 42, false)
	b := driveInjector(t, 42, false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no faults injected at 30% transient rate over 120 executions")
	}
	shuffled := driveInjector(t, 42, true)
	if !reflect.DeepEqual(a, shuffled) {
		t.Fatalf("execution order changed the schedule:\n%v\nvs\n%v", a, shuffled)
	}
	other := driveInjector(t, 43, false)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestInjectorAttemptIndependence: consecutive attempts of the same unit
// must draw independently — a transient on attempt 1 must not force a
// transient on attempt 2 (regression test for the FNV tail-byte bias).
func TestInjectorAttemptIndependence(t *testing.T) {
	in := NewInjector(nil, rand.New(rand.NewSource(7)), InjectorConfig{
		DefaultTransientRate: 0.2, Sleep: noSleep,
	})
	step := unitStep(change.StepUnitTest, "unit")
	firstFails, bothFail := 0, 0
	for i := 0; i < 2000; i++ {
		target := fmt.Sprintf("//t%d", i)
		err1 := in.RunStepHash(context.Background(), step, target, "h", repo.Snapshot{})
		err2 := in.RunStepHash(context.Background(), step, target, "h", repo.Snapshot{})
		if err1 != nil {
			firstFails++
			if err2 != nil {
				bothFail++
			}
		}
	}
	if firstFails < 300 || firstFails > 500 {
		t.Fatalf("first-attempt failures = %d over 2000 at rate 0.2, want ≈400", firstFails)
	}
	// Independent draws: P(fail2 | fail1) ≈ 0.2, so ≈20%% of firstFails.
	if bothFail > firstFails/2 {
		t.Errorf("attempt 2 failed %d of %d times attempt 1 failed — draws are correlated", bothFail, firstFails)
	}
	if bothFail == 0 {
		t.Error("attempt 2 never failed after attempt 1 — draws are anti-correlated")
	}
}

// TestInjectorFaultClasses drives each fault class through a rate-1 config.
func TestInjectorFaultClasses(t *testing.T) {
	ctx := context.Background()
	step := unitStep(change.StepCompile, "compile")

	crash := NewInjector(nil, nil, InjectorConfig{CrashRate: 1, Sleep: noSleep})
	if err := crash.RunStepHash(ctx, step, "//a", "h", repo.Snapshot{}); !errors.Is(err, buildsys.ErrAborted) {
		t.Errorf("crash fault: got %v, want ErrAborted", err)
	}

	stuck := NewInjector(nil, nil, InjectorConfig{StuckRate: 1, StuckDelay: time.Millisecond, Sleep: noSleep})
	if err := stuck.RunStepHash(ctx, step, "//a", "h", repo.Snapshot{}); !errors.Is(err, ErrInjectedTransient) {
		t.Errorf("stuck fault: got %v, want wrapped ErrInjectedTransient", err)
	}

	var slept time.Duration
	slow := NewInjector(nil, nil, InjectorConfig{
		SlowRate: 1, SlowDelay: 5 * time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) error { slept += d; return nil },
	})
	if err := slow.RunStepHash(ctx, step, "//a", "h", repo.Snapshot{}); err != nil {
		t.Errorf("slow fault must still succeed: %v", err)
	}
	if slept != 5*time.Millisecond {
		t.Errorf("slow fault slept %v, want 5ms", slept)
	}

	tr := NewInjector(nil, nil, InjectorConfig{DefaultTransientRate: 1, MaxTransientsPerUnit: 1, Sleep: noSleep})
	if err := tr.RunStepHash(ctx, step, "//a", "h", repo.Snapshot{}); !errors.Is(err, ErrInjectedTransient) {
		t.Errorf("transient fault: got %v, want ErrInjectedTransient", err)
	}
	// MaxTransientsPerUnit=1: the second attempt on identical inputs passes —
	// the canonical flaky step.
	if err := tr.RunStepHash(ctx, step, "//a", "h", repo.Snapshot{}); err != nil {
		t.Errorf("capped transient must pass on retry: %v", err)
	}
	st := tr.Stats()
	if st.Transients != 1 || st.Total() != 1 {
		t.Errorf("stats = %+v, want exactly 1 transient", st)
	}
}

// TestRetryPolicyBackoff checks the deterministic doubling and its cap.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := map[int]time.Duration{
		1: 0, // first attempt never waits
		2: 10 * time.Millisecond,
		3: 20 * time.Millisecond,
		4: 35 * time.Millisecond, // 40ms capped
		5: 35 * time.Millisecond,
	}
	for attempt, d := range want {
		if got := p.Backoff(attempt); got != d {
			t.Errorf("Backoff(%d) = %v, want %v", attempt, got, d)
		}
	}
	if got := (RetryPolicy{}).Backoff(3); got != 0 {
		t.Errorf("zero policy Backoff = %v, want 0 (retry immediately)", got)
	}
}

// TestRetryAbsorbsTransient: a unit that fails once on identical inputs and
// then passes is retried in place, the build step succeeds, and the
// detector confirms the flake.
func TestRetryAbsorbsTransient(t *testing.T) {
	bus := events.NewBus(64)
	r := New(Config{Events: bus, Sleep: noSleep})
	calls := 0
	runner := r.Wrap(hashRunnerFunc(func(_ context.Context, _ change.BuildStep, _, _ string) error {
		calls++
		if calls == 1 {
			return errors.New("transient")
		}
		return nil
	}))
	err := runner.(buildsys.StepHashRunner).RunStepHash(
		context.Background(), unitStep(change.StepUnitTest, "unit"), "//a", "h1", repo.Snapshot{})
	if err != nil {
		t.Fatalf("retry did not absorb the transient: %v", err)
	}
	if calls != 2 {
		t.Fatalf("inner ran %d times, want 2", calls)
	}
	st := r.Stats()
	if st.Retries != 1 || st.FlakesConfirmed != 1 || st.FlakyUnits != 1 {
		t.Errorf("stats = %+v, want 1 retry, 1 confirmed flake, 1 flaky unit", st)
	}
	found := false
	for _, ev := range bus.Since(0) {
		if ev.Type == events.TypeFlakyDetected {
			found = true
		}
	}
	if !found {
		t.Error("no flaky-detected event published")
	}
}

// TestGenuineShortCircuit: two consecutive failures on identical inputs
// stop further in-place retries even below MaxAttempts.
func TestGenuineShortCircuit(t *testing.T) {
	r := New(Config{Retry: RetryPolicy{MaxAttempts: 5}, Sleep: noSleep})
	calls := 0
	runner := r.Wrap(hashRunnerFunc(func(_ context.Context, _ change.BuildStep, _, _ string) error {
		calls++
		return errors.New("really broken")
	}))
	err := runner.(buildsys.StepHashRunner).RunStepHash(
		context.Background(), unitStep(change.StepCompile, "compile"), "//a", "h1", repo.Snapshot{})
	if err == nil {
		t.Fatal("genuine failure must still fail")
	}
	if calls != 2 {
		t.Fatalf("inner ran %d times, want 2 (genuine cutoff)", calls)
	}
	st := r.Stats()
	if st.GenuineFailures != 1 || st.GenuineShortCircuits != 1 {
		t.Errorf("stats = %+v, want 1 genuine failure + 1 short circuit", st)
	}
}

// TestRetryBudget: the per-epoch budget bounds retries, and BeginEpoch
// refills it.
func TestRetryBudget(t *testing.T) {
	r := New(Config{Retry: RetryPolicy{MaxAttempts: 2, EpochBudget: 1}, Sleep: noSleep})
	fail := hashRunnerFunc(func(_ context.Context, _ change.BuildStep, _, _ string) error {
		return errors.New("flaky")
	})
	runner := r.Wrap(fail).(buildsys.StepHashRunner)
	step := unitStep(change.StepUnitTest, "unit")
	_ = runner.RunStepHash(context.Background(), step, "//a", "h1", repo.Snapshot{}) // consumes the 1 token
	_ = runner.RunStepHash(context.Background(), step, "//b", "h2", repo.Snapshot{}) // denied
	st := r.Stats()
	if st.Retries != 1 || st.RetryBudgetDenied != 1 {
		t.Errorf("stats = %+v, want 1 retry and 1 budget denial", st)
	}
	r.BeginEpoch()
	_ = runner.RunStepHash(context.Background(), step, "//c", "h3", repo.Snapshot{})
	if st = r.Stats(); st.Retries != 2 {
		t.Errorf("after BeginEpoch refill, retries = %d, want 2", st.Retries)
	}
}

// TestAbortsUnrecorded: cancelled work says nothing about the step, so
// aborts neither retry nor pollute the detector.
func TestAbortsUnrecorded(t *testing.T) {
	r := New(Config{Sleep: noSleep})
	calls := 0
	runner := r.Wrap(hashRunnerFunc(func(_ context.Context, _ change.BuildStep, _, _ string) error {
		calls++
		return buildsys.ErrAborted
	})).(buildsys.StepHashRunner)
	err := runner.RunStepHash(context.Background(), unitStep(change.StepCompile, "compile"), "//a", "h", repo.Snapshot{})
	if !errors.Is(err, buildsys.ErrAborted) {
		t.Fatalf("got %v, want ErrAborted", err)
	}
	if calls != 1 {
		t.Errorf("aborted step ran %d times, want 1 (no retry)", calls)
	}
	if st := r.Stats(); st.UnitsRecorded != 0 {
		t.Errorf("aborted step recorded %d units, want 0", st.UnitsRecorded)
	}
}

// TestWrapPassThrough: nil stays nil (buildsys fast path) and LegacyNoRetry
// returns the inner runner unchanged.
func TestWrapPassThrough(t *testing.T) {
	if r := New(Config{}); r.Wrap(nil) != nil {
		t.Error("Wrap(nil) must stay nil")
	}
	inner := NewInjector(nil, nil, InjectorConfig{})
	legacy := New(Config{LegacyNoRetry: true})
	if got := legacy.Wrap(inner); got != buildsys.StepRunner(inner) {
		t.Error("LegacyNoRetry Wrap must return inner unchanged")
	}
}

// TestQuarantineByRate: a kind whose confirmed flake rate crosses the
// threshold is quarantined automatically.
func TestQuarantineByRate(t *testing.T) {
	r := New(Config{QuarantineThreshold: 0.2, QuarantineMinSamples: 4, Sleep: noSleep})
	step := unitStep(change.StepUITest, "ui")
	// Drive fail→pass cycles on distinct identities: each confirms a flake.
	for i := 0; i < 3; i++ {
		key := unitKey{Target: fmt.Sprintf("//t%d", i), Hash: "h", Kind: step.Kind}
		r.record(key, false)
		r.record(key, true)
	}
	if !r.Quarantined(step.Kind) {
		t.Fatalf("kind not quarantined at flake rate 3/6 with threshold 0.2: %+v", r.Stats())
	}
	if st := r.Stats(); st.QuarantinedKinds != 1 {
		t.Errorf("QuarantinedKinds = %d, want 1", st.QuarantinedKinds)
	}
}

// TestShouldVerifyBuild covers the grant/deny matrix.
func TestShouldVerifyBuild(t *testing.T) {
	steps := []change.BuildStep{
		unitStep(change.StepCompile, "compile"),
		unitStep(change.StepUnitTest, "unit"),
	}
	req := buildsys.Request{Steps: steps, Targets: map[string]string{"//a": "h1"}}
	failedRes := buildsys.Result{FailedStep: "unit", FailedTarget: "//a", Err: errors.New("boom")}

	t.Run("ok build", func(t *testing.T) {
		r := New(Config{})
		if r.ShouldVerifyBuild(req, buildsys.Result{OK: true}) {
			t.Error("verified an OK build")
		}
	})
	t.Run("aborted build", func(t *testing.T) {
		r := New(Config{})
		if r.ShouldVerifyBuild(req, buildsys.Result{Err: buildsys.ErrAborted, FailedStep: "unit"}) {
			t.Error("verified an aborted build")
		}
	})
	t.Run("legacy", func(t *testing.T) {
		r := New(Config{LegacyNoRetry: true})
		r.Quarantine(change.StepUnitTest)
		if r.ShouldVerifyBuild(req, failedRes) {
			t.Error("LegacyNoRetry granted a verification")
		}
	})
	t.Run("no suspicion", func(t *testing.T) {
		r := New(Config{})
		if r.ShouldVerifyBuild(req, failedRes) {
			t.Error("granted verification with no flake evidence")
		}
	})
	t.Run("flaky identity", func(t *testing.T) {
		r := New(Config{})
		key := unitKey{Target: "//a", Hash: "h1", Kind: change.StepUnitTest}
		r.record(key, false)
		r.record(key, true) // flake proven
		if !r.ShouldVerifyBuild(req, failedRes) {
			t.Error("denied verification for a known-flaky identity")
		}
		if st := r.Stats(); st.Verifications != 1 {
			t.Errorf("Verifications = %d, want 1", st.Verifications)
		}
	})
	t.Run("kind-level suspicion", func(t *testing.T) {
		r := New(Config{})
		other := unitKey{Target: "//z", Hash: "hz", Kind: change.StepUnitTest}
		r.record(other, false)
		r.record(other, true) // a different unit of the same kind flaked
		if !r.ShouldVerifyBuild(req, failedRes) {
			t.Error("denied verification despite kind-level flake evidence")
		}
	})
	t.Run("strongly genuine", func(t *testing.T) {
		r := New(Config{})
		// Kind has flake evidence, but this identity failed 4 times straight.
		other := unitKey{Target: "//z", Hash: "hz", Kind: change.StepUnitTest}
		r.record(other, false)
		r.record(other, true)
		key := unitKey{Target: "//a", Hash: "h1", Kind: change.StepUnitTest}
		for i := 0; i < stronglyGenuineCutoff; i++ {
			r.record(key, false)
		}
		if r.ShouldVerifyBuild(req, failedRes) {
			t.Error("granted verification for a strongly genuine failure")
		}
	})
	t.Run("quarantined kind bypasses budget", func(t *testing.T) {
		r := New(Config{Retry: RetryPolicy{EpochBudget: 1}})
		r.mu.Lock()
		r.budget = 0
		r.mu.Unlock()
		r.Quarantine(change.StepUnitTest)
		if !r.ShouldVerifyBuild(req, failedRes) {
			t.Error("quarantined kind denied verification")
		}
		if st := r.Stats(); st.QuarantineVerifications != 1 {
			t.Errorf("QuarantineVerifications = %d, want 1", st.QuarantineVerifications)
		}
	})
	t.Run("unattributed failure", func(t *testing.T) {
		r := New(Config{})
		r.record(unitKey{Target: "//z", Hash: "hz", Kind: change.StepUnitTest}, false)
		r.record(unitKey{Target: "//z", Hash: "hz", Kind: change.StepUnitTest}, true)
		res := failedRes
		res.FailedTarget = ""
		if r.ShouldVerifyBuild(req, res) {
			t.Error("granted verification without a failed-target attribution")
		}
	})
}

// TestConcurrentStress exercises concurrent retries, detector updates, and
// stat readers under -race.
func TestConcurrentStress(t *testing.T) {
	inj := NewInjector(nil, rand.New(rand.NewSource(11)), InjectorConfig{
		DefaultTransientRate: 0.3,
		MaxTransientsPerUnit: 1,
		CrashRate:            0.02,
		Sleep:                noSleep,
	})
	r := New(Config{Retry: RetryPolicy{MaxAttempts: 3, EpochBudget: 100000}, Sleep: noSleep})
	r.SetInjector(inj)
	runner := r.Wrap(inj).(buildsys.StepHashRunner)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			step := unitStep(change.StepUnitTest, "unit")
			for i := 0; i < 200; i++ {
				target := fmt.Sprintf("//t%d", (g*200+i)%97)
				hash := fmt.Sprintf("h%d", i%13)
				_ = runner.RunStepHash(context.Background(), step, target, hash, repo.Snapshot{})
			}
		}(g)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		req := buildsys.Request{
			Steps:   []change.BuildStep{unitStep(change.StepUnitTest, "unit")},
			Targets: map[string]string{"//t1": "h1"},
		}
		res := buildsys.Result{FailedStep: "unit", FailedTarget: "//t1", Err: errors.New("x")}
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Stats()
			_ = inj.Schedule()
			_ = r.ShouldVerifyBuild(req, res)
			r.BeginEpoch()
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()

	st := r.Stats()
	if st.UnitsRecorded == 0 {
		t.Error("stress run recorded no units")
	}
	if st.InjectedTransients == 0 {
		t.Error("stress run injected no transients")
	}
}
