package reliability

import "mastergreen/internal/metrics"

// Stats counts the reliability layer's work. Injector counters are zero when
// no fault injector is attached.
type Stats struct {
	// Injected faults, by class.
	InjectedTransients int
	InjectedSlows      int
	InjectedStucks     int
	InjectedCrashes    int

	// Detector: content-addressed step-unit outcomes recorded, fail→pass
	// flake confirmations, identities ever proven flaky, identities whose
	// failure was confirmed genuine (two consecutive fails), kinds
	// quarantined, and histories not tracked because the cap was reached.
	UnitsRecorded    int
	FlakesConfirmed  int
	FlakyUnits       int
	GenuineFailures  int
	QuarantinedKinds int
	HistoryDropped   int

	// Retry policy: in-place retries granted, denials by exhausted epoch
	// budget, and retries skipped because the identity was confirmed genuine.
	Retries              int
	RetryBudgetDenied    int
	GenuineShortCircuits int

	// Planner integration: verification re-runs granted (quarantine-grants
	// counted separately as well) and rejections averted by a passing re-run.
	Verifications           int
	QuarantineVerifications int
	RejectionsAverted       int
}

// InjectedFaults sums all injected fault classes.
func (s Stats) InjectedFaults() int {
	return s.InjectedTransients + s.InjectedSlows + s.InjectedStucks + s.InjectedCrashes
}

// Gauges renders the counters as ordered metrics gauges.
func (s Stats) Gauges() metrics.Gauges {
	return metrics.Gauges{
		{Name: "injected_faults", Value: float64(s.InjectedFaults())},
		{Name: "injected_transients", Value: float64(s.InjectedTransients)},
		{Name: "injected_crashes", Value: float64(s.InjectedCrashes)},
		{Name: "units_recorded", Value: float64(s.UnitsRecorded)},
		{Name: "flakes_confirmed", Value: float64(s.FlakesConfirmed)},
		{Name: "flaky_units", Value: float64(s.FlakyUnits)},
		{Name: "genuine_failures", Value: float64(s.GenuineFailures)},
		{Name: "quarantined_kinds", Value: float64(s.QuarantinedKinds)},
		{Name: "retries", Value: float64(s.Retries)},
		{Name: "retry_budget_denied", Value: float64(s.RetryBudgetDenied)},
		{Name: "verifications", Value: float64(s.Verifications)},
		{Name: "rejections_averted", Value: float64(s.RejectionsAverted)},
	}
}
