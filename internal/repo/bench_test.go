package repo

import (
	"fmt"
	"testing"
)

// largeTree builds a t-file snapshot the way the serving path sees one: a
// flattened base a long commit chain has grown onto.
func largeTree(t int) Snapshot {
	files := make(map[string]string, t)
	for i := 0; i < t; i++ {
		files[fmt.Sprintf("sub%03d/f%d.go", i%32, i/32)] = fmt.Sprintf("content %d", i)
	}
	return NewSnapshot(files)
}

// BenchmarkSnapshotApplyLargeTree is the serving path's per-commit cost: one
// single-file patch applied to a 4096-file tree. The layered representation
// copies only the delta since the last flatten (amortized O(√tree)); the old
// full-map copy made this O(tree) and dominated the sustained-load CPU
// profile, pushing submit P99 from ~3ms to ~300ms at 350 commits/s on one
// core.
func BenchmarkSnapshotApplyLargeTree(b *testing.B) {
	snap := largeTree(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := snap.Apply(Patch{Changes: []FileChange{{
			Path: fmt.Sprintf("new/b%d.go", i), Op: OpCreate, NewContent: "x",
		}}})
		if err != nil {
			b.Fatal(err)
		}
		snap = next
	}
}

// BenchmarkChangedPathsNearbyHeads diffs two heads a few commits apart — the
// conflict analyzer's selective-invalidation query on every head move. With a
// shared base layer this compares only the deltas, not the whole tree.
func BenchmarkChangedPathsNearbyHeads(b *testing.B) {
	old := largeTree(4096)
	cur := old
	for i := 0; i < 3; i++ {
		next, err := cur.Apply(Patch{Changes: []FileChange{{
			Path: fmt.Sprintf("new/h%d.go", i), Op: OpCreate, NewContent: "y",
		}}})
		if err != nil {
			b.Fatal(err)
		}
		cur = next
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := cur.ChangedPaths(old); len(got) != 3 {
			b.Fatalf("changed paths = %d, want 3", len(got))
		}
	}
}
