package repo

import "testing"

// TestContentIDIncremental: the fingerprint maintained incrementally by Apply
// must equal the one computed from scratch over the same files.
func TestContentIDIncremental(t *testing.T) {
	base := NewSnapshot(map[string]string{
		"a.go":    "a v1",
		"b.go":    "b v1",
		"sub/c":   "c v1",
		"sub/d":   "d v1",
		"deleted": "gone soon",
	})
	next, err := base.Apply(Patch{Changes: []FileChange{
		{Path: "a.go", Op: OpModify, BaseHash: HashContent("a v1"), NewContent: "a v2"},
		{Path: "new.go", Op: OpCreate, NewContent: "new v1"},
		{Path: "deleted", Op: OpDelete, BaseHash: HashContent("gone soon")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewSnapshot(map[string]string{
		"a.go":   "a v2",
		"b.go":   "b v1",
		"sub/c":  "c v1",
		"sub/d":  "d v1",
		"new.go": "new v1",
	})
	if next.ContentID() != fresh.ContentID() {
		t.Fatalf("incremental ID %s != from-scratch ID %s", next.ContentID(), fresh.ContentID())
	}
	if next.ContentID() == base.ContentID() {
		t.Fatal("patched snapshot kept the base's content ID")
	}
}

// TestContentIDRoundTrip: editing a file and editing it back restores the ID.
func TestContentIDRoundTrip(t *testing.T) {
	base := NewSnapshot(map[string]string{"f": "v1", "g": "v1"})
	mid, err := base.Apply(Patch{Changes: []FileChange{
		{Path: "f", Op: OpModify, BaseHash: HashContent("v1"), NewContent: "v2"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := mid.Apply(Patch{Changes: []FileChange{
		{Path: "f", Op: OpModify, BaseHash: HashContent("v2"), NewContent: "v1"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if back.ContentID() != base.ContentID() {
		t.Fatalf("round-trip ID %s != original %s", back.ContentID(), base.ContentID())
	}
	if mid.ContentID() == base.ContentID() {
		t.Fatal("edit did not change the content ID")
	}
}

// TestContentIDPathSensitivity: the same content under a different path is a
// different snapshot.
func TestContentIDPathSensitivity(t *testing.T) {
	a := NewSnapshot(map[string]string{"x": "same"})
	b := NewSnapshot(map[string]string{"y": "same"})
	if a.ContentID() == b.ContentID() {
		t.Fatal("path must be part of the fingerprint")
	}
}
