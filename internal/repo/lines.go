package repo

import (
	"fmt"
	"strings"
)

// OpEditLines is a line-range edit: replace OldLines at (around) StartLine
// with NewLines. Unlike OpModify — which conflicts whenever anyone else
// touched the file — line edits merge like git hunks: edits to disjoint
// regions of the same file compose, and the hunk is located by content with
// positional fuzz, so edits above a hunk shifting line numbers do not break
// it. A real conflict (someone rewrote the same lines) still fails with
// ErrMergeConflict.
const OpEditLines FileOp = 3

// editLinesFuzz is how far from StartLine the hunk's context may have moved.
const editLinesFuzz = 40

// applyEditLines applies a line-range edit to content, preserving the
// file's trailing-newline convention.
func applyEditLines(content string, fc FileChange) (string, error) {
	out, err := applyEditLinesRaw(content, fc)
	if err != nil {
		return "", err
	}
	if content != "" && !strings.HasSuffix(content, "\n") {
		out = strings.TrimSuffix(out, "\n")
	}
	return out, nil
}

func applyEditLinesRaw(content string, fc FileChange) (string, error) {
	lines := splitLines(content)
	start := fc.StartLine - 1 // to 0-based
	if start < 0 {
		return "", fmt.Errorf("repo: %s: bad StartLine %d", fc.Path, fc.StartLine)
	}
	if len(fc.OldLines) == 0 {
		// Pure insertion at (possibly clamped) position.
		if start > len(lines) {
			start = len(lines)
		}
		out := make([]string, 0, len(lines)+len(fc.NewLines))
		out = append(out, lines[:start]...)
		out = append(out, fc.NewLines...)
		out = append(out, lines[start:]...)
		return joinLines(out), nil
	}
	// Locate the hunk: exact position first, then fuzz outward.
	pos, err := locateHunk(lines, fc.OldLines, start, fc.Path)
	if err != nil {
		return "", err
	}
	out := make([]string, 0, len(lines)-len(fc.OldLines)+len(fc.NewLines))
	out = append(out, lines[:pos]...)
	out = append(out, fc.NewLines...)
	out = append(out, lines[pos+len(fc.OldLines):]...)
	return joinLines(out), nil
}

// locateHunk finds where old appears in lines, preferring positions close to
// want. Ambiguity within the fuzz window is a conflict (cannot merge safely).
func locateHunk(lines, old []string, want int, path string) (int, error) {
	matchAt := func(pos int) bool {
		if pos < 0 || pos+len(old) > len(lines) {
			return false
		}
		for i, l := range old {
			if lines[pos+i] != l {
				return false
			}
		}
		return true
	}
	if matchAt(want) {
		return want, nil
	}
	found := -1
	for d := 1; d <= editLinesFuzz; d++ {
		for _, pos := range []int{want - d, want + d} {
			if matchAt(pos) {
				if found >= 0 && found != pos {
					return 0, fmt.Errorf("%w: %s: hunk at line %d is ambiguous", ErrMergeConflict, path, want+1)
				}
				if found < 0 {
					found = pos
				}
			}
		}
		if found >= 0 {
			return found, nil
		}
	}
	return 0, fmt.Errorf("%w: %s: lines around %d changed since patch base", ErrMergeConflict, path, want+1)
}

func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	trimmed := strings.TrimSuffix(s, "\n")
	return strings.Split(trimmed, "\n")
}

func joinLines(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	return strings.Join(lines, "\n") + "\n"
}

// EditLines builds a line-range FileChange: replace the file's lines
// [startLine, startLine+len(oldLines)) — verified against oldLines — with
// newLines. Line numbers are 1-based.
func EditLines(path string, startLine int, oldLines, newLines []string) FileChange {
	return FileChange{
		Path:      path,
		Op:        OpEditLines,
		StartLine: startLine,
		OldLines:  append([]string(nil), oldLines...),
		NewLines:  append([]string(nil), newLines...),
	}
}

// InsertLines builds a pure-insertion FileChange at the 1-based line.
func InsertLines(path string, startLine int, newLines []string) FileChange {
	return FileChange{
		Path:      path,
		Op:        OpEditLines,
		StartLine: startLine,
		NewLines:  append([]string(nil), newLines...),
	}
}
