package repo

import (
	"errors"
	"strings"
	"testing"
)

const poem = "alpha\nbravo\ncharlie\ndelta\necho\nfoxtrot\n"

func TestEditLinesBasic(t *testing.T) {
	s := NewSnapshot(map[string]string{"f.txt": poem})
	p := Patch{Changes: []FileChange{
		EditLines("f.txt", 3, []string{"charlie"}, []string{"CHARLIE", "charlie-2"}),
	}}
	next, err := s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := next.Read("f.txt")
	want := "alpha\nbravo\nCHARLIE\ncharlie-2\ndelta\necho\nfoxtrot\n"
	if got != want {
		t.Fatalf("got %q", got)
	}
}

func TestEditLinesDeletion(t *testing.T) {
	s := NewSnapshot(map[string]string{"f.txt": poem})
	p := Patch{Changes: []FileChange{
		EditLines("f.txt", 2, []string{"bravo", "charlie"}, nil),
	}}
	next, err := s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := next.Read("f.txt")
	if got != "alpha\ndelta\necho\nfoxtrot\n" {
		t.Fatalf("got %q", got)
	}
}

func TestInsertLines(t *testing.T) {
	s := NewSnapshot(map[string]string{"f.txt": poem})
	next, err := s.Apply(Patch{Changes: []FileChange{
		InsertLines("f.txt", 1, []string{"zero"}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := next.Read("f.txt")
	if !strings.HasPrefix(got, "zero\nalpha\n") {
		t.Fatalf("got %q", got)
	}
	// Insertion past EOF clamps to append.
	next, err = s.Apply(Patch{Changes: []FileChange{
		InsertLines("f.txt", 99, []string{"omega"}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ = next.Read("f.txt")
	if !strings.HasSuffix(got, "foxtrot\nomega\n") {
		t.Fatalf("got %q", got)
	}
}

// TestDisjointLineEditsMerge is the point of line-level patches: two changes
// editing different regions of the same file both land, in either order.
func TestDisjointLineEditsMerge(t *testing.T) {
	s := NewSnapshot(map[string]string{"f.txt": poem})
	p1 := Patch{Changes: []FileChange{
		EditLines("f.txt", 1, []string{"alpha"}, []string{"ALPHA", "alpha-extra"}),
	}}
	p2 := Patch{Changes: []FileChange{
		EditLines("f.txt", 5, []string{"echo"}, []string{"ECHO"}),
	}}
	// p1 then p2: p2's hunk moved down one line; fuzz finds it.
	mid, err := s.Apply(p1)
	if err != nil {
		t.Fatal(err)
	}
	both, err := mid.Apply(p2)
	if err != nil {
		t.Fatalf("disjoint edits conflicted: %v", err)
	}
	got, _ := both.Read("f.txt")
	want := "ALPHA\nalpha-extra\nbravo\ncharlie\ndelta\nECHO\nfoxtrot\n"
	if got != want {
		t.Fatalf("got %q", got)
	}
	// Reverse order gives the same result (commutes).
	mid2, err := s.Apply(p2)
	if err != nil {
		t.Fatal(err)
	}
	both2, err := mid2.Apply(p1)
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := both2.Read("f.txt")
	if got2 != want {
		t.Fatalf("order-dependent merge: %q vs %q", got2, want)
	}
}

func TestOverlappingLineEditsConflict(t *testing.T) {
	s := NewSnapshot(map[string]string{"f.txt": poem})
	p1 := Patch{Changes: []FileChange{
		EditLines("f.txt", 3, []string{"charlie"}, []string{"C1"}),
	}}
	p2 := Patch{Changes: []FileChange{
		EditLines("f.txt", 3, []string{"charlie"}, []string{"C2"}),
	}}
	mid, err := s.Apply(p1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.Apply(p2); !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("overlapping edits should conflict: %v", err)
	}
}

func TestEditLinesAmbiguousHunkConflicts(t *testing.T) {
	// Two identical regions near the target: the hunk location is ambiguous
	// and must be refused rather than guessed.
	content := "x\ndup\nx\ndup\nx\n"
	s := NewSnapshot(map[string]string{"f.txt": content})
	p := Patch{Changes: []FileChange{
		EditLines("f.txt", 3, []string{"dup"}, []string{"DUP"}),
	}}
	if _, err := s.Apply(p); !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("ambiguous hunk should conflict: %v", err)
	}
}

func TestEditLinesErrors(t *testing.T) {
	s := NewSnapshot(map[string]string{"f.txt": poem})
	// Missing file.
	if _, err := s.Apply(Patch{Changes: []FileChange{
		EditLines("nope.txt", 1, []string{"x"}, nil),
	}}); !errors.Is(err, ErrNoSuchFile) {
		t.Fatalf("err = %v", err)
	}
	// Bad start line.
	if _, err := s.Apply(Patch{Changes: []FileChange{
		EditLines("f.txt", 0, []string{"alpha"}, nil),
	}}); err == nil {
		t.Fatal("StartLine 0 accepted")
	}
	// Old lines nowhere near: conflict.
	if _, err := s.Apply(Patch{Changes: []FileChange{
		EditLines("f.txt", 2, []string{"not-there"}, []string{"x"}),
	}}); !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("err = %v", err)
	}
}

func TestEditLinesEmptyFile(t *testing.T) {
	s := NewSnapshot(map[string]string{"f.txt": ""})
	next, err := s.Apply(Patch{Changes: []FileChange{
		InsertLines("f.txt", 1, []string{"first"}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := next.Read("f.txt"); got != "first\n" {
		t.Fatalf("got %q", got)
	}
}

func TestEditLinesOpString(t *testing.T) {
	if OpEditLines.String() != "edit-lines" {
		t.Fatalf("String = %q", OpEditLines.String())
	}
}

func TestEditLinesThroughCommit(t *testing.T) {
	r := New(map[string]string{"src/main.go": "package main\n\nfunc main() {\n\tprintln(1)\n}\n"})
	head := r.Head()
	p := Patch{Changes: []FileChange{
		EditLines("src/main.go", 4, []string{"\tprintln(1)"}, []string{"\tprintln(2)"}),
	}}
	if _, err := r.CommitPatch(head.ID, p, "dev", "bump", head.Time); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Head().Snapshot().Read("src/main.go")
	if !strings.Contains(got, "println(2)") {
		t.Fatalf("got %q", got)
	}
}
