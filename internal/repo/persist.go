package repo

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// serialized wire formats. Commit IDs are deterministic functions of
// (parent, message, sequence), so a faithful replay reproduces identical
// IDs and the persisted form only needs the initial tree plus per-commit
// patches.
type serializedRepo struct {
	Version int                `json:"version"`
	Initial map[string]string  `json:"initial"`
	Commits []serializedCommit `json:"commits"`
}

type serializedCommit struct {
	Message string             `json:"message"`
	Author  string             `json:"author"`
	Time    time.Time          `json:"time"`
	Patch   []serializedChange `json:"patch"`
	ID      CommitID           `json:"id"` // for integrity verification on load
}

type serializedChange struct {
	Path       string `json:"path"`
	Op         string `json:"op"`
	BaseHash   string `json:"base_hash,omitempty"`
	NewContent string `json:"content,omitempty"`
}

func opToString(op FileOp) string { return op.String() }

func opFromString(s string) (FileOp, error) {
	switch s {
	case "create":
		return OpCreate, nil
	case "modify":
		return OpModify, nil
	case "delete":
		return OpDelete, nil
	default:
		return 0, fmt.Errorf("repo: unknown op %q", s)
	}
}

// Save serializes the repository — initial tree plus the patch of every
// mainline commit — as JSON. This is the durable form the paper keeps in
// MySQL; here it is a single document suitable for a file.
func (r *Repo) Save(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	root := r.commits[r.order[0]]
	out := serializedRepo{Version: 1, Initial: map[string]string{}}
	for _, p := range root.snapshot.Paths() {
		c, _ := root.snapshot.Read(p)
		out.Initial[p] = c
	}
	for i := 1; i < len(r.order); i++ {
		c := r.commits[r.order[i]]
		parent := r.commits[c.Parent]
		patch := parent.snapshot.DiffPatch(c.snapshot)
		sc := serializedCommit{Message: c.Message, Author: c.Author, Time: c.Time, ID: c.ID}
		for _, fc := range patch.Changes {
			sc.Patch = append(sc.Patch, serializedChange{
				Path: fc.Path, Op: opToString(fc.Op), BaseHash: fc.BaseHash, NewContent: fc.NewContent,
			})
		}
		out.Commits = append(out.Commits, sc)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reconstructs a repository saved with Save, replaying every commit and
// verifying that the regenerated commit IDs match the persisted ones (the
// integrity check the paper gets from transactional storage).
func Load(rd io.Reader) (*Repo, error) {
	var in serializedRepo
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return nil, fmt.Errorf("repo: decode: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("repo: unsupported version %d", in.Version)
	}
	r := New(in.Initial)
	for i, sc := range in.Commits {
		var patch Patch
		for _, fc := range sc.Patch {
			op, err := opFromString(fc.Op)
			if err != nil {
				return nil, err
			}
			patch.Changes = append(patch.Changes, FileChange{
				Path: fc.Path, Op: op, BaseHash: fc.BaseHash, NewContent: fc.NewContent,
			})
		}
		c, err := r.CommitPatch(r.Head().ID, patch, sc.Author, sc.Message, sc.Time)
		if err != nil {
			return nil, fmt.Errorf("repo: replaying commit %d: %w", i+1, err)
		}
		if sc.ID != "" && c.ID != sc.ID {
			return nil, fmt.Errorf("repo: integrity failure at commit %d: id %s, persisted %s", i+1, c.ID, sc.ID)
		}
	}
	return r, nil
}
