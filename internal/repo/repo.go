// Package repo implements the monorepo substrate SubmitQueue manages: an
// in-memory, content-addressed, versioned file store with a single mainline
// branch, atomic patch application, and git-style "expected base" merge
// conflict detection.
//
// The paper's SubmitQueue sits in front of a giant git monorepo; the only
// repository operations it needs are (1) read the snapshot at HEAD, (2) apply
// a change's patch on top of an arbitrary snapshot, and (3) advance HEAD by
// one commit if and only if HEAD has not moved (serializability). This
// package provides exactly those, with full history so any commit point can
// be checked out (the paper's "roll back to any previously committed
// change").
package repo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by patch application and commit.
var (
	// ErrMergeConflict is returned when a patch edits or deletes a file whose
	// content at the base snapshot differs from the content the patch was
	// authored against.
	ErrMergeConflict = errors.New("repo: merge conflict")
	// ErrStaleHead is returned by CommitPatch when HEAD moved since the
	// caller observed it.
	ErrStaleHead = errors.New("repo: stale head")
	// ErrNoSuchCommit is returned for unknown commit IDs.
	ErrNoSuchCommit = errors.New("repo: no such commit")
	// ErrNoSuchFile is returned when a patch modifies or deletes a file that
	// does not exist at the base snapshot.
	ErrNoSuchFile = errors.New("repo: no such file")
	// ErrFileExists is returned when a patch creates a file that already
	// exists at the base snapshot.
	ErrFileExists = errors.New("repo: file exists")
)

// HashContent returns the content hash used for merge-base checks.
func HashContent(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:8])
}

// FileOp is the kind of edit a FileChange performs.
type FileOp int

// File operations.
const (
	OpCreate FileOp = iota
	OpModify
	OpDelete
)

// String implements fmt.Stringer.
func (op FileOp) String() string {
	switch op {
	case OpCreate:
		return "create"
	case OpModify:
		return "modify"
	case OpDelete:
		return "delete"
	case OpEditLines:
		return "edit-lines"
	default:
		return fmt.Sprintf("FileOp(%d)", int(op))
	}
}

// FileChange is a single-file edit within a Patch. For OpModify and OpDelete,
// BaseHash must equal the hash of the file's content at the snapshot the
// patch is applied to; a mismatch is a merge conflict, mirroring git's
// three-way merge failing when both sides touched the same file. OpEditLines
// edits a line range instead (see lines.go): disjoint line edits to the same
// file merge rather than conflicting.
type FileChange struct {
	Path       string
	Op         FileOp
	BaseHash   string // required for OpModify, OpDelete
	NewContent string // used for OpCreate, OpModify

	// Line-edit fields (OpEditLines only). StartLine is 1-based.
	StartLine int
	OldLines  []string
	NewLines  []string
}

// Patch is an atomic set of file edits, all of which must apply cleanly.
type Patch struct {
	Changes []FileChange
}

// Paths returns the sorted set of file paths the patch touches.
func (p Patch) Paths() []string {
	seen := make(map[string]bool, len(p.Changes))
	var out []string
	for _, fc := range p.Changes {
		if !seen[fc.Path] {
			seen[fc.Path] = true
			out = append(out, fc.Path)
		}
	}
	sort.Strings(out)
	return out
}

// Snapshot is an immutable view of the repository tree: path -> content.
// Snapshots share storage; callers must not mutate the returned maps.
//
// Representation: a shared flattened base layer plus a small delta of edits
// since that base. Apply copies only the delta (O(edits since flatten), not
// O(tree)), and flattens into a fresh base once the delta outgrows √tree —
// without this, every commit on a t-file tree costs a t-entry map copy, and
// a serving path absorbing hundreds of commits per second spends most of a
// core (and its GC budget) duplicating an essentially unchanged tree.
type Snapshot struct {
	base  *baseLayer // shared, never mutated after creation; nil only for the zero Snapshot
	delta map[string]deltaEntry
	n     int // live file count
	fp    snapFP
}

// baseLayer is a flattened tree shared by every snapshot derived from it. It
// is a pointer so ChangedPaths can recognize two snapshots with a common base
// by identity and diff just their deltas.
type baseLayer struct {
	files map[string]string
}

// deltaEntry is one edit relative to the base layer.
type deltaEntry struct {
	content string
	deleted bool
}

// snapFP is an order-independent fingerprint of the full tree: the sum of
// per-file hashes over two 64-bit lanes. Addition is commutative, so Apply
// can maintain it incrementally in O(patch) instead of rehashing the tree.
type snapFP struct {
	a, b uint64
}

// fileFP hashes one (path, content) pair into the two fingerprint lanes.
func fileFP(path, content string) snapFP {
	h := sha256.New()
	h.Write([]byte(path))
	h.Write([]byte{0})
	h.Write([]byte(content))
	sum := h.Sum(nil)
	return snapFP{
		a: binary.BigEndian.Uint64(sum[0:8]),
		b: binary.BigEndian.Uint64(sum[8:16]),
	}
}

func (fp snapFP) add(f snapFP) snapFP    { return snapFP{fp.a + f.a, fp.b + f.b} }
func (fp snapFP) remove(f snapFP) snapFP { return snapFP{fp.a - f.a, fp.b - f.b} }

// NewSnapshot builds a snapshot from a path->content map (copied).
func NewSnapshot(files map[string]string) Snapshot {
	m := make(map[string]string, len(files))
	var fp snapFP
	for k, v := range files {
		m[k] = v
		fp = fp.add(fileFP(k, v))
	}
	return Snapshot{base: &baseLayer{files: m}, n: len(m), fp: fp}
}

// ContentID returns a fingerprint of the snapshot's full tree: two snapshots
// with identical path->content maps have identical IDs regardless of how
// they were produced. It is maintained incrementally by Apply, so reading it
// is O(1); consumers (e.g. the build-graph analyze cache) use it as a
// content-addressed cache key.
func (s Snapshot) ContentID() string {
	return fmt.Sprintf("%016x%016x-%d", s.fp.a, s.fp.b, s.n)
}

// Range calls f for every (path, content) pair in unspecified order,
// stopping early if f returns false. It avoids the sort and slice allocation
// of Paths for callers that only need to visit the tree.
func (s Snapshot) Range(f func(path, content string) bool) {
	for p, e := range s.delta {
		if !e.deleted && !f(p, e.content) {
			return
		}
	}
	if s.base == nil {
		return
	}
	for p, c := range s.base.files {
		if _, shadowed := s.delta[p]; shadowed {
			continue
		}
		if !f(p, c) {
			return
		}
	}
}

// Read returns the content of path and whether it exists.
func (s Snapshot) Read(path string) (string, bool) {
	if e, ok := s.delta[path]; ok {
		if e.deleted {
			return "", false
		}
		return e.content, true
	}
	if s.base == nil {
		return "", false
	}
	c, ok := s.base.files[path]
	return c, ok
}

// Len returns the number of files in the snapshot.
func (s Snapshot) Len() int { return s.n }

// Paths returns all file paths in sorted order.
func (s Snapshot) Paths() []string {
	out := make([]string, 0, s.n)
	s.Range(func(p, _ string) bool {
		out = append(out, p)
		return true
	})
	sort.Strings(out)
	return out
}

// PathsUnder returns sorted paths with the given directory prefix
// (e.g. "app/rider/"). An empty prefix returns all paths.
func (s Snapshot) PathsUnder(prefix string) []string {
	var out []string
	s.Range(func(p, _ string) bool {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// flatten folds the delta into a fresh base layer. The fingerprint and count
// are already maintained incrementally, so this is a single O(tree) walk.
func (s Snapshot) flatten() Snapshot {
	files := make(map[string]string, s.n)
	s.Range(func(p, c string) bool {
		files[p] = c
		return true
	})
	return Snapshot{base: &baseLayer{files: files}, n: s.n, fp: s.fp}
}

// Apply produces a new snapshot with the patch applied, or an error
// describing the first conflict encountered. The receiver is unchanged.
// Cost is O(delta + patch): the shared base layer is never copied, only the
// delta map. Once the delta outgrows √tree the result is flattened, so the
// amortized per-commit cost stays O(√tree) instead of O(tree).
func (s Snapshot) Apply(p Patch) (Snapshot, error) {
	delta := make(map[string]deltaEntry, len(s.delta)+len(p.Changes))
	for k, v := range s.delta {
		delta[k] = v
	}
	next := Snapshot{base: s.base, delta: delta, n: s.n, fp: s.fp}
	for _, fc := range p.Changes {
		cur, exists := next.Read(fc.Path)
		switch fc.Op {
		case OpCreate:
			if exists {
				return Snapshot{}, fmt.Errorf("%w: create %s", ErrFileExists, fc.Path)
			}
			delta[fc.Path] = deltaEntry{content: fc.NewContent}
			next.n++
			next.fp = next.fp.add(fileFP(fc.Path, fc.NewContent))
		case OpModify:
			if !exists {
				return Snapshot{}, fmt.Errorf("%w: modify %s", ErrNoSuchFile, fc.Path)
			}
			if HashContent(cur) != fc.BaseHash {
				return Snapshot{}, fmt.Errorf("%w: %s changed since patch base", ErrMergeConflict, fc.Path)
			}
			delta[fc.Path] = deltaEntry{content: fc.NewContent}
			next.fp = next.fp.remove(fileFP(fc.Path, cur)).add(fileFP(fc.Path, fc.NewContent))
		case OpDelete:
			if !exists {
				return Snapshot{}, fmt.Errorf("%w: delete %s", ErrNoSuchFile, fc.Path)
			}
			if HashContent(cur) != fc.BaseHash {
				return Snapshot{}, fmt.Errorf("%w: %s changed since patch base", ErrMergeConflict, fc.Path)
			}
			delta[fc.Path] = deltaEntry{deleted: true}
			next.n--
			next.fp = next.fp.remove(fileFP(fc.Path, cur))
		case OpEditLines:
			if !exists {
				return Snapshot{}, fmt.Errorf("%w: edit %s", ErrNoSuchFile, fc.Path)
			}
			edited, err := applyEditLines(cur, fc)
			if err != nil {
				return Snapshot{}, err
			}
			delta[fc.Path] = deltaEntry{content: edited}
			next.fp = next.fp.remove(fileFP(fc.Path, cur)).add(fileFP(fc.Path, edited))
		default:
			return Snapshot{}, fmt.Errorf("repo: unknown op %v for %s", fc.Op, fc.Path)
		}
	}
	if d := len(delta); d >= 16 && d*d >= next.n {
		return next.flatten(), nil
	}
	return next, nil
}

// Check reports whether the patches would apply cleanly to the snapshot in
// order, returning exactly the error Merged would, without materializing the
// merged tree. Apply clones the whole file map (O(tree)); Check walks only
// the patches with an overlay for intra-sequence effects (O(patch)), so the
// sharded planner can re-validate every pending change's applicability
// against the live head each epoch.
func (s Snapshot) Check(patches ...Patch) error {
	type overlayState struct {
		content string
		deleted bool
	}
	var overlay map[string]overlayState
	for i, p := range patches {
		for _, fc := range p.Changes {
			var cur string
			var exists bool
			if st, ok := overlay[fc.Path]; ok {
				cur, exists = st.content, !st.deleted
			} else {
				cur, exists = s.Read(fc.Path)
			}
			var next overlayState
			var err error
			switch fc.Op {
			case OpCreate:
				if exists {
					err = fmt.Errorf("%w: create %s", ErrFileExists, fc.Path)
					break
				}
				next = overlayState{content: fc.NewContent}
			case OpModify:
				if !exists {
					err = fmt.Errorf("%w: modify %s", ErrNoSuchFile, fc.Path)
					break
				}
				if HashContent(cur) != fc.BaseHash {
					err = fmt.Errorf("%w: %s changed since patch base", ErrMergeConflict, fc.Path)
					break
				}
				next = overlayState{content: fc.NewContent}
			case OpDelete:
				if !exists {
					err = fmt.Errorf("%w: delete %s", ErrNoSuchFile, fc.Path)
					break
				}
				if HashContent(cur) != fc.BaseHash {
					err = fmt.Errorf("%w: %s changed since patch base", ErrMergeConflict, fc.Path)
					break
				}
				next = overlayState{deleted: true}
			case OpEditLines:
				if !exists {
					err = fmt.Errorf("%w: edit %s", ErrNoSuchFile, fc.Path)
					break
				}
				var edited string
				if edited, err = applyEditLines(cur, fc); err != nil {
					break
				}
				next = overlayState{content: edited}
			default:
				err = fmt.Errorf("repo: unknown op %v for %s", fc.Op, fc.Path)
			}
			if err != nil {
				return fmt.Errorf("applying patch %d: %w", i, err)
			}
			if overlay == nil {
				overlay = map[string]overlayState{}
			}
			overlay[fc.Path] = next
		}
	}
	return nil
}

// ChangedPaths returns the sorted set of paths whose content differs between
// the two snapshots (added, removed, or modified in either direction). The
// conflict analyzer's selective invalidation uses it to decide whether a head
// movement can affect a cached patch's applicability.
//
// When the snapshots share a base layer — the common case for two nearby
// heads — only the two deltas are compared, so the cost is O(edits between
// them) rather than O(tree). Identical fingerprints short-circuit to nil.
func (s Snapshot) ChangedPaths(other Snapshot) []string {
	if s.fp == other.fp && s.n == other.n {
		return nil
	}
	var out []string
	if s.base != nil && s.base == other.base {
		for path := range s.delta {
			sc, sok := s.Read(path)
			oc, ook := other.Read(path)
			if sok != ook || sc != oc {
				out = append(out, path)
			}
		}
		for path := range other.delta {
			if _, dup := s.delta[path]; dup {
				continue
			}
			sc, sok := s.Read(path)
			oc, ook := other.Read(path)
			if sok != ook || sc != oc {
				out = append(out, path)
			}
		}
		sort.Strings(out)
		return out
	}
	s.Range(func(path, c string) bool {
		if oc, ok := other.Read(path); !ok || oc != c {
			out = append(out, path)
		}
		return true
	})
	other.Range(func(path, _ string) bool {
		if _, ok := s.Read(path); !ok {
			out = append(out, path)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// DiffPatch builds the patch that transforms s into other. Useful for tests
// and for synthesizing changes from edited working copies.
func (s Snapshot) DiffPatch(other Snapshot) Patch {
	var p Patch
	other.Range(func(path, newC string) bool {
		oldC, ok := s.Read(path)
		switch {
		case !ok:
			p.Changes = append(p.Changes, FileChange{Path: path, Op: OpCreate, NewContent: newC})
		case oldC != newC:
			p.Changes = append(p.Changes, FileChange{Path: path, Op: OpModify, BaseHash: HashContent(oldC), NewContent: newC})
		}
		return true
	})
	s.Range(func(path, oldC string) bool {
		if _, ok := other.Read(path); !ok {
			p.Changes = append(p.Changes, FileChange{Path: path, Op: OpDelete, BaseHash: HashContent(oldC)})
		}
		return true
	})
	sort.Slice(p.Changes, func(i, j int) bool { return p.Changes[i].Path < p.Changes[j].Path })
	return p
}

// CommitID identifies a commit.
type CommitID string

// Commit is one point in mainline history.
type Commit struct {
	ID       CommitID
	Parent   CommitID // empty for the root commit
	Message  string
	Author   string
	Time     time.Time
	Seq      int // 0-based position in mainline history
	snapshot Snapshot
}

// Snapshot returns the full repository tree at this commit.
func (c *Commit) Snapshot() Snapshot { return c.snapshot }

// Repo is a single-branch (mainline/trunk) repository with linear history.
// All methods are safe for concurrent use.
type Repo struct {
	mu      sync.RWMutex
	commits map[CommitID]*Commit
	order   []CommitID // mainline history, oldest first
	nextSeq int
}

// New creates a repository whose root commit contains the given files.
func New(initial map[string]string) *Repo {
	r := &Repo{commits: make(map[CommitID]*Commit)}
	root := &Commit{
		ID:       r.makeID("", "root"),
		Message:  "root",
		Author:   "system",
		Seq:      0,
		snapshot: NewSnapshot(initial),
	}
	r.commits[root.ID] = root
	r.order = []CommitID{root.ID}
	r.nextSeq = 1
	return r
}

func (r *Repo) makeID(parent CommitID, msg string) CommitID {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%d", parent, msg, r.nextSeq)))
	return CommitID(hex.EncodeToString(sum[:10]))
}

// Head returns the current mainline HEAD commit.
func (r *Repo) Head() *Commit {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.commits[r.order[len(r.order)-1]]
}

// Lookup returns the commit with the given ID.
func (r *Repo) Lookup(id CommitID) (*Commit, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.commits[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchCommit, id)
	}
	return c, nil
}

// At returns the commit at mainline position seq (0 = root).
func (r *Repo) At(seq int) (*Commit, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if seq < 0 || seq >= len(r.order) {
		return nil, fmt.Errorf("%w: seq %d", ErrNoSuchCommit, seq)
	}
	return r.commits[r.order[seq]], nil
}

// Len returns the number of commits in mainline history.
func (r *Repo) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.order)
}

// History returns mainline commit IDs, oldest first. The slice is a copy.
func (r *Repo) History() []CommitID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]CommitID(nil), r.order...)
}

// CommitPatch atomically applies patch on top of expectedHead and advances
// HEAD. It fails with ErrStaleHead if HEAD is no longer expectedHead, and
// with a patch-application error if the patch does not apply cleanly. This
// compare-and-swap is what gives SubmitQueue its serializability guarantee.
func (r *Repo) CommitPatch(expectedHead CommitID, patch Patch, author, message string, when time.Time) (*Commit, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	head := r.order[len(r.order)-1]
	if head != expectedHead {
		return nil, fmt.Errorf("%w: head is %s, expected %s", ErrStaleHead, head, expectedHead)
	}
	snap, err := r.commits[head].snapshot.Apply(patch)
	if err != nil {
		return nil, err
	}
	c := &Commit{
		ID:       r.makeID(head, message),
		Parent:   head,
		Message:  message,
		Author:   author,
		Time:     when,
		Seq:      r.nextSeq,
		snapshot: snap,
	}
	r.commits[c.ID] = c
	r.order = append(r.order, c.ID)
	r.nextSeq++
	return c, nil
}

// Merged returns the snapshot of base's commit with the given patches applied
// in order, without committing anything. This is the H ⊕ C1 ⊕ … ⊕ Ck
// operation that speculation builds execute against.
func (r *Repo) Merged(base CommitID, patches ...Patch) (Snapshot, error) {
	c, err := r.Lookup(base)
	if err != nil {
		return Snapshot{}, err
	}
	snap := c.snapshot
	for i, p := range patches {
		snap, err = snap.Apply(p)
		if err != nil {
			return Snapshot{}, fmt.Errorf("applying patch %d: %w", i, err)
		}
	}
	return snap, nil
}
