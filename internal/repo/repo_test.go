package repo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTestRepo() *Repo {
	return New(map[string]string{
		"app/main.go":   "package main",
		"lib/util.go":   "package lib",
		"docs/README":   "hello",
		"app/BUILD":     "target app",
		"lib/BUILD":     "target lib",
		"app/extra.txt": "x",
	})
}

func modify(s Snapshot, path, newContent string) FileChange {
	cur, ok := s.Read(path)
	if !ok {
		panic("missing " + path)
	}
	return FileChange{Path: path, Op: OpModify, BaseHash: HashContent(cur), NewContent: newContent}
}

func TestNewRepoRoot(t *testing.T) {
	r := newTestRepo()
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	head := r.Head()
	if head.Parent != "" || head.Seq != 0 {
		t.Fatalf("bad root commit: %+v", head)
	}
	if head.Snapshot().Len() != 6 {
		t.Fatalf("root snapshot size = %d", head.Snapshot().Len())
	}
}

func TestSnapshotReadAndPaths(t *testing.T) {
	s := newTestRepo().Head().Snapshot()
	if c, ok := s.Read("docs/README"); !ok || c != "hello" {
		t.Fatalf("Read = %q, %v", c, ok)
	}
	if _, ok := s.Read("nope"); ok {
		t.Fatal("Read of missing path should fail")
	}
	paths := s.Paths()
	if len(paths) != 6 || paths[0] != "app/BUILD" {
		t.Fatalf("Paths = %v", paths)
	}
	under := s.PathsUnder("app/")
	if len(under) != 3 {
		t.Fatalf("PathsUnder(app/) = %v", under)
	}
}

func TestApplyCreateModifyDelete(t *testing.T) {
	s := newTestRepo().Head().Snapshot()
	p := Patch{Changes: []FileChange{
		{Path: "new.txt", Op: OpCreate, NewContent: "n"},
		modify(s, "docs/README", "bye"),
		{Path: "app/extra.txt", Op: OpDelete, BaseHash: HashContent("x")},
	}}
	next, err := s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := next.Read("new.txt"); c != "n" {
		t.Errorf("create failed: %q", c)
	}
	if c, _ := next.Read("docs/README"); c != "bye" {
		t.Errorf("modify failed: %q", c)
	}
	if _, ok := next.Read("app/extra.txt"); ok {
		t.Error("delete failed")
	}
	// Original snapshot untouched.
	if c, _ := s.Read("docs/README"); c != "hello" {
		t.Error("Apply mutated receiver")
	}
}

func TestApplyErrors(t *testing.T) {
	s := newTestRepo().Head().Snapshot()
	cases := []struct {
		name string
		fc   FileChange
		want error
	}{
		{"create existing", FileChange{Path: "docs/README", Op: OpCreate}, ErrFileExists},
		{"modify missing", FileChange{Path: "nope", Op: OpModify}, ErrNoSuchFile},
		{"delete missing", FileChange{Path: "nope", Op: OpDelete}, ErrNoSuchFile},
		{"modify stale base", FileChange{Path: "docs/README", Op: OpModify, BaseHash: "bad"}, ErrMergeConflict},
		{"delete stale base", FileChange{Path: "docs/README", Op: OpDelete, BaseHash: "bad"}, ErrMergeConflict},
		{"unknown op", FileChange{Path: "docs/README", Op: FileOp(99)}, nil},
	}
	for _, c := range cases {
		_, err := s.Apply(Patch{Changes: []FileChange{c.fc}})
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

// TestCheckMatchesMerged pins the dry-run Check to Merged: for every outcome
// class — clean sequences, each failure kind, intra-sequence effects — Check
// must agree with the materializing path on both success and the exact error
// string, since the sharded planner relies on Check to reproduce analyzer
// rejection reasons verbatim.
func TestCheckMatchesMerged(t *testing.T) {
	r := newTestRepo()
	s := r.Head().Snapshot()
	cases := []struct {
		name    string
		patches []Patch
	}{
		{"clean create+modify+delete", []Patch{{Changes: []FileChange{
			{Path: "new.txt", Op: OpCreate, NewContent: "n"},
			modify(s, "docs/README", "bye"),
			{Path: "lib/util.go", Op: OpDelete, BaseHash: HashContent("util v1")},
		}}}},
		{"create existing", []Patch{{Changes: []FileChange{
			{Path: "docs/README", Op: OpCreate, NewContent: "dup"},
		}}}},
		{"modify missing", []Patch{{Changes: []FileChange{
			{Path: "nope", Op: OpModify, NewContent: "x"},
		}}}},
		{"modify stale base", []Patch{{Changes: []FileChange{
			{Path: "docs/README", Op: OpModify, BaseHash: "bad", NewContent: "x"},
		}}}},
		{"delete missing", []Patch{{Changes: []FileChange{
			{Path: "nope", Op: OpDelete},
		}}}},
		{"delete stale base", []Patch{{Changes: []FileChange{
			{Path: "docs/README", Op: OpDelete, BaseHash: "bad"},
		}}}},
		{"unknown op", []Patch{{Changes: []FileChange{
			{Path: "docs/README", Op: FileOp(99)},
		}}}},
		{"intra-patch create then modify", []Patch{{Changes: []FileChange{
			{Path: "new.txt", Op: OpCreate, NewContent: "n"},
			{Path: "new.txt", Op: OpModify, BaseHash: HashContent("n"), NewContent: "n2"},
		}}}},
		{"intra-patch delete then create", []Patch{{Changes: []FileChange{
			{Path: "docs/README", Op: OpDelete, BaseHash: HashContent("hello")},
			{Path: "docs/README", Op: OpCreate, NewContent: "reborn"},
		}}}},
		{"second patch conflicts with first", []Patch{
			{Changes: []FileChange{{Path: "new.txt", Op: OpCreate, NewContent: "a"}}},
			{Changes: []FileChange{{Path: "new.txt", Op: OpCreate, NewContent: "b"}}},
		}},
	}
	for _, c := range cases {
		_, mergedErr := r.Merged(r.Head().ID, c.patches...)
		checkErr := s.Check(c.patches...)
		switch {
		case mergedErr == nil && checkErr != nil:
			t.Errorf("%s: Check failed where Merged succeeded: %v", c.name, checkErr)
		case mergedErr != nil && checkErr == nil:
			t.Errorf("%s: Check passed where Merged failed: %v", c.name, mergedErr)
		case mergedErr != nil && mergedErr.Error() != checkErr.Error():
			t.Errorf("%s: error mismatch:\nMerged %v\nCheck  %v", c.name, mergedErr, checkErr)
		}
	}
	// Check must not mutate the snapshot.
	if c, _ := s.Read("docs/README"); c != "hello" {
		t.Error("Check mutated receiver")
	}
}

func TestMergeConflictBetweenPatches(t *testing.T) {
	// Two patches both authored against root, editing the same file: the
	// second must fail with ErrMergeConflict after the first applies.
	s := newTestRepo().Head().Snapshot()
	p1 := Patch{Changes: []FileChange{modify(s, "lib/util.go", "v1")}}
	p2 := Patch{Changes: []FileChange{modify(s, "lib/util.go", "v2")}}
	mid, err := s.Apply(p1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.Apply(p2); !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("err = %v, want ErrMergeConflict", err)
	}
}

func TestIndependentPatchesCommute(t *testing.T) {
	s := newTestRepo().Head().Snapshot()
	p1 := Patch{Changes: []FileChange{modify(s, "lib/util.go", "v1")}}
	p2 := Patch{Changes: []FileChange{modify(s, "docs/README", "v2")}}
	a, err := s.Apply(p1)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Apply(p2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Apply(p2)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := b.Apply(p1)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range ab.Paths() {
		c1, _ := ab.Read(path)
		c2, _ := ba.Read(path)
		if c1 != c2 {
			t.Fatalf("non-commuting independent patches at %s", path)
		}
	}
}

func TestCommitPatchAdvancesHead(t *testing.T) {
	r := newTestRepo()
	head := r.Head()
	p := Patch{Changes: []FileChange{modify(head.Snapshot(), "docs/README", "v2")}}
	c, err := r.CommitPatch(head.ID, p, "alice", "update docs", time.Unix(100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Head().ID != c.ID || c.Parent != head.ID || c.Seq != 1 {
		t.Fatalf("head not advanced correctly: %+v", c)
	}
	if got, _ := r.Head().Snapshot().Read("docs/README"); got != "v2" {
		t.Fatalf("content = %q", got)
	}
	if c.Author != "alice" || c.Message != "update docs" {
		t.Fatalf("metadata lost: %+v", c)
	}
}

func TestCommitPatchStaleHead(t *testing.T) {
	r := newTestRepo()
	root := r.Head()
	p1 := Patch{Changes: []FileChange{modify(root.Snapshot(), "docs/README", "v2")}}
	if _, err := r.CommitPatch(root.ID, p1, "a", "m1", time.Time{}); err != nil {
		t.Fatal(err)
	}
	p2 := Patch{Changes: []FileChange{modify(root.Snapshot(), "lib/util.go", "v2")}}
	if _, err := r.CommitPatch(root.ID, p2, "b", "m2", time.Time{}); !errors.Is(err, ErrStaleHead) {
		t.Fatalf("err = %v, want ErrStaleHead", err)
	}
	// Repo must be unchanged by the failed commit.
	if r.Len() != 2 {
		t.Fatalf("Len = %d after failed commit", r.Len())
	}
}

func TestLookupAtHistory(t *testing.T) {
	r := newTestRepo()
	root := r.Head()
	p := Patch{Changes: []FileChange{modify(root.Snapshot(), "docs/README", "v2")}}
	c1, err := r.CommitPatch(root.ID, p, "a", "m", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Lookup(c1.ID)
	if err != nil || got.ID != c1.ID {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if _, err := r.Lookup("bogus"); !errors.Is(err, ErrNoSuchCommit) {
		t.Fatalf("Lookup bogus err = %v", err)
	}
	at, err := r.At(0)
	if err != nil || at.ID != root.ID {
		t.Fatalf("At(0) = %v, %v", at, err)
	}
	if _, err := r.At(5); !errors.Is(err, ErrNoSuchCommit) {
		t.Fatalf("At(5) err = %v", err)
	}
	h := r.History()
	if len(h) != 2 || h[0] != root.ID || h[1] != c1.ID {
		t.Fatalf("History = %v", h)
	}
	// History returns a copy.
	h[0] = "tampered"
	if r.History()[0] == "tampered" {
		t.Fatal("History aliases internal state")
	}
}

func TestMerged(t *testing.T) {
	r := newTestRepo()
	root := r.Head()
	s := root.Snapshot()
	p1 := Patch{Changes: []FileChange{modify(s, "docs/README", "v1")}}
	p2 := Patch{Changes: []FileChange{modify(s, "lib/util.go", "v2")}}
	snap, err := r.Merged(root.ID, p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := snap.Read("docs/README"); c != "v1" {
		t.Errorf("p1 not applied: %q", c)
	}
	if c, _ := snap.Read("lib/util.go"); c != "v2" {
		t.Errorf("p2 not applied: %q", c)
	}
	// Head unchanged: Merged is a dry-run.
	if r.Len() != 1 {
		t.Fatal("Merged must not commit")
	}
	if _, err := r.Merged("bogus"); !errors.Is(err, ErrNoSuchCommit) {
		t.Fatalf("Merged bogus base err = %v", err)
	}
	// Conflicting second patch reports which patch failed.
	pc := Patch{Changes: []FileChange{modify(s, "docs/README", "v9")}}
	if _, err := r.Merged(root.ID, p1, pc); !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("Merged conflict err = %v", err)
	}
}

func TestDiffPatchRoundTrip(t *testing.T) {
	s := newTestRepo().Head().Snapshot()
	target := NewSnapshot(map[string]string{
		"app/main.go": "package main", // unchanged
		"lib/util.go": "package lib2", // modified
		"new/file.go": "new",          // created
		// docs/README, BUILD files, extra.txt deleted
	})
	p := s.DiffPatch(target)
	got, err := s.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != target.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), target.Len())
	}
	for _, path := range target.Paths() {
		w, _ := target.Read(path)
		g, _ := got.Read(path)
		if g != w {
			t.Errorf("%s = %q, want %q", path, g, w)
		}
	}
}

func TestDiffPatchProperty(t *testing.T) {
	// Property: for random before/after trees, DiffPatch(before, after)
	// applied to before always reproduces after exactly.
	type tree map[string]uint8
	f := func(before, after tree) bool {
		b := map[string]string{}
		for k, v := range before {
			b[fmt.Sprintf("f%d", len(k)%7)] = fmt.Sprint(v) // collapse to few paths
		}
		a := map[string]string{}
		for k, v := range after {
			a[fmt.Sprintf("f%d", len(k)%7)] = fmt.Sprint(v)
		}
		sb, sa := NewSnapshot(b), NewSnapshot(a)
		got, err := sb.Apply(sb.DiffPatch(sa))
		if err != nil {
			return false
		}
		if got.Len() != sa.Len() {
			return false
		}
		for _, p := range sa.Paths() {
			w, _ := sa.Read(p)
			g, _ := got.Read(p)
			if g != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPatchPaths(t *testing.T) {
	p := Patch{Changes: []FileChange{
		{Path: "b", Op: OpCreate}, {Path: "a", Op: OpCreate}, {Path: "b", Op: OpModify},
	}}
	got := p.Paths()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Paths = %v", got)
	}
}

func TestFileOpString(t *testing.T) {
	if OpCreate.String() != "create" || OpModify.String() != "modify" || OpDelete.String() != "delete" {
		t.Fatal("bad op strings")
	}
	if FileOp(42).String() != "FileOp(42)" {
		t.Fatalf("unknown op = %s", FileOp(42))
	}
}

func TestConcurrentCommits(t *testing.T) {
	// Hammer CommitPatch from many goroutines; exactly the CAS winners land
	// and history stays linear. Run with -race to verify locking.
	r := New(map[string]string{"counter": "0"})
	const workers = 16
	var wg sync.WaitGroup
	landed := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				head := r.Head()
				cur, _ := head.Snapshot().Read("counter")
				p := Patch{Changes: []FileChange{{
					Path: "counter", Op: OpModify,
					BaseHash:   HashContent(cur),
					NewContent: fmt.Sprintf("%d-%d", w, i),
				}}}
				if _, err := r.CommitPatch(head.ID, p, "w", "m", time.Time{}); err == nil {
					landed[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range landed {
		total += n
	}
	if r.Len() != total+1 {
		t.Fatalf("history len %d != landed %d + root", r.Len(), total)
	}
	// Verify parent links form a chain.
	h := r.History()
	for i := 1; i < len(h); i++ {
		c, err := r.Lookup(h[i])
		if err != nil || c.Parent != h[i-1] {
			t.Fatalf("broken chain at %d", i)
		}
	}
}

func TestHashContentStable(t *testing.T) {
	if HashContent("a") == HashContent("b") {
		t.Fatal("distinct content hashed equal")
	}
	if HashContent("x") != HashContent("x") {
		t.Fatal("hash not deterministic")
	}
	if len(HashContent("x")) != 16 {
		t.Fatalf("hash length = %d", len(HashContent("x")))
	}
}

func TestChangedPaths(t *testing.T) {
	a := NewSnapshot(map[string]string{"same": "1", "mod": "old", "gone": "x"})
	b := NewSnapshot(map[string]string{"same": "1", "mod": "new", "added": "y"})
	got := a.ChangedPaths(b)
	want := []string{"added", "gone", "mod"}
	if len(got) != len(want) {
		t.Fatalf("ChangedPaths = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ChangedPaths = %v, want %v", got, want)
		}
	}
	// Symmetric set, both directions sorted.
	if rev := b.ChangedPaths(a); len(rev) != len(want) {
		t.Fatalf("reverse ChangedPaths = %v", rev)
	}
	if d := a.ChangedPaths(a); len(d) != 0 {
		t.Fatalf("self diff = %v", d)
	}
}

// TestLayeredSnapshotAgainstModel drives a long commit chain — crossing
// several delta flattens — and checks every snapshot accessor against a
// plain-map model at each step, plus immutability of earlier snapshots.
func TestLayeredSnapshotAgainstModel(t *testing.T) {
	model := map[string]string{}
	for i := 0; i < 40; i++ {
		model[fmt.Sprintf("seed/f%d", i)] = fmt.Sprintf("v%d", i)
	}
	snap := NewSnapshot(model)
	model = func() map[string]string { // detach the model from the snapshot
		m := make(map[string]string, len(model))
		for k, v := range model {
			m[k] = v
		}
		return m
	}()

	check := func(step int, s Snapshot, m map[string]string) {
		t.Helper()
		if s.Len() != len(m) {
			t.Fatalf("step %d: Len = %d, want %d", step, s.Len(), len(m))
		}
		seen := 0
		s.Range(func(p, c string) bool {
			if m[p] != c {
				t.Fatalf("step %d: Range %s = %q, want %q", step, p, c, m[p])
			}
			seen++
			return true
		})
		if seen != len(m) {
			t.Fatalf("step %d: Range visited %d, want %d", step, seen, len(m))
		}
		for p, want := range m {
			if got, ok := s.Read(p); !ok || got != want {
				t.Fatalf("step %d: Read(%s) = %q,%v, want %q", step, p, got, ok, want)
			}
		}
		if _, ok := s.Read("never/created"); ok {
			t.Fatalf("step %d: phantom file", step)
		}
		// Equal content must mean equal ContentID regardless of derivation.
		if rebuilt := NewSnapshot(m); rebuilt.ContentID() != s.ContentID() {
			t.Fatalf("step %d: ContentID %s != rebuilt %s", step, s.ContentID(), rebuilt.ContentID())
		}
	}

	snaps := []Snapshot{snap}
	models := []map[string]string{model}
	for step := 0; step < 200; step++ {
		var fc FileChange
		switch {
		case step%7 == 3: // modify an existing seed file
			p := fmt.Sprintf("seed/f%d", step%40)
			if cur, ok := snap.Read(p); ok {
				fc = FileChange{Path: p, Op: OpModify, BaseHash: HashContent(cur), NewContent: fmt.Sprintf("mod%d", step)}
			} else {
				fc = FileChange{Path: p, Op: OpCreate, NewContent: fmt.Sprintf("re%d", step)}
			}
		case step%11 == 5: // delete, exercising tombstones across flattens
			p := fmt.Sprintf("seed/f%d", step%40)
			if cur, ok := snap.Read(p); ok {
				fc = FileChange{Path: p, Op: OpDelete, BaseHash: HashContent(cur)}
			} else {
				fc = FileChange{Path: p, Op: OpCreate, NewContent: fmt.Sprintf("re%d", step)}
			}
		default:
			fc = FileChange{Path: fmt.Sprintf("grow/f%d", step), Op: OpCreate, NewContent: fmt.Sprintf("g%d", step)}
		}
		next, err := snap.Apply(Patch{Changes: []FileChange{fc}})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		m := make(map[string]string, len(models[len(models)-1])+1)
		for k, v := range models[len(models)-1] {
			m[k] = v
		}
		switch fc.Op {
		case OpDelete:
			delete(m, fc.Path)
		default:
			m[fc.Path] = fc.NewContent
		}
		check(step, next, m)

		// ChangedPaths against an ancestor a few flattens back must match the
		// model diff exactly.
		if step%17 == 0 {
			old, oldM := snaps[len(snaps)/2], models[len(models)/2]
			want := map[string]bool{}
			for p, c := range m {
				if oc, ok := oldM[p]; !ok || oc != c {
					want[p] = true
				}
			}
			for p := range oldM {
				if _, ok := m[p]; !ok {
					want[p] = true
				}
			}
			got := next.ChangedPaths(old)
			if len(got) != len(want) {
				t.Fatalf("step %d: ChangedPaths = %d paths, want %d", step, len(got), len(want))
			}
			for _, p := range got {
				if !want[p] {
					t.Fatalf("step %d: ChangedPaths reported unchanged %s", step, p)
				}
			}
		}
		snap = next
		snaps = append(snaps, next)
		models = append(models, m)
	}
	// Every historical snapshot must be untouched by later Applies.
	for i := 0; i < len(snaps); i += 23 {
		check(-i, snaps[i], models[i])
	}
}
