package repo

import (
	"fmt"
	"time"
)

// RevertPatch computes the inverse of the commit's effect: applying the
// returned patch to any snapshot where the commit's changes are still intact
// restores the files the commit touched to their pre-commit contents. This
// is what lets SubmitQueue's always-green history support §1's "(ii) roll
// back to any previously committed change, and not necessarily to the last
// working version".
func (r *Repo) RevertPatch(id CommitID) (Patch, error) {
	c, err := r.Lookup(id)
	if err != nil {
		return Patch{}, err
	}
	if c.Parent == "" {
		return Patch{}, fmt.Errorf("repo: cannot revert the root commit")
	}
	parent, err := r.Lookup(c.Parent)
	if err != nil {
		return Patch{}, err
	}
	// The revert patch transforms the commit's state back to its parent's.
	// For files modified in place the inverse is expressed as a *line-level*
	// hunk (common prefix/suffix trimmed), so the revert composes with later
	// commits that edited other regions of the same file; whole-file
	// create/delete inverses stay whole-file.
	var p Patch
	cs, ps := c.Snapshot(), parent.Snapshot()
	for _, path := range ps.Paths() {
		oldC, _ := ps.Read(path)
		newC, inCommit := cs.Read(path)
		switch {
		case !inCommit:
			// Commit deleted the file: revert recreates it.
			p.Changes = append(p.Changes, FileChange{Path: path, Op: OpCreate, NewContent: oldC})
		case oldC != newC:
			// Commit modified the file: invert as a line hunk.
			p.Changes = append(p.Changes, invertLines(path, newC, oldC))
		}
	}
	for _, path := range cs.Paths() {
		if _, inParent := ps.Read(path); !inParent {
			// Commit created the file: revert deletes it.
			cur, _ := cs.Read(path)
			p.Changes = append(p.Changes, FileChange{Path: path, Op: OpDelete, BaseHash: HashContent(cur)})
		}
	}
	return p, nil
}

// invertLines builds the line hunk transforming from → to, trimming the
// common prefix and suffix so only the changed region is pinned.
func invertLines(path, from, to string) FileChange {
	a, b := splitLines(from), splitLines(to)
	pre := 0
	for pre < len(a) && pre < len(b) && a[pre] == b[pre] {
		pre++
	}
	suf := 0
	for suf < len(a)-pre && suf < len(b)-pre && a[len(a)-1-suf] == b[len(b)-1-suf] {
		suf++
	}
	old := append([]string(nil), a[pre:len(a)-suf]...)
	repl := append([]string(nil), b[pre:len(b)-suf]...)
	return FileChange{
		Path: path, Op: OpEditLines,
		StartLine: pre + 1, OldLines: old, NewLines: repl,
	}
}

// Revert commits the inverse of the given commit on top of the current HEAD.
// It fails with ErrMergeConflict if later commits modified the same files
// (the caller must then resolve manually, exactly as with git revert).
func (r *Repo) Revert(id CommitID, author string, when time.Time) (*Commit, error) {
	p, err := r.RevertPatch(id)
	if err != nil {
		return nil, err
	}
	target, _ := r.Lookup(id)
	head := r.Head()
	return r.CommitPatch(head.ID, p, author,
		fmt.Sprintf("revert %q (%s)", target.Message, id), when)
}

// RollbackState returns the full snapshot at the given mainline position,
// supporting §1's "(i) instantly release new features from any commit point"
// — any historical commit is a valid, green release point.
func (r *Repo) RollbackState(seq int) (Snapshot, error) {
	c, err := r.At(seq)
	if err != nil {
		return Snapshot{}, err
	}
	return c.Snapshot(), nil
}
