package repo

import (
	"errors"
	"testing"
	"time"
)

// landEdit commits a single-file modification and returns the commit.
func landEdit(t *testing.T, r *Repo, path, content, msg string) *Commit {
	t.Helper()
	head := r.Head()
	cur, ok := head.Snapshot().Read(path)
	fc := FileChange{Path: path, Op: OpCreate, NewContent: content}
	if ok {
		fc = FileChange{Path: path, Op: OpModify, BaseHash: HashContent(cur), NewContent: content}
	}
	c, err := r.CommitPatch(head.ID, Patch{Changes: []FileChange{fc}}, "dev", msg, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRevertRestoresContent(t *testing.T) {
	r := New(map[string]string{"f.txt": "v1", "g.txt": "g1"})
	c1 := landEdit(t, r, "f.txt", "v2", "edit f")
	landEdit(t, r, "g.txt", "g2", "edit g") // unrelated later commit

	rc, err := r.Revert(c1.ID, "sheriff", time.Unix(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Head().Snapshot().Read("f.txt"); got != "v1" {
		t.Fatalf("f.txt = %q, want v1", got)
	}
	// The unrelated later edit survives.
	if got, _ := r.Head().Snapshot().Read("g.txt"); got != "g2" {
		t.Fatalf("g.txt = %q, want g2", got)
	}
	if rc.Author != "sheriff" || rc.Parent == "" {
		t.Fatalf("revert commit metadata: %+v", rc)
	}
}

func TestRevertConflictsWithLaterEdit(t *testing.T) {
	r := New(map[string]string{"f.txt": "v1"})
	c1 := landEdit(t, r, "f.txt", "v2", "edit f")
	landEdit(t, r, "f.txt", "v3", "edit f again") // same file, later

	if _, err := r.Revert(c1.ID, "sheriff", time.Time{}); !errors.Is(err, ErrMergeConflict) {
		t.Fatalf("err = %v, want ErrMergeConflict", err)
	}
	// Head unchanged by the failed revert.
	if got, _ := r.Head().Snapshot().Read("f.txt"); got != "v3" {
		t.Fatalf("f.txt = %q", got)
	}
}

func TestRevertCreateDeletesFile(t *testing.T) {
	r := New(map[string]string{})
	head := r.Head()
	c1, err := r.CommitPatch(head.ID, Patch{Changes: []FileChange{
		{Path: "new.txt", Op: OpCreate, NewContent: "n"},
	}}, "dev", "add new", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Revert(c1.ID, "dev", time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Head().Snapshot().Read("new.txt"); ok {
		t.Fatal("reverted create should delete the file")
	}
}

func TestRevertDeleteRestoresFile(t *testing.T) {
	r := New(map[string]string{"old.txt": "keep"})
	head := r.Head()
	c1, err := r.CommitPatch(head.ID, Patch{Changes: []FileChange{
		{Path: "old.txt", Op: OpDelete, BaseHash: HashContent("keep")},
	}}, "dev", "drop old", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Revert(c1.ID, "dev", time.Time{}); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Head().Snapshot().Read("old.txt"); got != "keep" {
		t.Fatalf("old.txt = %q", got)
	}
}

func TestRevertRootFails(t *testing.T) {
	r := New(map[string]string{"f": "v"})
	if _, err := r.Revert(r.Head().ID, "dev", time.Time{}); err == nil {
		t.Fatal("reverting root must fail")
	}
	if _, err := r.RevertPatch("bogus"); !errors.Is(err, ErrNoSuchCommit) {
		t.Fatalf("err = %v", err)
	}
}

func TestRollbackState(t *testing.T) {
	r := New(map[string]string{"f": "v1"})
	landEdit(t, r, "f", "v2", "e1")
	landEdit(t, r, "f", "v3", "e2")
	snap, err := r.RollbackState(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := snap.Read("f"); got != "v2" {
		t.Fatalf("state@1 = %q", got)
	}
	if _, err := r.RollbackState(99); !errors.Is(err, ErrNoSuchCommit) {
		t.Fatalf("err = %v", err)
	}
}
