package sched

import "math"

// Batcher chooses speculative batch sizes online from the predictor's
// per-change success and pairwise conflict probabilities, instead of a
// fixed Chromium-style size. The model: a batch of k low-risk,
// conflict-disjoint changes costs one build when it passes; each faulty
// member (individual failure or an intra-batch conflict) triggers a
// bisection chain of about 2·log₂(k) extra builds before everyone is
// decided. With expected faulty members
//
//	m(k) = Σᵢ (1 − p_succ(i)) + Σ_{i<j} p_conf(i, j)
//
// the expected builds to decide all k members is
//
//	B(k) = 1 + m(k) · 2·log₂(k)
//
// and the batcher greedily grows a batch while the marginal member still
// raises decided-members-per-build k/B(k).
type Batcher struct {
	// MaxBatch caps members per batch (default 16). Even at P(k) ≈ 1 a
	// giant batch concentrates bisection risk and turnaround variance.
	MaxBatch int
	// MinSucc is the predicted per-change success floor to join a batch
	// (default 0.5): a change likelier to fail than pass builds alone. The
	// floor is deliberately loose — with failure attribution the build
	// system names the guilty member and bisection evicts it in one extra
	// build, so a moderately risky member costs the batch far less than
	// exiling it costs an innocent (a whole dedicated build). Moderate risk
	// is priced by the marginal-admission condition instead, which
	// naturally shunts high-mass members into small tail groups.
	MinSucc float64
	// MaxPairConf is the pairwise conflict-probability ceiling between
	// batchmates (default 0.05).
	MaxPairConf float64
}

// DefaultBatcher returns the production batcher configuration.
func DefaultBatcher() Batcher {
	return Batcher{MaxBatch: 16, MinSucc: 0.5, MaxPairConf: 0.05}
}

func (b Batcher) maxBatch() int {
	if b.MaxBatch > 0 {
		return b.MaxBatch
	}
	return 16
}

func (b Batcher) minSucc() float64 {
	if b.MinSucc > 0 {
		return b.MinSucc
	}
	return 0.5
}

func (b Batcher) maxPairConf() float64 {
	if b.MaxPairConf > 0 {
		return b.MaxPairConf
	}
	return 0.05
}

// expectedBuilds is B(k) for a batch with m expected faulty members.
func expectedBuilds(k int, m float64) float64 {
	if k <= 1 {
		return 1
	}
	return 1 + m*2*math.Log2(float64(k))
}

// Plan partitions candidate indices (in the given order) into build groups:
// low-risk candidates are greedily grown into batches while the marginal
// member still improves expected decided-members-per-build; risky
// candidates and conflict-heavy pairs become singleton groups. pSucc and
// pConf are the predictor's views of candidate i and pair (i, j); every
// returned group preserves the input order.
func (b Batcher) Plan(candidates []int, pSucc func(i int) float64, pConf func(i, j int) float64) [][]int {
	var groups [][]int
	var cur []int
	curFaulty := 0.0
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
			curFaulty = 0
		}
	}
	for _, id := range candidates {
		ps := pSucc(id)
		if ps < b.minSucc() {
			// Risky: decide it alone, after the current batch.
			flush()
			groups = append(groups, []int{id})
			continue
		}
		faulty := curFaulty + (1 - ps)
		compatible := len(cur) < b.maxBatch()
		for _, m := range cur {
			q := pConf(m, id)
			if q > b.maxPairConf() {
				compatible = false
				break
			}
			faulty += q
		}
		if compatible && len(cur) > 0 {
			// Admit only if the marginal member improves efficiency.
			k := len(cur)
			if float64(k+1)/expectedBuilds(k+1, faulty) <= float64(k)/expectedBuilds(k, curFaulty) {
				compatible = false
			}
		}
		if !compatible {
			flush()
			cur = []int{id}
			curFaulty = 1 - ps
			continue
		}
		cur = append(cur, id)
		curFaulty = faulty
	}
	flush()
	return groups
}

// Bisect splits a failed batch for re-enqueueing at inherited priority.
// When the build system attributed the failure to one member (guilty is
// its position in members), that member is evicted to build alone and the
// remainder retries as a single batch — one extra build instead of a full
// log₂ halving cascade. Without attribution it falls back to halving.
func (b Batcher) Bisect(members []int, guilty int) [][]int {
	if len(members) <= 1 {
		return [][]int{members}
	}
	if guilty >= 0 && guilty < len(members) {
		rest := make([]int, 0, len(members)-1)
		rest = append(rest, members[:guilty]...)
		rest = append(rest, members[guilty+1:]...)
		return [][]int{{members[guilty]}, rest}
	}
	mid := len(members) / 2
	return [][]int{members[:mid], members[mid:]}
}
