package sched

import (
	"testing"
	"time"

	"mastergreen/internal/change"
)

// BenchmarkWeights measures the per-epoch cost of computing the weight and
// τ-exemption arrays for a 512-change planning window (the scale the
// ablation-sched experiment holds pending).
func BenchmarkWeights(b *testing.B) {
	p := Default()
	now := time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)
	pending := make([]*change.Change, 512)
	for i := range pending {
		c := &change.Change{ID: change.ID(string(rune('a' + i%26)))}
		switch i % 20 {
		case 0:
			c.Class = change.ClassHotfix
		case 1, 2, 3:
			c.Class = change.ClassBulk
			c.Deadline = now.Add(time.Duration(i) * time.Minute)
		}
		pending[i] = c
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := p.Weights(pending, now)
		if w == nil {
			b.Fatal("window is mixed; weights must be non-nil")
		}
	}
}

// BenchmarkBatcherPlan measures adaptive batch sizing over 512 candidates.
func BenchmarkBatcherPlan(b *testing.B) {
	bt := DefaultBatcher()
	ids := make([]int, 512)
	for i := range ids {
		ids[i] = i
	}
	pSucc := func(i int) float64 {
		if i%17 == 0 {
			return 0.5
		}
		return 0.98
	}
	pConf := func(i, j int) float64 {
		if (i+j)%31 == 0 {
			return 0.2
		}
		return 0.002
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if groups := bt.Plan(ids, pSucc, pConf); len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}
