// Package sched sits between the submission queue and the speculation
// engine and owns *what deserves compute next*. The paper's value function
// (Eqs. 1–5) maximizes expected commits per build but treats every pending
// change as equally urgent; sched extends it with priority lanes:
//
//   - Each change carries a Class (P0 hotfix / P1 normal / P2 bulk) and an
//     optional Deadline. Policy turns those into a per-change weight that
//     multiplies the change's benefit B in V = B·P_needed, so the engine's
//     best-first enumeration orders builds by weighted expected commits.
//   - P0 changes are additionally exempt from the predictor's τ-gating
//     (their modal path keeps every hedge), and their huge weight makes the
//     planner's desired set displace — and therefore abort — running
//     speculative builds for other lanes.
//   - Deadline urgency ramps a change's weight up as slack shrinks, so a
//     deadlined P2 eventually overtakes fresh P1 work instead of starving
//     behind a sustained hotfix stream.
//
// The invariant that keeps the prioritized planner bit-for-bit compatible
// with the unprioritized one: a ClassNormal change with no deadline always
// weighs exactly 1, and Weights returns nil for an all-default window, so
// the engine sees the identical request it saw before this package existed.
package sched

import (
	"time"

	"mastergreen/internal/change"
)

// Policy maps a change's class and deadline slack to a value-function
// weight. The zero value is unusable; construct with Default and override
// fields as needed.
type Policy struct {
	// HotfixWeight multiplies P0 changes. It must dominate every achievable
	// P1/P2 weight (including a fully-ramped deadline) so the hotfix lane
	// always plans — and preempts — first.
	HotfixWeight float64
	// BulkWeight multiplies P2 changes (< 1: bulk work yields to normal
	// work when capacity is contended).
	BulkWeight float64
	// UrgencyHorizon is the deadline slack at which the urgency ramp
	// begins. Changes with more slack than this get no deadline boost.
	UrgencyHorizon time.Duration
	// UrgencyMax is the urgency multiplier at (and past) the deadline; the
	// ramp from 1 to UrgencyMax is linear in remaining slack.
	UrgencyMax float64
}

// Default returns the production policy. With these values a fully-ramped
// P2 weighs BulkWeight·UrgencyMax = 6 — above fresh P1 work (1) but still
// far below the hotfix lane (64), preserving strict P0 dominance.
func Default() *Policy {
	// The four-hour horizon matches the scale of a saturated queue: aging
	// must begin while the change can still clear its whole predecessor
	// chain — each hop a build — before the deadline, not in the final
	// minutes when only its own build would fit.
	return &Policy{
		HotfixWeight:   64,
		BulkWeight:     0.375,
		UrgencyHorizon: 4 * time.Hour,
		UrgencyMax:     16,
	}
}

// Clone returns an independent copy, one per shard engine: policies are
// value-semantics today, but per-shard instances keep any future
// per-instance state (adaptive weights, caches) from being shared.
func (p *Policy) Clone() *Policy {
	if p == nil {
		return nil
	}
	cp := *p
	return &cp
}

// ClassWeight returns the class component of a change's weight.
func (p *Policy) ClassWeight(c change.Class) float64 {
	switch c {
	case change.ClassHotfix:
		return p.HotfixWeight
	case change.ClassBulk:
		return p.BulkWeight
	default:
		return 1
	}
}

// Urgency returns the deadline component of a change's weight: 1 while
// slack exceeds the horizon, ramping linearly to UrgencyMax at zero slack,
// and staying at UrgencyMax past the deadline (a missed deadline is still
// urgent — the ramp must not collapse or the change starves forever).
func (p *Policy) Urgency(deadline, now time.Time) float64 {
	if deadline.IsZero() {
		return 1
	}
	slack := deadline.Sub(now)
	if slack >= p.UrgencyHorizon {
		return 1
	}
	if slack <= 0 {
		return p.UrgencyMax
	}
	frac := 1 - float64(slack)/float64(p.UrgencyHorizon)
	return 1 + (p.UrgencyMax-1)*frac
}

// Weight combines class weight and deadline urgency. A ClassNormal change
// with no deadline weighs exactly 1 — the compatibility invariant.
func (p *Policy) Weight(c change.Class, deadline, now time.Time) float64 {
	return p.ClassWeight(c) * p.Urgency(deadline, now)
}

// NoSkip reports whether the class is exempt from predictor τ-gating
// (SkipThreshold branch-skip on the modal path). Wrongly gating a hotfix
// hedge costs a restart exactly when turnaround matters most, so the P0
// lane never gates.
func (p *Policy) NoSkip(c change.Class) bool { return c == change.ClassHotfix }

// Weights computes the per-change weight and τ-exemption arrays for a
// planning window, parallel to pending. It returns (nil, nil) when every
// change is default-lane (ClassNormal, no deadline): the caller then hands
// the speculation engine the identical request it would have built before
// this package existed, which is what keeps committed sets bit-for-bit
// identical in the unprioritized case.
func (p *Policy) Weights(pending []*change.Change, now time.Time) (weights []float64, noSkip []bool) {
	uniform := true
	for _, c := range pending {
		if c.Class != change.ClassNormal || !c.Deadline.IsZero() {
			uniform = false
			break
		}
	}
	if uniform {
		return nil, nil
	}
	weights = make([]float64, len(pending))
	noSkip = make([]bool, len(pending))
	for i, c := range pending {
		weights[i] = p.Weight(c.Class, c.Deadline, now)
		noSkip[i] = p.NoSkip(c.Class)
	}
	return weights, noSkip
}
