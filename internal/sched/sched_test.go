package sched

import (
	"testing"
	"time"

	"mastergreen/internal/change"
)

var epoch = time.Date(2024, 5, 1, 12, 0, 0, 0, time.UTC)

func TestWeightCompatibilityInvariant(t *testing.T) {
	p := Default()
	// The invariant the identical-committed-sets criterion rests on: a
	// default-lane change weighs exactly 1, not approximately 1.
	if w := p.Weight(change.ClassNormal, time.Time{}, epoch); w != 1 {
		t.Fatalf("ClassNormal no-deadline weight = %v, want exactly 1", w)
	}
}

func TestHotfixDominates(t *testing.T) {
	p := Default()
	p0 := p.Weight(change.ClassHotfix, time.Time{}, epoch)
	// The strongest non-hotfix weight is a fully-ramped deadline.
	rampedNormal := p.Weight(change.ClassNormal, epoch.Add(-time.Hour), epoch)
	rampedBulk := p.Weight(change.ClassBulk, epoch.Add(-time.Hour), epoch)
	if p0 <= rampedNormal || p0 <= rampedBulk {
		t.Fatalf("hotfix weight %v must dominate ramped normal %v and ramped bulk %v",
			p0, rampedNormal, rampedBulk)
	}
}

func TestUrgencyRamp(t *testing.T) {
	p := Default()
	deadline := epoch.Add(p.UrgencyHorizon)
	prev := 0.0
	for i := 0; i <= 8; i++ {
		now := epoch.Add(time.Duration(i) * p.UrgencyHorizon / 4) // runs past the deadline
		u := p.Urgency(deadline, now)
		if u < prev {
			t.Fatalf("urgency not monotone: %v then %v at step %d", prev, u, i)
		}
		prev = u
	}
	if u := p.Urgency(deadline, epoch); u != 1 {
		t.Fatalf("urgency at full horizon slack = %v, want 1", u)
	}
	if u := p.Urgency(deadline, deadline.Add(time.Hour)); u != p.UrgencyMax {
		t.Fatalf("urgency past deadline = %v, want UrgencyMax %v (must not collapse)", u, p.UrgencyMax)
	}
}

func TestBulkYieldsButAges(t *testing.T) {
	p := Default()
	fresh := p.Weight(change.ClassBulk, time.Time{}, epoch)
	if fresh >= 1 {
		t.Fatalf("fresh bulk weight %v should be < 1 (yields to normal work)", fresh)
	}
	ramped := p.Weight(change.ClassBulk, epoch, epoch) // zero slack
	if ramped <= 1 {
		t.Fatalf("deadline-ramped bulk weight %v should exceed fresh normal work", ramped)
	}
}

func TestWeightsUniformWindowReturnsNil(t *testing.T) {
	p := Default()
	pending := []*change.Change{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	w, ns := p.Weights(pending, epoch)
	if w != nil || ns != nil {
		t.Fatalf("uniform window must return (nil, nil), got (%v, %v)", w, ns)
	}
	pending[1].Class = change.ClassHotfix
	w, ns = p.Weights(pending, epoch)
	if len(w) != 3 || len(ns) != 3 {
		t.Fatalf("mixed window: want parallel arrays of len 3, got (%v, %v)", w, ns)
	}
	if w[0] != 1 || !ns[1] || ns[0] || w[1] != p.HotfixWeight {
		t.Fatalf("mixed window weights wrong: w=%v noskip=%v", w, ns)
	}
}

func seqCandidates(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestBatcherGrowsUnderLowRisk(t *testing.T) {
	b := DefaultBatcher()
	groups := b.Plan(seqCandidates(32),
		func(int) float64 { return 0.99 },
		func(int, int) float64 { return 0.001 })
	total := 0
	for _, g := range groups {
		total += len(g)
		if len(g) > b.MaxBatch {
			t.Fatalf("group %v exceeds MaxBatch %d", g, b.MaxBatch)
		}
	}
	if total != 32 {
		t.Fatalf("groups cover %d of 32 candidates", total)
	}
	if mean := float64(total) / float64(len(groups)); mean <= 4 {
		t.Fatalf("low-risk mean batch size %.1f should beat the fixed Batch-4 baseline (groups %v)", mean, groups)
	}
}

func TestBatcherSingletonsUnderConflict(t *testing.T) {
	b := DefaultBatcher()
	groups := b.Plan(seqCandidates(8),
		func(int) float64 { return 0.99 },
		func(int, int) float64 { return 0.5 }) // every pair over MaxPairConf
	for _, g := range groups {
		if len(g) != 1 {
			t.Fatalf("conflict-heavy candidates must build alone, got group %v", g)
		}
	}
}

func TestBatcherIsolatesRiskyChanges(t *testing.T) {
	b := DefaultBatcher()
	groups := b.Plan(seqCandidates(6),
		func(i int) float64 {
			if i == 3 {
				return 0.4 // below MinSucc
			}
			return 0.99
		},
		func(int, int) float64 { return 0 })
	for _, g := range groups {
		for _, id := range g {
			if id == 3 && len(g) != 1 {
				t.Fatalf("risky candidate batched with others: %v", g)
			}
		}
	}
}

func TestBatcherStopsWhenMarginalMemberHurts(t *testing.T) {
	b := Batcher{MaxBatch: 64, MinSucc: 0.5, MaxPairConf: 0.5}
	// Marginal success 0.8: pass probability decays fast enough that the
	// efficiency criterion must stop growth well before MaxBatch.
	groups := b.Plan(seqCandidates(64),
		func(int) float64 { return 0.8 },
		func(int, int) float64 { return 0 })
	for _, g := range groups {
		if len(g) >= 32 {
			t.Fatalf("efficiency criterion failed to bound batch size: %d members", len(g))
		}
	}
	if len(groups) < 2 {
		t.Fatalf("expected multiple groups, got %v", groups)
	}
}

func TestBisect(t *testing.T) {
	var b Batcher
	got := b.Bisect([]int{10, 11, 12, 13}, 2)
	if len(got) != 2 || len(got[0]) != 1 || got[0][0] != 12 {
		t.Fatalf("guilty eviction: got %v", got)
	}
	if len(got[1]) != 3 || got[1][0] != 10 || got[1][2] != 13 {
		t.Fatalf("guilty eviction remainder: got %v", got)
	}
	got = b.Bisect([]int{10, 11, 12, 13}, -1)
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 2 {
		t.Fatalf("unattributed failure must halve: got %v", got)
	}
	got = b.Bisect([]int{10}, -1)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("single member: got %v", got)
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker()
	now := epoch
	tr.NoteSubmit(&change.Change{ID: "h1", Class: change.ClassHotfix}, now)
	tr.NoteSubmit(&change.Change{ID: "n1"}, now)
	tr.NoteSubmit(&change.Change{ID: "n2"}, now)
	tr.NoteSubmit(&change.Change{ID: "n2"}, now) // duplicate ignored

	s := tr.Snapshot()
	if got := s.Class(change.ClassHotfix).Pending; got != 1 {
		t.Fatalf("hotfix pending = %d, want 1", got)
	}
	if got := s.Class(change.ClassNormal); got.Pending != 2 || got.Accepted != 2 {
		t.Fatalf("normal lane = %+v, want pending 2 accepted 2", got)
	}

	tr.NoteDecision("h1", true, now.Add(30*time.Second))
	tr.NoteDecision("n1", false, now.Add(120*time.Second))
	tr.NoteDecision("h1", false, now.Add(999*time.Second)) // duplicate ignored
	tr.NoteDecision("zzz", true, now)                      // unknown ignored

	s = tr.Snapshot()
	h := s.Class(change.ClassHotfix)
	if h.Pending != 0 || h.Committed != 1 || h.TurnaroundMeanSec != 30 || h.TurnaroundMaxSec != 30 {
		t.Fatalf("hotfix lane after decision = %+v", h)
	}
	n := s.Class(change.ClassNormal)
	if n.Pending != 1 || n.Rejected != 1 || n.TurnaroundMeanSec != 120 {
		t.Fatalf("normal lane after decision = %+v", n)
	}
	if s.Gauges() == "" {
		t.Fatal("Gauges() empty")
	}
}
