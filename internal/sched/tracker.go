package sched

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"mastergreen/internal/change"
)

// nClasses sizes the per-class arrays; classes outside [0, nClasses) clamp
// to ClassNormal.
const nClasses = 3

func classIndex(c change.Class) int {
	if c < 0 || int(c) >= nClasses {
		return int(change.ClassNormal)
	}
	return int(c)
}

// ClassStats is one lane's live gauges.
type ClassStats struct {
	Accepted  int64 // submissions admitted into the queue
	Pending   int   // currently undecided
	Committed int64
	Rejected  int64
	// Turnaround gauges over decided changes (submit → first decision).
	TurnaroundMeanSec float64
	TurnaroundMaxSec  float64
}

// Stats is a point-in-time snapshot of every lane.
type Stats struct {
	Classes [nClasses]ClassStats
}

// Class returns the snapshot for one lane.
func (s Stats) Class(c change.Class) ClassStats { return s.Classes[classIndex(c)] }

// Gauges renders the snapshot as one log line, lanes in severity order.
func (s Stats) Gauges() string {
	var b strings.Builder
	for i, c := range []change.Class{change.ClassHotfix, change.ClassNormal, change.ClassBulk} {
		cs := s.Classes[classIndex(c)]
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s{accepted=%d pending=%d committed=%d rejected=%d turn_mean=%.1fs turn_max=%.1fs}",
			c, cs.Accepted, cs.Pending, cs.Committed, cs.Rejected, cs.TurnaroundMeanSec, cs.TurnaroundMaxSec)
	}
	return b.String()
}

// Tracker accumulates per-class queue-depth and turnaround gauges for the
// live service: core notes each admitted submission and each first
// decision, and the API/status path snapshots on demand.
type Tracker struct {
	mu        sync.Mutex
	submitted map[change.ID]submitRecord
	accepted  [nClasses]int64
	pending   [nClasses]int
	committed [nClasses]int64
	rejected  [nClasses]int64
	turnSum   [nClasses]float64
	turnMax   [nClasses]float64
	turnN     [nClasses]int64
}

type submitRecord struct {
	class change.Class
	at    time.Time
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{submitted: make(map[change.ID]submitRecord)}
}

// NoteSubmit records one admitted submission.
func (t *Tracker) NoteSubmit(c *change.Change, now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.submitted[c.ID]; dup {
		return
	}
	i := classIndex(c.Class)
	t.submitted[c.ID] = submitRecord{class: c.Class, at: now}
	t.accepted[i]++
	t.pending[i]++
}

// NoteDecision records the first decision for a change. Later duplicate
// decisions (journal replays, shard races) are ignored.
func (t *Tracker) NoteDecision(id change.ID, committed bool, at time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.submitted[id]
	if !ok {
		return
	}
	delete(t.submitted, id)
	i := classIndex(rec.class)
	t.pending[i]--
	if committed {
		t.committed[i]++
	} else {
		t.rejected[i]++
	}
	turn := at.Sub(rec.at).Seconds()
	if turn < 0 {
		turn = 0
	}
	t.turnSum[i] += turn
	t.turnN[i]++
	if turn > t.turnMax[i] {
		t.turnMax[i] = turn
	}
}

// Snapshot returns the current gauges.
func (t *Tracker) Snapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s Stats
	for i := 0; i < nClasses; i++ {
		s.Classes[i] = ClassStats{
			Accepted:         t.accepted[i],
			Pending:          t.pending[i],
			Committed:        t.committed[i],
			Rejected:         t.rejected[i],
			TurnaroundMaxSec: t.turnMax[i],
		}
		if t.turnN[i] > 0 {
			s.Classes[i].TurnaroundMeanSec = t.turnSum[i] / float64(t.turnN[i])
		}
	}
	return s
}
