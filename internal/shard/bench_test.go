package shard

import (
	"context"
	"fmt"
	"testing"

	"mastergreen/internal/arbiter"
	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/planner"
	"mastergreen/internal/predict"
	"mastergreen/internal/queue"
	"mastergreen/internal/repo"
	"mastergreen/internal/speculation"
)

// benchRuntime builds a runtime over a many-subtree monorepo with n pending
// changes already adopted and partitioned across 8 engines.
func benchRuntime(b *testing.B, n, subtrees int) *Runtime {
	b.Helper()
	slots := (n + subtrees - 1) / subtrees
	srcs := "lib.go"
	for s := 0; s < slots; s++ {
		srcs += fmt.Sprintf(",f%d.go", s)
	}
	files := map[string]string{}
	for i := 0; i < subtrees; i++ {
		dir := fmt.Sprintf("sub%03d", i)
		files[dir+"/BUILD"] = "target t srcs=" + srcs
		files[dir+"/lib.go"] = "lib v1"
	}
	rp := repo.New(files)
	intake := queue.New(1)
	an := conflict.New(rp)
	arb := arbiter.New(rp, arbiter.Config{Analyzer: an})
	runner := buildsys.RunnerFunc(func(context.Context, change.BuildStep, string, repo.Snapshot) error {
		return nil
	})
	rt := New(rp, intake, an, arb, buildsys.NewController(4, runner), Config{
		Shards:  8,
		Planner: planner.Config{Budget: 16},
		Spec: func() *speculation.Engine {
			return speculation.New(predict.Static{Success: 0.9, Conflict: 0.05})
		},
	})
	for i := 0; i < n; i++ {
		c := &change.Change{
			ID: change.ID(fmt.Sprintf("c%04d", i)),
			Patch: repo.Patch{Changes: []repo.FileChange{{
				Path:       fmt.Sprintf("sub%03d/f%d.go", i%subtrees, i/subtrees),
				Op:         repo.OpCreate,
				NewContent: fmt.Sprintf("content %d", i),
			}}},
			BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		}
		if err := intake.Enqueue(c); err != nil {
			b.Fatal(err)
		}
	}
	rt.Partition() // adopt + first heavy partition
	return rt
}

// BenchmarkHeavyPartition measures one full coordinator epoch — global
// conflict graph, connected components, rendezvous assignment — over 256
// pending changes in 64 subtrees.
func BenchmarkHeavyPartition(b *testing.B) {
	rt := benchRuntime(b, 256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.mu.Lock()
		rt.first = true // force the heavy path
		rt.mu.Unlock()
		rt.Partition()
	}
}

// BenchmarkLightPartition measures the quiet-epoch coordinator pass that
// skips the graph rebuild entirely.
func BenchmarkLightPartition(b *testing.B) {
	rt := benchRuntime(b, 256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Partition()
	}
}

// BenchmarkEngineViewBuildGraph measures one engine's conflict source: the
// live applicability check plus the induced O(k²) subgraph over its own
// component group (k = 32), versus the global O(n²) the single planner pays.
func BenchmarkEngineViewBuildGraph(b *testing.B) {
	rt := benchRuntime(b, 256, 64)
	rt.mu.Lock()
	var pending []*change.Change
	for _, m := range rt.members {
		//lint:ignore maporder pending is a benchmark sample, order-insensitive
		if m.shard == 0 {
			pending = append(pending, m.c)
		}
	}
	rt.mu.Unlock()
	if len(pending) == 0 {
		b.Fatal("no members on shard 0")
	}
	view := &engineView{rt: rt}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, failed := view.BuildGraph(pending); len(failed) != 0 {
			b.Fatalf("unexpected failures: %v", failed)
		}
	}
}
