// Package shard implements the sharded multi-planner scale-out (DESIGN.md
// §4h): a coordinator partitions the pending changes into connected
// components of the conflict graph, assigns each component group to one of N
// independent planner engines by rendezvous-hashing the component's target
// subtree anchor, and routes every engine's commits through the serialized
// commit arbiter. Changes in different components are mutually independent
// (§5), so per-engine planning does O(k²) conflict work over its own
// component group instead of O(n²) over the global queue — the source of the
// scale-out win — while the arbiter's cross-shard re-validation keeps the
// mainline exactly as green as the single-planner path.
package shard

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mastergreen/internal/arbiter"
	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
	"mastergreen/internal/events"
	"mastergreen/internal/planner"
	"mastergreen/internal/queue"
	"mastergreen/internal/repo"
	"mastergreen/internal/speculation"
)

// Config tunes the shard runtime.
type Config struct {
	// Shards is the number of planner engines (<=0: 1).
	Shards int
	// Planner is the per-engine planner configuration template. Budget is the
	// *total* build budget and is split evenly across engines (minimum 1
	// each); Committer and ShardID are overwritten per engine.
	Planner planner.Config
	// Spec builds one speculation engine per planner engine (planner.New
	// mutates the engine's MaxSpecDepth, so engines must not share one).
	Spec func() *speculation.Engine
	// Events, when non-nil, receives TypeShardRebalanced events.
	Events *events.Bus
}

// member is a pending change the coordinator has adopted from the intake
// queue: its original global submission sequence and its current engine.
type member struct {
	c     *change.Change
	seq   uint64
	shard int // -1 until first assignment
}

// engine is one planner shard: an isolated sub-queue plus a planner instance
// whose conflict source is a coordinator-fed view of the global graph.
type engine struct {
	id      int
	queue   *queue.Queue
	planner *planner.Planner
	wake    chan struct{}
}

// Runtime is the sharding coordinator: it owns the component partition, the
// engine fleet, and the outcome merge.
type Runtime struct {
	repo     *repo.Repo
	intake   *queue.Queue
	analyzer *conflict.Analyzer
	arb      *arbiter.Arbiter
	coord    *queue.Coordinator
	engines  []*engine
	nodeIdx  map[string]int
	cfg      Config
	headWake <-chan struct{}

	// gmu guards the cached global conflict graph the engine views read.
	gmu    sync.RWMutex
	graph  *conflict.Graph
	failed map[change.ID]error

	mu          sync.Mutex
	members     map[change.ID]*member
	seen        []int // outcomes already merged, per engine
	outcomes    []planner.Outcome
	outSeen     map[change.ID]bool
	first       bool
	lastRejects int // arbiter CrossShardRejects at the last heavy partition
	stats       Stats

	// membersN/outcomesN mirror len(members) and len(outcomes) so the
	// serving path (admission checks, status polls) reads them without
	// queueing behind rt.mu — Partition holds that mutex across the global
	// conflict-graph rebuild, and a submit must never wait on planning.
	// Both are refreshed under rt.mu, so reads lag at most one partition
	// epoch.
	membersN  atomic.Int64
	outcomesN atomic.Int64
}

// New creates a runtime with cfg.Shards planner engines over the repository.
// intake is the service's submission queue: the coordinator drains it each
// partition epoch and re-homes changes into per-engine sub-queues, preserving
// their global submission sequence. All engines share the build controller
// (one global worker pool) and the commit arbiter.
func New(r *repo.Repo, intake *queue.Queue, an *conflict.Analyzer, arb *arbiter.Arbiter, ctrl *buildsys.Controller, cfg Config) *Runtime {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	rt := &Runtime{
		repo:     r,
		intake:   intake,
		analyzer: an,
		arb:      arb,
		coord:    queue.NewCoordinator(cfg.Shards),
		nodeIdx:  make(map[string]int, cfg.Shards),
		cfg:      cfg,
		headWake: arb.Subscribe(),
		members:  map[change.ID]*member{},
		seen:     make([]int, cfg.Shards),
		outSeen:  map[change.ID]bool{},
		first:    true,
	}
	perEngine := cfg.Planner.Budget / cfg.Shards
	if perEngine < 1 {
		perEngine = 1
	}
	for i := 0; i < cfg.Shards; i++ {
		node := fmt.Sprintf("shard-%d", i)
		rt.coord.Join(node)
		rt.nodeIdx[node] = i
		ecfg := cfg.Planner
		ecfg.Budget = perEngine
		ecfg.Committer = arb
		ecfg.ShardID = i
		ecfg.ExternalSubjectState = true       // coordinator applies the winner (see collectOutcomesLocked)
		ecfg.Sched = cfg.Planner.Sched.Clone() // per-engine policy; nil stays nil
		eq := queue.New(1)
		rt.engines = append(rt.engines, &engine{
			id:      i,
			queue:   eq,
			planner: planner.New(r, eq, &engineView{rt: rt}, cfg.Spec(), ctrl, ecfg),
			wake:    make(chan struct{}, 1),
		})
	}
	return rt
}

// Shards returns the engine count.
func (rt *Runtime) Shards() int { return len(rt.engines) }

// Coordinator exposes the rendezvous-hashing coordinator (tests, rebalance).
func (rt *Runtime) Coordinator() *queue.Coordinator { return rt.coord }

// PendingCount returns the changes not yet decided: still in intake plus
// adopted members. Lock-free on the coordinator mutex — the admission layer
// calls this on every submission, and blocking those behind a heavy
// partition pass would put planning latency on the serving path. The member
// count lags mutations by at most one partition epoch.
func (rt *Runtime) PendingCount() int {
	return rt.intake.Len() + int(rt.membersN.Load())
}

// Outcomes returns all merged final dispositions so far.
func (rt *Runtime) Outcomes() []planner.Outcome {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.collectOutcomesLocked()
	return append([]planner.Outcome(nil), rt.outcomes...)
}

// OutcomeCount returns the number of merged dispositions so far. Cursor-based
// readers (core's journal sync, admission drain-rate sampling) poll it and
// fetch deltas with OutcomesSince only when it advanced, keeping the
// steady-state read path allocation-free. Lock-free on the coordinator
// mutex: it reports outcomes merged by the last partition pass rather than
// forcing a merge, so the count lags fresh engine decisions by at most one
// epoch — readers see them on the next poll.
func (rt *Runtime) OutcomeCount() int {
	return int(rt.outcomesN.Load())
}

// OutcomesSince returns a copy of the merged dispositions recorded after the
// first n, in decision order.
func (rt *Runtime) OutcomesSince(n int) []planner.Outcome {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.collectOutcomesLocked()
	if n < 0 {
		n = 0
	}
	if n >= len(rt.outcomes) {
		return nil
	}
	return append([]planner.Outcome(nil), rt.outcomes[n:]...)
}

// collectOutcomesLocked merges newly-decided outcomes from every engine,
// first decision wins (the coordinator may briefly double-assign a change
// while moving it; the arbiter guarantees at most one of the decisions
// commits). A rejection for a change the arbiter has already landed is a
// stale loser — the change hit the mainline through another engine before
// this one noticed, so its "no longer applies" verdict is suppressed and the
// winner's commit outcome records the decision. Because a double-assigned
// change has two engines holding the same *change.Change, the engines never
// write Subject.State in place (planner.Config.ExternalSubjectState); the
// coordinator applies the one winning decision here, under rt.mu. Decided
// members leave the partition and their engine sub-queue. Callers hold rt.mu.
func (rt *Runtime) collectOutcomesLocked() {
	for i, e := range rt.engines {
		n := e.planner.OutcomeCount()
		if n == rt.seen[i] {
			continue
		}
		for _, o := range e.planner.OutcomesSince(rt.seen[i]) {
			if o.State != change.StateCommitted && rt.arb.Committed(o.ID) {
				continue
			}
			if m, ok := rt.members[o.ID]; ok {
				if m.shard >= 0 {
					_ = rt.engines[m.shard].queue.Remove(o.ID)
				}
				delete(rt.members, o.ID)
				if !rt.outSeen[o.ID] {
					m.c.State = o.State
					m.c.Reason = o.Reason
				}
			}
			if !rt.outSeen[o.ID] {
				rt.outSeen[o.ID] = true
				rt.outcomes = append(rt.outcomes, o)
			}
		}
		rt.seen[i] = n
	}
	// Refresh the lock-free mirrors together: outcomes before members, so a
	// racing reader sees decisions no later than the pending-count drop.
	rt.outcomesN.Store(int64(len(rt.outcomes)))
	rt.membersN.Store(int64(len(rt.members)))
}

// Partition runs one coordinator epoch: adopt intake arrivals, retire decided
// members, and — when arrivals, a cross-shard bounce, or the first run demand
// it — recompute the global conflict graph, its connected components, and the
// component→shard assignment. Decisions only shrink components, so the
// expensive graph pass is skipped entirely on quiet epochs.
func (rt *Runtime) Partition() {
	rt.mu.Lock()
	newArrivals := false
	for _, c := range rt.intake.Pending() {
		seq, err := rt.intake.Seq(c.ID)
		if err != nil {
			continue // raced a concurrent removal
		}
		// Count the member before removing it from intake so a concurrent
		// lock-free PendingCount can only over-count mid-adoption, never
		// report a spurious zero while work is still in flight.
		rt.members[c.ID] = &member{c: c, seq: seq, shard: -1}
		rt.membersN.Add(1)
		_ = rt.intake.Remove(c.ID)
		newArrivals = true
	}
	rt.collectOutcomesLocked()
	rt.stats.Partitions++
	regroup := false
	if ast := rt.arb.Stats(); ast.CrossShardRejects != rt.lastRejects {
		// A bounced proposal means two shards' footprints overlapped: the
		// partition is stale, so regroup before the engines retry.
		rt.lastRejects = ast.CrossShardRejects
		regroup = true
	}
	if !newArrivals && !rt.first && !regroup {
		rt.stats.ShardsActive = rt.activeLocked()
		rt.mu.Unlock()
		return
	}
	rt.first = false
	rt.stats.HeavyPartitions++

	ms := make([]*member, 0, len(rt.members))
	for _, m := range rt.members {
		//lint:ignore maporder ms is sorted by submission sequence below
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].seq < ms[j].seq })
	pending := make([]*change.Change, len(ms))
	for i, m := range ms {
		pending[i] = m.c
	}
	g, failed := rt.analyzer.BuildGraph(pending)
	rt.gmu.Lock()
	rt.graph = g
	rt.failed = failed
	rt.gmu.Unlock()

	comps := g.Components()
	var failedIDs []change.ID
	for id := range failed {
		failedIDs = append(failedIDs, id)
	}
	sort.Slice(failedIDs, func(i, j int) bool { return failedIDs[i] < failedIDs[j] })
	for _, id := range failedIDs {
		comps = append(comps, []change.ID{id}) // singleton: engine rejects it
	}
	rt.stats.Components = len(comps)

	moved := 0
	nudge := make([]bool, len(rt.engines))
	for _, comp := range comps {
		sh := rt.shardForLocked(comp)
		for _, id := range comp {
			m, ok := rt.members[id]
			if !ok || m.shard == sh {
				continue
			}
			if m.shard >= 0 {
				_ = rt.engines[m.shard].queue.Remove(id)
				moved++
			}
			if err := rt.engines[sh].queue.EnqueueSeq(m.c, m.seq); err != nil {
				continue // duplicate: already owned by the target engine
			}
			m.shard = sh
			nudge[sh] = true
		}
	}
	rt.stats.Rebalanced += moved
	rt.stats.ShardsActive = rt.activeLocked()
	rt.mu.Unlock()

	// Wake engines and publish after releasing the coordinator mutex: never
	// send on a channel while holding a lock.
	if moved > 0 && rt.cfg.Events != nil {
		rt.cfg.Events.Publish(events.Event{
			Type:   events.TypeShardRebalanced,
			Detail: fmt.Sprintf("%d changes moved across %d components", moved, len(comps)),
		})
	}
	for i, n := range nudge {
		if !n {
			continue
		}
		select {
		case rt.engines[i].wake <- struct{}{}:
		default:
		}
	}
}

// activeLocked counts engines with a non-empty sub-queue. Callers hold rt.mu.
func (rt *Runtime) activeLocked() int {
	n := 0
	for _, e := range rt.engines {
		if e.queue.Len() > 0 {
			n++
		}
	}
	return n
}

// shardForLocked maps a connected component to an engine by rendezvous-
// hashing its target-subtree anchor: the lexicographically smallest top-level
// directory any member touches. Components rooted in the same subtree land on
// the same engine, and the assignment is stable as unrelated components come
// and go. Callers hold rt.mu.
func (rt *Runtime) shardForLocked(comp []change.ID) int {
	anchor := ""
	for _, id := range comp {
		m, ok := rt.members[id]
		if !ok {
			continue
		}
		for _, p := range m.c.Patch.Paths() {
			top := p
			if i := strings.IndexByte(p, '/'); i >= 0 {
				top = p[:i]
			}
			if anchor == "" || top < anchor {
				anchor = top
			}
		}
	}
	if anchor == "" && len(comp) > 0 {
		anchor = string(comp[0])
	}
	return rt.nodeIdx[rt.coord.KeyOwner(anchor)]
}

// Tick runs one synchronous epoch: a partition pass, one planner tick per
// engine in shard order, and a final partition pass so freshly-decided
// outcomes are merged before the caller observes state. Deterministic given
// deterministic inputs — the golden trace test relies on it.
func (rt *Runtime) Tick(ctx context.Context) (bool, error) {
	rt.Partition()
	progress := false
	for _, e := range rt.engines {
		p, err := e.planner.Tick(ctx)
		if err != nil {
			return progress, err
		}
		progress = progress || p
	}
	rt.Partition()
	return progress, nil
}

// engineLoop ticks one engine until stopped, waking on rebalances and build
// completions (via the planner's own wake channel, covered by the short poll).
func (rt *Runtime) engineLoop(ctx context.Context, e *engine, stop <-chan struct{}, errs chan<- error) {
	for {
		if _, err := e.planner.Tick(ctx); err != nil {
			select {
			case errs <- err:
			default:
			}
			return
		}
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-e.wake:
		case <-time.After(time.Millisecond):
		}
	}
}

// Quiesce runs engines concurrently until every adopted change is decided
// and the intake queue is empty, then stops the fleet. It returns
// planner.ErrStopped if the context is cancelled first.
func (rt *Runtime) Quiesce(ctx context.Context) error {
	stop := make(chan struct{})
	errs := make(chan error, len(rt.engines))
	var wg sync.WaitGroup
	for _, e := range rt.engines {
		wg.Add(1)
		go func(e *engine) {
			defer wg.Done()
			rt.engineLoop(ctx, e, stop, errs)
		}(e)
	}
	var err error
	for {
		rt.Partition()
		if rt.PendingCount() == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = planner.ErrStopped
		case <-rt.headWake:
		case <-time.After(time.Millisecond):
		}
		if err != nil {
			break
		}
	}
	close(stop)
	wg.Wait()
	rt.Partition() // merge outcomes decided during shutdown
	select {
	case e := <-errs:
		if err == nil {
			err = e
		}
	default:
	}
	return err
}

// Run drives the fleet on the epoch period until the context is cancelled:
// every engine runs its own planner loop and the coordinator repartitions on
// each tick and head advancement.
func (rt *Runtime) Run(ctx context.Context, epoch time.Duration) error {
	if epoch <= 0 {
		epoch = 250 * time.Millisecond
	}
	var wg sync.WaitGroup
	for _, e := range rt.engines {
		wg.Add(1)
		go func(e *engine) {
			defer wg.Done()
			_ = e.planner.Run(ctx, epoch)
		}(e)
	}
	tick := time.NewTicker(epoch)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			rt.Partition()
			return ctx.Err()
		case <-tick.C:
			rt.Partition()
		case <-rt.headWake:
			rt.Partition()
		}
	}
}
