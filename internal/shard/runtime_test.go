package shard_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/buildsys"
	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/planner"
	"mastergreen/internal/repo"
)

// multiRepo builds a monorepo with n independent top-level subtrees, one
// build target each. Every target declares slot files f0.go..f11.go that do
// not exist yet: creating one changes the target's hash, so changes within a
// subtree conflict at the target level while different subtrees stay
// independent components.
func multiRepo(n int) *repo.Repo {
	srcs := "lib.go"
	for s := 0; s < 12; s++ {
		srcs += fmt.Sprintf(",f%d.go", s)
	}
	files := map[string]string{}
	for i := 0; i < n; i++ {
		dir := fmt.Sprintf("component%02d", i)
		files[dir+"/BUILD"] = "target comp srcs=" + srcs
		files[dir+"/lib.go"] = "lib v1"
	}
	return repo.New(files)
}

// modChange edits one file relative to the current head.
func modChange(r *repo.Repo, id, path, content string) *change.Change {
	snap := r.Head().Snapshot()
	cur, ok := snap.Read(path)
	fc := repo.FileChange{Path: path, Op: repo.OpCreate, NewContent: content}
	if ok {
		fc = repo.FileChange{Path: path, Op: repo.OpModify, BaseHash: repo.HashContent(cur), NewContent: content}
	}
	return &change.Change{
		ID:          change.ID(id),
		Author:      change.Developer{Name: "dev", Team: "t", Level: 3},
		Description: "test " + id,
		Patch:       repo.Patch{Changes: []repo.FileChange{fc}},
		BuildSteps:  []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
	}
}

func fakeClock() func() time.Time {
	base := time.Unix(1700000000, 0)
	return func() time.Time { return base }
}

// brokenRunner fails any step whose snapshot contains "BROKEN" in a source
// file of the target's subtree.
func brokenRunner() buildsys.StepRunner {
	return buildsys.RunnerFunc(func(ctx context.Context, step change.BuildStep, target string, snap repo.Snapshot) error {
		for _, p := range snap.Paths() {
			if content, ok := snap.Read(p); ok && strings.Contains(content, "BROKEN") {
				return fmt.Errorf("compile error in %s", p)
			}
		}
		return nil
	})
}

func outcomeSets(outs []planner.Outcome) (committed, rejected map[change.ID]bool) {
	committed = map[change.ID]bool{}
	rejected = map[change.ID]bool{}
	for _, o := range outs {
		if o.State == change.StateCommitted {
			committed[o.ID] = true
		} else {
			rejected[o.ID] = true
		}
	}
	return committed, rejected
}

// TestShardedCommitsAll drives a multi-subtree workload through four planner
// shards and checks every change lands with its content at head.
func TestShardedCommitsAll(t *testing.T) {
	r := multiRepo(8)
	s := core.NewService(r, core.Config{Workers: 8, Shards: 4, Now: fakeClock()})
	n := 24
	for i := 0; i < n; i++ {
		// Each change creates a distinct slot file in its subtree:
		// same-subtree changes conflict at the target level (and chain),
		// different subtrees are independent components.
		c := modChange(r, fmt.Sprintf("c%03d", i), fmt.Sprintf("component%02d/f%d.go", i%8, i/8), fmt.Sprintf("content %d", i))
		if err := s.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs := s.Outcomes()
	if len(outs) != n {
		t.Fatalf("outcomes = %d, want %d", len(outs), n)
	}
	committed, rejected := outcomeSets(outs)
	if len(rejected) != 0 {
		t.Fatalf("unexpected rejections: %v", rejected)
	}
	if len(committed) != n {
		t.Fatalf("committed = %d, want %d", len(committed), n)
	}
	snap := r.Head().Snapshot()
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("component%02d/f%d.go", i%8, i/8)
		if got, ok := snap.Read(path); !ok || got != fmt.Sprintf("content %d", i) {
			t.Fatalf("head missing %s (got %q, ok=%v)", path, got, ok)
		}
	}
	if got := s.ArbiterStats().Commits; got != n {
		t.Fatalf("arbiter commits = %d, want %d", got, n)
	}
	if ss := s.ShardStats(); ss.Partitions == 0 || ss.Components == 0 {
		t.Fatalf("shard stats not populated: %+v", ss)
	}
}

// TestShardedMatchesSinglePlanner runs the same deterministic workload
// through 1/4/8 shards and the legacy single planner and requires identical
// committed/rejected sets and identical head snapshots.
func TestShardedMatchesSinglePlanner(t *testing.T) {
	type result struct {
		committed, rejected map[change.ID]bool
		files               map[string]string
	}
	run := func(shards int, single bool) result {
		r := multiRepo(6)
		s := core.NewService(r, core.Config{
			Workers: 8, Shards: shards, SingleShard: single,
			Runner: brokenRunner(), Now: fakeClock(),
		})
		for i := 0; i < 30; i++ {
			content := fmt.Sprintf("content %d", i)
			if i%10 == 7 {
				content = "BROKEN " + content
			}
			path := fmt.Sprintf("component%02d/f%d.go", i%6, i/6)
			if i%15 == 4 {
				// Deliberate duplicate-create collision with an earlier
				// change's file: exactly one of the two lands.
				path = fmt.Sprintf("component%02d/f%d.go", (i-1)%6, (i-1)/6)
			}
			c := modChange(r, fmt.Sprintf("c%03d", i), path, content)
			if err := s.Submit(c); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.ProcessAll(context.Background()); err != nil {
			t.Fatal(err)
		}
		committed, rejected := outcomeSets(s.Outcomes())
		files := map[string]string{}
		snap := r.Head().Snapshot()
		for _, p := range snap.Paths() {
			content, _ := snap.Read(p)
			files[p] = content
		}
		return result{committed: committed, rejected: rejected, files: files}
	}
	base := run(0, true) // legacy single planner
	for _, shards := range []int{1, 4, 8} {
		got := run(shards, false)
		if len(got.committed) != len(base.committed) || len(got.rejected) != len(base.rejected) {
			t.Fatalf("shards=%d: %d committed / %d rejected, want %d / %d",
				shards, len(got.committed), len(got.rejected), len(base.committed), len(base.rejected))
		}
		for id := range base.committed {
			if !got.committed[id] {
				t.Fatalf("shards=%d: %s not committed", shards, id)
			}
		}
		for id := range base.rejected {
			if !got.rejected[id] {
				t.Fatalf("shards=%d: %s not rejected", shards, id)
			}
		}
		for p, want := range base.files {
			if got.files[p] != want {
				t.Fatalf("shards=%d: head file %s = %q, want %q", shards, p, got.files[p], want)
			}
		}
		for p, content := range got.files {
			if strings.Contains(content, "BROKEN") {
				t.Fatalf("shards=%d: green violation: %s broken at head", shards, p)
			}
		}
	}
}

// TestShardedSameSubtreeChains checks that conflicting same-component changes
// serialize correctly inside one shard: each builds on the previous commit.
func TestShardedSameSubtreeChains(t *testing.T) {
	r := multiRepo(2)
	s := core.NewService(r, core.Config{Workers: 4, Shards: 4, Now: fakeClock()})
	// All five changes create distinct slot files under one subtree's target
	// dir; they share the comp target, so they form one conflict component.
	for i := 0; i < 5; i++ {
		c := modChange(r, fmt.Sprintf("c%d", i), fmt.Sprintf("component00/f%d.go", i), fmt.Sprintf("v%d", i))
		if err := s.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	committed, rejected := outcomeSets(s.Outcomes())
	if len(committed) != 5 || len(rejected) != 0 {
		t.Fatalf("committed=%d rejected=%d, want 5/0", len(committed), len(rejected))
	}
	if r.Len() != 1+5 {
		t.Fatalf("mainline len = %d, want 6", r.Len())
	}
}
