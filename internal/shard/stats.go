package shard

import (
	"mastergreen/internal/metrics"
	"mastergreen/internal/planner"
)

// Stats counts coordinator work so the partition layer is observable: how
// often the cheap light path sufficed, how big the component partition is,
// and how much churn rebalancing caused.
type Stats struct {
	// ShardsActive is the number of engines with a non-empty sub-queue at the
	// last partition epoch.
	ShardsActive int
	// Components is the connected-component count at the last heavy partition
	// (merge-failed changes count as singletons).
	Components int
	// Members is the number of adopted, undecided changes.
	Members int
	// Partitions counts coordinator epochs; HeavyPartitions counts the subset
	// that recomputed the global conflict graph and the shard assignment.
	Partitions      int
	HeavyPartitions int
	// Rebalanced counts changes moved from one engine to another.
	Rebalanced int
}

// Stats returns a copy of the coordinator's counters.
func (rt *Runtime) Stats() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	s := rt.stats
	s.Members = len(rt.members)
	return s
}

// PlannerStats aggregates the per-engine planner counters field by field, so
// the sharded service surfaces the same planner gauges as the single-planner
// path.
func (rt *Runtime) PlannerStats() planner.Stats {
	var sum planner.Stats
	for _, e := range rt.engines {
		s := e.planner.Stats()
		sum.BuildsStarted += s.BuildsStarted
		sum.PrefixHits += s.PrefixHits
		sum.PrefixMisses += s.PrefixMisses
		sum.PrefixInvalidations += s.PrefixInvalidations
		sum.HeadGraphBuilds += s.HeadGraphBuilds
		sum.SnapshotAnalyses += s.SnapshotAnalyses
		sum.PatchApplies += s.PatchApplies
		sum.PlansComputed += s.PlansComputed
		sum.PlansSkipped += s.PlansSkipped
		sum.KeysComputed += s.KeysComputed
		sum.KeysCached += s.KeysCached
		sum.FinishedPruned += s.FinishedPruned
		sum.CrossShardRebuilds += s.CrossShardRebuilds
		sum.ObsoleteAborted += s.ObsoleteAborted
		sum.SpecBranchesSkipped += s.SpecBranchesSkipped
		sum.SpecBuildsSkipped += s.SpecBuildsSkipped
	}
	return sum
}

// Gauges renders the counters as ordered name/value pairs for the status
// endpoint, the dashboard, and experiment reports.
func (s Stats) Gauges() metrics.Gauges {
	return metrics.Gauges{
		{Name: "shards_active", Value: float64(s.ShardsActive)},
		{Name: "components", Value: float64(s.Components)},
		{Name: "members", Value: float64(s.Members)},
		{Name: "partitions", Value: float64(s.Partitions)},
		{Name: "heavy_partitions", Value: float64(s.HeavyPartitions)},
		{Name: "rebalanced", Value: float64(s.Rebalanced)},
	}
}
