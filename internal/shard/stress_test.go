package shard_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"mastergreen/internal/change"
	"mastergreen/internal/core"
	"mastergreen/internal/repo"
)

// stressWorkload builds a deterministic change list against the initial head
// of multiRepo(16): distinct slot-file creates per subtree, every tenth
// change build-broken, plus duplicate-create collisions so the merge-conflict
// path is exercised under concurrency. Patches never read the live head, so
// the same list drives both the baseline and the stress run.
func stressWorkload(n int) []*change.Change {
	out := make([]*change.Change, 0, n)
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("component%02d/f%d.go", i%16, i/16)
		content := fmt.Sprintf("content %d", i)
		switch {
		case i%10 == 3:
			content = "BROKEN " + content
		case i > 0 && i%17 == 9:
			// Collide with the previous change's file: one of the two lands.
			path = fmt.Sprintf("component%02d/f%d.go", (i-1)%16, (i-1)/16)
		}
		out = append(out, &change.Change{
			ID:          change.ID(fmt.Sprintf("c%03d", i)),
			Author:      change.Developer{Name: "dev", Team: "t", Level: 3},
			Description: fmt.Sprintf("stress %03d", i),
			Patch: repo.Patch{Changes: []repo.FileChange{
				{Path: path, Op: repo.OpCreate, NewContent: content},
			}},
			BuildSteps: []change.BuildStep{{Name: "compile", Kind: change.StepCompile}},
		})
	}
	return out
}

// TestStressLiveSubmitEightShards races a live submitter against eight
// concurrent shard engines and the commit arbiter (run under -race by `make
// race`): changes arrive while earlier ones are mid-flight, engines commit
// through the serialized arbiter, and the final state must match a
// single-planner run of the same workload — same committed set, same head
// content for every landed change, and a green mainline at every commit.
func TestStressLiveSubmitEightShards(t *testing.T) {
	n := 64
	workload := stressWorkload(n)

	// Baseline: the legacy single planner over the identical change list.
	baseRepo := multiRepo(16)
	base := core.NewService(baseRepo, core.Config{
		Workers: 8, SingleShard: true, Runner: brokenRunner(), Now: fakeClock(),
	})
	for _, c := range workload {
		if err := base.Submit(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := base.ProcessAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantCommitted, wantRejected := outcomeSets(base.Outcomes())

	// Stress run: background epoch loop, live submitter feeding the intake
	// while the engines run.
	r := multiRepo(16)
	s := core.NewService(r, core.Config{
		Workers: 8, Shards: 8, Epoch: time.Millisecond,
		Runner: brokenRunner(), Now: fakeClock(),
	})
	s.Start()
	done := make(chan error, 1)
	go func() {
		for i, c := range workload {
			if err := s.Submit(c); err != nil {
				done <- fmt.Errorf("submit %s: %w", c.ID, err)
				return
			}
			if i%8 == 7 {
				time.Sleep(time.Millisecond) // let engines overlap with arrivals
			}
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		s.Stop()
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for len(s.Outcomes()) < n {
		if time.Now().After(deadline) {
			s.Stop()
			t.Fatalf("timed out: %d/%d outcomes, %d pending", len(s.Outcomes()), n, s.PendingCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()

	gotCommitted, gotRejected := outcomeSets(s.Outcomes())
	if len(gotCommitted) != len(wantCommitted) || len(gotRejected) != len(wantRejected) {
		t.Errorf("decisions: %d committed / %d rejected, want %d / %d",
			len(gotCommitted), len(gotRejected), len(wantCommitted), len(wantRejected))
	}
	for id := range wantCommitted {
		if !gotCommitted[id] {
			t.Errorf("%s committed by baseline but not under stress", id)
		}
	}
	for id := range wantRejected {
		if !gotRejected[id] {
			t.Errorf("%s rejected by baseline but not under stress", id)
		}
	}

	// Every committed change's content is at head, identical to baseline.
	baseSnap := baseRepo.Head().Snapshot()
	snap := r.Head().Snapshot()
	if snap.Len() != baseSnap.Len() {
		t.Errorf("head file count %d, baseline %d", snap.Len(), baseSnap.Len())
	}
	for _, p := range baseSnap.Paths() {
		want, _ := baseSnap.Read(p)
		if got, ok := snap.Read(p); !ok || got != want {
			t.Errorf("head file %s = %q, baseline %q", p, got, want)
		}
	}

	// Green invariant: no commit on the mainline ever contained broken code.
	for seq := 0; seq < r.Len(); seq++ {
		commit, err := r.At(seq)
		if err != nil {
			t.Fatalf("commit %d: %v", seq, err)
		}
		cs := commit.Snapshot()
		cs.Range(func(path, content string) bool {
			if strings.Contains(content, "BROKEN") {
				t.Errorf("green violation: commit %d has broken %s", seq, path)
				return false
			}
			return true
		})
	}

	ast := s.ArbiterStats()
	if ast.Commits != len(gotCommitted) {
		t.Errorf("arbiter commits = %d, committed outcomes = %d", ast.Commits, len(gotCommitted))
	}
	if ast.MaxQueueDepth < 1 {
		t.Errorf("arbiter depth never observed: %+v", ast)
	}
}
