package shard

import (
	"mastergreen/internal/change"
	"mastergreen/internal/conflict"
)

// engineView is the planner.ConflictSource handed to each shard engine. It
// answers BuildGraph from the coordinator's cached global conflict graph by
// taking the induced subgraph over the engine's own pending set — an O(k²)
// pair walk over the component group instead of the shared analyzer's global
// O(n²) — and never touches the analyzer, so concurrent engines cannot
// thrash its incremental memo with disjoint pending subsets.
type engineView struct {
	rt *Runtime
}

// BuildGraph returns the induced subgraph of the coordinator's cached global
// graph over pending, plus the merge failures among them.
//
// Applicability is re-validated live against the current head with the O(patch)
// Snapshot.Check dry run, because the coordinator's cached failure map is only
// refreshed at heavy partitions: a change whose patch stopped applying after a
// later commit must be rejected with the analyzer's exact wording, matching
// the legacy planner decide-for-decide. Cached failures are kept only for
// structural analysis errors, which travel with the change rather than the
// head. A pending change the coordinator has not analyzed yet (a partition is
// in flight) is treated conservatively: it conflicts with every other pending
// change, so the engine serializes around it until the next heavy partition
// refreshes the cache.
func (v *engineView) BuildGraph(pending []*change.Change) (*conflict.Graph, map[change.ID]error) {
	v.rt.gmu.RLock()
	g := v.rt.graph
	failed := v.rt.failed
	v.rt.gmu.RUnlock()
	head := v.rt.repo.Head().Snapshot()

	var failedOut map[change.ID]error
	fail := func(id change.ID, err error) {
		if failedOut == nil {
			failedOut = map[change.ID]error{}
		}
		failedOut[id] = err
	}
	ids := make([]change.ID, 0, len(pending))
	for _, c := range pending {
		if err := head.Check(c.Patch); err != nil {
			fail(c.ID, conflict.ApplyError(c.ID, err))
			continue
		}
		if err, ok := failed[c.ID]; ok && !conflict.IsApplyFailure(err) {
			fail(c.ID, err)
			continue
		}
		ids = append(ids, c.ID)
	}
	out := conflict.NewGraph(ids)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := ids[i], ids[j]
			if g == nil || !g.Contains(a) || !g.Contains(b) || g.Conflict(a, b) {
				out.AddEdge(a, b)
			}
		}
	}
	return out, failedOut
}
